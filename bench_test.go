// Package gpm_test holds the benchmark harness: one testing.B benchmark per
// paper table/figure (see DESIGN.md's per-experiment index) plus the
// ablations. Each benchmark regenerates its artifact end-to-end on a
// reduced horizon and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both times the reproduction pipeline and prints the reproduced numbers.
package gpm_test

import (
	"sync"
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/experiment"
	"gpm/internal/modes"
	"gpm/internal/workload"
)

var (
	benchOnce sync.Once
	benchEnv  *experiment.Env
)

// env returns a shared environment with a bench-friendly horizon and grid.
// Characterization cost is paid once across all benchmarks.
func env(b *testing.B) *experiment.Env {
	b.Helper()
	benchOnce.Do(func() {
		e := experiment.NewEnv(4).ShortHorizon(10 * time.Millisecond)
		e.Budgets = []float64{0.65, 0.80, 0.95}
		benchEnv = e
	})
	return benchEnv
}

func BenchmarkTable4(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows := experiment.Table4(e.Plan)
		if len(rows) != 3 {
			b.Fatal("table 4 rows")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows := experiment.Table5(e.Plan)
		if len(rows) != 3 {
			b.Fatal("table 5 rows")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	e := env(b)
	var deg float64
	for i := 0; i < b.N; i++ {
		rows, err := e.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Benchmark == "overall" && r.Mode == "Eff2" {
				deg = r.PerfDegradation
			}
		}
	}
	b.ReportMetric(deg*100, "overall-eff2-deg-%")
}

func BenchmarkFigure3(b *testing.B) {
	e := env(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		series, err := e.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, s := range series {
			if s.Policy == "ChipWideDVFS" && s.Degradation > worst {
				worst = s.Degradation
			}
		}
	}
	b.ReportMetric(worst*100, "chipwide-worst-deg-%")
}

func BenchmarkFigure4(b *testing.B) {
	e := env(b)
	var mb float64
	for i := 0; i < b.N; i++ {
		f4, err := e.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range f4.Curves {
			if c.Policy == "MaxBIPS" {
				mb = c.Degradation[0]
			}
		}
	}
	b.ReportMetric(mb*100, "maxbips-65%budget-deg-%")
}

func BenchmarkFigure5(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	e := env(b)
	var after float64
	for i := 0; i < b.N; i++ {
		f6, err := e.Figure6(5 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		after = f6.AvgBIPSAfter
	}
	b.ReportMetric(after*100, "bips-at-70%budget-%")
}

func BenchmarkFigure7(b *testing.B) {
	e := env(b)
	var gap float64
	for i := 0; i < b.N; i++ {
		f7, err := e.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		var mb, or []float64
		for _, c := range f7.Curves {
			switch c.Policy {
			case "MaxBIPS":
				mb = c.Degradation
			case "Oracle":
				or = c.Degradation
			}
		}
		gap = 0
		for j := range mb {
			if d := mb[j] - or[j]; d > gap {
				gap = d
			}
		}
	}
	b.ReportMetric(gap*100, "maxbips-vs-oracle-gap-%")
}

func benchScaling(b *testing.B, n int) {
	e := env(b)
	var worstGap float64
	for i := 0; i < b.N; i++ {
		sc, err := e.FigureScaling(n)
		if err != nil {
			b.Fatal(err)
		}
		worstGap = 0
		for _, combo := range sc.Combos {
			var mb, or []float64
			for _, c := range combo.Curves {
				switch c.Policy {
				case "MaxBIPS":
					mb = c.Degradation
				case "Oracle":
					or = c.Degradation
				}
			}
			for j := range mb {
				if d := mb[j] - or[j]; d > worstGap {
					worstGap = d
				}
			}
		}
	}
	b.ReportMetric(worstGap*100, "maxbips-vs-oracle-gap-%")
}

func BenchmarkFigure8(b *testing.B)  { benchScaling(b, 2) }
func BenchmarkFigure9(b *testing.B)  { benchScaling(b, 4) }
func BenchmarkFigure10(b *testing.B) { benchScaling(b, 8) }

func BenchmarkFigure11(b *testing.B) {
	e := env(b)
	var mbGap float64
	for i := 0; i < b.N; i++ {
		rows, err := e.Figure11([]int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		mbGap = rows[len(rows)-1].MaxBIPS
	}
	b.ReportMetric(mbGap*100, "maxbips-over-oracle-4core-%")
}

func BenchmarkValidation(b *testing.B) {
	e := env(b)
	var ipcDrop float64
	for i := 0; i < b.N; i++ {
		v, err := e.Validation(workload.FourWay[0], 1_000_000, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		ipcDrop = v.MeanIPCDrop
	}
	b.ReportMetric(ipcDrop*100, "cmp-ipc-drop-%")
}

func BenchmarkAblationModeCount(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.AblationModeCount([]int{3, 5}, 0.80); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationExploreInterval(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.AblationExploreInterval([]time.Duration{250 * time.Microsecond, 500 * time.Microsecond, time.Millisecond}, 0.80); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationScaling(b *testing.B) {
	e := env(b)
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := e.AblationScaleOut([]int{4, 16, 64}, 0.80)
		if err != nil {
			b.Fatal(err)
		}
		gap = rows[0].GreedyDegradation - rows[0].ExhaustiveDegradation
	}
	b.ReportMetric(gap*100, "greedy-vs-exhaustive-4core-%")
}

func BenchmarkAblationTransitionRate(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.AblationTransitionRate([]float64{0.005, 0.010, 0.020}, 0.80); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinPower(b *testing.B) {
	e := env(b)
	var save float64
	for i := 0; i < b.N; i++ {
		rows, err := e.AblationMinPower([]float64{0.95})
		if err != nil {
			b.Fatal(err)
		}
		save = rows[0].PowerSaving
	}
	b.ReportMetric(save*100, "saving-at-95%floor-%")
}

// decisionContext builds a synthetic decision context for n cores.
func decisionContext(e *experiment.Env, n int) core.Context {
	samples := make([]core.Sample, n)
	for i := range samples {
		samples[i] = core.Sample{PowerW: 18 + float64(i%5), Instr: 50_000 + float64(i)*3000}
	}
	pred := e.Predictor()
	current := modes.Uniform(n, modes.Turbo)
	return core.Context{
		Plan:           e.Plan,
		Current:        current,
		BudgetW:        0.8 * 22 * float64(n),
		Samples:        samples,
		Matrices:       pred.Matrices(current, samples),
		ExploreSeconds: pred.ExploreSeconds,
	}
}

// BenchmarkDecisionMaxBIPS isolates the manager's per-explore decision cost
// at 8 cores (3^8 = 6561 combinations): the quantity a hardware
// microcontroller implementation would care about.
func BenchmarkDecisionMaxBIPS(b *testing.B) {
	ctx := decisionContext(env(b), 8)
	pol := core.MaxBIPS{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Decide(ctx)
	}
}

// BenchmarkDecisionGreedy measures the greedy selector at 64 cores, where
// exhaustive enumeration (3^64) is impossible.
func BenchmarkDecisionGreedy(b *testing.B) {
	ctx := decisionContext(env(b), 64)
	pol := core.GreedyMaxBIPS{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Decide(ctx)
	}
}
