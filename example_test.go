package gpm_test

import (
	"fmt"
	"time"

	"gpm"
)

// The quickstart from the package documentation: run MaxBIPS at an 80%
// chip power budget and report how close it stays to all-Turbo throughput.
func Example() {
	sys := gpm.NewSystem(4).ShortHorizon(10 * time.Millisecond)
	combo, err := gpm.FindWorkload("4w-ammp-mcf-crafty-art")
	if err != nil {
		panic(err)
	}
	res, base, err := sys.RunPolicy(combo, gpm.MaxBIPS(), 0.80)
	if err != nil {
		panic(err)
	}
	deg := gpm.Degradation(res.TotalInstr, base.TotalInstr)
	fmt.Printf("budget respected: %v\n", res.AvgChipPowerW() <= 0.80*base.EnvelopePowerW())
	fmt.Printf("degradation under 3%%: %v\n", deg < 0.03)
	// Output:
	// budget respected: true
	// degradation under 3%: true
}

// Policies are plain values; compare two at the same budget.
func Example_policyComparison() {
	sys := gpm.NewSystem(4).ShortHorizon(10 * time.Millisecond)
	combo, _ := gpm.FindWorkload("4w-ammp-mcf-crafty-art")
	mb, base, _ := sys.RunPolicy(combo, gpm.MaxBIPS(), 0.75)
	cw, _, _ := sys.RunPolicy(combo, gpm.ChipWideDVFS(), 0.75)
	mbDeg := gpm.Degradation(mb.TotalInstr, base.TotalInstr)
	cwDeg := gpm.Degradation(cw.TotalInstr, base.TotalInstr)
	fmt.Printf("per-core beats chip-wide: %v\n", mbDeg < cwDeg)
	// Output:
	// per-core beats chip-wide: true
}

// A time-varying budget models Fig 6's cooling failure.
func ExampleStepBudget() {
	budget := gpm.StepBudget(90, 70, 5*time.Millisecond)
	fmt.Printf("%.0f W then %.0f W\n", budget(0), budget(6*time.Millisecond))
	// Output:
	// 90 W then 70 W
}

// Workload discovery mirrors Table 2 of the paper.
func ExampleWorkloads() {
	combos, _ := gpm.Workloads(4)
	for _, c := range combos {
		fmt.Println(c.ID)
	}
	// Output:
	// 4w-ammp-mcf-crafty-art
	// 4w-facerec-gcc-mesa-vortex
	// 4w-sixtrack-gap-perlbmk-wupwise
	// 4w-mcf-mcf-art-art
}
