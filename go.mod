module gpm

go 1.22
