// Datacenter sweeps a rack-style power-capping scenario: every Table 2
// 4-way workload mix is capped at a range of budgets under four policies,
// and the report ranks policies by worst-case and average degradation —
// the view an operator choosing a capping policy would want.
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"time"

	"gpm/internal/core"
	"gpm/internal/experiment"
	"gpm/internal/metrics"
	"gpm/internal/report"
	"gpm/internal/workload"
)

func main() {
	env := experiment.NewEnv(4).ShortHorizon(20 * time.Millisecond)
	budgets := []float64{0.70, 0.80, 0.90}
	policies := []core.Policy{core.MaxBIPS{}, core.GreedyMaxBIPS{}, core.Priority{}, core.ChipWideDVFS{}}

	type agg struct {
		sum, worst float64
		n          int
	}
	stats := map[string]*agg{}

	t := report.NewTable("Power capping across Table 2 4-way mixes", "mix", "policy", "budget", "degradation", "power/budget")
	for _, combo := range workload.FourWay {
		base, err := env.Baseline(combo)
		if err != nil {
			log.Fatal(err)
		}
		for _, pol := range policies {
			if stats[pol.Name()] == nil {
				stats[pol.Name()] = &agg{}
			}
			for _, b := range budgets {
				res, _, err := env.RunPolicy(combo, pol, b)
				if err != nil {
					log.Fatal(err)
				}
				deg := metrics.Degradation(res.TotalInstr, base.TotalInstr)
				fit := metrics.BudgetFit(res.AvgChipPowerW(), b*base.EnvelopePowerW())
				t.AddRow(combo.ID, pol.Name(), report.Pct(b), report.Pct(deg), report.Pct(fit))
				s := stats[pol.Name()]
				s.sum += deg
				s.n++
				if deg > s.worst {
					s.worst = deg
				}
			}
		}
	}
	fmt.Println(t.String())

	sum := report.NewTable("Policy ranking (lower is better)", "policy", "mean degradation", "worst degradation")
	for _, pol := range policies {
		s := stats[pol.Name()]
		sum.AddRow(pol.Name(), report.Pct(s.sum/float64(s.n)), report.Pct(s.worst))
	}
	fmt.Println(sum.String())
}
