// Faultinject demonstrates the fault-injection framework and the resilient
// global power manager: at t=2 ms core 0's current sensor sticks at 0.5 W,
// so the §5.5 predictions believe the core is nearly free and MaxBIPS hands
// the whole budget to the other cores. Unguarded, the chip rides ~15% over
// its power cap for the rest of the run; guarded, the ResilientManager
// cross-checks the per-core sensors against the chip-level measurement,
// repairs the lying sample, and keeps the chip at the cap. At t=8 ms core 3
// dies outright and the guard parks it, redistributing its budget share.
//
// Run with:
//
//	go run ./examples/faultinject
package main

import (
	"fmt"
	"log"
	"time"

	"gpm"
	"gpm/internal/report"
)

func main() {
	sys := gpm.NewSystem(4).ShortHorizon(16 * time.Millisecond)
	combo, err := gpm.FindWorkload("4w-ammp-mcf-crafty-art")
	if err != nil {
		log.Fatal(err)
	}

	scenario := gpm.FaultScenario{
		Seed:  42,
		Stuck: []gpm.StuckFault{{Core: 0, PowerW: 0.5, At: 2 * time.Millisecond}},
		Deaths: []gpm.CoreDeath{
			{Core: 3, At: 8 * time.Millisecond},
		},
	}
	guard := gpm.DefaultGuard()

	unguarded, base, err := gpm.RunPolicyResilient(sys, combo, gpm.MaxBIPS(), 0.75, &scenario, nil)
	if err != nil {
		log.Fatal(err)
	}
	guarded, _, err := gpm.RunPolicyResilient(sys, combo, gpm.MaxBIPS(), 0.75, &scenario, &guard)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s, budget 75%%: stuck sensor on core 0 at 2 ms, core 3 dies at 8 ms\n\n", combo.ID)

	ts := report.NewTimeSeries("chip power [W] (stuck sensor at 2 ms, core death at 8 ms)", "time →", 100)
	ts.Add("unguarded", unguarded.ChipPowerW)
	ts.Add("guarded", guarded.ChipPowerW)
	ts.Add("budget", guarded.BudgetW)
	fmt.Println(ts.String())

	show := func(name string, r *gpm.Result) {
		deg := gpm.Degradation(r.TotalInstr, base.TotalInstr)
		fmt.Printf("%-10s avg %5.1f W vs budget %5.1f W | overshoot %3d/%d intervals, worst sustained %.3g W·s | degradation %.1f%%\n",
			name, r.AvgChipPowerW(), r.BudgetW[0], r.OvershootIntervals, len(r.ChipPowerW), r.WorstOvershootWs, deg*100)
	}
	show("unguarded", unguarded)
	show("guarded", guarded)

	fmt.Printf("\nguard interventions: %d samples sanitized, %d intervals rescaled to the chip sensor,\n",
		guarded.SanitizedSamples, guarded.RescaledIntervals)
	fmt.Printf("%d emergency entries (longest recovery %v), dead cores detected: %v\n",
		guarded.EmergencyEntries, guarded.RecoveryLatency, guarded.DeadCores)
}
