// Thermalcap demonstrates temperature-derived power budgets: per-core RC
// thermal nodes integrate the simulated power draw, and a governor converts
// an 85 °C junction limit into the chip budget the MaxBIPS manager enforces
// — the deployment loop behind Fig 6's "part of the cooling solution fails"
// scenario.
//
// Run with:
//
//	go run ./examples/thermalcap
package main

import (
	"fmt"
	"log"
	"time"

	"gpm/internal/experiment"
	"gpm/internal/report"
)

func main() {
	env := experiment.NewEnv(4).ShortHorizon(30 * time.Millisecond)
	res, err := env.Thermal([]float64{85, 82, 79})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s — without governance the die peaks at %.1f °C\n\n",
		res.ComboID, res.UngovernedMaxTempC)
	t := report.NewTable("Junction-temperature limits vs performance",
		"limit [°C]", "max temp [°C]", "degradation", "avg power")
	for _, r := range res.Rows {
		t.AddRow(fmt.Sprintf("%.0f", r.LimitC), fmt.Sprintf("%.1f", r.MaxTempC),
			report.Pct(r.Degradation), report.W(r.AvgPowerW))
	}
	fmt.Println(t.String())
	fmt.Println("the governor holds every limit while giving up only a few percent of throughput.")
}
