// Budgetdrop reproduces the Fig 6 scenario: a cooling failure (or ambient
// change) drops the chip power budget from 90% to 70% mid-run, and the
// MaxBIPS global manager re-fits the per-core modes within one explore
// interval.
//
// Run with:
//
//	go run ./examples/budgetdrop
package main

import (
	"fmt"
	"log"

	"gpm/internal/experiment"
	"gpm/internal/report"
)

func main() {
	env := experiment.NewEnv(4)
	drop := env.Cfg.Sim.Horizon / 2

	f6, err := env.Figure6(drop)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %v, budget 90%% -> 70%% at t=%.1f ms\n\n",
		f6.Benchmarks, f6.DropAtUs/1000)

	ts := report.NewTimeSeries("per-application power (fraction of max chip power)", "time →", 100)
	for c, name := range f6.Benchmarks {
		ts.Add(name, f6.CorePowerFrac[c])
	}
	ts.Add("budget", f6.BudgetFrac)
	fmt.Println(ts.String())

	ts2 := report.NewTimeSeries("per-application BIPS (fraction of all-Turbo chip average)", "time →", 100)
	for c, name := range f6.Benchmarks {
		ts2.Add(name, f6.CoreBIPSFrac[c])
	}
	fmt.Println(ts2.String())

	fmt.Printf("chip BIPS at 90%% budget: %5.1f%% of all-Turbo\n", f6.AvgBIPSBefore*100)
	fmt.Printf("chip BIPS at 70%% budget: %5.1f%% of all-Turbo\n", f6.AvgBIPSAfter*100)
	fmt.Printf("(the paper reports ≈1%% and ≈5%% reductions in the two regions)\n")
}
