// Scaling drives the global manager from 2 to 64 cores, comparing the
// exhaustive MaxBIPS selector (3^N combinations) against the greedy
// incremental selector that makes wide chips tractable — the scale-out
// question §3.1 ("2 to 64") and §5.5 (state-space growth) raise.
//
// Run with:
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"time"

	"gpm/internal/experiment"
	"gpm/internal/report"
)

func main() {
	env := experiment.NewEnv(4).ShortHorizon(10 * time.Millisecond)
	rows, err := env.AblationScaleOut([]int{2, 4, 8, 16, 32, 64}, 0.80)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("Exhaustive vs greedy MaxBIPS at an 80% budget (tiled Table 2 mix)",
		"cores", "exhaustive degradation", "greedy degradation")
	for _, r := range rows {
		ex := "3^n intractable"
		if r.ExhaustiveRan {
			ex = report.Pct(r.ExhaustiveDegradation)
		}
		t.AddRow(fmt.Sprintf("%d", r.Cores), ex, report.Pct(r.GreedyDegradation))
	}
	fmt.Println(t.String())
	fmt.Println("greedy tracks exhaustive where both run, and keeps scaling where 3^n cannot.")
}
