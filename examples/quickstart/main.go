// Quickstart: build a 4-core CMP environment, run the MaxBIPS global power
// manager at an 80% chip power budget, and print the headline numbers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpm/internal/core"
	"gpm/internal/experiment"
	"gpm/internal/metrics"
	"gpm/internal/workload"
)

func main() {
	// The environment bundles the Table 1 processor model, the PowerTimer-
	// style power model, the Turbo/Eff1/Eff2 DVFS plan and a profile cache.
	env := experiment.NewEnv(4)

	// Table 2's (ammp, mcf, crafty, art): low CPU, high memory utilization.
	combo := workload.FourWay[0]

	// Run the MaxBIPS policy at 80% of the chip's worst-case power envelope.
	res, base, err := env.RunPolicy(combo, core.MaxBIPS{}, 0.80)
	if err != nil {
		log.Fatal(err)
	}

	deg := metrics.Degradation(res.TotalInstr, base.TotalInstr)
	fmt.Printf("workload:          %v\n", combo.Benchmarks)
	fmt.Printf("budget:            80%% of %.1f W envelope\n", base.EnvelopePowerW())
	fmt.Printf("avg chip power:    %.1f W (%.1f%% of budget)\n",
		res.AvgChipPowerW(), 100*res.AvgChipPowerW()/(0.80*base.EnvelopePowerW()))
	fmt.Printf("perf degradation:  %.2f%% vs all-Turbo\n", deg*100)
	fmt.Printf("transition stalls: %v over %v\n", res.TransitionStall, res.Elapsed)

	// Compare against the simple alternative the paper argues against.
	cw, _, err := env.RunPolicy(combo, core.ChipWideDVFS{}, 0.80)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchip-wide DVFS at the same budget: %.2f%% degradation, %.1f W consumed\n",
		metrics.Degradation(cw.TotalInstr, base.TotalInstr)*100, cw.AvgChipPowerW())
	fmt.Println("per-core MaxBIPS exploits the budget; one global knob leaves it on the table.")
}
