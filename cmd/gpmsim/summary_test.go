package main

import (
	"encoding/json"
	"testing"

	"gpm/internal/engine"
	"gpm/internal/fleet"
)

// obsSchemaKeys is the stable -json schema of the engine counter block.
// Removing or renaming any of these breaks downstream consumers; additions
// are fine.
var obsSchemaKeys = []string{
	"decisions", "guard_overrides", "solver_nodes", "warm_hints",
	"solver_memo_hits", "solver_warm_solves", "solver_hint_returns", "solver_pruned",
	"dirty_cores", "delta_solves", "delta_certified", "delta_fallbacks",
	"invalidate_budget_step", "invalidate_core_death", "invalidate_emergency", "invalidate_degraded",
}

func keysOf(t *testing.T, v interface{}) map[string]json.RawMessage {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	m := map[string]json.RawMessage{}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return m
}

// TestObsSummarySchema pins the counter block's key set and checks the
// engine → summary field mapping carries the delta-path values through.
func TestObsSummarySchema(t *testing.T) {
	o := engine.ObsCounters{
		Decisions:            7,
		SolverMemoHits:       5,
		DirtyCores:           11,
		DeltaSolves:          4,
		DeltaCertified:       3,
		DeltaFallbacks:       1,
		InvalidateBudgetStep: 2,
		InvalidateCoreDeath:  1,
		InvalidateEmergency:  1,
		InvalidateDegraded:   1,
	}
	m := keysOf(t, newObsSummary(o))
	for _, k := range obsSchemaKeys {
		if _, ok := m[k]; !ok {
			t.Errorf("obs summary missing key %q", k)
		}
	}
	var got obsSummary
	data, _ := json.Marshal(newObsSummary(o))
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.DeltaSolves != 4 || got.DeltaCertified != 3 || got.DeltaFallbacks != 1 || got.DirtyCores != 11 {
		t.Errorf("delta counters lost in round trip: %+v", got)
	}
	if got.InvalidateBudgetStep != 2 || got.InvalidateCoreDeath != 1 {
		t.Errorf("invalidation counters lost in round trip: %+v", got)
	}
}

// TestRunSummarySchema pins the top-level run summary keys.
func TestRunSummarySchema(t *testing.T) {
	m := keysOf(t, runSummary{Kind: "run"})
	for _, k := range []string{"kind", "policy", "combo", "budget_frac", "budget_w",
		"degradation", "avg_chip_power_w", "total_instr", "obs"} {
		if _, ok := m[k]; !ok {
			t.Errorf("run summary missing key %q", k)
		}
	}
}

// TestXcheckSummarySchema pins the cross-substrate summary keys, including
// the per-substrate obs blocks.
func TestXcheckSummarySchema(t *testing.T) {
	s := xcheckSummary{Kind: "xcheck", Policies: []xcheckPolicySummary{{Policy: "MaxBIPS"}}}
	m := keysOf(t, s)
	for _, k := range []string{"kind", "combo", "budget_frac", "intervals", "rank_agree", "policies"} {
		if _, ok := m[k]; !ok {
			t.Errorf("xcheck summary missing key %q", k)
		}
	}
	var rows []map[string]json.RawMessage
	if err := json.Unmarshal(m["policies"], &rows); err != nil || len(rows) != 1 {
		t.Fatalf("policies block: %v (%d rows)", err, len(rows))
	}
	for _, k := range []string{"policy", "trace_deg", "full_deg", "deg_gap", "trace_obs", "full_obs"} {
		if _, ok := rows[0][k]; !ok {
			t.Errorf("xcheck policy row missing key %q", k)
		}
	}
}

// TestFleetSummaryAggregation checks the fleet summary folds epoch-solve
// telemetry and sums chip counters.
func TestFleetSummaryAggregation(t *testing.T) {
	res := &fleet.Result{
		Chips: 2,
		EpochLog: []fleet.EpochStats{
			{DirtyChips: 2},
			{DirtyChips: 0, SolveSkipped: true},
			{DirtyChips: 1},
		},
		ChipResults: []*engine.Result{
			{Obs: engine.ObsCounters{DeltaSolves: 3, DeltaCertified: 2, DirtyCores: 5}},
			{Obs: engine.ObsCounters{DeltaSolves: 1, DeltaFallbacks: 1, DirtyCores: 2}},
		},
	}
	s := newFleetSummary(res)
	if s.Epochs != 3 || s.EpochSolvesSkipped != 1 || s.EpochDirtyChips != 3 {
		t.Errorf("epoch telemetry = %d/%d/%d, want 3/1/3", s.Epochs, s.EpochSolvesSkipped, s.EpochDirtyChips)
	}
	if s.ChipObs.DeltaSolves != 4 || s.ChipObs.DeltaCertified != 2 || s.ChipObs.DeltaFallbacks != 1 || s.ChipObs.DirtyCores != 7 {
		t.Errorf("chip obs aggregation wrong: %+v", s.ChipObs)
	}
	m := keysOf(t, s)
	for _, k := range []string{"kind", "chips", "throughput_rps", "jain_fairness", "completed",
		"shed", "epochs", "epoch_solves_skipped", "epoch_dirty_chips", "chip_obs"} {
		if _, ok := m[k]; !ok {
			t.Errorf("fleet summary missing key %q", k)
		}
	}
}
