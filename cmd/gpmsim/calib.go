package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpm/internal/core"
	"gpm/internal/experiment"
	"gpm/internal/workload"
)

var flagJSON = flag.Bool("json", false, "emit the 'calib'/'regret' reports as JSON (full per-interval series) instead of tables")

// calibCmd runs the predictor-calibration sweep: matched cmpsim/fullsim
// recordings at -budget for the default policy set, scored with the
// last-value §5.5 predictor and the history-table phase predictor.
func calibCmd(env *experiment.Env) error {
	combo, err := workload.FindCombo(*flagCombo)
	if err != nil {
		return err
	}
	intervals := *flagIntervals
	if intervals <= 0 {
		intervals = 8
	}
	res, err := env.CalibrationSweep(combo, []float64{*flagBudget}, intervals, nil, core.DefaultHistory())
	if err != nil {
		return err
	}
	if *flagJSON {
		return emitJSON(res)
	}
	emit(res.Table())
	return nil
}

// regretCmd records one run under -policy at -budget and replays its
// telemetry through the default alternate policies, reporting per-interval
// and cumulative regret versus the recorded decisions and the
// true-telemetry oracle.
func regretCmd(env *experiment.Env) error {
	combo, err := workload.FindCombo(*flagCombo)
	if err != nil {
		return err
	}
	pol, err := core.SolverRegistry(strings.ToLower(*flagPolicy), solverOpts())
	if err != nil {
		return err
	}
	intervals := *flagIntervals
	if intervals <= 0 {
		intervals = 12
	}
	res, err := env.CounterfactualReplay(combo, pol, *flagBudget, intervals, nil)
	if err != nil {
		return err
	}
	if *flagJSON {
		return emitJSON(res)
	}
	emit(res.Table())
	return nil
}

func emitJSON(v interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("json: %w", err)
	}
	return nil
}
