package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpm/internal/core"
	"gpm/internal/experiment"
	"gpm/internal/workload"
)

var (
	flagJSON        = flag.Bool("json", false, "emit the 'calib'/'regret' reports (full per-interval series) and the 'run'/'xcheck'/'fleet' summaries (engine counters, delta-solve telemetry) as JSON instead of tables")
	flagHistorySave = flag.String("history-save", "", "after 'calib', write the history predictor's trained phase-signature tables (versioned JSON) from the sweep's reference lane to this file")
	flagHistoryLoad = flag.String("history-load", "", "before 'calib', prime every history-predictor lane from this previously saved state file (validated; must match the sweep's history config and core count)")
)

// calibCmd runs the predictor-calibration sweep: matched cmpsim/fullsim
// recordings at -budget for the default policy set, scored with the
// last-value §5.5 predictor and the history-table phase predictor.
func calibCmd(env *experiment.Env) error {
	combo, err := workload.FindCombo(*flagCombo)
	if err != nil {
		return err
	}
	intervals := *flagIntervals
	if intervals <= 0 {
		intervals = 8
	}
	var prime *core.HistoryState
	if *flagHistoryLoad != "" {
		data, err := os.ReadFile(*flagHistoryLoad)
		if err != nil {
			return fmt.Errorf("history-load: %w", err)
		}
		prime = &core.HistoryState{}
		if err := json.Unmarshal(data, prime); err != nil {
			return fmt.Errorf("history-load %s: %w", *flagHistoryLoad, err)
		}
		if err := prime.Validate(); err != nil {
			return fmt.Errorf("history-load %s: %w", *flagHistoryLoad, err)
		}
	}
	res, trained, err := env.CalibrationSweepWithState(combo, []float64{*flagBudget}, intervals, nil, core.DefaultHistory(), prime)
	if err != nil {
		return err
	}
	if *flagHistorySave != "" {
		if trained == nil {
			return fmt.Errorf("history-save: sweep produced no trained state")
		}
		data, err := json.MarshalIndent(trained, "", "  ")
		if err != nil {
			return fmt.Errorf("history-save: %w", err)
		}
		if err := os.WriteFile(*flagHistorySave, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("history-save: %w", err)
		}
		fmt.Fprintf(os.Stderr, "history state: %d cores -> %s\n", len(trained.Tables), *flagHistorySave)
	}
	if *flagJSON {
		return emitJSON(res)
	}
	emit(res.Table())
	return nil
}

// regretCmd records one run under -policy at -budget and replays its
// telemetry through the default alternate policies, reporting per-interval
// and cumulative regret versus the recorded decisions and the
// true-telemetry oracle.
func regretCmd(env *experiment.Env) error {
	combo, err := workload.FindCombo(*flagCombo)
	if err != nil {
		return err
	}
	pol, err := core.SolverRegistry(strings.ToLower(*flagPolicy), solverOpts())
	if err != nil {
		return err
	}
	intervals := *flagIntervals
	if intervals <= 0 {
		intervals = 12
	}
	res, err := env.CounterfactualReplay(combo, pol, *flagBudget, intervals, nil)
	if err != nil {
		return err
	}
	if *flagJSON {
		return emitJSON(res)
	}
	emit(res.Table())
	return nil
}

func emitJSON(v interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("json: %w", err)
	}
	return nil
}
