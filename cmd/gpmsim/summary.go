package main

import (
	"gpm/internal/engine"
	"gpm/internal/experiment"
	"gpm/internal/fleet"
)

// obsSummary is the machine-readable shape of the engine's observability
// counters inside -json run summaries. Field names are the stable schema
// (summary_test.go pins them); extend, never rename.
type obsSummary struct {
	Decisions         int   `json:"decisions"`
	GuardOverrides    int   `json:"guard_overrides"`
	SolverNodes       int64 `json:"solver_nodes"`
	WarmHints         int   `json:"warm_hints"`
	SolverMemoHits    int64 `json:"solver_memo_hits"`
	SolverWarmSolves  int64 `json:"solver_warm_solves"`
	SolverHintReturns int64 `json:"solver_hint_returns"`
	SolverPruned      int64 `json:"solver_pruned"`
	// Delta decision path: dirty cores seen by delta-eligible intervals,
	// incremental re-solve attempts, certified (returned) patches, and
	// attempts demoted to a full warm solve.
	DirtyCores     int64 `json:"dirty_cores"`
	DeltaSolves    int64 `json:"delta_solves"`
	DeltaCertified int64 `json:"delta_certified"`
	DeltaFallbacks int64 `json:"delta_fallbacks"`
	// Session invalidations per discontinuity class.
	InvalidateBudgetStep int `json:"invalidate_budget_step"`
	InvalidateCoreDeath  int `json:"invalidate_core_death"`
	InvalidateEmergency  int `json:"invalidate_emergency"`
	InvalidateDegraded   int `json:"invalidate_degraded"`
}

func newObsSummary(o engine.ObsCounters) obsSummary {
	return obsSummary{
		Decisions:            o.Decisions,
		GuardOverrides:       o.GuardOverrides,
		SolverNodes:          o.SolverNodes,
		WarmHints:            o.WarmHints,
		SolverMemoHits:       o.SolverMemoHits,
		SolverWarmSolves:     o.SolverWarmSolves,
		SolverHintReturns:    o.SolverHintReturns,
		SolverPruned:         o.SolverPruned,
		DirtyCores:           o.DirtyCores,
		DeltaSolves:          o.DeltaSolves,
		DeltaCertified:       o.DeltaCertified,
		DeltaFallbacks:       o.DeltaFallbacks,
		InvalidateBudgetStep: o.InvalidateBudgetStep,
		InvalidateCoreDeath:  o.InvalidateCoreDeath,
		InvalidateEmergency:  o.InvalidateEmergency,
		InvalidateDegraded:   o.InvalidateDegraded,
	}
}

// runSummary is the -json report of `gpmsim run`.
type runSummary struct {
	Kind          string     `json:"kind"` // "run"
	Policy        string     `json:"policy"`
	Combo         string     `json:"combo"`
	BudgetFrac    float64    `json:"budget_frac"`
	BudgetW       float64    `json:"budget_w"`
	Degradation   float64    `json:"degradation"`
	AvgChipPowerW float64    `json:"avg_chip_power_w"`
	TotalInstr    float64    `json:"total_instr"`
	Obs           obsSummary `json:"obs"`
}

// xcheckPolicySummary is one policy's row in the -json report of
// `gpmsim xcheck`, with per-substrate observability counters.
type xcheckPolicySummary struct {
	Policy   string     `json:"policy"`
	TraceDeg float64    `json:"trace_deg"`
	FullDeg  float64    `json:"full_deg"`
	DegGap   float64    `json:"deg_gap"`
	TraceObs obsSummary `json:"trace_obs"`
	FullObs  obsSummary `json:"full_obs"`
}

type xcheckSummary struct {
	Kind       string                `json:"kind"` // "xcheck"
	Combo      string                `json:"combo"`
	BudgetFrac float64               `json:"budget_frac"`
	Intervals  int                   `json:"intervals"`
	RankAgree  bool                  `json:"rank_agree"`
	Policies   []xcheckPolicySummary `json:"policies"`
}

func newXcheckSummary(res *experiment.CrossSubstrateResult) xcheckSummary {
	out := xcheckSummary{
		Kind:       "xcheck",
		Combo:      res.ComboID,
		BudgetFrac: res.BudgetFrac,
		Intervals:  res.Intervals,
		RankAgree:  res.RankAgree,
	}
	for _, r := range res.Rows {
		out.Policies = append(out.Policies, xcheckPolicySummary{
			Policy:   r.Policy,
			TraceDeg: r.TraceDeg,
			FullDeg:  r.FullDeg,
			DegGap:   r.DegGap,
			TraceObs: newObsSummary(r.TraceObs),
			FullObs:  newObsSummary(r.FullObs),
		})
	}
	return out
}

// fleetSummary is the -json report of `gpmsim fleet`: serving outcome plus
// the arbiter's epoch-solve telemetry and the chips' aggregated engine
// counters (delta path included).
type fleetSummary struct {
	Kind          string  `json:"kind"` // "fleet"
	Chips         int     `json:"chips"`
	ThroughputRPS float64 `json:"throughput_rps"`
	JainFairness  float64 `json:"jain_fairness"`
	Completed     int     `json:"completed"`
	Shed          int     `json:"shed"`
	// Epochs counts arbiter rebalances; EpochSolvesSkipped the ones answered
	// by the generation handshake without a solve; EpochDirtyChips the total
	// dirty-chip count the handshake reported across epochs.
	Epochs             int        `json:"epochs"`
	EpochSolvesSkipped int        `json:"epoch_solves_skipped"`
	EpochDirtyChips    int        `json:"epoch_dirty_chips"`
	ChipObs            obsSummary `json:"chip_obs"` // summed across chips
}

func newFleetSummary(res *fleet.Result) fleetSummary {
	out := fleetSummary{
		Kind:          "fleet",
		Chips:         res.Chips,
		ThroughputRPS: res.ThroughputRPS,
		JainFairness:  res.JainFairness,
		Completed:     res.Completed,
		Shed:          res.Shed,
		Epochs:        len(res.EpochLog),
	}
	for _, e := range res.EpochLog {
		if e.SolveSkipped {
			out.EpochSolvesSkipped++
		}
		out.EpochDirtyChips += e.DirtyChips
	}
	var agg engine.ObsCounters
	for _, cr := range res.ChipResults {
		agg.Decisions += cr.Obs.Decisions
		agg.GuardOverrides += cr.Obs.GuardOverrides
		agg.SolverNodes += cr.Obs.SolverNodes
		agg.WarmHints += cr.Obs.WarmHints
		agg.SolverMemoHits += cr.Obs.SolverMemoHits
		agg.SolverWarmSolves += cr.Obs.SolverWarmSolves
		agg.SolverHintReturns += cr.Obs.SolverHintReturns
		agg.SolverPruned += cr.Obs.SolverPruned
		agg.DirtyCores += cr.Obs.DirtyCores
		agg.DeltaSolves += cr.Obs.DeltaSolves
		agg.DeltaCertified += cr.Obs.DeltaCertified
		agg.DeltaFallbacks += cr.Obs.DeltaFallbacks
		agg.InvalidateBudgetStep += cr.Obs.InvalidateBudgetStep
		agg.InvalidateCoreDeath += cr.Obs.InvalidateCoreDeath
		agg.InvalidateEmergency += cr.Obs.InvalidateEmergency
		agg.InvalidateDegraded += cr.Obs.InvalidateDegraded
	}
	out.ChipObs = newObsSummary(agg)
	return out
}
