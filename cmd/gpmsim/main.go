// Command gpmsim reproduces the paper's tables and figures and runs custom
// global-power-management simulations on the trace-based CMP analysis tool.
//
// Usage:
//
//	gpmsim [flags] <experiment> [experiment...]
//
// Experiments: table4 table5 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
// fig11 validate xcheck modecount explore scaleout transrate minpower
// selectors thermal sched resilience scaling fleet calib regret run all
//
// Examples:
//
//	gpmsim fig4                                       # curves for the 4-way baseline combo
//	gpmsim -quick fig11                               # reduced horizon & grid
//	gpmsim -policy maxbips -combo 4w-mcf-mcf-art-art -budget 0.75 run
//	gpmsim -csv fig4                                  # machine-readable output
//	gpmsim -quick resilience                          # degradation vs sensor-fault rate
//	gpmsim -fault "stuck=0:0.5:2ms" -guard run        # guarded run with a stuck sensor
//	gpmsim scaling                                    # solver quality/wall-clock at 8..1024 cores
//	gpmsim -solver bb -combo 8w-mixed -budget 0.75 run  # exact BB-backed MaxBIPS run
//	gpmsim -solver hier -clusters 16 scaling          # hierarchical solver, 16-core clusters
//	gpmsim -quick xcheck                              # per-policy cmpsim vs fullsim agreement
//	gpmsim -trace out.jsonl run                       # record the decision trace (JSONL)
//	gpmsim replay out.jsonl                           # re-drive the run from its trace
//	gpmsim -trace pair -quick xcheck                  # also record pair.cmpsim/.fullsim.jsonl
//	gpmsim tracediff pair.cmpsim.jsonl pair.fullsim.jsonl  # first diverging interval/core/field
//	gpmsim -quick fleet                               # 8-chip facility: serving, cap-cut cascade, cap sweep
//	gpmsim -quick calib                               # predictor MAPE/bias/r vs both substrates
//	gpmsim -quick -json regret                        # per-interval regret of alternate policies vs a MaxBIPS recording
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"gpm/internal/cmpsim"
	"gpm/internal/core"
	"gpm/internal/experiment"
	"gpm/internal/fault"
	"gpm/internal/metrics"
	"gpm/internal/obs"
	"gpm/internal/report"
	"gpm/internal/solver"
	"gpm/internal/workload"
)

var (
	flagQuick   = flag.Bool("quick", false, "reduced horizon (15 ms) and budget grid for fast runs")
	flagCSV     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flagPolicy  = flag.String("policy", "maxbips", "policy for 'run': maxbips|greedy|priority|pullhipushlo|chipwide|oracle|stable|fairness|hierarchical|maxbips-dp|maxbips-bb|maxbips-hier|maxbips-sharded")
	flagCombo   = flag.String("combo", "4w-ammp-mcf-crafty-art", "workload combo ID for 'run' (see Table 2 IDs)")
	flagBudget  = flag.Float64("budget", 0.80, "budget fraction of max chip power for 'run'")
	flagHorizon = flag.Duration("horizon", 0, "override simulation horizon (e.g. 20ms)")
	flagFault   = flag.String("fault", "", "fault scenario for 'run'/'resilience', e.g. \"seed=7,noise=0.05,stuck=1:0.5:2ms,death=3:8ms\" (see internal/fault.ParseScenario)")
	flagGuard   = flag.Bool("guard", false, "guard 'run' with the ResilientManager (sanitization, emergency throttle, core parking)")
	flagSolver  = flag.String("solver", "", "allocation solver for 'run'/'scaling': exhaustive|dp|bb|hier|greedy (for 'run', overrides -policy with a solver-backed MaxBIPS)")
	flagCluster = flag.Int("clusters", 0, "hierarchical solver cluster size (0 = default 8)")
	flagQuantum = flag.Float64("quantum", 0, "DP power quantum in watts (0 = adaptive default)")
	flagTrace   = flag.String("trace", "", "record the decision trace of 'run' to this JSONL file (for 'xcheck': record a <name>.cmpsim.jsonl/<name>.fullsim.jsonl pair)")
	flagWorkers = flag.Int("workers", 0, "worker-pool size for parallel sweeps and fullsim stepping (0 = GOMAXPROCS, 1 = serial; results are identical for every value)")
	flagPprof   = flag.String("pprof", "", "write a CPU profile of the whole invocation to this file")

	flagSeed      = flag.Int64("seed", 1, "base PRNG seed for 'chaos' fault schedules")
	flagRuns      = flag.Int("runs", 2, "randomized fault schedules per policy×budget cell for 'chaos'")
	flagIntervals = flag.Int("intervals", 0, "explore intervals per 'chaos' run (0 = default 25)")
	flagDeadline  = flag.Duration("deadline", 0, "per-decision wall-clock deadline for 'chaos' (0 = deterministic node-budget mode; >0 arms the watchdog and injected solver stalls, disabling the bit-identical-rerun monitor)")
	flagFullsim   = flag.Bool("fullsim", false, "also soak the cycle-level substrate in 'chaos'")
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gpmsim [flags] <experiment>... | replay <trace.jsonl> | tracediff <a.jsonl> <b.jsonl>")
		fmt.Fprintln(os.Stderr, "experiments: table4 table5 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 validate xcheck modecount explore scaleout transrate minpower selectors thermal sched resilience chaos scaling fleet calib regret run all")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *flagPprof != "" {
		f, err := os.Create(*flagPprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpmsim -pprof: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gpmsim -pprof: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	env := buildEnv()
	args := flag.Args()
	ok := true
	for i := 0; i < len(args); i++ {
		cmd := args[i]
		var err error
		switch cmd {
		// Trace commands consume file operands from the argument list.
		case "replay":
			if i+1 >= len(args) {
				err = fmt.Errorf("usage: gpmsim replay <trace.jsonl>")
			} else {
				err = replayCmd(env, args[i+1])
				i++
			}
		case "tracediff":
			if i+2 >= len(args) {
				err = fmt.Errorf("usage: gpmsim tracediff <a.jsonl> <b.jsonl>")
			} else {
				err = tracediffCmd(args[i+1], args[i+2])
				i += 2
			}
		default:
			err = dispatch(env, cmd)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpmsim %s: %v\n", cmd, err)
			ok = false
			break
		}
	}
	// Flush the profile (deferred) before exiting on error.
	if !ok {
		if *flagPprof != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}

func buildEnv() *experiment.Env {
	env := experiment.NewEnv(4)
	if *flagQuick {
		env = env.ShortHorizon(15 * time.Millisecond)
		env.Budgets = []float64{0.60, 0.70, 0.80, 0.90, 1.00}
	}
	if *flagHorizon > 0 {
		env = env.ShortHorizon(*flagHorizon)
	}
	env.Workers = *flagWorkers
	return env
}

func emit(t *report.Table) {
	if *flagCSV {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t.String())
}

func dispatch(env *experiment.Env, cmd string) error {
	switch cmd {
	case "all":
		for _, c := range []string{"table4", "table5", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "validate", "modecount", "explore", "scaleout", "transrate", "minpower", "selectors", "thermal", "sched", "resilience", "scaling"} {
			if err := dispatch(env, c); err != nil {
				return err
			}
		}
		return nil
	case "table4":
		return table4(env)
	case "table5":
		return table5(env)
	case "fig2":
		return fig2(env)
	case "fig3":
		return fig3(env)
	case "fig4":
		return fig4(env)
	case "fig5":
		return fig5(env)
	case "fig6":
		return fig6(env)
	case "fig7":
		return fig7(env)
	case "fig8":
		return figScaling(env, 2)
	case "fig9":
		return figScaling(env, 4)
	case "fig10":
		return figScaling(env, 8)
	case "fig11":
		return fig11(env)
	case "validate":
		return validate(env)
	case "xcheck":
		return xcheck(env)
	case "modecount":
		return modecount(env)
	case "explore":
		return explore(env)
	case "scaleout":
		return scaleout(env)
	case "transrate":
		return transrate(env)
	case "minpower":
		return minpower(env)
	case "selectors":
		return selectors(env)
	case "thermal":
		return thermalCmd(env)
	case "sched":
		return sched(env)
	case "resilience":
		return resilience(env)
	case "chaos":
		return chaos(env)
	case "scaling":
		return solverScaling(env)
	case "fleet":
		return fleetCmd(env)
	case "calib":
		return calibCmd(env)
	case "regret":
		return regretCmd(env)
	case "run":
		return custom(env)
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

func table4(env *experiment.Env) error {
	t := report.NewTable("Table 4: analytic DVFS estimates", "mode", "V scale", "f scale", "power savings", "perf degradation", "ratio")
	for _, r := range experiment.Table4(env.Plan) {
		t.AddRow(r.Mode, fmt.Sprintf("%.2f", r.VScale), fmt.Sprintf("%.2f", r.FScale),
			report.Pct(r.PowerSavings), report.Pct(r.PerfDegradation), fmt.Sprintf("%.2f", r.SavingsPerDegrade))
	}
	emit(t)
	return nil
}

func table5(env *experiment.Env) error {
	t := report.NewTable("Table 5: DVFS transition overheads", "transition", "ΔV [mV]", "t [µs]")
	for _, r := range experiment.Table5(env.Plan) {
		t.AddRow(r.From+" -> "+r.To, fmt.Sprintf("%.0f", r.DeltaV*1000), fmt.Sprintf("%.1f", r.Overhead.Seconds()*1e6))
	}
	emit(t)
	return nil
}

func fig2(env *experiment.Env) error {
	rows, err := env.Figure2()
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 2: measured ∆PowerSavings : ∆PerfDegradation", "benchmark", "mode", "power savings", "perf degradation")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Mode, report.Pct(r.PowerSavings), report.Pct(r.PerfDegradation))
	}
	emit(t)
	return nil
}

func fig3(env *experiment.Env) error {
	series, err := env.Figure3()
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 3: chip power at 83% budget", "combo", "policy", "avg power", "degradation")
	for _, s := range series {
		t.AddRow(s.ComboID, s.Policy, report.Pct(s.AvgPowerFrac), report.Pct(s.Degradation))
	}
	emit(t)
	if !*flagCSV {
		for _, s := range series {
			ts := report.NewTimeSeries(fmt.Sprintf("%s / %s (budget 83%%)", s.ComboID, s.Policy), "time →", 100)
			ts.Add("chip power", s.ChipPowerFrac)
			fmt.Println(ts.String())
		}
	}
	return nil
}

func curveTable(title string, curves []*experiment.PolicyCurve) *report.Table {
	t := report.NewTable(title, "policy", "budget", "degradation", "weighted slowdown", "power/budget", "power saving")
	for _, c := range curves {
		for i := range c.Budgets {
			t.AddRow(c.Policy, report.Pct(c.Budgets[i]), report.Pct(c.Degradation[i]),
				report.Pct(c.WeightedSlowdown[i]), report.Pct(c.BudgetFit[i]), report.Pct(c.PowerSaving[i]))
		}
	}
	return t
}

func fig4(env *experiment.Env) error {
	f4, err := env.Figure4()
	if err != nil {
		return err
	}
	emit(curveTable("Figure 4: policy/budget/weighted-slowdown curves ("+f4.ComboID+")", f4.Curves))
	return nil
}

func fig5(env *experiment.Env) error {
	pts, err := env.Figure5()
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 5: power saving vs perf degradation (target 3:1)", "policy", "budget", "power saving", "perf degradation", "ratio")
	for _, p := range pts {
		ratio := "-"
		if p.PerfDegradation > 1e-6 {
			ratio = fmt.Sprintf("%.1f", p.PowerSaving/p.PerfDegradation)
		}
		t.AddRow(p.Policy, report.Pct(p.BudgetFrac), report.Pct(p.PowerSaving), report.Pct(p.PerfDegradation), ratio)
	}
	emit(t)
	return nil
}

func fig6(env *experiment.Env) error {
	drop := env.Cfg.Sim.Horizon / 2
	f6, err := env.Figure6(drop)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 6: MaxBIPS with budget drop 90% -> 70% at "+fmt.Sprintf("%.0fµs", f6.DropAtUs),
		"region", "avg BIPS (% of all-Turbo)")
	t.AddRow("before drop", report.Pct(f6.AvgBIPSBefore))
	t.AddRow("after drop", report.Pct(f6.AvgBIPSAfter))
	emit(t)
	if !*flagCSV {
		ts := report.NewTimeSeries("per-application power (fraction of max chip power)", "time →", 100)
		for c, name := range f6.Benchmarks {
			ts.Add(name, f6.CorePowerFrac[c])
		}
		ts.Add("budget", f6.BudgetFrac)
		fmt.Println(ts.String())
	}
	return nil
}

func fig7(env *experiment.Env) error {
	f7, err := env.Figure7()
	if err != nil {
		return err
	}
	emit(curveTable("Figure 7: MaxBIPS vs oracle, static, chip-wide ("+f7.ComboID+")", f7.Curves))
	return nil
}

func figScaling(env *experiment.Env, n int) error {
	sc, err := env.FigureScaling(n)
	if err != nil {
		return err
	}
	for _, combo := range sc.Combos {
		emit(curveTable(fmt.Sprintf("Figure %d (%d-way): %s", map[int]int{2: 8, 4: 9, 8: 10}[n], n, combo.ComboID), combo.Curves))
	}
	return nil
}

func fig11(env *experiment.Env) error {
	rows, err := env.Figure11(nil)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 11: mean degradation over oracle vs CMP scale", "cores", "MaxBIPS", "Static", "ChipWideDVFS")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Cores), report.Pct(r.MaxBIPS), report.Pct(r.Static), report.Pct(r.ChipWide))
	}
	emit(t)
	return nil
}

func validate(env *experiment.Env) error {
	v, err := env.Validation(workload.FourWay[0], 2_000_000, 20_000)
	if err != nil {
		return err
	}
	t := report.NewTable("Validation: trace characterization vs full-CMP simulation ("+v.ComboID+")",
		"benchmark", "ST power", "CMP power", "Δpower", "ST IPC", "CMP IPC", "ΔIPC")
	for _, r := range v.Rows {
		t.AddRow(r.Benchmark, report.W(r.STPowerW), report.W(r.CMPPowerW), report.Pct(r.PowerDelta),
			fmt.Sprintf("%.3f", r.STIPC), fmt.Sprintf("%.3f", r.CMPIPC), report.Pct(r.IPCDelta))
	}
	emit(t)
	fmt.Printf("mean power drop %.1f%% (CMP consistently lower), mean IPC drop %.1f%%, shared-L2 wait %d cycles\n\n",
		v.MeanPowerDrop*100, v.MeanIPCDrop*100, v.L2WaitCycles)
	return nil
}

// xcheck runs the cross-substrate agreement experiment: the same policies,
// budget and engine control loop on the trace players and the cycle-level
// chip, reporting per-policy throughput/power agreement.
func xcheck(env *experiment.Env) error {
	combo, err := workload.FindCombo(*flagCombo)
	if err != nil {
		return err
	}
	intervals := 24
	if *flagQuick {
		intervals = 10
	}
	res, err := env.CrossSubstrate(combo, *flagBudget, intervals, nil)
	if err != nil {
		return err
	}
	if *flagJSON {
		return emitJSON(newXcheckSummary(res))
	}
	t := report.NewTable(fmt.Sprintf("Cross-substrate agreement: %s at %.0f%% budget (%.1f W, %d intervals)",
		res.ComboID, res.BudgetFrac*100, res.BudgetW, res.Intervals),
		"policy", "trace deg", "full deg", "gap", "trace power", "full power", "trace fit", "full fit")
	for _, r := range res.Rows {
		t.AddRow(r.Policy, report.Pct(r.TraceDeg), report.Pct(r.FullDeg), report.Pct(r.DegGap),
			report.W(r.TraceAvgPowerW), report.W(r.FullAvgPowerW),
			report.Pct(r.TraceFit), report.Pct(r.FullFit))
	}
	emit(t)
	if res.RankAgree {
		fmt.Println("policy ranking: substrates agree")
	} else {
		fmt.Println("policy ranking: substrates DISAGREE")
	}
	fmt.Println()
	if *flagTrace != "" {
		// Record the first default policy on both substrates and write the
		// trace pair for `gpmsim tracediff`.
		pol := experiment.CrossSubstratePolicies()[0]
		ct, ft, err := env.CrossSubstrateTraced(combo, pol, *flagBudget, intervals)
		if err != nil {
			return err
		}
		base := strings.TrimSuffix(*flagTrace, ".jsonl")
		for _, pair := range []struct {
			path string
			tr   *obs.Trace
		}{{base + ".cmpsim.jsonl", ct}, {base + ".fullsim.jsonl", ft}} {
			f, err := os.Create(pair.path)
			if err != nil {
				return err
			}
			err = obs.WriteTrace(f, pair.tr)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace: %d decisions -> %s\n", len(pair.tr.Records), pair.path)
		}
		fmt.Fprintf(os.Stderr, "compare with: gpmsim tracediff %s.cmpsim.jsonl %s.fullsim.jsonl\n", base, base)
	}
	return nil
}

func modecount(env *experiment.Env) error {
	rows, err := env.AblationModeCount([]int{3, 5, 7}, 0.80)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A1: DVFS level count at 80% budget", "levels", "MaxBIPS degradation", "chip-wide degradation")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Levels), report.Pct(r.MaxBIPSDegradation), report.Pct(r.ChipWideDegradation))
	}
	emit(t)
	return nil
}

func explore(env *experiment.Env) error {
	rows, err := env.AblationExploreInterval([]time.Duration{100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond}, 0.80)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A2: explore-interval sensitivity at 80% budget", "explore", "degradation", "stall share", "overshoot")
	for _, r := range rows {
		t.AddRow(r.Explore.String(), report.Pct(r.Degradation), report.Pct(r.StallShare), report.Pct(r.Overshoot))
	}
	emit(t)
	return nil
}

func scaleout(env *experiment.Env) error {
	rows, err := env.AblationScaleOut([]int{2, 4, 8, 16, 32, 64}, 0.80)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A3: exhaustive vs greedy MaxBIPS at 80% budget", "cores", "exhaustive", "greedy")
	for _, r := range rows {
		ex := "-"
		if r.ExhaustiveRan {
			ex = report.Pct(r.ExhaustiveDegradation)
		}
		t.AddRow(fmt.Sprintf("%d", r.Cores), ex, report.Pct(r.GreedyDegradation))
	}
	emit(t)
	return nil
}

func transrate(env *experiment.Env) error {
	rows, err := env.AblationTransitionRate([]float64{0.005, 0.010, 0.020}, 0.80)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A4: DVFS ramp-rate sensitivity at 80% budget", "rate [mV/µs]", "Turbo->Eff2", "degradation", "stall share")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f", r.RateVPerUs*1000), r.TurboToEff2.String(), report.Pct(r.Degradation), report.Pct(r.StallShare))
	}
	emit(t)
	return nil
}

func minpower(env *experiment.Env) error {
	rows, err := env.AblationMinPower([]float64{0.99, 0.97, 0.95, 0.90})
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A5: MinPower dual problem", "throughput floor", "degradation", "power saving")
	for _, r := range rows {
		t.AddRow(report.Pct(r.TargetFrac), report.Pct(r.Degradation), report.Pct(r.PowerSaving))
	}
	emit(t)
	return nil
}

// solverOpts collects the -clusters/-quantum knobs for solver-backed runs.
func solverOpts() solver.Options {
	return solver.Options{QuantumW: *flagQuantum, ClusterSize: *flagCluster}
}

func custom(env *experiment.Env) error {
	var pol core.Policy
	var err error
	if *flagSolver != "" {
		s, serr := solver.New(strings.ToLower(*flagSolver), solverOpts())
		if serr != nil {
			return serr
		}
		// Session-capable: the run is a single sequential engine loop, so the
		// pointer policy is safe and rides the warm/delta fast paths the
		// sweeps' copied value policies must forgo.
		pol = core.NewSolverPolicy(s)
	} else {
		pol, err = core.SolverRegistry(strings.ToLower(*flagPolicy), solverOpts())
		if err != nil {
			return err
		}
	}
	combo, err := workload.FindCombo(*flagCombo)
	if err != nil {
		return err
	}
	sc, err := fault.ParseScenario(*flagFault)
	if err != nil {
		return err
	}
	var scp *fault.Scenario
	if sc.Enabled() {
		scp = &sc
	}
	var guard *core.GuardConfig
	if *flagGuard {
		g := core.DefaultGuard()
		guard = &g
	}
	var tw *obs.Writer
	if *flagTrace != "" {
		f, err := os.Create(*flagTrace)
		if err != nil {
			return err
		}
		defer f.Close()
		m := env.Manifest("cmpsim", combo, pol.Name(), fmt.Sprintf("frac=%.4f", *flagBudget), *flagFault, guard != nil)
		tw, err = obs.NewWriter(f, m)
		if err != nil {
			return err
		}
		env.Observer = tw
		defer func() { env.Observer = nil }()
	}
	res, base, err := env.RunPolicyResilient(combo, pol, *flagBudget, scp, guard)
	if err != nil {
		return err
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d decisions -> %s\n", res.Obs.TraceRecords, *flagTrace)
	}
	if *flagJSON {
		return emitJSON(runSummary{
			Kind:          "run",
			Policy:        pol.Name(),
			Combo:         combo.ID,
			BudgetFrac:    *flagBudget,
			BudgetW:       *flagBudget * base.EnvelopePowerW(),
			Degradation:   metrics.Degradation(res.TotalInstr, base.TotalInstr),
			AvgChipPowerW: res.AvgChipPowerW(),
			TotalInstr:    res.TotalInstr,
			Obs:           newObsSummary(res.Obs),
		})
	}
	sp, err := metrics.PerThreadSpeedups(res.PerCoreInstr, base.PerCoreInstr)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Run: %s on %s at %.0f%% budget", pol.Name(), combo.ID, *flagBudget*100),
		"metric", "value")
	t.AddRow("degradation", report.Pct(metrics.Degradation(res.TotalInstr, base.TotalInstr)))
	t.AddRow("weighted slowdown", report.Pct(metrics.WeightedSlowdown(sp)))
	t.AddRow("avg chip power", report.W(res.AvgChipPowerW()))
	t.AddRow("budget", report.W(*flagBudget*base.EnvelopePowerW()))
	t.AddRow("transition stall", res.TransitionStall.String())
	t.AddRow("overshoot intervals", fmt.Sprintf("%d/%d", res.OvershootIntervals, len(res.ChipPowerW)))
	if scp != nil || guard != nil {
		t.AddRow("worst sustained overshoot", fmt.Sprintf("%.3g W·s", res.WorstOvershootWs))
		t.AddRow("overshoot energy", fmt.Sprintf("%.3g W·s", res.OvershootEnergyWs))
	}
	if guard != nil {
		t.AddRow("emergency entries", fmt.Sprintf("%d", res.EmergencyEntries))
		t.AddRow("emergency intervals", fmt.Sprintf("%d", res.EmergencyIntervals))
		t.AddRow("recovery latency", res.RecoveryLatency.String())
		t.AddRow("sanitized samples", fmt.Sprintf("%d", res.SanitizedSamples))
		t.AddRow("dead cores", fmt.Sprintf("%v", res.DeadCores))
	}
	emit(t)
	emit(obs.CountersTable(res.Obs))
	if !*flagCSV {
		ts := report.NewTimeSeries("chip power [W]", "time →", 100)
		ts.Add("power", res.ChipPowerW)
		ts.Add("budget", res.BudgetW)
		fmt.Println(ts.String())
	}
	return nil
}

// replayCmd re-drives a recorded run from its trace: the replay Decider feeds
// the engine the recorded mode vectors and budgets on a fresh substrate, and
// the Result fingerprint is checked against the one stamped in the trace
// footer. Runs recorded with a thermal governor cannot be verified this way
// (the governor's parameters are not in the trace).
func replayCmd(env *experiment.Env, path string) error {
	tr, err := obs.ReadTraceFile(path)
	if err != nil {
		return err
	}
	m := tr.Manifest
	combo, err := workload.FindCombo(m.ComboID)
	if err != nil {
		return fmt.Errorf("trace combo: %w", err)
	}
	// Fault scenario and horizon default from the manifest inside cmpsim.Run.
	res, err := cmpsim.Run(env.Lib, combo, cmpsim.Options{Replay: tr})
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Replay: %s on %s (%s, %d recorded decisions)",
		tr.PolicyName(), m.ComboID, m.Substrate, len(tr.Records)),
		"metric", "value")
	t.AddRow("total instructions", fmt.Sprintf("%.4g", res.TotalInstr))
	t.AddRow("avg chip power", report.W(res.AvgChipPowerW()))
	t.AddRow("energy", fmt.Sprintf("%.4g J", res.EnergyJ))
	t.AddRow("transition stall", res.TransitionStall.String())
	got := fmt.Sprintf("%016x", obs.ResultFingerprint(res))
	t.AddRow("replayed fingerprint", got)
	if tr.Footer != nil {
		t.AddRow("recorded fingerprint", tr.Footer.Fingerprint)
	}
	emit(t)
	switch {
	case tr.Footer == nil:
		fmt.Println("replay: trace has no footer; nothing to verify against")
	case got == tr.Footer.Fingerprint:
		fmt.Println("replay: bit-identical to the recorded run")
	default:
		fmt.Println("replay: DIVERGED from the recorded run (thermal-governed traces cannot be re-verified)")
	}
	fmt.Println()
	return nil
}

// tracediffCmd structurally compares two decision traces and names the first
// diverging interval, core and field — e.g. a cmpsim-vs-fullsim pair recorded
// by `gpmsim -trace <name> xcheck`.
func tracediffCmd(pathA, pathB string) error {
	a, err := obs.ReadTraceFile(pathA)
	if err != nil {
		return err
	}
	b, err := obs.ReadTraceFile(pathB)
	if err != nil {
		return err
	}
	fmt.Printf("A: %s (%s, %d records)\nB: %s (%s, %d records)\n",
		pathA, a.Manifest.Substrate, len(a.Records), pathB, b.Manifest.Substrate, len(b.Records))
	if d := obs.Diff(a, b); d != nil {
		fmt.Println(d)
		return nil
	}
	fmt.Println("traces are structurally identical")
	return nil
}

func resilience(env *experiment.Env) error {
	combo, err := workload.FindCombo(*flagCombo)
	if err != nil {
		return err
	}
	rates := []float64{0, 0.05, 0.10, 0.25}
	if *flagQuick {
		rates = []float64{0, 0.10, 0.25}
	}
	opts := experiment.ResilienceOptions{BudgetFrac: *flagBudget}
	if sc, err := fault.ParseScenario(*flagFault); err != nil {
		return err
	} else if sc.Enabled() {
		// An explicit -fault scenario replaces the rate-scaled profile; the
		// rate column then only varies the seed.
		opts.Scenario = func(rate float64, seed int64) fault.Scenario {
			out := sc
			out.Seed = seed
			return out
		}
	}
	pts, err := env.ResilienceSweep(combo, experiment.ResiliencePolicies(), rates, opts)
	if err != nil {
		return err
	}
	// A fault scenario must degrade metrics, never poison them: any
	// non-finite point is an invariant violation and fails the invocation.
	for _, p := range pts {
		for _, x := range []float64{p.Degradation, p.AvgPowerW, p.BudgetW, p.OvershootShare, p.WorstOvershootWs} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("invariant violation: non-finite metric in point %s rate=%.2f guarded=%v: %+v",
					p.Policy, p.FaultRate, p.Guarded, p)
			}
		}
	}
	t := report.NewTable(fmt.Sprintf("Resilience: degradation vs fault rate (%s, %.0f%% budget)", combo.ID, *flagBudget*100),
		"policy", "fault rate", "guarded", "degradation", "avg/budget", "overshoot", "worst W·s", "emergencies", "sanitized", "dead")
	for _, p := range pts {
		g := "no"
		if p.Guarded {
			g = "yes"
		}
		t.AddRow(p.Policy, report.Pct(p.FaultRate), g, report.Pct(p.Degradation),
			fmt.Sprintf("%.2f", p.AvgPowerW/p.BudgetW), report.Pct(p.OvershootShare),
			fmt.Sprintf("%.3g", p.WorstOvershootWs), fmt.Sprintf("%d", p.EmergencyEntries),
			fmt.Sprintf("%d", p.SanitizedSamples), fmt.Sprintf("%d", p.DeadCores))
	}
	emit(t)
	return nil
}

// histLine renders a fixed-bucket histogram as one summary line.
func histLine(h *experiment.Histogram, unit string) string {
	if h.N == 0 {
		return "none"
	}
	s := fmt.Sprintf("n=%d mean=%.2f max=%.2f %s |", h.N, h.Mean(), h.Max, unit)
	for i, c := range h.Counts {
		if i < len(h.Bounds) {
			s += fmt.Sprintf(" ≤%g:%d", h.Bounds[i], c)
		} else {
			s += fmt.Sprintf(" >%g:%d", h.Bounds[len(h.Bounds)-1], c)
		}
	}
	return s
}

// chaos runs the seeded randomized fault soak against the decision
// supervisor's invariant monitors and exits non-zero on any violation, so CI
// can gate on it directly.
func chaos(env *experiment.Env) error {
	combo, err := workload.FindCombo(*flagCombo)
	if err != nil {
		return err
	}
	rep, err := env.ChaosSoak(combo, experiment.ChaosOptions{
		Seed:      *flagSeed,
		Runs:      *flagRuns,
		Intervals: *flagIntervals,
		Deadline:  *flagDeadline,
		Fullsim:   *flagFullsim,
	})
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Chaos soak: %s, seed %d (%d runs, %d decisions)",
		combo.ID, *flagSeed, rep.Runs, rep.Decisions),
		"substrate", "policy", "budget", "decisions", "rung0", "rung1", "rung2", "rung3", "rejects", "repairs", "timeouts", "wedged", "violations")
	for _, r := range rep.Rows {
		t.AddRow(r.Substrate, r.Policy, report.Pct(r.BudgetFrac), fmt.Sprintf("%d", r.Decisions),
			fmt.Sprintf("%d", r.RungHits[0]), fmt.Sprintf("%d", r.RungHits[1]),
			fmt.Sprintf("%d", r.RungHits[2]), fmt.Sprintf("%d", r.RungHits[3]),
			fmt.Sprintf("%d", r.Rejects), fmt.Sprintf("%d", r.Repairs),
			fmt.Sprintf("%d", r.Timeouts), fmt.Sprintf("%d", r.Wedged),
			fmt.Sprintf("%d", r.Violations))
	}
	emit(t)
	fmt.Printf("MTTR [explore intervals]:     %s\n", histLine(rep.MTTR, "intervals"))
	fmt.Printf("overshoot magnitude:          %s\n", histLine(rep.OvershootW, "W"))
	fmt.Printf("overshoot duration:           %s\n", histLine(rep.OvershootLen, "delta intervals"))
	fmt.Println()
	if err := rep.Err(); err != nil {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "violation: %s\n", v)
		}
		return err
	}
	fmt.Println("chaos: all invariants held (conformance, finiteness, recovery, determinism)")
	fmt.Println()
	return nil
}

// solverScaling runs the A9 sweep: solution quality and decision wall-clock
// for every allocation solver across chip widths the exhaustive MaxBIPS
// kernel cannot reach.
func solverScaling(env *experiment.Env) error {
	widths := []int{8, 16, 64, 256, 1024}
	if *flagQuick {
		widths = []int{8, 16, 64}
	}
	opts := experiment.SolverScalingOptions{
		QuantumW:    *flagQuantum,
		ClusterSize: *flagCluster,
	}
	if *flagSolver != "" {
		opts.Solvers = strings.Split(strings.ToLower(*flagSolver), ",")
	}
	rows, err := env.SolverScaling(widths, *flagBudget, opts)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Ablation A9: mode-allocation solvers at %.0f%% budget", *flagBudget*100),
		"cores", "solver", "quality", "vs", "exact", "gap bound", "nodes", "wall clock")
	for _, r := range rows {
		exact := "no"
		if r.Exact {
			exact = "yes"
		}
		gap := "-"
		if r.GapBound > 0 {
			gap = report.Pct(r.GapBound)
		}
		t.AddRow(fmt.Sprintf("%d", r.Cores), r.Solver, fmt.Sprintf("%.4f", r.Quality), r.Reference,
			exact, gap, fmt.Sprintf("%d", r.Nodes), r.Wall.Round(time.Microsecond).String())
	}
	emit(t)
	return nil
}

func selectors(env *experiment.Env) error {
	rows, err := env.AblationSelectors(8, 0.80)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A6: mode selectors at 8 cores, 80% budget", "policy", "degradation", "power/budget", "stall share", "overshoot")
	for _, r := range rows {
		t.AddRow(r.Policy, report.Pct(r.Degradation), report.Pct(r.BudgetFit), report.Pct(r.StallShare), report.Pct(r.Overshoot))
	}
	emit(t)
	return nil
}

func thermalCmd(env *experiment.Env) error {
	res, err := env.Thermal([]float64{85, 82, 79})
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Ablation A7: thermally governed budgets (%s; ungoverned peak %.1f°C)", res.ComboID, res.UngovernedMaxTempC),
		"limit [°C]", "max temp [°C]", "degradation", "avg power")
	for _, r := range res.Rows {
		t.AddRow(fmt.Sprintf("%.0f", r.LimitC), fmt.Sprintf("%.1f", r.MaxTempC), report.Pct(r.Degradation), report.W(r.AvgPowerW))
	}
	emit(t)
	return nil
}

func sched(env *experiment.Env) error {
	rows, err := env.SchedCompare([]float64{0.70, 0.80, 0.90}, experiment.SchedOptions{})
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A8: OS-rescheduled static vs oracle static vs MaxBIPS (§5.7)",
		"budget", "oracle static", "OS rescheduled", "migrations", "MaxBIPS")
	for _, r := range rows {
		t.AddRow(report.Pct(r.BudgetFrac), report.Pct(r.StaticDeg), report.Pct(r.ReschedDeg),
			fmt.Sprintf("%d", r.Migrations), report.Pct(r.MaxBIPSDeg))
	}
	emit(t)
	return nil
}
