package main

import (
	"fmt"
	"time"

	"gpm/internal/experiment"
	"gpm/internal/fleet"
	"gpm/internal/report"
	"gpm/internal/workload"
)

// fleetCmd runs the datacenter-tier demo: an 8-chip facility serving two
// client cohorts under a facility power cap that is cut mid-run, followed by
// a throughput/SLO-vs-cap sweep. The scenario is seeded and bit-identical
// for every -workers value.
func fleetCmd(env *experiment.Env) error {
	horizon := 20 * time.Millisecond
	if *flagQuick {
		horizon = 10 * time.Millisecond
	}
	cfg := fleet.Config{
		Chips:   8,
		Combo:   workload.FourWay[0],
		Horizon: horizon,
		Seed:    *flagSeed,
		Workers: *flagWorkers,
		// The offered load sits at ~80% of the fleet's all-Turbo instruction
		// capacity, so per-chip budgets shape queueing: caps the arbiter can
		// meet at Turbo serve cleanly, tighter caps push chips into deeper
		// DVFS levels and latency visibly degrades.
		Cohorts: []fleet.Cohort{
			{
				Name: "interactive", Clients: 16, Process: "poisson",
				RatePerClient: 3000, CostInstr: 2e5, SLO: 2 * time.Millisecond,
				DiurnalAmp: 0.3, DiurnalPeriod: horizon,
			},
			{
				Name: "batch", Clients: 8, Process: "gamma", Shape: 2,
				RatePerClient: 1200, CostInstr: 1e6, SLO: horizon / 2,
				DiurnalPhase: 0.5,
			},
		},
	}

	// Resolve the facility envelope from the all-Turbo baseline so the cap cut
	// can be stated in watts: 90% of Σ envelopes, cut to 65% at mid-run.
	base, err := env.Baseline(cfg.Combo)
	if err != nil {
		return err
	}
	envelope := float64(cfg.Chips) * base.EnvelopePowerW()
	cut := horizon / 2
	cfg.FacilityCapW = func(now time.Duration) float64 {
		if now < cut {
			return 0.90 * envelope
		}
		return 0.65 * envelope
	}

	res, err := fleet.Run(env.Lib, cfg)
	if err != nil {
		return err
	}
	if *flagJSON {
		return emitJSON(newFleetSummary(res))
	}

	t := report.NewTable(fmt.Sprintf("Fleet: %d chips × %s, cap 90%% -> 65%% of %.0f W at %v",
		res.Chips, cfg.Combo.ID, envelope, cut),
		"cohort", "arrived", "completed", "shed", "SLO attainment", "p50 [ms]", "p95 [ms]", "p99 [ms]")
	ms := func(s float64) string { return fmt.Sprintf("%.3f", s*1e3) }
	for _, cs := range res.Cohorts {
		t.AddRow(cs.Name, fmt.Sprintf("%d", cs.Arrived), fmt.Sprintf("%d", cs.Completed),
			fmt.Sprintf("%d", cs.Shed), report.Pct(cs.Attainment),
			ms(cs.Latency.P50), ms(cs.Latency.P95), ms(cs.Latency.P99))
	}
	emit(t)
	fmt.Printf("throughput %.0f req/s, Jain fairness %.3f, avg facility power %.1f W (%d unfinished at horizon)\n\n",
		res.ThroughputRPS, res.JainFairness, res.AvgFacilityPowerW, res.Unfinished)

	// The cascade table shows the cap cut flowing into per-chip grants within
	// one arbiter epoch.
	ct := report.NewTable("Facility cap cascade: arbiter grants per epoch",
		"epoch", "cap [W]", "Σ grants [W]", "min grant [W]", "max grant [W]")
	for _, e := range res.EpochLog {
		var sum float64
		min, max := e.GrantW[0], e.GrantW[0]
		for _, g := range e.GrantW {
			sum += g
			if g < min {
				min = g
			}
			if g > max {
				max = g
			}
		}
		ct.AddRow(e.Start.String(), fmt.Sprintf("%.1f", e.FacilityCapW), fmt.Sprintf("%.1f", sum),
			fmt.Sprintf("%.1f", min), fmt.Sprintf("%.1f", max))
	}
	emit(ct)
	if !*flagCSV {
		ts := report.NewTimeSeries("chip 0 engine budget [W] (cap cut lands mid-run)", "time →", 100)
		ts.Add("budget", res.ChipResults[0].BudgetW)
		fmt.Println(ts.String())
	}

	// Cap sweep: the fleet-level budget/degradation curve.
	fracs := experiment.FleetCapFracs
	if *flagQuick {
		fracs = []float64{0.60, 0.80, 1.00}
	}
	sweepCfg := cfg
	sweepCfg.FacilityCapW = nil
	pts, err := env.FleetSweep(sweepCfg, fracs)
	if err != nil {
		return err
	}
	st := report.NewTable("Fleet sweep: serving outcome vs facility cap",
		"cap", "cap [W]", "throughput [req/s]", "shed", "interactive SLO", "batch SLO", "Jain", "avg power [W]")
	for _, p := range pts {
		st.AddRow(report.Pct(p.CapFrac), fmt.Sprintf("%.1f", p.FacilityCapW),
			fmt.Sprintf("%.0f", p.ThroughputRPS), report.Pct(p.ShedFrac),
			report.Pct(p.Cohorts[0].Attainment), report.Pct(p.Cohorts[1].Attainment),
			fmt.Sprintf("%.3f", p.JainFairness), fmt.Sprintf("%.1f", p.AvgFacilityPowerW))
	}
	emit(st)
	return nil
}
