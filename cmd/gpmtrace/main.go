// Command gpmtrace inspects and manages the benchmark characterizations the
// CMP simulations replay: per-phase, per-mode power and IPC (the §3.1
// single-threaded Turandot step), whole-program DVFS responses (Fig 2's
// inputs), and the on-disk profile cache.
//
// Usage:
//
//	gpmtrace [flags] <command>
//
// Commands:
//
//	list        benchmark inventory with Table 2 intensity signals
//	show        per-phase, per-mode characterization of -bench
//	build       characterize every benchmark into -cache
//	membound    memory-boundedness ranking used by PullHiPushLo
//
// Examples:
//
//	gpmtrace list
//	gpmtrace -bench mcf show
//	gpmtrace -cache /tmp/profiles build
package main

import (
	"flag"
	"fmt"
	"os"

	"gpm/internal/cmpsim"
	"gpm/internal/config"
	"gpm/internal/modes"
	"gpm/internal/power"
	"gpm/internal/report"
	"gpm/internal/trace"
	"gpm/internal/workload"
)

var (
	flagBench = flag.String("bench", "mcf", "benchmark name for 'show'")
	flagCache = flag.String("cache", "", "profile disk-cache directory (used by every command when set)")
	flagCSV   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gpmtrace [flags] list|show|build|membound")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "gpmtrace: %v\n", err)
		os.Exit(1)
	}
}

func library() *trace.Library {
	cfg := config.Default(4)
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
	lib := trace.NewLibrary(cfg, power.Default(), plan)
	if *flagCache != "" {
		lib.WithDiskCache(*flagCache)
	}
	return lib
}

func emit(t *report.Table) {
	if *flagCSV {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t.String())
}

func run(cmd string) error {
	switch cmd {
	case "list":
		return list()
	case "show":
		return show(*flagBench)
	case "build":
		return build()
	case "membound":
		return membound()
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func list() error {
	t := report.NewTable("Benchmark inventory (synthetic SPEC CPU2000 models)",
		"benchmark", "suite", "phases", "hot set", "cold set", "dynamic length")
	for _, name := range workload.Names() {
		s := workload.MustLookup(name)
		t.AddRow(s.Name, s.Suite.String(), fmt.Sprintf("%d", len(s.Phases)),
			fmt.Sprintf("%dKiB", s.HotSetBytes/1024),
			fmt.Sprintf("%dKiB", s.ColdSetBytes/1024),
			fmt.Sprintf("%dM instr", s.TotalInstructions/1_000_000))
	}
	emit(t)
	return nil
}

func show(name string) error {
	lib := library()
	pr, err := lib.Profile(name)
	if err != nil {
		return err
	}
	spec := pr.Spec
	t := report.NewTable(fmt.Sprintf("Characterization of %s (per phase, per mode)", name),
		"phase", "mode", "power", "IPC", "instr/s", "fetch", "fxu", "fpu", "lsu", "l2")
	for ph := range spec.Phases {
		for m := range pr.Behavior {
			b := pr.Behavior[m][ph]
			a := b.Activity
			t.AddRow(spec.Phases[ph].Name, lib.Plan().Name(modes.Mode(m)),
				report.W(b.PowerW), fmt.Sprintf("%.3f", b.IPC),
				fmt.Sprintf("%.2fG", b.RatePerSec/1e9),
				fmt.Sprintf("%.2f", a.Fetch), fmt.Sprintf("%.2f", a.FXU),
				fmt.Sprintf("%.2f", a.FPU), fmt.Sprintf("%.2f", a.LSU),
				fmt.Sprintf("%.2f", a.L2))
		}
	}
	emit(t)

	w := report.NewTable("Whole-program DVFS response (Fig 2 inputs)",
		"mode", "avg power", "power savings", "perf degradation")
	pT, tT := pr.WholeProgram(modes.Turbo)
	for m := 0; m < lib.Plan().NumModes(); m++ {
		p, tm := pr.WholeProgram(modes.Mode(m))
		w.AddRow(lib.Plan().Name(modes.Mode(m)), report.W(p),
			report.Pct(1-p/pT), report.Pct(1-tT/tm))
	}
	emit(w)
	return nil
}

func build() error {
	if *flagCache == "" {
		return fmt.Errorf("build requires -cache <dir>")
	}
	lib := library()
	for _, name := range workload.Names() {
		if _, err := lib.Profile(name); err != nil {
			return err
		}
		fmt.Printf("characterized %s\n", name)
	}
	fmt.Printf("profiles stored under %s\n", *flagCache)
	return nil
}

func membound() error {
	lib := library()
	t := report.NewTable("Memory-boundedness ranking (1 = frequency-insensitive)",
		"benchmark", "score")
	combo := workload.Combo{ID: "all", Benchmarks: workload.Names()}
	scores, err := cmpsim.MemBoundedness(lib, combo)
	if err != nil {
		return err
	}
	for i, name := range combo.Benchmarks {
		t.AddRow(name, fmt.Sprintf("%.3f", scores[i]))
	}
	emit(t)
	return nil
}
