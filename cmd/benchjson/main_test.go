package main

import (
	"os"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkSolver/bb/cores=64-8    424    2612470 ns/op    12345 nodes/op    2048 B/op    12 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkSolver/bb/cores=64" || r.Procs != 8 {
		t.Fatalf("name %q procs %d", r.Name, r.Procs)
	}
	if r.Iterations != 424 {
		t.Fatalf("iterations %d", r.Iterations)
	}
	want := map[string]float64{"ns/op": 2612470, "nodes/op": 12345, "B/op": 2048, "allocs/op": 12}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Fatalf("%s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}

	for _, bad := range []string{
		"PASS",
		"ok  \tgpm/internal/solver\t2.1s",
		"goos: linux",
		"BenchmarkBroken notanumber ns/op",
		"--- BENCH: BenchmarkSolver",
	} {
		if _, ok := parseLine(bad); ok {
			t.Fatalf("line %q should not parse", bad)
		}
	}
}

func TestCheckBaseline(t *testing.T) {
	base := `[
  {"name": "BenchmarkSolverWarm/bb-steady/cores=64", "iterations": 10, "metrics": {"allocs/op": 0}},
  {"name": "BenchmarkSolverWarm/hier-drift/cores=256", "iterations": 10, "metrics": {"allocs/op": 75}},
  {"name": "BenchmarkSolver/bb/cores=64", "iterations": 10, "metrics": {"allocs/op": 217}}
]`
	dir := t.TempDir()
	path := dir + "/base.json"
	if err := os.WriteFile(path, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	row := func(name string, allocs float64) Result {
		return Result{Name: name, Iterations: 10, Metrics: map[string]float64{"allocs/op": allocs}}
	}
	// Within baseline (exact match + inside slack) passes.
	ok := []Result{
		row("BenchmarkSolverWarm/bb-steady/cores=64", 0),
		row("BenchmarkSolverWarm/hier-drift/cores=256", 78), // 75*1.05 = 78.75
		row("BenchmarkSolver/bb/cores=64", 999),             // not matched by selector
	}
	if err := checkBaseline(ok, path, "SolverWarm", 1.05, "", 1.5); err != nil {
		t.Fatalf("within-baseline results rejected: %v", err)
	}
	// A 0-alloc baseline admits no fresh allocations at any slack.
	bad := []Result{row("BenchmarkSolverWarm/bb-steady/cores=64", 1)}
	if err := checkBaseline(bad, path, "SolverWarm", 1.05, "", 1.5); err == nil {
		t.Fatal("alloc regression on a 0-alloc baseline not caught")
	}
	// Exceeding slack on a non-zero baseline fails.
	bad2 := []Result{row("BenchmarkSolverWarm/hier-drift/cores=256", 80)}
	if err := checkBaseline(bad2, path, "SolverWarm", 1.05, "", 1.5); err == nil {
		t.Fatal("alloc regression past slack not caught")
	}
	// A selector that matches nothing must fail loudly, not silently pass.
	if err := checkBaseline(ok, path, "Renamed", 1.05, "", 1.5); err == nil {
		t.Fatal("disarmed gate (no matching rows) not reported")
	}
	// Rows with no baseline counterpart are skipped, but the run still
	// needs at least one comparison.
	novel := []Result{row("BenchmarkSolverWarm/new-row", 5)}
	if err := checkBaseline(novel, path, "SolverWarm", 1.05, "", 1.5); err == nil {
		t.Fatal("zero comparisons should be an error")
	}
}

func TestCheckBaselineLatency(t *testing.T) {
	base := `[
  {"name": "BenchmarkSolverDelta/bb-gen-steady/cores=1024", "iterations": 10, "metrics": {"ns/op": 70, "allocs/op": 0}},
  {"name": "BenchmarkSolverDelta/bb-delta/cores=1024", "iterations": 10, "metrics": {"ns/op": 5600, "allocs/op": 0}}
]`
	dir := t.TempDir()
	path := dir + "/base.json"
	if err := os.WriteFile(path, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	row := func(name string, ns float64) Result {
		return Result{Name: name, Iterations: 10, Metrics: map[string]float64{"ns/op": ns, "allocs/op": 0}}
	}
	ok := []Result{
		row("BenchmarkSolverDelta/bb-gen-steady/cores=1024", 100), // 70*1.5 = 105
		row("BenchmarkSolverDelta/bb-delta/cores=1024", 8000),     // 5600*1.5 = 8400
	}
	if err := checkBaseline(ok, path, "SolverDelta", 1.05, "gen-steady|bb-delta", 1.5); err != nil {
		t.Fatalf("within-slack latency rejected: %v", err)
	}
	// Past the slack fails.
	slow := []Result{row("BenchmarkSolverDelta/bb-gen-steady/cores=1024", 120)}
	if err := checkBaseline(slow, path, "SolverDelta", 1.05, "gen-steady", 1.5); err == nil {
		t.Fatal("latency regression past slack not caught")
	}
	// An ns selector matching nothing must fail loudly.
	if err := checkBaseline(ok, path, "SolverDelta", 1.05, "Renamed", 1.5); err == nil {
		t.Fatal("disarmed ns gate not reported")
	}
}

func TestCheckCaps(t *testing.T) {
	rows := []Result{
		{Name: "BenchmarkSolverDelta/bb-gen-steady/cores=1024", Metrics: map[string]float64{"ns/op": 66}},
		{Name: "BenchmarkFleetEpochSteady", Metrics: map[string]float64{"ns/op": 130}},
	}
	if err := checkCaps(rows, ""); err != nil {
		t.Fatalf("empty spec must be a no-op: %v", err)
	}
	if err := checkCaps(rows, "gen-steady=1000,FleetEpochSteady=6500"); err != nil {
		t.Fatalf("under-cap rows rejected: %v", err)
	}
	if err := checkCaps(rows, "gen-steady=50"); err == nil {
		t.Fatal("over-cap row not caught")
	}
	if err := checkCaps(rows, "NoSuchRow=1000"); err == nil {
		t.Fatal("cap matching no row must fail loudly")
	}
	if err := checkCaps(rows, "missing-equals"); err == nil {
		t.Fatal("malformed pair accepted")
	}
}

func TestCheckRatio(t *testing.T) {
	rows := []Result{
		{Name: "BenchmarkSolverDelta/bb-delta/cores=1024", Metrics: map[string]float64{"ns/op": 5600}},
		{Name: "BenchmarkSolverDelta/bb-warm-full/cores=1024", Metrics: map[string]float64{"ns/op": 1e7}},
	}
	if err := checkRatio(rows, ""); err != nil {
		t.Fatalf("empty spec must be a no-op: %v", err)
	}
	if err := checkRatio(rows, "bb-delta<=0.1*bb-warm-full"); err != nil {
		t.Fatalf("173× speedup rejected by the 10× gate: %v", err)
	}
	if err := checkRatio(rows, "bb-delta<=0.0001*bb-warm-full"); err == nil {
		t.Fatal("insufficient speedup not caught")
	}
	if err := checkRatio(rows, "NoSuchRow<=0.1*bb-warm-full"); err == nil {
		t.Fatal("ratio with no matching A row must fail")
	}
	if err := checkRatio(rows, "bb-<=0.1*bb-warm-full"); err == nil {
		t.Fatal("ambiguous A regexp must fail")
	}
	if err := checkRatio(rows, "garbage"); err == nil {
		t.Fatal("malformed spec accepted")
	}
}
