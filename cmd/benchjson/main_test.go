package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkSolver/bb/cores=64-8    424    2612470 ns/op    12345 nodes/op    2048 B/op    12 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkSolver/bb/cores=64" || r.Procs != 8 {
		t.Fatalf("name %q procs %d", r.Name, r.Procs)
	}
	if r.Iterations != 424 {
		t.Fatalf("iterations %d", r.Iterations)
	}
	want := map[string]float64{"ns/op": 2612470, "nodes/op": 12345, "B/op": 2048, "allocs/op": 12}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Fatalf("%s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}

	for _, bad := range []string{
		"PASS",
		"ok  \tgpm/internal/solver\t2.1s",
		"goos: linux",
		"BenchmarkBroken notanumber ns/op",
		"--- BENCH: BenchmarkSolver",
	} {
		if _, ok := parseLine(bad); ok {
			t.Fatalf("line %q should not parse", bad)
		}
	}
}
