// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON array, one object per benchmark result line:
//
//	go test -run '^$' -bench BenchmarkSolver -benchmem ./internal/solver | benchjson
//
// Each object carries the benchmark name, GOMAXPROCS suffix, iteration count,
// and every reported metric keyed by its unit (ns/op, B/op, allocs/op, and
// any b.ReportMetric custom units such as nodes/op). Non-benchmark lines are
// ignored, so the full `go test` output can be piped through unfiltered.
//
// With -check baseline.json, benchjson instead compares the fresh results
// against a committed baseline and exits non-zero on allocation regressions:
// every row present in both whose name matches -match (default: the warm /
// steady-state session rows) must not report more allocs/op than the
// baseline row times the -slack factor. A 0-alloc baseline therefore admits
// zero fresh allocations — the steady-state contract `make bench-check`
// enforces in CI.
//
// Three further gates ride along with -check, all off by default:
//
//   - -ns-match selects rows whose ns/op must stay within -ns-slack × the
//     baseline row (latency regression tolerance for the memo-hit and
//     delta-solve fast paths);
//   - -ns-cap "regex=ns[,regex=ns...]" pins absolute ns/op ceilings on fresh
//     rows (the issue's hard numbers, independent of any baseline);
//   - -ratio "A<=F*B" relates two fresh rows: the row matching regex A must
//     run in at most F times the ns/op of the row matching regex B (the
//     ≥10×-faster-than-full-solve contract, machine-relative by design).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	check := flag.String("check", "", "baseline JSON to compare fresh results against (allocs/op gate)")
	match := flag.String("match", "SolverWarm|steady|drift|warm-", "regexp selecting rows the -check gate applies to")
	slack := flag.Float64("slack", 1.05, "multiplicative headroom over the baseline allocs/op (0-alloc baselines admit none)")
	nsMatch := flag.String("ns-match", "", "regexp selecting rows whose ns/op is gated against the baseline (empty: off)")
	nsSlack := flag.Float64("ns-slack", 1.5, "multiplicative headroom over the baseline ns/op for -ns-match rows")
	nsCap := flag.String("ns-cap", "", "comma-separated regex=ns pairs pinning absolute ns/op ceilings on fresh rows")
	ratio := flag.String("ratio", "", `"A<=F*B" gate: fresh row A's ns/op must be at most F times fresh row B's`)
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if results == nil {
		results = []Result{}
	}
	if *check != "" {
		if err := checkBaseline(results, *check, *match, *slack, *nsMatch, *nsSlack); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := checkCaps(results, *nsCap); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := checkRatio(results, *ratio); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// checkBaseline fails when a fresh row matching the selector reports more
// allocs/op than its baseline counterpart allows. Rows missing from either
// side are skipped (new benchmarks land before their baseline is committed;
// retired ones linger in old baselines), but a run in which the selector
// matches nothing at all is an error — a renamed benchmark must not silently
// disarm the gate.
func checkBaseline(fresh []Result, path, match string, slack float64, nsMatch string, nsSlack float64) error {
	sel, err := regexp.Compile(match)
	if err != nil {
		return fmt.Errorf("bad -match regexp: %v", err)
	}
	var nsSel *regexp.Regexp
	if nsMatch != "" {
		if nsSel, err = regexp.Compile(nsMatch); err != nil {
			return fmt.Errorf("bad -ns-match regexp: %v", err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base []Result
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	baseline := make(map[string]Result, len(base))
	for _, r := range base {
		baseline[r.Name] = r
	}
	compared, nsCompared, failed := 0, 0, 0
	for _, r := range fresh {
		allocRow := sel.MatchString(r.Name)
		nsRow := nsSel != nil && nsSel.MatchString(r.Name)
		if !allocRow && !nsRow {
			continue
		}
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s: no baseline row, skipping\n", r.Name)
			continue
		}
		if allocRow {
			got, gok := r.Metrics["allocs/op"]
			want, wok := b.Metrics["allocs/op"]
			if gok && wok {
				compared++
				if got > want*slack {
					failed++
					fmt.Fprintf(os.Stderr, "benchjson: ALLOC REGRESSION %s: %g allocs/op, baseline %g (slack %.2f)\n",
						r.Name, got, want, slack)
				} else {
					fmt.Fprintf(os.Stderr, "benchjson: ok %s: %g allocs/op (baseline %g)\n", r.Name, got, want)
				}
			}
		}
		if nsRow {
			got, gok := r.Metrics["ns/op"]
			want, wok := b.Metrics["ns/op"]
			if gok && wok {
				nsCompared++
				if got > want*nsSlack {
					failed++
					fmt.Fprintf(os.Stderr, "benchjson: LATENCY REGRESSION %s: %g ns/op, baseline %g (slack %.2f)\n",
						r.Name, got, want, nsSlack)
				} else {
					fmt.Fprintf(os.Stderr, "benchjson: ok %s: %g ns/op (baseline %g, slack %.2f)\n", r.Name, got, want, nsSlack)
				}
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("no rows matched %q against %s — gate disarmed?", match, path)
	}
	if nsSel != nil && nsCompared == 0 {
		return fmt.Errorf("no rows matched -ns-match %q against %s — gate disarmed?", nsMatch, path)
	}
	if failed > 0 {
		return fmt.Errorf("%d regression(s) vs %s", failed, path)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d alloc row(s), %d latency row(s) within baseline %s\n", compared, nsCompared, path)
	return nil
}

// checkCaps enforces absolute ns/op ceilings: spec is a comma-separated list
// of regex=ns pairs; every pair must match at least one fresh row, and every
// matched row must run under its ceiling.
func checkCaps(fresh []Result, spec string) error {
	if spec == "" {
		return nil
	}
	for _, pair := range strings.Split(spec, ",") {
		i := strings.LastIndex(pair, "=")
		if i < 0 {
			return fmt.Errorf("bad -ns-cap pair %q (want regex=ns)", pair)
		}
		sel, err := regexp.Compile(pair[:i])
		if err != nil {
			return fmt.Errorf("bad -ns-cap regexp %q: %v", pair[:i], err)
		}
		cap, err := strconv.ParseFloat(pair[i+1:], 64)
		if err != nil {
			return fmt.Errorf("bad -ns-cap ceiling %q: %v", pair[i+1:], err)
		}
		matched := 0
		for _, r := range fresh {
			got, ok := r.Metrics["ns/op"]
			if !sel.MatchString(r.Name) || !ok {
				continue
			}
			matched++
			if got > cap {
				return fmt.Errorf("CEILING %s: %g ns/op exceeds the %g ns cap", r.Name, got, cap)
			}
			fmt.Fprintf(os.Stderr, "benchjson: ok %s: %g ns/op under the %g ns cap\n", r.Name, got, cap)
		}
		if matched == 0 {
			return fmt.Errorf("no rows matched -ns-cap %q — gate disarmed?", pair[:i])
		}
	}
	return nil
}

// checkRatio enforces a cross-row speedup: spec "A<=F*B" requires the unique
// fresh row matching regex A to report at most F times the ns/op of the
// unique fresh row matching regex B.
func checkRatio(fresh []Result, spec string) error {
	if spec == "" {
		return nil
	}
	le := strings.Index(spec, "<=")
	star := strings.Index(spec, "*")
	if le < 0 || star < le {
		return fmt.Errorf("bad -ratio %q (want A<=F*B)", spec)
	}
	f, err := strconv.ParseFloat(spec[le+2:star], 64)
	if err != nil {
		return fmt.Errorf("bad -ratio factor in %q: %v", spec, err)
	}
	find := func(expr string) (Result, error) {
		sel, err := regexp.Compile(expr)
		if err != nil {
			return Result{}, fmt.Errorf("bad -ratio regexp %q: %v", expr, err)
		}
		var hit *Result
		for i := range fresh {
			if _, ok := fresh[i].Metrics["ns/op"]; ok && sel.MatchString(fresh[i].Name) {
				if hit != nil {
					return Result{}, fmt.Errorf("-ratio regexp %q matches both %s and %s", expr, hit.Name, fresh[i].Name)
				}
				hit = &fresh[i]
			}
		}
		if hit == nil {
			return Result{}, fmt.Errorf("-ratio regexp %q matched no fresh row", expr)
		}
		return *hit, nil
	}
	a, err := find(spec[:le])
	if err != nil {
		return err
	}
	b, err := find(spec[star+1:])
	if err != nil {
		return err
	}
	if a.Metrics["ns/op"] > f*b.Metrics["ns/op"] {
		return fmt.Errorf("RATIO %s: %g ns/op exceeds %g × %s (%g ns/op)",
			a.Name, a.Metrics["ns/op"], f, b.Name, b.Metrics["ns/op"])
	}
	fmt.Fprintf(os.Stderr, "benchjson: ok %s: %g ns/op ≤ %g × %s (%g ns/op)\n",
		a.Name, a.Metrics["ns/op"], f, b.Name, b.Metrics["ns/op"])
	return nil
}

// parseLine decodes the standard benchmark format:
//
//	BenchmarkName-8   124   9_471 ns/op   512 B/op   7 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	r := Result{Name: f[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(f[0], "-"); i >= 0 {
		if procs, err := strconv.Atoi(f[0][i+1:]); err == nil {
			r.Name, r.Procs = f[0][:i], procs
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}
