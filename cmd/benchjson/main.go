// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON array, one object per benchmark result line:
//
//	go test -run '^$' -bench BenchmarkSolver -benchmem ./internal/solver | benchjson
//
// Each object carries the benchmark name, GOMAXPROCS suffix, iteration count,
// and every reported metric keyed by its unit (ns/op, B/op, allocs/op, and
// any b.ReportMetric custom units such as nodes/op). Non-benchmark lines are
// ignored, so the full `go test` output can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if results == nil {
		results = []Result{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine decodes the standard benchmark format:
//
//	BenchmarkName-8   124   9_471 ns/op   512 B/op   7 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	r := Result{Name: f[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(f[0], "-"); i >= 0 {
		if procs, err := strconv.Atoi(f[0][i+1:]); err == nil {
			r.Name, r.Procs = f[0][:i], procs
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}
