// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON array, one object per benchmark result line:
//
//	go test -run '^$' -bench BenchmarkSolver -benchmem ./internal/solver | benchjson
//
// Each object carries the benchmark name, GOMAXPROCS suffix, iteration count,
// and every reported metric keyed by its unit (ns/op, B/op, allocs/op, and
// any b.ReportMetric custom units such as nodes/op). Non-benchmark lines are
// ignored, so the full `go test` output can be piped through unfiltered.
//
// With -check baseline.json, benchjson instead compares the fresh results
// against a committed baseline and exits non-zero on allocation regressions:
// every row present in both whose name matches -match (default: the warm /
// steady-state session rows) must not report more allocs/op than the
// baseline row times the -slack factor. A 0-alloc baseline therefore admits
// zero fresh allocations — the steady-state contract `make bench-check`
// enforces in CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	check := flag.String("check", "", "baseline JSON to compare fresh results against (allocs/op gate)")
	match := flag.String("match", "SolverWarm|steady|drift|warm-", "regexp selecting rows the -check gate applies to")
	slack := flag.Float64("slack", 1.05, "multiplicative headroom over the baseline allocs/op (0-alloc baselines admit none)")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if results == nil {
		results = []Result{}
	}
	if *check != "" {
		if err := checkBaseline(results, *check, *match, *slack); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// checkBaseline fails when a fresh row matching the selector reports more
// allocs/op than its baseline counterpart allows. Rows missing from either
// side are skipped (new benchmarks land before their baseline is committed;
// retired ones linger in old baselines), but a run in which the selector
// matches nothing at all is an error — a renamed benchmark must not silently
// disarm the gate.
func checkBaseline(fresh []Result, path, match string, slack float64) error {
	sel, err := regexp.Compile(match)
	if err != nil {
		return fmt.Errorf("bad -match regexp: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base []Result
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	baseline := make(map[string]Result, len(base))
	for _, r := range base {
		baseline[r.Name] = r
	}
	compared, failed := 0, 0
	for _, r := range fresh {
		if !sel.MatchString(r.Name) {
			continue
		}
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s: no baseline row, skipping\n", r.Name)
			continue
		}
		got, gok := r.Metrics["allocs/op"]
		want, wok := b.Metrics["allocs/op"]
		if !gok || !wok {
			continue
		}
		compared++
		if got > want*slack {
			failed++
			fmt.Fprintf(os.Stderr, "benchjson: ALLOC REGRESSION %s: %g allocs/op, baseline %g (slack %.2f)\n",
				r.Name, got, want, slack)
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok %s: %g allocs/op (baseline %g)\n", r.Name, got, want)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no rows matched %q against %s — gate disarmed?", match, path)
	}
	if failed > 0 {
		return fmt.Errorf("%d allocation regression(s) vs %s", failed, path)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d row(s) within baseline %s\n", compared, path)
	return nil
}

// parseLine decodes the standard benchmark format:
//
//	BenchmarkName-8   124   9_471 ns/op   512 B/op   7 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	r := Result{Name: f[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(f[0], "-"); i >= 0 {
		if procs, err := strconv.Atoi(f[0][i+1:]); err == nil {
			r.Name, r.Procs = f[0][:i], procs
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}
