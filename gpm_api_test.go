package gpm_test

import (
	"testing"
	"time"

	"gpm"
)

// TestPublicAPIQuickstart exercises the documented public surface end to
// end, exactly as the package comment advertises.
func TestPublicAPIQuickstart(t *testing.T) {
	sys := gpm.NewSystem(4).ShortHorizon(10 * time.Millisecond)
	combo, err := gpm.FindWorkload("4w-ammp-mcf-crafty-art")
	if err != nil {
		t.Fatal(err)
	}
	res, base, err := sys.RunPolicy(combo, gpm.MaxBIPS(), 0.80)
	if err != nil {
		t.Fatal(err)
	}
	deg := gpm.Degradation(res.TotalInstr, base.TotalInstr)
	if deg < 0 || deg > 0.10 {
		t.Errorf("MaxBIPS at 80%%: degradation %.3f outside plausible band", deg)
	}
	sp, err := gpm.PerThreadSpeedups(res.PerCoreInstr, base.PerCoreInstr)
	if err != nil {
		t.Fatal(err)
	}
	if ws := gpm.WeightedSlowdown(sp); ws < 0 || ws > 0.15 {
		t.Errorf("weighted slowdown %.3f outside plausible band", ws)
	}
}

func TestPublicPolicyConstructors(t *testing.T) {
	for _, p := range []gpm.Policy{
		gpm.MaxBIPS(), gpm.Priority(), gpm.PullHiPushLo(), gpm.ChipWideDVFS(),
		gpm.Oracle(), gpm.GreedyMaxBIPS(), gpm.MinPower(0.95), gpm.FixedModes(nil),
	} {
		if p.Name() == "" {
			t.Error("policy with empty name")
		}
	}
	if _, err := gpm.PolicyByName("maxbips"); err != nil {
		t.Error(err)
	}
	if _, err := gpm.PolicyByName("bogus"); err == nil {
		t.Error("bogus policy resolved")
	}
}

func TestPublicWorkloadDiscovery(t *testing.T) {
	if got := len(gpm.Benchmarks()); got != 12 {
		t.Errorf("Benchmarks() returned %d, want 12", got)
	}
	for _, n := range []int{2, 4, 8} {
		ws, err := gpm.Workloads(n)
		if err != nil || len(ws) == 0 {
			t.Errorf("Workloads(%d): %v %v", n, ws, err)
		}
	}
}

func TestPublicBudgetHelpers(t *testing.T) {
	fb := gpm.FixedBudget(50)
	if fb(0) != 50 || fb(time.Hour) != 50 {
		t.Error("FixedBudget not constant")
	}
	sb := gpm.StepBudget(90, 70, time.Millisecond)
	if sb(0) != 90 || sb(2*time.Millisecond) != 70 {
		t.Error("StepBudget edge wrong")
	}
}

// TestPublicResilienceAPI exercises the fault-injection surface: a stuck
// power sensor must push the unguarded manager over budget while the guarded
// run stays bounded, and RunPolicyResilient(nil, nil) must match RunPolicy.
func TestPublicResilienceAPI(t *testing.T) {
	sys := gpm.NewSystem(4).ShortHorizon(8 * time.Millisecond)
	combo, err := gpm.FindWorkload("4w-ammp-mcf-crafty-art")
	if err != nil {
		t.Fatal(err)
	}

	plain, _, err := sys.RunPolicy(combo, gpm.MaxBIPS(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	same, _, err := gpm.RunPolicyResilient(sys, combo, gpm.MaxBIPS(), 0.75, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if same.TotalInstr != plain.TotalInstr || same.EnergyJ != plain.EnergyJ {
		t.Error("RunPolicyResilient(nil, nil) diverged from RunPolicy")
	}

	sc, err := gpm.ParseFaultScenario("stuck=0:0.5:2ms")
	if err != nil {
		t.Fatal(err)
	}
	guard := gpm.DefaultGuard()
	unguarded, _, err := gpm.RunPolicyResilient(sys, combo, gpm.MaxBIPS(), 0.75, &sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	guarded, _, err := gpm.RunPolicyResilient(sys, combo, gpm.MaxBIPS(), 0.75, &sc, &guard)
	if err != nil {
		t.Fatal(err)
	}
	if guarded.WorstOvershootWs >= unguarded.WorstOvershootWs {
		t.Errorf("guard did not reduce the worst sustained overshoot: %.3g vs %.3g W·s",
			guarded.WorstOvershootWs, unguarded.WorstOvershootWs)
	}
	if guarded.SanitizedSamples == 0 && guarded.RescaledIntervals == 0 && guarded.EmergencyEntries == 0 {
		t.Error("guarded run reports no interventions against a stuck sensor")
	}
}

func TestPublicFleetAPI(t *testing.T) {
	sys := gpm.NewSystem(4)
	combo, err := gpm.FindWorkload("4w-ammp-mcf-crafty-art")
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpm.FleetConfig{
		Chips:   2,
		Combo:   combo,
		Horizon: 10 * time.Millisecond,
		Seed:    3,
		Cohorts: []gpm.FleetCohort{
			{Name: "svc", Clients: 8, RatePerClient: 1000, CostInstr: 2e5, SLO: 2 * time.Millisecond},
			{Name: "batch", Clients: 4, Process: "gamma", RatePerClient: 400, CostInstr: 1e6, SLO: 10 * time.Millisecond},
		},
	}
	res, err := gpm.RunFleet(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.ThroughputRPS <= 0 {
		t.Fatalf("fleet served nothing: %+v", res)
	}
	again, err := gpm.RunFleet(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gpm.FleetFingerprint(res) != gpm.FleetFingerprint(again) {
		t.Error("identical fleet configs produced different fingerprints")
	}
	if f := gpm.JainFairness([]float64{1, 1, 1}); f != 1 {
		t.Errorf("JainFairness of equal shares = %v, want 1", f)
	}
	if p := gpm.Percentile([]float64{1, 2, 3, 4}, 50); p != 2.5 {
		t.Errorf("Percentile 50 = %v, want 2.5", p)
	}
}
