// Package gpm is the public API of the global CMP power-management library —
// a from-scratch reproduction of Isci, Buyuktosunoglu, Cher, Bose and
// Martonosi, "An Analysis of Efficient Multi-Core Global Power Management
// Policies: Maximizing Performance for a Given Power Budget" (MICRO 2006).
//
// The package re-exports the stable surface of the internal packages:
//
//   - System: configuration + power model + DVFS plan + benchmark profiles,
//   - the global power manager policies (MaxBIPS, Priority, PullHiPushLo,
//     ChipWideDVFS, Oracle, plus extensions),
//   - the trace-based CMP simulator and its results, and
//   - every paper experiment (tables, figures, ablations).
//
// Quickstart:
//
//	sys := gpm.NewSystem(4)                       // 4-core POWER4-class CMP
//	combo, _ := gpm.FindWorkload("4w-ammp-mcf-crafty-art")
//	res, base, _ := sys.RunPolicy(combo, gpm.MaxBIPS(), 0.80)
//	fmt.Println(gpm.Degradation(res.TotalInstr, base.TotalInstr))
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package gpm

import (
	"fmt"
	"io"
	"time"

	"gpm/internal/calib"
	"gpm/internal/cmpsim"
	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/experiment"
	"gpm/internal/fault"
	"gpm/internal/fleet"
	"gpm/internal/metrics"
	"gpm/internal/modes"
	"gpm/internal/obs"
	"gpm/internal/solver"
	"gpm/internal/workload"
)

// System is a fully configured simulation environment: processor model,
// power model, DVFS plan and benchmark profile cache. It is the entry point
// for every experiment and custom run.
type System = experiment.Env

// NewSystem builds the paper's default system for n cores: Table 1 core and
// memory hierarchy, the Turbo/Eff1/Eff2 DVFS plan at 1.300 V nominal, 50 µs
// delta-sim and 500 µs explore intervals.
func NewSystem(n int) *System { return experiment.NewEnv(n) }

// Policy decides per-core mode vectors at every explore interval.
type Policy = core.Policy

// Mode indexes a DVFS level; 0 is always Turbo.
type Mode = modes.Mode

// ModeVector is a per-core mode assignment.
type ModeVector = modes.Vector

// Result is a completed CMP simulation at delta-sim resolution.
type Result = cmpsim.Result

// Workload is a benchmark-to-core assignment (Table 2 combination).
type Workload = workload.Combo

// The paper's policies (§5.2, §5.3, §5.6) and this library's extensions.
func MaxBIPS() Policy       { return core.MaxBIPS{} }
func Priority() Policy      { return core.Priority{} }
func PullHiPushLo() Policy  { return core.PullHiPushLo{} }
func ChipWideDVFS() Policy  { return core.ChipWideDVFS{} }
func Oracle() Policy        { return core.Oracle{} }
func GreedyMaxBIPS() Policy { return core.GreedyMaxBIPS{} }

// MinPower returns the dual-problem policy: minimize power subject to a
// throughput floor expressed as a fraction of all-Turbo throughput.
func MinPower(targetFrac float64) Policy { return core.MinPower{TargetFrac: targetFrac} }

// StableMaxBIPS is MaxBIPS with switching hysteresis: it holds the current
// vector unless the predicted gain exceeds threshold (0 selects the
// default), avoiding transition-stall thrash on jittery workloads.
func StableMaxBIPS(threshold float64) Policy { return core.StableMaxBIPS{Threshold: threshold} }

// FairnessPolicy maximizes the harmonic mean of per-core predicted
// speedups under the budget (the §5.4 weighted-slowdown metric as an
// objective).
func FairnessPolicy() Policy { return core.Fairness{} }

// Hierarchical is the two-level manager of §2's vision: per-cluster
// exhaustive MaxBIPS under demand-proportional budget shares.
func Hierarchical(clusterSize int) Policy { return core.Hierarchical{ClusterSize: clusterSize} }

// FixedModes pins every core to the given vector (the §5.7 static bound).
func FixedModes(v ModeVector) Policy { return core.Fixed{Vector: v} }

// Solver is a budgeted mode-allocation solver (internal/solver): it picks the
// throughput-maximizing feasible mode vector for one decision instance. The
// implementations scale the MaxBIPS objective past the exhaustive kernel's
// ~16-core limit.
type Solver = solver.Solver

// SolverStats is the per-decision certificate a Solver returns alongside its
// vector: node counts, exactness, the DP optimality-gap bound, and wall-clock.
type SolverStats = solver.Stats

// SolverOptions tunes SolverByName: DP power quantum, hierarchy cluster size,
// worker and branch-and-bound node caps. Zero fields select defaults.
type SolverOptions = solver.Options

// SolverByName resolves an allocation solver: exhaustive (prefix-sharded
// parallel enumeration), dp (quantized knapsack with a reported gap bound),
// bb (exact branch-and-bound; µs–ms at 64+ cores), hier (two-level clustered;
// scales to 1024 cores), or greedy.
func SolverByName(name string, opt SolverOptions) (Solver, error) { return solver.New(name, opt) }

// SolverNames lists the SolverByName registry.
func SolverNames() []string { return solver.Names() }

// MaxBIPSDP is MaxBIPS backed by the quantized dynamic-programming solver.
func MaxBIPSDP(quantumW float64) Policy {
	return core.SolverPolicy{Solver: &solver.DP{QuantumW: quantumW}}
}

// MaxBIPSBB is MaxBIPS backed by the exact branch-and-bound solver.
func MaxBIPSBB() Policy { return core.SolverPolicy{Solver: &solver.BB{}} }

// MaxBIPSHier is MaxBIPS backed by the two-level clustered solver
// (clusterSize 0 selects the default of 8 cores per cluster).
func MaxBIPSHier(clusterSize int) Policy {
	return core.SolverPolicy{Solver: &solver.Hier{ClusterSize: clusterSize}}
}

// SolverPolicy wraps any Solver as a Policy. The returned policy is cold —
// every decision is an independent stateless solve, safe to share across
// concurrent sweep workers. Use SessionSolverPolicy for a warm-started one.
func SolverPolicy(s Solver) Policy { return core.SolverPolicy{Solver: s} }

// SessionSolverPolicy wraps a Solver as a Policy eligible for a warm-start
// SolverSession: when an engine loop adopts it, consecutive decisions reuse
// solver scratch, memoize repeated telemetry, and seed branch-and-bound
// pruning from the previously actuated vector — same vectors, bit-identical
// results, at a fraction of the steady-state latency. The policy belongs to
// exactly one run at a time (the session is stateful); build a fresh one per
// run.
func SessionSolverPolicy(s Solver) Policy { return core.NewSolverPolicy(s) }

// SolverHint carries the previous interval's decision into a warm-started
// solve: the actuated mode vector and (optionally) its predicted throughput.
// A hint never changes the solver's answer — it only accelerates reaching it
// — except for deadline-aborted solves, where a feasible hint is returned
// over a weaker incumbent (the anytime guarantee).
type SolverHint = solver.Hint

// SolverSession is a stateful solving session over one Solver: scratch reuse
// (allocation-free steady state), a bitwise instance memo, and warm-start
// hints across solves. Close it when the run ends. Sessions are not safe for
// concurrent use.
type SolverSession = solver.Session

// SolverSessionStats are a session's cumulative warm-start counters.
type SolverSessionStats = solver.SessionStats

// NewSolverSession opens a warm-start session over s (typically *solver.BB,
// *solver.DP, *solver.Hier or solver.Greedy via SolverByName).
func NewSolverSession(s Solver) *SolverSession { return solver.NewSession(s) }

// SolverScalingRow and SolverScalingOptions belong to System.SolverScaling,
// the quality-vs-wall-clock sweep across chip widths (8..1024 cores).
type SolverScalingRow = experiment.SolverScalingRow
type SolverScalingOptions = experiment.SolverScalingOptions

// PolicyByName resolves a policy from its CLI name
// (maxbips|greedy|priority|pullhipushlo|chipwide|oracle|...|maxbips-dp|
// maxbips-bb|maxbips-hier|maxbips-sharded).
func PolicyByName(name string) (Policy, error) { return core.Registry(name) }

// FindWorkload resolves a Table 2 combination by ID, e.g.
// "4w-ammp-mcf-crafty-art".
func FindWorkload(id string) (Workload, error) { return workload.FindCombo(id) }

// Workloads returns the paper's benchmark combinations for a CMP width
// (1, 2, 4 or 8).
func Workloads(cores int) ([]Workload, error) { return workload.Combos(cores) }

// Benchmarks lists the 12 synthetic SPEC CPU2000 models.
func Benchmarks() []string { return workload.Names() }

// FixedBudget returns a constant chip power budget in watts.
func FixedBudget(w float64) func(time.Duration) float64 { return cmpsim.FixedBudget(w) }

// StepBudget switches the budget from w1 to w2 at time t (the Fig 6
// cooling-failure scenario).
func StepBudget(w1, w2 float64, t time.Duration) func(time.Duration) float64 {
	return cmpsim.StepBudget(w1, w2, t)
}

// FaultScenario is a declarative, seed-driven fault-injection plan: sensor
// noise, calibration drift, sample dropout, stuck-at sensors, transient
// budget spikes, permanent core death and thermal-sensor failure. The zero
// value injects nothing; equal seeds replay bit-identically.
type FaultScenario = fault.Scenario

// StuckFault, CoreDeath and BudgetSpike are the discrete fault events of a
// FaultScenario.
type StuckFault = fault.StuckFault
type CoreDeath = fault.CoreDeath
type BudgetSpike = fault.BudgetSpike

// ParseFaultScenario decodes the CLI fault syntax, e.g.
// "seed=7,noise=0.05,stuck=1:0.5:2ms,death=3:8ms".
func ParseFaultScenario(spec string) (FaultScenario, error) { return fault.ParseScenario(spec) }

// GuardConfig tunes the ResilientManager: sample sanitization, the hard-cap
// emergency throttle, and dead-core parking. Zero fields select defaults.
type GuardConfig = core.GuardConfig

// DefaultGuard returns the default guard configuration, spelled out.
func DefaultGuard() GuardConfig { return core.DefaultGuard() }

// RunPolicyResilient is System.RunPolicy with a fault scenario and optional
// guard: nil scenario injects nothing, nil guard uses the plain manager, so
// RunPolicyResilient(combo, p, b, nil, nil) reproduces RunPolicy exactly.
// See also the System method of the same name.
func RunPolicyResilient(sys *System, combo Workload, policy Policy, budgetFrac float64, sc *FaultScenario, guard *GuardConfig) (*Result, *Result, error) {
	return sys.RunPolicyResilient(combo, policy, budgetFrac, sc, guard)
}

// ResiliencePoint and ResilienceOptions belong to System.ResilienceSweep,
// which measures degradation-vs-fault-rate curves for a policy set with and
// without the guard.
type ResiliencePoint = experiment.ResiliencePoint
type ResilienceOptions = experiment.ResilienceOptions

// ResiliencePolicies is the default policy set for ResilienceSweep.
func ResiliencePolicies() []Policy { return experiment.ResiliencePolicies() }

// CrossSubstrateRow and CrossSubstrateResult belong to System.CrossSubstrate,
// which runs the same policies and budget through the engine's shared control
// loop on both substrates — trace players and the cycle-level chip — and
// reports per-policy throughput/power agreement (`gpmsim xcheck`).
type CrossSubstrateRow = experiment.CrossSubstrateRow
type CrossSubstrateResult = experiment.CrossSubstrateResult

// CrossSubstratePolicies is the default policy set for System.CrossSubstrate.
func CrossSubstratePolicies() []Policy { return experiment.CrossSubstratePolicies() }

// --- Decision supervisor & chaos soak (DESIGN.md §11) -----------------------

// SupervisorConfig arms the engine's decision supervisor: deadline-bounded
// solving (wall-clock watchdog and/or deterministic solver node budget), a
// four-rung graceful-degradation ladder behind the configured policy, and a
// budget-conformance gate on every actuated mode vector. Off by default;
// set it via cmpsim.Options.Supervisor / fullsim.ManagedOptions.Supervisor.
type SupervisorConfig = engine.SupervisorConfig

// WithDeadline wraps any Solver with cooperative cancellation: the solve
// aborts at the wall deadline or node budget (whichever first; zero disables
// either) and returns its best feasible incumbent with Stats.Aborted set.
func WithDeadline(s Solver, wall time.Duration, nodes int64) Solver {
	return solver.WithDeadline(s, wall, nodes)
}

// ChaosOptions, ChaosRow and ChaosReport belong to System.ChaosSoak, the
// seeded randomized-fault soak harness behind `gpmsim chaos`: supervised
// runs across policies × budgets checked by conformance, finiteness,
// recovery and determinism invariant monitors. ChaosReport.Err() is non-nil
// on any violation.
type ChaosOptions = experiment.ChaosOptions
type ChaosRow = experiment.ChaosRow
type ChaosReport = experiment.ChaosReport

// --- Observability: decision tracing, replay, diff (internal/obs) ----------

// Observer receives one structured record per explore interval from the
// engine's control loop: observed per-core samples, the candidate and final
// mode vectors, per-stage budget overrides and decision latency. A nil
// Observer costs nothing. Set System.Observer (or cmpsim/fullsim options) to
// attach one.
type Observer = engine.Observer

// DecisionTrace is the per-interval record an Observer receives.
type DecisionTrace = engine.DecisionTrace

// ObsCounters is the always-on counter snapshot in every Result: decisions,
// per-stage overrides, guard emergencies, solver nodes and trace records.
type ObsCounters = engine.ObsCounters

// TraceManifest identifies a recorded run: substrate, workload, policy and
// the timing grid a replay must reproduce.
type TraceManifest = obs.Manifest

// Trace is a decoded decision trace: manifest, records, footer.
type Trace = obs.Trace

// TraceWriter streams a run's decision trace as versioned JSONL.
type TraceWriter = obs.Writer

// NewTraceWriter starts a JSONL trace with the given manifest; close it after
// the run to stamp the footer (record count, fingerprints, counters).
func NewTraceWriter(w io.Writer, m *TraceManifest) (*TraceWriter, error) { return obs.NewWriter(w, m) }

// TraceCollector buffers a trace in memory (tests, replay without files).
type TraceCollector = obs.Collector

// NewTraceCollector returns an in-memory Observer; its Trace() is complete
// after the run.
func NewTraceCollector(m *TraceManifest) *TraceCollector { return obs.NewCollector(m) }

// ReadTrace decodes a JSONL decision trace; corrupt input yields a typed
// *obs.DecodeError with a line number, never a panic.
func ReadTrace(path string) (*Trace, error) { return obs.ReadTraceFile(path) }

// TraceDivergence names the first interval, core and field where two traces
// disagree (nil = structurally identical).
type TraceDivergence = obs.Divergence

// DiffTraces structurally compares two decision traces in pipeline order.
func DiffTraces(a, b *Trace) *TraceDivergence { return obs.Diff(a, b) }

// ResultFingerprint hashes every numeric series and counter of a Result
// bit-exactly — the golden-test and replay-verification hash.
func ResultFingerprint(r *Result) uint64 { return obs.ResultFingerprint(r) }

// ReplayResult re-drives a recorded cmpsim run from its trace on a fresh
// substrate: recorded vectors and budgets replace the policy and budget
// stages, and the returned Result is bit-identical to the recorded run
// (verify with ResultFingerprint against the trace footer). Thermal-governed
// runs need the governor re-supplied via cmpsim options instead.
func ReplayResult(sys *System, t *Trace) (*Result, error) {
	if t.Manifest == nil {
		return nil, fmt.Errorf("gpm: trace has no manifest")
	}
	combo, err := workload.FindCombo(t.Manifest.ComboID)
	if err != nil {
		return nil, err
	}
	return cmpsim.Run(sys.Lib, combo, cmpsim.Options{Replay: t})
}

// --- Datacenter fleet tier (internal/fleet, DESIGN.md §12) ------------------

// FleetConfig describes one fleet scenario: N managed chips, seeded open-loop
// client cohorts (Poisson/Gamma/Weibull arrivals, SLO latency classes,
// diurnal modulation), a placement policy with admission control, and a
// facility power cap the arbiter redistributes across chips every epoch.
// Runs are bit-identical for every Workers value.
type FleetConfig = fleet.Config

// FleetCohort is one client population: arrival process, request cost in
// committed instructions, and SLO latency target.
type FleetCohort = fleet.Cohort

// FleetResult is a completed fleet scenario: throughput, per-cohort SLO
// attainment and latency percentiles, Jain fairness over attainment, the
// arbiter's per-epoch grant log, and every chip's engine Result.
type FleetResult = fleet.Result

// FleetCohortStats and FleetEpochStats are the per-cohort and per-epoch rows
// of a FleetResult.
type FleetCohortStats = fleet.CohortStats
type FleetEpochStats = fleet.EpochStats

// RunFleet drives one fleet scenario on the system's profile library.
func RunFleet(sys *System, cfg FleetConfig) (*FleetResult, error) { return fleet.Run(sys.Lib, cfg) }

// FleetFingerprint hashes a FleetResult bit-exactly — serving digest, epoch
// log and per-chip engine fingerprints (the fleet golden-test hash).
func FleetFingerprint(r *FleetResult) uint64 { return fleet.Fingerprint(r) }

// FleetSweepPoint is one facility-cap operating point of System.FleetSweep,
// the throughput/SLO-vs-cap sweep behind `gpmsim fleet`.
type FleetSweepPoint = experiment.FleetSweepPoint

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) over non-negative
// allocations: 1 for perfect equality, 1/n for a single winner, 0 for empty
// or invalid input.
func JainFairness(xs []float64) float64 { return metrics.JainFairness(xs) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs with linear
// interpolation, ignoring non-finite samples.
func Percentile(xs []float64, p float64) float64 { return metrics.Percentile(xs, p) }

// LatencyPercentiles bundles p50/p95/p99 (see SummarizeLatency in
// internal/metrics).
type LatencyPercentiles = metrics.LatencyPercentiles

// Degradation returns 1 − policy/baseline committed instructions.
func Degradation(policyInstr, baselineInstr float64) float64 {
	return metrics.Degradation(policyInstr, baselineInstr)
}

// WeightedSlowdown returns the §5.4 fairness metric from per-thread
// speedups.
func WeightedSlowdown(speedups []float64) float64 { return metrics.WeightedSlowdown(speedups) }

// PerThreadSpeedups divides per-core instruction counts against a baseline.
func PerThreadSpeedups(policy, baseline []float64) ([]float64, error) {
	return metrics.PerThreadSpeedups(policy, baseline)
}

// --- Fidelity loop: calibration, counterfactual replay, phase prediction ----
// --- (internal/calib, internal/core.HistoryPredictor, DESIGN.md §14) --------

// CalibrationFit is one predicted-vs-actual series comparison: MAPE, bias
// and Pearson r (RDefined=false when the series is constant).
type CalibrationFit = calib.Fit

// CalibrationScore is one trace's calibration: how well the §5.5 predictor's
// chip-level forecasts tracked what the substrate then actually did.
type CalibrationScore = calib.Score

// CrossSubstrateScore is the interval-by-interval telemetry agreement of two
// traces of the same management problem on different substrates.
type CrossSubstrateScore = calib.CrossScore

// ScoreTrace replays a recorded trace's telemetry through the system's
// predictor and scores predicted-vs-actual per-interval chip power and
// throughput.
func ScoreTrace(sys *System, t *Trace) (*CalibrationScore, error) {
	return calib.ScoreTrace(t, sys.Plan, sys.Predictor())
}

// HistoryConfig tunes the history-table phase predictor (pattern depth,
// delta quantization buckets, bucket step). Zero fields select defaults.
type HistoryConfig = core.HistoryConfig

// DefaultHistory returns the default phase-predictor configuration.
func DefaultHistory() HistoryConfig { return core.DefaultHistory() }

// CounterfactualOptions configures one counterfactual replay of a recorded
// trace (plan, predictor, policy, optional guard/history/oracle solver).
type CounterfactualOptions = calib.ReplayOptions

// CounterfactualResult is one alternate policy's replay: per-interval and
// cumulative regret versus the recorded decisions and the
// perfect-prediction oracle.
type CounterfactualResult = calib.ReplayResult

// IntervalRegret is one interval's recorded/counterfactual/oracle comparison.
type IntervalRegret = calib.IntervalRegret

// CounterfactualReplay re-drives a recorded trace's telemetry through an
// alternate policy. Replaying the recording's own policy and guard yields
// exactly zero regret at every interval.
func CounterfactualReplay(t *Trace, opt CounterfactualOptions) (*CounterfactualResult, error) {
	return calib.Replay(t, opt)
}

// CalibrationResult is System.CalibrationSweep's report: per policy × budget,
// the predictor's fit on both substrates with and without phase prediction.
type CalibrationResult = experiment.CalibrationResult

// RegretResult is System.CounterfactualReplay's report: every alternate
// policy's regret against one recorded run.
type RegretResult = experiment.RegretResult
