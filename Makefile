GO ?= go

# Extra flags for the test targets, e.g. GOTESTFLAGS=-short for quick CI legs.
GOTESTFLAGS ?=

.PHONY: all build vet test race check bench-json bench-check golden fuzz chaos fleet calib

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test $(GOTESTFLAGS) ./...

# The resilience sweep, sharded solvers and experiment drivers fan out across
# goroutines; run the suite under the race detector before shipping. CI gates
# this leg to the short test set (GOTESTFLAGS=-short) to bound wall-clock.
race: vet
	$(GO) test -race $(GOTESTFLAGS) ./...

check: race

# Machine-readable solver benchmarks: ns/op, B/op, allocs/op and nodes/op per
# solver at 8/16/64/256 cores (plus the 1024-core hierarchical decision), and
# engine decision-loop benchmarks (ns/decision across manager + middleware
# configurations on the synthetic substrate).
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkSolver$$|BenchmarkSolverWarm|BenchmarkSolverDelta|BenchmarkHier1024|BenchmarkDeadlineSolver' -benchmem ./internal/solver \
		| $(GO) run ./cmd/benchjson > BENCH_solver.json
	@echo wrote BENCH_solver.json
	$(GO) test -run '^$$' -bench 'BenchmarkEngine$$' -benchmem ./internal/engine \
		| $(GO) run ./cmd/benchjson > BENCH_engine.json
	@echo wrote BENCH_engine.json
	$(GO) test -run '^$$' -bench 'BenchmarkEngineBare|BenchmarkEngineObserved' -benchmem ./internal/engine \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
	@echo wrote BENCH_obs.json
	( $(GO) test -run '^$$' -bench 'BenchmarkFullsim' -benchmem ./internal/fullsim ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSweep' -benchmem ./internal/experiment ) \
		| $(GO) run ./cmd/benchjson > BENCH_fullsim.json
	@echo wrote BENCH_fullsim.json
	$(GO) test -run '^$$' -bench 'BenchmarkFleet' -benchmem ./internal/fleet \
		| $(GO) run ./cmd/benchjson > BENCH_fleet.json
	@echo wrote BENCH_fleet.json
	( $(GO) test -run '^$$' -bench 'BenchmarkHistoryPredictor' -benchmem ./internal/core ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkCounterfactualReplay' -benchmem ./internal/calib ) \
		| $(GO) run ./cmd/benchjson > BENCH_calib.json
	@echo wrote BENCH_calib.json

# The steady-state allocation gate: re-run the warm-session benchmark rows
# (short -benchtime — allocs/op is iteration-invariant) and fail if any row
# allocates more per op than the committed BENCH_*.json baseline admits. The
# warm solver rows are pinned at 0 allocs/op, so any new allocation on the
# session hot path fails CI here.
bench-check:
	$(GO) test -run '^$$' -bench 'BenchmarkSolverWarm' -benchtime 5x -benchmem ./internal/solver \
		| $(GO) run ./cmd/benchjson -check BENCH_solver.json
	$(GO) test -run '^$$' -bench 'BenchmarkEngine$$/warm' -benchtime 3x -benchmem ./internal/engine \
		| $(GO) run ./cmd/benchjson -check BENCH_engine.json -slack 1.15
	$(GO) test -run '^$$' -bench 'BenchmarkHistoryPredictor/warm' -benchtime 100x -benchmem ./internal/core \
		| $(GO) run ./cmd/benchjson -check BENCH_calib.json
	# Delta-decision latency gates: the generation memo hit must stay under
	# the 1 µs ceiling (and near its baseline), and the K=1 certified delta
	# must stay ≥10× faster than the warm full solve on the same machine.
	$(GO) test -run '^$$' -bench 'BenchmarkSolverDelta' -benchtime 300x -benchmem ./internal/solver \
		| $(GO) run ./cmd/benchjson -check BENCH_solver.json -match 'SolverDelta' \
			-ns-match 'bb-gen-steady|bb-delta' -ns-slack 2.5 \
			-ns-cap 'bb-gen-steady/cores=1024=1000' \
			-ratio 'bb-delta/cores=1024<=0.1*bb-warm-full/cores=1024'
	# Fleet steady state: the 0-dirty epoch (telemetry fold + skip, no solve)
	# must stay under the 6.5 µs ceiling.
	$(GO) test -run '^$$' -bench 'BenchmarkFleetEpochSteady' -benchtime 500x -benchmem ./internal/fleet \
		| $(GO) run ./cmd/benchjson -check BENCH_fleet.json -match 'FleetEpochSteady' \
			-ns-match 'FleetEpochSteady' -ns-slack 2.5 -ns-cap 'FleetEpochSteady=6500'
	@echo bench-check passed

# The refactor-safety gate: golden fingerprints pin the trace-based control
# loop AND its decision traces bit-identical (TestGoldenControlLoop,
# TestGoldenDecisionTraces, TestGoldenReplayBitIdentical), and the
# cross-substrate test asserts both substrates agree through the shared
# engine.
golden:
	$(GO) test -count=1 -run 'TestGolden|TestCounterfactualSelfIdentity' ./internal/cmpsim
	$(GO) test -count=1 -run 'TestRunPolicyGoldenBitIdentical|TestCrossSubstrate|TestGoldenCalibrationReport|TestGoldenRegretTable' ./internal/experiment
	$(GO) test -count=1 -run 'TestCounterfactualSelfIdentity' ./internal/fullsim

# Seeded deterministic chaos soak: randomized fault schedules against the
# decision supervisor's invariant monitors (conformance, finiteness, bounded
# recovery, bit-identical reruns). gpmsim exits non-zero on any violation, so
# this target is a CI gate. Short by design; `gpmsim chaos` with bigger
# -runs/-intervals (and -fullsim) is the long-form soak.
chaos: build
	$(GO) run ./cmd/gpmsim -seed 7 -runs 1 -intervals 12 chaos

# Datacenter-tier smoke: the 8-chip facility-capped serving scenario with a
# mid-run cap cut, plus the throughput/SLO-vs-cap sweep (`gpmsim fleet`).
# Deterministic for any -workers value; the fleet golden test pins the digest.
fleet: build
	$(GO) run ./cmd/gpmsim -quick -workers 4 fleet

# Fidelity smoke: the predictor calibration sweep (predicted vs actual BIPS and
# power on both substrates, last-value vs history-table prediction) and the
# counterfactual regret table (recorded run replayed through alternate policies
# and the true-telemetry oracle). Deterministic for any -workers value; the
# experiment goldens pin both fingerprints.
calib: build
	$(GO) run ./cmd/gpmsim -quick -workers 4 -intervals 6 calib
	$(GO) run ./cmd/gpmsim -quick -workers 4 -intervals 8 regret

# Short coverage-guided fuzz of the trace codec beyond the checked-in seed
# corpus (testdata/fuzz/...); the seeds themselves run as part of `make test`.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz 'FuzzRecordRoundTrip' -fuzztime $(FUZZTIME) ./internal/obs
