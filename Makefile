GO ?= go

# Extra flags for the test targets, e.g. GOTESTFLAGS=-short for quick CI legs.
GOTESTFLAGS ?=

.PHONY: all build vet test race check bench-json

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test $(GOTESTFLAGS) ./...

# The resilience sweep, sharded solvers and experiment drivers fan out across
# goroutines; run the suite under the race detector before shipping. CI gates
# this leg to the short test set (GOTESTFLAGS=-short) to bound wall-clock.
race: vet
	$(GO) test -race $(GOTESTFLAGS) ./...

check: race

# Machine-readable solver benchmarks: ns/op, B/op, allocs/op and nodes/op per
# solver at 8/16/64/256 cores (plus the 1024-core hierarchical decision).
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkSolver$$|BenchmarkHier1024' -benchmem ./internal/solver \
		| $(GO) run ./cmd/benchjson > BENCH_solver.json
	@echo wrote BENCH_solver.json
