GO ?= go

.PHONY: all build vet test race check

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The resilience sweep and experiment drivers fan out across goroutines;
# run the full suite under the race detector before shipping.
race: vet
	$(GO) test -race ./...

check: race
