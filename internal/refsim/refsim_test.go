package refsim

import (
	"testing"

	"gpm/internal/bpred"
	"gpm/internal/cache"
	"gpm/internal/config"
	"gpm/internal/isa"
	"gpm/internal/uarch"
	"gpm/internal/workload"
)

func build(t testing.TB, cfg config.Config, bench string, phase int, f float64) (*Core, *uarch.Core) {
	t.Helper()
	spec := workload.MustLookup(bench)
	mk := func() (*cache.Hierarchy, *bpred.Predictor, isa.Stream) {
		l2 := cache.NewSharedL2(cfg.Mem.L2, cfg.Mem.L2Banks, cfg.Mem.L2BusCyclesPerAccess)
		h := cache.NewHierarchy(cfg.Mem, l2)
		p := bpred.New(cfg.Core.BimodalEntries, cfg.Core.GshareEntries, cfg.Core.SelectorEntries, cfg.Core.GshareHistory)
		warm := func(base uint64, size, blk int, instr bool) {
			for off := 0; off < size; off += blk {
				if instr {
					h.InstrFetch(base + uint64(off))
				} else {
					h.DataAccess(base + uint64(off))
				}
			}
		}
		warm(workload.HotBase, spec.HotSetBytes, cfg.Mem.L1D.BlockSize, false)
		warm(workload.ColdBase, spec.ColdSetBytes, cfg.Mem.L1D.BlockSize, false)
		warm(workload.CodeBase, spec.CodeFootprint, cfg.Mem.L1I.BlockSize, true)
		return h, p, workload.NewGenerator(spec, phase, cfg.Sim.Seed)
	}
	h1, p1, s1 := mk()
	ref := New(cfg, s1, h1, p1)
	ref.SetFreqScale(f)
	h2, p2, s2 := mk()
	fast := uarch.New(cfg, s2, h2, p2)
	fast.SetFreqScale(f)
	return ref, fast
}

// measure runs both models over the same warmup and window and returns
// their IPCs.
func measure(t testing.TB, bench string, f float64) (refIPC, fastIPC float64) {
	cfg := config.Default(1)
	ref, fast := build(t, cfg, bench, 0, f)

	ref.RunInstructions(50_000)
	ref.ResetStats()
	ref.RunInstructions(50_000)

	fast.Measure(50_000, 50_000)

	return ref.IPC(), fast.IPC()
}

func TestFastModelTracksReferenceIPC(t *testing.T) {
	// The fast dependence-driven model is consistently conservative against
	// the per-cycle reference (its analytic release rings charge front-end
	// and retirement constraints eagerly), but the bias is a near-uniform
	// scalar: ratios cluster tightly across the workload spectrum, so
	// relative benchmark behaviour — the quantity the policy study consumes
	// — is preserved. Assert both the band and its tightness.
	benches := []string{"sixtrack", "crafty", "gcc", "mcf", "art"}
	ratios := make([]float64, 0, len(benches))
	refs := map[string]float64{}
	for _, bench := range benches {
		ref, fast := measure(t, bench, 1.0)
		ratio := fast / ref
		t.Logf("%-9s ref IPC %6.3f  fast IPC %6.3f  ratio %.2f", bench, ref, fast, ratio)
		if ratio < 0.45 || ratio > 1.1 {
			t.Errorf("%s: fast/reference IPC ratio %.2f outside agreement band", bench, ratio)
		}
		ratios = append(ratios, ratio)
		refs[bench] = ref
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi/lo > 1.5 {
		t.Errorf("conservatism not uniform: ratio spread %.2f–%.2f", lo, hi)
	}
	// Cross-benchmark ordering must match: the CPU-bound group outruns the
	// memory-bound group in both models.
	for _, cpu := range []string{"sixtrack", "crafty", "gcc"} {
		for _, mem := range []string{"mcf", "art"} {
			if refs[cpu] <= refs[mem] {
				t.Errorf("reference model ordering violated: %s (%.2f) <= %s (%.2f)", cpu, refs[cpu], mem, refs[mem])
			}
		}
	}
}

func TestModelsAgreeOnDVFSSensitivity(t *testing.T) {
	// The quantity the policy study depends on: how much wall-clock
	// performance each benchmark loses at Eff2. Both models must put
	// sixtrack near the frequency cut and mcf far below it.
	deg := func(bench string, ref bool) float64 {
		rT, fT := measure(t, bench, 1.0)
		rE, fE := measure(t, bench, 0.85)
		if ref {
			return 1 - (rE * 0.85 / rT)
		}
		return 1 - (fE * 0.85 / fT)
	}
	for _, bench := range []string{"sixtrack", "mcf"} {
		r := deg(bench, true)
		f := deg(bench, false)
		t.Logf("%-9s Eff2 degradation: reference %5.1f%%  fast %5.1f%%", bench, r*100, f*100)
		if d := r - f; d > 0.06 || d < -0.06 {
			t.Errorf("%s: models disagree on Eff2 degradation by %.1f%%", bench, d*100)
		}
	}
	// Ordering must hold within the reference model itself.
	if deg("mcf", true) > deg("sixtrack", true) {
		t.Error("reference model: mcf should be less frequency-sensitive than sixtrack")
	}
}

func TestReferenceDrainsOnStreamEnd(t *testing.T) {
	cfg := config.Default(1)
	spec := workload.MustLookup("gcc")
	l2 := cache.NewSharedL2(cfg.Mem.L2, cfg.Mem.L2Banks, cfg.Mem.L2BusCyclesPerAccess)
	h := cache.NewHierarchy(cfg.Mem, l2)
	p := bpred.New(cfg.Core.BimodalEntries, cfg.Core.GshareEntries, cfg.Core.SelectorEntries, cfg.Core.GshareHistory)
	c := New(cfg, &finiteStream{gen: workload.NewGenerator(spec, 0, 1), n: 5000}, h, p)
	for c.Step() {
		if c.Cycles() > 1_000_000 {
			t.Fatal("pipeline failed to drain")
		}
	}
	if c.Committed() != 5000 {
		t.Errorf("committed %d, want 5000", c.Committed())
	}
}

func TestReferenceRetireWidthBound(t *testing.T) {
	cfg := config.Default(1)
	spec := workload.MustLookup("sixtrack")
	l2 := cache.NewSharedL2(cfg.Mem.L2, cfg.Mem.L2Banks, cfg.Mem.L2BusCyclesPerAccess)
	h := cache.NewHierarchy(cfg.Mem, l2)
	p := bpred.New(cfg.Core.BimodalEntries, cfg.Core.GshareEntries, cfg.Core.SelectorEntries, cfg.Core.GshareHistory)
	c := New(cfg, workload.NewGenerator(spec, 0, 1), h, p)
	c.RunInstructions(20000)
	if ipc := c.IPC(); ipc > float64(cfg.Core.RetireWidth) {
		t.Errorf("IPC %.2f exceeds retire width %d", ipc, cfg.Core.RetireWidth)
	}
}

// finiteStream truncates a generator after n instructions.
type finiteStream struct {
	gen *workload.Generator
	n   int
}

func (s *finiteStream) Next() (isa.Instruction, bool) {
	if s.n <= 0 {
		return isa.Instruction{}, false
	}
	s.n--
	return s.gen.Next()
}
