package refsim

import (
	"testing"

	"gpm/internal/bpred"
	"gpm/internal/cache"
	"gpm/internal/config"
	"gpm/internal/isa"
	"gpm/internal/uarch"
)

// synth emits loads touching fresh blocks (all miss), either independent
// (src=invariant 30) or chained (src=previous load's dest).
type synth struct {
	i       uint64
	next    uint64
	chained bool
	branchy bool
}

func (s *synth) Next() (isa.Instruction, bool) {
	s.next += 4096
	in := isa.Instruction{
		PC: 0x1000_0000 + (s.i%16)*4, Op: isa.OpLoad,
		Dest: isa.Reg(1), Src1: 30, Src2: isa.NoReg,
		Addr: 0x9000_0000 + s.next,
	}
	if s.chained {
		in.Src1 = 1
	}
	if s.branchy && s.i%8 == 7 {
		in = isa.Instruction{PC: 0x1000_0000 + (s.i%4096)*4, Op: isa.OpBranch,
			Dest: isa.NoReg, Src1: 1, Src2: isa.NoReg,
			Taken: (s.i*2654435761)%97 < 48}
	}
	s.i++
	return in, true
}

func TestIsolateModels(t *testing.T) {
	cfg := config.Default(1)
	run := func(chained, branchy bool) (refCPI, fastCPI float64) {
		mk := func() (*cache.Hierarchy, *bpred.Predictor) {
			l2 := cache.NewSharedL2(cfg.Mem.L2, cfg.Mem.L2Banks, cfg.Mem.L2BusCyclesPerAccess)
			return cache.NewHierarchy(cfg.Mem, l2), bpred.New(16384, 16384, 16384, 14)
		}
		h1, p1 := mk()
		r := New(cfg, &synth{chained: chained, branchy: branchy}, h1, p1)
		r.RunInstructions(2000)
		r.ResetStats()
		r.RunInstructions(8000)
		h2, p2 := mk()
		f := uarch.New(cfg, &synth{chained: chained, branchy: branchy}, h2, p2)
		f.Measure(2000, 8000)
		return 1 / r.IPC(), 1 / f.IPC()
	}
	for _, c := range []struct {
		name             string
		chained, branchy bool
	}{
		{"independent", false, false},
		{"chained", true, false},
		{"indep+branches", false, true},
	} {
		r, f := run(c.chained, c.branchy)
		t.Logf("%-15s refCPI %6.2f  fastCPI %6.2f", c.name, r, f)
		// Per-component mechanics must agree closely; divergence on real
		// streams comes only from window-resource interactions.
		if d := f/r - 1; d > 0.15 || d < -0.15 {
			t.Errorf("%s: models disagree by %.0f%% on a controlled stream", c.name, d*100)
		}
	}
	// Sanity anchors: 8 MSHRs pipeline independent misses at ≈ memLat/8;
	// a fully chained stream serializes at ≈ memLat per load.
	rInd, _ := run(false, false)
	rCh, _ := run(true, false)
	if rInd < 8 || rInd > 16 {
		t.Errorf("independent-miss CPI %.1f outside MSHR-pipelined band", rInd)
	}
	if rCh < 80 || rCh > 95 {
		t.Errorf("chained-miss CPI %.1f not ≈ memory latency", rCh)
	}
}
