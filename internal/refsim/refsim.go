// Package refsim is a per-cycle, structurally explicit out-of-order pipeline
// simulator for the Table 1 core: a slow reference model used to validate
// the fast dependence-driven timing model in internal/uarch, the way
// multi-fidelity simulator toolsets (like the paper's MET) pair a detailed
// reference with fast derived models.
//
// Unlike uarch — which computes per-instruction event times analytically —
// refsim advances one clock at a time through explicit fetch, dispatch,
// issue-select, writeback and commit stages over concrete buffer structures
// (fetch buffer, reorder buffer, issue window, MSHRs, functional-unit busy
// state). Agreement between the two models on IPC and on DVFS sensitivity is
// asserted in tests.
package refsim

import (
	"math"

	"gpm/internal/bpred"
	"gpm/internal/cache"
	"gpm/internal/config"
	"gpm/internal/isa"
)

// entryState tracks an instruction's position in the pipeline.
type entryState uint8

const (
	stWaiting entryState = iota // in the issue window, sources pending
	stIssued                    // executing
	stDone                      // completed, awaiting in-order commit
)

// robEntry is one in-flight instruction.
type robEntry struct {
	in    isa.Instruction
	state entryState
	// src1/src2 reference producing ROB slots, or -1 when the operand was
	// ready at dispatch.
	src1, src2 int
	doneAt     uint64 // valid once issued
	isMiss     bool   // occupies an MSHR while executing
	mispredict bool   // branch that redirects fetch when it completes
}

// Core is a per-cycle structural model of one core.
type Core struct {
	cfg  config.Config
	str  isa.Stream
	pred *bpred.Predictor
	hier *cache.Hierarchy

	freqScale float64
	l2Lat     uint64
	memLat    uint64

	now uint64

	// Fetch front end.
	fetchBuf   []isa.Instruction
	fetchStall uint64 // cycle until which fetch is redirected/stalled
	// pendingRedirects counts in-flight mispredicted branches; fetch halts
	// until they resolve (writebackStage) and extend fetchStall.
	pendingRedirects int
	lastBlock        uint64
	streamDone       bool

	// Reorder buffer as a ring.
	rob        []robEntry
	robHead    int // oldest
	robTail    int // next free
	robCount   int
	lastWriter [isa.NumArchRegs]int // ROB slot of the newest writer, -1 none

	// Functional units: busy-until cycles per instance.
	fxu, fpu, lsu, bru []uint64

	// MSHRs: in-flight miss count.
	missesOut int

	// Reservation-station occupancy per cluster (entries held from dispatch
	// until issue), mirroring Table 1's 2x18 mem / 2x20 fix / 2x5 fp split.
	rsMem, rsFix, rsFP int

	// Physical registers in flight (allocated at dispatch for an
	// instruction with a destination, released at commit). Table 1's 80
	// GPR / 72 FPR leave 48 / 40 rename registers beyond architected state.
	physInt, physFP int

	// Statistics.
	committed uint64
	cycles    uint64
}

// New builds a reference core at Turbo frequency.
func New(cfg config.Config, str isa.Stream, hier *cache.Hierarchy, pred *bpred.Predictor) *Core {
	c := &Core{
		cfg:  cfg,
		str:  str,
		pred: pred,
		hier: hier,
		rob:  make([]robEntry, cfg.Core.ReorderBuffer),
		fxu:  make([]uint64, cfg.Core.NumFXU),
		fpu:  make([]uint64, cfg.Core.NumFPU),
		lsu:  make([]uint64, cfg.Core.NumLSU),
		bru:  make([]uint64, cfg.Core.NumBRU),
	}
	for i := range c.lastWriter {
		c.lastWriter[i] = -1
	}
	c.SetFreqScale(1.0)
	return c
}

// SetFreqScale rescales the asynchronous-domain latencies, as in uarch.
func (c *Core) SetFreqScale(f float64) {
	if f <= 0 || f > 1 {
		panic("refsim: frequency scale must be in (0,1]")
	}
	c.freqScale = f
	c.l2Lat = uint64(math.Max(1, math.Round(float64(c.cfg.Mem.L2.LatencyCycles)*f)))
	c.memLat = uint64(math.Max(1, math.Round(float64(c.cfg.Mem.MemoryLatencyCycles)*f)))
}

// Committed returns instructions committed since construction or ResetStats.
func (c *Core) Committed() uint64 { return c.committed }

// Cycles returns cycles simulated since construction or ResetStats.
func (c *Core) Cycles() uint64 { return c.cycles }

// IPC returns committed/cycles.
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.committed) / float64(c.cycles)
}

// ResetStats zeroes the counters; pipeline state is preserved.
func (c *Core) ResetStats() { c.committed, c.cycles = 0, 0 }

func (c *Core) srcReady(slot int) bool {
	return slot < 0 || c.rob[slot].state == stDone
}

// latency returns execution latency and whether the op misses the L1.
func (c *Core) latency(in isa.Instruction) (uint64, bool) {
	switch in.Op {
	case isa.OpFX:
		return uint64(c.cfg.Core.FXULatency), false
	case isa.OpFP:
		return uint64(c.cfg.Core.FPULatency), false
	case isa.OpBranch:
		return uint64(c.cfg.Core.BRULatency), false
	case isa.OpStore:
		// Address check occupies the LSU; the drain is buffered.
		c.hier.DataAccessRW(in.Addr, true)
		return 1, false
	default: // load
		lv := c.hier.DataAccess(in.Addr)
		l1 := uint64(c.cfg.Mem.L1D.LatencyCycles)
		switch lv {
		case cache.LevelL1:
			return l1, false
		case cache.LevelL2:
			return l1 + c.l2Lat, true
		default:
			return l1 + c.l2Lat + c.memLat, true
		}
	}
}

func (c *Core) fuBank(op isa.Op) []uint64 {
	switch op {
	case isa.OpFX:
		return c.fxu
	case isa.OpFP:
		return c.fpu
	case isa.OpBranch:
		return c.bru
	default:
		return c.lsu
	}
}

// Step advances the machine by one cycle. It returns false once the stream
// is exhausted and the pipeline has drained.
func (c *Core) Step() bool {
	c.commitStage()
	c.writebackStage()
	c.issueStage()
	c.dispatchStage()
	c.fetchStage()
	c.now++
	c.cycles++
	return !(c.streamDone && c.robCount == 0 && len(c.fetchBuf) == 0)
}

// Run advances n cycles (or until drained) and reports whether the machine
// can still make progress.
func (c *Core) Run(n uint64) bool {
	for i := uint64(0); i < n; i++ {
		if !c.Step() {
			return false
		}
	}
	return true
}

// RunInstructions advances until n more instructions commit (or the stream
// drains).
func (c *Core) RunInstructions(n uint64) bool {
	target := c.committed + n
	for c.committed < target {
		if !c.Step() {
			return false
		}
	}
	return true
}

func (c *Core) commitStage() {
	for k := 0; k < c.cfg.Core.RetireWidth && c.robCount > 0; k++ {
		e := &c.rob[c.robHead]
		if e.state != stDone {
			return
		}
		// Clear writer tracking if this entry is still the newest writer,
		// and release the physical register.
		if e.in.HasDest() {
			if c.lastWriter[e.in.Dest] == c.robHead {
				c.lastWriter[e.in.Dest] = -1
			}
			if e.in.Dest.IsFP() {
				c.physFP--
			} else {
				c.physInt--
			}
		}
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCount--
		c.committed++
	}
}

func (c *Core) writebackStage() {
	if c.robCount == 0 {
		return
	}
	for i, n := c.robHead, 0; n < c.robCount; i, n = (i+1)%len(c.rob), n+1 {
		e := &c.rob[i]
		if e.state == stIssued && e.doneAt <= c.now {
			e.state = stDone
			if e.isMiss {
				c.missesOut--
			}
			if e.mispredict {
				// The redirect happens when the branch resolves — which for
				// branches fed by loads can be long after dispatch.
				e.mispredict = false
				c.pendingRedirects--
				if stall := c.now + uint64(c.cfg.Core.MispredictPenalty); stall > c.fetchStall {
					c.fetchStall = stall
				}
			}
		}
	}
}

func (c *Core) issueStage() {
	issued := 0
	maxIssue := c.cfg.Core.NumFXU + c.cfg.Core.NumFPU + c.cfg.Core.NumLSU + c.cfg.Core.NumBRU
	for i, n := c.robHead, 0; n < c.robCount && issued < maxIssue; i, n = (i+1)%len(c.rob), n+1 {
		e := &c.rob[i]
		if e.state != stWaiting || !c.srcReady(e.src1) || !c.srcReady(e.src2) {
			continue
		}
		bank := c.fuBank(e.in.Op)
		fu := -1
		for b := range bank {
			if bank[b] <= c.now {
				fu = b
				break
			}
		}
		if fu < 0 {
			continue
		}
		// Gate on MSHR availability *before* touching the cache: a failed
		// issue attempt must not fill the line (a probe has no side effect).
		if e.in.Op == isa.OpLoad && c.missesOut >= c.cfg.Core.MSHRs && !c.hier.L1D.Probe(e.in.Addr) {
			continue // no MSHR free: retry next cycle
		}
		lat, miss := c.latency(e.in)
		if miss {
			c.missesOut++
			e.isMiss = true
		}
		bank[fu] = c.now + 1 // pipelined: busy one slot cycle
		e.state = stIssued
		e.doneAt = c.now + lat
		c.releaseRS(e.in.Op)
		issued++
	}
}

// rsCluster returns the occupancy counter and capacity for an op's cluster.
func (c *Core) rsCluster(op isa.Op) (*int, int) {
	switch op {
	case isa.OpLoad, isa.OpStore:
		return &c.rsMem, c.cfg.Core.MemRS * c.cfg.Core.NumLSU
	case isa.OpFP:
		return &c.rsFP, c.cfg.Core.FPRS * c.cfg.Core.NumFPU
	default:
		return &c.rsFix, c.cfg.Core.FixRS * c.cfg.Core.NumFXU
	}
}

func (c *Core) releaseRS(op isa.Op) {
	ctr, _ := c.rsCluster(op)
	*ctr--
}

func (c *Core) dispatchStage() {
	for k := 0; k < c.cfg.Core.DispatchWidth && len(c.fetchBuf) > 0 && c.robCount < len(c.rob); k++ {
		in := c.fetchBuf[0]
		if in.HasDest() {
			if in.Dest.IsFP() {
				if c.physFP >= c.cfg.Core.FPR-32 {
					return // rename registers exhausted: dispatch stalls
				}
			} else if c.physInt >= c.cfg.Core.GPR-32 {
				return
			}
		}
		if ctr, cap := c.rsCluster(in.Op); *ctr >= cap {
			return // cluster reservation stations full: dispatch stalls
		} else {
			*ctr++
		}
		if in.HasDest() {
			if in.Dest.IsFP() {
				c.physFP++
			} else {
				c.physInt++
			}
		}
		c.fetchBuf = c.fetchBuf[1:]
		e := robEntry{in: in, state: stWaiting, src1: -1, src2: -1}
		if in.Src1 != isa.NoReg {
			e.src1 = c.lastWriter[in.Src1]
		}
		if in.Src2 != isa.NoReg {
			e.src2 = c.lastWriter[in.Src2]
		}
		slot := c.robTail
		c.rob[slot] = e
		c.robTail = (c.robTail + 1) % len(c.rob)
		c.robCount++
		if in.HasDest() {
			c.lastWriter[in.Dest] = slot
		}
		// Branch handling at dispatch: resolve prediction; on a mispredict,
		// stall fetch until the branch's execution completes plus the
		// redirect penalty. (The stream is oracle-ordered, so "squashed"
		// wrong-path work is modeled as the fetch hole.)
		if in.Op == isa.OpBranch {
			mis := c.pred.Update(in.PC, in.Taken)
			if mis {
				// The stream carries only correct-path instructions, so the
				// wrong-path time is modeled purely as a fetch hole: fetch
				// stalls until the branch completes (see writebackStage) —
				// for branches fed by loads that can be long after dispatch.
				c.rob[slot].mispredict = true
				c.pendingRedirects++ // fetch held until resolution
			} else if in.Taken && c.fetchStall <= c.now {
				c.fetchStall = c.now + 1 // taken-branch redirect bubble
			}
		}
	}
}

// fetchBufCap bounds the decoupling queue between fetch and dispatch.
const fetchBufCap = 32

func (c *Core) fetchStage() {
	if c.streamDone || c.pendingRedirects > 0 || c.now < c.fetchStall {
		return
	}
	for k := 0; k < c.cfg.Core.FetchWidth && len(c.fetchBuf) < fetchBufCap; k++ {
		in, ok := c.str.Next()
		if !ok {
			c.streamDone = true
			return
		}
		blk := in.PC &^ uint64(c.cfg.Mem.L1I.BlockSize-1)
		if blk != c.lastBlock {
			c.lastBlock = blk
			lv := c.hier.InstrFetch(in.PC)
			var pen uint64
			switch lv {
			case cache.LevelL2:
				pen = c.l2Lat
			case cache.LevelMemory:
				pen = c.l2Lat + c.memLat
			}
			if pen > 0 {
				c.fetchBuf = append(c.fetchBuf, in)
				c.fetchStall = c.now + pen
				return
			}
		}
		c.fetchBuf = append(c.fetchBuf, in)
	}
}
