package fullsim

import (
	"testing"
	"time"

	"gpm/internal/config"
	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/power"
)

func setup(t testing.TB, benchmarks []string, v modes.Vector) *Chip {
	t.Helper()
	cfg := config.Default(len(benchmarks))
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
	ch, err := New(cfg, power.Default(), plan, benchmarks, 0, v)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewValidation(t *testing.T) {
	cfg := config.Default(2)
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
	if _, err := New(cfg, power.Default(), plan, nil, 0, nil); err == nil {
		t.Error("empty benchmark list accepted")
	}
	if _, err := New(cfg, power.Default(), plan, []string{"mcf"}, 0, modes.Uniform(2, modes.Turbo)); err == nil {
		t.Error("mode/core mismatch accepted")
	}
	if _, err := New(cfg, power.Default(), plan, []string{"nope"}, 0, nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMeasureProducesSaneActivities(t *testing.T) {
	ch := setup(t, []string{"crafty", "mcf"}, nil)
	ch.Warm(5000)
	acts := ch.Measure(300_000)
	if len(acts) != 2 {
		t.Fatalf("got %d activities", len(acts))
	}
	// crafty (CPU bound) must out-commit mcf (memory bound).
	if acts[0].Committed <= acts[1].Committed {
		t.Errorf("crafty committed %d <= mcf %d", acts[0].Committed, acts[1].Committed)
	}
	for i, a := range acts {
		if a.IPC() <= 0 || a.IPC() > 5 {
			t.Errorf("core %d IPC %v out of range", i, a.IPC())
		}
		if p := ch.CorePowerW(i, a); p <= 0 || p > 60 {
			t.Errorf("core %d power %v out of range", i, p)
		}
	}
}

func TestSharedL2CausesContention(t *testing.T) {
	// Two streaming benchmarks must interfere in the shared L2.
	ch := setup(t, []string{"art", "mcf"}, nil)
	ch.Warm(5000)
	ch.Measure(300_000)
	contended, wait := ch.L2().Contention()
	if contended == 0 || wait == 0 {
		t.Error("no shared-L2 contention recorded for two streaming co-runners")
	}
}

func TestDVFSSlowsACore(t *testing.T) {
	run := func(v modes.Vector) uint64 {
		ch := setup(t, []string{"crafty", "gcc"}, v)
		ch.Warm(5000)
		acts := ch.Measure(400_000)
		return acts[0].Committed
	}
	turbo := run(nil)
	slowed := run(modes.Vector{modes.Eff2, modes.Turbo})
	if slowed >= turbo {
		t.Errorf("Eff2 core committed %d >= Turbo's %d over the same wall time", slowed, turbo)
	}
	// An Eff2 core runs at 85% frequency: committed should be roughly in
	// that ballpark for a CPU-bound benchmark (allow a wide band).
	ratio := float64(slowed) / float64(turbo)
	if ratio < 0.6 || ratio > 1.0 {
		t.Errorf("Eff2/Turbo commit ratio %.2f outside (0.6,1.0)", ratio)
	}
}

func TestSetVector(t *testing.T) {
	ch := setup(t, []string{"crafty", "gcc"}, nil)
	v := modes.Vector{modes.Eff1, modes.Eff2}
	ch.SetVector(v)
	if !ch.Vector().Equal(v) {
		t.Error("SetVector did not take effect")
	}
}

func TestRunManagedMeetsBudget(t *testing.T) {
	ch := setup(t, []string{"ammp", "mcf", "crafty", "art"}, nil)
	ch.Warm(5000)
	// Probe all-Turbo power to set a meaningful budget.
	acts := ch.Measure(200_000)
	var full float64
	for i, a := range acts {
		full += ch.CorePowerW(i, a)
	}
	budget := 0.8 * full
	res, err := ch.RunManaged(core.MaxBIPS{}, budget, 12)
	if err != nil {
		t.Fatal(err)
	}
	perExplore := res.ExploreChipPowerW(ch.cfg.DeltaPerExplore())
	if len(perExplore) != 12 {
		t.Fatalf("got %d intervals", len(perExplore))
	}
	over := 0
	for _, p := range perExplore[1:] { // first interval may correct a bootstrap overshoot
		if p > budget*1.05 {
			over++
		}
	}
	if over > 2 {
		t.Errorf("%d of 11 managed intervals exceeded the budget by >5%%", over)
	}
	if res.TotalInstr <= 0 {
		t.Error("no instructions committed under management")
	}
	// The manager must actually have left Turbo to fit an 80% budget.
	sawNonTurbo := false
	for _, v := range res.Modes {
		for _, m := range v {
			if m != modes.Turbo {
				sawNonTurbo = true
			}
		}
	}
	if !sawNonTurbo {
		t.Error("manager never changed modes under a tight budget")
	}
}

// TestManagedGuardedCoreDeath drives the cycle-level chip through the
// engine with fault injection and the resilient manager: a core that dies
// mid-run must be detected and parked by the guard, visibly in the Result,
// and the simulated physics must stop charging the dead core.
func TestManagedGuardedCoreDeath(t *testing.T) {
	ch := setup(t, []string{"crafty", "mcf", "gcc", "art"}, nil)
	ch.Warm(5000)
	explore := ch.cfg.Sim.Explore
	deathAt := 2 * explore
	res, err := ch.Managed(ManagedOptions{
		Policy:    core.MaxBIPS{},
		BudgetW:   1e12, // unconstrained: isolate the death handling
		Intervals: 12,
		Fault:     &fault.Scenario{Deaths: []fault.CoreDeath{{Core: 1, At: deathAt}}},
		Guard:     &core.GuardConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeadCores) != 1 || res.DeadCores[0] != 1 {
		t.Errorf("guard parked cores %v, want [1]", res.DeadCores)
	}
	// Physics: the dead core must commit nothing and draw nothing from the
	// first delta interval at/after the death time.
	deadFrom := int(deathAt / res.DeltaSim)
	var instrAfter, powerAfter float64
	for i := deadFrom; i < len(res.CoreInstr); i++ {
		instrAfter += res.CoreInstr[i][1]
		powerAfter += res.CorePowerW[i][1]
	}
	if instrAfter != 0 || powerAfter != 0 {
		t.Errorf("dead core advanced after death: instr=%v power=%v", instrAfter, powerAfter)
	}
	// The survivors must keep running for the full horizon.
	if res.Elapsed != time.Duration(12)*explore {
		t.Errorf("run ended at %v, want %v (death must not terminate the run)", res.Elapsed, 12*explore)
	}
	for _, c := range []int{0, 2, 3} {
		if res.PerCoreInstr[c] <= 0 {
			t.Errorf("surviving core %d committed nothing", c)
		}
	}
}
