package fullsim

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"gpm/internal/core"
)

// benchCombo is the 8-way mixed combo (8w-mixed) used by the paper's widest
// sweeps; the wall-clock acceptance numbers are quoted on this chip.
var benchCombo = []string{"ammp", "mcf", "crafty", "art", "facerec", "gcc", "mesa", "vortex"}

// advanceWindow is one delta-sim interval of global cycles (50 µs at 1 GHz),
// the granularity the managed control loop advances the chip at.
const advanceWindow = 50_000

// BenchmarkFullsimAdvance measures raw substrate stepping: one managed-loop
// delta interval of an 8-core chip per iteration, across worker counts.
// ns/core-cycle is wall time per simulated core-cycle (lower is better);
// Minstr/s is simulated instruction throughput.
func BenchmarkFullsimAdvance(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ch := chipWithWorkers(b, benchCombo, workers)
			ch.Warm(2000)
			start := committedTotal(ch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch.Advance(advanceWindow)
			}
			b.StopTimer()
			coreCycles := float64(b.N) * advanceWindow * float64(ch.NumCores())
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/coreCycles, "ns/core-cycle")
			instr := committedTotal(ch) - start
			b.ReportMetric(float64(instr)/1e6/b.Elapsed().Seconds(), "Minstr/s")
		})
	}
}

// BenchmarkFullsimManaged measures the acceptance case end to end: an 8-core
// chip under the MaxBIPS manager (engine control loop, explore probing, mode
// switching) for 2 explore intervals per iteration.
func BenchmarkFullsimManaged(b *testing.B) {
	const intervals = 2
	workersList := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workersList = append(workersList, n)
	}
	for _, workers := range workersList {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ch := chipWithWorkers(b, benchCombo, workers)
				ch.Warm(2000)
				b.StartTimer()
				if _, err := ch.RunManaged(core.MaxBIPS{}, 120, intervals); err != nil {
					b.Fatal(err)
				}
			}
			// Managed horizon: intervals × explore × (1 bootstrap + horizon)
			// — report per simulated core-cycle over the managed horizon.
			globalCycles := float64(intervals) * 500_000
			coreCycles := float64(b.N) * globalCycles * float64(len(benchCombo))
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/coreCycles, "ns/core-cycle")
		})
	}
}

// BenchmarkFullsimSpeedup reports the parallel speedup of Advance directly:
// each iteration times the same simulated work with Workers=1 and
// Workers=GOMAXPROCS and reports the wall-clock ratio (1.0 = no speedup; on
// a single-CPU host this is ≈1 by construction — the determinism tests
// guarantee the results are identical either way).
func BenchmarkFullsimSpeedup(b *testing.B) {
	parallel := runtime.GOMAXPROCS(0)
	run := func(workers int) time.Duration {
		ch := chipWithWorkers(b, benchCombo, workers)
		ch.Warm(2000)
		start := time.Now()
		ch.Advance(4 * advanceWindow)
		return time.Since(start)
	}
	var serial, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial += run(1)
		par += run(parallel)
	}
	b.StopTimer()
	b.ReportMetric(serial.Seconds()/par.Seconds(), "x-speedup")
	b.ReportMetric(float64(parallel), "workers")
}

func committedTotal(ch *Chip) uint64 {
	var total uint64
	for _, c := range ch.cores {
		total += c.Counters().Committed
	}
	return total
}
