package fullsim

import (
	"errors"
	"math"
	"testing"

	"gpm/internal/config"
	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/modes"
	"gpm/internal/obs"
	"gpm/internal/power"
)

// TestManagedOptionsValidation is the table-driven typed-error check for the
// fullsim front end, mirroring cmpsim's.
func TestManagedOptionsValidation(t *testing.T) {
	cfg := config.Default(2)
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
	if _, err := NewWithOptions(cfg, power.Default(), plan, []string{"mcf", "crafty"}, 0, nil, Options{Workers: -1}); err == nil {
		t.Error("negative Workers accepted")
	} else {
		var oe *engine.OptionError
		if !errors.As(err, &oe) || oe.Field != "Workers" {
			t.Errorf("negative Workers: error %v not an OptionError on Workers", err)
		}
	}

	good := func() ManagedOptions {
		return ManagedOptions{Policy: core.MaxBIPS{}, BudgetW: 40, Intervals: 2}
	}
	cases := []struct {
		name  string
		mut   func(*ManagedOptions)
		field string
	}{
		{"nil policy", func(o *ManagedOptions) { o.Policy = nil }, "Policy"},
		{"zero intervals", func(o *ManagedOptions) { o.Intervals = 0 }, "Intervals"},
		{"negative intervals", func(o *ManagedOptions) { o.Intervals = -3 }, "Intervals"},
		{"NaN guard", func(o *ManagedOptions) { o.Guard = &core.GuardConfig{EWMAAlpha: math.NaN()} }, "Guard"},
		{"supervisor with replay", func(o *ManagedOptions) {
			o.Supervisor = &engine.SupervisorConfig{}
			o.Replay = &obs.Trace{Records: []obs.Record{{Vector: []int{0, 0}, BudgetW: 40}}}
		}, "Supervisor"},
		{"negative supervisor node budget", func(o *ManagedOptions) {
			o.Supervisor = &engine.SupervisorConfig{NodeBudget: -1}
		}, "Supervisor.NodeBudget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch := setup(t, []string{"mcf", "crafty"}, nil)
			opt := good()
			tc.mut(&opt)
			_, err := ch.Managed(opt)
			if err == nil {
				t.Fatal("accepted")
			}
			var oe *engine.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %T (%v) is not *engine.OptionError", err, err)
			}
			if oe.Field != tc.field {
				t.Fatalf("rejected field %q, want %q", oe.Field, tc.field)
			}
		})
	}
}

// TestManagedSupervisedCleanPathIdentical pins supervisor transparency on the
// cycle-level substrate: a clean supervised run matches the unsupervised
// Result fingerprint exactly.
func TestManagedSupervisedCleanPathIdentical(t *testing.T) {
	run := func(sup bool) *engine.Result {
		ch := setup(t, []string{"mcf", "crafty"}, nil)
		ch.Warm(5000)
		opt := ManagedOptions{Policy: core.MaxBIPS{}, BudgetW: 40, Intervals: 4}
		if sup {
			opt.Supervisor = &engine.SupervisorConfig{}
		}
		res, err := ch.Managed(opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, supd := run(false), run(true)
	if a, b := obs.ResultFingerprint(plain), obs.ResultFingerprint(supd); a != b {
		t.Fatalf("supervised clean run diverged: %#x vs %#x", b, a)
	}
	if supd.Obs.SupervisorRungs[0] != supd.Obs.Decisions {
		t.Fatalf("clean run left rung 0: %+v", supd.Obs)
	}
}
