package fullsim

import (
	"testing"

	"gpm/internal/config"
	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/obs"
	"gpm/internal/power"
)

func chipWithWorkers(t testing.TB, benchmarks []string, workers int) *Chip {
	t.Helper()
	cfg := config.Default(len(benchmarks))
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
	ch, err := NewWithOptions(cfg, power.Default(), plan, benchmarks, 0, nil,
		Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// managedFingerprint runs the golden managed case and reduces the full
// Result — every per-delta power/instruction series, mode decision and
// aggregate — to one fingerprint.
func managedFingerprint(t testing.TB, workers int) uint64 {
	t.Helper()
	ch := chipWithWorkers(t, []string{"ammp", "mcf", "crafty", "art"}, workers)
	ch.Warm(2000)
	res, err := ch.RunManaged(core.MaxBIPS{}, 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	return obs.ResultFingerprint(res)
}

// TestManagedDeterministicAcrossWorkers is the acceptance gate for the
// parallel substrate: Workers=1, 2 and 8 must produce bit-identical managed
// results, and repeated parallel runs must agree with each other (no
// scheduling-dependent arbitration).
func TestManagedDeterministicAcrossWorkers(t *testing.T) {
	want := managedFingerprint(t, 1)
	for _, workers := range []int{2, 8} {
		if got := managedFingerprint(t, workers); got != want {
			t.Errorf("Workers=%d fingerprint %#x, want %#x (Workers=1)", workers, got, want)
		}
	}
	if again := managedFingerprint(t, 8); again != want {
		t.Errorf("repeated Workers=8 run fingerprint %#x, want %#x", again, want)
	}
}

// TestAdvanceDeterministicAcrossWorkers checks the raw substrate below the
// manager: identical per-core committed counts, frontiers and shared-L2
// statistics for serial and parallel stepping.
func TestAdvanceDeterministicAcrossWorkers(t *testing.T) {
	type snap struct {
		committed []uint64
		frontier  []uint64
		accesses  uint64
		misses    uint64
		contended uint64
		wait      uint64
	}
	run := func(workers int) snap {
		ch := chipWithWorkers(t, []string{"art", "mcf", "gcc", "crafty"}, workers)
		ch.Warm(2000)
		ch.Measure(120_000)
		var s snap
		for _, c := range ch.cores {
			s.committed = append(s.committed, c.Counters().Committed)
			s.frontier = append(s.frontier, c.Frontier())
		}
		s.accesses, s.misses = ch.L2().Stats()
		s.contended, s.wait = ch.L2().Contention()
		return s
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range want.committed {
			if got.committed[i] != want.committed[i] || got.frontier[i] != want.frontier[i] {
				t.Errorf("Workers=%d core %d: committed/frontier %d/%d, want %d/%d",
					workers, i, got.committed[i], got.frontier[i], want.committed[i], want.frontier[i])
			}
		}
		if got.accesses != want.accesses || got.misses != want.misses {
			t.Errorf("Workers=%d L2 stats %d/%d, want %d/%d", workers, got.accesses, got.misses, want.accesses, want.misses)
		}
		if got.contended != want.contended || got.wait != want.wait {
			t.Errorf("Workers=%d contention %d/%d, want %d/%d", workers, got.contended, got.wait, want.contended, want.wait)
		}
	}
}

// TestParallelAdvanceRaceExercise drives the concurrent stepping path hard
// enough for the race detector (go test -race) to observe any unsynchronized
// shared-L2 or chip-state access, including mid-run mode switches.
func TestParallelAdvanceRaceExercise(t *testing.T) {
	ch := chipWithWorkers(t, []string{"art", "mcf", "ammp", "gcc"}, 4)
	ch.Warm(1000)
	levels := []modes.Mode{modes.Turbo, modes.Eff1, modes.Eff2}
	for i := 0; i < 8; i++ {
		ch.SetVector(modes.Uniform(4, levels[i%len(levels)]))
		ch.Measure(10_000)
	}
	if _, wait := ch.L2().Contention(); wait == 0 {
		t.Error("no shared-L2 contention after parallel windows")
	}
}

// TestMeasureSteadyStateAllocs pins the per-interval allocation behaviour of
// the serial path: once the window/commit/measure scratch buffers have grown
// to steady state, Measure must not allocate per interval.
func TestMeasureSteadyStateAllocs(t *testing.T) {
	ch := chipWithWorkers(t, []string{"crafty", "mcf"}, 1)
	ch.Warm(1000)
	ch.Measure(40_000) // grow scratch to steady state
	avg := testing.AllocsPerRun(5, func() {
		ch.Measure(8_000)
	})
	if avg > 2 {
		t.Errorf("Measure allocates %.1f objects per interval in steady state, want <=2", avg)
	}
}
