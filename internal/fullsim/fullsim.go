// Package fullsim is the cycle-level full-CMP simulator used to validate the
// trace-based analysis tool, mirroring §3.1's cross-check against a
// "cycle-accurate full-CMP implementation of Turandot" in the style of Li et
// al.: multiple uarch cores over one shared, banked L2 with bus contention,
// time-driven synchronization across per-core clock domains, and optional
// per-core DVFS under a global management policy.
//
// Cores may run at different frequency scales; simulation advances on a
// global time base measured in nominal-frequency cycles. A core at frequency
// scale f that has executed c local cycles sits at global time c/f.
package fullsim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gpm/internal/bpred"
	"gpm/internal/cache"
	"gpm/internal/config"
	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/obs"
	"gpm/internal/power"
	"gpm/internal/thermal"
	"gpm/internal/uarch"
	"gpm/internal/workload"
)

// coreStride separates per-core address spaces in the shared L2.
const coreStride uint64 = 1 << 40

// DefaultWindowCycles is the default synchronization-window length in global
// (nominal) cycles. Within a window cores step independently against frozen
// shared-L2 state (see cache.L2Window), so — unlike the old serial 20-cycle
// quantum — the window does not have to stay below the L2 service time; it
// only bounds how stale one core's view of the others' L2 traffic can be.
// 200 cycles is well under the per-delta management timescale (50k cycles)
// while keeping the per-window synchronization cost amortized.
const DefaultWindowCycles uint64 = 200

// Options tunes the simulation machinery without affecting results other
// than through WindowCycles (Workers never changes results).
type Options struct {
	// Workers is the number of goroutines stepping cores inside Advance.
	// 0 means GOMAXPROCS; 1 forces serial stepping. Results are bit-identical
	// for every value: the two-phase shared-L2 scheme resolves all cross-core
	// interaction in a canonical order.
	Workers int
	// WindowCycles is the synchronization-window length in global cycles
	// (0 = DefaultWindowCycles). Smaller windows tighten contention-visibility
	// latency; larger windows cut synchronization overhead.
	WindowCycles uint64
}

// Chip is a multi-core cycle-level simulation.
type Chip struct {
	cfg   config.Config
	model power.Model
	plan  modes.Plan

	l2         *cache.SharedL2
	cores      []*uarch.Core
	gens       []*workload.Generator
	hiers      []*cache.Hierarchy
	wins       []*cache.L2Window
	fscales    []float64
	invFscales []float64
	vector     modes.Vector
	benchmarks []string

	workers int
	window  uint64

	// globalNow is the frontier of simulated global time (nominal cycles).
	globalNow uint64
	// alive[i] is false once core i's stream ends (synthetic streams don't).
	// During a window, alive[i] is owned by the worker stepping core i.
	alive []bool

	// winScratch collects the windows begun in the current synchronization
	// window for Commit; mStarts/mActs are Measure's per-interval scratch.
	winScratch []*cache.L2Window
	mStarts    []uint64
	mActs      []power.Activity
}

// New builds a chip running the named benchmarks (one per core) at phase
// `phase` of each, starting with all cores in mode vector v (nil = all
// Turbo), with default Options.
func New(cfg config.Config, model power.Model, plan modes.Plan, benchmarks []string, phase int, v modes.Vector) (*Chip, error) {
	return NewWithOptions(cfg, model, plan, benchmarks, phase, v, Options{})
}

// NewWithOptions is New with explicit simulation-machinery options.
func NewWithOptions(cfg config.Config, model power.Model, plan modes.Plan, benchmarks []string, phase int, v modes.Vector, opt Options) (*Chip, error) {
	n := len(benchmarks)
	if n == 0 {
		return nil, fmt.Errorf("fullsim: no benchmarks")
	}
	if opt.Workers < 0 {
		return nil, &engine.OptionError{Component: "fullsim", Field: "Workers", Value: opt.Workers,
			Reason: "must be non-negative (0 = GOMAXPROCS)"}
	}
	if v == nil {
		v = modes.Uniform(n, modes.Turbo)
	}
	if len(v) != n {
		return nil, fmt.Errorf("fullsim: %d modes for %d cores", len(v), n)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	window := opt.WindowCycles
	if window == 0 {
		window = DefaultWindowCycles
	}
	ch := &Chip{
		cfg:        cfg,
		model:      model,
		plan:       plan,
		l2:         cache.NewSharedL2(cfg.Mem.L2, cfg.Mem.L2Banks, cfg.Mem.L2BusCyclesPerAccess),
		fscales:    make([]float64, n),
		invFscales: make([]float64, n),
		vector:     v.Clone(),
		alive:      make([]bool, n),
		benchmarks: append([]string(nil), benchmarks...),
		workers:    workers,
		window:     window,
		winScratch: make([]*cache.L2Window, 0, n),
		mStarts:    make([]uint64, n),
		mActs:      make([]power.Activity, n),
	}
	for i, name := range benchmarks {
		spec, err := workload.Lookup(name)
		if err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(spec, phase, cfg.Sim.Seed+int64(i)*7919)
		gen.Relocate(uint64(i+1) * coreStride)
		hier := cache.NewHierarchy(cfg.Mem, ch.l2)
		pred := bpred.New(cfg.Core.BimodalEntries, cfg.Core.GshareEntries, cfg.Core.SelectorEntries, cfg.Core.GshareHistory)
		c := uarch.New(cfg, gen, hier, pred)
		f := plan.FreqScale(v[i])
		c.SetFreqScale(f)
		ch.fscales[i] = f
		ch.invFscales[i] = 1 / f
		idx := i
		c.GlobalCycle = func(local uint64) uint64 {
			// Multiply by the precomputed reciprocal: this runs on every
			// timed L2 access and fetch-block change.
			return uint64(float64(local) * ch.invFscales[idx])
		}
		ch.cores = append(ch.cores, c)
		ch.gens = append(ch.gens, gen)
		ch.hiers = append(ch.hiers, hier)
		ch.wins = append(ch.wins, ch.l2.NewWindow(i))
		ch.alive[i] = true
	}
	return ch, nil
}

// NumCores returns the chip width.
func (ch *Chip) NumCores() int { return len(ch.cores) }

// Vector returns the current mode vector.
func (ch *Chip) Vector() modes.Vector { return ch.vector.Clone() }

// SetVector switches cores to the modes in v (applied instantaneously; the
// caller accounts transition stalls).
func (ch *Chip) SetVector(v modes.Vector) {
	for i := range ch.cores {
		if v[i] != ch.vector[i] {
			f := ch.plan.FreqScale(v[i])
			ch.cores[i].SetFreqScale(f)
			ch.fscales[i] = f
			ch.invFscales[i] = 1 / f
		}
	}
	ch.vector = v.Clone()
}

// Warm pre-touches each core's data regions and runs a short instruction
// warmup, then clears all statistics.
func (ch *Chip) Warm(instr uint64) {
	block := ch.cfg.Mem.L1D.BlockSize
	iblock := ch.cfg.Mem.L1I.BlockSize
	for i, g := range ch.gens {
		code, hot, cold := g.Bases()
		spec := g.SpecOf()
		for off := 0; off < spec.HotSetBytes; off += block {
			ch.hiers[i].DataAccess(hot + uint64(off))
		}
		for off := 0; off < spec.ColdSetBytes; off += block {
			ch.hiers[i].DataAccess(cold + uint64(off))
		}
		for off := 0; off < spec.CodeFootprint; off += iblock {
			ch.hiers[i].InstrFetch(code + uint64(off))
		}
	}
	ch.Advance(instrGlobalGuess(instr))
	for i := range ch.cores {
		ch.cores[i].ResetCounters()
	}
	ch.l2.ResetStats()
}

// instrGlobalGuess converts an instruction warmup budget to a generous
// global-cycle allotment (IPC can sink well below 0.05 for memory-bound
// corners).
func instrGlobalGuess(instr uint64) uint64 { return instr * 32 }

// Advance runs all cores until global time advances by `globalCycles`,
// synchronizing at window boundaries. Within a window, cores step
// independently — concurrently when Workers > 1 — against shared-L2 state
// frozen at the window start; their deferred L2 traffic is then merged in a
// canonical order (see cache.SharedL2.Commit), so results are bit-identical
// for any worker count.
func (ch *Chip) Advance(globalCycles uint64) {
	target := ch.globalNow + globalCycles
	if ch.globalNow >= target {
		return
	}
	for i := range ch.hiers {
		ch.hiers[i].SetWindow(ch.wins[i])
	}
	for ch.globalNow < target {
		step := ch.globalNow + ch.window
		if step > target {
			step = target
		}
		ch.runWindow(step)
		ch.globalNow = step
	}
	for i := range ch.hiers {
		ch.hiers[i].SetWindow(nil)
	}
}

// localTarget converts a global window boundary to core i's local-cycle
// target.
func (ch *Chip) localTarget(i int, step uint64) uint64 {
	return uint64(math.Ceil(float64(step) * ch.fscales[i]))
}

// runWindow executes one synchronization window ending at global cycle step.
func (ch *Chip) runWindow(step uint64) {
	ch.winScratch = ch.winScratch[:0]
	for i := range ch.cores {
		if ch.alive[i] {
			ch.wins[i].Begin()
			ch.winScratch = append(ch.winScratch, ch.wins[i])
		}
	}
	live := len(ch.winScratch)
	if live == 0 {
		return
	}
	if w := min(ch.workers, live); w > 1 {
		// Workers claim cores via an atomic cursor; each alive[i] is written
		// only by the worker that claimed core i, and the barrier below
		// publishes everything before the single-threaded commit.
		var cursor atomic.Int64
		work := func() {
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(ch.cores) {
					return
				}
				if !ch.alive[i] {
					continue
				}
				if !ch.cores[i].Run(ch.localTarget(i, step)) {
					ch.alive[i] = false
				}
			}
		}
		var wg sync.WaitGroup
		wg.Add(w - 1)
		for k := 0; k < w-1; k++ {
			go func() {
				defer wg.Done()
				work()
			}()
		}
		work()
		wg.Wait()
	} else {
		for i, c := range ch.cores {
			if !ch.alive[i] {
				continue
			}
			if !c.Run(ch.localTarget(i, step)) {
				ch.alive[i] = false
			}
		}
	}
	// Cores that died mid-window still committed their recorded traffic.
	ch.l2.Commit(ch.winScratch)
}

// Measure advances the chip by `globalCycles` of global time and returns the
// per-core activities for that window (local cycles measured per core). The
// returned slice is scratch reused by the next Measure call; callers that
// need the activities past that point must copy them.
func (ch *Chip) Measure(globalCycles uint64) []power.Activity {
	for i, c := range ch.cores {
		c.ResetCounters()
		ch.mStarts[i] = c.Frontier()
	}
	ch.Advance(globalCycles)
	for i, c := range ch.cores {
		ctr := c.Counters()
		elapsed := c.Frontier() - ch.mStarts[i]
		if elapsed == 0 {
			elapsed = 1
		}
		// Commit the measured local-cycle window into the counters so the
		// activity normalization matches the window length.
		ch.mActs[i] = activityWithCycles(c, ctr, elapsed)
	}
	return ch.mActs
}

// activityWithCycles recomputes the activity for a specific window length.
func activityWithCycles(c *uarch.Core, ctr uarch.Counters, cycles uint64) power.Activity {
	c.SetCounterCycles(cycles)
	return c.Activity()
}

// CorePowerW converts a measured activity into watts for core i's current
// mode.
func (ch *Chip) CorePowerW(i int, a power.Activity) float64 {
	return ch.model.CorePower(a, ch.plan, ch.vector[i])
}

// L2 exposes the shared L2 for contention statistics.
func (ch *Chip) L2() *cache.SharedL2 { return ch.l2 }

// Park permanently idles core i: it stops advancing and consumes no further
// simulated time. The engine parks cores the fault injector declares dead so
// the simulated physics match what the (guarded) manager believes.
func (ch *Chip) Park(i int) { ch.alive[i] = false }

// substrate adapts the cycle-level chip to the engine's Substrate interface.
// Unlike the trace players it cannot peek at alternate futures, so
// ModePowerW estimates a mode's power by rescaling the core's last measured
// draw with the analytical DVFS scale law — exactly the §5.5 prediction the
// manager itself uses.
type substrate struct {
	ch     *Chip
	freqHz float64
	// exploreGlobal is the bootstrap probe length in global cycles.
	exploreGlobal uint64
	// lastP[c] is core c's last measured power, at the mode it was measured
	// in; parked[c] marks cores the engine declared dead (as opposed to
	// cores whose instruction stream ended, which §5.1 treats as completed).
	lastP  []float64
	parked []bool
}

func newSubstrate(ch *Chip) *substrate {
	return &substrate{
		ch:            ch,
		freqHz:        ch.cfg.Chip.NominalFreqHz,
		exploreGlobal: uint64(ch.cfg.Sim.Explore.Seconds() * ch.cfg.Chip.NominalFreqHz),
		lastP:         make([]float64, ch.NumCores()),
		parked:        make([]bool, ch.NumCores()),
	}
}

func (s *substrate) NumCores() int { return s.ch.NumCores() }

func (s *substrate) Bootstrap() []core.Sample {
	acts := s.ch.Measure(s.exploreGlobal)
	out := make([]core.Sample, len(acts))
	for i, a := range acts {
		p := s.ch.CorePowerW(i, a)
		s.lastP[i] = p
		out[i] = core.Sample{PowerW: p, Instr: float64(a.Committed)}
	}
	return out
}

func (s *substrate) ModePowerW(c int, m modes.Mode) float64 {
	cur := s.ch.vector[c]
	if m == cur {
		return s.lastP[c]
	}
	ref := s.ch.model.ScaleLaw(s.ch.plan, cur)
	if ref <= 0 {
		return s.lastP[c]
	}
	return s.lastP[c] * s.ch.model.ScaleLaw(s.ch.plan, m) / ref
}

func (s *substrate) DeltaStep(v modes.Vector, execSec float64, live []bool, energyJ, instr []float64) {
	s.ch.SetVector(v)
	for c := range live {
		if !live[c] && !s.parked[c] && s.ch.alive[c] {
			s.ch.Park(c)
			s.parked[c] = true
		}
	}
	// Rounding global cycles per delta (rather than per explore interval)
	// accumulates a sub-cycle truncation per delta; see EXPERIMENTS.md.
	acts := s.ch.Measure(uint64(math.Round(execSec * s.freqHz)))
	for c, a := range acts {
		if !live[c] {
			continue
		}
		p := s.ch.CorePowerW(c, a)
		s.lastP[c] = p
		energyJ[c] = p * execSec
		instr[c] = float64(a.Committed)
	}
}

func (s *substrate) Finished(c int) bool { return !s.ch.alive[c] && !s.parked[c] }

// Lookahead returns nil: the cycle-level chip cannot probe alternate futures.
func (s *substrate) Lookahead() func(c int, m modes.Mode) (float64, float64) { return nil }

func (s *substrate) MemBound() []float64 { return nil }

// ManagedOptions configures a managed cycle-level run. Policy and Intervals
// are required; exactly one of Budget and BudgetW must be set.
type ManagedOptions struct {
	// Policy decides mode vectors at explore boundaries.
	Policy core.Policy
	// Budget is the chip power budget at simulated time t; when nil, the
	// constant BudgetW is used.
	Budget  func(t time.Duration) float64
	BudgetW float64
	// Intervals is the number of explore intervals to simulate.
	Intervals int
	// Thermal, Fault and Guard mirror cmpsim.Options: thermal governor in
	// the clamp stage, deterministic fault injection on the observation
	// path, and the resilient manager in place of the plain one.
	Thermal *thermal.Governor
	Fault   *fault.Scenario
	Guard   *core.GuardConfig
	// History mirrors cmpsim.Options.History: wrap the run's predictor in a
	// history-table phase predictor. Incompatible with Replay.
	History *core.HistoryConfig
	// Supervisor mirrors cmpsim.Options.Supervisor: arms the engine's
	// decision supervisor (deadline-bounded solving, degradation ladder,
	// conformance gate). Incompatible with Replay.
	Supervisor *engine.SupervisorConfig
	// Observer mirrors cmpsim.Options.Observer: one structured decision
	// trace per explore interval (nil = zero overhead).
	Observer engine.Observer
	// Replay mirrors cmpsim.Options.Replay: re-drive the chip from a
	// recorded trace's vectors and budgets instead of a policy — including a
	// trace recorded on the *other* substrate, which is how a cmpsim-vs-
	// fullsim divergence is isolated to physics rather than decisions.
	// Policy becomes optional; Intervals is still required (the cycle-level
	// chip has no horizon of its own).
	Replay *obs.Trace
}

// Managed runs the chip under the engine's global-manager control loop —
// the same loop, middleware chain and accounting as cmpsim.Run — for
// opt.Intervals explore intervals. The chip is forced to all-Turbo for the
// bootstrap probe; transition stalls are charged at the §5.1 worst-case
// endpoint power over the stall window, with execution advancing only
// through the remainder of each delta interval.
func (ch *Chip) Managed(opt ManagedOptions) (*engine.Result, error) {
	replaying := opt.Replay != nil
	if opt.Policy == nil && !replaying {
		return nil, &engine.OptionError{Component: "fullsim", Field: "Policy", Value: nil, Reason: "required"}
	}
	if opt.Intervals <= 0 {
		return nil, &engine.OptionError{Component: "fullsim", Field: "Intervals", Value: opt.Intervals, Reason: "must be positive"}
	}
	if opt.Guard != nil {
		if err := opt.Guard.Validate(); err != nil {
			return nil, &engine.OptionError{Component: "fullsim", Field: "Guard", Value: "", Reason: err.Error()}
		}
	}
	if replaying && opt.Supervisor != nil {
		return nil, &engine.OptionError{Component: "fullsim", Field: "Supervisor", Value: "non-nil",
			Reason: "incompatible with Replay: recorded vectors must actuate verbatim"}
	}
	if opt.History != nil {
		if replaying {
			return nil, &engine.OptionError{Component: "fullsim", Field: "History", Value: "non-nil",
				Reason: "incompatible with Replay: recorded vectors must actuate verbatim"}
		}
		if err := opt.History.Validate(); err != nil {
			return nil, &engine.OptionError{Component: "fullsim", Field: "History", Value: "", Reason: err.Error()}
		}
	}
	budget := opt.Budget
	if budget == nil {
		w := opt.BudgetW
		budget = func(time.Duration) float64 { return w }
	}
	n := ch.NumCores()
	var inj *fault.Injector
	if opt.Fault != nil && opt.Fault.Enabled() {
		var err error
		inj, err = fault.NewInjector(*opt.Fault, n)
		if err != nil {
			return nil, err
		}
	}
	pred := core.Predictor{
		Plan:              ch.plan,
		PowerScale:        func(m modes.Mode) float64 { return ch.model.ScaleLaw(ch.plan, m) },
		ExploreSeconds:    ch.cfg.Sim.Explore.Seconds(),
		DerateTransitions: true,
	}
	ch.SetVector(modes.Uniform(n, modes.Turbo))
	eopt := engine.Options{
		Plan:             ch.plan,
		Budget:           budget,
		DeltaSim:         ch.cfg.Sim.DeltaSim,
		DeltasPerExplore: ch.cfg.DeltaPerExplore(),
		Explore:          ch.cfg.Sim.Explore,
		Horizon:          ch.cfg.Sim.Explore * time.Duration(opt.Intervals),
		Thermal:          opt.Thermal,
		Injector:         inj,
		Observer:         opt.Observer,
		ErrPrefix:        "fullsim",
		Combo:            workload.Combo{ID: "fullsim", Benchmarks: ch.benchmarks},
	}
	if replaying {
		dec, err := obs.NewReplayDecider(opt.Replay, ch.cfg.Sim.Explore)
		if err != nil {
			return nil, err
		}
		eopt.Decider = dec
		eopt.Stages = []engine.Stage{obs.NewReplayBudget(opt.Replay)}
		eopt.PolicyName = opt.Replay.PolicyName()
	} else {
		if opt.History != nil {
			eopt.Decider = engine.NewDeciderWith(ch.plan, opt.Policy, core.NewHistoryPredictor(pred, *opt.History), n, opt.Guard)
		} else {
			eopt.Decider = engine.NewDecider(ch.plan, opt.Policy, pred, n, opt.Guard)
		}
		eopt.PolicyName = opt.Policy.Name()
		if opt.Supervisor != nil {
			sup := *opt.Supervisor
			if sup.Predictor.Plan.NumModes() == 0 {
				sup.Predictor = pred
			}
			eopt.Supervisor = &sup
		}
	}
	return engine.Run(newSubstrate(ch), eopt)
}

// RunManaged runs the chip under a global power manager for `intervals`
// explore intervals at a constant budget — a thin adapter over Managed for
// the common unfaulted case. The Result's ChipPowerW series is at delta-sim
// resolution; use Result.ExploreChipPowerW(cfg.DeltaPerExplore()) for
// per-explore-interval averages.
func (ch *Chip) RunManaged(policy core.Policy, budgetW float64, intervals int) (*engine.Result, error) {
	return ch.Managed(ManagedOptions{Policy: policy, BudgetW: budgetW, Intervals: intervals})
}
