// Package fullsim is the cycle-level full-CMP simulator used to validate the
// trace-based analysis tool, mirroring §3.1's cross-check against a
// "cycle-accurate full-CMP implementation of Turandot" in the style of Li et
// al.: multiple uarch cores over one shared, banked L2 with bus contention,
// time-driven synchronization across per-core clock domains, and optional
// per-core DVFS under a global management policy.
//
// Cores may run at different frequency scales; simulation advances on a
// global time base measured in nominal-frequency cycles. A core at frequency
// scale f that has executed c local cycles sits at global time c/f.
package fullsim

import (
	"fmt"
	"math"

	"gpm/internal/bpred"
	"gpm/internal/cache"
	"gpm/internal/config"
	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/power"
	"gpm/internal/uarch"
	"gpm/internal/workload"
)

// coreStride separates per-core address spaces in the shared L2.
const coreStride uint64 = 1 << 40

// quantum is the round-robin interleaving step in global (nominal) cycles.
// It must stay small relative to the L2 service time: cores run their quanta
// serially, so another core's bus reservations can sit up to one quantum in
// a core's local future, and a large quantum would turn that skew into
// spurious queueing delay.
const quantum uint64 = 20

// Chip is a multi-core cycle-level simulation.
type Chip struct {
	cfg   config.Config
	model power.Model
	plan  modes.Plan

	l2      *cache.SharedL2
	cores   []*uarch.Core
	gens    []*workload.Generator
	hiers   []*cache.Hierarchy
	fscales []float64
	vector  modes.Vector

	// globalNow is the frontier of simulated global time (nominal cycles).
	globalNow uint64
	// alive[i] is false once core i's stream ends (synthetic streams don't).
	alive []bool
}

// New builds a chip running the named benchmarks (one per core) at phase
// `phase` of each, starting with all cores in mode vector v (nil = all
// Turbo).
func New(cfg config.Config, model power.Model, plan modes.Plan, benchmarks []string, phase int, v modes.Vector) (*Chip, error) {
	n := len(benchmarks)
	if n == 0 {
		return nil, fmt.Errorf("fullsim: no benchmarks")
	}
	if v == nil {
		v = modes.Uniform(n, modes.Turbo)
	}
	if len(v) != n {
		return nil, fmt.Errorf("fullsim: %d modes for %d cores", len(v), n)
	}
	ch := &Chip{
		cfg:     cfg,
		model:   model,
		plan:    plan,
		l2:      cache.NewSharedL2(cfg.Mem.L2, cfg.Mem.L2Banks, cfg.Mem.L2BusCyclesPerAccess),
		fscales: make([]float64, n),
		vector:  v.Clone(),
		alive:   make([]bool, n),
	}
	for i, name := range benchmarks {
		spec, err := workload.Lookup(name)
		if err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(spec, phase, cfg.Sim.Seed+int64(i)*7919)
		gen.Relocate(uint64(i+1) * coreStride)
		hier := cache.NewHierarchy(cfg.Mem, ch.l2)
		pred := bpred.New(cfg.Core.BimodalEntries, cfg.Core.GshareEntries, cfg.Core.SelectorEntries, cfg.Core.GshareHistory)
		c := uarch.New(cfg, gen, hier, pred)
		f := plan.FreqScale(v[i])
		c.SetFreqScale(f)
		ch.fscales[i] = f
		idx := i
		c.GlobalCycle = func(local uint64) uint64 {
			return uint64(float64(local) / ch.fscales[idx])
		}
		ch.cores = append(ch.cores, c)
		ch.gens = append(ch.gens, gen)
		ch.hiers = append(ch.hiers, hier)
		ch.alive[i] = true
	}
	return ch, nil
}

// NumCores returns the chip width.
func (ch *Chip) NumCores() int { return len(ch.cores) }

// Vector returns the current mode vector.
func (ch *Chip) Vector() modes.Vector { return ch.vector.Clone() }

// SetVector switches cores to the modes in v (applied instantaneously; the
// caller accounts transition stalls).
func (ch *Chip) SetVector(v modes.Vector) {
	for i := range ch.cores {
		if v[i] != ch.vector[i] {
			f := ch.plan.FreqScale(v[i])
			ch.cores[i].SetFreqScale(f)
			ch.fscales[i] = f
		}
	}
	ch.vector = v.Clone()
}

// Warm pre-touches each core's data regions and runs a short instruction
// warmup, then clears all statistics.
func (ch *Chip) Warm(instr uint64) {
	block := ch.cfg.Mem.L1D.BlockSize
	iblock := ch.cfg.Mem.L1I.BlockSize
	for i, g := range ch.gens {
		code, hot, cold := g.Bases()
		spec := g.SpecOf()
		for off := 0; off < spec.HotSetBytes; off += block {
			ch.hiers[i].DataAccess(hot + uint64(off))
		}
		for off := 0; off < spec.ColdSetBytes; off += block {
			ch.hiers[i].DataAccess(cold + uint64(off))
		}
		for off := 0; off < spec.CodeFootprint; off += iblock {
			ch.hiers[i].InstrFetch(code + uint64(off))
		}
	}
	ch.Advance(instrGlobalGuess(instr))
	for i := range ch.cores {
		ch.cores[i].ResetCounters()
	}
	ch.l2.ResetStats()
}

// instrGlobalGuess converts an instruction warmup budget to a generous
// global-cycle allotment (IPC can sink well below 0.05 for memory-bound
// corners).
func instrGlobalGuess(instr uint64) uint64 { return instr * 32 }

// Advance runs all cores, interleaved in fixed quanta, until global time
// advances by `globalCycles`.
func (ch *Chip) Advance(globalCycles uint64) {
	target := ch.globalNow + globalCycles
	for ch.globalNow < target {
		step := ch.globalNow + quantum
		if step > target {
			step = target
		}
		for i, c := range ch.cores {
			if !ch.alive[i] {
				continue
			}
			localTarget := uint64(math.Ceil(float64(step) * ch.fscales[i]))
			if !c.Run(localTarget) {
				ch.alive[i] = false
			}
		}
		ch.globalNow = step
	}
}

// Measure advances the chip by `globalCycles` of global time and returns the
// per-core activities for that window (local cycles measured per core).
func (ch *Chip) Measure(globalCycles uint64) []power.Activity {
	starts := make([]uint64, len(ch.cores))
	for i, c := range ch.cores {
		c.ResetCounters()
		starts[i] = c.Frontier()
	}
	ch.Advance(globalCycles)
	out := make([]power.Activity, len(ch.cores))
	for i, c := range ch.cores {
		ctr := c.Counters()
		elapsed := c.Frontier() - starts[i]
		if elapsed == 0 {
			elapsed = 1
		}
		// Commit the measured local-cycle window into the counters so the
		// activity normalization matches the window length.
		a := activityWithCycles(c, ctr, elapsed)
		out[i] = a
	}
	return out
}

// activityWithCycles recomputes the activity for a specific window length.
func activityWithCycles(c *uarch.Core, ctr uarch.Counters, cycles uint64) power.Activity {
	c.SetCounterCycles(cycles)
	return c.Activity()
}

// CorePowerW converts a measured activity into watts for core i's current
// mode.
func (ch *Chip) CorePowerW(i int, a power.Activity) float64 {
	return ch.model.CorePower(a, ch.plan, ch.vector[i])
}

// L2 exposes the shared L2 for contention statistics.
func (ch *Chip) L2() *cache.SharedL2 { return ch.l2 }

// ManagedResult summarizes a RunManaged execution.
type ManagedResult struct {
	// ChipPowerW[k] is average chip power over explore interval k.
	ChipPowerW []float64
	// Modes[k] is the vector in force during interval k.
	Modes []modes.Vector
	// TotalInstr is aggregate committed instructions.
	TotalInstr float64
	// PerCoreInstr splits TotalInstr.
	PerCoreInstr []float64
}

// RunManaged runs the chip under a global power manager for `intervals`
// explore intervals with the given budget, switching per-core DVFS between
// intervals (transition stalls are charged as lost global time at the start
// of each interval, all cores synchronized, §5.1).
func (ch *Chip) RunManaged(policy core.Policy, budgetW float64, intervals int) *ManagedResult {
	n := ch.NumCores()
	pred := core.Predictor{
		Plan:              ch.plan,
		PowerScale:        func(m modes.Mode) float64 { return ch.model.ScaleLaw(ch.plan, m) },
		ExploreSeconds:    ch.cfg.Sim.Explore.Seconds(),
		DerateTransitions: true,
	}
	mgr := core.NewManager(ch.plan, policy, pred, n)
	exploreGlobal := uint64(ch.cfg.Sim.Explore.Seconds() * ch.cfg.Chip.NominalFreqHz)

	res := &ManagedResult{PerCoreInstr: make([]float64, n)}

	// Bootstrap sample from a Turbo probe interval.
	acts := ch.Measure(exploreGlobal)
	samples := make([]core.Sample, n)
	for i, a := range acts {
		samples[i] = core.Sample{PowerW: ch.CorePowerW(i, a), Instr: float64(a.Committed)}
	}

	for k := 0; k < intervals; k++ {
		next := mgr.Step(budgetW, samples, nil, nil)
		stall := ch.plan.MaxTransitionBetween(ch.vector, next)
		ch.SetVector(next)
		res.Modes = append(res.Modes, next.Clone())

		// Execution window shrinks by the synchronized stall; stall power is
		// charged at the new mode's level via the measured activity below
		// (conservative: activity-based power over the shortened window).
		stallGlobal := uint64(stall.Seconds() * ch.cfg.Chip.NominalFreqHz)
		execGlobal := exploreGlobal
		if stallGlobal < execGlobal {
			execGlobal -= stallGlobal
		} else {
			execGlobal = 0
		}
		var chipP float64
		acts = ch.Measure(execGlobal)
		for i, a := range acts {
			p := ch.CorePowerW(i, a)
			chipP += p
			res.PerCoreInstr[i] += float64(a.Committed)
			res.TotalInstr += float64(a.Committed)
			samples[i] = core.Sample{PowerW: p, Instr: float64(a.Committed)}
		}
		res.ChipPowerW = append(res.ChipPowerW, chipP)
	}
	return res
}
