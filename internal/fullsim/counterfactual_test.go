package fullsim

import (
	"testing"

	"gpm/internal/calib"
	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/obs"
)

// TestCounterfactualSelfIdentity pins calib.Replay's identity contract on the
// cycle-level substrate: re-driving a managed run's recorded telemetry
// through the same policy/guard must reproduce every recorded decision with
// exactly zero regret — plain, faulted and guarded alike.
func TestCounterfactualSelfIdentity(t *testing.T) {
	cases := []struct {
		name string
		opt  func() ManagedOptions
	}{
		{"maxbips-38W", func() ManagedOptions {
			return ManagedOptions{Policy: core.MaxBIPS{}, BudgetW: 38, Intervals: 10}
		}},
		{"priority-30W", func() ManagedOptions {
			return ManagedOptions{Policy: core.Priority{}, BudgetW: 30, Intervals: 10}
		}},
		{"maxbips-noise-guarded", func() ManagedOptions {
			return ManagedOptions{
				Policy:    core.MaxBIPS{},
				BudgetW:   34,
				Intervals: 10,
				Fault:     &fault.Scenario{Seed: 7, PowerNoiseSigma: 0.08, InstrNoiseSigma: 0.03, DropProb: 0.05},
				Guard:     &core.GuardConfig{},
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch := setup(t, []string{"ammp", "mcf", "crafty", "art"}, nil)
			ch.Warm(5000)
			opt := tc.opt()
			col := obs.NewCollector(nil)
			opt.Observer = col
			if _, err := ch.Managed(opt); err != nil {
				t.Fatal(err)
			}
			pred := core.Predictor{
				Plan:              ch.plan,
				PowerScale:        func(m modes.Mode) float64 { return ch.model.ScaleLaw(ch.plan, m) },
				ExploreSeconds:    ch.cfg.Sim.Explore.Seconds(),
				DerateTransitions: true,
			}
			rr, err := calib.Replay(col.Trace(), calib.ReplayOptions{
				Plan:      ch.plan,
				Predictor: pred,
				Policy:    opt.Policy,
				Guard:     opt.Guard,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rr.Intervals) != len(col.Trace().Records)-1 {
				t.Fatalf("replayed %d intervals, trace has %d records (want records-1)", len(rr.Intervals), len(col.Trace().Records))
			}
			for _, ir := range rr.Intervals {
				if !ir.Matched || ir.VsRecorded != 0 {
					t.Fatalf("interval %d: self-replay diverged (matched=%v regret=%v)", ir.Interval, ir.Matched, ir.VsRecorded)
				}
			}
			if rr.CumVsRecorded != 0 {
				t.Fatalf("cumulative self-regret %v, want exactly 0", rr.CumVsRecorded)
			}
		})
	}
}

// TestManagedHistoryPredictor exercises the opt-in phase predictor on the
// cycle-level chip: the run must complete, decide every interval, and reject
// the invalid configs the option contract promises to.
func TestManagedHistoryPredictor(t *testing.T) {
	ch := setup(t, []string{"ammp", "mcf", "crafty", "art"}, nil)
	ch.Warm(5000)
	res, err := ch.Managed(ManagedOptions{
		Policy:    core.MaxBIPS{},
		BudgetW:   34,
		Intervals: 10,
		History:   &core.HistoryConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInstr <= 0 {
		t.Error("no instructions committed under the history predictor")
	}
	if _, err := ch.Managed(ManagedOptions{
		Policy:    core.MaxBIPS{},
		BudgetW:   34,
		Intervals: 10,
		History:   &core.HistoryConfig{Depth: 99},
	}); err == nil {
		t.Error("invalid history config accepted")
	}
}
