package uarch

import (
	"testing"

	"gpm/internal/bpred"
	"gpm/internal/cache"
	"gpm/internal/config"
	"gpm/internal/isa"
	"gpm/internal/workload"
)

// scriptStream replays a fixed instruction slice.
type scriptStream struct {
	ins []isa.Instruction
	i   int
}

func (s *scriptStream) Next() (isa.Instruction, bool) {
	if s.i >= len(s.ins) {
		return isa.Instruction{}, false
	}
	in := s.ins[s.i]
	in.Seq = uint64(s.i)
	s.i++
	return in, true
}

func newCore(t testing.TB, str isa.Stream) *Core {
	t.Helper()
	return newCoreFrom(t, config.Default(1), str)
}

// newCoreFrom builds a core with an explicit configuration and fresh private
// caches and predictor.
func newCoreFrom(t testing.TB, cfg config.Config, str isa.Stream) *Core {
	t.Helper()
	l2 := cache.NewSharedL2(cfg.Mem.L2, cfg.Mem.L2Banks, cfg.Mem.L2BusCyclesPerAccess)
	hier := cache.NewHierarchy(cfg.Mem, l2)
	pred := bpred.New(cfg.Core.BimodalEntries, cfg.Core.GshareEntries, cfg.Core.SelectorEntries, cfg.Core.GshareHistory)
	return New(cfg, str, hier, pred)
}

// independent builds n independent FX instructions (invariant sources only).
func independent(n int) []isa.Instruction {
	ins := make([]isa.Instruction, n)
	for i := range ins {
		ins[i] = isa.Instruction{
			PC:   0x1000_0000 + uint64(i%16)*4,
			Op:   isa.OpFX,
			Dest: isa.Reg(i % 16),
			Src1: 30, // never written: always ready
			Src2: isa.NoReg,
		}
	}
	return ins
}

func TestIndependentFXThroughputBoundedByFXUs(t *testing.T) {
	c := newCore(t, &scriptStream{ins: independent(20000)})
	if !c.RunInstructions(20000) {
		t.Fatal("stream ended early")
	}
	c.ctr.Cycles = c.Frontier()
	ipc := c.IPC()
	// Two FXUs bound sustained FX throughput at 2/cycle.
	if ipc > 2.05 {
		t.Errorf("FX IPC %.2f exceeds the 2-FXU bound", ipc)
	}
	if ipc < 1.5 {
		t.Errorf("independent FX stream IPC %.2f too low (structural over-stall)", ipc)
	}
}

func TestSerialChainBoundedByLatency(t *testing.T) {
	// Each instruction reads the previous one's destination: IPC ≤ 1.
	n := 20000
	ins := make([]isa.Instruction, n)
	for i := range ins {
		ins[i] = isa.Instruction{
			PC:   0x1000_0000 + uint64(i%16)*4,
			Op:   isa.OpFX,
			Dest: 1,
			Src1: 1,
			Src2: isa.NoReg,
		}
	}
	c := newCore(t, &scriptStream{ins: ins})
	c.RunInstructions(uint64(n))
	c.ctr.Cycles = c.Frontier()
	if ipc := c.IPC(); ipc > 1.01 {
		t.Errorf("fully serial chain IPC %.2f exceeds 1.0", ipc)
	}
}

func TestMemoryLatencySensitivityToFrequency(t *testing.T) {
	// A pointer-chase-like stream: loads with serial dependences through the
	// cold region miss everywhere; at lower frequency the same program takes
	// fewer core cycles because memory latency shrinks in cycles.
	mk := func() isa.Stream {
		spec := workload.MustLookup("mcf")
		return workload.NewGenerator(spec, 0, 1)
	}
	run := func(f float64) (cycles uint64) {
		c := newCore(t, mk())
		c.SetFreqScale(f)
		c.Measure(5000, 30000)
		return c.Counters().Cycles
	}
	turbo := run(1.0)
	eff2 := run(0.85)
	if eff2 >= turbo {
		t.Errorf("memory-bound cycles did not shrink with frequency: %d -> %d", turbo, eff2)
	}
	// Wall time = cycles / f must not improve: Eff2 is never faster.
	if float64(eff2)/0.85 < float64(turbo)*0.98 {
		t.Errorf("Eff2 wall time implausibly better than Turbo")
	}
}

func TestCPUBoundInsensitiveToFrequency(t *testing.T) {
	run := func(f float64) (cycles uint64) {
		spec := workload.MustLookup("sixtrack")
		g := workload.NewGenerator(spec, 0, 1)
		c := newCore(t, g)
		c.SetFreqScale(f)
		c.Measure(5000, 30000)
		return c.Counters().Cycles
	}
	turbo := run(1.0)
	eff2 := run(0.85)
	// Few memory stalls ⇒ cycle count nearly mode-invariant.
	ratio := float64(eff2) / float64(turbo)
	if ratio < 0.90 || ratio > 1.05 {
		t.Errorf("CPU-bound cycle ratio %.3f, want ≈1", ratio)
	}
}

func TestMispredictPenaltyVisible(t *testing.T) {
	// Alternate random branches vs no branches; random branches must cost
	// cycles. PCs vary so the predictor cannot memorize.
	mkBranches := func(noise bool) []isa.Instruction {
		ins := make([]isa.Instruction, 30000)
		for i := range ins {
			if i%8 == 7 {
				taken := false
				if noise {
					taken = (i*2654435761)%97 < 48 // pseudo-random half
				}
				ins[i] = isa.Instruction{PC: 0x1000_0000 + uint64(i%4096)*4, Op: isa.OpBranch, Dest: isa.NoReg, Src1: 30, Src2: isa.NoReg, Taken: taken}
			} else {
				ins[i] = independent(1)[0]
				ins[i].PC = 0x1000_0000 + uint64(i%4096)*4
			}
		}
		return ins
	}
	run := func(noise bool) uint64 {
		c := newCore(t, &scriptStream{ins: mkBranches(noise)})
		c.RunInstructions(30000)
		return c.Frontier()
	}
	predictable := run(false)
	noisy := run(true)
	if noisy <= predictable {
		t.Errorf("random branches did not slow execution: %d vs %d cycles", noisy, predictable)
	}
}

func TestROBLimitsInFlight(t *testing.T) {
	// A long-latency load followed by many independent instructions: the
	// ROB (256) bounds how far the frontier can run ahead, so retire stalls
	// behind the load.
	cfg := config.Default(1)
	ins := []isa.Instruction{{
		PC: 0x1000_0000, Op: isa.OpLoad, Dest: 1, Src1: 30, Src2: isa.NoReg, Addr: 0x9000_0000,
	}}
	ins = append(ins, independent(1000)...)
	c := newCore(t, &scriptStream{ins: ins})
	c.RunInstructions(uint64(len(ins)))
	// The load misses everywhere: ~87 cycles. All 1000 fillers are
	// independent but must retire after it (in order): frontier >= load
	// latency + 1000/retireWidth.
	min := uint64(cfg.Mem.MemoryLatencyCycles) + uint64(1000/cfg.Core.RetireWidth)
	if c.Frontier() < min {
		t.Errorf("frontier %d below in-order retire bound %d", c.Frontier(), min)
	}
}

func TestActivityFactorsInRange(t *testing.T) {
	spec := workload.MustLookup("gcc")
	c := newCore(t, workload.NewGenerator(spec, 0, 2))
	act := c.Measure(5000, 30000)
	for name, v := range map[string]float64{
		"fetch": act.Fetch, "decode": act.Decode, "issue": act.Issue,
		"fxu": act.FXU, "fpu": act.FPU, "lsu": act.LSU, "bru": act.BRU,
		"regfile": act.RegFile, "l2": act.L2,
	} {
		if v < 0 || v > 1 {
			t.Errorf("activity %s = %v outside [0,1]", name, v)
		}
	}
	if act.Committed == 0 || act.Cycles == 0 {
		t.Error("no committed instructions or cycles recorded")
	}
	if act.IPC() <= 0 {
		t.Error("non-positive IPC")
	}
}

func TestSetFreqScalePanicsOutOfRange(t *testing.T) {
	c := newCore(t, &scriptStream{ins: independent(1)})
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetFreqScale(%v) should panic", f)
				}
			}()
			c.SetFreqScale(f)
		}()
	}
}

func TestStreamExhaustion(t *testing.T) {
	c := newCore(t, &scriptStream{ins: independent(100)})
	if c.RunInstructions(200) {
		t.Error("RunInstructions should report stream end")
	}
	if c.Counters().Committed != 100 {
		t.Errorf("committed %d, want 100", c.Counters().Committed)
	}
	if c.Run(c.Frontier() + 1000) {
		t.Error("Run past stream end should report false")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Counters {
		spec := workload.MustLookup("crafty")
		c := newCore(t, workload.NewGenerator(spec, 0, 7))
		c.Measure(5000, 30000)
		return c.Counters()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}
