// Package uarch is the Turandot substitute: a dependence-driven, cycle-level
// timing model of the Table 1 out-of-order core.
//
// The model processes the dynamic instruction stream in program order and
// computes, per instruction, the cycles at which it is fetched, dispatched,
// issued, completed and retired, subject to the structural resources of the
// Table 1 machine: fetch/dispatch/retire widths, instruction-queue and
// reservation-station capacity, reorder-buffer size, physical registers,
// functional-unit counts and latencies, the branch predictor, and the cache
// hierarchy. This O(instructions) formulation is standard for trace-driven
// processor models and preserves the quantities the power-management study
// depends on — IPC, memory-stall sensitivity to frequency, and per-unit
// activity — at a small fraction of the cost of a per-cycle structural
// simulator.
//
// DVFS enters through SetFreqScale: latencies of the asynchronous domains
// (shared L2, memory) are rescaled in core cycles, which is what makes
// memory-bound workloads nearly frequency-insensitive (Fig 2's mcf corner).
package uarch

import (
	"math"

	"gpm/internal/bpred"
	"gpm/internal/cache"
	"gpm/internal/config"
	"gpm/internal/isa"
	"gpm/internal/power"
)

// frontEndDepth is the number of pipeline stages between fetch and dispatch.
const frontEndDepth = 3

// ring is a fixed-size cycle ring used to model capacity constraints: entry
// i of a capacity-k resource is free once the (i-k)-th user released it.
// The cursor wraps by compare-and-reset rather than modulo: freeAt/push run
// ~11 times per simulated instruction, and a 64-bit divide per call is
// measurable at that rate.
type ring struct {
	buf []uint64
	pos int
}

func newRing(k int) *ring {
	if k < 1 {
		k = 1
	}
	return &ring{buf: make([]uint64, k)}
}

// freeAt returns the cycle at which a new slot is available, given the
// release cycles pushed so far.
func (r *ring) freeAt() uint64 { return r.buf[r.pos] }

// push records that the newly allocated slot is released at cycle c.
func (r *ring) push(c uint64) {
	r.buf[r.pos] = c
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
	}
}

// fuBank models one class of pipelined functional units (1/cycle throughput
// per instance).
type fuBank struct {
	nextFree []uint64
}

func newFUBank(n int) *fuBank { return &fuBank{nextFree: make([]uint64, n)} }

// issue reserves the earliest-available instance at or after cycle c and
// returns the actual issue cycle.
func (b *fuBank) issue(c uint64) uint64 {
	best := 0
	for i := 1; i < len(b.nextFree); i++ {
		if b.nextFree[i] < b.nextFree[best] {
			best = i
		}
	}
	if b.nextFree[best] > c {
		c = b.nextFree[best]
	}
	b.nextFree[best] = c + 1
	return c
}

// Counters accumulate raw event counts over a measurement window.
type Counters struct {
	Cycles      uint64
	Fetched     uint64
	Committed   uint64
	FXOps       uint64
	FPOps       uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	Mispredicts uint64

	L1IMisses  uint64
	L1DMisses  uint64
	L2Accesses uint64
	L2Misses   uint64

	RegReads  uint64
	RegWrites uint64

	// IQWaitSum accumulates (issue − dispatch) over instructions; divided by
	// (IQ size × cycles) it approximates issue-queue occupancy.
	IQWaitSum uint64

	// L2WaitCycles accumulates contention queueing delay charged by a shared
	// L2 (full-CMP simulation only).
	L2WaitCycles uint64

	// MSHRWait accumulates cycles misses spent waiting for a free
	// miss-status register.
	MSHRWait uint64
}

// Core is one simulated core.
type Core struct {
	cfg  config.Config
	str  isa.Stream
	pred *bpred.Predictor
	hier *cache.Hierarchy

	// GlobalCycle, when non-nil, converts a local core cycle into the global
	// time base used for shared-L2 contention (full-CMP simulation).
	GlobalCycle func(local uint64) uint64

	freqScale float64
	l2Lat     uint64
	memLat    uint64

	// pipeline frontier state
	nextFetch      uint64 // earliest cycle the next fetch group may start
	groupLeft      int    // fetch slots left in the current group
	groupLevel     cache.Level
	lastFetchBlock uint64

	regReady [isa.NumArchRegs]uint64

	rob     *ring // reorder-buffer slots, released at retire
	iq      *ring // issue-queue slots, released at issue
	memRS   *ring
	fixRS   *ring
	fpRS    *ring
	gprFree *ring // physical integer registers, released at retire
	fprFree *ring

	lsu *fuBank
	fxu *fuBank
	fpu *fuBank
	bru *fuBank

	// mshr bounds outstanding L1D misses: a new miss may not start until a
	// miss-status register frees.
	mshr *ring

	retire     *ring // retire-width gating
	lastRetire uint64
	frontier   uint64 // retire cycle of the most recent instruction

	ctr Counters
}

// New builds a core over the given stream, hierarchy and predictor, running
// at Turbo frequency until SetFreqScale is called.
func New(cfg config.Config, str isa.Stream, hier *cache.Hierarchy, pred *bpred.Predictor) *Core {
	c := &Core{
		cfg:  cfg,
		str:  str,
		pred: pred,
		hier: hier,

		rob:     newRing(cfg.Core.ReorderBuffer),
		iq:      newRing(cfg.Core.InstructionQueue),
		memRS:   newRing(cfg.Core.MemRS * cfg.Core.NumLSU),
		fixRS:   newRing(cfg.Core.FixRS * cfg.Core.NumFXU),
		fpRS:    newRing(cfg.Core.FPRS * cfg.Core.NumFPU),
		gprFree: newRing(maxInt(cfg.Core.GPR-32, 1)),
		fprFree: newRing(maxInt(cfg.Core.FPR-32, 1)),

		lsu:  newFUBank(cfg.Core.NumLSU),
		mshr: newRing(maxInt(cfg.Core.MSHRs, 1)),
		fxu:  newFUBank(cfg.Core.NumFXU),
		fpu:  newFUBank(cfg.Core.NumFPU),
		bru:  newFUBank(cfg.Core.NumBRU),

		retire: newRing(cfg.Core.RetireWidth),
	}
	c.SetFreqScale(1.0)
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SetFreqScale changes the core clock to scale f of nominal and rescales the
// asynchronous-domain latencies (L2, memory) in core cycles.
func (c *Core) SetFreqScale(f float64) {
	if f <= 0 || f > 1 {
		panic("uarch: frequency scale must be in (0,1]")
	}
	c.freqScale = f
	c.l2Lat = uint64(math.Max(1, math.Round(float64(c.cfg.Mem.L2.LatencyCycles)*f)))
	c.memLat = uint64(math.Max(1, math.Round(float64(c.cfg.Mem.MemoryLatencyCycles)*f)))
}

// FreqScale returns the current frequency scale.
func (c *Core) FreqScale() float64 { return c.freqScale }

// Frontier returns the local cycle through which execution has been
// simulated (the retire cycle of the most recent instruction).
func (c *Core) Frontier() uint64 { return c.frontier }

// Counters returns a copy of the accumulated counters.
func (c *Core) Counters() Counters { return c.ctr }

// ResetCounters zeroes the measurement counters (after warmup). Pipeline and
// cache/predictor state is preserved.
func (c *Core) ResetCounters() { c.ctr = Counters{} }

// SetCounterCycles fixes the counters' window length (local cycles), used by
// callers that measure windows in an external time base.
func (c *Core) SetCounterCycles(cycles uint64) { c.ctr.Cycles = cycles }

// dataLatency returns the load-to-use latency for a data access resolved at
// level lv, plus any contention wait already expressed in cycles.
func (c *Core) dataLatency(lv cache.Level) uint64 {
	switch lv {
	case cache.LevelL1:
		return uint64(c.cfg.Mem.L1D.LatencyCycles)
	case cache.LevelL2:
		return uint64(c.cfg.Mem.L1D.LatencyCycles) + c.l2Lat
	default:
		return uint64(c.cfg.Mem.L1D.LatencyCycles) + c.l2Lat + c.memLat
	}
}

func (c *Core) fetchPenalty(lv cache.Level) uint64 {
	switch lv {
	case cache.LevelL1:
		return 0
	case cache.LevelL2:
		return c.l2Lat
	default:
		return c.l2Lat + c.memLat
	}
}

// step processes one dynamic instruction through the timing model. It
// returns false if the stream is exhausted.
func (c *Core) step() bool {
	in, ok := c.str.Next()
	if !ok {
		return false
	}

	// --- Fetch ---
	if c.groupLeft == 0 {
		c.groupLeft = c.cfg.Core.FetchWidth
		blk := in.PC &^ uint64(c.cfg.Mem.L1I.BlockSize-1)
		lv := cache.LevelL1
		if blk != c.lastFetchBlock {
			if c.GlobalCycle != nil {
				// Timestamped fetch so window-deferred L2 fills merge in
				// canonical time order (full-CMP simulation).
				lv = c.hier.InstrFetchAt(in.PC, c.GlobalCycle(c.nextFetch))
			} else {
				lv = c.hier.InstrFetch(in.PC)
			}
			c.lastFetchBlock = blk
			if lv != cache.LevelL1 {
				c.ctr.L1IMisses++
				c.ctr.L2Accesses++
				if lv == cache.LevelMemory {
					c.ctr.L2Misses++
				}
			}
		}
		c.nextFetch += c.fetchPenalty(lv)
	}
	fetchCycle := c.nextFetch
	c.groupLeft--
	c.ctr.Fetched++

	// --- Dispatch: ROB, IQ, RS and physical-register gating ---
	dispatch := fetchCycle + frontEndDepth
	if fa := c.rob.freeAt(); fa > dispatch {
		dispatch = fa
	}
	if fa := c.iq.freeAt(); fa > dispatch {
		dispatch = fa
	}
	var rs *ring
	switch in.Op {
	case isa.OpLoad, isa.OpStore:
		rs = c.memRS
	case isa.OpFP:
		rs = c.fpRS
	default:
		rs = c.fixRS
	}
	if fa := rs.freeAt(); fa > dispatch {
		dispatch = fa
	}
	if in.HasDest() {
		reg := c.gprFree
		if in.Dest.IsFP() {
			reg = c.fprFree
		}
		if fa := reg.freeAt(); fa > dispatch {
			dispatch = fa
		}
	}

	// --- Source readiness ---
	srcReady := dispatch
	for _, s := range [2]isa.Reg{in.Src1, in.Src2} {
		if s == isa.NoReg {
			continue
		}
		c.ctr.RegReads++
		if r := c.regReady[s]; r > srcReady {
			srcReady = r
		}
	}

	// --- Issue & execute ---
	earliest := srcReady
	if d := dispatch + 1; d > earliest {
		earliest = d
	}
	var issue, done uint64
	switch in.Op {
	case isa.OpFX:
		issue = c.fxu.issue(earliest)
		done = issue + uint64(c.cfg.Core.FXULatency)
		c.ctr.FXOps++
	case isa.OpFP:
		issue = c.fpu.issue(earliest)
		done = issue + uint64(c.cfg.Core.FPULatency)
		c.ctr.FPOps++
	case isa.OpLoad, isa.OpStore:
		issue = c.lsu.issue(earliest)
		write := in.Op == isa.OpStore
		var lv cache.Level
		var wait uint64
		if c.GlobalCycle != nil {
			// Pre-check L1 to avoid charging contention for L1 hits.
			lv, wait = c.hier.DataAccessAtRW(in.Addr, c.GlobalCycle(issue), write)
			// Contention wait is in global cycles; convert back to local.
			wait = uint64(math.Round(float64(wait) * c.freqScale))
			c.ctr.L2WaitCycles += wait
		} else {
			lv = c.hier.DataAccessRW(in.Addr, write)
		}
		missDone := issue + c.dataLatency(lv) + wait
		if lv != cache.LevelL1 {
			c.ctr.L1DMisses++
			c.ctr.L2Accesses++
			if lv == cache.LevelMemory {
				c.ctr.L2Misses++
			}
			// MSHR gating: the miss cannot start until a miss-status
			// register frees, bounding memory-level parallelism.
			if fa := c.mshr.freeAt(); fa > issue {
				c.ctr.MSHRWait += fa - issue
				missDone += fa - issue
			}
			c.mshr.push(missDone)
		}
		if in.Op == isa.OpLoad {
			done = missDone
			c.ctr.Loads++
		} else {
			// Stores complete at issue from the dependence perspective; the
			// write drains in the background (the MSHR still tracks the
			// line fill on a store miss).
			done = issue + 1
			c.ctr.Stores++
		}
	case isa.OpBranch:
		issue = c.bru.issue(earliest)
		done = issue + uint64(c.cfg.Core.BRULatency)
		c.ctr.Branches++
	}
	c.ctr.IQWaitSum += issue - dispatch

	// --- Branch resolution & redirect ---
	if in.Op == isa.OpBranch {
		mis := c.pred.Update(in.PC, in.Taken)
		if mis {
			c.ctr.Mispredicts++
			redirect := done + uint64(c.cfg.Core.MispredictPenalty)
			if redirect > c.nextFetch {
				c.nextFetch = redirect
			}
			c.groupLeft = 0
		} else if in.Taken {
			// Correctly predicted taken branch: one redirect bubble.
			if fetchCycle+1 > c.nextFetch {
				c.nextFetch = fetchCycle + 1
			}
			c.groupLeft = 0
		}
	}
	if c.groupLeft == 0 && c.nextFetch <= fetchCycle {
		c.nextFetch = fetchCycle + 1
	}

	// --- Writeback ---
	if in.HasDest() {
		c.regReady[in.Dest] = done
		c.ctr.RegWrites++
	}

	// --- In-order retire ---
	retire := done + 1
	if r := c.lastRetire; r > retire {
		retire = r
	}
	if r := c.retire.freeAt() + 1; r > retire {
		retire = r
	}
	c.retire.push(retire)
	c.lastRetire = retire
	c.frontier = retire
	c.ctr.Committed++

	// --- Release structural resources ---
	c.rob.push(retire)
	c.iq.push(issue)
	rs.push(issue + 1)
	if in.HasDest() {
		if in.Dest.IsFP() {
			c.fprFree.push(retire)
		} else {
			c.gprFree.push(retire)
		}
	}
	return true
}

// Run advances the core until its retire frontier reaches at least
// `untilCycle` (a local-cycle timestamp) and returns false if the stream
// ended first.
func (c *Core) Run(untilCycle uint64) bool {
	for c.frontier < untilCycle {
		if !c.step() {
			return false
		}
	}
	return true
}

// RunInstructions advances the core by n dynamic instructions; it returns
// false if the stream ended first.
func (c *Core) RunInstructions(n uint64) bool {
	for i := uint64(0); i < n; i++ {
		if !c.step() {
			return false
		}
	}
	return true
}

// Measure executes `warmup` instructions, then measures a window of `n`
// instructions and returns the per-unit activity for it. Instruction-based
// windows keep the measured program region identical across DVFS modes.
func (c *Core) Measure(warmup, n uint64) power.Activity {
	c.RunInstructions(warmup)
	start := c.frontier
	c.ResetCounters()
	c.RunInstructions(n)
	elapsed := c.frontier - start
	if elapsed == 0 {
		elapsed = 1
	}
	c.ctr.Cycles = elapsed
	return c.Activity()
}

// Activity converts the current counters into power-model activity factors.
func (c *Core) Activity() power.Activity {
	ct := c.ctr
	cy := float64(ct.Cycles)
	if cy == 0 {
		cy = 1
	}
	util := func(events uint64, perCycle float64) float64 {
		u := float64(events) / (cy * perCycle)
		if u > 1 {
			u = 1
		}
		return u
	}
	return power.Activity{
		Fetch:   util(ct.Fetched, float64(c.cfg.Core.FetchWidth)),
		Decode:  util(ct.Fetched, float64(c.cfg.Core.DispatchWidth)),
		Issue:   util(ct.IQWaitSum, float64(c.cfg.Core.InstructionQueue)),
		FXU:     util(ct.FXOps, float64(c.cfg.Core.NumFXU)),
		FPU:     util(ct.FPOps, float64(c.cfg.Core.NumFPU)),
		LSU:     util(ct.Loads+ct.Stores, float64(c.cfg.Core.NumLSU)),
		BRU:     util(ct.Branches, float64(c.cfg.Core.NumBRU)),
		RegFile: util(ct.RegReads+ct.RegWrites, float64(c.cfg.Core.DispatchWidth)*3),
		// 0.2 accesses/cycle saturates a core's share of L2 bandwidth.
		L2:        util(ct.L2Accesses, 0.2),
		Committed: ct.Committed,
		Cycles:    ct.Cycles,
	}
}

// IPC returns committed instructions per cycle over the counter window.
func (c *Core) IPC() float64 {
	if c.ctr.Cycles == 0 {
		return 0
	}
	return float64(c.ctr.Committed) / float64(c.ctr.Cycles)
}
