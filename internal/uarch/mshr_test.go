package uarch

import (
	"testing"

	"gpm/internal/config"
	"gpm/internal/isa"
)

// missStream emits independent loads that each touch a fresh block in an
// enormous region: every access misses the whole hierarchy.
type missStream struct {
	i    uint64
	next uint64
}

func (s *missStream) Next() (isa.Instruction, bool) {
	s.next += 4096 // fresh set+tag each time
	in := isa.Instruction{
		Seq:  s.i,
		PC:   0x1000_0000 + (s.i%16)*4,
		Op:   isa.OpLoad,
		Dest: isa.Reg(s.i % 16),
		Src1: 30, // invariant: always ready
		Src2: isa.NoReg,
		Addr: 0x9000_0000 + s.next,
	}
	s.i++
	return in, true
}

// newCoreWithMSHRs builds a core with a custom MSHR count.
func newCoreWithMSHRs(t *testing.T, mshrs int) *Core {
	t.Helper()
	cfg := config.Default(1)
	cfg.Core.MSHRs = mshrs
	return newCoreFrom(t, cfg, &missStream{})
}

func TestMSHRsBoundMemoryLevelParallelism(t *testing.T) {
	run := func(mshrs int) uint64 {
		c := newCoreWithMSHRs(t, mshrs)
		c.RunInstructions(4000)
		return c.Frontier()
	}
	one := run(1)
	four := run(4)
	sixteen := run(16)
	// More MSHRs ⇒ more overlapped misses ⇒ fewer cycles.
	if !(one > four && four > sixteen) {
		t.Errorf("cycles not decreasing with MSHRs: 1->%d, 4->%d, 16->%d", one, four, sixteen)
	}
	// With a single MSHR, misses fully serialize: ≥ memLatency per load.
	cfg := config.Default(1)
	minSerial := uint64(4000) * uint64(cfg.Mem.MemoryLatencyCycles) / 2
	if one < minSerial {
		t.Errorf("single-MSHR run %d cycles, expected ≥ %d (serialized misses)", one, minSerial)
	}
}

func TestMSHRWaitCounted(t *testing.T) {
	c := newCoreWithMSHRs(t, 2)
	c.RunInstructions(2000)
	if c.Counters().MSHRWait == 0 {
		t.Error("back-to-back misses with 2 MSHRs must record MSHR waits")
	}
	c16 := newCoreWithMSHRs(t, 64)
	c16.RunInstructions(2000)
	if c16.Counters().MSHRWait >= c.Counters().MSHRWait {
		t.Error("more MSHRs should reduce MSHR wait")
	}
}

func TestStoreMissesOccupyMSHRs(t *testing.T) {
	// Stores don't stall dependents but their line fills hold MSHRs; a
	// store-heavy miss stream must still see MSHR pressure.
	cfg := config.Default(1)
	cfg.Core.MSHRs = 2
	str := &missStream{}
	c := newCoreFrom(t, cfg, storeWrap{str})
	c.RunInstructions(2000)
	if c.Counters().MSHRWait == 0 {
		t.Error("store misses should contend for MSHRs")
	}
	if c.Counters().Stores != 2000 {
		t.Errorf("stores %d, want 2000", c.Counters().Stores)
	}
}

// storeWrap converts a load stream into stores.
type storeWrap struct{ s *missStream }

func (w storeWrap) Next() (isa.Instruction, bool) {
	in, ok := w.s.Next()
	in.Op = isa.OpStore
	in.Src2 = in.Dest
	in.Dest = isa.NoReg
	return in, ok
}
