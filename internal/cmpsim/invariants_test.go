package cmpsim

import (
	"math"
	"testing"

	"gpm/internal/core"
)

// TestEnergyConservation: total energy must equal the integral of the chip
// power series, and per-core series must sum to the chip series.
func TestEnergyConservation(t *testing.T) {
	lib := testLib(t, 4)
	res, err := Run(lib, fourWay(), Options{
		Budget: FixedBudget(70),
		Policy: core.MaxBIPS{},
	})
	if err != nil {
		t.Fatal(err)
	}
	dt := res.DeltaSim.Seconds()
	var integral float64
	for i, chip := range res.ChipPowerW {
		integral += chip * dt
		var rowSum float64
		for _, p := range res.CorePowerW[i] {
			rowSum += p
		}
		if math.Abs(rowSum-chip) > 1e-9 {
			t.Fatalf("interval %d: per-core power sums to %.6f, chip series says %.6f", i, rowSum, chip)
		}
	}
	if math.Abs(integral-res.EnergyJ) > res.EnergyJ*1e-9 {
		t.Errorf("∫power dt = %.9f J, EnergyJ = %.9f J", integral, res.EnergyJ)
	}
	// Instruction accounting: series, per-core totals, and TotalInstr agree.
	var seriesInstr float64
	perCore := make([]float64, 4)
	for i := range res.CoreInstr {
		for c, in := range res.CoreInstr[i] {
			seriesInstr += in
			perCore[c] += in
		}
	}
	if math.Abs(seriesInstr-res.TotalInstr) > 1 {
		t.Errorf("series instructions %.0f vs TotalInstr %.0f", seriesInstr, res.TotalInstr)
	}
	for c := range perCore {
		if math.Abs(perCore[c]-res.PerCoreInstr[c]) > 1 {
			t.Errorf("core %d: series %.0f vs PerCoreInstr %.0f", c, perCore[c], res.PerCoreInstr[c])
		}
	}
}

// TestRunDeterminism: identical inputs must produce identical results.
func TestRunDeterminism(t *testing.T) {
	lib := testLib(t, 4)
	run := func() *Result {
		res, err := Run(lib, fourWay(), Options{
			Budget: FixedBudget(68),
			Policy: core.MaxBIPS{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalInstr != b.TotalInstr || a.EnergyJ != b.EnergyJ || a.TransitionStall != b.TransitionStall {
		t.Errorf("runs diverged: (%.0f, %.6f, %v) vs (%.0f, %.6f, %v)",
			a.TotalInstr, a.EnergyJ, a.TransitionStall, b.TotalInstr, b.EnergyJ, b.TransitionStall)
	}
	for k := range a.Modes {
		if !a.Modes[k].Equal(b.Modes[k]) {
			t.Fatalf("mode decisions diverged at explore %d: %v vs %v", k, a.Modes[k], b.Modes[k])
		}
	}
}

// TestModeSeriesMatchesDecisions: the recorded per-explore vectors must
// stay legal and only change at explore boundaries by construction.
func TestModeSeriesLegal(t *testing.T) {
	lib := testLib(t, 4)
	res, err := Run(lib, fourWay(), Options{
		Budget: FixedBudget(66),
		Policy: core.PullHiPushLo{},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := lib.Plan()
	for k, v := range res.Modes {
		if len(v) != 4 {
			t.Fatalf("explore %d: vector width %d", k, len(v))
		}
		for _, m := range v {
			if !plan.Valid(m) {
				t.Fatalf("explore %d: invalid mode %d", k, m)
			}
		}
	}
	// Explore count ≈ deltas / deltasPerExplore.
	wantExplores := (len(res.ChipPowerW) + 9) / 10
	if len(res.Modes) != wantExplores {
		t.Errorf("recorded %d explore vectors for %d deltas, want %d", len(res.Modes), len(res.ChipPowerW), wantExplores)
	}
}

// TestUnlimitedBudgetIsAllTurbo: with no budget pressure, MaxBIPS never
// leaves Turbo (transition stalls would only lose throughput).
func TestUnlimitedBudgetIsAllTurbo(t *testing.T) {
	lib := testLib(t, 4)
	res, err := Run(lib, fourWay(), Options{
		Budget: Unlimited(),
		Policy: core.MaxBIPS{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Modes {
		for c, m := range v {
			if m != 0 {
				t.Fatalf("explore %d: core %d left Turbo under an unlimited budget: %v", k, c, v)
			}
		}
	}
	if res.TransitionStall != 0 {
		t.Errorf("unlimited budget paid %v of transition stalls", res.TransitionStall)
	}
}
