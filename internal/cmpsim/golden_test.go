package cmpsim

import (
	"fmt"
	"os"
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/obs"
	"gpm/internal/thermal"
)

// goldenFingerprint hashes every numeric series and counter of a Result
// bit-exactly, including the robustness accounting and the final samples, so
// any drift in the simulation loop — decision order, stall accounting,
// truncation handling, guard state machine — changes the hash. The hash now
// lives in internal/obs (trace footers stamp the same value); the pinned
// values below predate the move and pin it unchanged.
func goldenFingerprint(r *Result) uint64 {
	return obs.ResultFingerprint(r)
}

// goldenCase is one pinned (policy, budget, fault, guard, thermal) run.
type goldenCase struct {
	name string
	opt  func() Options
	want uint64
}

// goldenThermal builds a fresh governor per run (the state mutates).
func goldenThermal() *thermal.Governor {
	st, err := thermal.NewState(thermal.Params{RthCPerW: 2.5, CthJPerC: 8e-4, AmbientC: 45, LimitC: 85}, 4)
	if err != nil {
		panic(err)
	}
	return thermal.NewGovernor(st, 500*time.Microsecond)
}

// goldenCases pins the trace-based control loop across every feature axis the
// engine refactor touches: plain policies, fault injection, the guarded
// manager, budget spikes, thermal governing and thermal-sensor death. The
// fingerprints were captured on the pre-engine monolithic cmpsim.Run; the
// engine-backed loop must reproduce them bit for bit.
var goldenCases = []goldenCase{
	{
		name: "maxbips-70W",
		opt: func() Options {
			return Options{Budget: FixedBudget(70), Policy: core.MaxBIPS{}, Horizon: 8 * time.Millisecond}
		},
	},
	{
		name: "priority-55W",
		opt: func() Options {
			return Options{Budget: FixedBudget(55), Policy: core.Priority{}, Horizon: 8 * time.Millisecond}
		},
	},
	{
		name: "greedy-step-budget",
		opt: func() Options {
			return Options{Budget: StepBudget(75, 50, 4*time.Millisecond), Policy: core.GreedyMaxBIPS{}, Horizon: 8 * time.Millisecond}
		},
	},
	{
		name: "maxbips-noise-unguarded",
		opt: func() Options {
			return Options{
				Budget:  FixedBudget(60),
				Policy:  core.MaxBIPS{},
				Fault:   &fault.Scenario{Seed: 7, PowerNoiseSigma: 0.08, InstrNoiseSigma: 0.03, DropProb: 0.05},
				Horizon: 8 * time.Millisecond,
			}
		},
	},
	{
		name: "maxbips-noise-guarded",
		opt: func() Options {
			return Options{
				Budget:  FixedBudget(60),
				Policy:  core.MaxBIPS{},
				Fault:   &fault.Scenario{Seed: 7, PowerNoiseSigma: 0.08, InstrNoiseSigma: 0.03, DropProb: 0.05},
				Guard:   &core.GuardConfig{},
				Horizon: 8 * time.Millisecond,
			}
		},
	},
	{
		name: "greedy-stuck-death-guarded",
		opt: func() Options {
			return Options{
				Budget: FixedBudget(65),
				Policy: core.GreedyMaxBIPS{},
				Fault: &fault.Scenario{
					Seed:   3,
					Stuck:  []fault.StuckFault{{Core: 0, PowerW: 0.5, At: 2 * time.Millisecond}},
					Deaths: []fault.CoreDeath{{Core: 2, At: 4 * time.Millisecond}},
				},
				Guard:   &core.GuardConfig{},
				Horizon: 9 * time.Millisecond,
			}
		},
	},
	{
		name: "maxbips-spike-thermalfail",
		opt: func() Options {
			return Options{
				Budget: FixedBudget(60),
				Policy: core.MaxBIPS{},
				Fault: &fault.Scenario{
					Spikes:        []fault.BudgetSpike{{At: 2 * time.Millisecond, Duration: time.Millisecond, Scale: 0.5}},
					ThermalFailAt: 3 * time.Millisecond,
				},
				Thermal: goldenThermal(),
				Horizon: 7 * time.Millisecond,
			}
		},
	},
	{
		name: "maxbips-truncated-interval",
		opt: func() Options {
			// Horizon cuts the second explore interval at 40%: pins the
			// truncated-interval sample averaging through the loop.
			return Options{Budget: FixedBudget(70), Policy: core.MaxBIPS{}, Horizon: 500*time.Microsecond + 4*50*time.Microsecond}
		},
	},
}

var goldenWant = map[string]uint64{
	"maxbips-70W":                0xe81d07ca3d25fbbd,
	"priority-55W":               0xaf0b859fd616bc98,
	"greedy-step-budget":         0x611485a2a450ea9e,
	"maxbips-noise-unguarded":    0xda0906193b70c44e,
	"maxbips-noise-guarded":      0xfe96178277767972,
	"greedy-stuck-death-guarded": 0x46908fad24ae6e4b,
	"maxbips-spike-thermalfail":  0xa8b4f58c394a9fde,
	"maxbips-truncated-interval": 0xcd4efa29b57668a3,
}

// TestGoldenControlLoop pins cmpsim.Run bit-identical across policies,
// budgets, fault scenarios, the guard and the thermal loop. Captured on the
// pre-engine tree; the engine-backed Run must not move a single bit. To
// re-capture after an intentional numerics change:
//
//	GOLDEN_CAPTURE=1 go test ./internal/cmpsim -run TestGoldenControlLoop -v
func TestGoldenControlLoop(t *testing.T) {
	lib := testLib(t, 4)
	capture := os.Getenv("GOLDEN_CAPTURE") != ""
	for _, gc := range goldenCases {
		res, err := Run(lib, fourWay(), gc.opt())
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		got := goldenFingerprint(res)
		if capture {
			fmt.Printf("\t%q: %#x,\n", gc.name, got)
			continue
		}
		if want := goldenWant[gc.name]; got != want {
			t.Errorf("%s: fingerprint %#x, want %#x — trace-based control loop drifted", gc.name, got, want)
		}
	}
}

// goldenTraceWant pins the decision-trace fingerprints of the golden cases:
// the deterministic fields of every per-interval record (observed samples,
// stage budgets and overrides, candidate and final vectors, guard state,
// stalls). The Result fingerprints above pin the simulated physics; these pin
// the *decision pipeline's* observable behavior. Re-capture with
// GOLDEN_CAPTURE=1 after an intentional change.
var goldenTraceWant = map[string]uint64{
	"maxbips-70W":                0xabfe811275b37713,
	"priority-55W":               0x79f12b05c9aa9bb3,
	"greedy-step-budget":         0x12aceaa5b75bf3fb,
	"maxbips-noise-unguarded":    0x06e15a683eded04d,
	"maxbips-noise-guarded":      0x4af8d8da059790d9,
	"greedy-stuck-death-guarded": 0xcdf4e25bd4ad44e2,
	"maxbips-spike-thermalfail":  0x8da50c666c0c00a9,
	"maxbips-truncated-interval": 0x22bb7e11aa030976,
}

// TestGoldenDecisionTraces runs the golden cases with tracing attached and
// pins (a) that observing does not move the Result a single bit and (b) the
// trace fingerprint of each case.
func TestGoldenDecisionTraces(t *testing.T) {
	lib := testLib(t, 4)
	capture := os.Getenv("GOLDEN_CAPTURE") != ""
	for _, gc := range goldenCases {
		opt := gc.opt()
		col := obs.NewCollector(nil)
		opt.Observer = col
		res, err := Run(lib, fourWay(), opt)
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		if got, want := goldenFingerprint(res), goldenWant[gc.name]; !capture && got != want {
			t.Errorf("%s: observed run fingerprint %#x, want %#x — tracing changed the simulation", gc.name, got, want)
		}
		if res.Obs.TraceRecords != len(col.Trace().Records) || res.Obs.TraceRecords == 0 {
			t.Errorf("%s: %d trace records collected, counters say %d", gc.name, len(col.Trace().Records), res.Obs.TraceRecords)
		}
		got := obs.TraceFingerprint(col.Trace())
		if capture {
			fmt.Printf("\t%q: %#x,\n", gc.name, got)
			continue
		}
		if want := goldenTraceWant[gc.name]; got != want {
			t.Errorf("%s: trace fingerprint %#x, want %#x — decision pipeline drifted", gc.name, got, want)
		}
	}
}

// TestGoldenReplayBitIdentical records each golden case and replays the trace
// through the replay Decider on a fresh substrate: the replayed Result must
// reproduce the original bit for bit — recorded vectors and budgets are the
// only decision inputs the physics ever consumed.
func TestGoldenReplayBitIdentical(t *testing.T) {
	lib := testLib(t, 4)
	for _, gc := range goldenCases {
		col := obs.NewCollector(nil)
		opt := gc.opt()
		opt.Observer = col
		orig, err := Run(lib, fourWay(), opt)
		if err != nil {
			t.Fatalf("%s: record: %v", gc.name, err)
		}
		// Fresh per-case options: the recording run consumed the thermal
		// governor's state, and replay needs the same fault scenario for the
		// core-death physics (observation noise is irrelevant — decisions
		// are replayed verbatim).
		ropt := gc.opt()
		replayed, err := Run(lib, fourWay(), Options{
			Replay:  col.Trace(),
			Fault:   ropt.Fault,
			Thermal: ropt.Thermal,
			Horizon: ropt.Horizon,
		})
		if err != nil {
			t.Fatalf("%s: replay: %v", gc.name, err)
		}
		if a, b := goldenFingerprint(orig), goldenFingerprint(replayed); a != b {
			t.Errorf("%s: replay diverged: original %#x, replayed %#x", gc.name, a, b)
		}
	}
}
