package cmpsim

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/thermal"
)

// goldenFingerprint hashes every numeric series and counter of a Result
// bit-exactly, including the robustness accounting and the final samples, so
// any drift in the simulation loop — decision order, stall accounting,
// truncation handling, guard state machine — changes the hash.
func goldenFingerprint(r *Result) uint64 {
	h := fnv.New64a()
	w := func(f float64) {
		var b [8]byte
		u := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	for i := range r.ChipPowerW {
		w(r.ChipPowerW[i])
		w(r.BudgetW[i])
		for c := range r.CorePowerW[i] {
			w(r.CorePowerW[i][c])
			w(r.CoreInstr[i][c])
		}
	}
	for _, v := range r.Modes {
		for _, m := range v {
			w(float64(m))
		}
	}
	for _, tc := range r.MaxTempC {
		w(tc)
	}
	for c := range r.PerCoreInstr {
		w(r.PerCoreInstr[c])
		w(r.FinalSamples[c].PowerW)
		w(r.FinalSamples[c].Instr)
		if r.FinalSamples[c].Done {
			w(1)
		} else {
			w(0)
		}
	}
	w(r.TotalInstr)
	w(r.EnergyJ)
	w(float64(r.Elapsed))
	w(float64(r.TransitionStall))
	w(float64(r.FirstCompleted))
	w(float64(r.OvershootIntervals))
	w(r.OvershootEnergyWs)
	w(r.WorstOvershootWs)
	w(float64(r.EmergencyEntries))
	w(float64(r.EmergencyIntervals))
	w(float64(r.RecoveryLatency))
	w(float64(r.SanitizedSamples))
	w(float64(r.RescaledIntervals))
	for _, c := range r.DeadCores {
		w(float64(c))
	}
	return h.Sum64()
}

// goldenCase is one pinned (policy, budget, fault, guard, thermal) run.
type goldenCase struct {
	name string
	opt  func() Options
	want uint64
}

// goldenThermal builds a fresh governor per run (the state mutates).
func goldenThermal() *thermal.Governor {
	st, err := thermal.NewState(thermal.Params{RthCPerW: 2.5, CthJPerC: 8e-4, AmbientC: 45, LimitC: 85}, 4)
	if err != nil {
		panic(err)
	}
	return thermal.NewGovernor(st, 500*time.Microsecond)
}

// goldenCases pins the trace-based control loop across every feature axis the
// engine refactor touches: plain policies, fault injection, the guarded
// manager, budget spikes, thermal governing and thermal-sensor death. The
// fingerprints were captured on the pre-engine monolithic cmpsim.Run; the
// engine-backed loop must reproduce them bit for bit.
var goldenCases = []goldenCase{
	{
		name: "maxbips-70W",
		opt: func() Options {
			return Options{Budget: FixedBudget(70), Policy: core.MaxBIPS{}, Horizon: 8 * time.Millisecond}
		},
	},
	{
		name: "priority-55W",
		opt: func() Options {
			return Options{Budget: FixedBudget(55), Policy: core.Priority{}, Horizon: 8 * time.Millisecond}
		},
	},
	{
		name: "greedy-step-budget",
		opt: func() Options {
			return Options{Budget: StepBudget(75, 50, 4*time.Millisecond), Policy: core.GreedyMaxBIPS{}, Horizon: 8 * time.Millisecond}
		},
	},
	{
		name: "maxbips-noise-unguarded",
		opt: func() Options {
			return Options{
				Budget:  FixedBudget(60),
				Policy:  core.MaxBIPS{},
				Fault:   &fault.Scenario{Seed: 7, PowerNoiseSigma: 0.08, InstrNoiseSigma: 0.03, DropProb: 0.05},
				Horizon: 8 * time.Millisecond,
			}
		},
	},
	{
		name: "maxbips-noise-guarded",
		opt: func() Options {
			return Options{
				Budget:  FixedBudget(60),
				Policy:  core.MaxBIPS{},
				Fault:   &fault.Scenario{Seed: 7, PowerNoiseSigma: 0.08, InstrNoiseSigma: 0.03, DropProb: 0.05},
				Guard:   &core.GuardConfig{},
				Horizon: 8 * time.Millisecond,
			}
		},
	},
	{
		name: "greedy-stuck-death-guarded",
		opt: func() Options {
			return Options{
				Budget: FixedBudget(65),
				Policy: core.GreedyMaxBIPS{},
				Fault: &fault.Scenario{
					Seed:   3,
					Stuck:  []fault.StuckFault{{Core: 0, PowerW: 0.5, At: 2 * time.Millisecond}},
					Deaths: []fault.CoreDeath{{Core: 2, At: 4 * time.Millisecond}},
				},
				Guard:   &core.GuardConfig{},
				Horizon: 9 * time.Millisecond,
			}
		},
	},
	{
		name: "maxbips-spike-thermalfail",
		opt: func() Options {
			return Options{
				Budget: FixedBudget(60),
				Policy: core.MaxBIPS{},
				Fault: &fault.Scenario{
					Spikes:        []fault.BudgetSpike{{At: 2 * time.Millisecond, Duration: time.Millisecond, Scale: 0.5}},
					ThermalFailAt: 3 * time.Millisecond,
				},
				Thermal: goldenThermal(),
				Horizon: 7 * time.Millisecond,
			}
		},
	},
	{
		name: "maxbips-truncated-interval",
		opt: func() Options {
			// Horizon cuts the second explore interval at 40%: pins the
			// truncated-interval sample averaging through the loop.
			return Options{Budget: FixedBudget(70), Policy: core.MaxBIPS{}, Horizon: 500*time.Microsecond + 4*50*time.Microsecond}
		},
	},
}

var goldenWant = map[string]uint64{
	"maxbips-70W":                0xe81d07ca3d25fbbd,
	"priority-55W":               0xaf0b859fd616bc98,
	"greedy-step-budget":         0x611485a2a450ea9e,
	"maxbips-noise-unguarded":    0xda0906193b70c44e,
	"maxbips-noise-guarded":      0xfe96178277767972,
	"greedy-stuck-death-guarded": 0x46908fad24ae6e4b,
	"maxbips-spike-thermalfail":  0xa8b4f58c394a9fde,
	"maxbips-truncated-interval": 0xcd4efa29b57668a3,
}

// TestGoldenControlLoop pins cmpsim.Run bit-identical across policies,
// budgets, fault scenarios, the guard and the thermal loop. Captured on the
// pre-engine tree; the engine-backed Run must not move a single bit. To
// re-capture after an intentional numerics change:
//
//	GOLDEN_CAPTURE=1 go test ./internal/cmpsim -run TestGoldenControlLoop -v
func TestGoldenControlLoop(t *testing.T) {
	lib := testLib(t, 4)
	capture := os.Getenv("GOLDEN_CAPTURE") != ""
	for _, gc := range goldenCases {
		res, err := Run(lib, fourWay(), gc.opt())
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		got := goldenFingerprint(res)
		if capture {
			fmt.Printf("\t%q: %#x,\n", gc.name, got)
			continue
		}
		if want := goldenWant[gc.name]; got != want {
			t.Errorf("%s: fingerprint %#x, want %#x — trace-based control loop drifted", gc.name, got, want)
		}
	}
}
