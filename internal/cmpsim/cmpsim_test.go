package cmpsim

import (
	"testing"
	"time"

	"gpm/internal/config"
	"gpm/internal/core"
	"gpm/internal/metrics"
	"gpm/internal/modes"
	"gpm/internal/power"
	"gpm/internal/trace"
	"gpm/internal/workload"
)

func testLib(t testing.TB, n int) *trace.Library {
	t.Helper()
	cfg := config.Default(n)
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
	return trace.NewLibrary(cfg, power.Default(), plan)
}

func fourWay() workload.Combo { return workload.FourWay[0] } // ammp,mcf,crafty,art

func TestBaselineRunsToHorizon(t *testing.T) {
	lib := testLib(t, 4)
	res, err := Baseline(lib, fourWay())
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstCompleted != -1 {
		t.Errorf("benchmark %d completed within horizon; baseline should span the full window", res.FirstCompleted)
	}
	if res.Elapsed != lib.Config().Sim.Horizon {
		t.Errorf("elapsed %v, want horizon %v", res.Elapsed, lib.Config().Sim.Horizon)
	}
	if res.TotalInstr <= 0 {
		t.Fatal("no instructions committed")
	}
	if res.TransitionStall != 0 {
		t.Errorf("all-Turbo baseline paid %v of transition stall", res.TransitionStall)
	}
}

func TestPoliciesMeetBudget(t *testing.T) {
	lib := testLib(t, 4)
	base, err := Baseline(lib, fourWay())
	if err != nil {
		t.Fatal(err)
	}
	maxP := base.MaxChipPowerW()
	for _, pol := range []core.Policy{core.MaxBIPS{}, core.Priority{}, core.PullHiPushLo{}, core.ChipWideDVFS{}, core.GreedyMaxBIPS{}} {
		for _, frac := range []float64{0.7, 0.85} {
			res, err := Run(lib, fourWay(), Options{
				Budget: FixedBudget(frac * maxP),
				Policy: pol,
			})
			if err != nil {
				t.Fatalf("%s: %v", pol.Name(), err)
			}
			avg := res.AvgChipPowerW()
			if avg > frac*maxP*1.01 {
				t.Errorf("%s at %.0f%%: average power %.1f W exceeds budget %.1f W", pol.Name(), frac*100, avg, frac*maxP)
			}
			deg := metrics.Degradation(res.TotalInstr, base.TotalInstr)
			if deg < -0.01 || deg > 0.5 {
				t.Errorf("%s at %.0f%%: degradation %.1f%% out of plausible range", pol.Name(), frac*100, deg*100)
			}
			// Throughput-maximizing policies ride the budget boundary, so
			// roughly a quarter of delta intervals can exceed it by the
			// jitter amplitude before the next explore corrects (§5.5); the
			// average (asserted above) is the contract.
			over := float64(res.OvershootIntervals) / float64(len(res.ChipPowerW))
			if over > 0.40 {
				t.Errorf("%s at %.0f%%: %.0f%% of intervals overshoot the budget", pol.Name(), frac*100, over*100)
			}
			t.Logf("%-13s budget %.0f%%: deg %5.2f%%, avg/budget %.2f, overshoot %4.1f%%, stall %v",
				pol.Name(), frac*100, deg*100, avg/(frac*maxP), over*100, res.TransitionStall)
		}
	}
}

func TestMaxBIPSBeatsChipWideAndNearOracle(t *testing.T) {
	lib := testLib(t, 4)
	combo := fourWay()
	base, err := Baseline(lib, combo)
	if err != nil {
		t.Fatal(err)
	}
	maxP := base.MaxChipPowerW()
	run := func(p core.Policy, frac float64) float64 {
		res, err := Run(lib, combo, Options{Budget: FixedBudget(frac * maxP), Policy: p})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		return metrics.Degradation(res.TotalInstr, base.TotalInstr)
	}
	for _, frac := range []float64{0.7, 0.8, 0.9} {
		mb := run(core.MaxBIPS{}, frac)
		cw := run(core.ChipWideDVFS{}, frac)
		or := run(core.Oracle{}, frac)
		t.Logf("budget %.0f%%: maxbips %5.2f%%  chipwide %5.2f%%  oracle %5.2f%%", frac*100, mb*100, cw*100, or*100)
		if mb > cw+0.005 {
			t.Errorf("budget %.0f%%: MaxBIPS (%.2f%%) worse than chip-wide DVFS (%.2f%%)", frac*100, mb*100, cw*100)
		}
		if mb-or > 0.02 {
			t.Errorf("budget %.0f%%: MaxBIPS %.2f%% more than 2%% behind oracle %.2f%%", frac*100, mb*100, or*100)
		}
	}
}

func TestStepBudgetDrops(t *testing.T) {
	lib := testLib(t, 4)
	combo := fourWay()
	base, err := Baseline(lib, combo)
	if err != nil {
		t.Fatal(err)
	}
	maxP := base.MaxChipPowerW()
	drop := 6 * time.Millisecond
	res, err := Run(lib, combo, Options{
		Budget:  StepBudget(0.9*maxP, 0.7*maxP, drop),
		Policy:  core.MaxBIPS{},
		Horizon: 12 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Average power after the drop must respect the lower budget.
	var pre, post, npre, npost float64
	for i, p := range res.ChipPowerW {
		ts := time.Duration(i) * res.DeltaSim
		if ts < drop {
			pre += p
			npre++
		} else {
			post += p
			npost++
		}
	}
	if npre == 0 || npost == 0 {
		t.Fatal("window did not straddle the budget drop")
	}
	pre /= npre
	post /= npost
	if post > 0.7*maxP*1.02 {
		t.Errorf("after drop: avg power %.1f W exceeds 70%% budget %.1f W", post, 0.7*maxP)
	}
	if post >= pre {
		t.Errorf("power did not decrease after budget drop: pre %.1f W, post %.1f W", pre, post)
	}
}
