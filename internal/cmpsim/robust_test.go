package cmpsim

import (
	"math"
	"strings"
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/thermal"
)

func TestBudgetValidation(t *testing.T) {
	lib := testLib(t, 4)
	for name, fn := range map[string]func(time.Duration) float64{
		"nan":      func(time.Duration) float64 { return math.NaN() },
		"negative": FixedBudget(-5),
		"midrun": func(now time.Duration) float64 {
			if now >= time.Millisecond {
				return math.NaN()
			}
			return 70
		},
	} {
		_, err := Run(lib, fourWay(), Options{
			Budget:  fn,
			Policy:  core.MaxBIPS{},
			Horizon: 2 * time.Millisecond,
		})
		if err == nil {
			t.Errorf("%s budget accepted", name)
		} else if !strings.Contains(err.Error(), "budget") {
			t.Errorf("%s budget: unhelpful error %q", name, err)
		}
	}
}

// TestTruncatedIntervalAveraging: when the horizon cuts an explore interval
// short, the final interval-average sample must divide by the deltas that
// actually ran, not the nominal per-explore count (which would understate
// power by the truncation ratio).
func TestTruncatedIntervalAveraging(t *testing.T) {
	lib := testLib(t, 4)
	cfg := lib.Config()
	// One full explore interval plus 40% of a second one.
	frac := 4
	horizon := cfg.Sim.Explore + time.Duration(frac)*cfg.Sim.DeltaSim
	res, err := Run(lib, fourWay(), Options{
		Budget:  FixedBudget(70),
		Policy:  core.MaxBIPS{},
		Horizon: horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	per := cfg.DeltaPerExplore()
	if len(res.ChipPowerW) != per+frac {
		t.Fatalf("got %d delta intervals, want %d", len(res.ChipPowerW), per+frac)
	}
	for c := range res.FinalSamples {
		var want float64
		for i := per; i < per+frac; i++ {
			want += res.CorePowerW[i][c]
		}
		want /= float64(frac)
		if got := res.FinalSamples[c].PowerW; math.Abs(got-want) > 1e-12 {
			t.Errorf("core %d final sample %.6f W, want truncated average %.6f W", c, got, want)
		}
	}
}

// TestFaultRunReproducible: identical fault seeds must replay bit-identically
// and different seeds must diverge.
func TestFaultRunReproducible(t *testing.T) {
	lib := testLib(t, 4)
	run := func(seed int64) *Result {
		sc := &fault.Scenario{Seed: seed, PowerNoiseSigma: 0.08, InstrNoiseSigma: 0.03, DropProb: 0.05}
		res, err := Run(lib, fourWay(), Options{
			Budget:  FixedBudget(60),
			Policy:  core.MaxBIPS{},
			Fault:   sc,
			Horizon: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if len(a.ChipPowerW) != len(b.ChipPowerW) {
		t.Fatalf("series lengths differ: %d vs %d", len(a.ChipPowerW), len(b.ChipPowerW))
	}
	for i := range a.ChipPowerW {
		if a.ChipPowerW[i] != b.ChipPowerW[i] || a.BudgetW[i] != b.BudgetW[i] {
			t.Fatalf("interval %d: %v/%v vs %v/%v", i, a.ChipPowerW[i], a.BudgetW[i], b.ChipPowerW[i], b.BudgetW[i])
		}
	}
	for k := range a.Modes {
		if !a.Modes[k].Equal(b.Modes[k]) {
			t.Fatalf("explore %d: vectors %v vs %v", k, a.Modes[k], b.Modes[k])
		}
	}
	if a.TotalInstr != b.TotalInstr || a.EnergyJ != b.EnergyJ {
		t.Fatal("totals differ between identical seeds")
	}
	c := run(8)
	same := a.TotalInstr == c.TotalInstr && a.EnergyJ == c.EnergyJ
	if same {
		t.Error("different fault seeds produced identical runs")
	}
}

// TestStuckAtLowGuardedVsUnguarded is the headline regression: one core's
// power sensor sticks at a low value, so the §5.5 predictions believe the
// core is nearly free and the policy hands the whole budget to the others.
// The unguarded manager then violates the budget for the rest of the run;
// the guarded manager's emergency throttle must engage within K explore
// intervals and keep the sustained overshoot bounded.
func TestStuckAtLowGuardedVsUnguarded(t *testing.T) {
	lib := testLib(t, 4)
	base, err := Baseline(lib, fourWay())
	if err != nil {
		t.Fatal(err)
	}
	budget := 0.70 * base.MaxChipPowerW()
	faultAt := 2 * time.Millisecond
	horizon := 12 * time.Millisecond
	sc := &fault.Scenario{Stuck: []fault.StuckFault{{Core: 0, PowerW: 0.5, At: faultAt}}}

	run := func(guard *core.GuardConfig) *Result {
		res, err := Run(lib, fourWay(), Options{
			Budget:  FixedBudget(budget),
			Policy:  core.MaxBIPS{},
			Fault:   sc,
			Guard:   guard,
			Horizon: horizon,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	unguarded := run(nil)
	// The guard path under test is the emergency throttle, so disable the
	// chip-sensor cross-check that would repair the samples outright.
	guardCfg := core.DefaultGuard()
	guardCfg.RescaleMismatchFrac = -1
	guarded := run(&guardCfg)

	// The unguarded manager must demonstrably violate the budget after the
	// fault: most post-fault intervals over budget.
	onset := int(faultAt / unguarded.DeltaSim)
	over := 0
	for i := onset; i < len(unguarded.ChipPowerW); i++ {
		if unguarded.ChipPowerW[i] > unguarded.BudgetW[i] {
			over++
		}
	}
	post := len(unguarded.ChipPowerW) - onset
	if frac := float64(over) / float64(post); frac < 0.5 {
		t.Fatalf("unguarded run only violates %d/%d post-fault intervals; fault scenario too weak for the regression", over, post)
	}

	// The guard must engage within K explore intervals of the sustained
	// overshoot and bound the worst sustained excursion.
	if guarded.EmergencyEntries == 0 {
		t.Fatal("guarded run never engaged the emergency throttle")
	}
	k := core.DefaultGuard().OvershootK
	// First post-fault throttled explore interval: find the first all-deepest
	// vector after the fault onset.
	deepest := -1
	exploresPerFault := int(faultAt / lib.Config().Sim.Explore)
	for k2 := exploresPerFault; k2 < len(guarded.Modes); k2++ {
		all := true
		for _, m := range guarded.Modes[k2] {
			if int(m) != lib.Plan().NumModes()-1 {
				all = false
			}
		}
		if all {
			deepest = k2
			break
		}
	}
	if deepest < 0 {
		t.Fatal("guarded run never forced the deepest vector")
	}
	// The stuck sample lands one explore interval after onset; K overshoots
	// later the throttle must be in force (+1 for decision latency).
	if latest := exploresPerFault + k + 2; deepest > latest {
		t.Errorf("emergency throttle first engaged at explore %d, want ≤ %d", deepest, latest)
	}

	if guarded.WorstOvershootWs >= 0.5*unguarded.WorstOvershootWs {
		t.Errorf("guarded worst sustained overshoot %.3g W·s not clearly below unguarded %.3g W·s",
			guarded.WorstOvershootWs, unguarded.WorstOvershootWs)
	}
	t.Logf("unguarded: %d/%d post-fault violations, worst %.3g W·s; guarded: %d entries, worst %.3g W·s, recovery %v",
		over, post, unguarded.WorstOvershootWs, guarded.EmergencyEntries, guarded.WorstOvershootWs, guarded.RecoveryLatency)

	// With the chip-sensor cross-check enabled (default guard) the manager
	// repairs the lying sensor and keeps average power at or under budget.
	repaired := run(&core.GuardConfig{})
	if repaired.RescaledIntervals == 0 {
		t.Error("default guard never cross-checked against the chip sensor")
	}
	if avg := repaired.AvgChipPowerW(); avg > budget*1.05 {
		t.Errorf("cross-checking guard averaged %.1f W against budget %.1f W", avg, budget)
	}
}

// TestCoreDeathParksAndRedistributes: a core dies mid-run; the guarded
// manager must detect it, park it, and keep the chip under budget while the
// survivors absorb the budget share.
func TestCoreDeathParksAndRedistributes(t *testing.T) {
	lib := testLib(t, 4)
	base, err := Baseline(lib, fourWay())
	if err != nil {
		t.Fatal(err)
	}
	budget := 0.80 * base.MaxChipPowerW()
	dieAt := 3 * time.Millisecond
	sc := &fault.Scenario{Deaths: []fault.CoreDeath{{Core: 2, At: dieAt}}}
	res, err := Run(lib, fourWay(), Options{
		Budget:  FixedBudget(budget),
		Policy:  core.MaxBIPS{},
		Fault:   sc,
		Guard:   &core.GuardConfig{},
		Horizon: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeadCores) != 1 || res.DeadCores[0] != 2 {
		t.Fatalf("DeadCores = %v, want [2]", res.DeadCores)
	}
	// The dead core draws nothing after its death.
	onset := int(dieAt / res.DeltaSim)
	for i := onset; i < len(res.CorePowerW); i++ {
		if res.CorePowerW[i][2] != 0 {
			t.Fatalf("dead core drew %.3f W at interval %d", res.CorePowerW[i][2], i)
		}
	}
	// Once parked, the dead core is pinned at the deepest mode.
	lastExplores := res.Modes[len(res.Modes)-3:]
	for _, v := range lastExplores {
		if int(v[2]) != lib.Plan().NumModes()-1 {
			t.Errorf("dead core scheduled in mode %v after detection", v[2])
		}
	}
	// The chip stays under budget on average and survivors keep committing.
	if avg := res.AvgChipPowerW(); avg > budget*1.02 {
		t.Errorf("average power %.1f W over budget %.1f W after core death", avg, budget)
	}
	for i := onset + 100; i < len(res.CoreInstr); i += 50 {
		if res.CoreInstr[i][0] == 0 && res.CoreInstr[i][1] == 0 && res.CoreInstr[i][3] == 0 {
			t.Errorf("all survivors idle at interval %d", i)
		}
	}
}

// TestStepBudgetThermalInteraction (satellite): the effective budget in
// force must be min(step budget, thermal budget) on both sides of the step
// boundary, and the governed temperature must stay bounded near the limit.
func TestStepBudgetThermalInteraction(t *testing.T) {
	lib := testLib(t, 4)
	cfg := lib.Config()
	w1, w2 := 200.0, 30.0
	boundary := 5 * time.Millisecond
	horizon := 10 * time.Millisecond

	params := thermal.Params{
		RthCPerW: 2.5,  // a 20 W core settles 50 °C above ambient: limit binds
		CthJPerC: 8e-4, // τ = 2 ms: several time constants fit the horizon
		AmbientC: 45,
		LimitC:   85,
	}
	st, err := thermal.NewState(params, 4)
	if err != nil {
		t.Fatal(err)
	}
	gov := thermal.NewGovernor(st, cfg.Sim.Explore)
	res, err := Run(lib, fourWay(), Options{
		Budget:  StepBudget(w1, w2, boundary),
		Policy:  core.MaxBIPS{},
		Thermal: gov,
		Horizon: horizon,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The effective budget never exceeds the step component…
	thermalBound := false
	for i := range res.BudgetW {
		now := time.Duration(i) * cfg.Sim.DeltaSim
		step := w1
		if now >= boundary {
			step = w2
		}
		if res.BudgetW[i] > step+1e-9 {
			t.Fatalf("interval %d: effective budget %.2f W above step budget %.2f W", i, res.BudgetW[i], step)
		}
		if now < boundary && res.BudgetW[i] < step-1e-9 {
			thermalBound = true // …and the thermal term binds while w1 is generous
		}
	}
	if !thermalBound {
		t.Error("thermal budget never undercut the 200 W step phase; min() interaction untested")
	}
	// After the drop the cheap step budget must bind (the cooled chip's
	// thermal allowance exceeds 30 W).
	last := res.BudgetW[len(res.BudgetW)-1]
	if math.Abs(last-w2) > 1e-9 {
		t.Errorf("final effective budget %.2f W, want step budget %.2f W", last, w2)
	}

	// Temperature stays monotone-bounded under the cap: once governed, the
	// hottest core may overshoot the limit only by the control margin.
	peak := 0.0
	for _, tc := range res.MaxTempC {
		if tc > peak {
			peak = tc
		}
	}
	if peak > params.LimitC+1 {
		t.Errorf("governed peak temperature %.1f °C exceeds limit %.0f °C", peak, params.LimitC)
	}
	// And after the budget drop the chip cools monotonically (to within
	// integration jitter) — no thermal runaway.
	onset := int(boundary/cfg.Sim.DeltaSim) + 40
	for i := onset + 1; i < len(res.MaxTempC); i++ {
		if res.MaxTempC[i] > res.MaxTempC[i-1]+0.05 {
			t.Errorf("temperature rose %.2f → %.2f °C at interval %d under the reduced budget",
				res.MaxTempC[i-1], res.MaxTempC[i], i)
			break
		}
	}
}

// TestBudgetSpikeAndThermalSensorDeath: a transient budget spike must show
// up in the recorded budget series, and a dead thermal sensor must freeze
// the thermal component at its last reading.
func TestBudgetSpikeAndThermalSensorDeath(t *testing.T) {
	lib := testLib(t, 4)
	sc := &fault.Scenario{
		Spikes: []fault.BudgetSpike{{At: 2 * time.Millisecond, Duration: time.Millisecond, Scale: 0.5}},
	}
	res, err := Run(lib, fourWay(), Options{
		Budget:  FixedBudget(60),
		Policy:  core.MaxBIPS{},
		Fault:   sc,
		Horizon: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.BudgetW {
		now := time.Duration(i) * res.DeltaSim
		// The spike applies at explore granularity (decisions), so compare
		// against the explore interval the delta belongs to.
		decision := now.Truncate(lib.Config().Sim.Explore)
		want := 60.0
		if decision >= 2*time.Millisecond && decision < 3*time.Millisecond {
			want = 30.0
		}
		if math.Abs(res.BudgetW[i]-want) > 1e-9 {
			t.Fatalf("interval %d (t=%v): budget %.1f W, want %.1f W", i, now, res.BudgetW[i], want)
		}
	}

	// Thermal sensor death: governed run vs one whose sensor dies at t=0
	// with a cold chip — the frozen (infinite headroom) reading means the
	// budget never tightens.
	params := thermal.Params{RthCPerW: 2.5, CthJPerC: 8e-4, AmbientC: 45, LimitC: 85}
	mk := func(failAt time.Duration) *Result {
		st, err := thermal.NewState(params, 4)
		if err != nil {
			t.Fatal(err)
		}
		var fsc *fault.Scenario
		if failAt > 0 {
			fsc = &fault.Scenario{ThermalFailAt: failAt}
		}
		r, err := Run(lib, fourWay(), Options{
			Budget:  Unlimited(),
			Policy:  core.MaxBIPS{},
			Thermal: thermal.NewGovernor(st, lib.Config().Sim.Explore),
			Fault:   fsc,
			Horizon: 6 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	healthy := mk(0)
	dead := mk(lib.Config().Sim.Explore) // dies after the first reading
	// The healthy governor tightens the budget as the chip heats; the dead
	// sensor repeats its first (cold, generous) reading forever.
	if hLast, dLast := healthy.BudgetW[len(healthy.BudgetW)-1], dead.BudgetW[len(dead.BudgetW)-1]; dLast <= hLast*1.05 {
		t.Errorf("dead thermal sensor budget %.1f W should stay far above the healthy governor's %.1f W", dLast, hLast)
	}
	if peak := metricsMax(dead.MaxTempC); peak <= params.LimitC {
		t.Logf("note: unthrottled run peaked at %.1f °C (limit %.0f)", peak, params.LimitC)
	}
}

func metricsMax(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
