package cmpsim

import (
	"testing"

	"gpm/internal/calib"
	"gpm/internal/core"
	"gpm/internal/obs"
)

// TestCounterfactualSelfIdentity pins the counterfactual replay contract on
// the trace-based substrate: re-driving a recorded trace's telemetry through
// the *same* policy/guard configuration must reproduce the recorded decisions
// exactly — zero regret at every interval, for every golden case, including
// the faulted and guarded ones. Any nonzero regret means calib.Replay's
// counterfactual lane is not being fed what the recording manager was fed,
// and every cross-policy regret number it reports is suspect.
func TestCounterfactualSelfIdentity(t *testing.T) {
	lib := testLib(t, 4)
	memBound, err := MemBoundedness(lib, fourWay())
	if err != nil {
		t.Fatal(err)
	}
	pred := core.Predictor{Plan: lib.Plan(), ExploreSeconds: lib.Config().Sim.Explore.Seconds()}
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			opt := gc.opt()
			col := obs.NewCollector(nil)
			opt.Observer = col
			if _, err := Run(lib, fourWay(), opt); err != nil {
				t.Fatal(err)
			}
			rr, err := calib.Replay(col.Trace(), calib.ReplayOptions{
				Plan:      lib.Plan(),
				Predictor: pred,
				Policy:    opt.Policy,
				Guard:     opt.Guard,
				MemBound:  memBound,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rr.Intervals) != len(col.Trace().Records)-1 {
				t.Fatalf("replayed %d intervals, trace has %d records (want records-1)", len(rr.Intervals), len(col.Trace().Records))
			}
			for _, ir := range rr.Intervals {
				if !ir.Matched {
					t.Fatalf("interval %d: self-replay vector diverged from the recorded one", ir.Interval)
				}
				if ir.VsRecorded != 0 {
					t.Fatalf("interval %d: self-replay regret %v, want exactly 0", ir.Interval, ir.VsRecorded)
				}
			}
			if rr.CumVsRecorded != 0 || rr.Matches != len(rr.Intervals) {
				t.Fatalf("cumulative self-regret %v over %d/%d matches, want 0 over all",
					rr.CumVsRecorded, rr.Matches, len(rr.Intervals))
			}
		})
	}
}
