// Package cmpsim is the trace-based CMP analysis tool of §3.1: it progresses
// per-benchmark, per-mode characterizations (trace.Player) simultaneously on
// N cores, updates statistics every delta-sim interval (50 µs), and lets the
// global power manager (internal/core) reassign per-core modes at every
// explore interval (500 µs), charging DVFS transition overheads as
// synchronized stalls (§5.1).
package cmpsim

import (
	"fmt"
	"math"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/metrics"
	"gpm/internal/modes"
	"gpm/internal/solver"
	"gpm/internal/thermal"
	"gpm/internal/trace"
	"gpm/internal/workload"
)

// Options configures one CMP simulation run.
type Options struct {
	// Budget returns the chip power budget in watts at simulated time t.
	// Time-varying budgets model events like Fig 6's cooling failure.
	Budget func(t time.Duration) float64
	// Policy decides mode vectors at explore boundaries.
	Policy core.Policy
	// Solver, when non-nil and Policy is nil, runs the simulation under a
	// MaxBIPS-objective policy backed by this internal/solver allocation
	// solver (equivalent to Policy: core.SolverPolicy{Solver: Solver}).
	Solver solver.Solver
	// Predictor builds the §5.5 matrices. Zero value fields are filled from
	// the library's plan and config.
	Predictor core.Predictor
	// MemBound optionally overrides the per-core memory-boundedness ranking;
	// when nil it is derived from the profiles.
	MemBound []float64
	// Horizon optionally overrides cfg.Sim.Horizon.
	Horizon time.Duration
	// Thermal, when non-nil, closes the temperature loop: per-core
	// temperatures integrate the simulated power draw, and the effective
	// budget at each explore boundary becomes min(Budget(t), thermal
	// budget). The governor's horizon should equal the explore interval.
	Thermal *thermal.Governor
	// Fault, when non-nil and enabled, wires a deterministic fault injector
	// between the simulated hardware and the manager: the manager decides on
	// perturbed observations while the simulated physics stay truthful. A
	// nil or all-zero scenario leaves the sample path untouched.
	Fault *fault.Scenario
	// Guard, when non-nil, substitutes the ResilientManager for the plain
	// manager: samples are sanitized, the hard-cap emergency throttle is
	// armed, and dead cores are parked. GuardConfig zero fields select
	// defaults, so &core.GuardConfig{} is a valid setting.
	Guard *core.GuardConfig
}

// Result captures a full run at delta-sim resolution.
type Result struct {
	Combo  workload.Combo
	Policy string

	// DeltaSim is the interval length of the series below.
	DeltaSim time.Duration
	// ChipPowerW[i] is average chip power over delta interval i.
	ChipPowerW []float64
	// CorePowerW[i][c] and CoreInstr[i][c] are per-core series.
	CorePowerW [][]float64
	CoreInstr  [][]float64
	// BudgetW[i] is the budget in force during interval i.
	BudgetW []float64
	// Modes[k] is the vector in force during explore interval k.
	Modes []modes.Vector

	// Elapsed is the simulated wall time (horizon, or first completion).
	Elapsed time.Duration
	// FirstCompleted is the core whose benchmark finished first, or -1.
	FirstCompleted int
	// TotalInstr is aggregate committed instructions; PerCoreInstr splits it.
	TotalInstr   float64
	PerCoreInstr []float64
	// EnergyJ is total chip energy over the run.
	EnergyJ float64
	// TransitionStall is the cumulative synchronized stall time.
	TransitionStall time.Duration
	// OvershootIntervals counts delta intervals whose average chip power
	// exceeded the in-force budget (short excursions corrected at the next
	// explore boundary, §5.5).
	OvershootIntervals int
	// MaxTempC[i] is the hottest core's temperature during delta interval i
	// (only populated when Options.Thermal is set).
	MaxTempC []float64

	// Robustness accounting (§ "Fault model & resilience" in DESIGN.md).
	//
	// OvershootEnergyWs integrates every budget violation over the run, in
	// watt·seconds; WorstOvershootWs is the largest violation accumulated
	// by a single contiguous run of over-budget intervals — the sustained
	// excursion the package's margins must absorb.
	OvershootEnergyWs float64
	WorstOvershootWs  float64
	// EmergencyEntries counts engagements of the hard-cap throttle and
	// EmergencyIntervals the explore intervals spent throttled (guarded
	// runs only).
	EmergencyEntries   int
	EmergencyIntervals int
	// RecoveryLatency is the longest single emergency episode: the time
	// from throttle engagement until normal policy operation resumed.
	RecoveryLatency time.Duration
	// DeadCores lists cores the guarded manager declared dead and parked.
	DeadCores []int
	// SanitizedSamples counts per-core sensor readings the guarded manager
	// rejected or clamped; RescaledIntervals counts decisions where the
	// per-core sensors were rescaled to the chip-level measurement.
	SanitizedSamples  int
	RescaledIntervals int
	// FinalSamples are the interval-average per-core samples of the last
	// (possibly truncated) explore interval — what the manager would have
	// based its next decision on had the run continued.
	FinalSamples []core.Sample
}

// AvgChipPowerW returns the run's average chip power.
func (r *Result) AvgChipPowerW() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.EnergyJ / r.Elapsed.Seconds()
}

// MaxChipPowerW returns the maximum delta-interval chip power.
func (r *Result) MaxChipPowerW() float64 {
	var m float64
	for _, p := range r.ChipPowerW {
		if p > m {
			m = p
		}
	}
	return m
}

// EnvelopePowerW returns the worst-case chip power envelope: the sum of each
// core's maximum observed delta-interval power. Budgets are expressed as
// fractions of this envelope — the power a designer must provision for
// without global management (the "worst-case designs" §8 says dynamic
// management avoids). It exceeds MaxChipPowerW because per-core peaks rarely
// align, mirroring the paper's widening average-vs-peak gap (§1).
func (r *Result) EnvelopePowerW() float64 {
	if len(r.CorePowerW) == 0 {
		return 0
	}
	n := len(r.CorePowerW[0])
	var sum float64
	for c := 0; c < n; c++ {
		var m float64
		for i := range r.CorePowerW {
			if p := r.CorePowerW[i][c]; p > m {
				m = p
			}
		}
		sum += m
	}
	return sum
}

// MemBoundedness derives a [0,1] memory-boundedness score per benchmark in
// the combo: 1 − (whole-program Eff-deepest degradation / frequency cut).
// Frequency-insensitive (memory-bound) programs score near 1.
func MemBoundedness(lib *trace.Library, combo workload.Combo) ([]float64, error) {
	plan := lib.Plan()
	deepest := modes.Mode(plan.NumModes() - 1)
	cut := 1 - plan.FreqScale(deepest)
	out := make([]float64, combo.Cores())
	for i, name := range combo.Benchmarks {
		pr, err := lib.Profile(name)
		if err != nil {
			return nil, err
		}
		_, tT := pr.WholeProgram(modes.Turbo)
		_, tD := pr.WholeProgram(deepest)
		deg := 1 - tT/tD
		s := 1 - deg/cut
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		out[i] = s
	}
	return out, nil
}

// Run simulates the combo under the given options.
func Run(lib *trace.Library, combo workload.Combo, opt Options) (*Result, error) {
	cfg := lib.Config()
	plan := lib.Plan()
	if opt.Policy == nil && opt.Solver != nil {
		opt.Policy = core.SolverPolicy{Solver: opt.Solver}
	}
	if opt.Policy == nil {
		return nil, fmt.Errorf("cmpsim: no policy")
	}
	if opt.Budget == nil {
		return nil, fmt.Errorf("cmpsim: no budget function")
	}
	players, err := lib.Players(combo)
	if err != nil {
		return nil, err
	}
	n := len(players)
	memBound := opt.MemBound
	if memBound == nil {
		memBound, err = MemBoundedness(lib, combo)
		if err != nil {
			return nil, err
		}
	}

	pred := opt.Predictor
	if pred.Plan.NumModes() == 0 {
		pred.Plan = plan
	}
	if pred.ExploreSeconds == 0 {
		pred.ExploreSeconds = cfg.Sim.Explore.Seconds()
	}

	var inj *fault.Injector
	if opt.Fault != nil && opt.Fault.Enabled() {
		inj, err = fault.NewInjector(*opt.Fault, n)
		if err != nil {
			return nil, err
		}
	}
	var mgr *core.Manager
	var rm *core.ResilientManager
	if opt.Guard != nil {
		rm = core.NewResilientManager(plan, opt.Policy, pred, n, *opt.Guard)
	} else {
		mgr = core.NewManager(plan, opt.Policy, pred, n)
	}

	horizon := cfg.Sim.Horizon
	if opt.Horizon > 0 {
		horizon = opt.Horizon
	}
	deltaSec := cfg.Sim.DeltaSim.Seconds()
	deltasPerExplore := cfg.DeltaPerExplore()
	exploreSec := cfg.Sim.Explore.Seconds()

	res := &Result{
		Combo:          combo,
		Policy:         opt.Policy.Name(),
		DeltaSim:       cfg.Sim.DeltaSim,
		FirstCompleted: -1,
		PerCoreInstr:   make([]float64, n),
	}

	// Bootstrap sample: the local monitors report each core's behaviour at
	// Turbo before the first decision.
	current := modes.Uniform(n, modes.Turbo)
	samples := make([]core.Sample, n)
	chipMeasured := 0.0 // the independent chip-level (VRM) power sensor
	for c, pl := range players {
		e, in := pl.Peek(current[c], exploreSec)
		samples[c] = core.Sample{PowerW: e / exploreSec, Instr: in}
		if inj != nil && inj.CoreDead(c, 0) {
			samples[c] = core.Sample{}
		}
		chipMeasured += samples[c].PowerW
	}

	lookahead := func(c int, m modes.Mode) (float64, float64) {
		e, in := players[c].Peek(m, exploreSec)
		return e / exploreSec, in
	}

	now := time.Duration(0)
	done := false
	lastThermalB := math.Inf(1) // last good thermal reading, for sensor death
	for now < horizon && !done {
		budget := opt.Budget(now)
		if math.IsNaN(budget) || budget < 0 {
			return nil, fmt.Errorf("cmpsim: budget function returned %v at t=%v; budgets must be non-negative", budget, now)
		}
		if inj != nil {
			budget = inj.Budget(now, budget)
		}
		if opt.Thermal != nil {
			tb := opt.Thermal.BudgetW()
			if inj != nil && inj.ThermalFailed(now) {
				tb = lastThermalB // a dead sensor repeats its final sample
			} else {
				lastThermalB = tb
			}
			if tb < budget {
				budget = tb
			}
		}
		observed := samples
		if inj != nil {
			observed = inj.ObserveSamples(now, samples)
		}
		var next modes.Vector
		if rm != nil {
			next = rm.Step(budget, chipMeasured, observed, lookahead, memBound)
		} else {
			next = mgr.Step(budget, observed, lookahead, memBound)
		}
		stall := plan.MaxTransitionBetween(current, next)
		// Per-core stall power: the worst-case endpoint of the transition
		// (§5.1: execution halts, CPU power is still consumed).
		stallPower := make([]float64, n)
		for c := range players {
			if players[c].Completed() || (inj != nil && inj.CoreDead(c, now)) {
				continue
			}
			pOld, _ := players[c].Behavior(current[c])
			pNew, _ := players[c].Behavior(next[c])
			if pOld > pNew {
				stallPower[c] = pOld
			} else {
				stallPower[c] = pNew
			}
		}
		current = next
		res.Modes = append(res.Modes, current.Clone())
		res.TransitionStall += stall

		stallLeft := stall.Seconds()
		intervalPower := make([]float64, n)
		intervalInstr := make([]float64, n)
		simmed := 0 // deltas actually simulated; < deltasPerExplore when truncated
		for d := 0; d < deltasPerExplore && now < horizon; d++ {
			simmed++
			rowP := make([]float64, n)
			rowI := make([]float64, n)
			var chip float64
			st := stallLeft
			if st > deltaSec {
				st = deltaSec
			}
			stallLeft -= st
			exec := deltaSec - st
			for c, pl := range players {
				var e, in float64
				if !pl.Completed() && (inj == nil || !inj.CoreDead(c, now)) {
					e = stallPower[c] * st
					if exec > 0 {
						ee, ii := pl.Advance(current[c], exec)
						e += ee
						in = ii
					}
				}
				rowP[c] = e / deltaSec
				rowI[c] = in
				chip += rowP[c]
				intervalPower[c] += rowP[c]
				intervalInstr[c] += in
				res.PerCoreInstr[c] += in
				res.TotalInstr += in
				res.EnergyJ += e
			}
			if opt.Thermal != nil {
				opt.Thermal.State().Step(rowP, cfg.Sim.DeltaSim)
				res.MaxTempC = append(res.MaxTempC, opt.Thermal.State().MaxTemp())
			}
			res.CorePowerW = append(res.CorePowerW, rowP)
			res.CoreInstr = append(res.CoreInstr, rowI)
			res.ChipPowerW = append(res.ChipPowerW, chip)
			res.BudgetW = append(res.BudgetW, budget)
			if chip > budget*(1+1e-9) {
				res.OvershootIntervals++
			}
			now += cfg.Sim.DeltaSim
			// §5.1 termination: stop when the first benchmark completes.
			for c, pl := range players {
				if pl.Completed() {
					res.FirstCompleted = c
					done = true
				}
			}
			if done {
				break
			}
		}
		// Samples for the next decision: averages over the explore interval.
		// A truncated interval (horizon hit or first-completion exit) must
		// average over the deltas actually simulated, not the nominal count.
		den := float64(simmed)
		if den == 0 {
			den = 1
		}
		chipMeasured = 0
		for c := range players {
			samples[c] = core.Sample{
				PowerW: intervalPower[c] / den,
				Instr:  intervalInstr[c],
				Done:   players[c].Completed(),
			}
			chipMeasured += samples[c].PowerW
		}
	}
	res.Elapsed = now
	res.FinalSamples = append([]core.Sample(nil), samples...)
	res.OvershootEnergyWs = metrics.OvershootEnergyWs(res.ChipPowerW, res.BudgetW, deltaSec)
	res.WorstOvershootWs = metrics.WorstSustainedOvershootWs(res.ChipPowerW, res.BudgetW, deltaSec)
	if rm != nil {
		st := rm.Stats()
		res.EmergencyEntries = st.EmergencyEntries
		res.EmergencyIntervals = st.EmergencyIntervals
		res.RecoveryLatency = time.Duration(st.LongestEmergency) * cfg.Sim.Explore
		res.DeadCores = st.DeadCores
		res.SanitizedSamples = st.SanitizedSamples + st.ClampedSamples
		res.RescaledIntervals = st.RescaledIntervals
	}
	return res, nil
}

// FixedBudget returns a constant budget function.
func FixedBudget(w float64) func(time.Duration) float64 {
	return func(time.Duration) float64 { return w }
}

// StepBudget returns a budget that switches from w1 to w2 at time t.
func StepBudget(w1, w2 float64, t time.Duration) func(time.Duration) float64 {
	return func(now time.Duration) float64 {
		if now < t {
			return w1
		}
		return w2
	}
}

// Unlimited returns an effectively infinite budget (all-Turbo baseline).
func Unlimited() func(time.Duration) float64 {
	return FixedBudget(1e12)
}

// Baseline runs the combo with every core pinned at Turbo and no budget;
// experiments use it as the 100%-power, 100%-performance reference.
func Baseline(lib *trace.Library, combo workload.Combo) (*Result, error) {
	n := combo.Cores()
	return Run(lib, combo, Options{
		Budget: Unlimited(),
		Policy: core.Fixed{Vector: modes.Uniform(n, modes.Turbo)},
	})
}
