// Package cmpsim is the trace-based CMP analysis tool of §3.1: it progresses
// per-benchmark, per-mode characterizations (trace.Player) simultaneously on
// N cores, updates statistics every delta-sim interval (50 µs), and lets the
// global power manager (internal/core) reassign per-core modes at every
// explore interval (500 µs), charging DVFS transition overheads as
// synchronized stalls (§5.1).
//
// The control loop itself lives in internal/engine; this package supplies
// the trace-player Substrate and the option plumbing, so the same loop —
// middleware chain, guard, thermal integration, accounting — also drives the
// cycle-level chip in internal/fullsim.
package cmpsim

import (
	"fmt"
	"time"

	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/obs"
	"gpm/internal/solver"
	"gpm/internal/thermal"
	"gpm/internal/trace"
	"gpm/internal/workload"
)

// Options configures one CMP simulation run.
type Options struct {
	// Budget returns the chip power budget in watts at simulated time t.
	// Time-varying budgets model events like Fig 6's cooling failure.
	Budget func(t time.Duration) float64
	// Policy decides mode vectors at explore boundaries.
	Policy core.Policy
	// Solver, when non-nil and Policy is nil, runs the simulation under a
	// MaxBIPS-objective policy backed by this internal/solver allocation
	// solver (equivalent to Policy: core.SolverPolicy{Solver: Solver}).
	Solver solver.Solver
	// Predictor builds the §5.5 matrices. Zero value fields are filled from
	// the library's plan and config.
	Predictor core.Predictor
	// MemBound optionally overrides the per-core memory-boundedness ranking;
	// when nil it is derived from the profiles.
	MemBound []float64
	// Horizon optionally overrides cfg.Sim.Horizon.
	Horizon time.Duration
	// Thermal, when non-nil, closes the temperature loop: per-core
	// temperatures integrate the simulated power draw, and the effective
	// budget at each explore boundary becomes min(Budget(t), thermal
	// budget). The governor's horizon should equal the explore interval.
	Thermal *thermal.Governor
	// Fault, when non-nil and enabled, wires a deterministic fault injector
	// between the simulated hardware and the manager: the manager decides on
	// perturbed observations while the simulated physics stay truthful. A
	// nil or all-zero scenario leaves the sample path untouched.
	Fault *fault.Scenario
	// Guard, when non-nil, substitutes the ResilientManager for the plain
	// manager: samples are sanitized, the hard-cap emergency throttle is
	// armed, and dead cores are parked. GuardConfig zero fields select
	// defaults, so &core.GuardConfig{} is a valid setting.
	Guard *core.GuardConfig
	// History, when non-nil, wraps the run's predictor in a history-table
	// phase predictor (core.HistoryPredictor): periodic per-core phase
	// patterns sharpen the BIPS forecast, anything else falls back to
	// last-value. Zero fields select defaults, so &core.HistoryConfig{} is a
	// valid setting. Incompatible with Replay — recorded vectors actuate
	// verbatim, so there is no predictor to improve.
	History *core.HistoryConfig
	// Observer, when non-nil, receives one structured decision trace per
	// explore interval and the Result at run end (obs.Writer streams JSONL,
	// obs.Collector keeps the trace in memory). Nil is the zero-overhead
	// path.
	Observer engine.Observer
	// Supervisor, when non-nil, arms the engine's decision supervisor: the
	// configured decider runs under a deadline/node budget with a graceful
	// degradation ladder behind it, and every actuated vector passes a
	// budget-conformance gate. Zero-value fields select defaults (the
	// Predictor defaults to this run's predictor). Incompatible with Replay —
	// replayed vectors must actuate verbatim.
	Supervisor *engine.SupervisorConfig
	// Replay, when non-nil, re-drives the simulation from a recorded trace:
	// the recorded mode vectors and budgets replace the policy and the
	// budget middleware, reproducing the recording run's Result
	// bit-identically. Policy and Budget become optional; Horizon and Fault
	// default from the trace manifest when unset, so a trace with a manifest
	// replays self-contained. Thermal must be re-supplied by the caller when
	// the recording run had a governor (its parameters are not in the
	// trace).
	Replay *obs.Trace
}

// Result captures a full run at delta-sim resolution. It is the engine's
// substrate-agnostic result type: fullsim managed runs return the same type.
type Result = engine.Result

// MemBoundedness derives a [0,1] memory-boundedness score per benchmark in
// the combo: 1 − (whole-program Eff-deepest degradation / frequency cut).
// Frequency-insensitive (memory-bound) programs score near 1.
func MemBoundedness(lib *trace.Library, combo workload.Combo) ([]float64, error) {
	plan := lib.Plan()
	deepest := modes.Mode(plan.NumModes() - 1)
	cut := 1 - plan.FreqScale(deepest)
	out := make([]float64, combo.Cores())
	for i, name := range combo.Benchmarks {
		pr, err := lib.Profile(name)
		if err != nil {
			return nil, err
		}
		_, tT := pr.WholeProgram(modes.Turbo)
		_, tD := pr.WholeProgram(deepest)
		deg := 1 - tT/tD
		s := 1 - deg/cut
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		out[i] = s
	}
	return out, nil
}

// substrate adapts the trace players to the engine's Substrate interface.
type substrate struct {
	players    []*trace.Player
	exploreSec float64
	memBound   []float64
}

func (s *substrate) NumCores() int { return len(s.players) }

func (s *substrate) Bootstrap() []core.Sample {
	out := make([]core.Sample, len(s.players))
	for c, pl := range s.players {
		e, in := pl.Peek(modes.Turbo, s.exploreSec)
		out[c] = core.Sample{PowerW: e / s.exploreSec, Instr: in}
	}
	return out
}

func (s *substrate) ModePowerW(c int, m modes.Mode) float64 {
	p, _ := s.players[c].Behavior(m)
	return p
}

func (s *substrate) DeltaStep(v modes.Vector, execSec float64, live []bool, energyJ, instr []float64) {
	for c, pl := range s.players {
		if live[c] {
			energyJ[c], instr[c] = pl.Advance(v[c], execSec)
		}
	}
}

func (s *substrate) Finished(c int) bool { return s.players[c].Completed() }

func (s *substrate) Lookahead() func(c int, m modes.Mode) (float64, float64) {
	return func(c int, m modes.Mode) (float64, float64) {
		e, in := s.players[c].Peek(m, s.exploreSec)
		return e / s.exploreSec, in
	}
}

func (s *substrate) MemBound() []float64 { return s.memBound }

// Run simulates the combo under the given options.
func Run(lib *trace.Library, combo workload.Combo, opt Options) (*Result, error) {
	sub, eopt, err := build(lib, combo, opt)
	if err != nil {
		return nil, err
	}
	return engine.Run(sub, eopt)
}

// NewLoop resolves the options exactly as Run does but returns the steppable
// engine loop instead of driving it to completion. The fleet tier steps one
// loop per chip from a shared event clock, swapping each chip's budget
// function target between steps. Callers own the loop: Finish (or Close on
// an abandoned loop) is theirs to call.
func NewLoop(lib *trace.Library, combo workload.Combo, opt Options) (*engine.Loop, error) {
	sub, eopt, err := build(lib, combo, opt)
	if err != nil {
		return nil, err
	}
	return engine.New(sub, eopt)
}

// build resolves Options into the substrate and engine options shared by Run
// and NewLoop.
func build(lib *trace.Library, combo workload.Combo, opt Options) (engine.Substrate, engine.Options, error) {
	cfg := lib.Config()
	plan := lib.Plan()
	replaying := opt.Replay != nil
	if opt.Horizon < 0 {
		return nil, engine.Options{}, &engine.OptionError{Component: "cmpsim", Field: "Horizon", Value: opt.Horizon, Reason: "must be non-negative"}
	}
	if opt.Guard != nil {
		if err := opt.Guard.Validate(); err != nil {
			return nil, engine.Options{}, &engine.OptionError{Component: "cmpsim", Field: "Guard", Value: "", Reason: err.Error()}
		}
	}
	if replaying && opt.Supervisor != nil {
		return nil, engine.Options{}, &engine.OptionError{Component: "cmpsim", Field: "Supervisor", Value: "non-nil",
			Reason: "incompatible with Replay: recorded vectors must actuate verbatim"}
	}
	if opt.History != nil {
		if replaying {
			return nil, engine.Options{}, &engine.OptionError{Component: "cmpsim", Field: "History", Value: "non-nil",
				Reason: "incompatible with Replay: recorded vectors must actuate verbatim"}
		}
		if err := opt.History.Validate(); err != nil {
			return nil, engine.Options{}, &engine.OptionError{Component: "cmpsim", Field: "History", Value: "", Reason: err.Error()}
		}
	}
	if opt.Policy == nil && opt.Solver != nil {
		sol := opt.Solver
		// Under a supervisor deadline the solver itself becomes bounded: half
		// the supervisor's wall budget, so a cooperative abort normally lands
		// before the watchdog has to abandon the goroutine.
		if s := opt.Supervisor; s != nil && (s.Deadline > 0 || s.NodeBudget > 0) {
			sol = solver.WithDeadline(sol, s.Deadline/2, s.NodeBudget)
		}
		// Session-capable: the engine loop adopting this policy creates a
		// warm-start solver session and owns its lifecycle. Result-invariant
		// vs the cold value policy (the goldens pin it).
		opt.Policy = core.NewSolverPolicy(sol)
	}
	if opt.Policy == nil && !replaying {
		return nil, engine.Options{}, fmt.Errorf("cmpsim: no policy")
	}
	if opt.Budget == nil && !replaying {
		return nil, engine.Options{}, fmt.Errorf("cmpsim: no budget function")
	}
	if replaying {
		// A manifest makes the trace self-contained: the recording run's
		// fault scenario and horizon apply unless the caller overrides them.
		if m := opt.Replay.Manifest; m != nil {
			if opt.Fault == nil && m.FaultSpec != "" {
				sc, err := fault.ParseScenario(m.FaultSpec)
				if err != nil {
					return nil, engine.Options{}, fmt.Errorf("cmpsim: replay: manifest fault spec: %w", err)
				}
				opt.Fault = &sc
			}
			if opt.Horizon == 0 && m.HorizonNs > 0 {
				opt.Horizon = time.Duration(m.HorizonNs)
			}
		}
	}
	players, err := lib.Players(combo)
	if err != nil {
		return nil, engine.Options{}, err
	}
	n := len(players)
	memBound := opt.MemBound
	if memBound == nil {
		memBound, err = MemBoundedness(lib, combo)
		if err != nil {
			return nil, engine.Options{}, err
		}
	}

	pred := opt.Predictor
	if pred.Plan.NumModes() == 0 {
		pred.Plan = plan
	}
	if pred.ExploreSeconds == 0 {
		pred.ExploreSeconds = cfg.Sim.Explore.Seconds()
	}

	var inj *fault.Injector
	if opt.Fault != nil && opt.Fault.Enabled() {
		inj, err = fault.NewInjector(*opt.Fault, n)
		if err != nil {
			return nil, engine.Options{}, err
		}
	}

	horizon := cfg.Sim.Horizon
	if opt.Horizon > 0 {
		horizon = opt.Horizon
	}

	sub := &substrate{
		players:    players,
		exploreSec: cfg.Sim.Explore.Seconds(),
		memBound:   memBound,
	}
	eopt := engine.Options{
		Plan:             plan,
		Budget:           opt.Budget,
		DeltaSim:         cfg.Sim.DeltaSim,
		DeltasPerExplore: cfg.DeltaPerExplore(),
		Explore:          cfg.Sim.Explore,
		Horizon:          horizon,
		Thermal:          opt.Thermal,
		Injector:         inj,
		Observer:         opt.Observer,
		ErrPrefix:        "cmpsim",
		Combo:            combo,
	}
	if replaying {
		dec, err := obs.NewReplayDecider(opt.Replay, cfg.Sim.Explore)
		if err != nil {
			return nil, engine.Options{}, err
		}
		eopt.Decider = dec
		// The recorded budgets already fold the whole budget middleware
		// (source, fault spikes, thermal clamp); replay them verbatim. The
		// thermal governor still integrates for the MaxTempC series, and the
		// injector still kills cores — those are physics, not decisions.
		eopt.Stages = []engine.Stage{obs.NewReplayBudget(opt.Replay)}
		if eopt.Budget == nil {
			eopt.Budget = func(time.Duration) float64 { return 0 } // unused: Stages override the chain
		}
		eopt.PolicyName = opt.Replay.PolicyName()
	} else {
		if opt.History != nil {
			eopt.Decider = engine.NewDeciderWith(plan, opt.Policy, core.NewHistoryPredictor(pred, *opt.History), n, opt.Guard)
		} else {
			eopt.Decider = engine.NewDecider(plan, opt.Policy, pred, n, opt.Guard)
		}
		eopt.PolicyName = opt.Policy.Name()
		if opt.Supervisor != nil {
			sup := *opt.Supervisor
			if sup.Predictor.Plan.NumModes() == 0 {
				sup.Predictor = pred
			}
			eopt.Supervisor = &sup
		}
	}
	return sub, eopt, nil
}

// FixedBudget returns a constant budget function.
func FixedBudget(w float64) func(time.Duration) float64 {
	return func(time.Duration) float64 { return w }
}

// StepBudget returns a budget that switches from w1 to w2 at time t.
func StepBudget(w1, w2 float64, t time.Duration) func(time.Duration) float64 {
	return func(now time.Duration) float64 {
		if now < t {
			return w1
		}
		return w2
	}
}

// Unlimited returns an effectively infinite budget (all-Turbo baseline).
func Unlimited() func(time.Duration) float64 {
	return FixedBudget(1e12)
}

// Baseline runs the combo with every core pinned at Turbo and no budget;
// experiments use it as the 100%-power, 100%-performance reference.
func Baseline(lib *trace.Library, combo workload.Combo) (*Result, error) {
	n := combo.Cores()
	return Run(lib, combo, Options{
		Budget: Unlimited(),
		Policy: core.Fixed{Vector: modes.Uniform(n, modes.Turbo)},
	})
}
