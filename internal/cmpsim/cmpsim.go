// Package cmpsim is the trace-based CMP analysis tool of §3.1: it progresses
// per-benchmark, per-mode characterizations (trace.Player) simultaneously on
// N cores, updates statistics every delta-sim interval (50 µs), and lets the
// global power manager (internal/core) reassign per-core modes at every
// explore interval (500 µs), charging DVFS transition overheads as
// synchronized stalls (§5.1).
package cmpsim

import (
	"fmt"
	"time"

	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/thermal"
	"gpm/internal/trace"
	"gpm/internal/workload"
)

// Options configures one CMP simulation run.
type Options struct {
	// Budget returns the chip power budget in watts at simulated time t.
	// Time-varying budgets model events like Fig 6's cooling failure.
	Budget func(t time.Duration) float64
	// Policy decides mode vectors at explore boundaries.
	Policy core.Policy
	// Predictor builds the §5.5 matrices. Zero value fields are filled from
	// the library's plan and config.
	Predictor core.Predictor
	// MemBound optionally overrides the per-core memory-boundedness ranking;
	// when nil it is derived from the profiles.
	MemBound []float64
	// Horizon optionally overrides cfg.Sim.Horizon.
	Horizon time.Duration
	// Thermal, when non-nil, closes the temperature loop: per-core
	// temperatures integrate the simulated power draw, and the effective
	// budget at each explore boundary becomes min(Budget(t), thermal
	// budget). The governor's horizon should equal the explore interval.
	Thermal *thermal.Governor
}

// Result captures a full run at delta-sim resolution.
type Result struct {
	Combo  workload.Combo
	Policy string

	// DeltaSim is the interval length of the series below.
	DeltaSim time.Duration
	// ChipPowerW[i] is average chip power over delta interval i.
	ChipPowerW []float64
	// CorePowerW[i][c] and CoreInstr[i][c] are per-core series.
	CorePowerW [][]float64
	CoreInstr  [][]float64
	// BudgetW[i] is the budget in force during interval i.
	BudgetW []float64
	// Modes[k] is the vector in force during explore interval k.
	Modes []modes.Vector

	// Elapsed is the simulated wall time (horizon, or first completion).
	Elapsed time.Duration
	// FirstCompleted is the core whose benchmark finished first, or -1.
	FirstCompleted int
	// TotalInstr is aggregate committed instructions; PerCoreInstr splits it.
	TotalInstr   float64
	PerCoreInstr []float64
	// EnergyJ is total chip energy over the run.
	EnergyJ float64
	// TransitionStall is the cumulative synchronized stall time.
	TransitionStall time.Duration
	// OvershootIntervals counts delta intervals whose average chip power
	// exceeded the in-force budget (short excursions corrected at the next
	// explore boundary, §5.5).
	OvershootIntervals int
	// MaxTempC[i] is the hottest core's temperature during delta interval i
	// (only populated when Options.Thermal is set).
	MaxTempC []float64
}

// AvgChipPowerW returns the run's average chip power.
func (r *Result) AvgChipPowerW() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.EnergyJ / r.Elapsed.Seconds()
}

// MaxChipPowerW returns the maximum delta-interval chip power.
func (r *Result) MaxChipPowerW() float64 {
	var m float64
	for _, p := range r.ChipPowerW {
		if p > m {
			m = p
		}
	}
	return m
}

// EnvelopePowerW returns the worst-case chip power envelope: the sum of each
// core's maximum observed delta-interval power. Budgets are expressed as
// fractions of this envelope — the power a designer must provision for
// without global management (the "worst-case designs" §8 says dynamic
// management avoids). It exceeds MaxChipPowerW because per-core peaks rarely
// align, mirroring the paper's widening average-vs-peak gap (§1).
func (r *Result) EnvelopePowerW() float64 {
	if len(r.CorePowerW) == 0 {
		return 0
	}
	n := len(r.CorePowerW[0])
	var sum float64
	for c := 0; c < n; c++ {
		var m float64
		for i := range r.CorePowerW {
			if p := r.CorePowerW[i][c]; p > m {
				m = p
			}
		}
		sum += m
	}
	return sum
}

// MemBoundedness derives a [0,1] memory-boundedness score per benchmark in
// the combo: 1 − (whole-program Eff-deepest degradation / frequency cut).
// Frequency-insensitive (memory-bound) programs score near 1.
func MemBoundedness(lib *trace.Library, combo workload.Combo) ([]float64, error) {
	plan := lib.Plan()
	deepest := modes.Mode(plan.NumModes() - 1)
	cut := 1 - plan.FreqScale(deepest)
	out := make([]float64, combo.Cores())
	for i, name := range combo.Benchmarks {
		pr, err := lib.Profile(name)
		if err != nil {
			return nil, err
		}
		_, tT := pr.WholeProgram(modes.Turbo)
		_, tD := pr.WholeProgram(deepest)
		deg := 1 - tT/tD
		s := 1 - deg/cut
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		out[i] = s
	}
	return out, nil
}

// Run simulates the combo under the given options.
func Run(lib *trace.Library, combo workload.Combo, opt Options) (*Result, error) {
	cfg := lib.Config()
	plan := lib.Plan()
	if opt.Policy == nil {
		return nil, fmt.Errorf("cmpsim: no policy")
	}
	if opt.Budget == nil {
		return nil, fmt.Errorf("cmpsim: no budget function")
	}
	players, err := lib.Players(combo)
	if err != nil {
		return nil, err
	}
	n := len(players)
	memBound := opt.MemBound
	if memBound == nil {
		memBound, err = MemBoundedness(lib, combo)
		if err != nil {
			return nil, err
		}
	}

	pred := opt.Predictor
	if pred.Plan.NumModes() == 0 {
		pred.Plan = plan
	}
	if pred.ExploreSeconds == 0 {
		pred.ExploreSeconds = cfg.Sim.Explore.Seconds()
	}
	mgr := core.NewManager(plan, opt.Policy, pred, n)

	horizon := cfg.Sim.Horizon
	if opt.Horizon > 0 {
		horizon = opt.Horizon
	}
	deltaSec := cfg.Sim.DeltaSim.Seconds()
	deltasPerExplore := cfg.DeltaPerExplore()
	exploreSec := cfg.Sim.Explore.Seconds()

	res := &Result{
		Combo:          combo,
		Policy:         opt.Policy.Name(),
		DeltaSim:       cfg.Sim.DeltaSim,
		FirstCompleted: -1,
		PerCoreInstr:   make([]float64, n),
	}

	// Bootstrap sample: the local monitors report each core's behaviour at
	// Turbo before the first decision.
	current := modes.Uniform(n, modes.Turbo)
	samples := make([]core.Sample, n)
	for c, pl := range players {
		e, in := pl.Peek(current[c], exploreSec)
		samples[c] = core.Sample{PowerW: e / exploreSec, Instr: in}
	}

	lookahead := func(c int, m modes.Mode) (float64, float64) {
		e, in := players[c].Peek(m, exploreSec)
		return e / exploreSec, in
	}

	now := time.Duration(0)
	done := false
	for now < horizon && !done {
		budget := opt.Budget(now)
		if opt.Thermal != nil {
			if tb := opt.Thermal.BudgetW(); tb < budget {
				budget = tb
			}
		}
		next := mgr.Step(budget, samples, lookahead, memBound)
		stall := plan.MaxTransitionBetween(current, next)
		// Per-core stall power: the worst-case endpoint of the transition
		// (§5.1: execution halts, CPU power is still consumed).
		stallPower := make([]float64, n)
		for c := range players {
			if players[c].Completed() {
				continue
			}
			pOld, _ := players[c].Behavior(current[c])
			pNew, _ := players[c].Behavior(next[c])
			if pOld > pNew {
				stallPower[c] = pOld
			} else {
				stallPower[c] = pNew
			}
		}
		current = next
		res.Modes = append(res.Modes, current.Clone())
		res.TransitionStall += stall

		stallLeft := stall.Seconds()
		intervalPower := make([]float64, n)
		intervalInstr := make([]float64, n)
		for d := 0; d < deltasPerExplore && now < horizon; d++ {
			rowP := make([]float64, n)
			rowI := make([]float64, n)
			var chip float64
			st := stallLeft
			if st > deltaSec {
				st = deltaSec
			}
			stallLeft -= st
			exec := deltaSec - st
			for c, pl := range players {
				var e, in float64
				if !pl.Completed() {
					e = stallPower[c] * st
					if exec > 0 {
						ee, ii := pl.Advance(current[c], exec)
						e += ee
						in = ii
					}
				}
				rowP[c] = e / deltaSec
				rowI[c] = in
				chip += rowP[c]
				intervalPower[c] += rowP[c]
				intervalInstr[c] += in
				res.PerCoreInstr[c] += in
				res.TotalInstr += in
				res.EnergyJ += e
			}
			if opt.Thermal != nil {
				opt.Thermal.State().Step(rowP, cfg.Sim.DeltaSim)
				res.MaxTempC = append(res.MaxTempC, opt.Thermal.State().MaxTemp())
			}
			res.CorePowerW = append(res.CorePowerW, rowP)
			res.CoreInstr = append(res.CoreInstr, rowI)
			res.ChipPowerW = append(res.ChipPowerW, chip)
			res.BudgetW = append(res.BudgetW, budget)
			if chip > budget*(1+1e-9) {
				res.OvershootIntervals++
			}
			now += cfg.Sim.DeltaSim
			// §5.1 termination: stop when the first benchmark completes.
			for c, pl := range players {
				if pl.Completed() {
					res.FirstCompleted = c
					done = true
				}
			}
			if done {
				break
			}
		}
		// Samples for the next decision: averages over the explore interval.
		for c := range players {
			samples[c] = core.Sample{
				PowerW: intervalPower[c] / float64(deltasPerExplore),
				Instr:  intervalInstr[c],
				Done:   players[c].Completed(),
			}
		}
	}
	res.Elapsed = now
	return res, nil
}

// FixedBudget returns a constant budget function.
func FixedBudget(w float64) func(time.Duration) float64 {
	return func(time.Duration) float64 { return w }
}

// StepBudget returns a budget that switches from w1 to w2 at time t.
func StepBudget(w1, w2 float64, t time.Duration) func(time.Duration) float64 {
	return func(now time.Duration) float64 {
		if now < t {
			return w1
		}
		return w2
	}
}

// Unlimited returns an effectively infinite budget (all-Turbo baseline).
func Unlimited() func(time.Duration) float64 {
	return FixedBudget(1e12)
}

// Baseline runs the combo with every core pinned at Turbo and no budget;
// experiments use it as the 100%-power, 100%-performance reference.
func Baseline(lib *trace.Library, combo workload.Combo) (*Result, error) {
	n := combo.Cores()
	return Run(lib, combo, Options{
		Budget: Unlimited(),
		Policy: core.Fixed{Vector: modes.Uniform(n, modes.Turbo)},
	})
}
