package cmpsim

import (
	"errors"
	"math"
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/obs"
)

// TestOptionsValidation is the table-driven typed-error check for the
// cmpsim front end: misconfiguration fails loudly as *engine.OptionError
// naming the offending field, before the substrate is touched.
func TestOptionsValidation(t *testing.T) {
	lib := testLib(t, 4)
	good := func() Options {
		return Options{Budget: FixedBudget(70), Policy: core.MaxBIPS{}, Horizon: time.Millisecond}
	}
	cases := []struct {
		name  string
		mut   func(*Options)
		field string
	}{
		{"negative horizon", func(o *Options) { o.Horizon = -time.Millisecond }, "Horizon"},
		{"NaN guard", func(o *Options) { o.Guard = &core.GuardConfig{OvershootFrac: math.NaN()} }, "Guard"},
		{"supervisor with replay", func(o *Options) {
			o.Supervisor = &engine.SupervisorConfig{}
			o.Replay = &obs.Trace{Records: []obs.Record{{Vector: []int{0, 0, 0, 0}, BudgetW: 70}}}
		}, "Supervisor"},
		{"negative supervisor deadline", func(o *Options) {
			o.Supervisor = &engine.SupervisorConfig{Deadline: -time.Microsecond}
		}, "Supervisor.Deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := good()
			tc.mut(&opt)
			_, err := Run(lib, fourWay(), opt)
			if err == nil {
				t.Fatal("accepted")
			}
			var oe *engine.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %T (%v) is not *engine.OptionError", err, err)
			}
			if oe.Field != tc.field {
				t.Fatalf("rejected field %q, want %q", oe.Field, tc.field)
			}
		})
	}
}

// TestSupervisedRunCleanPathIdentical pins front-end transparency: a
// supervised cmpsim run whose every decision passes the conformance gate is
// bit-identical to the unsupervised run — same Result fingerprint — and
// records an all-rung-0 ladder.
func TestSupervisedRunCleanPathIdentical(t *testing.T) {
	lib := testLib(t, 4)
	opt := Options{Budget: FixedBudget(70), Policy: core.MaxBIPS{}, Horizon: 4 * time.Millisecond}
	plain, err := Run(lib, fourWay(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Supervisor = &engine.SupervisorConfig{}
	sup, err := Run(lib, fourWay(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := obs.ResultFingerprint(plain), obs.ResultFingerprint(sup); a != b {
		t.Fatalf("supervised clean run diverged: %#x vs %#x", b, a)
	}
	if sup.Obs.SupervisorRungs[0] != sup.Obs.Decisions || sup.Obs.DegradedDecisions != 0 {
		t.Fatalf("clean run left rung 0: %+v", sup.Obs)
	}
}
