package experiment

import (
	"fmt"
	"time"

	"gpm/internal/calib"
	"gpm/internal/cmpsim"
	"gpm/internal/core"
	"gpm/internal/obs"
	"gpm/internal/report"
	"gpm/internal/workload"
)

// ---------------------------------------------------------------------------
// Fidelity experiments. PR1-8 grew decisions (policies, solvers, guard,
// supervisor) and substrates (trace, cycle-level, fleet); this file closes
// the loop on how *accurate* those decisions' inputs were. CalibrationSweep
// scores the §5.5 predictor against what each substrate then actually did,
// per policy × budget, with and without the history-table phase predictor;
// CounterfactualReplay re-drives one recorded run's telemetry through
// alternate policies and a true-telemetry oracle, turning the paper's
// "MaxBIPS trails the oracle because prediction errs" claim into a measured
// per-interval regret table.
// ---------------------------------------------------------------------------

// CalibrationCell is one policy × budget calibration: the same management
// problem scored on both substrates, under last-value and history prediction.
type CalibrationCell struct {
	Policy     string  `json:"policy"`
	BudgetFrac float64 `json:"budget_frac"`
	// Cmp/Full score the substrate's own trace with the env's last-value
	// §5.5 predictor; the History variants re-score the identical trace
	// through a fresh history-table phase predictor, so (MAPE − HistoryMAPE)
	// is exactly the value of phase prediction on that workload.
	Cmp         *calib.Score `json:"cmp"`
	CmpHistory  *calib.Score `json:"cmp_history"`
	Full        *calib.Score `json:"full"`
	FullHistory *calib.Score `json:"full_history"`
	// Cross scores the trace substrate's per-interval telemetry against the
	// cycle-level chip's for the same problem.
	Cross *calib.CrossScore `json:"cross"`
}

// CalibrationResult is the full sweep.
type CalibrationResult struct {
	ComboID   string             `json:"combo"`
	Intervals int                `json:"intervals"`
	History   core.HistoryConfig `json:"history"`
	Cells     []CalibrationCell  `json:"cells"`
}

// CalibrationSweep records matched cmpsim/fullsim runs for every policy ×
// budget cell and scores predicted-vs-actual per-interval chip power and
// throughput on both, with the env's last-value predictor and with a fresh
// history-table phase predictor per trace. A nil policies slice selects
// CrossSubstratePolicies; nil budgetFracs selects e.Budgets.
func (e *Env) CalibrationSweep(combo workload.Combo, budgetFracs []float64, intervals int, policies []core.Policy, history core.HistoryConfig) (*CalibrationResult, error) {
	res, _, err := e.CalibrationSweepWithState(combo, budgetFracs, intervals, policies, history, nil)
	return res, err
}

// CalibrationSweepWithState is CalibrationSweep plus history-state
// persistence: a non-nil prime is imported into every history-predictor lane
// before scoring (so the sweep measures the value of carried-over training),
// and the returned state is the trained tables from the deterministic
// reference lane — cell 0's cmpsim trace (first policy × first budget).
// With prime nil, every lane starts cold and the sweep is bit-identical to
// CalibrationSweep (the calibration goldens pin it).
func (e *Env) CalibrationSweepWithState(combo workload.Combo, budgetFracs []float64, intervals int, policies []core.Policy, history core.HistoryConfig, prime *core.HistoryState) (*CalibrationResult, *core.HistoryState, error) {
	if policies == nil {
		policies = CrossSubstratePolicies()
	}
	if budgetFracs == nil {
		budgetFracs = e.Budgets
	}
	if err := history.Validate(); err != nil {
		return nil, nil, err
	}
	out := &CalibrationResult{ComboID: combo.ID, Intervals: intervals, History: history}
	cells := make([]CalibrationCell, len(policies)*len(budgetFracs))
	var trained *core.HistoryState // written only by the i==0 worker
	err := forEach(e.workers(), len(cells), func(i int) error {
		pol := policies[i/len(budgetFracs)]
		frac := budgetFracs[i%len(budgetFracs)]
		cmpTrace, fullTrace, err := e.CrossSubstrateTraced(combo, pol, frac, intervals)
		if err != nil {
			return err
		}
		cell := CalibrationCell{Policy: pol.Name(), BudgetFrac: frac}
		score := func(t *obs.Trace, withHistory bool) (*calib.Score, error) {
			var pred core.MatrixPredictor = e.Predictor()
			if withHistory {
				hp := core.NewHistoryPredictor(e.Predictor(), history)
				if prime != nil {
					if err := hp.ImportState(prime); err != nil {
						return nil, err
					}
				}
				pred = hp
				s, err := calib.ScoreTrace(t, e.Plan, pred)
				if err == nil && i == 0 && t == cmpTrace {
					trained = hp.ExportState()
				}
				return s, err
			}
			return calib.ScoreTrace(t, e.Plan, pred)
		}
		if cell.Cmp, err = score(cmpTrace, false); err != nil {
			return err
		}
		if cell.CmpHistory, err = score(cmpTrace, true); err != nil {
			return err
		}
		if cell.Full, err = score(fullTrace, false); err != nil {
			return err
		}
		if cell.FullHistory, err = score(fullTrace, true); err != nil {
			return err
		}
		if cell.Cross, err = calib.CrossFit(cmpTrace, fullTrace); err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	out.Cells = cells
	return out, trained, nil
}

// Table renders the sweep: per cell, power/throughput MAPE and Pearson r on
// both substrates, the history predictor's MAPE, and cross-substrate
// agreement.
func (r *CalibrationResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Predictor calibration — %s, %d intervals", r.ComboID, r.Intervals),
		"policy", "budget", "cmp pwr MAPE", "cmp bips MAPE", "hist bips MAPE", "cmp bips r",
		"full pwr MAPE", "full bips MAPE", "hist bips MAPE", "cross bips MAPE")
	pct := func(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
	rstr := func(f calib.Fit) string {
		if !f.RDefined {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", f.R)
	}
	for _, c := range r.Cells {
		t.AddRow(c.Policy, fmt.Sprintf("%.0f%%", c.BudgetFrac*100),
			pct(c.Cmp.Power.MAPE), pct(c.Cmp.Instr.MAPE), pct(c.CmpHistory.Instr.MAPE), rstr(c.Cmp.Instr),
			pct(c.Full.Power.MAPE), pct(c.Full.Instr.MAPE), pct(c.FullHistory.Instr.MAPE), pct(c.Cross.Instr.MAPE))
	}
	return t
}

// Fingerprint folds every cell's score fingerprints into one golden value.
func (r *CalibrationResult) Fingerprint() uint64 {
	h := uint64(14695981039346656037) // FNV-64a offset basis
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	for _, c := range r.Cells {
		mix(calib.ScoreFingerprint(c.Cmp))
		mix(calib.ScoreFingerprint(c.CmpHistory))
		mix(calib.ScoreFingerprint(c.Full))
		mix(calib.ScoreFingerprint(c.FullHistory))
	}
	return h
}

// RegretRow is one counterfactual policy replayed against a recorded run.
type RegretRow struct {
	Policy string              `json:"policy"`
	Replay *calib.ReplayResult `json:"replay"`
}

// RegretResult is the full counterfactual replay report.
type RegretResult struct {
	ComboID        string      `json:"combo"`
	RecordedPolicy string      `json:"recorded_policy"`
	BudgetFrac     float64     `json:"budget_frac"`
	BudgetW        float64     `json:"budget_w"`
	Intervals      int         `json:"intervals"`
	Rows           []RegretRow `json:"rows"`
}

// CounterfactualReplay records one cmpsim run under `recorded`, then
// re-drives the recorded telemetry through each alternate policy, reporting
// per-interval and cumulative regret versus the recorded decisions and versus
// the true-telemetry oracle. The recorded policy itself is always row 0 — its
// zero VsRecorded regret is the replay-fidelity check, and its VsOracle is
// the prediction-error gap the paper attributes MaxBIPS's oracle shortfall
// to. A nil alts slice selects CrossSubstratePolicies.
func (e *Env) CounterfactualReplay(combo workload.Combo, recorded core.Policy, budgetFrac float64, intervals int, alts []core.Policy) (*RegretResult, error) {
	if alts == nil {
		alts = CrossSubstratePolicies()
	}
	horizon := e.Cfg.Sim.Explore * time.Duration(intervals)
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, err
	}
	budgetW := budgetFrac * base.EnvelopePowerW()
	memBound, err := cmpsim.MemBoundedness(e.Lib, combo)
	if err != nil {
		return nil, err
	}

	col := obs.NewCollector(e.Manifest("cmpsim", combo, recorded.Name(), fmt.Sprintf("fixed=%.6gW", budgetW), "", false))
	if _, err := cmpsim.Run(e.Lib, combo, cmpsim.Options{
		Budget:    cmpsim.FixedBudget(budgetW),
		Policy:    recorded,
		Predictor: e.Predictor(),
		Horizon:   horizon,
		Observer:  col,
	}); err != nil {
		return nil, err
	}
	trace := col.Trace()

	out := &RegretResult{
		ComboID:        combo.ID,
		RecordedPolicy: recorded.Name(),
		BudgetFrac:     budgetFrac,
		BudgetW:        budgetW,
		Intervals:      len(trace.Records),
	}
	lanes := []core.Policy{recorded}
	for _, alt := range alts {
		if alt.Name() != recorded.Name() {
			lanes = append(lanes, alt)
		}
	}
	rows := make([]RegretRow, len(lanes))
	err = forEach(e.workers(), len(lanes), func(i int) error {
		rr, err := calib.Replay(trace, calib.ReplayOptions{
			Plan:      e.Plan,
			Predictor: e.Predictor(),
			Policy:    lanes[i],
			MemBound:  memBound,
		})
		if err != nil {
			return err
		}
		rows[i] = RegretRow{Policy: lanes[i].Name(), Replay: rr}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// Table renders the replay: cumulative regrets, match rate, and the recorded
// run's own gap to the oracle.
func (r *RegretResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Counterfactual regret — %s, recorded %s @ %.0f%% (%.1f W), %d intervals",
			r.ComboID, r.RecordedPolicy, r.BudgetFrac*100, r.BudgetW, r.Intervals),
		"policy", "cum vs recorded", "cum vs oracle", "match", "recorded vs oracle")
	for _, row := range r.Rows {
		rr := row.Replay
		t.AddRow(row.Policy,
			fmt.Sprintf("%.4g", rr.CumVsRecorded),
			fmt.Sprintf("%.4g", rr.CumVsOracle),
			fmt.Sprintf("%.0f%%", rr.MatchRate()*100),
			fmt.Sprintf("%.4g", rr.RecordedVsOracle))
	}
	return t
}

// Fingerprint folds every row's replay fingerprint into one golden value.
func (r *RegretResult) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	for _, row := range r.Rows {
		mix(calib.ReplayFingerprint(row.Replay))
	}
	return h
}
