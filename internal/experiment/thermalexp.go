package experiment

import (
	"gpm/internal/cmpsim"
	"gpm/internal/core"
	"gpm/internal/metrics"
	"gpm/internal/thermal"
	"gpm/internal/workload"
)

// ---------------------------------------------------------------------------
// A7: thermally governed budgets. The paper manages a power budget directly;
// in deployment the budget often *derives from* a junction-temperature limit
// (§1 calls peak temperature a primary limiter; Fig 6's budget drop models a
// cooling failure). This experiment closes the loop: per-core RC thermal
// nodes integrate the simulated power, and the governor converts the
// temperature limit into the chip budget MaxBIPS enforces.
// ---------------------------------------------------------------------------

// ThermalRow summarizes one thermal-limit setting.
type ThermalRow struct {
	LimitC      float64
	MaxTempC    float64 // hottest observation across the run
	Degradation float64
	AvgPowerW   float64
}

// ThermalResult pairs the governed runs with the ungoverned reference.
type ThermalResult struct {
	ComboID string
	// UngovernedMaxTempC is the hottest temperature the same workload
	// reaches with no thermal control (unlimited budget).
	UngovernedMaxTempC float64
	Rows               []ThermalRow
}

// Thermal runs MaxBIPS under a set of junction-temperature limits on the
// baseline 4-way combo and reports achieved temperature, power and
// performance.
func (e *Env) Thermal(limits []float64) (*ThermalResult, error) {
	combo := workload.FourWay[0]
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, err
	}

	// The hottest core's average power anchors the thermal geometry: its
	// Turbo steady state lands 10 °C above the default limit (so governance
	// is needed), and its all-Eff2 floor stays ≈10 °C below it (so the
	// limits are achievable by DVFS).
	hottest := 0.0
	for c := 0; c < combo.Cores(); c++ {
		var sum float64
		for i := range base.CorePowerW {
			sum += base.CorePowerW[i][c]
		}
		if avg := sum / float64(len(base.CorePowerW)); avg > hottest {
			hottest = avg
		}
	}
	params := thermal.DefaultParams()
	// Scale the thermal resistance so the all-Turbo workload would exceed
	// the default limit without governance, and the capacitance so the
	// thermal time constant fits several times into the simulated horizon —
	// the interesting regime at millisecond simulation scales.
	params.RthCPerW = (params.LimitC - params.AmbientC + 10) / hottest
	params.CthJPerC = (e.Cfg.Sim.Horizon.Seconds() / 5) / params.RthCPerW

	run := func(limit float64, governed bool) (*cmpsim.Result, *thermal.Governor, error) {
		p := params
		p.LimitC = limit
		st, err := thermal.NewState(p, combo.Cores())
		if err != nil {
			return nil, nil, err
		}
		gov := thermal.NewGovernor(st, e.Cfg.Sim.Explore)
		opt := cmpsim.Options{
			Budget:    cmpsim.Unlimited(),
			Policy:    core.MaxBIPS{},
			Predictor: e.Predictor(),
			Horizon:   e.Cfg.Sim.Horizon,
		}
		if governed {
			opt.Thermal = gov
		} else {
			// Track temperatures without feeding them back.
			opt.Thermal = nil
		}
		res, err := cmpsim.Run(e.Lib, combo, opt)
		if err != nil {
			return nil, nil, err
		}
		if !governed {
			// Replay the power series through the thermal model offline.
			for i := range res.CorePowerW {
				st.Step(res.CorePowerW[i], res.DeltaSim)
				res.MaxTempC = append(res.MaxTempC, st.MaxTemp())
			}
		}
		return res, gov, nil
	}

	out := &ThermalResult{ComboID: combo.ID}
	free, _, err := run(params.LimitC, false)
	if err != nil {
		return nil, err
	}
	out.UngovernedMaxTempC = metrics.Summarize(free.MaxTempC).Max

	for _, lim := range limits {
		res, _, err := run(lim, true)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ThermalRow{
			LimitC:      lim,
			MaxTempC:    metrics.Summarize(res.MaxTempC).Max,
			Degradation: metrics.Degradation(res.TotalInstr, base.TotalInstr),
			AvgPowerW:   res.AvgChipPowerW(),
		})
	}
	return out, nil
}
