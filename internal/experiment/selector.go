package experiment

import (
	"gpm/internal/core"
	"gpm/internal/metrics"
)

// ---------------------------------------------------------------------------
// A6: mode-selector comparison — exhaustive MaxBIPS vs the extension
// selectors (greedy, hierarchical, hysteresis) on quality, budget fit and
// transition-stall overhead. §5.5 motivates cheaper selectors; the
// hysteresis variant addresses the mode-thrash plain MaxBIPS exhibits on
// jittery intervals.
// ---------------------------------------------------------------------------

// SelectorRow compares one selector at one width/budget.
type SelectorRow struct {
	Policy      string
	Cores       int
	BudgetFrac  float64
	Degradation float64
	BudgetFit   float64
	StallShare  float64
	Overshoot   float64
}

// AblationSelectors runs the selector family on a tiled combo of the given
// width at one budget.
func (e *Env) AblationSelectors(width int, budgetFrac float64) ([]SelectorRow, error) {
	combo := ReplicatedCombo(width)
	cfg := e.Cfg
	cfg.Chip.NumCores = width
	env := NewEnvWith(cfg)
	env.Lib = e.Lib
	env.Budgets = []float64{budgetFrac}
	base, err := env.Baseline(combo)
	if err != nil {
		return nil, err
	}

	policies := []core.Policy{
		core.GreedyMaxBIPS{},
		core.Hierarchical{ClusterSize: 4},
		core.StableMaxBIPS{},
	}
	if width <= 10 {
		policies = append([]core.Policy{core.MaxBIPS{}}, policies...)
	}

	var rows []SelectorRow
	for _, pol := range policies {
		res, _, err := env.RunPolicy(combo, pol, budgetFrac)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SelectorRow{
			Policy:      pol.Name(),
			Cores:       width,
			BudgetFrac:  budgetFrac,
			Degradation: metrics.Degradation(res.TotalInstr, base.TotalInstr),
			BudgetFit:   metrics.BudgetFit(res.AvgChipPowerW(), budgetFrac*base.EnvelopePowerW()),
			StallShare:  res.TransitionStall.Seconds() / res.Elapsed.Seconds(),
			Overshoot:   float64(res.OvershootIntervals) / float64(len(res.ChipPowerW)),
		})
	}
	return rows, nil
}
