package experiment

import (
	"testing"
	"time"

	"gpm/internal/fleet"
	"gpm/internal/workload"
)

func fleetSweepConfig() fleet.Config {
	return fleet.Config{
		Chips:   2,
		Combo:   workload.FourWay[0],
		Horizon: 10 * time.Millisecond,
		Seed:    7,
		Cohorts: []fleet.Cohort{
			{Name: "interactive", Clients: 8, RatePerClient: 1000, CostInstr: 2e5, SLO: 2 * time.Millisecond},
			{Name: "batch", Clients: 4, Process: "gamma", RatePerClient: 400, CostInstr: 1e6, SLO: 10 * time.Millisecond},
		},
	}
}

func TestFleetSweep(t *testing.T) {
	e := env(t)
	fracs := []float64{0.5, 1.0}
	pts, err := e.FleetSweep(fleetSweepConfig(), fracs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(fracs) {
		t.Fatalf("got %d points, want %d", len(pts), len(fracs))
	}
	for i, p := range pts {
		if p.CapFrac != fracs[i] {
			t.Errorf("point %d: CapFrac %v, want %v", i, p.CapFrac, fracs[i])
		}
		if p.FacilityCapW <= 0 {
			t.Errorf("point %d: FacilityCapW %v not resolved", i, p.FacilityCapW)
		}
		if p.ThroughputRPS <= 0 {
			t.Errorf("point %d: no throughput", i)
		}
		if len(p.Cohorts) != 2 {
			t.Errorf("point %d: %d cohort rows, want 2", i, len(p.Cohorts))
		}
	}
	if pts[1].FacilityCapW <= pts[0].FacilityCapW {
		t.Errorf("cap did not grow with CapFrac: %v then %v", pts[0].FacilityCapW, pts[1].FacilityCapW)
	}
	// Loosening the cap must never hurt served throughput in this open-loop
	// scenario.
	if pts[1].ThroughputRPS < pts[0].ThroughputRPS {
		t.Errorf("throughput fell as the cap loosened: %v rps at 50%%, %v rps at 100%%",
			pts[0].ThroughputRPS, pts[1].ThroughputRPS)
	}

	// The sweep fan-out must stay deterministic across worker counts.
	e2 := env(t)
	saved := e2.Workers
	e2.Workers = 1
	serial, err := e2.FleetSweep(fleetSweepConfig(), fracs)
	e2.Workers = saved
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i].ThroughputRPS != serial[i].ThroughputRPS || pts[i].JainFairness != serial[i].JainFairness {
			t.Errorf("point %d differs between parallel and serial sweeps", i)
		}
	}
}
