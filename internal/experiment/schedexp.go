package experiment

import (
	"time"

	"gpm/internal/core"
	"gpm/internal/metrics"
	"gpm/internal/modes"
	"gpm/internal/workload"
)

// ---------------------------------------------------------------------------
// A8: OS-rescheduled static management. §5.7 observes that without oracle
// knowledge "the OS can realize a bad core-benchmark assignment at the end
// of a context interval and can switch tasks at the expense of cache
// affinity", whereas MaxBIPS is indifferent to pairings. This experiment
// implements that middle ground: the per-core mode *multiset* is fixed (a
// static heterogeneous configuration à la Ghiasi), but at every OS quantum
// the scheduler re-permutes benchmarks across the mode slots based on the
// rates it observed, paying a cache-affinity penalty after each migration.
// ---------------------------------------------------------------------------

// SchedOptions parameterizes the OS-rescheduling model.
type SchedOptions struct {
	// Quantum is the OS context interval (default 10 ms).
	Quantum time.Duration
	// AffinityPenalty is the fractional rate loss a migrated thread suffers
	// while its cache state rebuilds (default 0.30).
	AffinityPenalty float64
	// PenaltyWindow is how long the penalty lasts after a migration
	// (default 1 ms).
	PenaltyWindow time.Duration
}

func (o *SchedOptions) defaults() {
	if o.Quantum == 0 {
		o.Quantum = 10 * time.Millisecond
	}
	if o.AffinityPenalty == 0 {
		o.AffinityPenalty = 0.30
	}
	if o.PenaltyWindow == 0 {
		o.PenaltyWindow = time.Millisecond
	}
}

// SchedRow compares the three §5.7 management styles at one budget.
type SchedRow struct {
	BudgetFrac float64
	// StaticDeg is the optimistic static bound (oracle pairing, no moves).
	StaticDeg float64
	// ReschedDeg is static modes + OS re-permutation with affinity costs.
	ReschedDeg float64
	// Migrations counts thread moves in the rescheduled run.
	Migrations int
	// MaxBIPSDeg is the dynamic policy for reference.
	MaxBIPSDeg float64
}

// SchedCompare runs the comparison on the baseline 4-way combo.
func (e *Env) SchedCompare(budgets []float64, opt SchedOptions) ([]SchedRow, error) {
	opt.defaults()
	combo := workload.FourWay[0]
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, err
	}
	var rows []SchedRow
	for _, b := range budgets {
		row := SchedRow{BudgetFrac: b}

		choice, err := e.StaticSelect(combo, b)
		if err != nil {
			return nil, err
		}
		st, _, err := e.RunPolicy(combo, core.Fixed{Vector: choice.Vector}, b)
		if err != nil {
			return nil, err
		}
		row.StaticDeg = metrics.Degradation(st.TotalInstr, base.TotalInstr)

		mb, _, err := e.RunPolicy(combo, core.MaxBIPS{}, b)
		if err != nil {
			return nil, err
		}
		row.MaxBIPSDeg = metrics.Degradation(mb.TotalInstr, base.TotalInstr)

		instr, migrations, err := e.runRescheduled(combo, choice.Vector, opt)
		if err != nil {
			return nil, err
		}
		row.ReschedDeg = metrics.Degradation(instr, base.TotalInstr)
		row.Migrations = migrations
		rows = append(rows, row)
	}
	return rows, nil
}

// runRescheduled simulates the OS model directly on trace players: the mode
// multiset is fixed; at each quantum boundary the scheduler assigns the
// observed-fastest thread to the fastest mode slot (and so on down), and any
// thread whose slot changed pays the affinity penalty for PenaltyWindow.
func (e *Env) runRescheduled(combo workload.Combo, slots modes.Vector, opt SchedOptions) (totalInstr float64, migrations int, err error) {
	players, err := e.Lib.Players(combo)
	if err != nil {
		return 0, 0, err
	}
	n := len(players)
	// assignment[i] is the mode-slot index currently running thread i.
	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = i
	}
	penaltyLeft := make([]float64, n) // seconds of degraded cache affinity

	delta := e.Cfg.Sim.DeltaSim.Seconds()
	horizon := e.Cfg.Sim.Horizon
	quantumDeltas := int(opt.Quantum / e.Cfg.Sim.DeltaSim)
	if quantumDeltas < 1 {
		quantumDeltas = 1
	}

	observed := make([]float64, n) // instructions in the current quantum
	d := 0
	for now := time.Duration(0); now < horizon; now += e.Cfg.Sim.DeltaSim {
		for i, pl := range players {
			if pl.Completed() {
				continue
			}
			mode := slots[assignment[i]]
			eff := delta
			if penaltyLeft[i] > 0 {
				// The affinity penalty throttles effective progress.
				pen := penaltyLeft[i]
				if pen > delta {
					pen = delta
				}
				eff = delta - pen*opt.AffinityPenalty
				penaltyLeft[i] -= delta
				if penaltyLeft[i] < 0 {
					penaltyLeft[i] = 0
				}
			}
			_, in := pl.Advance(mode, eff)
			totalInstr += in
			observed[i] += in
		}
		d++
		if d%quantumDeltas == 0 {
			// OS decision: rank threads by observed rate, give the fastest
			// thread the fastest slot (greedy throughput matching without
			// future knowledge).
			order := argsortDesc(observed)
			slotOrder := argsortSlotsFastestFirst(e, slots)
			newAssign := make([]int, n)
			for rank, thread := range order {
				newAssign[thread] = slotOrder[rank]
			}
			for i := range newAssign {
				if newAssign[i] != assignment[i] {
					migrations++
					penaltyLeft[i] = opt.PenaltyWindow.Seconds()
				}
				assignment[i] = newAssign[i]
				observed[i] = 0
			}
		}
	}
	return totalInstr, migrations, nil
}

// argsortDesc returns indices of xs sorted descending by value
// (deterministic: ties break toward lower index).
func argsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if xs[b] > xs[a] {
				idx[j-1], idx[j] = b, a
			}
		}
	}
	return idx
}

// argsortSlotsFastestFirst orders slot indices from fastest to slowest mode.
func argsortSlotsFastestFirst(e *Env, slots modes.Vector) []int {
	idx := make([]int, len(slots))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if e.Plan.FreqScale(slots[b]) > e.Plan.FreqScale(slots[a]) {
				idx[j-1], idx[j] = b, a
			}
		}
	}
	return idx
}
