package experiment

import (
	"testing"
)

func TestSchedCompare(t *testing.T) {
	e := quickEnv(t)
	rows, err := e.SchedCompare([]float64{0.70, 0.85}, SchedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("budget %.0f%%: static %5.2f%%  resched %5.2f%% (%d migrations)  maxbips %5.2f%%",
			r.BudgetFrac*100, r.StaticDeg*100, r.ReschedDeg*100, r.Migrations, r.MaxBIPSDeg*100)
		// §5.7 ordering: dynamic MaxBIPS beats both static flavours at tight
		// budgets; at loose budgets the oracle-paired static can close to
		// within the transition-stall noise, so allow a 1% band.
		if r.MaxBIPSDeg > r.StaticDeg+0.01 {
			t.Errorf("budget %.0f%%: MaxBIPS (%.3f) worse than oracle static (%.3f)", r.BudgetFrac*100, r.MaxBIPSDeg, r.StaticDeg)
		}
		if r.ReschedDeg < r.MaxBIPSDeg-0.005 {
			t.Errorf("budget %.0f%%: OS rescheduling (%.3f) implausibly beats dynamic MaxBIPS (%.3f)", r.BudgetFrac*100, r.ReschedDeg, r.MaxBIPSDeg)
		}
		if r.ReschedDeg < -0.01 || r.ReschedDeg > 0.3 {
			t.Errorf("resched degradation %.3f out of band", r.ReschedDeg)
		}
	}
}
