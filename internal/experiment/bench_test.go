package experiment

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// sweepEnv builds a Figure-4-style sweep environment: the paper's four
// policies over a trimmed budget grid and horizon, so one sweep iteration
// stays in benchmark territory while still fanning 12 independent runs.
func sweepEnv(b *testing.B, workers int) *Env {
	e := env(b).ShortHorizon(10 * time.Millisecond)
	e.Budgets = []float64{0.65, 0.80, 0.95}
	e.Workers = workers
	return e
}

// BenchmarkSweep measures a Figure-4-style (policy × budget) sweep through
// the shared worker pool at 1 and GOMAXPROCS workers. The runs are
// independent cmpsim simulations; results are bit-identical across worker
// counts (TestSweepDeterministicAcrossWorkers).
func BenchmarkSweep(b *testing.B) {
	// Resolve characterization and the baseline outside the timed region.
	if _, err := sweepEnv(b, 1).Figure4(); err != nil {
		b.Fatal(err)
	}
	workersList := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workersList = append(workersList, n)
	}
	for _, workers := range workersList {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := sweepEnv(b, workers)
			for i := 0; i < b.N; i++ {
				if _, err := e.Figure4(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(e.Budgets)*len(Fig4Policies())), "runs/op")
		})
	}
}

// BenchmarkSweepSpeedup reports the parallel sweep speedup directly: each
// iteration times the same Figure-4-style sweep serially and on GOMAXPROCS
// workers and reports the wall-clock ratio (≈1 on a single-CPU host; the
// pool's value there is bounding fan-out, not speed).
func BenchmarkSweepSpeedup(b *testing.B) {
	parallel := runtime.GOMAXPROCS(0)
	if _, err := sweepEnv(b, 1).Figure4(); err != nil {
		b.Fatal(err)
	}
	run := func(workers int) time.Duration {
		e := sweepEnv(b, workers)
		start := time.Now()
		if _, err := e.Figure4(); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var serial, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial += run(1)
		par += run(parallel)
	}
	b.StopTimer()
	b.ReportMetric(serial.Seconds()/par.Seconds(), "x-speedup")
	b.ReportMetric(float64(parallel), "workers")
}
