package experiment

import (
	"testing"
	"time"

	"gpm/internal/modes"
	"gpm/internal/solver"
	"gpm/internal/workload"
)

// instanceForCombo builds a decision instance from a seed workload's real
// characterized behaviours, with per-core phase offsets.
func instanceForCombo(t *testing.T, e *Env, combo workload.Combo, budgetFrac float64) solver.Instance {
	t.Helper()
	players, err := e.Lib.Players(combo)
	if err != nil {
		t.Fatal(err)
	}
	exploreSec := e.Cfg.Sim.Explore.Seconds()
	n := combo.Cores()
	in := solver.Instance{
		Plan:  e.Plan,
		Power: make([][]float64, n),
		Instr: make([][]float64, n),
	}
	nm := e.Plan.NumModes()
	var turbo float64
	for c, pl := range players {
		pl.Advance(modes.Turbo, float64(c)*5*exploreSec)
		in.Power[c] = make([]float64, nm)
		in.Instr[c] = make([]float64, nm)
		for m := 0; m < nm; m++ {
			pw, rate := pl.Behavior(modes.Mode(m))
			in.Power[c][m] = pw
			in.Instr[c][m] = rate * exploreSec
		}
		turbo += in.Power[c][0]
	}
	in.BudgetW = budgetFrac * turbo
	return in
}

// TestGoldenBBAndDPOnSeedWorkloads is the acceptance golden: on every 8-core
// Table 2 combo and every budget, branch-and-bound (lex-tie mode) must return
// a vector bit-identical to the exhaustive reference, and DP at the default
// quantum must stay within 99% of the exhaustive throughput.
func TestGoldenBBAndDPOnSeedWorkloads(t *testing.T) {
	e := env(t)
	combos, err := workload.Combos(8)
	if err != nil {
		t.Fatal(err)
	}
	budgets := DefaultBudgets
	if testing.Short() {
		budgets = []float64{0.60, 0.80, 1.00}
	}
	ex := &solver.Exhaustive{}
	bb := &solver.BB{LexTies: true}
	dp := &solver.DP{}
	for _, combo := range combos {
		for _, frac := range budgets {
			in := instanceForCombo(t, e, combo, frac)
			exV, _ := ex.Solve(in)
			bbV, bbSt := bb.Solve(in)
			if !bbSt.Exact {
				t.Fatalf("%s @%.0f%%: bb did not certify exactness", combo.ID, frac*100)
			}
			if !bbV.Equal(exV) {
				t.Fatalf("%s @%.0f%%: bb %v, exhaustive %v", combo.ID, frac*100, bbV, exV)
			}
			// DP quality/feasibility only mean something when a feasible
			// vector exists at all (at tight budgets even all-Eff2 can
			// exceed the cap; every solver then returns the deepest floor).
			deepest := modes.Uniform(8, modes.Mode(e.Plan.NumModes()-1))
			if in.VectorPower(deepest) > in.BudgetW {
				continue
			}
			dpV, _ := dp.Solve(in)
			exT := in.VectorInstr(exV)
			if dpT := in.VectorInstr(dpV); exT > 0 && dpT < 0.99*exT {
				t.Fatalf("%s @%.0f%%: dp quality %.4f below 99%%", combo.ID, frac*100, dpT/exT)
			}
			if pw := in.VectorPower(dpV); pw > in.BudgetW+1e-9 {
				t.Fatalf("%s @%.0f%%: dp over budget (%.3f > %.3f)", combo.ID, frac*100, pw, in.BudgetW)
			}
		}
	}
}

// TestGoldenSimDecisionsBitIdentical runs the end-to-end check: full CMP
// simulations under MaxBIPS vs the BB-backed policy must make identical
// decisions at every explore interval.
func TestGoldenSimDecisionsBitIdentical(t *testing.T) {
	e := env(t).ShortHorizon(10 * time.Millisecond)
	combos, err := workload.Combos(8)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []float64{0.60, 0.75, 0.90}
	if testing.Short() {
		budgets = budgets[:1]
	}
	for i := range combos {
		for _, frac := range budgets {
			same, decisions, err := e.SolverCompareDecisions(i, frac)
			if err != nil {
				t.Fatal(err)
			}
			if decisions == 0 {
				t.Fatalf("combo %d @%.0f%%: no decisions recorded", i, frac*100)
			}
			if !same {
				t.Fatalf("combo %d @%.0f%%: bb decisions diverged from MaxBIPS over %d intervals", i, frac*100, decisions)
			}
		}
	}
}

func TestSolverScalingQuick(t *testing.T) {
	e := env(t)
	rows, err := e.SolverScaling([]int{4, 8}, 0.75, SolverScalingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byWidth := map[int]int{}
	for _, r := range rows {
		byWidth[r.Cores]++
		if r.Reference != "exhaustive" {
			t.Errorf("%d-core %s: reference %q, want exhaustive", r.Cores, r.Solver, r.Reference)
		}
		if r.PowerW > r.BudgetW+1e-9 {
			t.Errorf("%d-core %s: over budget (%.3f > %.3f)", r.Cores, r.Solver, r.PowerW, r.BudgetW)
		}
		if r.Quality <= 0 || r.Quality > 1+1e-9 {
			t.Errorf("%d-core %s: quality %.4f out of range", r.Cores, r.Solver, r.Quality)
		}
		switch r.Solver {
		case "bb":
			if !r.Exact || r.Quality < 1-1e-9 {
				t.Errorf("%d-core bb: exact=%v quality=%.6f, want exact optimum", r.Cores, r.Exact, r.Quality)
			}
		case "dp":
			if r.Quality < 0.99 {
				t.Errorf("%d-core dp: quality %.4f below 99%%", r.Cores, r.Quality)
			}
			if r.GapBound < 0 || r.GapBound >= 1 {
				t.Errorf("%d-core dp: gap bound %.4f out of range", r.Cores, r.GapBound)
			}
		case "hier":
			if r.Quality < 0.99 {
				t.Errorf("%d-core hier: quality %.4f below 99%%", r.Cores, r.Quality)
			}
		}
	}
	for _, n := range []int{4, 8} {
		if byWidth[n] != 5 {
			t.Errorf("%d-core: %d rows, want 5 solvers", n, byWidth[n])
		}
	}
}

// TestSolverScalingLarge exercises the widths the paper's exhaustive policy
// cannot reach; the hierarchical solver must carry the sweep to 1024 cores.
func TestSolverScalingLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large-width sweep")
	}
	e := env(t)
	rows, err := e.SolverScaling([]int{64}, 0.75, SolverScalingOptions{
		Solvers: []string{"bb", "dp", "hier", "greedy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PowerW > r.BudgetW+1e-9 {
			t.Errorf("64-core %s: over budget", r.Solver)
		}
		if r.Solver == "bb" && !r.Exact {
			t.Errorf("64-core bb: not exact (nodes=%d)", r.Nodes)
		}
		if r.Solver == "hier" && r.Quality < 0.95 {
			t.Errorf("64-core hier: quality %.4f below 95%%", r.Quality)
		}
	}

	rows, err = e.SolverScaling([]int{1024}, 0.75, SolverScalingOptions{
		Solvers: []string{"dp", "hier", "greedy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawHier bool
	for _, r := range rows {
		if r.PowerW > r.BudgetW+1e-9 {
			t.Errorf("1024-core %s: over budget", r.Solver)
		}
		if r.Solver == "hier" {
			sawHier = true
			if r.Quality < 0.95 {
				t.Errorf("1024-core hier: quality %.4f below 95%%", r.Quality)
			}
			if r.Wall > 2*time.Second {
				t.Errorf("1024-core hier: wall %v too slow", r.Wall)
			}
		}
	}
	if !sawHier {
		t.Fatal("1024-core sweep missing hier row")
	}
}
