package experiment

import (
	"fmt"

	"gpm/internal/fleet"
)

// FleetCapFracs is the default facility-cap sweep: fractions of the fleet's
// summed chip envelopes, the datacenter analogue of DefaultBudgets.
var FleetCapFracs = []float64{0.50, 0.60, 0.70, 0.80, 0.90, 1.00}

// FleetSweepPoint is one facility-cap operating point: the serving outcome of
// a whole fleet scenario at that cap.
type FleetSweepPoint struct {
	// CapFrac is the facility cap as a fraction of Σ chip envelopes;
	// FacilityCapW the resolved watts.
	CapFrac      float64
	FacilityCapW float64

	ThroughputRPS float64
	// ShedFrac is the fraction of arrivals rejected by admission control.
	ShedFrac float64
	// JainFairness is Jain's index over per-cohort SLO attainment.
	JainFairness      float64
	AvgFacilityPowerW float64
	// Cohorts carries per-class SLO attainment and latency percentiles.
	Cohorts []fleet.CohortStats
}

// FleetSweep runs one fleet scenario per facility-cap fraction (nil selects
// FleetCapFracs) and reports throughput, shed rate, per-class SLO attainment
// and fairness versus the cap — the knee of these curves is the fleet-level
// analogue of the paper's budget/degradation curves. Points fan out on the
// env's worker pool with serial chip stepping inside each point; results are
// deterministic and identical for every worker count.
func (e *Env) FleetSweep(cfg fleet.Config, capFracs []float64) ([]FleetSweepPoint, error) {
	if capFracs == nil {
		capFracs = FleetCapFracs
	}
	pts := make([]FleetSweepPoint, len(capFracs))
	err := forEach(e.workers(), len(capFracs), func(i int) error {
		c := cfg
		c.FacilityCapW = nil
		c.CapFrac = capFracs[i]
		c.Workers = 1
		res, runErr := fleet.Run(e.Lib, c)
		if runErr != nil {
			return fmt.Errorf("fleet @ cap %.0f%%: %w", 100*capFracs[i], runErr)
		}
		pt := FleetSweepPoint{
			CapFrac:           capFracs[i],
			ThroughputRPS:     res.ThroughputRPS,
			JainFairness:      res.JainFairness,
			AvgFacilityPowerW: res.AvgFacilityPowerW,
			Cohorts:           res.Cohorts,
		}
		if res.Arrived > 0 {
			pt.ShedFrac = float64(res.Shed) / float64(res.Arrived)
		}
		if len(res.EpochLog) > 0 {
			pt.FacilityCapW = res.EpochLog[0].FacilityCapW
		}
		pts[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}
