package experiment

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(i) for every i in [0, n) on at most `workers` goroutines
// (the calling goroutine participates, so only workers-1 are spawned). Jobs
// are claimed through an atomic cursor, so the schedule is dynamic but the
// caller's result placement — indexed writes into pre-sized slices — is
// deterministic regardless of worker count. Errors are joined in index
// order. workers <= 1 degenerates to a plain serial loop on the caller.
//
// This is the one fan-out primitive shared by the sweep runners: it bounds
// total goroutines per sweep (replacing unbounded per-job spawning) and
// keeps nested use safe — a nested forEach still bounds its own spawn count
// and always makes progress on the calling goroutine.
func forEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var cursor atomic.Int64
	work := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	}
	if workers <= 1 {
		work()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers - 1)
		for k := 0; k < workers-1; k++ {
			go func() {
				defer wg.Done()
				work()
			}()
		}
		work()
		wg.Wait()
	}
	return errors.Join(errs...)
}

// workers resolves the env's worker bound (0 = GOMAXPROCS).
func (e *Env) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// chipWorkers divides the env's workers among `concurrent` simultaneous
// cycle-level chips, so a sweep that fans out whole runs does not multiply
// its goroutine budget by the per-chip worker count.
func (e *Env) chipWorkers(concurrent int) int {
	if concurrent < 1 {
		concurrent = 1
	}
	w := e.workers() / concurrent
	if w < 1 {
		w = 1
	}
	return w
}
