package experiment

import (
	"gpm/internal/fullsim"
	"gpm/internal/modes"
	"gpm/internal/workload"
)

// ValidationRow compares one benchmark's single-threaded characterization
// against its behaviour in a full-CMP cycle simulation with co-runners
// (§3.1's cross-check: CMP power stays within a few percent of — and
// consistently below — single-threaded power, while IPC drops more
// noticeably due to shared L2 and bus conflicts).
type ValidationRow struct {
	Benchmark string
	// Single-threaded (trace characterization) values at Turbo, phase 0.
	STPowerW float64
	STIPC    float64
	// Full-CMP values.
	CMPPowerW float64
	CMPIPC    float64
	// Deltas as fractions of the single-threaded value.
	PowerDelta float64
	IPCDelta   float64
}

// ValidationResult aggregates a combo's validation run.
type ValidationResult struct {
	ComboID string
	Rows    []ValidationRow
	// L2WaitCycles is total shared-L2 queueing in the measured window.
	L2WaitCycles uint64
	// MeanIPCDrop is the average fractional IPC reduction (positive = CMP
	// slower), the paper's ≈9% statistic.
	MeanIPCDrop float64
	// MeanPowerDrop is the average fractional power reduction (positive =
	// CMP lower), the paper's ≈5%-and-consistently-lower statistic.
	MeanPowerDrop float64
}

// Validation runs the full-CMP simulator on a combo at all-Turbo and
// compares per-benchmark power and IPC against the single-threaded trace
// characterizations the CMP tool is built from.
func (e *Env) Validation(combo workload.Combo, windowGlobalCycles, warmupInstr uint64) (*ValidationResult, error) {
	chip, err := fullsim.NewWithOptions(e.Cfg, e.Model, e.Plan, combo.Benchmarks, 0, nil,
		fullsim.Options{Workers: e.workers()})
	if err != nil {
		return nil, err
	}
	chip.Warm(warmupInstr)
	acts := chip.Measure(windowGlobalCycles)

	out := &ValidationResult{ComboID: combo.ID}
	for c, name := range combo.Benchmarks {
		pr, err := e.Lib.Profile(name)
		if err != nil {
			return nil, err
		}
		st := pr.Behavior[modes.Turbo][0]
		cmpP := e.Model.CorePower(acts[c], e.Plan, modes.Turbo)
		row := ValidationRow{
			Benchmark: name,
			STPowerW:  st.PowerW,
			STIPC:     st.IPC,
			CMPPowerW: cmpP,
			CMPIPC:    acts[c].IPC(),
		}
		row.PowerDelta = 1 - row.CMPPowerW/row.STPowerW
		row.IPCDelta = 1 - row.CMPIPC/row.STIPC
		out.Rows = append(out.Rows, row)
		out.MeanIPCDrop += row.IPCDelta / float64(combo.Cores())
		out.MeanPowerDrop += row.PowerDelta / float64(combo.Cores())
	}
	_, wait := chip.L2().Contention()
	out.L2WaitCycles = wait
	return out, nil
}
