// Package experiment reproduces every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md), plus the
// ablations the paper's discussion motivates. Each experiment is a pure
// function from an Env to a typed result; internal/report renders results.
package experiment

import (
	"fmt"
	"sync"
	"time"

	"gpm/internal/cmpsim"
	"gpm/internal/config"
	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/metrics"
	"gpm/internal/modes"
	"gpm/internal/obs"
	"gpm/internal/power"
	"gpm/internal/trace"
	"gpm/internal/workload"
)

// DefaultBudgets is the x-axis of the paper's policy curves: 60%–100% of
// maximum chip power in 5% steps.
var DefaultBudgets = []float64{0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00}

// Env bundles the configuration, models, and profile cache shared by all
// experiments.
type Env struct {
	Cfg   config.Config
	Model power.Model
	Plan  modes.Plan
	Lib   *trace.Library

	// Budgets is the sweep used by curve experiments.
	Budgets []float64

	// Observer, when non-nil, receives the structured decision trace of
	// single-policy runs driven through RunPolicyResilient (the `gpmsim run`
	// path). Sweeps and baselines stay unobserved: a sweep would interleave
	// many runs into one trace, which no replay could make sense of.
	Observer engine.Observer

	// Workers bounds the shared worker pool used by sweep fan-outs
	// (budget × policy grids, resilience points, cross-substrate runs) and
	// sizes the cycle-level chips experiments construct. 0 means GOMAXPROCS.
	// Results are deterministic for every value.
	Workers int

	// mu guards baselines: sweeps resolve baselines from pool workers.
	mu sync.Mutex
	// baselines caches all-Turbo reference runs by combo ID.
	baselines map[string]*cmpsim.Result
}

// Manifest describes one observed run for a trace header: substrate identity,
// workload, policy and the timing grid a replay must reproduce.
func (e *Env) Manifest(substrate string, combo workload.Combo, policy, budgetSpec, faultSpec string, guarded bool) *obs.Manifest {
	return &obs.Manifest{
		Tool:             "gpmsim",
		Substrate:        substrate,
		ComboID:          combo.ID,
		Benchmarks:       combo.Benchmarks,
		Policy:           policy,
		Cores:            combo.Cores(),
		DeltaSimNs:       e.Cfg.Sim.DeltaSim.Nanoseconds(),
		DeltasPerExplore: e.Cfg.DeltaPerExplore(),
		ExploreNs:        e.Cfg.Sim.Explore.Nanoseconds(),
		HorizonNs:        e.Cfg.Sim.Horizon.Nanoseconds(),
		BudgetSpec:       budgetSpec,
		FaultSpec:        faultSpec,
		Guarded:          guarded,
	}
}

// NewEnv builds the default environment for n cores.
func NewEnv(n int) *Env {
	cfg := config.Default(n)
	return NewEnvWith(cfg)
}

// NewEnvWith builds an environment from an explicit configuration.
func NewEnvWith(cfg config.Config) *Env {
	model := power.Default()
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
	return &Env{
		Cfg:       cfg,
		Model:     model,
		Plan:      plan,
		Lib:       trace.NewLibrary(cfg, model, plan),
		Budgets:   DefaultBudgets,
		baselines: make(map[string]*cmpsim.Result),
	}
}

// Predictor returns the §5.5 predictor with the design-time power scale law.
func (e *Env) Predictor() core.Predictor {
	return core.Predictor{
		Plan:              e.Plan,
		PowerScale:        func(m modes.Mode) float64 { return e.Model.ScaleLaw(e.Plan, m) },
		ExploreSeconds:    e.Cfg.Sim.Explore.Seconds(),
		DerateTransitions: true,
	}
}

// Baseline returns (and caches) the all-Turbo reference run for a combo.
// Safe for concurrent use; a cache miss raced by two workers computes the
// (deterministic) run twice and keeps one copy.
func (e *Env) Baseline(combo workload.Combo) (*cmpsim.Result, error) {
	e.mu.Lock()
	r, ok := e.baselines[combo.ID]
	e.mu.Unlock()
	if ok {
		return r, nil
	}
	r, err := cmpsim.Run(e.Lib, combo, cmpsim.Options{
		Budget:  cmpsim.Unlimited(),
		Policy:  core.Fixed{Vector: modes.Uniform(combo.Cores(), modes.Turbo)},
		Horizon: e.Cfg.Sim.Horizon,
	})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prev, ok := e.baselines[combo.ID]; ok {
		r = prev // keep the first copy so pointers stay stable
	} else {
		e.baselines[combo.ID] = r
	}
	e.mu.Unlock()
	return r, nil
}

// Run runs a policy with an arbitrary budget function under the
// environment's horizon.
func (e *Env) Run(combo workload.Combo, policy core.Policy, budget func(time.Duration) float64) (*cmpsim.Result, error) {
	return cmpsim.Run(e.Lib, combo, cmpsim.Options{
		Budget:    budget,
		Policy:    policy,
		Predictor: e.Predictor(),
		Horizon:   e.Cfg.Sim.Horizon,
	})
}

// RunPolicy runs a policy at a budget fraction of the combo's maximum
// all-Turbo chip power.
func (e *Env) RunPolicy(combo workload.Combo, policy core.Policy, budgetFrac float64) (*cmpsim.Result, *cmpsim.Result, error) {
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, nil, err
	}
	res, err := e.Run(combo, policy, cmpsim.FixedBudget(budgetFrac*base.EnvelopePowerW()))
	if err != nil {
		return nil, nil, err
	}
	return res, base, nil
}

// PolicyCurve holds one policy's sweep over budgets for one combo: the
// Fig 4/7/8/9/10 quantities.
type PolicyCurve struct {
	Policy  string
	ComboID string
	// Budgets are fractions of maximum chip power.
	Budgets []float64
	// Degradation[i] is throughput loss vs all-Turbo at Budgets[i].
	Degradation []float64
	// WeightedSlowdown[i] is 1 − harmonic mean of per-thread speedups.
	WeightedSlowdown []float64
	// BudgetFit[i] is average chip power / budget (budget-curve value).
	BudgetFit []float64
	// PowerSaving[i] is 1 − average chip power / all-Turbo average power
	// (the Fig 5 x-axis).
	PowerSaving []float64
}

// Curve sweeps a policy across e.Budgets for a combo, fanning the budget
// points out on the env's worker pool. staticOracle handles the Fixed-vector
// lower bound separately (see static.go).
func (e *Env) Curve(combo workload.Combo, policy core.Policy) (*PolicyCurve, error) {
	cs, err := e.Curves(combo, []core.Policy{policy})
	if err != nil {
		return nil, err
	}
	return cs[0], nil
}

// Curves sweeps several policies across e.Budgets for one combo as a single
// flattened (policy × budget) fan-out on the env's worker pool. Independent
// runs execute concurrently (bounded by Workers); results land in
// deterministic order — policies as given, budgets as in e.Budgets — and are
// bit-identical to the serial sweep for every worker count.
func (e *Env) Curves(combo workload.Combo, policies []core.Policy) ([]*PolicyCurve, error) {
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, err
	}
	nb := len(e.Budgets)
	runs := make([]*cmpsim.Result, len(policies)*nb)
	err = forEach(e.workers(), len(runs), func(i int) error {
		pol, frac := policies[i/nb], e.Budgets[i%nb]
		res, runErr := e.Run(combo, pol, cmpsim.FixedBudget(frac*base.EnvelopePowerW()))
		if runErr != nil {
			return fmt.Errorf("%s @ %.0f%%: %w", pol.Name(), 100*frac, runErr)
		}
		runs[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*PolicyCurve, len(policies))
	for p, pol := range policies {
		pc := &PolicyCurve{Policy: pol.Name(), ComboID: combo.ID, Budgets: e.Budgets}
		for bi, frac := range e.Budgets {
			if err := pc.append(runs[p*nb+bi], base, frac); err != nil {
				return nil, err
			}
		}
		out[p] = pc
	}
	return out, nil
}

func (pc *PolicyCurve) append(res, base *cmpsim.Result, budgetFrac float64) error {
	pc.Degradation = append(pc.Degradation, metrics.Degradation(res.TotalInstr, base.TotalInstr))
	sp, err := metrics.PerThreadSpeedups(res.PerCoreInstr, base.PerCoreInstr)
	if err != nil {
		return err
	}
	pc.WeightedSlowdown = append(pc.WeightedSlowdown, metrics.WeightedSlowdown(sp))
	pc.BudgetFit = append(pc.BudgetFit, metrics.BudgetFit(res.AvgChipPowerW(), budgetFrac*base.EnvelopePowerW()))
	pc.PowerSaving = append(pc.PowerSaving, 1-res.AvgChipPowerW()/base.AvgChipPowerW())
	return nil
}

// ShortHorizon returns a copy of the environment with a reduced simulation
// horizon — used by tests and quick CLI runs. Profiles are re-characterized
// lazily (the library is shared only when the config matches).
func (e *Env) ShortHorizon(h time.Duration) *Env {
	cfg := e.Cfg
	cfg.Sim.Horizon = h
	out := NewEnvWith(cfg)
	out.Budgets = e.Budgets
	out.Workers = e.Workers
	// Characterization does not depend on the horizon, so the profile cache
	// can be shared.
	out.Lib = e.Lib
	return out
}

// comboForWidth fetches the Table 2 combos for a width with context in the
// error.
func comboForWidth(n int) ([]workload.Combo, error) {
	cs, err := workload.Combos(n)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	return cs, nil
}
