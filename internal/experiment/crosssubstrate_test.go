package experiment

import (
	"testing"

	"gpm/internal/core"
	"gpm/internal/workload"
)

// TestCrossSubstrateAgreement drives the same policies, budget and engine
// control loop through both substrates and asserts they agree: same policy
// ranking by degradation, bounded per-policy degradation gap, and both
// managed runs tracking the budget from below.
func TestCrossSubstrateAgreement(t *testing.T) {
	e := quickEnv(t)
	policies := []core.Policy{core.MaxBIPS{}, core.ChipWideDVFS{}}
	res, err := e.CrossSubstrate(workload.FourWay[0], 0.80, 16, policies)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(policies) {
		t.Fatalf("got %d rows for %d policies", len(res.Rows), len(policies))
	}
	for _, r := range res.Rows {
		t.Logf("%-13s trace %6.2f%% / full %6.2f%% (gap %5.2f%%)  fit %5.1f%% / %5.1f%%",
			r.Policy, r.TraceDeg*100, r.FullDeg*100, r.DegGap*100, r.TraceFit*100, r.FullFit*100)
		if r.TraceDeg < -0.05 || r.TraceDeg > 0.40 || r.FullDeg < -0.05 || r.FullDeg > 0.40 {
			t.Errorf("%s: degradations trace=%.3f full=%.3f implausible", r.Policy, r.TraceDeg, r.FullDeg)
		}
		// Coarse policies (chip-wide DVFS quantizes the whole chip to one
		// mode) can sit on opposite sides of a mode boundary in the two
		// substrates, so the gap bound is loose; the sharp assertion is the
		// ranking agreement below.
		if r.DegGap > 0.20 {
			t.Errorf("%s: substrates disagree by %.1f%% degradation", r.Policy, r.DegGap*100)
		}
		// Managed runs must track the budget from below in both substrates
		// (small overshoot tolerance for bootstrap correction).
		for name, fit := range map[string]float64{"trace": r.TraceFit, "full": r.FullFit} {
			if fit <= 0 || fit > 1.10 {
				t.Errorf("%s: %s substrate power/budget fit %.2f out of range", r.Policy, name, fit)
			}
		}
	}
	if !res.RankAgree {
		t.Error("substrates rank the policies differently")
	}
}
