package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"gpm/internal/workload"
)

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 37
		counts := make([]atomic.Int32, n)
		if err := forEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachJoinsErrorsInIndexOrder(t *testing.T) {
	err := forEach(4, 6, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error returned")
	}
	want := errors.Join(
		fmt.Errorf("job 1 failed"), fmt.Errorf("job 3 failed"), fmt.Errorf("job 5 failed"))
	if err.Error() != want.Error() {
		t.Errorf("error = %q, want %q", err, want)
	}
}

// TestSweepDeterministicAcrossWorkers pins the parallel sweep runner's
// contract: a Figure-4-style (policy × budget) sweep and a resilience sweep
// must produce results bit-identical to the serial runner for any worker
// count, in the same order.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	mkEnv := func(workers int) *Env {
		e := env(t).ShortHorizon(10 * time.Millisecond)
		e.Budgets = []float64{0.70, 0.90}
		e.Workers = workers
		return e
	}

	serial, err := mkEnv(1).Figure4()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := mkEnv(workers).Figure4()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("Figure4 with Workers=%d differs from serial sweep", workers)
		}
	}

	combo := workload.FourWay[0]
	rates := []float64{0, 0.2}
	serialPts, err := mkEnv(1).ResilienceSweep(combo, ResiliencePolicies(), rates, ResilienceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parallelPts, err := mkEnv(6).ResilienceSweep(combo, ResiliencePolicies(), rates, ResilienceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallelPts, serialPts) {
		t.Error("ResilienceSweep with Workers=6 differs from serial sweep")
	}
}
