package experiment

import (
	"gpm/internal/core"
	"gpm/internal/fullsim"
	"gpm/internal/metrics"
	"gpm/internal/workload"
)

// ---------------------------------------------------------------------------
// V2: managed cross-check. §3.1's deeper claim is that despite its
// abstractions, the trace-based tool ranks policies the way a cycle-level
// full-CMP simulation does ("the policy behaviors for each workload
// combination as well as the differences across different combinations are
// consistent between the two approaches"). This experiment runs the same
// policies under the same budget through both engines and compares the
// resulting degradations.
// ---------------------------------------------------------------------------

// CrossCheckRow is one policy's degradation under both engines.
type CrossCheckRow struct {
	Policy string
	// TraceDeg is the trace-based CMP tool's degradation vs its all-Turbo
	// baseline; FullDeg is the cycle-level simulator's.
	TraceDeg float64
	FullDeg  float64
}

// CrossCheckResult pairs the rows with the budget used.
type CrossCheckResult struct {
	ComboID    string
	BudgetFrac float64
	Rows       []CrossCheckRow
}

// CrossCheck runs MaxBIPS, chip-wide DVFS and the static floor through both
// engines at one budget on a combo's phase-0 behaviour.
//
// intervals is the number of explore intervals the cycle-level run covers
// (its cost is ~500k simulated cycles per interval per core).
func (e *Env) CrossCheck(combo workload.Combo, budgetFrac float64, intervals int) (*CrossCheckResult, error) {
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, err
	}
	budgetW := budgetFrac * base.EnvelopePowerW()

	policies := []core.Policy{core.MaxBIPS{}, core.ChipWideDVFS{}}

	out := &CrossCheckResult{ComboID: combo.ID, BudgetFrac: budgetFrac}

	// Cycle-level baseline: all-Turbo committed instructions over the same
	// number of intervals.
	mkChip := func() (*fullsim.Chip, error) {
		chip, err := fullsim.NewWithOptions(e.Cfg, e.Model, e.Plan, combo.Benchmarks, 0, nil,
			fullsim.Options{Workers: e.workers()})
		if err != nil {
			return nil, err
		}
		chip.Warm(20_000)
		return chip, nil
	}
	chip, err := mkChip()
	if err != nil {
		return nil, err
	}
	fullBase, err := chip.RunManaged(core.Fixed{Vector: chip.Vector()}, 1e12, intervals)
	if err != nil {
		return nil, err
	}

	for _, pol := range policies {
		res, _, err := e.RunPolicy(combo, pol, budgetFrac)
		if err != nil {
			return nil, err
		}
		chip, err := mkChip()
		if err != nil {
			return nil, err
		}
		full, err := chip.RunManaged(pol, budgetW, intervals)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, CrossCheckRow{
			Policy:   pol.Name(),
			TraceDeg: metrics.Degradation(res.TotalInstr, base.TotalInstr),
			FullDeg:  metrics.Degradation(full.TotalInstr, fullBase.TotalInstr),
		})
	}
	return out, nil
}
