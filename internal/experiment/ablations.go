package experiment

import (
	"fmt"
	"time"

	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/trace"
	"gpm/internal/workload"
)

// ---------------------------------------------------------------------------
// A1: mode-count scaling. §5.3 argues chip-wide DVFS could close part of the
// gap with more modes, but that mode count must scale with core count.
// ---------------------------------------------------------------------------

// ModeCountRow compares per-core MaxBIPS and chip-wide DVFS at one plan
// granularity.
type ModeCountRow struct {
	Levels              int
	BudgetFrac          float64
	MaxBIPSDegradation  float64
	ChipWideDegradation float64
}

// AblationModeCount sweeps the number of DVFS levels (k-level linear plans
// down to the Eff2 point) at a fixed budget on the baseline 4-way combo.
func (e *Env) AblationModeCount(levels []int, budgetFrac float64) ([]ModeCountRow, error) {
	combo := workload.FourWay[0]
	var rows []ModeCountRow
	for _, k := range levels {
		plan := modes.Linear(k, 0.85, e.Cfg.Chip.NominalVdd, e.Cfg.Chip.TransitionRateVPerUs)
		env := NewEnvWith(e.Cfg)
		env.Plan = plan
		env.Lib = trace.NewLibrary(e.Cfg, e.Model, plan)
		env.Budgets = []float64{budgetFrac}

		base, err := env.Baseline(combo)
		if err != nil {
			return nil, err
		}
		row := ModeCountRow{Levels: k, BudgetFrac: budgetFrac}
		for _, pol := range []core.Policy{core.MaxBIPS{}, core.ChipWideDVFS{}} {
			res, _, err := env.RunPolicy(combo, pol, budgetFrac)
			if err != nil {
				return nil, err
			}
			deg := 1 - res.TotalInstr/base.TotalInstr
			if pol.Name() == "MaxBIPS" {
				row.MaxBIPSDegradation = deg
			} else {
				row.ChipWideDegradation = deg
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// A2: explore-interval sensitivity. §4 bounds DVFS actuation to ≈100 µs
// granularity; longer intervals amortize transitions but react later.
// ---------------------------------------------------------------------------

// ExploreIntervalRow is one setting of the A2 sweep.
type ExploreIntervalRow struct {
	Explore     time.Duration
	Degradation float64
	StallShare  float64 // transition stall / elapsed
	Overshoot   float64 // fraction of delta intervals above budget
}

// AblationExploreInterval sweeps the manager's decision interval at a fixed
// budget with MaxBIPS on the baseline 4-way combo.
func (e *Env) AblationExploreInterval(intervals []time.Duration, budgetFrac float64) ([]ExploreIntervalRow, error) {
	combo := workload.FourWay[0]
	var rows []ExploreIntervalRow
	for _, ex := range intervals {
		cfg := e.Cfg
		cfg.Sim.Explore = ex
		if ex < cfg.Sim.DeltaSim {
			cfg.Sim.DeltaSim = ex
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("experiment: explore %v: %w", ex, err)
		}
		env := NewEnvWith(cfg)
		env.Budgets = []float64{budgetFrac}
		base, err := env.Baseline(combo)
		if err != nil {
			return nil, err
		}
		res, _, err := env.RunPolicy(combo, core.MaxBIPS{}, budgetFrac)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExploreIntervalRow{
			Explore:     ex,
			Degradation: 1 - res.TotalInstr/base.TotalInstr,
			StallShare:  res.TransitionStall.Seconds() / res.Elapsed.Seconds(),
			Overshoot:   float64(res.OvershootIntervals) / float64(len(res.ChipPowerW)),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// A3: exhaustive vs greedy MaxBIPS under scale-out. §3.1 explores "2 to 64"
// cores; §5.5 notes the exploration state space grows superlinearly.
// ---------------------------------------------------------------------------

// ScaleOutRow compares the two selectors at one width.
type ScaleOutRow struct {
	Cores int
	// ExhaustiveDegradation is NaN-free only while 3^n stays tractable
	// (n ≤ 10); wider chips report greedy only.
	ExhaustiveDegradation float64
	ExhaustiveRan         bool
	GreedyDegradation     float64
}

// ReplicatedCombo tiles Table 2 benchmarks into an n-core combo for
// scale-out studies beyond the paper's 8-way set.
func ReplicatedCombo(n int) workload.Combo {
	base := []string{"ammp", "mcf", "crafty", "art", "facerec", "gcc", "mesa", "vortex"}
	b := make([]string, n)
	for i := 0; i < n; i++ {
		b[i] = base[i%len(base)]
	}
	return workload.Combo{ID: fmt.Sprintf("%dw-replicated", n), Benchmarks: b, Aggregate: "tiled Table 2 mix"}
}

// AblationScaleOut runs exhaustive (where tractable) and greedy MaxBIPS at
// the given widths and budget.
func (e *Env) AblationScaleOut(widths []int, budgetFrac float64) ([]ScaleOutRow, error) {
	var rows []ScaleOutRow
	for _, n := range widths {
		combo := ReplicatedCombo(n)
		cfg := e.Cfg
		cfg.Chip.NumCores = n
		env := NewEnvWith(cfg)
		env.Lib = e.Lib // profiles are per-benchmark; share the cache
		env.Budgets = []float64{budgetFrac}
		base, err := env.Baseline(combo)
		if err != nil {
			return nil, err
		}
		row := ScaleOutRow{Cores: n}
		if n <= 10 {
			res, _, err := env.RunPolicy(combo, core.MaxBIPS{}, budgetFrac)
			if err != nil {
				return nil, err
			}
			row.ExhaustiveDegradation = 1 - res.TotalInstr/base.TotalInstr
			row.ExhaustiveRan = true
		}
		res, _, err := env.RunPolicy(combo, core.GreedyMaxBIPS{}, budgetFrac)
		if err != nil {
			return nil, err
		}
		row.GreedyDegradation = 1 - res.TotalInstr/base.TotalInstr
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// A4: transition-rate sensitivity (Table 5's 10 mV/µs assumption).
// ---------------------------------------------------------------------------

// TransitionRateRow is one ramp-rate setting.
type TransitionRateRow struct {
	RateVPerUs  float64
	TurboToEff2 time.Duration
	Degradation float64
	StallShare  float64
}

// AblationTransitionRate sweeps the DVFS ramp rate with MaxBIPS at a fixed
// budget.
func (e *Env) AblationTransitionRate(rates []float64, budgetFrac float64) ([]TransitionRateRow, error) {
	combo := workload.FourWay[0]
	var rows []TransitionRateRow
	for _, r := range rates {
		cfg := e.Cfg
		cfg.Chip.TransitionRateVPerUs = r
		env := NewEnvWith(cfg)
		env.Budgets = []float64{budgetFrac}
		base, err := env.Baseline(combo)
		if err != nil {
			return nil, err
		}
		res, _, err := env.RunPolicy(combo, core.MaxBIPS{}, budgetFrac)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TransitionRateRow{
			RateVPerUs:  r,
			TurboToEff2: env.Plan.MaxTransition(),
			Degradation: 1 - res.TotalInstr/base.TotalInstr,
			StallShare:  res.TransitionStall.Seconds() / res.Elapsed.Seconds(),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// A5: MinPower, the dual problem (§1): minimize power subject to a
// throughput floor.
// ---------------------------------------------------------------------------

// MinPowerRow is one throughput-floor setting.
type MinPowerRow struct {
	TargetFrac  float64
	Degradation float64
	PowerSaving float64
}

// AblationMinPower sweeps the throughput floor with no budget pressure
// (budget = 100%).
func (e *Env) AblationMinPower(targets []float64) ([]MinPowerRow, error) {
	combo := workload.FourWay[0]
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, err
	}
	var rows []MinPowerRow
	for _, tf := range targets {
		res, _, err := e.RunPolicy(combo, core.MinPower{TargetFrac: tf}, 1.0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MinPowerRow{
			TargetFrac:  tf,
			Degradation: 1 - res.TotalInstr/base.TotalInstr,
			PowerSaving: 1 - res.AvgChipPowerW()/base.AvgChipPowerW(),
		})
	}
	return rows, nil
}
