package experiment

import (
	"math"

	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/workload"
)

// StaticChoice is the optimistic-static mode assignment of §5.7 for one
// budget: chosen with oracle knowledge of each benchmark's native per-mode
// behaviour, then held fixed for the whole run.
type StaticChoice struct {
	BudgetFrac float64
	Vector     modes.Vector
	// PredictedPowerW and PredictedRate are the native-execution averages
	// the choice was made on.
	PredictedPowerW float64
	PredictedRate   float64
}

// StaticSelect picks, for each budget fraction, the fixed per-core mode
// vector that maximizes aggregate native throughput subject to the average
// chip power fitting the budget ("the highest achievable performance among
// all possibilities for that budget via static management", §5.7).
func (e *Env) StaticSelect(combo workload.Combo, budgetFrac float64) (StaticChoice, error) {
	base, err := e.Baseline(combo)
	if err != nil {
		return StaticChoice{}, err
	}
	budgetW := budgetFrac * base.EnvelopePowerW()

	n := combo.Cores()
	nm := e.Plan.NumModes()
	// Per-core observed Turbo peaks (the envelope components): a static
	// assignment has no way to correct an overshoot, so it must fit the
	// budget in the worst case, with each peak scaled to the candidate mode
	// by the design-time law. The throughput objective still uses native
	// whole-program averages.
	peak := make([]float64, n)
	for i := range base.CorePowerW {
		for c := 0; c < n; c++ {
			if p := base.CorePowerW[i][c]; p > peak[c] {
				peak[c] = p
			}
		}
	}
	pw := make([][]float64, n)
	rate := make([][]float64, n)
	for c, name := range combo.Benchmarks {
		pr, err := e.Lib.Profile(name)
		if err != nil {
			return StaticChoice{}, err
		}
		pw[c] = make([]float64, nm)
		rate[c] = make([]float64, nm)
		for m := 0; m < nm; m++ {
			_, t := pr.WholeProgram(modes.Mode(m))
			pw[c][m] = peak[c] * e.Model.ScaleLaw(e.Plan, modes.Mode(m))
			rate[c][m] = pr.PeriodInstr / t
		}
	}

	best := StaticChoice{BudgetFrac: budgetFrac, Vector: modes.Uniform(n, modes.Mode(nm-1))}
	bestRate := -1.0
	core.EnumerateVectors(nm, n, func(v modes.Vector) bool {
		var p, r float64
		for c, m := range v {
			p += pw[c][m]
			r += rate[c][m]
		}
		if p > budgetW {
			return true
		}
		if r > bestRate || (r == bestRate && p < best.PredictedPowerW) {
			bestRate = r
			best.Vector = v.Clone()
			best.PredictedPowerW = p
			best.PredictedRate = r
		}
		return true
	})
	if bestRate < 0 {
		// Even all-deepest exceeds the budget on averages; keep the deepest
		// vector as the least-infeasible choice.
		var p, r float64
		for c := 0; c < n; c++ {
			p += pw[c][nm-1]
			r += rate[c][nm-1]
		}
		best.PredictedPowerW = p
		best.PredictedRate = r
	}
	return best, nil
}

// StaticCurve runs the optimistic-static assignment across the budget sweep.
func (e *Env) StaticCurve(combo workload.Combo) (*PolicyCurve, error) {
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, err
	}
	pc := &PolicyCurve{Policy: "Static", ComboID: combo.ID, Budgets: e.Budgets}
	for _, b := range e.Budgets {
		choice, err := e.StaticSelect(combo, b)
		if err != nil {
			return nil, err
		}
		res, _, err := e.RunPolicy(combo, core.Fixed{Vector: choice.Vector}, b)
		if err != nil {
			return nil, err
		}
		if err := pc.append(res, base, b); err != nil {
			return nil, err
		}
	}
	return pc, nil
}

// degradationGap returns the mean of (a − b) over aligned curves, used by
// Fig 11's "degradation over oracle" summary.
func degradationGap(a, b *PolicyCurve) float64 {
	if len(a.Degradation) != len(b.Degradation) || len(a.Degradation) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range a.Degradation {
		s += a.Degradation[i] - b.Degradation[i]
	}
	return s / float64(len(a.Degradation))
}
