package experiment

import (
	"testing"
	"time"
)

func TestAblationSelectors(t *testing.T) {
	e := quickEnv(t)
	rows, err := e.AblationSelectors(8, 0.80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d selector rows, want 4 (exhaustive + 3 extensions)", len(rows))
	}
	var exhaustive, stable *SelectorRow
	for i := range rows {
		r := &rows[i]
		t.Logf("%-16s deg %5.2f%%  fit %5.1f%%  stall %5.2f%%  overshoot %4.1f%%",
			r.Policy, r.Degradation*100, r.BudgetFit*100, r.StallShare*100, r.Overshoot*100)
		if r.Degradation < -0.01 || r.Degradation > 0.25 {
			t.Errorf("%s: degradation %.3f implausible", r.Policy, r.Degradation)
		}
		switch r.Policy {
		case "MaxBIPS":
			exhaustive = r
		case "StableMaxBIPS":
			stable = r
		}
	}
	if exhaustive == nil || stable == nil {
		t.Fatal("expected both MaxBIPS and StableMaxBIPS rows")
	}
	// The hysteresis variant exists to cut transition stalls.
	if stable.StallShare > exhaustive.StallShare+1e-9 {
		t.Errorf("StableMaxBIPS stall share %.4f not below plain MaxBIPS %.4f",
			stable.StallShare, exhaustive.StallShare)
	}
	// All selectors must stay within a small quality gap of exhaustive.
	for _, r := range rows {
		if r.Degradation-exhaustive.Degradation > 0.02 {
			t.Errorf("%s degradation %.3f more than 2%% behind exhaustive %.3f",
				r.Policy, r.Degradation, exhaustive.Degradation)
		}
	}
}

func TestThermalGovernance(t *testing.T) {
	e := env(t).ShortHorizon(20 * time.Millisecond)
	// Limits must stay above the all-Eff2 steady-state floor (≈76 °C with
	// this experiment's Rth scaling): below it no DVFS assignment can hold
	// the limit.
	res, err := e.Thermal([]float64{85, 82, 79})
	if err != nil {
		t.Fatal(err)
	}
	if res.UngovernedMaxTempC <= 85 {
		t.Fatalf("test premise broken: ungoverned run peaks at %.1f°C, wanted a thermally stressed setup", res.UngovernedMaxTempC)
	}
	prevDeg := -1.0
	for _, r := range res.Rows {
		t.Logf("limit %3.0f°C: max temp %5.1f°C, degradation %5.2f%%, avg power %5.1f W",
			r.LimitC, r.MaxTempC, r.Degradation*100, r.AvgPowerW)
		if r.MaxTempC > r.LimitC+1.5 {
			t.Errorf("limit %.0f°C: governed run peaked at %.1f°C", r.LimitC, r.MaxTempC)
		}
		// Tighter limits must cost at least as much performance.
		if r.Degradation+0.005 < prevDeg {
			t.Errorf("limit %.0f°C: degradation %.3f decreased with a tighter limit", r.LimitC, r.Degradation)
		}
		prevDeg = r.Degradation
	}
}
