package experiment

import (
	"time"

	"gpm/internal/cmpsim"
	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure 2: measured ∆PowerSavings : ∆PerformanceDegradation per mode, for
// the two corner benchmarks and the suite average.
// ---------------------------------------------------------------------------

// Figure2Entry holds one bar pair of Fig 2.
type Figure2Entry struct {
	Benchmark       string // "sixtrack", "mcf", or "overall"
	Mode            string
	PowerSavings    float64
	PerfDegradation float64
}

// Figure2 measures whole-program power savings and performance degradation
// for each mode, per corner benchmark and averaged over the full suite.
func (e *Env) Figure2() ([]Figure2Entry, error) {
	perBench := func(name string) ([]float64, []float64, error) {
		pr, err := e.Lib.Profile(name)
		if err != nil {
			return nil, nil, err
		}
		pT, tT := pr.WholeProgram(modes.Turbo)
		nm := e.Plan.NumModes()
		sav := make([]float64, nm)
		deg := make([]float64, nm)
		for m := 1; m < nm; m++ {
			p, t := pr.WholeProgram(modes.Mode(m))
			sav[m] = 1 - p/pT
			deg[m] = 1 - tT/t
		}
		return sav, deg, nil
	}

	var out []Figure2Entry
	appendRows := func(label string, sav, deg []float64) {
		for m := 0; m < e.Plan.NumModes(); m++ {
			out = append(out, Figure2Entry{
				Benchmark:       label,
				Mode:            e.Plan.Name(modes.Mode(m)),
				PowerSavings:    sav[m],
				PerfDegradation: deg[m],
			})
		}
	}

	for _, corner := range []string{"sixtrack", "mcf"} {
		sav, deg, err := perBench(corner)
		if err != nil {
			return nil, err
		}
		appendRows(corner, sav, deg)
	}

	names := workload.Names()
	avgSav := make([]float64, e.Plan.NumModes())
	avgDeg := make([]float64, e.Plan.NumModes())
	for _, n := range names {
		sav, deg, err := perBench(n)
		if err != nil {
			return nil, err
		}
		for m := range avgSav {
			avgSav[m] += sav[m] / float64(len(names))
			avgDeg[m] += deg[m] / float64(len(names))
		}
	}
	appendRows("overall", avgSav, avgDeg)
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 3: chip power timelines for chip-wide DVFS vs MaxBIPS at a fixed
// 83% budget, for the baseline 4-way combo and its sixtrack variant.
// ---------------------------------------------------------------------------

// Fig3Budget is the fixed budget fraction of Fig 3.
const Fig3Budget = 0.83

// Figure3Series is one panel of Fig 3.
type Figure3Series struct {
	ComboID string
	Policy  string
	// TimeUs[i] and ChipPowerFrac[i] (fraction of max chip power) sample the
	// run at delta-sim resolution; BudgetFrac is the horizontal budget line.
	TimeUs        []float64
	ChipPowerFrac []float64
	BudgetFrac    float64
	Degradation   float64
	AvgPowerFrac  float64
}

// Figure3 produces the four panels.
func (e *Env) Figure3() ([]Figure3Series, error) {
	combos := []workload.Combo{workload.FourWay[0], workload.Fig3Alternate}
	policies := []core.Policy{core.ChipWideDVFS{}, core.MaxBIPS{}}
	var out []Figure3Series
	for _, combo := range combos {
		base, err := e.Baseline(combo)
		if err != nil {
			return nil, err
		}
		maxP := base.EnvelopePowerW()
		for _, pol := range policies {
			res, _, err := e.RunPolicy(combo, pol, Fig3Budget)
			if err != nil {
				return nil, err
			}
			s := Figure3Series{
				ComboID:      combo.ID,
				Policy:       pol.Name(),
				BudgetFrac:   Fig3Budget,
				Degradation:  1 - res.TotalInstr/base.TotalInstr,
				AvgPowerFrac: res.AvgChipPowerW() / maxP,
			}
			for i, p := range res.ChipPowerW {
				s.TimeUs = append(s.TimeUs, float64(i)*res.DeltaSim.Seconds()*1e6)
				s.ChipPowerFrac = append(s.ChipPowerFrac, p/maxP)
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 4: policy curves, budget curves and weighted slowdowns for the
// (ammp, mcf, crafty, art) combination across the budget sweep.
// ---------------------------------------------------------------------------

// Figure4Result bundles the three panels of Fig 4.
type Figure4Result struct {
	ComboID string
	Curves  []*PolicyCurve
}

// Fig4Policies returns the paper's Fig 4 policy set.
func Fig4Policies() []core.Policy {
	return []core.Policy{core.PullHiPushLo{}, core.Priority{}, core.MaxBIPS{}, core.ChipWideDVFS{}}
}

// Figure4 sweeps the four §5.2/§5.3 policies on the baseline 4-way combo as
// one (policy × budget) fan-out on the env's worker pool.
func (e *Env) Figure4() (*Figure4Result, error) {
	combo := workload.FourWay[0]
	curves, err := e.Curves(combo, Fig4Policies())
	if err != nil {
		return nil, err
	}
	return &Figure4Result{ComboID: combo.ID, Curves: curves}, nil
}

// ---------------------------------------------------------------------------
// Figure 5: achieved power saving vs performance degradation per policy per
// budget, against the 3:1 target line.
// ---------------------------------------------------------------------------

// Figure5Point is one scatter point of Fig 5.
type Figure5Point struct {
	Policy          string
	BudgetFrac      float64
	PowerSaving     float64
	PerfDegradation float64
}

// Figure5 derives the scatter from the Fig 4 sweeps.
func (e *Env) Figure5() ([]Figure5Point, error) {
	f4, err := e.Figure4()
	if err != nil {
		return nil, err
	}
	var out []Figure5Point
	for _, c := range f4.Curves {
		for i := range c.Budgets {
			out = append(out, Figure5Point{
				Policy:          c.Policy,
				BudgetFrac:      c.Budgets[i],
				PowerSaving:     c.PowerSaving[i],
				PerfDegradation: c.Degradation[i],
			})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 6: MaxBIPS execution timeline with the budget dropping from 90% to
// 70% mid-run; per-application power and performance shares.
// ---------------------------------------------------------------------------

// Figure6Result holds the two stacked panels.
type Figure6Result struct {
	ComboID    string
	Benchmarks []string
	TimeUs     []float64
	// CorePowerFrac[c][i] is core c's power as a fraction of max chip power.
	CorePowerFrac [][]float64
	// CoreBIPSFrac[c][i] is core c's delta-interval BIPS as a fraction of the
	// all-Turbo average chip BIPS (instantaneous values may exceed 100% in
	// aggregate, as in the paper).
	CoreBIPSFrac [][]float64
	// BudgetFrac[i] tracks the budget line.
	BudgetFrac []float64
	// AvgBIPSBefore/After are chip BIPS fractions in the two budget regions.
	AvgBIPSBefore, AvgBIPSAfter float64
	DropAtUs                    float64
}

// Figure6 reproduces the budget-drop scenario (90% → 70%).
func (e *Env) Figure6(dropAt time.Duration) (*Figure6Result, error) {
	combo := workload.FourWay[0]
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, err
	}
	maxP := base.EnvelopePowerW()
	res, err := e.Run(combo, core.MaxBIPS{}, cmpsim.StepBudget(0.9*maxP, 0.7*maxP, dropAt))
	if err != nil {
		return nil, err
	}
	n := combo.Cores()
	out := &Figure6Result{
		ComboID:       combo.ID,
		Benchmarks:    combo.Benchmarks,
		CorePowerFrac: make([][]float64, n),
		CoreBIPSFrac:  make([][]float64, n),
		DropAtUs:      dropAt.Seconds() * 1e6,
	}
	// All-Turbo average chip instructions per delta interval.
	baseInstrPerDelta := base.TotalInstr / float64(len(base.ChipPowerW))
	var sumPre, sumPost, nPre, nPost float64
	for i := range res.ChipPowerW {
		t := float64(i) * res.DeltaSim.Seconds() * 1e6
		out.TimeUs = append(out.TimeUs, t)
		out.BudgetFrac = append(out.BudgetFrac, res.BudgetW[i]/maxP)
		var chipInstr float64
		for c := 0; c < n; c++ {
			out.CorePowerFrac[c] = append(out.CorePowerFrac[c], res.CorePowerW[i][c]/maxP)
			frac := res.CoreInstr[i][c] / baseInstrPerDelta
			out.CoreBIPSFrac[c] = append(out.CoreBIPSFrac[c], frac)
			chipInstr += res.CoreInstr[i][c]
		}
		if t < out.DropAtUs {
			sumPre += chipInstr / baseInstrPerDelta
			nPre++
		} else {
			sumPost += chipInstr / baseInstrPerDelta
			nPost++
		}
	}
	if nPre > 0 {
		out.AvgBIPSBefore = sumPre / nPre
	}
	if nPost > 0 {
		out.AvgBIPSAfter = sumPost / nPost
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 7: MaxBIPS vs the oracle upper bound, the optimistic-static lower
// bound, and chip-wide DVFS, on the baseline 4-way combo.
// ---------------------------------------------------------------------------

// Figure7 returns the four curves of Fig 7 (policy curves and weighted
// slowdowns are both carried by PolicyCurve).
func (e *Env) Figure7() (*Figure4Result, error) {
	combo := workload.FourWay[0]
	curves, err := e.Curves(combo, []core.Policy{core.ChipWideDVFS{}, core.MaxBIPS{}, core.Oracle{}})
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{ComboID: combo.ID, Curves: curves}
	st, err := e.StaticCurve(combo)
	if err != nil {
		return nil, err
	}
	res.Curves = append(res.Curves, st)
	return res, nil
}

// ---------------------------------------------------------------------------
// Figures 8, 9, 10: policy curves per Table 2 combo at 2, 4 and 8 cores.
// ---------------------------------------------------------------------------

// ScalingResult holds the curves for every combo of one CMP width.
type ScalingResult struct {
	Cores  int
	Combos []Figure4Result
}

// FigureScaling produces the Fig 8 (n=2), Fig 9 (n=4) or Fig 10 (n=8)
// panels: ChipWideDVFS, Static, MaxBIPS and Oracle per combo.
func (e *Env) FigureScaling(n int) (*ScalingResult, error) {
	combos, err := comboForWidth(n)
	if err != nil {
		return nil, err
	}
	out := &ScalingResult{Cores: n}
	for _, combo := range combos {
		curves, err := e.Curves(combo, []core.Policy{core.ChipWideDVFS{}, core.MaxBIPS{}, core.Oracle{}})
		if err != nil {
			return nil, err
		}
		fr := Figure4Result{ComboID: combo.ID, Curves: curves}
		st, err := e.StaticCurve(combo)
		if err != nil {
			return nil, err
		}
		fr.Curves = append(fr.Curves, st)
		out.Combos = append(out.Combos, fr)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 11: average degradation over the oracle for MaxBIPS, Static and
// ChipWideDVFS as the chip scales from 1 to 8 cores.
// ---------------------------------------------------------------------------

// Figure11Row is one core-count column of Fig 11.
type Figure11Row struct {
	Cores int
	// Values are mean (over budgets and combos) degradation in excess of the
	// oracle's, per approach.
	MaxBIPS, Static, ChipWide float64
}

// Figure11 computes the scaling-trend summary. Each width uses its Table 2
// combos; width 1 uses the four baseline benchmarks individually (MaxBIPS
// degenerates to chip-wide DVFS there, as the paper notes).
func (e *Env) Figure11(widths []int) ([]Figure11Row, error) {
	if widths == nil {
		widths = []int{1, 2, 4, 8}
	}
	var rows []Figure11Row
	for _, n := range widths {
		combos, err := comboForWidth(n)
		if err != nil {
			return nil, err
		}
		row := Figure11Row{Cores: n}
		for _, combo := range combos {
			curves, err := e.Curves(combo, []core.Policy{core.Oracle{}, core.MaxBIPS{}, core.ChipWideDVFS{}})
			if err != nil {
				return nil, err
			}
			oracle, mb, cw := curves[0], curves[1], curves[2]
			st, err := e.StaticCurve(combo)
			if err != nil {
				return nil, err
			}
			k := float64(len(combos))
			row.MaxBIPS += degradationGap(mb, oracle) / k
			row.ChipWide += degradationGap(cw, oracle) / k
			row.Static += degradationGap(st, oracle) / k
		}
		rows = append(rows, row)
	}
	return rows, nil
}
