package experiment

import (
	"math"
	"testing"
	"time"

	"gpm/internal/workload"
)

// sharedEnv caches one full-horizon environment across tests in this package
// (characterization is the dominant cost and is reused via the library).
var sharedEnv *Env

func env(t testing.TB) *Env {
	t.Helper()
	if sharedEnv == nil {
		sharedEnv = NewEnv(4)
	}
	return sharedEnv
}

// quickEnv trims horizon and budget grid for sweep-heavy tests.
func quickEnv(t testing.TB) *Env {
	e := env(t).ShortHorizon(15 * time.Millisecond)
	e.Budgets = []float64{0.65, 0.80, 0.95}
	return e
}

func TestTable4MatchesPaper(t *testing.T) {
	rows := Table4(env(t).Plan)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// Eff1: 1 − 0.95³ ≈ 14.26% savings, 5% degradation.
	if math.Abs(rows[1].PowerSavings-0.1426) > 0.001 {
		t.Errorf("Eff1 savings %.4f, want ≈0.1426", rows[1].PowerSavings)
	}
	if math.Abs(rows[1].PerfDegradation-0.05) > 1e-9 {
		t.Errorf("Eff1 degradation %.4f, want 0.05", rows[1].PerfDegradation)
	}
	// Eff2: 1 − 0.85³ ≈ 38.59% savings, 15% degradation.
	if math.Abs(rows[2].PowerSavings-0.3859) > 0.001 {
		t.Errorf("Eff2 savings %.4f, want ≈0.3859", rows[2].PowerSavings)
	}
	if math.Abs(rows[2].PerfDegradation-0.15) > 1e-9 {
		t.Errorf("Eff2 degradation %.4f, want 0.15", rows[2].PerfDegradation)
	}
	// Both efficiency modes approach the 3:1 target.
	for _, r := range rows[1:] {
		if r.SavingsPerDegrade < 2.5 {
			t.Errorf("%s savings:degradation %.2f below target band", r.Mode, r.SavingsPerDegrade)
		}
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	rows := Table5(env(t).Plan)
	want := map[string]time.Duration{
		"Turbo->Eff1": 6500 * time.Nanosecond,
		"Eff1->Eff2":  13000 * time.Nanosecond,
		"Turbo->Eff2": 19500 * time.Nanosecond,
	}
	if len(rows) != 3 {
		t.Fatalf("got %d transitions, want 3", len(rows))
	}
	for _, r := range rows {
		key := r.From + "->" + r.To
		w, ok := want[key]
		if !ok {
			t.Errorf("unexpected transition %s", key)
			continue
		}
		if d := r.Overhead - w; d > time.Nanosecond || d < -time.Nanosecond {
			t.Errorf("%s overhead %v, want %v", key, r.Overhead, w)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	entries, err := env(t).Figure2()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Figure2Entry{}
	for _, en := range entries {
		byKey[en.Benchmark+"/"+en.Mode] = en
	}
	six := byKey["sixtrack/Eff2"]
	mcf := byKey["mcf/Eff2"]
	all := byKey["overall/Eff2"]
	// Fig 2 corners: sixtrack near the 15% frequency cut, mcf far below,
	// overall in between; Eff2 savings in the ≈35–40% band everywhere.
	if six.PerfDegradation < 0.10 {
		t.Errorf("sixtrack Eff2 degradation %.3f, want >= 0.10", six.PerfDegradation)
	}
	if mcf.PerfDegradation > 0.05 {
		t.Errorf("mcf Eff2 degradation %.3f, want <= 0.05", mcf.PerfDegradation)
	}
	if !(mcf.PerfDegradation < all.PerfDegradation && all.PerfDegradation < six.PerfDegradation) {
		t.Errorf("ordering violated: mcf %.3f, overall %.3f, sixtrack %.3f",
			mcf.PerfDegradation, all.PerfDegradation, six.PerfDegradation)
	}
	for _, en := range []Figure2Entry{six, mcf, all} {
		if en.PowerSavings < 0.30 || en.PowerSavings > 0.45 {
			t.Errorf("%s Eff2 savings %.3f outside [0.30,0.45]", en.Benchmark, en.PowerSavings)
		}
	}
}

func TestFigure3ChipWideVsMaxBIPS(t *testing.T) {
	e := env(t).ShortHorizon(15 * time.Millisecond)
	series, err := e.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d panels, want 4", len(series))
	}
	get := func(combo, policy string) Figure3Series {
		for _, s := range series {
			if s.ComboID == combo && s.Policy == policy {
				return s
			}
		}
		t.Fatalf("panel %s/%s missing", combo, policy)
		return Figure3Series{}
	}
	base := workload.FourWay[0].ID
	alt := workload.Fig3Alternate.ID
	for _, combo := range []string{base, alt} {
		cw := get(combo, "ChipWideDVFS")
		mb := get(combo, "MaxBIPS")
		if mb.Degradation > cw.Degradation+1e-9 {
			t.Errorf("%s: MaxBIPS degradation %.3f worse than chip-wide %.3f", combo, mb.Degradation, cw.Degradation)
		}
		if mb.AvgPowerFrac > Fig3Budget*1.01 {
			t.Errorf("%s: MaxBIPS average power %.3f exceeds the 83%% budget", combo, mb.AvgPowerFrac)
		}
		t.Logf("%s: chipwide deg %.2f%% pwr %.0f%%; maxbips deg %.2f%% pwr %.0f%%",
			combo, cw.Degradation*100, cw.AvgPowerFrac*100, mb.Degradation*100, mb.AvgPowerFrac*100)
	}
	// Fig 3(c): swapping mcf for sixtrack makes chip-wide DVFS much worse,
	// while MaxBIPS stays efficient.
	cwAlt := get(alt, "ChipWideDVFS")
	mbAlt := get(alt, "MaxBIPS")
	if cwAlt.Degradation < mbAlt.Degradation+0.01 {
		t.Errorf("alt combo: expected chip-wide (%.3f) to trail MaxBIPS (%.3f) clearly", cwAlt.Degradation, mbAlt.Degradation)
	}
}

func TestFigure4CurvesMonotoneAndOrdered(t *testing.T) {
	e := quickEnv(t)
	f4, err := e.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Curves) != 4 {
		t.Fatalf("got %d curves, want 4", len(f4.Curves))
	}
	find := func(name string) *PolicyCurve {
		for _, c := range f4.Curves {
			if c.Policy == name {
				return c
			}
		}
		t.Fatalf("curve %s missing", name)
		return nil
	}
	mb := find("MaxBIPS")
	cw := find("ChipWideDVFS")
	for i := range mb.Budgets {
		if mb.Degradation[i] > cw.Degradation[i]+0.005 {
			t.Errorf("budget %.0f%%: MaxBIPS %.3f worse than chip-wide %.3f", mb.Budgets[i]*100, mb.Degradation[i], cw.Degradation[i])
		}
		if mb.BudgetFit[i] > 1.01 {
			t.Errorf("budget %.0f%%: MaxBIPS consumed %.3f of budget", mb.Budgets[i]*100, mb.BudgetFit[i])
		}
	}
	// Degradation should broadly decrease as the budget loosens.
	for _, c := range f4.Curves {
		if c.Degradation[0] < c.Degradation[len(c.Degradation)-1]-0.005 {
			t.Errorf("%s: degradation grows with budget (%.3f at %.0f%% vs %.3f at %.0f%%)",
				c.Policy, c.Degradation[0], c.Budgets[0]*100, c.Degradation[len(c.Degradation)-1], c.Budgets[len(c.Budgets)-1]*100)
		}
	}
}

func TestFigure7OracleAndStaticBounds(t *testing.T) {
	e := quickEnv(t)
	f7, err := e.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) *PolicyCurve {
		for _, c := range f7.Curves {
			if c.Policy == name {
				return c
			}
		}
		t.Fatalf("curve %s missing", name)
		return nil
	}
	mb := find("MaxBIPS")
	or := find("Oracle")
	st := find("Static")
	for i := range mb.Budgets {
		if mb.Degradation[i]-or.Degradation[i] > 0.015 {
			t.Errorf("budget %.0f%%: MaxBIPS %.3f more than 1.5%% behind oracle %.3f",
				mb.Budgets[i]*100, mb.Degradation[i], or.Degradation[i])
		}
		if st.Degradation[i] < or.Degradation[i]-0.01 {
			t.Errorf("budget %.0f%%: static %.3f implausibly beats oracle %.3f", mb.Budgets[i]*100, st.Degradation[i], or.Degradation[i])
		}
		t.Logf("budget %.0f%%: oracle %.3f maxbips %.3f static %.3f",
			mb.Budgets[i]*100, or.Degradation[i], mb.Degradation[i], st.Degradation[i])
	}
}

func TestFigure6BudgetDrop(t *testing.T) {
	e := env(t).ShortHorizon(15 * time.Millisecond)
	f6, err := e.Figure6(7 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if f6.AvgBIPSAfter >= f6.AvgBIPSBefore {
		t.Errorf("BIPS did not drop with the budget: before %.3f, after %.3f", f6.AvgBIPSBefore, f6.AvgBIPSAfter)
	}
	if f6.AvgBIPSBefore < 0.90 {
		t.Errorf("90%%-budget region BIPS %.3f implausibly low", f6.AvgBIPSBefore)
	}
	// Power must respect the 70% budget after the drop.
	for i, t1 := range f6.TimeUs {
		if t1 <= f6.DropAtUs+1000 {
			continue
		}
		var chip float64
		for c := range f6.CorePowerFrac {
			chip += f6.CorePowerFrac[c][i]
		}
		if chip > 0.70*1.05 {
			t.Errorf("t=%.0fµs: chip power %.3f exceeds 70%% budget", t1, chip)
		}
	}
}

func TestStaticSelectRespectsBudget(t *testing.T) {
	e := quickEnv(t)
	combo := workload.FourWay[0]
	base, err := e.Baseline(combo)
	if err != nil {
		t.Fatal(err)
	}
	deepest := e.Plan.NumModes() - 1
	for _, b := range []float64{0.6, 0.8, 1.0} {
		choice, err := e.StaticSelect(combo, b)
		if err != nil {
			t.Fatal(err)
		}
		if choice.PredictedPowerW > b*base.EnvelopePowerW()*1.001 {
			// A static assignment cannot throttle below the deepest mode; the
			// only acceptable over-budget outcome is that floor (budgets
			// tighter than the Eff2 scale are statically infeasible).
			for c, m := range choice.Vector {
				if int(m) != deepest {
					t.Errorf("budget %.0f%%: choice over budget (%.1f W > %.1f W) but core %d not at deepest mode",
						b*100, choice.PredictedPowerW, b*base.EnvelopePowerW(), c)
				}
			}
		}
	}
	// At 100% budget the static oracle must pick all-Turbo.
	choice, err := e.StaticSelect(combo, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for c, m := range choice.Vector {
		if m != 0 {
			t.Errorf("100%% budget: core %d statically assigned mode %d, want Turbo", c, m)
		}
	}
}

func TestValidationFullCMP(t *testing.T) {
	e := env(t)
	v, err := e.Validation(workload.FourWay[0], 2_000_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range v.Rows {
		t.Logf("%-8s ST: %5.1fW ipc %5.3f | CMP: %5.1fW ipc %5.3f | dP %+5.1f%% dIPC %+5.1f%%",
			r.Benchmark, r.STPowerW, r.STIPC, r.CMPPowerW, r.CMPIPC, r.PowerDelta*100, r.IPCDelta*100)
	}
	t.Logf("mean power drop %.1f%%, mean IPC drop %.1f%%, L2 wait %d cycles", v.MeanPowerDrop*100, v.MeanIPCDrop*100, v.L2WaitCycles)
	// §3.1 claims: CMP power within ~5% of single-threaded and consistently
	// lower; CMP IPC lower due to conflicts.
	if v.MeanPowerDrop < -0.02 || v.MeanPowerDrop > 0.15 {
		t.Errorf("mean power drop %.3f outside the validation band", v.MeanPowerDrop)
	}
	if v.MeanIPCDrop < 0 {
		t.Errorf("CMP IPC unexpectedly higher than single-threaded on average (%.3f)", v.MeanIPCDrop)
	}
}
