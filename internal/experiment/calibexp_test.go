package experiment

import (
	"fmt"
	"os"
	"testing"

	"gpm/internal/core"
	"gpm/internal/workload"
)

// Golden fingerprints for the fidelity experiments. Both fold bit-exact
// per-interval series, so any drift in the predictor, the trace schema, the
// replay lanes or the substrates moves them. Re-capture after an intentional
// numerics change:
//
//	GOLDEN_CAPTURE=1 go test ./internal/experiment -run 'TestGoldenCalibrationReport|TestGoldenRegretTable' -v
const (
	goldenCalibration = uint64(0xcfa93e2b5f5a4455)
	goldenRegret      = uint64(0x3522fe7caece6613)
)

// TestGoldenCalibrationReport pins the calibration sweep: matched
// cmpsim/fullsim recordings scored with the last-value and history
// predictors, bit-identical across worker counts.
func TestGoldenCalibrationReport(t *testing.T) {
	capture := os.Getenv("GOLDEN_CAPTURE") != ""
	run := func(workers int) *CalibrationResult {
		e := quickEnv(t)
		e.Workers = workers
		res, err := e.CalibrationSweep(workload.FourWay[0], []float64{0.80}, 8,
			[]core.Policy{core.MaxBIPS{}, core.Priority{}}, core.DefaultHistory())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(1)
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		for name, s := range map[string]float64{
			"cmp power":  c.Cmp.Power.MAPE,
			"cmp instr":  c.Cmp.Instr.MAPE,
			"full power": c.Full.Power.MAPE,
			"full instr": c.Full.Instr.MAPE,
		} {
			// Last-value prediction on SPEC-like phases: errors must be
			// sane, not vanishing — a near-zero MAPE would mean we scored a
			// prediction against itself.
			if s < 0 || s > 1.0 {
				t.Errorf("%s/%s: %s MAPE %v out of range", c.Policy, "80%", name, s)
			}
		}
	}
	got := res.Fingerprint()
	if capture {
		fmt.Printf("\tgoldenCalibration = uint64(%#x)\n", got)
	} else if got != goldenCalibration {
		t.Errorf("calibration fingerprint %#x, want %#x — fidelity pipeline drifted", got, goldenCalibration)
	}
	if again := run(3).Fingerprint(); again != got {
		t.Errorf("calibration sweep not worker-deterministic: %#x (1 worker) vs %#x (3 workers)", got, again)
	}
}

// TestGoldenRegretTable pins the counterfactual replay fan: the recorded
// policy's self-lane must show exactly zero regret, alternates must replay
// deterministically across worker counts, and the folded fingerprint is
// golden.
func TestGoldenRegretTable(t *testing.T) {
	capture := os.Getenv("GOLDEN_CAPTURE") != ""
	run := func(workers int) *RegretResult {
		e := quickEnv(t)
		e.Workers = workers
		res, err := e.CounterfactualReplay(workload.FourWay[0], core.MaxBIPS{}, 0.80, 12,
			[]core.Policy{core.Priority{}, core.ChipWideDVFS{}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(1)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want recorded + 2 alternates", len(res.Rows))
	}
	self := res.Rows[0]
	if self.Policy != res.RecordedPolicy {
		t.Fatalf("row 0 is %q, want the recorded policy %q", self.Policy, res.RecordedPolicy)
	}
	if self.Replay.CumVsRecorded != 0 || self.Replay.MatchRate() != 1 {
		t.Errorf("self-replay regret %v at %.0f%% match — replay fidelity broken",
			self.Replay.CumVsRecorded, self.Replay.MatchRate()*100)
	}
	got := res.Fingerprint()
	if capture {
		fmt.Printf("\tgoldenRegret      = uint64(%#x)\n", got)
	} else if got != goldenRegret {
		t.Errorf("regret fingerprint %#x, want %#x — replay pipeline drifted", got, goldenRegret)
	}
	if again := run(3).Fingerprint(); again != got {
		t.Errorf("counterfactual replay not worker-deterministic: %#x vs %#x", got, again)
	}
}
