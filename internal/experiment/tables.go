package experiment

import (
	"time"

	"gpm/internal/modes"
)

// Table4Row is one mode of Table 4: the analytic DVFS estimates.
type Table4Row struct {
	Mode              string
	VScale, FScale    float64
	PowerSavings      float64 // 1 − V²f
	PerfDegradation   float64 // 1 − f (upper bound)
	SavingsPerDegrade float64
}

// Table4 computes the paper's analytic estimates for every mode of the plan
// (Turbo rows report zeros).
func Table4(plan modes.Plan) []Table4Row {
	rows := make([]Table4Row, plan.NumModes())
	for m := range rows {
		mode := modes.Mode(m)
		r := Table4Row{
			Mode:            plan.Name(mode),
			VScale:          plan.VScale(mode),
			FScale:          plan.FreqScale(mode),
			PowerSavings:    plan.EstimatedPowerSavings(mode),
			PerfDegradation: plan.EstimatedPerfDegradation(mode),
		}
		if r.PerfDegradation > 0 {
			r.SavingsPerDegrade = r.PowerSavings / r.PerfDegradation
		}
		rows[m] = r
	}
	return rows
}

// Table5Row is one transition of Table 5.
type Table5Row struct {
	From, To string
	DeltaV   float64 // volts
	Overhead time.Duration
}

// Table5 computes every distinct mode transition's voltage swing and time
// overhead at the plan's ramp rate.
func Table5(plan modes.Plan) []Table5Row {
	var rows []Table5Row
	for a := 0; a < plan.NumModes(); a++ {
		for b := a + 1; b < plan.NumModes(); b++ {
			ma, mb := modes.Mode(a), modes.Mode(b)
			rows = append(rows, Table5Row{
				From:     plan.Name(ma),
				To:       plan.Name(mb),
				DeltaV:   plan.Voltage(ma) - plan.Voltage(mb),
				Overhead: plan.TransitionTime(ma, mb),
			})
		}
	}
	return rows
}
