package experiment

import (
	"fmt"
	"time"

	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/solver"
)

// ---------------------------------------------------------------------------
// A9: solver scaling. The paper's MaxBIPS enumerates modes^cores vectors and
// stops being computable past ~16 cores; the internal/solver subsystem keeps
// the same objective solvable at 64–1024 cores. This sweep measures each
// solver's solution quality (predicted throughput vs the exact reference)
// and wall-clock decision cost across chip widths, on decision instances
// built from the real benchmark characterizations (Table 2 combos tiled
// across the chip, with per-core phase offsets so replicas decorrelate).
// ---------------------------------------------------------------------------

// SolverScalingRow is one (cores, solver) cell of the sweep.
type SolverScalingRow struct {
	Cores  int
	Solver string
	// BudgetW is the instance budget (budgetFrac × all-Turbo power).
	BudgetW float64
	// PowerW and Instr are the returned vector's predicted power and
	// committed instructions for the explore interval.
	PowerW float64
	Instr  float64
	// Quality is Instr over the reference solver's; Reference names it.
	Quality   float64
	Reference string
	// Exact and GapBound echo the solver's own certificate.
	Exact    bool
	GapBound float64
	Nodes    int64
	// Wall is the measured decision wall-clock.
	Wall time.Duration
}

// SolverScalingOptions tunes the sweep.
type SolverScalingOptions struct {
	// Solvers filters the solver set (default: exhaustive, bb, dp, hier,
	// greedy; exhaustive rows are emitted only up to ExhaustiveMax cores).
	Solvers []string
	// ExhaustiveMax caps the widths the exhaustive reference runs at
	// (default 12; 3^12 ≈ 531k vectors).
	ExhaustiveMax int
	// QuantumW and ClusterSize parameterize DP and Hier (0 = defaults).
	QuantumW    float64
	ClusterSize int
	// NodeBudget caps branch-and-bound work per decision; 0 selects an
	// adaptive default that keeps ≤64-core instances exact and bounds
	// thousand-core decisions to tens of milliseconds.
	NodeBudget int64
}

func (o SolverScalingOptions) solvers() []string {
	if len(o.Solvers) > 0 {
		return o.Solvers
	}
	return []string{"exhaustive", "bb", "dp", "hier", "greedy"}
}

func (o SolverScalingOptions) exhaustiveMax() int {
	if o.ExhaustiveMax > 0 {
		return o.ExhaustiveMax
	}
	return 12
}

func (o SolverScalingOptions) nodeBudget(n int) int64 {
	if o.NodeBudget > 0 {
		return o.NodeBudget
	}
	if n <= 64 {
		return 0 // unlimited: exact in well under 10 ms
	}
	// Per-node bound cost grows with n; shrink the cap so the decision
	// stays bounded. BB reports Exact=false when it hits the cap.
	return int64(400_000_000 / n)
}

// SolverInstance builds the width-n decision instance the sweep solves: the
// §5.5 matrices predicted from the tiled Table 2 benchmark behaviours, each
// replica advanced to a different phase position so the instance is not
// degenerate-symmetric.
func (e *Env) SolverInstance(n int, budgetFrac float64) (solver.Instance, error) {
	combo := ReplicatedCombo(n)
	players, err := e.Lib.Players(combo)
	if err != nil {
		return solver.Instance{}, err
	}
	exploreSec := e.Cfg.Sim.Explore.Seconds()
	in := solver.Instance{
		Plan:  e.Plan,
		Power: make([][]float64, n),
		Instr: make([][]float64, n),
	}
	nm := e.Plan.NumModes()
	var turbo float64
	for c, pl := range players {
		// Deterministic per-core phase offset (coprime stride).
		pl.Advance(modes.Turbo, float64(c%13)*7*exploreSec)
		in.Power[c] = make([]float64, nm)
		in.Instr[c] = make([]float64, nm)
		for m := 0; m < nm; m++ {
			pw, rate := pl.Behavior(modes.Mode(m))
			in.Power[c][m] = pw
			in.Instr[c][m] = rate * exploreSec
		}
		turbo += in.Power[c][0]
	}
	in.BudgetW = budgetFrac * turbo
	return in, nil
}

// SolverScaling runs the sweep at the given widths and budget fraction.
func (e *Env) SolverScaling(widths []int, budgetFrac float64, opts SolverScalingOptions) ([]SolverScalingRow, error) {
	var rows []SolverScalingRow
	for _, n := range widths {
		in, err := e.SolverInstance(n, budgetFrac)
		if err != nil {
			return nil, err
		}
		type cell struct {
			row SolverScalingRow
			v   modes.Vector
		}
		var cells []cell
		for _, name := range opts.solvers() {
			if name == "exhaustive" && n > opts.exhaustiveMax() {
				continue
			}
			s, err := solver.New(name, solver.Options{
				QuantumW:    opts.QuantumW,
				ClusterSize: opts.ClusterSize,
				NodeLimit:   opts.nodeBudget(n),
			})
			if err != nil {
				return nil, err
			}
			v, st := s.Solve(in)
			cells = append(cells, cell{
				row: SolverScalingRow{
					Cores:    n,
					Solver:   name,
					BudgetW:  in.BudgetW,
					PowerW:   in.VectorPower(v),
					Instr:    in.VectorInstr(v),
					Exact:    st.Exact,
					GapBound: st.GapBound,
					Nodes:    st.Nodes,
					Wall:     st.Elapsed,
				},
				v: v,
			})
		}
		// Reference: the exhaustive row when present, else an exact BB row,
		// else the best throughput any solver achieved.
		ref, refName := 0.0, "best"
		for _, c := range cells {
			if c.row.Solver == "exhaustive" && c.row.Exact {
				ref, refName = c.row.Instr, "exhaustive"
			}
		}
		if refName == "best" {
			for _, c := range cells {
				if c.row.Solver == "bb" && c.row.Exact {
					ref, refName = c.row.Instr, "bb(exact)"
				}
			}
		}
		if refName == "best" {
			for _, c := range cells {
				if c.row.Instr > ref {
					ref = c.row.Instr
				}
			}
		}
		for _, c := range cells {
			if ref > 0 {
				c.row.Quality = c.row.Instr / ref
			}
			c.row.Reference = refName
			rows = append(rows, c.row)
		}
	}
	return rows, nil
}

// SolverCompareDecisions runs one 8-core combo through the CMP simulator
// twice — once under the paper's exhaustive MaxBIPS, once under the
// branch-and-bound solver in lex-tie mode — and reports whether every
// explore-interval decision was bit-identical. It is the subsystem's
// end-to-end equivalence check.
func (e *Env) SolverCompareDecisions(comboIdx int, budgetFrac float64) (identical bool, decisions int, err error) {
	combos, err := comboForWidth(8)
	if err != nil {
		return false, 0, err
	}
	if comboIdx < 0 || comboIdx >= len(combos) {
		return false, 0, fmt.Errorf("experiment: combo index %d out of range", comboIdx)
	}
	combo := combos[comboIdx]
	resA, _, err := e.RunPolicy(combo, core.MaxBIPS{}, budgetFrac)
	if err != nil {
		return false, 0, err
	}
	resB, _, err := e.RunPolicy(combo, core.SolverPolicy{Solver: &solver.BB{LexTies: true}}, budgetFrac)
	if err != nil {
		return false, 0, err
	}
	if len(resA.Modes) != len(resB.Modes) {
		return false, len(resA.Modes), nil
	}
	for i := range resA.Modes {
		if !resA.Modes[i].Equal(resB.Modes[i]) {
			return false, len(resA.Modes), nil
		}
	}
	return true, len(resA.Modes), nil
}
