package experiment

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"gpm/internal/engine"
	"gpm/internal/obs"
	"gpm/internal/workload"
)

// TestChaosSoakInvariants is the acceptance soak: ≥200 supervised decisions
// across policies × budgets under seeded randomized fault schedules, with
// zero invariant violations (conformance, finiteness, recovery, bit-identical
// reruns — determinism is asserted per cell inside the soak itself).
func TestChaosSoakInvariants(t *testing.T) {
	e := env(t)
	rep, err := e.ChaosSoak(workload.FourWay[0], ChaosOptions{
		Seed:      7,
		Runs:      2,
		Intervals: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decisions < 200 {
		t.Fatalf("soak covered %d decisions, want ≥ 200", rep.Decisions)
	}
	if err := rep.Err(); err != nil {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal(err)
	}
	sum := 0
	for _, h := range rep.RungHits {
		sum += h
	}
	if sum != rep.Decisions {
		t.Fatalf("rung hits sum to %d, decisions %d: every decision must land on exactly one rung", sum, rep.Decisions)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no per-cell rows")
	}
}

// TestChaosSoakSeedStability pins that the soak derives every schedule from
// (seed, cell identity) alone: two soaks with the same options but different
// Parallel produce identical reports.
func TestChaosSoakSeedStability(t *testing.T) {
	e := env(t)
	opts := ChaosOptions{Seed: 11, Runs: 1, Intervals: 8, Budgets: []float64{0.7}, SkipDeterminism: true}
	a := opts
	a.Parallel = 1
	b := opts
	b.Parallel = 4
	ra, err := e.ChaosSoak(workload.FourWay[0], a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := e.ChaosSoak(workload.FourWay[0], b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Decisions != rb.Decisions || ra.RungHits != rb.RungHits ||
		ra.Rejects != rb.Rejects || ra.Repairs != rb.Repairs {
		t.Fatalf("soak depends on Parallel: %+v vs %+v", ra, rb)
	}
}

// TestChaosSoakFullsim exercises the cycle-level arm of the harness: a tiny
// soak on both substrates must report fullsim rows and stay violation-free.
func TestChaosSoakFullsim(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level soak in -short mode")
	}
	e := env(t)
	rep, err := e.ChaosSoak(workload.FourWay[0], ChaosOptions{
		Seed:             3,
		Runs:             1,
		Intervals:        6,
		Budgets:          []float64{0.8},
		Fullsim:          true,
		FullsimIntervals: 4,
		SkipDeterminism:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal(err)
	}
	sawFull := false
	for _, row := range rep.Rows {
		if row.Substrate == "fullsim" {
			sawFull = true
			if row.Decisions == 0 {
				t.Error("fullsim cell made no decisions")
			}
		}
	}
	if !sawFull {
		t.Fatal("no fullsim rows in report")
	}
}

// TestChaosScenarioShape sanity-checks the schedule generator: windows clear
// by the reported time, the scenario validates, and permanent is set exactly
// when run-wide or open-ended faults are present.
func TestChaosScenarioShape(t *testing.T) {
	horizon := 10 * time.Millisecond
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc, clear, permanent := chaosScenario(rng, seed, 4, horizon, true, time.Millisecond)
		if err := sc.Validate(4); err != nil {
			t.Fatalf("seed %d: invalid scenario: %v", seed, err)
		}
		if !sc.Enabled() {
			t.Fatalf("seed %d: empty scenario", seed)
		}
		for _, sp := range sc.Spikes {
			if end := sp.At + sp.Duration; end > clear {
				t.Fatalf("seed %d: spike ends %v after reported clear %v", seed, end, clear)
			}
			if end := sp.At + sp.Duration; end > time.Duration(0.56*float64(horizon)) {
				t.Fatalf("seed %d: spike window %v runs past 0.55·horizon", seed, end)
			}
		}
		for _, st := range sc.Stalls {
			if end := st.At + st.Duration; end > clear {
				t.Fatalf("seed %d: stall ends %v after reported clear %v", seed, end, clear)
			}
		}
		hasPermanent := sc.PowerNoiseSigma != 0 || sc.InstrNoiseSigma != 0 || sc.DropProb != 0 || len(sc.Stuck) > 0
		if hasPermanent != permanent {
			t.Fatalf("seed %d: permanent=%v but scenario says %v", seed, permanent, hasPermanent)
		}
	}
}

// TestChaosHistogram pins the fixed-bucket histogram used by the report.
func TestChaosHistogram(t *testing.T) {
	h := NewHistogram(1, 4, 16)
	for _, x := range []float64{0.5, 1, 2, 4, 5, 100} {
		h.Add(x)
	}
	want := []int{2, 2, 1, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, c, want[i], h.Counts)
		}
	}
	if h.N != 6 || h.Max != 100 {
		t.Fatalf("N=%d Max=%v", h.N, h.Max)
	}
	o := NewHistogram(1, 4, 16)
	o.Add(3)
	h.Merge(o)
	if h.N != 7 || h.Counts[1] != 3 {
		t.Fatalf("merge: N=%d Counts=%v", h.N, h.Counts)
	}
}

// traceWith builds a one-record supervised trace for monitor tests.
func traceWith(t *testing.T, rung int, budgetW, predW float64, vector []int) *obs.Trace {
	t.Helper()
	return &obs.Trace{Records: []obs.Record{{
		Interval:      0,
		NowNs:         0,
		BudgetW:       budgetW,
		Vector:        vector,
		Sup:           true,
		SupRung:       rung,
		SupPredPowerW: predW,
	}}}
}

// resultN builds an empty finite Result wide enough for the monitors.
func resultN(n int) *engine.Result {
	return &engine.Result{PerCoreInstr: make([]float64, n)}
}

// TestChaosCheckCatchesViolations feeds the monitor hand-built traces and
// results to prove each invariant actually fires.
func TestChaosCheckCatchesViolations(t *testing.T) {
	mkRep := func() *ChaosReport { return newChaosReport() }
	// Conformance breach on a non-deepest vector.
	rep := mkRep()
	chaosCheck("x", 2, 0.02, 1000, 0, 8, false, traceWith(t, 0, 100, 110, []int{0, 0}), resultN(2), rep)
	if len(rep.Violations) != 1 || !strings.Contains(rep.Violations[0], "exceeds budget") {
		t.Fatalf("conformance monitor did not fire: %v", rep.Violations)
	}
	// Same breach on the uniform-deepest floor is the documented exception.
	rep = mkRep()
	chaosCheck("x", 2, 0.02, 1000, 0, 8, false, traceWith(t, 3, 100, 110, []int{2, 2}), resultN(2), rep)
	if len(rep.Violations) != 0 {
		t.Fatalf("deepest floor flagged: %v", rep.Violations)
	}
	// Recovery-bound miss: degraded rung long past fault clear.
	rep = mkRep()
	tr := traceWith(t, 1, 100, 90, []int{0, 0})
	tr.Records[0].NowNs = 100_000
	chaosCheck("x", 2, 0.02, 1000, 10_000, 8, false, tr, resultN(2), rep)
	if len(rep.Violations) != 1 || !strings.Contains(rep.Violations[0], "past fault clear") {
		t.Fatalf("recovery monitor did not fire: %v", rep.Violations)
	}
	// Permanent faults waive the recovery bound.
	rep = mkRep()
	chaosCheck("x", 2, 0.02, 1000, 10_000, 8, true, tr, resultN(2), rep)
	if len(rep.Violations) != 0 {
		t.Fatalf("recovery bound enforced despite permanent faults: %v", rep.Violations)
	}
}
