package experiment

import (
	"testing"
	"time"
)

func TestFigure5RatiosMeetTarget(t *testing.T) {
	e := quickEnv(t)
	pts, err := e.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4*len(e.Budgets) {
		t.Fatalf("got %d scatter points, want %d", len(pts), 4*len(e.Budgets))
	}
	// §5.4: per-core policies approach the 3:1 design target wherever
	// degradation is non-trivial. PullHiPushLo gets a wider band: it
	// balances *power*, and in this power model the hottest cores are the
	// CPU-bound ones, so its slowdowns cost more throughput per watt — the
	// fairness-vs-ratio trade §5.2.2 describes.
	for _, p := range pts {
		if p.Policy == "ChipWideDVFS" || p.PerfDegradation < 0.01 {
			continue
		}
		floor := 2.5
		if p.Policy == "PullHiPushLo" {
			floor = 1.7
		}
		ratio := p.PowerSaving / p.PerfDegradation
		if ratio < floor {
			t.Errorf("%s at %.0f%%: savings:degradation %.1f below the target band", p.Policy, p.BudgetFrac*100, ratio)
		}
	}
}

func TestAblationModeCount(t *testing.T) {
	e := env(t).ShortHorizon(10 * time.Millisecond)
	rows, err := e.AblationModeCount([]int{3, 5}, 0.80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		t.Logf("levels %d: maxbips %5.2f%%  chipwide %5.2f%%", r.Levels, r.MaxBIPSDegradation*100, r.ChipWideDegradation*100)
		if r.MaxBIPSDegradation > r.ChipWideDegradation+0.005 {
			t.Errorf("%d levels: MaxBIPS behind chip-wide", r.Levels)
		}
		if r.MaxBIPSDegradation < -0.01 || r.ChipWideDegradation > 0.3 {
			t.Errorf("%d levels: degradations implausible", r.Levels)
		}
	}
}

func TestAblationExploreInterval(t *testing.T) {
	e := env(t).ShortHorizon(10 * time.Millisecond)
	rows, err := e.AblationExploreInterval([]time.Duration{250 * time.Microsecond, time.Millisecond}, 0.80)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("explore %v: deg %5.2f%%  stall %5.2f%%  overshoot %5.2f%%", r.Explore, r.Degradation*100, r.StallShare*100, r.Overshoot*100)
		if r.Degradation < -0.01 || r.Degradation > 0.2 {
			t.Errorf("explore %v: degradation %.3f implausible", r.Explore, r.Degradation)
		}
		if r.StallShare < 0 || r.StallShare > 0.1 {
			t.Errorf("explore %v: stall share %.3f implausible", r.Explore, r.StallShare)
		}
	}
}

func TestAblationTransitionRate(t *testing.T) {
	e := env(t).ShortHorizon(10 * time.Millisecond)
	rows, err := e.AblationTransitionRate([]float64{0.005, 0.020}, 0.80)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].TurboToEff2 <= rows[1].TurboToEff2 {
		t.Error("slower ramp must mean longer transitions")
	}
	// A 4× ramp change should not blow up degradation at 500 µs explores
	// (the paper's 1–4% overhead argument).
	for _, r := range rows {
		if r.Degradation > 0.10 {
			t.Errorf("rate %.0f mV/µs: degradation %.3f implausible", r.RateVPerUs*1000, r.Degradation)
		}
	}
}

func TestAblationMinPowerMonotone(t *testing.T) {
	e := env(t).ShortHorizon(10 * time.Millisecond)
	rows, err := e.AblationMinPower([]float64{0.99, 0.90})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].PowerSaving <= rows[0].PowerSaving {
		t.Errorf("lower throughput floor must buy more savings: %.3f vs %.3f", rows[1].PowerSaving, rows[0].PowerSaving)
	}
	for _, r := range rows {
		t.Logf("floor %.0f%%: deg %5.2f%%  saving %5.2f%%", r.TargetFrac*100, r.Degradation*100, r.PowerSaving*100)
		// The achieved degradation should be in the neighbourhood of what
		// the floor permits (prediction error + jitter allow overshoot).
		if r.Degradation > (1-r.TargetFrac)+0.05 {
			t.Errorf("floor %.0f%%: degradation %.3f far beyond the floor", r.TargetFrac*100, r.Degradation)
		}
	}
}

func TestAblationScaleOutGreedyTracksExhaustive(t *testing.T) {
	e := env(t).ShortHorizon(10 * time.Millisecond)
	rows, err := e.AblationScaleOut([]int{4, 16}, 0.80)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].ExhaustiveRan {
		t.Fatal("exhaustive should run at 4 cores")
	}
	if rows[1].ExhaustiveRan {
		t.Fatal("exhaustive should not run at 16 cores")
	}
	if gap := rows[0].GreedyDegradation - rows[0].ExhaustiveDegradation; gap > 0.01 {
		t.Errorf("greedy trails exhaustive by %.3f at 4 cores", gap)
	}
	if rows[1].GreedyDegradation < -0.01 || rows[1].GreedyDegradation > 0.15 {
		t.Errorf("16-core greedy degradation %.3f implausible", rows[1].GreedyDegradation)
	}
}
