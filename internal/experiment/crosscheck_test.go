package experiment

import (
	"testing"

	"gpm/internal/workload"
)

func TestCrossCheckPolicyRanking(t *testing.T) {
	e := quickEnv(t)
	res, err := e.CrossCheck(workload.FourWay[0], 0.75, 30)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CrossCheckRow{}
	for _, r := range res.Rows {
		t.Logf("%-13s trace %6.2f%%  full-CMP %6.2f%%", r.Policy, r.TraceDeg*100, r.FullDeg*100)
		byName[r.Policy] = r
	}
	mb, cw := byName["MaxBIPS"], byName["ChipWideDVFS"]
	// The §3.1 consistency claim: both engines rank MaxBIPS ahead of
	// chip-wide DVFS at a tight budget.
	if mb.TraceDeg > cw.TraceDeg+0.005 {
		t.Errorf("trace engine: MaxBIPS (%.3f) behind chip-wide (%.3f)", mb.TraceDeg, cw.TraceDeg)
	}
	if mb.FullDeg > cw.FullDeg+0.01 {
		t.Errorf("cycle-level engine: MaxBIPS (%.3f) behind chip-wide (%.3f)", mb.FullDeg, cw.FullDeg)
	}
	// Degradations must be in a plausible band in both engines.
	for _, r := range res.Rows {
		if r.FullDeg < -0.05 || r.FullDeg > 0.40 {
			t.Errorf("%s: full-CMP degradation %.3f implausible", r.Policy, r.FullDeg)
		}
	}
}
