package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gpm/internal/cmpsim"
	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/fault"
	"gpm/internal/fullsim"
	"gpm/internal/obs"
	"gpm/internal/workload"
)

// ---------------------------------------------------------------------------
// R2: chaos soak. The decision supervisor (engine.SupervisorConfig) promises
// that no matter what the fault injectors do to the telemetry, the budget or
// the decision path, every actuated vector conforms to the budget under the
// supervisor's own predictions and the system recovers once faults clear.
// This harness runs seeded randomized fault schedules — composed
// internal/fault injectors with random onset and duration — against invariant
// monitors, across policies × budgets on both substrates, and reports MTTR,
// overshoot histograms and per-rung hit rates. A violation is a bug in the
// supervisor, not a property of the workload.
// ---------------------------------------------------------------------------

// Histogram is a fixed-bucket histogram: Bounds[i] is bucket i's inclusive
// upper bound, with one extra overflow bucket at the end. The zero value is
// unusable; build with NewHistogram.
type Histogram struct {
	Bounds []float64
	Counts []int
	N      int
	Sum    float64
	Max    float64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := 0
	for i < len(h.Bounds) && x > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.N++
	h.Sum += x
	if x > h.Max {
		h.Max = x
	}
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Merge folds another histogram with identical bounds into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.N += o.N
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// ChaosOptions tunes the soak.
type ChaosOptions struct {
	// Seed is the base PRNG seed; every fault schedule derives its own from
	// it, so the whole soak is reproducible. Default 1.
	Seed int64
	// Runs is the number of randomized fault schedules per
	// (policy × budget) cell. Default 2.
	Runs int
	// Intervals is the explore-interval horizon of each trace-substrate run.
	// Default 25.
	Intervals int
	// Policies is the policy set. Default MaxBIPS, GreedyMaxBIPS and the
	// hysteresis StableMaxBIPS (whose hold-last-vector behaviour is exactly
	// what the conformance gate exists to catch during brownouts). Stateful
	// policies are shared across concurrent runs; pass Parallel: 1 when
	// supplying one that is not safe to share.
	Policies []core.Policy
	// Budgets are budget fractions of the combo's envelope power.
	// Default {0.60, 0.80}.
	Budgets []float64
	// ToleranceFrac is the supervisor's conformance tolerance (0 = its
	// default, 0.02); the monitors check against the same value.
	ToleranceFrac float64
	// NodeBudget is the deterministic per-decision solver bound, passed
	// through to the supervisor config (meaningful for solver-backed
	// policies).
	NodeBudget int64
	// Deadline, when positive, arms the wall-clock watchdog and adds wedged
	// solver-stall windows to the fault schedules. Wall-clock deadlines are
	// nondeterministic, so the bit-identical-rerun monitor is skipped.
	Deadline time.Duration
	// RecoverK is the recovery bound: after the last transient fault window
	// clears, the supervisor must be back on rung 0 within RecoverK explore
	// intervals. Default 8.
	RecoverK int
	// Fullsim adds one cycle-level run per (policy × budget) cell over
	// FullsimIntervals explore intervals (default 6). The chip width is
	// e.Cfg.Chip.NumCores, which must match the combo.
	Fullsim          bool
	FullsimIntervals int
	// Parallel bounds concurrent runs. Default Env.Workers.
	Parallel int
	// CheckDeterminism reruns every cell and requires bit-identical result
	// and trace fingerprints (skipped when Deadline > 0). Default on for
	// Deadline == 0; set SkipDeterminism to disable.
	SkipDeterminism bool
}

// ChaosRow summarizes one (substrate, policy, budget) cell of the soak.
type ChaosRow struct {
	Substrate  string
	Policy     string
	BudgetFrac float64
	Decisions  int
	RungHits   [4]int
	Rejects    int
	Repairs    int
	Timeouts   int
	Wedged     int
	Violations int
}

// ChaosReport aggregates the soak: per-rung hit rates, conformance-gate
// activity, recovery latency and physical-overshoot histograms, and the
// invariant violations (empty on a healthy supervisor).
type ChaosReport struct {
	Runs      int
	Decisions int
	RungHits  [4]int
	Rejects   int
	Repairs   int
	Timeouts  int
	Wedged    int
	// MTTR is the distribution of degraded-episode lengths in explore
	// intervals (time from first rung>0 decision to the next rung-0
	// decision).
	MTTR *Histogram
	// OvershootW / OvershootLen are the physical budget-overshoot
	// magnitude (watts over budget) and duration (delta intervals)
	// distributions — report-only: transient physical overshoot between
	// explore boundaries is the guard's territory, while the supervisor's
	// invariant is about what it knowingly actuates.
	OvershootW   *Histogram
	OvershootLen *Histogram
	Rows         []ChaosRow
	// Violations are invariant failures: conformance breaches, non-finite
	// reported metrics, recovery-bound misses, determinism breaks.
	Violations []string
}

func newChaosReport() *ChaosReport {
	return &ChaosReport{
		MTTR:         NewHistogram(1, 2, 4, 8, 16),
		OvershootW:   NewHistogram(1, 5, 10, 20, 50),
		OvershootLen: NewHistogram(1, 5, 10, 25, 50),
	}
}

func (r *ChaosReport) merge(o *ChaosReport) {
	r.Runs += o.Runs
	r.Decisions += o.Decisions
	for i := range o.RungHits {
		r.RungHits[i] += o.RungHits[i]
	}
	r.Rejects += o.Rejects
	r.Repairs += o.Repairs
	r.Timeouts += o.Timeouts
	r.Wedged += o.Wedged
	r.MTTR.Merge(o.MTTR)
	r.OvershootW.Merge(o.OvershootW)
	r.OvershootLen.Merge(o.OvershootLen)
	r.Violations = append(r.Violations, o.Violations...)
}

// Err returns a non-nil error when any invariant was violated, so callers
// (gpmsim chaos, CI) can gate on the soak with one check.
func (r *ChaosReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("chaos soak: %d invariant violation(s); first: %s", len(r.Violations), r.Violations[0])
}

// chaosScenario draws one randomized fault schedule: 1–3 transient budget
// excursions (including total brownouts, which force the ladder to its
// deepest rung), plus — with independent probabilities — sensor noise,
// counter noise, sample dropout and a stuck power sensor. All transient
// windows clear by ~0.55·horizon so the recovery monitor has room to fire.
// It returns the schedule, the simulated time by which every transient
// window has cleared, and whether the schedule contains permanent faults
// (run-wide noise, stuck sensors) that make full recovery to rung 0
// unenforceable.
func chaosScenario(rng *rand.Rand, seed int64, n int, horizon time.Duration, stalls bool, hang time.Duration) (sc fault.Scenario, clear time.Duration, permanent bool) {
	sc.Seed = seed
	h := horizon.Seconds()
	window := func(minOn, maxOn, minDur, maxDur float64) (at, dur time.Duration) {
		on := minOn + rng.Float64()*(maxOn-minOn)
		d := minDur + rng.Float64()*(maxDur-minDur)
		if on+d > 0.55 {
			d = 0.55 - on
		}
		return time.Duration(on * h * float64(time.Second)), time.Duration(d * h * float64(time.Second))
	}
	scales := []float64{0, 0.05, 0.3, 0.7, 1.5}
	for i, k := 0, 1+rng.Intn(3); i < k; i++ {
		at, dur := window(0.10, 0.35, 0.05, 0.20)
		sp := fault.BudgetSpike{At: at, Duration: dur, Scale: scales[rng.Intn(len(scales))]}
		sc.Spikes = append(sc.Spikes, sp)
		if end := sp.At + sp.Duration; end > clear {
			clear = end
		}
	}
	if stalls {
		at, dur := window(0.15, 0.40, 0.05, 0.15)
		sc.Stalls = append(sc.Stalls, fault.SolverStall{At: at, Duration: dur, Hang: hang})
		if end := at + dur; end > clear {
			clear = end
		}
	}
	if rng.Float64() < 0.5 {
		sc.PowerNoiseSigma = 0.02 + rng.Float64()*0.06
		permanent = true
	}
	if rng.Float64() < 0.3 {
		sc.InstrNoiseSigma = 0.01 + rng.Float64()*0.04
		permanent = true
	}
	if rng.Float64() < 0.3 {
		sc.DropProb = 0.01 + rng.Float64()*0.04
		sc.DropAsNaN = rng.Float64() < 0.5
		permanent = true
	}
	if rng.Float64() < 0.3 {
		stuck := math.NaN()
		if rng.Float64() < 0.5 {
			stuck = rng.Float64() * 5 // plausible-but-wrong low reading
		}
		at, _ := window(0.10, 0.40, 0, 0)
		sc.Stuck = append(sc.Stuck, fault.StuckFault{Core: rng.Intn(n), At: at, PowerW: stuck})
		permanent = true
	}
	return sc, clear, permanent
}

// scanNonFinite checks every reported metric of a Result for NaN/Inf.
func scanNonFinite(res *engine.Result) []string {
	var v []string
	bad := func(name string, x float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			v = append(v, fmt.Sprintf("non-finite %s = %v", name, x))
		}
	}
	for i := range res.ChipPowerW {
		bad(fmt.Sprintf("ChipPowerW[%d]", i), res.ChipPowerW[i])
		bad(fmt.Sprintf("BudgetW[%d]", i), res.BudgetW[i])
		for c := range res.CorePowerW[i] {
			bad(fmt.Sprintf("CorePowerW[%d][%d]", i, c), res.CorePowerW[i][c])
			bad(fmt.Sprintf("CoreInstr[%d][%d]", i, c), res.CoreInstr[i][c])
		}
	}
	for c := range res.PerCoreInstr {
		bad(fmt.Sprintf("PerCoreInstr[%d]", c), res.PerCoreInstr[c])
	}
	for i := range res.MaxTempC {
		bad(fmt.Sprintf("MaxTempC[%d]", i), res.MaxTempC[i])
	}
	bad("TotalInstr", res.TotalInstr)
	bad("EnergyJ", res.EnergyJ)
	bad("OvershootEnergyWs", res.OvershootEnergyWs)
	bad("WorstOvershootWs", res.WorstOvershootWs)
	return v
}

// chaosCheck runs the invariant monitors over one soaked run and folds the
// outcome into rep:
//
//   - conformance: no supervised decision's predicted power exceeds
//     budget × (1+tol) unless the vector is the uniform-deepest emergency
//     floor (the one rung with nothing left to demote);
//   - finiteness: no NaN/Inf anywhere in the reported Result;
//   - recovery: within recoverK explore intervals of the last transient
//     fault window clearing, the ladder is back on rung 0 (enforced only
//     for schedules without permanent faults).
//
// It also accumulates the MTTR and physical-overshoot histograms.
func chaosCheck(label string, deepest int, tol float64, exploreNs, clearNs int64, recoverK int, permanent bool, tr *obs.Trace, res *engine.Result, rep *ChaosReport) {
	for _, s := range scanNonFinite(res) {
		rep.Violations = append(rep.Violations, label+": "+s)
	}
	isDeepest := func(v []int) bool {
		for _, m := range v {
			if m != deepest {
				return false
			}
		}
		return true
	}
	degraded := 0
	for i := range tr.Records {
		rec := &tr.Records[i]
		if !rec.Sup {
			continue
		}
		eps := 1e-9 * (1 + math.Abs(rec.BudgetW))
		if rec.SupPredPowerW > rec.BudgetW*(1+tol)+eps && !isDeepest(rec.Vector) {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s: interval %d: actuated predicted power %.3f W exceeds budget %.3f W × (1+%.3g) on rung %d",
				label, rec.Interval, rec.SupPredPowerW, rec.BudgetW, tol, rec.SupRung))
		}
		if rec.SupRung > 0 {
			degraded++
		} else if degraded > 0 {
			rep.MTTR.Add(float64(degraded))
			degraded = 0
		}
		if !permanent && clearNs > 0 && rec.NowNs >= clearNs+int64(recoverK)*exploreNs && rec.SupRung != 0 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s: interval %d: still on rung %d, %d intervals past fault clear (bound %d)",
				label, rec.Interval, rec.SupRung, (rec.NowNs-clearNs)/exploreNs, recoverK))
		}
	}
	if degraded > 0 {
		rep.MTTR.Add(float64(degraded))
	}
	overW, overLen := 0.0, 0
	for i := range res.ChipPowerW {
		if over := res.ChipPowerW[i] - res.BudgetW[i]; over > 0 {
			overLen++
			if over > overW {
				overW = over
			}
		} else if overLen > 0 {
			rep.OvershootW.Add(overW)
			rep.OvershootLen.Add(float64(overLen))
			overW, overLen = 0, 0
		}
	}
	if overLen > 0 {
		rep.OvershootW.Add(overW)
		rep.OvershootLen.Add(float64(overLen))
	}
	rep.Runs++
	rep.Decisions += res.Obs.Decisions
	for r := range res.Obs.SupervisorRungs {
		rep.RungHits[r] += res.Obs.SupervisorRungs[r]
	}
	rep.Rejects += res.Obs.ConformanceRejects
	rep.Repairs += res.Obs.ConformanceRepairs
	rep.Timeouts += res.Obs.DeadlineTimeouts
	rep.Wedged += res.Obs.WedgedDecisions
}

// ChaosSoak runs the randomized fault soak for a combo and returns the
// aggregated report. Cells fan out on the env's bounded pool; every fault
// schedule derives deterministically from opts.Seed and the cell identity,
// so the soak is bit-identically reproducible for any Parallel value
// (and asserts exactly that, per cell, unless SkipDeterminism or a
// wall-clock Deadline makes reruns nondeterministic by construction).
func (e *Env) ChaosSoak(combo workload.Combo, opts ChaosOptions) (*ChaosReport, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Runs <= 0 {
		opts.Runs = 2
	}
	if opts.Intervals <= 0 {
		opts.Intervals = 25
	}
	if opts.Policies == nil {
		opts.Policies = []core.Policy{core.MaxBIPS{}, core.GreedyMaxBIPS{}, core.StableMaxBIPS{}}
	}
	if opts.Budgets == nil {
		opts.Budgets = []float64{0.60, 0.80}
	}
	if opts.RecoverK <= 0 {
		opts.RecoverK = 8
	}
	if opts.FullsimIntervals <= 0 {
		opts.FullsimIntervals = 6
	}
	if opts.Parallel <= 0 {
		opts.Parallel = e.workers()
	}
	tol := opts.ToleranceFrac
	if tol == 0 {
		tol = 0.02
	}
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, err
	}
	envelope := base.EnvelopePowerW()
	n := combo.Cores()
	deepest := e.Plan.NumModes() - 1
	explore := e.Cfg.Sim.Explore

	type job struct {
		substrate string
		pol       core.Policy
		frac      float64
		run       int
		intervals int
		seed      int64
	}
	var jobs []job
	for pi, pol := range opts.Policies {
		for bi, frac := range opts.Budgets {
			for k := 0; k < opts.Runs; k++ {
				seed := opts.Seed*1_000_003 + int64(pi)*104_729 + int64(bi)*7919 + int64(k)*613
				jobs = append(jobs, job{"cmpsim", pol, frac, k, opts.Intervals, seed})
			}
			if opts.Fullsim {
				seed := opts.Seed*1_000_003 + int64(pi)*104_729 + int64(bi)*7919 + 499_979
				jobs = append(jobs, job{"fullsim", pol, frac, 0, opts.FullsimIntervals, seed})
			}
		}
	}

	supCfg := func() *engine.SupervisorConfig {
		return &engine.SupervisorConfig{
			Deadline:      opts.Deadline,
			NodeBudget:    opts.NodeBudget,
			ToleranceFrac: opts.ToleranceFrac,
		}
	}
	frags := make([]*ChaosReport, len(jobs))
	err = forEach(opts.Parallel, len(jobs), func(i int) error {
		j := jobs[i]
		label := fmt.Sprintf("%s/%s/budget=%.2f/seed=%d", j.substrate, j.pol.Name(), j.frac, j.seed)
		rng := rand.New(rand.NewSource(j.seed))
		hor := explore * time.Duration(j.intervals)
		sc, clear, permanent := chaosScenario(rng, j.seed, n, hor, opts.Deadline > 0, 4*opts.Deadline)
		budgetW := j.frac * envelope
		guarded := j.run%2 == 0

		runOnce := func() (*engine.Result, *obs.Trace, error) {
			col := obs.NewCollector(nil)
			var guard *core.GuardConfig
			if guarded {
				guard = &core.GuardConfig{}
			}
			var res *engine.Result
			var err error
			if j.substrate == "fullsim" {
				chip, cerr := fullsim.NewWithOptions(e.Cfg, e.Model, e.Plan, combo.Benchmarks, 0, nil,
					fullsim.Options{Workers: e.chipWorkers(len(jobs))})
				if cerr != nil {
					return nil, nil, cerr
				}
				chip.Warm(20_000)
				res, err = chip.Managed(fullsim.ManagedOptions{
					Policy:     j.pol,
					BudgetW:    budgetW,
					Intervals:  j.intervals,
					Fault:      &sc,
					Guard:      guard,
					Supervisor: supCfg(),
					Observer:   col,
				})
			} else {
				res, err = cmpsim.Run(e.Lib, combo, cmpsim.Options{
					Budget:     cmpsim.FixedBudget(budgetW),
					Policy:     j.pol,
					Predictor:  e.Predictor(),
					Horizon:    hor,
					Fault:      &sc,
					Guard:      guard,
					Supervisor: supCfg(),
					Observer:   col,
				})
			}
			if err != nil {
				return nil, nil, err
			}
			return res, col.Trace(), nil
		}

		res, tr, err := runOnce()
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		rep := newChaosReport()
		chaosCheck(label, deepest, tol, explore.Nanoseconds(), clear.Nanoseconds(),
			opts.RecoverK, permanent, tr, res, rep)
		if !opts.SkipDeterminism && opts.Deadline == 0 {
			res2, tr2, err := runOnce()
			if err != nil {
				return fmt.Errorf("%s: rerun: %w", label, err)
			}
			if obs.ResultFingerprint(res) != obs.ResultFingerprint(res2) ||
				obs.TraceFingerprint(tr) != obs.TraceFingerprint(tr2) {
				rep.Violations = append(rep.Violations, label+": rerun with identical seed diverged (determinism break)")
			}
		}
		rep.Rows = []ChaosRow{{
			Substrate:  j.substrate,
			Policy:     j.pol.Name(),
			BudgetFrac: j.frac,
			Decisions:  res.Obs.Decisions,
			RungHits:   res.Obs.SupervisorRungs,
			Rejects:    res.Obs.ConformanceRejects,
			Repairs:    res.Obs.ConformanceRepairs,
			Timeouts:   res.Obs.DeadlineTimeouts,
			Wedged:     res.Obs.WedgedDecisions,
			Violations: len(rep.Violations),
		}}
		frags[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := newChaosReport()
	rowIdx := map[string]int{}
	for _, f := range frags {
		rows := f.Rows
		f.Rows = nil
		out.merge(f)
		for _, row := range rows {
			key := fmt.Sprintf("%s|%s|%.2f", row.Substrate, row.Policy, row.BudgetFrac)
			if k, ok := rowIdx[key]; ok {
				r := &out.Rows[k]
				r.Decisions += row.Decisions
				for i := range row.RungHits {
					r.RungHits[i] += row.RungHits[i]
				}
				r.Rejects += row.Rejects
				r.Repairs += row.Repairs
				r.Timeouts += row.Timeouts
				r.Wedged += row.Wedged
				r.Violations += row.Violations
			} else {
				rowIdx[key] = len(out.Rows)
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}
