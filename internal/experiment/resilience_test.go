package experiment

import (
	"hash/fnv"
	"math"
	"testing"

	"gpm/internal/cmpsim"
	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/workload"
)

// fingerprint hashes every numeric series of a Result bit-exactly.
func fingerprint(r *cmpsim.Result) uint64 {
	h := fnv.New64a()
	w := func(f float64) {
		var b [8]byte
		u := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, p := range r.ChipPowerW {
		w(p)
	}
	for i := range r.CorePowerW {
		for c := range r.CorePowerW[i] {
			w(r.CorePowerW[i][c])
			w(r.CoreInstr[i][c])
		}
	}
	for _, b := range r.BudgetW {
		w(b)
	}
	for _, v := range r.Modes {
		for _, m := range v {
			w(float64(m))
		}
	}
	w(r.TotalInstr)
	w(r.EnergyJ)
	w(float64(r.Elapsed))
	w(float64(r.TransitionStall))
	w(float64(r.OvershootIntervals))
	return h.Sum64()
}

// TestRunPolicyGoldenBitIdentical pins RunPolicy to the exact pre-fault-
// framework behaviour: with no injector and no guard configured, every
// series must be bit-identical to the seed tree (fingerprints captured on
// the unmodified simulator, full default horizon, 80% budget).
func TestRunPolicyGoldenBitIdentical(t *testing.T) {
	golden := map[string]uint64{
		"MaxBIPS":       0x80257d1d2291e747,
		"GreedyMaxBIPS": 0xdad01b824d93a696,
		"Priority":      0x1f637f5468c205f5,
	}
	const goldenBase = uint64(0x295c2d3550a2b753)
	e := env(t)
	combo := workload.FourWay[0]
	for _, pol := range []core.Policy{core.MaxBIPS{}, core.GreedyMaxBIPS{}, core.Priority{}} {
		res, base, err := e.RunPolicy(combo, pol, 0.80)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(base); got != goldenBase {
			t.Fatalf("baseline fingerprint %#x, want seed %#x", got, goldenBase)
		}
		if got, want := fingerprint(res), golden[pol.Name()]; got != want {
			t.Errorf("%s: fingerprint %#x, want seed %#x — fault-free behaviour drifted from the seed tree", pol.Name(), got, want)
		}
	}
}

func TestResilienceSweep(t *testing.T) {
	e := quickEnv(t)
	combo := workload.FourWay[0]
	rates := []float64{0, 0.10, 0.25}
	pts, err := e.ResilienceSweep(combo, ResiliencePolicies(), rates, ResilienceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ResiliencePolicies()) * len(rates) * 2; len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	byKey := map[[2]string]map[float64]ResiliencePoint{}
	for _, p := range pts {
		g := "unguarded"
		if p.Guarded {
			g = "guarded"
		}
		k := [2]string{p.Policy, g}
		if byKey[k] == nil {
			byKey[k] = map[float64]ResiliencePoint{}
		}
		byKey[k][p.FaultRate] = p
		if p.Degradation < -0.05 || p.Degradation > 1 {
			t.Errorf("%s rate %.2f guarded=%v: degradation %.3f out of range", p.Policy, p.FaultRate, p.Guarded, p.Degradation)
		}
		t.Logf("%-13s rate %.2f %-9s deg %6.2f%%  avg/budget %.2f  overshoot %5.1f%%  worst %.3g W·s  sanitized %d",
			p.Policy, p.FaultRate, g, p.Degradation*100, p.AvgPowerW/p.BudgetW, p.OvershootShare*100, p.WorstOvershootWs, p.SanitizedSamples)
	}
	for k, series := range byKey {
		clean, ok := series[0]
		if !ok {
			t.Fatalf("%v: no clean anchor point", k)
		}
		if clean.SanitizedSamples != 0 && k[1] == "unguarded" {
			t.Errorf("%v: clean unguarded run sanitized %d samples", k, clean.SanitizedSamples)
		}
		// At the highest fault rate the guard must be visibly working.
		if k[1] == "guarded" {
			if series[0.25].SanitizedSamples == 0 {
				t.Errorf("%v: guarded run at 25%% faults sanitized nothing", k)
			}
		}
	}
	// The guard's purpose: at high fault rates it bounds the worst
	// sustained violation at or below the unguarded level for each policy.
	for _, pol := range ResiliencePolicies() {
		ug := byKey[[2]string{pol.Name(), "unguarded"}][0.25]
		gd := byKey[[2]string{pol.Name(), "guarded"}][0.25]
		if gd.WorstOvershootWs > ug.WorstOvershootWs*1.25 {
			t.Errorf("%s at 25%% faults: guarded worst overshoot %.3g W·s far above unguarded %.3g W·s",
				pol.Name(), gd.WorstOvershootWs, ug.WorstOvershootWs)
		}
	}
}

// TestResilienceSweepDeterministic: the concurrent sweep must be a pure
// function of its inputs regardless of scheduling.
func TestResilienceSweepDeterministic(t *testing.T) {
	e := quickEnv(t)
	combo := workload.FourWay[0]
	rates := []float64{0.15}
	pols := []core.Policy{core.MaxBIPS{}}
	a, err := e.ResilienceSweep(combo, pols, rates, ResilienceOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ResilienceSweep(combo, pols, rates, ResilienceOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs across schedules:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestResilienceSweepPropagatesErrors: a scenario invalid for the chip
// (stuck fault on a core that does not exist) must surface, not hang.
func TestResilienceSweepPropagatesErrors(t *testing.T) {
	e := quickEnv(t)
	combo := workload.FourWay[0]
	_, err := e.ResilienceSweep(combo, []core.Policy{core.MaxBIPS{}}, []float64{0.1}, ResilienceOptions{
		Scenario: func(rate float64, seed int64) fault.Scenario {
			return fault.Scenario{Stuck: []fault.StuckFault{{Core: 99, PowerW: 1}}}
		},
	})
	if err == nil {
		t.Fatal("invalid scenario did not surface an error")
	}
}
