package experiment

import (
	"fmt"

	"gpm/internal/cmpsim"
	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/metrics"
	"gpm/internal/workload"
)

// ---------------------------------------------------------------------------
// R1: resilience sweep. The paper's manager assumes perfect per-core
// telemetry; this experiment measures how each policy degrades as that
// assumption erodes. A scaled fault profile (sensor noise, counter noise,
// sample dropout) is injected at increasing rates, with and without the
// ResilientManager guard, producing degradation-vs-fault-rate curves and
// budget-violation measures for MaxBIPS/Greedy/Priority.
// ---------------------------------------------------------------------------

// DefaultFaultProfile maps a scalar fault rate onto a mixed sensor-fault
// scenario: power noise at the rate, counter noise at half, dropout at a
// quarter. Rate 0 disables injection entirely (the clean anchor point).
func DefaultFaultProfile(rate float64, seed int64) fault.Scenario {
	return fault.Scenario{
		Seed:            seed,
		PowerNoiseSigma: rate,
		InstrNoiseSigma: rate / 2,
		DropProb:        rate / 4,
	}
}

// ResilienceOptions tunes the sweep.
type ResilienceOptions struct {
	// BudgetFrac is the budget as a fraction of the combo's envelope power.
	// Default 0.80.
	BudgetFrac float64
	// Guard configures the ResilientManager for the guarded arm of each
	// point; zero fields select defaults.
	Guard core.GuardConfig
	// Seed is the base PRNG seed; each sweep point derives its own from it
	// so points are independent but the sweep is reproducible. Default 1.
	Seed int64
	// Scenario maps (rate, seed) to the injected scenario. Default
	// DefaultFaultProfile.
	Scenario func(rate float64, seed int64) fault.Scenario
	// Parallel bounds concurrent simulations. Default Env.Workers
	// (itself defaulting to GOMAXPROCS).
	Parallel int
}

// ResiliencePoint is one (policy, fault rate, guarded?) measurement.
type ResiliencePoint struct {
	Policy    string
	FaultRate float64
	Guarded   bool
	// Degradation is throughput loss vs the fault-free all-Turbo baseline.
	Degradation float64
	AvgPowerW   float64
	BudgetW     float64
	// OvershootShare is the fraction of delta intervals over budget.
	OvershootShare float64
	// WorstOvershootWs is the worst sustained budget violation.
	WorstOvershootWs float64
	EmergencyEntries int
	SanitizedSamples int
	DeadCores        int
}

// ResilienceSweep runs every (policy × rate × {unguarded, guarded})
// combination concurrently and returns the points in deterministic order:
// policies outermost, rates inner, unguarded before guarded.
func (e *Env) ResilienceSweep(combo workload.Combo, policies []core.Policy, rates []float64, opts ResilienceOptions) ([]ResiliencePoint, error) {
	if opts.BudgetFrac == 0 {
		opts.BudgetFrac = 0.80
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Scenario == nil {
		opts.Scenario = DefaultFaultProfile
	}
	if opts.Parallel <= 0 {
		opts.Parallel = e.workers()
	}
	// Resolve the baseline up front: Env's cache is not synchronized, and
	// every worker needs the same reference anyway.
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, err
	}
	budget := opts.BudgetFrac * base.EnvelopePowerW()

	type job struct {
		policy  core.Policy
		rate    float64
		rateIdx int
		guarded bool
	}
	var jobs []job
	for _, pol := range policies {
		for ri, rate := range rates {
			for _, guarded := range []bool{false, true} {
				jobs = append(jobs, job{policy: pol, rate: rate, rateIdx: ri, guarded: guarded})
			}
		}
	}

	// Fan out on the shared bounded pool (at most opts.Parallel goroutines
	// total, not one per job); indexed writes keep the point order
	// deterministic.
	points := make([]ResiliencePoint, len(jobs))
	err = forEach(opts.Parallel, len(jobs), func(i int) error {
		j := jobs[i]
		sc := opts.Scenario(j.rate, opts.Seed+int64(j.rateIdx))
		opt := cmpsim.Options{
			Budget:    cmpsim.FixedBudget(budget),
			Policy:    j.policy,
			Predictor: e.Predictor(),
			Horizon:   e.Cfg.Sim.Horizon,
			Fault:     &sc,
		}
		if j.guarded {
			g := opts.Guard
			opt.Guard = &g
		}
		res, err := cmpsim.Run(e.Lib, combo, opt)
		if err != nil {
			return fmt.Errorf("%s rate %.2f guarded=%v: %w", j.policy.Name(), j.rate, j.guarded, err)
		}
		share := 0.0
		if len(res.ChipPowerW) > 0 {
			share = float64(res.OvershootIntervals) / float64(len(res.ChipPowerW))
		}
		points[i] = ResiliencePoint{
			Policy:           j.policy.Name(),
			FaultRate:        j.rate,
			Guarded:          j.guarded,
			Degradation:      metrics.Degradation(res.TotalInstr, base.TotalInstr),
			AvgPowerW:        res.AvgChipPowerW(),
			BudgetW:          budget,
			OvershootShare:   share,
			WorstOvershootWs: res.WorstOvershootWs,
			EmergencyEntries: res.EmergencyEntries,
			SanitizedSamples: res.SanitizedSamples,
			DeadCores:        len(res.DeadCores),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// ResiliencePolicies is the default policy set for the sweep.
func ResiliencePolicies() []core.Policy {
	return []core.Policy{core.MaxBIPS{}, core.GreedyMaxBIPS{}, core.Priority{}}
}

// RunPolicyResilient is RunPolicy with a fault scenario and optional guard:
// it runs the policy at a budget fraction of the combo's envelope power,
// injecting sc (nil for none) and guarding with guard (nil for the plain
// manager), and returns the run alongside the fault-free all-Turbo baseline.
func (e *Env) RunPolicyResilient(combo workload.Combo, policy core.Policy, budgetFrac float64, sc *fault.Scenario, guard *core.GuardConfig) (*cmpsim.Result, *cmpsim.Result, error) {
	base, err := e.Baseline(combo)
	if err != nil {
		return nil, nil, err
	}
	res, err := cmpsim.Run(e.Lib, combo, cmpsim.Options{
		Budget:    cmpsim.FixedBudget(budgetFrac * base.EnvelopePowerW()),
		Policy:    policy,
		Predictor: e.Predictor(),
		Horizon:   e.Cfg.Sim.Horizon,
		Fault:     sc,
		Guard:     guard,
		Observer:  e.Observer,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, base, nil
}
