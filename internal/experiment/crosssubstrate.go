package experiment

import (
	"fmt"
	"sort"
	"time"

	"gpm/internal/cmpsim"
	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/fullsim"
	"gpm/internal/metrics"
	"gpm/internal/modes"
	"gpm/internal/obs"
	"gpm/internal/workload"
)

// ---------------------------------------------------------------------------
// Cross-substrate agreement. With the control loop extracted into
// internal/engine, the trace-based tool and the cycle-level simulator run the
// *same* manager, middleware chain and accounting — the only thing that
// differs is the substrate underneath. This experiment quantifies how far the
// substrates themselves diverge: per policy, the throughput degradation and
// average power each substrate reports for the identical management problem.
// It is the §3.1 validation argument made mechanical: if the loop is shared,
// any disagreement is attributable to trace abstraction error, not to policy
// implementation drift.
// ---------------------------------------------------------------------------

// CrossSubstrateRow is one policy observed through both substrates.
type CrossSubstrateRow struct {
	Policy string
	// TraceDeg / FullDeg are throughput degradations vs the same-substrate
	// all-Turbo baseline over the same simulated horizon.
	TraceDeg float64
	FullDeg  float64
	// DegGap is |TraceDeg − FullDeg|: the trace abstraction's ranking error
	// for this policy.
	DegGap float64
	// TraceAvgPowerW / FullAvgPowerW are run-average chip powers.
	TraceAvgPowerW float64
	FullAvgPowerW  float64
	// TraceFit / FullFit are average power / budget: how tightly each
	// substrate's managed run tracks the budget.
	TraceFit float64
	FullFit  float64
	// TraceObs / FullObs snapshot each run's engine observability counters
	// (warm-start and delta-path session counters included) for machine-
	// readable summaries.
	TraceObs engine.ObsCounters
	FullObs  engine.ObsCounters
}

// CrossSubstrateResult is the per-policy agreement report.
type CrossSubstrateResult struct {
	ComboID    string
	BudgetFrac float64
	// BudgetW is the absolute budget both substrates were managed to
	// (budgetFrac × the trace baseline's worst-case envelope).
	BudgetW float64
	// Intervals is the explore-interval count both runs covered.
	Intervals int
	Rows      []CrossSubstrateRow
	// RankAgree reports whether both substrates order the policies
	// identically by degradation — the paper's consistency claim.
	RankAgree bool
}

// CrossSubstratePolicies is the default policy set for agreement runs.
func CrossSubstratePolicies() []core.Policy {
	return []core.Policy{core.MaxBIPS{}, core.ChipWideDVFS{}, core.Priority{}}
}

// CrossSubstrate runs each policy through both substrates — trace players
// and the cycle-level chip, both under the engine's control loop — at one
// budget over `intervals` explore intervals, and reports per-policy
// throughput/power agreement. A nil policies slice selects
// CrossSubstratePolicies.
func (e *Env) CrossSubstrate(combo workload.Combo, budgetFrac float64, intervals int, policies []core.Policy) (*CrossSubstrateResult, error) {
	if policies == nil {
		policies = CrossSubstratePolicies()
	}
	horizon := e.Cfg.Sim.Explore * time.Duration(intervals)
	n := combo.Cores()

	runTrace := func(pol core.Policy, budget func(time.Duration) float64) (*cmpsim.Result, error) {
		return cmpsim.Run(e.Lib, combo, cmpsim.Options{
			Budget:    budget,
			Policy:    pol,
			Predictor: e.Predictor(),
			Horizon:   horizon,
		})
	}
	mkChip := func(workers int) (*fullsim.Chip, error) {
		chip, err := fullsim.NewWithOptions(e.Cfg, e.Model, e.Plan, combo.Benchmarks, 0, nil,
			fullsim.Options{Workers: workers})
		if err != nil {
			return nil, err
		}
		chip.Warm(20_000)
		return chip, nil
	}

	traceBase, err := runTrace(core.Fixed{Vector: modes.Uniform(n, modes.Turbo)}, cmpsim.Unlimited())
	if err != nil {
		return nil, err
	}
	budgetW := budgetFrac * traceBase.EnvelopePowerW()

	chip, err := mkChip(e.workers())
	if err != nil {
		return nil, err
	}
	fullBase, err := chip.RunManaged(core.Fixed{Vector: modes.Uniform(n, modes.Turbo)}, 1e12, intervals)
	if err != nil {
		return nil, err
	}

	out := &CrossSubstrateResult{
		ComboID:    combo.ID,
		BudgetFrac: budgetFrac,
		BudgetW:    budgetW,
		Intervals:  intervals,
	}
	// Fan the per-policy runs (each a trace run plus a cycle-level run) out
	// on the shared pool; the chips split the worker budget so the sweep's
	// total goroutine count stays bounded by e.Workers.
	rows := make([]CrossSubstrateRow, len(policies))
	err = forEach(e.workers(), len(policies), func(i int) error {
		pol := policies[i]
		tr, err := runTrace(pol, cmpsim.FixedBudget(budgetW))
		if err != nil {
			return err
		}
		chip, err := mkChip(e.chipWorkers(len(policies)))
		if err != nil {
			return err
		}
		full, err := chip.RunManaged(pol, budgetW, intervals)
		if err != nil {
			return err
		}
		row := CrossSubstrateRow{
			Policy:         pol.Name(),
			TraceDeg:       metrics.Degradation(tr.TotalInstr, traceBase.TotalInstr),
			FullDeg:        metrics.Degradation(full.TotalInstr, fullBase.TotalInstr),
			TraceAvgPowerW: tr.AvgChipPowerW(),
			FullAvgPowerW:  full.AvgChipPowerW(),
			TraceFit:       metrics.BudgetFit(tr.AvgChipPowerW(), budgetW),
			FullFit:        metrics.BudgetFit(full.AvgChipPowerW(), budgetW),
			TraceObs:       tr.Obs,
			FullObs:        full.Obs,
		}
		if row.TraceDeg > row.FullDeg {
			row.DegGap = row.TraceDeg - row.FullDeg
		} else {
			row.DegGap = row.FullDeg - row.TraceDeg
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	out.RankAgree = sameRanking(out.Rows)
	return out, nil
}

// CrossSubstrateTraced runs one policy at one budget through both substrates
// with decision tracing attached and returns the two traces. Because both
// substrates run the identical engine loop, `obs.Diff` on the pair (or
// `gpmsim tracediff` on the written files) names the first interval, core and
// field where the trace abstraction makes the manager see a different chip —
// the §3.1 validation argument at per-decision resolution.
func (e *Env) CrossSubstrateTraced(combo workload.Combo, pol core.Policy, budgetFrac float64, intervals int) (cmpTrace, fullTrace *obs.Trace, err error) {
	horizon := e.Cfg.Sim.Explore * time.Duration(intervals)
	n := combo.Cores()

	traceBase, err := cmpsim.Run(e.Lib, combo, cmpsim.Options{
		Budget:    cmpsim.Unlimited(),
		Policy:    core.Fixed{Vector: modes.Uniform(n, modes.Turbo)},
		Predictor: e.Predictor(),
		Horizon:   horizon,
	})
	if err != nil {
		return nil, nil, err
	}
	budgetW := budgetFrac * traceBase.EnvelopePowerW()
	budgetSpec := fmt.Sprintf("fixed=%.6gW", budgetW)

	cmpCol := obs.NewCollector(e.Manifest("cmpsim", combo, pol.Name(), budgetSpec, "", false))
	cmpCol.Trace().Manifest.HorizonNs = horizon.Nanoseconds()
	if _, err := cmpsim.Run(e.Lib, combo, cmpsim.Options{
		Budget:    cmpsim.FixedBudget(budgetW),
		Policy:    pol,
		Predictor: e.Predictor(),
		Horizon:   horizon,
		Observer:  cmpCol,
	}); err != nil {
		return nil, nil, err
	}

	chip, err := fullsim.NewWithOptions(e.Cfg, e.Model, e.Plan, combo.Benchmarks, 0, nil,
		fullsim.Options{Workers: e.workers()})
	if err != nil {
		return nil, nil, err
	}
	chip.Warm(20_000)
	fullCol := obs.NewCollector(e.Manifest("fullsim", combo, pol.Name(), budgetSpec, "", false))
	fullCol.Trace().Manifest.HorizonNs = horizon.Nanoseconds()
	if _, err := chip.Managed(fullsim.ManagedOptions{
		Policy:    pol,
		BudgetW:   budgetW,
		Intervals: intervals,
		Observer:  fullCol,
	}); err != nil {
		return nil, nil, err
	}
	return cmpCol.Trace(), fullCol.Trace(), nil
}

// sameRanking reports whether sorting the policies by trace degradation and
// by cycle-level degradation yields the same order.
func sameRanking(rows []CrossSubstrateRow) bool {
	byTrace := make([]int, len(rows))
	byFull := make([]int, len(rows))
	for i := range rows {
		byTrace[i], byFull[i] = i, i
	}
	sort.SliceStable(byTrace, func(a, b int) bool { return rows[byTrace[a]].TraceDeg < rows[byTrace[b]].TraceDeg })
	sort.SliceStable(byFull, func(a, b int) bool { return rows[byFull[a]].FullDeg < rows[byFull[b]].FullDeg })
	for i := range byTrace {
		if byTrace[i] != byFull[i] {
			return false
		}
	}
	return true
}
