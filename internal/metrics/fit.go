package metrics

import (
	"fmt"
	"math"
)

// SeriesError is the typed error for fit statistics over paired series:
// which statistic rejected the input and why. Callers that sweep many
// policy × workload cells match on it to distinguish "undefined for this
// data" (constant series, no usable pairs) from malformed input.
type SeriesError struct {
	// Stat names the statistic ("mape", "bias", "pearson").
	Stat string
	// Reason is the human-readable cause.
	Reason string
}

func (e *SeriesError) Error() string {
	return fmt.Sprintf("metrics: %s: %s", e.Stat, e.Reason)
}

// checkPaired validates a (pred, actual) pair for the fit statistics: both
// series non-empty, equal length, and every entry finite. NaN/Inf inputs are
// rejected rather than skipped — a prediction series with a NaN in it is a
// bug upstream, not a data point to silently drop.
func checkPaired(stat string, pred, actual []float64) error {
	if len(pred) == 0 || len(actual) == 0 {
		return &SeriesError{Stat: stat, Reason: "empty series"}
	}
	if len(pred) != len(actual) {
		return &SeriesError{Stat: stat, Reason: fmt.Sprintf("length mismatch: %d predicted vs %d actual", len(pred), len(actual))}
	}
	for i := range pred {
		if math.IsNaN(pred[i]) || math.IsInf(pred[i], 0) {
			return &SeriesError{Stat: stat, Reason: fmt.Sprintf("non-finite predicted value %v at index %d", pred[i], i)}
		}
		if math.IsNaN(actual[i]) || math.IsInf(actual[i], 0) {
			return &SeriesError{Stat: stat, Reason: fmt.Sprintf("non-finite actual value %v at index %d", actual[i], i)}
		}
	}
	return nil
}

// MAPE returns the mean absolute percentage error of pred against actual as
// a fraction (0.03 = 3%): mean over i of |pred[i]−actual[i]| / |actual[i]|.
// Pairs whose actual is exactly zero are skipped (the ratio is undefined
// there); if every pair is skipped the statistic is undefined and a
// *SeriesError is returned.
func MAPE(pred, actual []float64) (float64, error) {
	if err := checkPaired("mape", pred, actual); err != nil {
		return 0, err
	}
	var sum float64
	n := 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, &SeriesError{Stat: "mape", Reason: "all actual values are zero"}
	}
	return sum / float64(n), nil
}

// Bias returns the mean signed error mean(pred[i]−actual[i]) in the series'
// own units: positive when the predictor overestimates on average.
func Bias(pred, actual []float64) (float64, error) {
	if err := checkPaired("bias", pred, actual); err != nil {
		return 0, err
	}
	var sum float64
	for i := range pred {
		sum += pred[i] - actual[i]
	}
	return sum / float64(len(pred)), nil
}

// PearsonR returns the Pearson correlation coefficient of the paired series.
// A constant series has zero variance, making r undefined; that case returns
// a *SeriesError rather than NaN so sweeps can report "undefined" instead of
// poisoning downstream aggregates.
func PearsonR(x, y []float64) (float64, error) {
	if err := checkPaired("pearson", x, y); err != nil {
		return 0, err
	}
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, &SeriesError{Stat: "pearson", Reason: "r undefined: constant series (zero variance)"}
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Guard rounding: |r| may exceed 1 by an ulp on near-collinear data.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, nil
}
