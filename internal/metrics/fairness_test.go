package metrics

import (
	"math"
	"testing"
)

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: %v, want 1", got)
	}
	// One cohort takes everything: index collapses to 1/n.
	if got := JainFairness([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single-winner shares: %v, want 0.25", got)
	}
	// Textbook intermediate case.
	xs := []float64{1, 2, 3}
	want := 36.0 / (3 * 14.0)
	if got := JainFairness(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("JainFairness(%v) = %v, want %v", xs, got, want)
	}
	// Scale invariance: Jain's index ignores units.
	if a, b := JainFairness([]float64{1, 2, 3}), JainFairness([]float64{100, 200, 300}); math.Abs(a-b) > 1e-12 {
		t.Errorf("not scale invariant: %v vs %v", a, b)
	}
	if got := JainFairness(nil); got != 0 {
		t.Errorf("empty input: %v, want 0", got)
	}
	if got := JainFairness([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero input: %v, want 0", got)
	}
	for _, bad := range [][]float64{
		{1, math.NaN(), 1},
		{1, math.Inf(1), 1},
		{1, math.Inf(-1), 1},
		{1, -2, 1},
	} {
		if got := JainFairness(bad); got != 0 {
			t.Errorf("JainFairness(%v) = %v, want 0", bad, got)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose; Percentile must sort a copy
	if got := Percentile(xs, 50); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("p50 = %v, want 2.5", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	// Linear interpolation between closest ranks: p25 of {1,2,3,4} sits
	// 0.75 of the way from 1 to 2.
	if got := Percentile(xs, 25); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("p25 = %v, want 1.75", got)
	}
	if xs[0] != 4 || xs[1] != 1 || xs[2] != 3 || xs[3] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("singleton p99 = %v, want 7", got)
	}
	// Non-finite samples are dropped, not propagated.
	if got := Percentile([]float64{math.NaN(), 5, math.Inf(1)}, 50); got != 5 {
		t.Errorf("polluted p50 = %v, want 5", got)
	}
	for _, bad := range []struct {
		xs []float64
		p  float64
	}{
		{nil, 50},
		{[]float64{math.NaN()}, 50},
		{[]float64{1, 2}, -1},
		{[]float64{1, 2}, 101},
		{[]float64{1, 2}, math.NaN()},
	} {
		if got := Percentile(bad.xs, bad.p); !math.IsNaN(got) {
			t.Errorf("Percentile(%v, %v) = %v, want NaN", bad.xs, bad.p, got)
		}
	}
}

func TestSummarizeLatency(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	lp := SummarizeLatency(xs)
	if math.Abs(lp.P50-50.5) > 1e-9 {
		t.Errorf("p50 = %v, want 50.5", lp.P50)
	}
	if math.Abs(lp.P95-95.05) > 1e-9 {
		t.Errorf("p95 = %v, want 95.05", lp.P95)
	}
	if math.Abs(lp.P99-99.01) > 1e-9 {
		t.Errorf("p99 = %v, want 99.01", lp.P99)
	}
	empty := SummarizeLatency(nil)
	if !math.IsNaN(empty.P50) || !math.IsNaN(empty.P95) || !math.IsNaN(empty.P99) {
		t.Errorf("empty latency summary %+v, want NaNs", empty)
	}
}
