// Package metrics computes the evaluation quantities of §5.4: throughput
// degradation relative to all-Turbo execution, budget-fit ratios, and the
// fairness-aware weighted slowdown (harmonic mean of per-thread speedups)
// and weighted speedup (arithmetic mean).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Degradation returns the performance degradation of a policy run relative
// to a baseline over the same wall-clock window: 1 − policy/baseline
// aggregate committed instructions.
func Degradation(policyInstr, baselineInstr float64) float64 {
	if baselineInstr <= 0 {
		return 0
	}
	return 1 - policyInstr/baselineInstr
}

// PerThreadSpeedups divides per-core instruction counts element-wise:
// policy[i]/baseline[i].
func PerThreadSpeedups(policy, baseline []float64) ([]float64, error) {
	if len(policy) != len(baseline) {
		return nil, fmt.Errorf("metrics: %d policy cores vs %d baseline cores", len(policy), len(baseline))
	}
	out := make([]float64, len(policy))
	for i := range policy {
		if baseline[i] <= 0 {
			return nil, fmt.Errorf("metrics: baseline core %d committed nothing", i)
		}
		out[i] = policy[i] / baseline[i]
	}
	return out, nil
}

// HarmonicMean returns the harmonic mean of positive values.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// ArithmeticMean returns the mean of the values.
func ArithmeticMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WeightedSlowdown is §5.4's fairness metric: 100% minus the harmonic mean
// of per-thread speedups, returned as a fraction (0.03 = 3%).
func WeightedSlowdown(speedups []float64) float64 {
	return 1 - HarmonicMean(speedups)
}

// WeightedSpeedupSlowdown is the arithmetic-mean variant the paper reports
// as giving "negligible differences".
func WeightedSpeedupSlowdown(speedups []float64) float64 {
	return 1 - ArithmeticMean(speedups)
}

// BudgetFit returns consumed/budget power as a fraction — the budget-curve
// quantity of Fig 4(b).
func BudgetFit(avgPowerW, budgetW float64) float64 {
	if budgetW <= 0 {
		return 0
	}
	return avgPowerW / budgetW
}

// OvershootEnergyWs integrates the budget violation over a power series:
// Σ max(0, power[i] − budget[i]) · dtSeconds, in watt·seconds. The series
// must be equal length; the shorter one bounds the sum.
func OvershootEnergyWs(powerW, budgetW []float64, dtSeconds float64) float64 {
	n := len(powerW)
	if len(budgetW) < n {
		n = len(budgetW)
	}
	var ws float64
	for i := 0; i < n; i++ {
		if over := powerW[i] - budgetW[i]; over > 0 {
			ws += over * dtSeconds
		}
	}
	return ws
}

// WorstSustainedOvershootWs returns the largest watt·seconds accumulated by
// any single contiguous run of over-budget intervals — the quantity a
// package's thermal/electrical margin must absorb before the manager
// corrects. Short excursions that dip back under budget reset the run.
func WorstSustainedOvershootWs(powerW, budgetW []float64, dtSeconds float64) float64 {
	n := len(powerW)
	if len(budgetW) < n {
		n = len(budgetW)
	}
	var worst, cur float64
	for i := 0; i < n; i++ {
		if over := powerW[i] - budgetW[i]; over > 0 {
			cur += over * dtSeconds
			if cur > worst {
				worst = cur
			}
		} else {
			cur = 0
		}
	}
	return worst
}

// JainFairness returns Jain's fairness index (Σx)² / (n·Σx²) over per-cohort
// allocations: 1.0 when every cohort receives an equal share, 1/n when one
// cohort receives everything. Non-finite or negative entries poison the
// index to 0 (an allocation vector with a NaN in it is not "fair"); an
// empty or all-zero vector returns 0.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs by linear
// interpolation between closest ranks, without mutating xs. Non-finite
// entries are dropped first — a latency sample set polluted by NaNs must
// not poison the percentile of the valid samples. Returns NaN when no
// finite samples remain or p is outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 100 {
		return math.NaN()
	}
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	if len(clean) == 1 {
		return clean[0]
	}
	rank := p / 100 * float64(len(clean)-1)
	lo := int(rank)
	if lo >= len(clean)-1 {
		return clean[len(clean)-1]
	}
	frac := rank - float64(lo)
	return clean[lo] + frac*(clean[lo+1]-clean[lo])
}

// LatencyPercentiles is the p50/p95/p99 bundle the serving tier reports per
// SLO class.
type LatencyPercentiles struct {
	P50, P95, P99 float64
}

// SummarizeLatency computes the standard serving percentiles of xs.
func SummarizeLatency(xs []float64) LatencyPercentiles {
	return LatencyPercentiles{
		P50: Percentile(xs, 50),
		P95: Percentile(xs, 95),
		P99: Percentile(xs, 99),
	}
}

// Series summarizes a float series.
type Series struct {
	Min, Max, Mean, Std float64
	N                   int
}

// Summarize computes the summary of xs.
func Summarize(xs []float64) Series {
	s := Series{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - s.Mean
		v += d * d
	}
	s.Std = math.Sqrt(v / float64(len(xs)))
	return s
}
