package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDegradation(t *testing.T) {
	if got := Degradation(90, 100); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("Degradation(90,100) = %v, want 0.10", got)
	}
	if got := Degradation(100, 100); got != 0 {
		t.Errorf("no-loss degradation %v", got)
	}
	if got := Degradation(50, 0); got != 0 {
		t.Errorf("zero baseline should yield 0, got %v", got)
	}
	// Speedups show as negative degradation, by design.
	if got := Degradation(110, 100); math.Abs(got-(-0.10)) > 1e-9 {
		t.Errorf("speedup case: %v, want -0.10", got)
	}
}

func TestPerThreadSpeedups(t *testing.T) {
	sp, err := PerThreadSpeedups([]float64{90, 50}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if sp[0] != 0.9 || sp[1] != 0.5 {
		t.Errorf("speedups %v", sp)
	}
	if _, err := PerThreadSpeedups([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PerThreadSpeedups([]float64{1}, []float64{0}); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestMeans(t *testing.T) {
	xs := []float64{1, 0.5}
	if got := ArithmeticMean(xs); got != 0.75 {
		t.Errorf("arithmetic mean %v", got)
	}
	// Harmonic mean of {1, 0.5} = 2/(1+2) = 2/3.
	if got := HarmonicMean(xs); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("harmonic mean %v, want 2/3", got)
	}
	if HarmonicMean(nil) != 0 || ArithmeticMean(nil) != 0 {
		t.Error("empty means should be 0")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("non-positive values should yield 0 harmonic mean")
	}
}

func TestWeightedSlowdowns(t *testing.T) {
	sp := []float64{1, 1, 1, 1}
	if WeightedSlowdown(sp) != 0 || WeightedSpeedupSlowdown(sp) != 0 {
		t.Error("all-unity speedups should have zero slowdown")
	}
	sp = []float64{0.9, 0.9}
	if got := WeightedSlowdown(sp); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("uniform 10%% slowdown: %v", got)
	}
}

// Property: harmonic mean ≤ arithmetic mean (AM–HM inequality), so the
// harmonic-mean slowdown is always at least the arithmetic one — fairness
// penalizes imbalance.
func TestAMHMProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = 0.05 + float64(r)/255.0 // (0,1.05]
		}
		return HarmonicMean(xs) <= ArithmeticMean(xs)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBudgetFit(t *testing.T) {
	if got := BudgetFit(68, 80); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("BudgetFit %v", got)
	}
	if BudgetFit(50, 0) != 0 {
		t.Error("zero budget should yield 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.N != 4 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("std %v", s.Std)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
}

// TestEdgeCases pins the behavior of every metric on hostile inputs — zero
// baselines, NaN/Inf per-core counts, and length mismatches — so downstream
// report code can rely on it. The contract: guard clauses (zero/negative
// baselines, empty series) return 0 or error; IEEE-754 specials otherwise
// propagate through the arithmetic, except where a comparison naturally
// filters them (NaN overshoot samples contribute nothing; +Inf speedups
// vanish from the harmonic mean).
func TestEdgeCases(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)

	t.Run("degradation", func(t *testing.T) {
		cases := []struct {
			name             string
			policy, baseline float64
			check            func(float64) bool
		}{
			{"nan-policy", nan, 100, math.IsNaN},
			{"inf-policy", inf, 100, func(x float64) bool { return math.IsInf(x, -1) }},
			{"inf-baseline", 50, inf, func(x float64) bool { return x == 1 }},
			{"nan-baseline", 50, nan, math.IsNaN}, // NaN passes the <=0 guard and propagates
			{"negative-baseline", 50, -1, func(x float64) bool { return x == 0 }},
		}
		for _, tc := range cases {
			if got := Degradation(tc.policy, tc.baseline); !tc.check(got) {
				t.Errorf("%s: Degradation(%v,%v) = %v", tc.name, tc.policy, tc.baseline, got)
			}
		}
	})

	t.Run("per-thread-speedups", func(t *testing.T) {
		// NaN/Inf in the policy counts propagate element-wise; only the
		// baseline guard errors.
		sp, err := PerThreadSpeedups([]float64{nan, inf, 90}, []float64{100, 100, 100})
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(sp[0]) || !math.IsInf(sp[1], 1) || sp[2] != 0.9 {
			t.Errorf("speedups %v", sp)
		}
		// A NaN baseline fails the <= 0 comparison (NaN compares false), so it
		// passes the guard and propagates — pinned so a future stricter guard
		// is a conscious change.
		sp, err = PerThreadSpeedups([]float64{90}, []float64{nan})
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(sp[0]) {
			t.Errorf("NaN baseline speedup %v, want NaN", sp[0])
		}
		if _, err := PerThreadSpeedups([]float64{1, 2}, []float64{1}); err == nil {
			t.Error("length mismatch accepted")
		}
		if _, err := PerThreadSpeedups(nil, nil); err != nil {
			t.Errorf("empty pair should be fine: %v", err)
		}
	})

	t.Run("means", func(t *testing.T) {
		if got := HarmonicMean([]float64{1, nan}); !math.IsNaN(got) {
			t.Errorf("harmonic mean with NaN = %v, want NaN", got)
		}
		// +Inf contributes 1/Inf = 0 to the inverse sum: an infinitely sped-up
		// thread drops out of the fairness metric instead of dominating it.
		if got := HarmonicMean([]float64{1, inf}); got != 2 {
			t.Errorf("harmonic mean {1,Inf} = %v, want 2", got)
		}
		if got := HarmonicMean([]float64{1, math.Inf(-1)}); got != 0 {
			t.Errorf("harmonic mean with -Inf = %v, want 0 (non-positive guard)", got)
		}
		if got := ArithmeticMean([]float64{1, nan}); !math.IsNaN(got) {
			t.Errorf("arithmetic mean with NaN = %v, want NaN", got)
		}
		if got := ArithmeticMean([]float64{1, inf}); !math.IsInf(got, 1) {
			t.Errorf("arithmetic mean with Inf = %v, want +Inf", got)
		}
	})

	t.Run("budget-fit", func(t *testing.T) {
		if got := BudgetFit(nan, 80); !math.IsNaN(got) {
			t.Errorf("BudgetFit(NaN,80) = %v, want NaN", got)
		}
		if got := BudgetFit(50, inf); got != 0 {
			t.Errorf("BudgetFit(50,Inf) = %v, want 0", got)
		}
		// A NaN budget passes the <= 0 guard (NaN compares false) and
		// propagates — same convention as the NaN-baseline speedup above.
		if got := BudgetFit(50, nan); !math.IsNaN(got) {
			t.Errorf("BudgetFit(50,NaN) = %v, want NaN", got)
		}
	})

	t.Run("overshoot", func(t *testing.T) {
		budget := []float64{10, 10, 10}
		// NaN power samples fail the > 0 comparison and contribute nothing.
		if got := OvershootEnergyWs([]float64{nan, 12, nan}, budget, 1); got != 2 {
			t.Errorf("NaN samples: overshoot = %v, want 2", got)
		}
		if got := OvershootEnergyWs([]float64{inf, 9, 9}, budget, 1); !math.IsInf(got, 1) {
			t.Errorf("Inf sample: overshoot = %v, want +Inf", got)
		}
		if got := WorstSustainedOvershootWs([]float64{12, nan, 12}, budget, 1); got != 2 {
			t.Errorf("NaN breaks the sustained run: worst = %v, want 2", got)
		}
		// Length mismatch truncates to the shorter series on both variants.
		if got := WorstSustainedOvershootWs([]float64{12, 12, 12}, budget[:1], 1); got != 2 {
			t.Errorf("truncated worst = %v, want 2", got)
		}
	})

	t.Run("summarize", func(t *testing.T) {
		// All-NaN series: every comparison is false, so Min/Max keep their
		// sentinels and Mean/Std are NaN.
		s := Summarize([]float64{nan, nan})
		if !math.IsInf(s.Min, 1) || !math.IsInf(s.Max, -1) {
			t.Errorf("all-NaN min/max = %v/%v", s.Min, s.Max)
		}
		if !math.IsNaN(s.Mean) || !math.IsNaN(s.Std) {
			t.Errorf("all-NaN mean/std = %v/%v", s.Mean, s.Std)
		}
		if s.N != 2 {
			t.Errorf("N = %d", s.N)
		}
	})
}

func TestOvershootEnergyWs(t *testing.T) {
	power := []float64{10, 12, 9, 15}
	budget := []float64{10, 10, 10, 10}
	// Violations: 0 + 2 + 0 + 5 = 7 W over 0.5 s intervals = 3.5 W·s.
	if got := OvershootEnergyWs(power, budget, 0.5); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("OvershootEnergyWs = %v, want 3.5", got)
	}
	if got := OvershootEnergyWs(nil, budget, 0.5); got != 0 {
		t.Errorf("empty series = %v", got)
	}
	// Mismatched lengths stop at the shorter series.
	if got := OvershootEnergyWs(power, budget[:2], 1); math.Abs(got-2) > 1e-12 {
		t.Errorf("truncated series = %v, want 2", got)
	}
}

func TestWorstSustainedOvershootWs(t *testing.T) {
	budget := []float64{10, 10, 10, 10, 10, 10}
	// Two runs: {+2,+3} = 5 and {+4} = 4; worst sustained is 5 W·s at dt=1.
	power := []float64{12, 13, 9, 14, 10, 10}
	if got := WorstSustainedOvershootWs(power, budget, 1); math.Abs(got-5) > 1e-12 {
		t.Errorf("worst sustained = %v, want 5", got)
	}
	// A single long run beats several short ones.
	power = []float64{11, 11, 11, 11, 9, 14}
	if got := WorstSustainedOvershootWs(power, budget, 1); math.Abs(got-4) > 1e-12 {
		t.Errorf("worst sustained = %v, want 4", got)
	}
	if got := WorstSustainedOvershootWs([]float64{5}, []float64{10}, 1); got != 0 {
		t.Errorf("under-budget series = %v, want 0", got)
	}
}
