package metrics

import (
	"errors"
	"math"
	"testing"
)

// errStat extracts the SeriesError.Stat of err, or "" for nil/untyped.
func errStat(err error) string {
	var se *SeriesError
	if errors.As(err, &se) {
		return se.Stat
	}
	return ""
}

func TestMAPE(t *testing.T) {
	cases := []struct {
		name         string
		pred, actual []float64
		want         float64
		wantErr      bool
	}{
		{"exact", []float64{1, 2, 3}, []float64{1, 2, 3}, 0, false},
		{"ten-percent-high", []float64{110, 220}, []float64{100, 200}, 0.10, false},
		{"mixed-sign-errors", []float64{90, 110}, []float64{100, 100}, 0.10, false},
		{"zero-actuals-skipped", []float64{5, 110}, []float64{0, 100}, 0.10, false},
		{"negative-actuals", []float64{-90}, []float64{-100}, 0.10, false},
		{"all-zero-actuals", []float64{1, 2}, []float64{0, 0}, 0, true},
		{"empty", nil, nil, 0, true},
		{"length-mismatch", []float64{1}, []float64{1, 2}, 0, true},
		{"nan-pred", []float64{math.NaN()}, []float64{1}, 0, true},
		{"inf-actual", []float64{1}, []float64{math.Inf(1)}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MAPE(tc.pred, tc.actual)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("MAPE(%v, %v) accepted, want error", tc.pred, tc.actual)
				}
				if errStat(err) != "mape" {
					t.Errorf("error %v is not a *SeriesError for mape", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("MAPE = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBias(t *testing.T) {
	cases := []struct {
		name         string
		pred, actual []float64
		want         float64
		wantErr      bool
	}{
		{"exact", []float64{1, 2}, []float64{1, 2}, 0, false},
		{"over", []float64{12, 14}, []float64{10, 10}, 3, false},
		{"under", []float64{8}, []float64{10}, -2, false},
		{"cancelling", []float64{9, 11}, []float64{10, 10}, 0, false},
		{"empty", []float64{}, []float64{}, 0, true},
		{"length-mismatch", []float64{1, 2}, []float64{1}, 0, true},
		{"nan", []float64{1}, []float64{math.NaN()}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Bias(tc.pred, tc.actual)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Bias(%v, %v) accepted, want error", tc.pred, tc.actual)
				}
				if errStat(err) != "bias" {
					t.Errorf("error %v is not a *SeriesError for bias", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Bias = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPearsonR(t *testing.T) {
	cases := []struct {
		name    string
		x, y    []float64
		want    float64
		wantErr bool
	}{
		{"perfect-positive", []float64{1, 2, 3}, []float64{10, 20, 30}, 1, false},
		{"perfect-negative", []float64{1, 2, 3}, []float64{3, 2, 1}, -1, false},
		{"affine", []float64{1, 2, 3, 4}, []float64{7, 9, 11, 13}, 1, false},
		{"uncorrelated", []float64{1, -1, 1, -1}, []float64{1, 1, -1, -1}, 0, false},
		{"constant-x", []float64{5, 5, 5}, []float64{1, 2, 3}, 0, true},
		{"constant-y", []float64{1, 2, 3}, []float64{4, 4, 4}, 0, true},
		{"empty", nil, []float64{}, 0, true},
		{"length-mismatch", []float64{1, 2}, []float64{1, 2, 3}, 0, true},
		{"inf", []float64{1, math.Inf(-1)}, []float64{1, 2}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := PearsonR(tc.x, tc.y)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("PearsonR(%v, %v) accepted, want error", tc.x, tc.y)
				}
				if errStat(err) != "pearson" {
					t.Errorf("error %v is not a *SeriesError for pearson", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("PearsonR = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestPearsonRClamped pins the ulp guard: near-collinear data must never
// report |r| > 1.
func TestPearsonRClamped(t *testing.T) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = 1e9 + float64(i)*1e-3
		y[i] = 3*x[i] - 2e9
	}
	r, err := PearsonR(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1 || r < -1 {
		t.Errorf("r = %v escapes [-1, 1]", r)
	}
}
