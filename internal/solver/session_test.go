package solver

import (
	"math"
	"math/rand"
	"testing"

	"gpm/internal/modes"
)

// driftInstance perturbs an instance the way consecutive explore intervals
// do: small multiplicative telemetry noise on every matrix entry, with
// occasional exact repeats (a memo opportunity) and occasional budget moves.
func driftInstance(rng *rand.Rand, in Instance) Instance {
	switch rng.Intn(6) {
	case 0:
		return in // bit-identical repeat: the memo's case
	case 1:
		in.BudgetW *= 0.9 + 0.2*rng.Float64() // budget step, matrices held
		return in
	}
	out := Instance{Plan: in.Plan, BudgetW: in.BudgetW,
		Power: make([][]float64, len(in.Power)), Instr: make([][]float64, len(in.Instr))}
	for c := range in.Power {
		out.Power[c] = append([]float64(nil), in.Power[c]...)
		out.Instr[c] = append([]float64(nil), in.Instr[c]...)
		for mo := range out.Power[c] {
			out.Power[c][mo] *= 1 + 0.02*(rng.Float64()-0.5)
			out.Instr[c][mo] *= 1 + 0.02*(rng.Float64()-0.5)
		}
	}
	if rng.Intn(4) == 0 {
		out.BudgetW *= 0.95 + 0.1*rng.Float64()
	}
	return out
}

// TestWarmVsColdBitIdentical is the tentpole's result-invariance pin: over
// seeded telemetry-delta sequences, a session solve fed the previous
// interval's vector as a hint must return the bit-identical vector of a cold
// solve of the same solver on the same instance — for every solver the
// registry can build, including the LexTies BB whose tie representative is
// the most fragile property a warm floor could disturb.
func TestWarmVsColdBitIdentical(t *testing.T) {
	type cfg struct {
		name string
		mk   func() Solver
		n    int
	}
	cfgs := []cfg{
		{"bb", func() Solver { return &BB{} }, 12},
		{"bb-lexties", func() Solver { return &BB{LexTies: true} }, 10},
		{"dp", func() Solver { return &DP{} }, 12},
		{"hier", func() Solver { return &Hier{ClusterSize: 4} }, 12},
		{"greedy", func() Solver { return Greedy{} }, 16},
		{"exhaustive", func() Solver { return &Exhaustive{} }, 7},
	}
	const seeds = 4 // × 6 solvers = 24 sequences ≥ the 20 the issue demands
	const steps = 12
	for _, c := range cfgs {
		for seed := int64(0); seed < seeds; seed++ {
			cold := c.mk()
			ses := NewSession(c.mk())
			rng := rand.New(rand.NewSource(1000*seed + 7))
			in := randInstance(seed+300, c.n, plan3(), 0.55+0.3*rng.Float64())
			var hint Hint
			for step := 0; step < steps; step++ {
				cv, _ := cold.Solve(in)
				wv, wst := ses.Solve(in, hint)
				if !cv.Equal(wv) {
					t.Fatalf("%s seed %d step %d: warm %v != cold %v (hint %v)",
						c.name, seed, step, wv, cv, hint.Vector)
				}
				if wst.Aborted {
					t.Fatalf("%s seed %d step %d: unbudgeted session solve aborted", c.name, seed, step)
				}
				hint = Hint{Vector: wv.Clone(), Instr: in.VectorInstr(wv)}
				in = driftInstance(rng, in)
			}
			ses.Close()
		}
	}
}

// TestWarmVsColdGarbageHints pins that hostile hints — wrong width, modes out
// of range, infeasible vectors — degrade to cold solves, never to different
// or infeasible answers.
func TestWarmVsColdGarbageHints(t *testing.T) {
	in := randInstance(77, 10, plan3(), 0.7)
	cold := &BB{}
	want, _ := cold.Solve(in)
	bad := []Hint{
		{},
		{Vector: modes.Vector{0, 1}},                                     // wrong width
		{Vector: modes.Uniform(10, modes.Mode(99))},                      // mode out of range
		{Vector: modes.Uniform(10, modes.Turbo), Instr: math.Inf(1)},     // infeasible (all-Turbo over budget)
		{Vector: modes.Uniform(10, modes.Mode(in.NumModes() - 1))},       // feasible but weak
		{Vector: append(modes.Vector(nil), want...), Instr: math.NaN()},  // the optimum itself
	}
	for i, h := range bad {
		ses := NewSession(&BB{})
		got, st := ses.Solve(in, h)
		if !got.Equal(want) {
			t.Fatalf("hint %d: got %v want %v", i, got, want)
		}
		if !st.Exact {
			t.Fatalf("hint %d: warm BB lost exactness", i)
		}
		ses.Close()
	}
}

// TestHeapGreedyMatchesScan pins the session's O(n·m·log n) heap greedy
// against the canonical O(n²·m) scan kernel, including instances with
// negative upgrade deltas (non-monotone power columns) where infeasible
// candidates must be reconsidered after power drops.
func TestHeapGreedyMatchesScan(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		n := 4 + int(seed%13)
		in := randInstance(seed, n, plan3(), 0.4+0.05*float64(seed%10))
		var g greedyScratch
		hv, _, _ := heapGreedy(in, nil, &g)
		sv, _, _ := greedySolve(in, nil)
		if !sv.Equal(hv) {
			t.Fatalf("seed %d: heap %v != scan %v", seed, hv, sv)
		}
	}
	// Adversarial: make some upgrades REDUCE power (mode 1 hungrier than
	// mode 0), so feasibility is non-monotone along the upgrade sequence.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		in := randInstance(int64(trial)+600, n, plan3(), 0.5+0.4*rng.Float64())
		for c := 0; c < n; c++ {
			if rng.Intn(3) == 0 {
				in.Power[c][1] = in.Power[c][0] * (1.1 + rng.Float64()) // upgrade 1→0 frees power
			}
		}
		var g greedyScratch
		hv, _, _ := heapGreedy(in, nil, &g)
		sv, _, _ := greedySolve(in, nil)
		if !sv.Equal(hv) {
			t.Fatalf("adversarial trial %d: heap %v != scan %v", trial, hv, sv)
		}
	}
}

// TestSessionMemo pins the instance memo: bit-identical re-solves are
// answered without search, and any entry change misses.
func TestSessionMemo(t *testing.T) {
	ses := NewSession(&BB{})
	defer ses.Close()
	in := randInstance(5, 10, plan3(), 0.7)
	v1, _ := ses.Solve(in, Hint{})
	v1 = v1.Clone()
	v2, st2 := ses.Solve(in, Hint{})
	if !v1.Equal(v2) {
		t.Fatalf("memo hit returned %v, first solve %v", v2, v1)
	}
	if st2.Nodes != 0 {
		t.Fatalf("memo hit reported %d nodes, want 0", st2.Nodes)
	}
	if got := ses.Stats().MemoHits; got != 1 {
		t.Fatalf("MemoHits = %d, want 1", got)
	}
	// The memo must key on the matrix *values*, not the slice identity:
	// mutate one entry in place and re-solve.
	in.Instr[3][0] *= 2
	_, st3 := ses.Solve(in, Hint{})
	if st3.Nodes == 0 {
		t.Fatal("mutated instance still hit the memo")
	}
	if got := ses.Stats().MemoHits; got != 1 {
		t.Fatalf("MemoHits after mutation = %d, want 1", got)
	}
	// Two instances alternating (Hier's rebalance pattern) must both hit.
	inB := randInstance(6, 10, plan3(), 0.6)
	ses.Solve(inB, Hint{})
	before := ses.Stats().MemoHits
	ses.Solve(in, Hint{})
	ses.Solve(inB, Hint{})
	if got := ses.Stats().MemoHits - before; got != 2 {
		t.Fatalf("alternating instances: %d memo hits, want 2", got)
	}
}

// TestSessionSteadyStateAllocs pins the 0-alloc steady state for the warm
// paths: after warmup, BB solves over drifting telemetry, Hier solves, and
// memo-hit repeats must not allocate per decision.
func TestSessionSteadyStateAllocs(t *testing.T) {
	plan := plan3()
	t.Run("bb-drift", func(t *testing.T) {
		ses := NewSession(&BB{})
		defer ses.Close()
		a := randInstance(11, 32, plan, 0.7)
		b := randInstance(11, 32, plan, 0.7)
		for c := range b.Power {
			for mo := range b.Power[c] {
				b.Power[c][mo] *= 1.001
			}
		}
		var hint Hint
		v, _ := ses.Solve(a, hint)
		hint = Hint{Vector: v.Clone()}
		use := a
		allocs := testing.AllocsPerRun(50, func() {
			if use.Power[0][0] == a.Power[0][0] {
				use = b
			} else {
				use = a
			}
			v, _ := ses.Solve(use, hint)
			copy(hint.Vector, v)
		})
		if allocs != 0 {
			t.Fatalf("warm BB drift steady state allocates %.1f/op, want 0", allocs)
		}
	})
	t.Run("memo-hit", func(t *testing.T) {
		ses := NewSession(&BB{})
		defer ses.Close()
		in := randInstance(12, 64, plan, 0.7)
		ses.Solve(in, Hint{})
		ses.Solve(in, Hint{})
		allocs := testing.AllocsPerRun(100, func() { ses.Solve(in, Hint{}) })
		if allocs != 0 {
			t.Fatalf("memo hit allocates %.1f/op, want 0", allocs)
		}
	})
	t.Run("greedy", func(t *testing.T) {
		ses := NewSession(Greedy{})
		defer ses.Close()
		in := randInstance(13, 64, plan, 0.7)
		in2 := randInstance(14, 64, plan, 0.7)
		ses.Solve(in, Hint{})
		ses.Solve(in2, Hint{})
		use := in
		allocs := testing.AllocsPerRun(100, func() {
			if use.Power[0][0] == in.Power[0][0] {
				use = in2
			} else {
				use = in
			}
			ses.Solve(use, Hint{})
		})
		if allocs != 0 {
			t.Fatalf("warm greedy allocates %.1f/op, want 0", allocs)
		}
	})
}

// TestSessionDeadlineWarm covers the solver.WithDeadline × warm-start
// interaction (satellite 3): an aborted warm solve must return a feasible
// vector at least as good as the hint — the hint qualifies as an incumbent —
// and a completed solve must never be overridden by the hint.
func TestSessionDeadlineWarm(t *testing.T) {
	in := randInstance(21, 24, plan3(), 0.7)
	// A 1-node budget aborts BB immediately: the DFS cannot even reach a
	// leaf, so without a hint the greedy seed is the incumbent.
	ses := NewSession(WithDeadline(&BB{}, 0, 1))
	defer ses.Close()

	cold, _ := (&BB{}).Solve(in)
	hint := Hint{Vector: cold.Clone(), Instr: in.VectorInstr(cold)}

	v, st := ses.Solve(in, hint)
	if !st.Aborted {
		t.Fatal("1-node budget did not abort")
	}
	if st.Exact {
		t.Fatal("aborted solve claims exactness")
	}
	if p := in.VectorPower(v); p > in.BudgetW+in.budgetEps() {
		t.Fatalf("aborted warm solve infeasible: %g > %g", p, in.BudgetW)
	}
	// The hint is the true optimum here, so the anytime answer must be it.
	if !v.Equal(cold) {
		t.Fatalf("aborted warm solve returned %v, want the (optimal) hint %v", v, cold)
	}
	if ses.Stats().HintReturns == 0 {
		t.Fatal("HintReturns not counted")
	}

	// A *weak but feasible* hint must never drag the answer below what the
	// solver found on its own, and the answer must never drop below the hint:
	// the anytime floor is max(incumbent, hint). (The greedy seed is itself
	// node-charged, so under a 1-node budget it may be partial — the hint is
	// the only uncharged floor.)
	weak := Hint{Vector: in.deepestVector()}
	v2, st2 := ses.Solve(in, weak)
	if !st2.Aborted {
		t.Fatal("second solve did not abort")
	}
	if p := in.VectorPower(v2); p > in.BudgetW+in.budgetEps() {
		t.Fatalf("aborted solve infeasible: %g > %g", p, in.BudgetW)
	}
	if in.VectorInstr(v2) < in.VectorInstr(weak.Vector) {
		t.Fatalf("aborted solve returned %v, weaker than its own hint %v", v2, weak.Vector)
	}

	// Unbudgeted session: completed solves ignore even an optimal hint's
	// vector identity (the solver's own result is returned, bit-identical).
	ses2 := NewSession(&BB{})
	defer ses2.Close()
	v3, st3 := ses2.Solve(in, hint)
	if st3.Aborted || !st3.Exact {
		t.Fatal("unbudgeted solve aborted")
	}
	if !v3.Equal(cold) {
		t.Fatalf("completed warm solve %v != cold %v", v3, cold)
	}
}

// TestSessionDeadlineDeterministicNodes pins that a node-budget session
// abort is deterministic call-to-call (same instance, same hint, same cut).
func TestSessionDeadlineDeterministicNodes(t *testing.T) {
	in := randInstance(31, 20, plan3(), 0.65)
	hint := Hint{Vector: in.deepestVector()}
	run := func() (modes.Vector, Stats) {
		ses := NewSession(WithDeadline(&BB{}, 0, 500))
		defer ses.Close()
		v, st := ses.Solve(in, hint)
		return v.Clone(), st
	}
	v1, st1 := run()
	v2, st2 := run()
	if !v1.Equal(v2) {
		t.Fatalf("node-budget abort not deterministic: %v vs %v", v1, v2)
	}
	if st1.Nodes != st2.Nodes {
		t.Fatalf("node counts differ: %d vs %d", st1.Nodes, st2.Nodes)
	}
}

// TestSessionClose pins lifecycle hygiene: Close is idempotent and use after
// Close panics loudly instead of corrupting shared scratch.
func TestSessionClose(t *testing.T) {
	ses := NewSession(&Hier{ClusterSize: 2, Alpha: 0.5})
	in := randInstance(41, 8, plan3(), 0.7)
	ses.Solve(in, Hint{})
	ses.Close()
	ses.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Solve after Close did not panic")
		}
	}()
	ses.Solve(in, Hint{})
}

// TestOptionsValidate is the satellite-2 table: negative or non-finite
// Options fields must fail with a typed *OptionError naming the field.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name  string
		opt   Options
		field string // "" = valid
	}{
		{"zero", Options{}, ""},
		{"positive", Options{QuantumW: 0.5, ClusterSize: 4, Workers: 2, NodeLimit: 1000}, ""},
		{"neg-quantum", Options{QuantumW: -0.5}, "QuantumW"},
		{"nan-quantum", Options{QuantumW: math.NaN()}, "QuantumW"},
		{"inf-quantum", Options{QuantumW: math.Inf(1)}, "QuantumW"},
		{"neg-cluster", Options{ClusterSize: -1}, "ClusterSize"},
		{"neg-workers", Options{Workers: -2}, "Workers"},
		{"neg-nodelimit", Options{NodeLimit: -1}, "NodeLimit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opt.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("valid options rejected: %v", err)
				}
				return
			}
			oe, ok := err.(*OptionError)
			if !ok {
				t.Fatalf("got %T (%v), want *OptionError", err, err)
			}
			if oe.Field != tc.field {
				t.Fatalf("rejected field %q, want %q", oe.Field, tc.field)
			}
			if oe.Error() == "" {
				t.Fatal("empty error string")
			}
			// New must reject the same options for every registry name.
			for _, name := range Names() {
				if _, err := New(name, tc.opt); err == nil {
					t.Fatalf("New(%q) accepted invalid options", name)
				}
			}
		})
	}
}
