// Package solver provides scalable budgeted mode-allocation solvers for the
// global power manager's per-interval decision: given the §5.5 Power/BIPS
// Matrices and a chip budget, pick the per-core mode vector that maximizes
// predicted throughput without exceeding the budget.
//
// The paper's MaxBIPS policy (§5.2.3) enumerates all modes^cores vectors,
// which is exact but explodes past ~16 cores. This package factors the
// decision out of internal/core into pluggable solvers behind one interface,
// all proven against the exhaustive kernel:
//
//   - Exhaustive: the brute-force reference, prefix-sharded across worker
//     goroutines so the tractable range stretches a few cores further.
//   - DP: a pseudo-polynomial multiple-choice knapsack over quantized power
//     with a configurable quantum and a certified optimality-gap bound.
//   - BB: exact branch-and-bound seeded with the greedy incumbent and pruned
//     by a fractional (convex-hull water-filling) relaxation upper bound —
//     exact answers at 64+ cores in microseconds to milliseconds.
//   - Hier: a two-level manager that partitions the chip budget across core
//     clusters, solves each cluster independently, and rebalances slack
//     between clusters — the 1000-core scaling story.
//   - Greedy: the marginal-utility heuristic (core.GreedyMaxBIPS's algorithm),
//     used standalone and as the incumbent seed for BB and Hier.
//
// All solvers are deterministic: ties on predicted throughput resolve to
// lower power, then to the lexicographically smallest vector, matching the
// exhaustive kernel in internal/core.
package solver

import (
	"fmt"
	"math"
	"time"

	"gpm/internal/modes"
)

// Instance is one budgeted mode-allocation problem: choose one mode per core
// so that the summed predicted power stays within BudgetW and the summed
// predicted instructions are maximal.
type Instance struct {
	Plan    modes.Plan
	BudgetW float64
	// Power[c][m] and Instr[c][m] are the §5.5 matrices: predicted average
	// watts and committed instructions for core c in mode m.
	Power [][]float64
	Instr [][]float64
	// FlatPower/FlatInstr, when non-nil, are row-major contiguous aliases of
	// Power/Instr (length cores×modes, Power[c][m] == FlatPower[c*modes+m]).
	// They are optional and never consulted for scoring — Sessions use them
	// as a fast path for memo comparison and sub-instance slicing. Callers
	// that set them are responsible for the aliasing invariant
	// (core.Matrices.Flat provides it).
	FlatPower []float64
	FlatInstr []float64
	// Gens/Gen/GenID, when GenID != 0, are the predictor change-detection
	// handshake (core.Matrices.Generations): GenID identifies the matrix
	// backing, Gen is its current generation, and Gens[c] is the generation
	// at which core c's rows last changed. Like the flat aliases they are
	// optional and never consulted for scoring — Sessions use them to turn
	// the memo comparison into an O(1) generation check and to learn the
	// dirty-core set for incremental re-solves. Callers that set them are
	// responsible for the invariant that two instances with equal GenID and
	// Gen have bit-identical matrices.
	Gens  []uint64
	Gen   uint64
	GenID uint64
}

// NumCores returns the decision width.
func (in Instance) NumCores() int { return len(in.Power) }

// NumModes returns the number of levels per core.
func (in Instance) NumModes() int { return in.Plan.NumModes() }

// VectorPower sums predicted power in core order. All solvers score
// candidate vectors with these canonical-order sums so float associativity
// cannot make two solvers disagree about the same vector.
func (in Instance) VectorPower(v modes.Vector) float64 {
	var p float64
	for c, m := range v {
		p += in.Power[c][m]
	}
	return p
}

// VectorInstr sums predicted instructions in core order.
func (in Instance) VectorInstr(v modes.Vector) float64 {
	var t float64
	for c, m := range v {
		t += in.Instr[c][m]
	}
	return t
}

// deepest returns the all-deepest vector, the shared infeasibility fallback
// (identical to the exhaustive kernel's).
func (in Instance) deepestVector() modes.Vector {
	return modes.Uniform(in.NumCores(), modes.Mode(in.NumModes()-1))
}

// budgetEps is the absolute feasibility slack used for internal pruning and
// cross-solver checks; canonical-order sums at leaves are the authority.
func (in Instance) budgetEps() float64 {
	b := in.BudgetW
	if b < 0 {
		b = -b
	}
	return 1e-9 * (1 + b)
}

// better is the kernel's deterministic improvement rule: higher throughput
// wins, equal throughput prefers lower power. Remaining ties keep the
// earlier vector, so solvers that visit candidates in lexicographic order
// and replace strictly reproduce the exhaustive kernel bit-for-bit.
func better(t, p, bestT, bestP float64) bool {
	return t > bestT || (t == bestT && p < bestP)
}

// Stats describes one Solve call for benchmarking and quality accounting.
type Stats struct {
	// Solver is the registry name of the solver that produced the vector.
	Solver string
	// Nodes counts evaluated states: vectors for enumerative solvers,
	// branch nodes for BB, table cells for DP.
	Nodes int64
	// Pruned counts subtrees cut by bounds (BB only).
	Pruned int64
	// Exact reports that the returned vector is a true optimum of the
	// instance (not merely of a relaxation or decomposition).
	Exact bool
	// GapBound, for inexact solvers that can certify one, bounds the
	// relative throughput shortfall vs the true optimum:
	// (OPT − returned) / OPT ≤ GapBound.
	GapBound float64
	// UpperBoundInstr is the fractional-relaxation throughput upper bound
	// when the solver computed one (BB root bound, DP gap certificate).
	UpperBoundInstr float64
	// Workers is the goroutine count used by parallel solvers.
	Workers int
	// Elapsed is the wall-clock duration of the Solve call.
	Elapsed time.Duration
	// Aborted reports that the solve was cut short by a Checkpoint (wall
	// deadline, node budget, or external abort). The returned vector is the
	// best incumbent found before the cut — still feasible whenever any
	// feasible vector was seen — and Exact is false.
	Aborted bool
}

// Solver is one budgeted mode-allocation algorithm. Implementations are
// deterministic, stateless, and safe for concurrent reuse across calls.
// Cross-interval state (Hier's Alpha share smoothing, warm hints, scratch
// reuse) lives in a Session, which owns exactly one solver and is NOT safe
// for concurrent use; bare Hier.Solve with Alpha > 0 behaves as Alpha == 0.
type Solver interface {
	Name() string
	Solve(in Instance) (modes.Vector, Stats)
}

// Options parameterizes New.
type Options struct {
	// QuantumW is DP's power quantum in watts; 0 selects the adaptive
	// default BudgetW / max(2048, 16·cores).
	QuantumW float64
	// ClusterSize is Hier's cores-per-cluster (default 8).
	ClusterSize int
	// Workers bounds the goroutines of parallel solvers (default GOMAXPROCS).
	Workers int
	// NodeLimit caps BB's branch nodes; 0 means unlimited. When the cap is
	// hit BB returns its incumbent with Exact=false.
	NodeLimit int64
}

// Validate checks Options for values that would silently misbehave inside
// the solvers (a negative quantum flips DP's rounding, a negative cluster
// size degenerates Hier, negative worker or node counts read as "unlimited").
// All failures are *OptionError.
func (opt Options) Validate() error {
	if math.IsNaN(opt.QuantumW) || math.IsInf(opt.QuantumW, 0) {
		return &OptionError{Field: "QuantumW", Value: opt.QuantumW, Reason: "must be finite"}
	}
	if opt.QuantumW < 0 {
		return &OptionError{Field: "QuantumW", Value: opt.QuantumW, Reason: "must be non-negative (0 selects the adaptive default)"}
	}
	if opt.ClusterSize < 0 {
		return &OptionError{Field: "ClusterSize", Value: opt.ClusterSize, Reason: "must be non-negative (0 selects the default)"}
	}
	if opt.Workers < 0 {
		return &OptionError{Field: "Workers", Value: opt.Workers, Reason: "must be non-negative (0 selects GOMAXPROCS)"}
	}
	if opt.NodeLimit < 0 {
		return &OptionError{Field: "NodeLimit", Value: opt.NodeLimit, Reason: "must be non-negative (0 means unlimited)"}
	}
	return nil
}

// OptionError is the typed validation error returned by Options.Validate and
// New, mirroring engine.OptionError: it names the field, the rejected value,
// and what a valid value looks like.
type OptionError struct {
	// Field is the Options field that was rejected.
	Field string
	// Value is the rejected value.
	Value any
	// Reason says what a valid value looks like.
	Reason string
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("solver: option %s = %v: %s", e.Field, e.Value, e.Reason)
}

// Names lists the registry names accepted by New.
func Names() []string { return []string{"exhaustive", "dp", "bb", "hier", "greedy"} }

// New builds a solver by registry name. Options are validated first; a
// rejected option returns a *OptionError.
func New(name string, opt Options) (Solver, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	switch name {
	case "exhaustive":
		return &Exhaustive{Workers: opt.Workers}, nil
	case "dp":
		return &DP{QuantumW: opt.QuantumW}, nil
	case "bb":
		return &BB{NodeLimit: opt.NodeLimit}, nil
	case "hier":
		return &Hier{ClusterSize: opt.ClusterSize, Inner: &BB{NodeLimit: opt.NodeLimit}}, nil
	case "greedy":
		return Greedy{}, nil
	default:
		return nil, fmt.Errorf("solver: unknown solver %q (want exhaustive|dp|bb|hier|greedy)", name)
	}
}

// Greedy is the marginal-utility heuristic: start from the all-deepest
// vector and repeatedly apply the single-core, single-step upgrade with the
// best ΔBIPS/ΔPower ratio that still fits the budget. O(cores² × modes).
// Ties on the ratio resolve to the lowest core index (the scan keeps the
// first maximum), mirroring core.GreedyMaxBIPS so cross-checks between the
// two implementations are deterministic.
type Greedy struct{}

// Name implements Solver.
func (Greedy) Name() string { return "greedy" }

// Solve implements Solver.
func (g Greedy) Solve(in Instance) (modes.Vector, Stats) {
	return g.SolveBounded(in, nil)
}

// SolveBounded implements Bounded.
func (g Greedy) SolveBounded(in Instance, cp *Checkpoint) (modes.Vector, Stats) {
	start := time.Now()
	v, nodes, aborted := greedySolve(in, cp)
	st := Stats{Solver: g.Name(), Nodes: nodes, Elapsed: time.Since(start)}
	st.Aborted = aborted
	return v, st
}

// upgradeDelta scores the single-step upgrade of core c from mode cur to
// cur−1: the power delta and the ΔBIPS/ΔPower ratio under the greedy
// kernel's conventions (near-zero ΔPower with positive ΔBIPS reads as free
// throughput). Shared by the scan and heap greedy implementations so their
// candidate orderings agree bit-for-bit.
func upgradeDelta(in Instance, c int, cur modes.Mode) (dp, ratio float64) {
	up := cur - 1
	dp = in.Power[c][up] - in.Power[c][cur]
	di := in.Instr[c][up] - in.Instr[c][cur]
	ratio = di
	if dp > 1e-12 {
		ratio = di / dp
	} else if di > 0 {
		ratio = 1e18 // free throughput
	}
	return dp, ratio
}

// greedySolve is the shared greedy kernel; BB seeds its incumbent and Hier
// derives its demand shares from it. The checkpoint is consulted once per
// upgrade pass; an aborted pass returns the vector built so far, which is
// feasible by construction (upgrades are only applied when they fit). The
// aborted result reports this solve's own checkpoint trips — not the shared
// checkpoint's latched flag, which another goroutine may have set after this
// solve already completed.
func greedySolve(in Instance, cp *Checkpoint) (v modes.Vector, nodes int64, aborted bool) {
	n := in.NumCores()
	v = in.deepestVector()
	power := in.VectorPower(v)
	if power > in.BudgetW {
		return v, nodes, false // even the floor exceeds the budget
	}
	for {
		passStart := nodes
		bestCore := -1
		bestRatio := -1.0
		var bestDP float64
		for c := 0; c < n; c++ {
			if v[c] == 0 {
				continue
			}
			dp, ratio := upgradeDelta(in, c, v[c])
			nodes++
			if power+dp > in.BudgetW {
				continue
			}
			if ratio > bestRatio {
				bestRatio = ratio
				bestCore = c
				bestDP = dp
			}
		}
		if cp.Visit(nodes - passStart) {
			return v, nodes, true
		}
		if bestCore < 0 {
			return v, nodes, false
		}
		v[bestCore]--
		power += bestDP
	}
}
