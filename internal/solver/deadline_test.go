package solver

import (
	"testing"
	"time"

	"gpm/internal/modes"
)

// boundedSolvers returns one instance of every registry solver (all Bounded).
func boundedSolvers(t testing.TB) []Solver {
	t.Helper()
	var out []Solver
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// assertFeasibleOrFloor fails unless v fits the budget or is the all-deepest
// floor (the legal answer when nothing feasible was seen).
func assertFeasibleOrFloor(t *testing.T, name string, in Instance, v modes.Vector) {
	t.Helper()
	if in.VectorPower(v) <= in.BudgetW {
		return
	}
	if v.Equal(in.deepestVector()) {
		return
	}
	t.Fatalf("%s: infeasible non-floor vector %v (power %.3f > budget %.3f)",
		name, v, in.VectorPower(v), in.BudgetW)
}

// TestDeadlinePassthroughBitIdentical pins that a zero-budget Deadline
// wrapper is transparent: same vector, same Exact, same node count as the
// bare solver, and no Aborted flag.
func TestDeadlinePassthroughBitIdentical(t *testing.T) {
	for _, s := range boundedSolvers(t) {
		for _, n := range []int{4, 8} {
			in := randInstance(int64(n)*31, n, plan3(), 0.75)
			wantV, wantSt := s.Solve(in)
			d := WithDeadline(s, 0, 0)
			if d.Name() != s.Name() {
				t.Fatalf("wrapper name %q != inner %q", d.Name(), s.Name())
			}
			gotV, gotSt := d.Solve(in)
			if !gotV.Equal(wantV) {
				t.Fatalf("%s n=%d: wrapped %v != bare %v", s.Name(), n, gotV, wantV)
			}
			if gotSt.Exact != wantSt.Exact || gotSt.Nodes != wantSt.Nodes || gotSt.Aborted {
				t.Fatalf("%s n=%d: wrapped stats %+v != bare %+v", s.Name(), n, gotSt, wantSt)
			}
		}
	}
}

// TestNodeBudgetDeterministicAbort pins that a node budget cuts the solve at
// the same point every run: identical vectors and abort flags across reruns,
// and the incumbent is always feasible (or the deepest floor).
func TestNodeBudgetDeterministicAbort(t *testing.T) {
	for _, s := range boundedSolvers(t) {
		for _, nodes := range []int64{1, 16, 1000, 50_000} {
			in := randInstance(nodes+7, 10, plan3(), 0.7)
			d := WithDeadline(s, 0, nodes)
			v1, st1 := d.Solve(in)
			v2, st2 := d.Solve(in)
			if !v1.Equal(v2) || st1.Aborted != st2.Aborted {
				t.Fatalf("%s nodes=%d: nondeterministic abort: %v/%v vs %v/%v",
					s.Name(), nodes, v1, st1.Aborted, v2, st2.Aborted)
			}
			assertFeasibleOrFloor(t, s.Name(), in, v1)
			if st1.Aborted && st1.Exact {
				t.Fatalf("%s nodes=%d: aborted solve claims exactness", s.Name(), nodes)
			}
		}
	}
}

// TestWallDeadlineAborts drives the sharded exhaustive solver into a large
// instance with a 1 ns wall budget: the solve must abort (cooperatively, at
// a checkpoint) and still return a feasible incumbent.
func TestWallDeadlineAborts(t *testing.T) {
	in := randInstance(3, 12, plan3(), 0.7) // 3^12 ≈ 531k vectors unbounded
	d := WithDeadline(&Exhaustive{}, time.Nanosecond, 0)
	v, st := d.Solve(in)
	if !st.Aborted {
		t.Fatal("1 ns deadline did not abort a 531k-vector enumeration")
	}
	if st.Exact {
		t.Fatal("aborted solve claims exactness")
	}
	assertFeasibleOrFloor(t, "exhaustive", in, v)
}

// TestExternalAbort pins the supervisor's abandon path: a pre-aborted
// checkpoint makes every solver return immediately with a feasible vector.
func TestExternalAbort(t *testing.T) {
	for _, s := range boundedSolvers(t) {
		in := randInstance(99, 10, plan3(), 0.7)
		cp := NewCheckpoint(0, 0)
		cp.Abort()
		v, st := SolveBounded(s, in, cp)
		if !st.Aborted && s.Name() != "greedy" {
			t.Errorf("%s: pre-aborted checkpoint not reported in stats", s.Name())
		}
		assertFeasibleOrFloor(t, s.Name(), in, v)
		_ = st
	}
}

// TestCheckpointVisit pins the token's accounting: node budgets trip at the
// boundary, nil checkpoints never abort, Abort is sticky.
func TestCheckpointVisit(t *testing.T) {
	var nilCP *Checkpoint
	if nilCP.Visit(1000) || nilCP.Aborted() || nilCP.Nodes() != 0 {
		t.Fatal("nil checkpoint must be inert")
	}
	nilCP.Abort() // must not panic

	cp := NewCheckpoint(0, 100)
	if cp.Visit(100) {
		t.Fatal("visit at exactly the budget must not abort")
	}
	if !cp.Visit(1) {
		t.Fatal("visit past the budget must abort")
	}
	if !cp.Aborted() || cp.Nodes() != 101 {
		t.Fatalf("aborted=%v nodes=%d", cp.Aborted(), cp.Nodes())
	}
	if !cp.Visit(1) {
		t.Fatal("abort must be sticky")
	}
}
