package solver

import (
	"math"
	"testing"

	"gpm/internal/modes"
)

// TestSolverOrderingProperty drives all solvers over seeded random Power/BIPS
// matrices and asserts the quality ordering the subsystem promises:
//
//	exhaustive == branch-and-bound ≥ DP ≥ greedy
//
// together with budget feasibility of every returned vector and the validity
// of DP's reported optimality-gap bound.
func TestSolverOrderingProperty(t *testing.T) {
	plans := []modes.Plan{plan3(), modes.Linear(4, 0.75, 1.300, 0.010)}
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for pi, plan := range plans {
		for seed := 0; seed < seeds; seed++ {
			n := 2 + seed%6 // 2..7 cores keeps exhaustive instant
			frac := 0.45 + 0.55*float64(seed%11)/10
			in := randInstance(int64(pi*1000+seed), n, plan, frac)

			exV, exSt := (&Exhaustive{}).Solve(in)
			bbV, bbSt := (&BB{}).Solve(in)
			lexV, _ := (&BB{LexTies: true}).Solve(in)
			dpV, dpSt := (&DP{}).Solve(in)
			grV, _ := Greedy{}.Solve(in)

			feasible := in.VectorPower(in.deepestVector()) <= in.BudgetW
			check := func(name string, v modes.Vector) float64 {
				if feasible {
					if p := in.VectorPower(v); p > in.BudgetW+in.budgetEps() {
						t.Fatalf("plan=%d seed=%d: %s over budget (%g > %g)", pi, seed, name, p, in.BudgetW)
					}
				}
				return in.VectorInstr(v)
			}
			exT := check("exhaustive", exV)
			bbT := check("bb", bbV)
			check("bb-lex", lexV)
			dpT := check("dp", dpV)
			grT := check("greedy", grV)

			tol := 1e-9 * (1 + exT)
			if math.Abs(bbT-exT) > tol {
				t.Fatalf("plan=%d seed=%d n=%d: bb %g != exhaustive %g", pi, seed, n, bbT, exT)
			}
			if !lexV.Equal(exV) {
				t.Fatalf("plan=%d seed=%d n=%d: lex-ties bb %v != exhaustive %v", pi, seed, n, lexV, exV)
			}
			if dpT > exT+tol {
				t.Fatalf("plan=%d seed=%d: dp %g beats exhaustive %g", pi, seed, dpT, exT)
			}
			if grT > dpT+tol {
				t.Fatalf("plan=%d seed=%d: greedy %g beats dp %g", pi, seed, grT, dpT)
			}
			if !exSt.Exact || !bbSt.Exact {
				t.Fatalf("plan=%d seed=%d: exact solvers not flagged exact", pi, seed)
			}
			// DP's certificate must actually bound its error vs the optimum.
			if exT > 0 {
				err := (exT - dpT) / exT
				if err > dpSt.GapBound+1e-12 {
					t.Fatalf("plan=%d seed=%d: dp error %g exceeds reported gap bound %g", pi, seed, err, dpSt.GapBound)
				}
			}
		}
	}
}

// TestHierQualityProperty separately checks the decomposition heuristic: it
// must stay feasible and never fall below the greedy floor it budgets with.
func TestHierQualityProperty(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		n := 8 + (seed%3)*4
		in := randInstance(int64(seed + 500), n, plan3(), 0.5+0.05*float64(seed%10))
		hV, _ := (&Hier{ClusterSize: 4}).Solve(in)
		grV, _ := Greedy{}.Solve(in)
		if in.VectorPower(in.deepestVector()) <= in.BudgetW {
			if p := in.VectorPower(hV); p > in.BudgetW+in.budgetEps() {
				t.Fatalf("seed=%d: hier over budget", seed)
			}
		}
		if h, g := in.VectorInstr(hV), in.VectorInstr(grV); h < g-1e-9*(1+g) {
			t.Fatalf("seed=%d: hier %g below greedy floor %g", seed, h, g)
		}
	}
}
