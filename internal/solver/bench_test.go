package solver

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkSolver times every solver across chip widths; `make bench-json`
// turns this output into BENCH_solver.json. Exhaustive enumeration rows stop
// at 16 cores (3^16 vectors); the other solvers run to 256.
func BenchmarkSolver(b *testing.B) {
	widths := []int{8, 16, 64, 256}
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range widths {
			if name == "exhaustive" && n > 16 {
				continue // falls back to greedy past the enumerable range
			}
			in := randInstance(int64(n), n, plan3(), 0.8)
			b.Run(fmt.Sprintf("%s/cores=%d", name, n), func(b *testing.B) {
				var st Stats
				for i := 0; i < b.N; i++ {
					_, st = s.Solve(in)
				}
				b.ReportMetric(float64(st.Nodes), "nodes/op")
			})
		}
	}
}

// BenchmarkDeadlineSolver measures the cooperative-cancellation overhead:
// each solver bare vs under a transparent (zero-budget) Deadline wrapper vs
// under an armed wall deadline generous enough never to fire. The armed rows
// price the checkpoint charging in the hot loops; `make bench-json` emits
// them into BENCH_solver.json next to the bare rows.
func BenchmarkDeadlineSolver(b *testing.B) {
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			b.Fatal(err)
		}
		n := 16
		in := randInstance(int64(n), n, plan3(), 0.8)
		b.Run(fmt.Sprintf("%s/bare", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Solve(in)
			}
		})
		b.Run(fmt.Sprintf("%s/wrapped", name), func(b *testing.B) {
			d := WithDeadline(s, 0, 0)
			for i := 0; i < b.N; i++ {
				d.Solve(in)
			}
		})
		b.Run(fmt.Sprintf("%s/armed", name), func(b *testing.B) {
			d := WithDeadline(s, time.Hour, 1<<60)
			for i := 0; i < b.N; i++ {
				d.Solve(in)
			}
		})
	}
}

// BenchmarkHier1024 is the scaling headline: a 1024-core decision through
// the two-level manager.
func BenchmarkHier1024(b *testing.B) {
	in := randInstance(1024, 1024, plan3(), 0.8)
	h := &Hier{ClusterSize: 8}
	for i := 0; i < b.N; i++ {
		h.Solve(in)
	}
}
