package solver

import (
	"fmt"
	"testing"
	"time"

	"gpm/internal/modes"
)

// BenchmarkSolver times every solver across chip widths; `make bench-json`
// turns this output into BENCH_solver.json. Exhaustive enumeration rows stop
// at 16 cores (3^16 vectors); the other solvers run to 256.
func BenchmarkSolver(b *testing.B) {
	widths := []int{8, 16, 64, 256}
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range widths {
			if name == "exhaustive" && n > 16 {
				continue // falls back to greedy past the enumerable range
			}
			in := randInstance(int64(n), n, plan3(), 0.8)
			b.Run(fmt.Sprintf("%s/cores=%d", name, n), func(b *testing.B) {
				var st Stats
				for i := 0; i < b.N; i++ {
					_, st = s.Solve(in)
				}
				b.ReportMetric(float64(st.Nodes), "nodes/op")
			})
		}
	}
}

// BenchmarkDeadlineSolver measures the cooperative-cancellation overhead:
// each solver bare vs under a transparent (zero-budget) Deadline wrapper vs
// under an armed wall deadline generous enough never to fire. The armed rows
// price the checkpoint charging in the hot loops; `make bench-json` emits
// them into BENCH_solver.json next to the bare rows.
func BenchmarkDeadlineSolver(b *testing.B) {
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			b.Fatal(err)
		}
		n := 16
		in := randInstance(int64(n), n, plan3(), 0.8)
		b.Run(fmt.Sprintf("%s/bare", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Solve(in)
			}
		})
		b.Run(fmt.Sprintf("%s/wrapped", name), func(b *testing.B) {
			d := WithDeadline(s, 0, 0)
			for i := 0; i < b.N; i++ {
				d.Solve(in)
			}
		})
		b.Run(fmt.Sprintf("%s/armed", name), func(b *testing.B) {
			d := WithDeadline(s, time.Hour, 1<<60)
			for i := 0; i < b.N; i++ {
				d.Solve(in)
			}
		})
	}
}

// BenchmarkHier1024 is the scaling headline: a 1024-core decision through
// the two-level manager.
func BenchmarkHier1024(b *testing.B) {
	in := randInstance(1024, 1024, plan3(), 0.8)
	h := &Hier{ClusterSize: 8}
	for i := 0; i < b.N; i++ {
		h.Solve(in)
	}
}

// benchDrift returns k multiplicatively perturbed copies of in — the
// telemetry-jitter sequence a session sees across explore intervals. k > 2
// defeats the session's 2-entry memo, so cycling through them times real
// warm solves, not memo lookups.
func benchDrift(in Instance, k int) []Instance {
	out := make([]Instance, k)
	for i := range out {
		c := Instance{Plan: in.Plan, BudgetW: in.BudgetW,
			Power: make([][]float64, len(in.Power)), Instr: make([][]float64, len(in.Instr))}
		f := 1 + 0.001*float64(i)
		for ci := range in.Power {
			c.Power[ci] = append([]float64(nil), in.Power[ci]...)
			c.Instr[ci] = append([]float64(nil), in.Instr[ci]...)
			for mo := range c.Power[ci] {
				c.Power[ci][mo] *= f
				c.Instr[ci][mo] *= 1 + 0.0007*float64(i)
			}
		}
		out[i] = c
	}
	return out
}

// BenchmarkSolverWarm times the stateful Session paths that back the warm
// Warm rows in BENCH_solver.json:
//
//   - steady rows repeat bit-identical telemetry — the memo answers, which is
//     the engine's steady state on a noiseless interval, and must be
//     allocation-free;
//   - drift rows cycle perturbed telemetry (memo always misses) — warm
//     frontier/scratch reuse plus the previous vector as a pruning floor;
//   - the cold/bb row is the 1024-core baseline the issue's ≥5× steady-state
//     speedup gate compares against (NodeLimit 1<<21: unbounded exact BB is
//     intractable at this width; cold anytime cost is the honest baseline).
//
// All session rows report 0 allocs/op once warm; `make bench-check` fails the
// build if that regresses.
func BenchmarkSolverWarm(b *testing.B) {
	plan := plan3()
	for _, n := range []int{64, 256, 1024} {
		base := randInstance(int64(n), n, plan, 0.8)
		b.Run(fmt.Sprintf("bb-steady/cores=%d", n), func(b *testing.B) {
			ses := NewSession(&BB{NodeLimit: 1 << 21})
			defer ses.Close()
			v, _ := ses.Solve(base, Hint{})
			hint := Hint{Vector: v.Clone()}
			ses.Solve(base, hint)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ses.Solve(base, hint)
			}
		})
	}
	b.Run("bb-drift/cores=64", func(b *testing.B) {
		seq := benchDrift(randInstance(64, 64, plan, 0.8), 8)
		ses := NewSession(&BB{})
		defer ses.Close()
		// Warm through the whole drift cycle so the timed loop measures the
		// steady state, not first-touch scratch growth.
		hint := Hint{Vector: make(modes.Vector, 64)}
		for _, in := range seq {
			v, _ := ses.Solve(in, hint)
			copy(hint.Vector, v)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, _ := ses.Solve(seq[i%len(seq)], hint)
			copy(hint.Vector, v)
		}
	})
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("hier-steady/cores=%d", n), func(b *testing.B) {
			base := randInstance(int64(n), n, plan, 0.8)
			ses := NewSession(&Hier{ClusterSize: 8})
			defer ses.Close()
			v, _ := ses.Solve(base, Hint{})
			hint := Hint{Vector: v.Clone()}
			ses.Solve(base, hint)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ses.Solve(base, hint)
			}
		})
		b.Run(fmt.Sprintf("hier-drift/cores=%d", n), func(b *testing.B) {
			seq := benchDrift(randInstance(int64(n), n, plan, 0.8), 4)
			ses := NewSession(&Hier{ClusterSize: 8})
			defer ses.Close()
			hint := Hint{Vector: make(modes.Vector, n)}
			for _, in := range seq {
				v, _ := ses.Solve(in, hint)
				copy(hint.Vector, v)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, _ := ses.Solve(seq[i%len(seq)], hint)
				copy(hint.Vector, v)
			}
		})
	}
	b.Run("greedy-drift/cores=1024", func(b *testing.B) {
		seq := benchDrift(randInstance(1024, 1024, plan, 0.8), 4)
		ses := NewSession(Greedy{})
		defer ses.Close()
		for _, in := range seq {
			ses.Solve(in, Hint{})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ses.Solve(seq[i%len(seq)], Hint{})
		}
	})
	b.Run("cold/bb/cores=1024", func(b *testing.B) {
		in := randInstance(1024, 1024, plan, 0.8)
		s := &BB{NodeLimit: 1 << 21}
		for i := 0; i < b.N; i++ {
			s.Solve(in)
		}
	})
}

// benchTracked hands BenchmarkSolverDelta a generation-tracked instance plus
// an alternate instruction row per core (the original scaled ×1.01, argmax
// and margins preserved), so the timed loops can dirty exactly one core per
// iteration by swapping rows and stamping generations — the handshake a
// predictor performs — without unbounded drift across b.N iterations.
func benchTracked(n int, frac float64) (in Instance, orig, alt [][]float64) {
	in = randInstance(int64(n), n, plan3(), frac)
	testGenID++
	in.GenID = testGenID
	in.Gens = make([]uint64, n)
	for c := range in.Gens {
		in.Gens[c] = 1
	}
	in.Gen = 1
	orig = in.Instr
	alt = make([][]float64, n)
	for c := range alt {
		alt[c] = make([]float64, len(orig[c]))
		for mo := range alt[c] {
			alt[c][mo] = orig[c][mo] * 1.01
		}
	}
	return in, orig, alt
}

// BenchmarkSolverDelta times the tentpole's three steady-state tiers at 1024
// cores, all on generation-tracked instances at an ample budget (the argmax
// regime, where one-core telemetry drift certifies):
//
//   - bb-gen-steady: bit-identical telemetry — the memo answers via the O(1)
//     generation compare instead of the 1024×m flat compare (the sub-µs gate);
//   - bb-warm-full: one dirty core per iteration but the delta path disabled
//     (node-limited BB keeps anytime semantics and can't certify), so every
//     iteration is the PR 8 behaviour — a memo miss into a warm-hinted full
//     solve. This is the baseline the ≥10× delta gate divides against;
//   - bb-delta: the same one-dirty-core sequence with the delta path live —
//     patch, certify, commit. The closing assertion keeps the row honest:
//     every iteration must certify, none may fall back.
//
// `make bench-check` gates the steady and delta rows on both allocs/op (0)
// and ns/op ceilings.
func BenchmarkSolverDelta(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		n := n
		b.Run(fmt.Sprintf("bb-gen-steady/cores=%d", n), func(b *testing.B) {
			in, _, _ := benchTracked(n, 0.8)
			ses := NewSession(&BB{NodeLimit: 1 << 21})
			defer ses.Close()
			v, _ := ses.Solve(in, Hint{})
			hint := Hint{Vector: v.Clone()}
			ses.Solve(in, hint)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ses.Solve(in, hint)
			}
			b.StopTimer()
			if st := ses.Stats(); st.MemoHits < int64(b.N) {
				b.Fatalf("gen-steady row missed the memo: %+v", st)
			}
		})
		b.Run(fmt.Sprintf("bb-warm-full/cores=%d", n), func(b *testing.B) {
			in, orig, alt := benchTracked(n, 1.25)
			ses := NewSession(&BB{NodeLimit: 1 << 21}) // NodeLimit: delta path off
			defer ses.Close()
			v, _ := ses.Solve(in, Hint{})
			hint := Hint{Vector: v.Clone()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := i % n
				if &in.Instr[c][0] == &orig[c][0] {
					in.Instr[c] = alt[c]
				} else {
					in.Instr[c] = orig[c]
				}
				in.Gens[c]++
				in.Gen++
				v, _ = ses.Solve(in, hint)
				copy(hint.Vector, v)
			}
			b.StopTimer()
			if st := ses.Stats(); st.DeltaSolves != 0 || st.MemoHits != 0 {
				b.Fatalf("warm-full row used a fast path: %+v", st)
			}
		})
		b.Run(fmt.Sprintf("bb-delta/cores=%d", n), func(b *testing.B) {
			in, orig, alt := benchTracked(n, 1.25)
			ses := NewSession(&BB{})
			defer ses.Close()
			ses.Solve(in, Hint{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := i % n
				if &in.Instr[c][0] == &orig[c][0] {
					in.Instr[c] = alt[c]
				} else {
					in.Instr[c] = orig[c]
				}
				in.Gens[c]++
				in.Gen++
				ses.Solve(in, Hint{})
			}
			b.StopTimer()
			if st := ses.Stats(); st.DeltaCertified < int64(b.N) || st.DeltaFallbacks != 0 {
				b.Fatalf("delta row did not certify every iteration: %+v", st)
			}
		})
	}
}
