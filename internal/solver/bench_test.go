package solver

import (
	"fmt"
	"testing"
)

// BenchmarkSolver times every solver across chip widths; `make bench-json`
// turns this output into BENCH_solver.json. Exhaustive enumeration rows stop
// at 16 cores (3^16 vectors); the other solvers run to 256.
func BenchmarkSolver(b *testing.B) {
	widths := []int{8, 16, 64, 256}
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range widths {
			if name == "exhaustive" && n > 16 {
				continue // falls back to greedy past the enumerable range
			}
			in := randInstance(int64(n), n, plan3(), 0.8)
			b.Run(fmt.Sprintf("%s/cores=%d", name, n), func(b *testing.B) {
				var st Stats
				for i := 0; i < b.N; i++ {
					_, st = s.Solve(in)
				}
				b.ReportMetric(float64(st.Nodes), "nodes/op")
			})
		}
	}
}

// BenchmarkHier1024 is the scaling headline: a 1024-core decision through
// the two-level manager.
func BenchmarkHier1024(b *testing.B) {
	in := randInstance(1024, 1024, plan3(), 0.8)
	h := &Hier{ClusterSize: 8}
	for i := 0; i < b.N; i++ {
		h.Solve(in)
	}
}
