package solver

import (
	"math"
	"time"

	"gpm/internal/modes"
)

// DP solves the decision as a pseudo-polynomial multiple-choice knapsack
// over quantized power. Each (core, mode) power entry is rounded UP to a
// multiple of the quantum, so every vector the table admits is feasible
// under the true (unrounded) budget; the price is that solutions whose true
// power lies within cores×quantum of the budget may be missed. The returned
// Stats therefore carry a certified optimality-gap bound computed from the
// fractional relaxation: (OPT − returned) / OPT ≤ GapBound.
//
// Cost is O(cores × modes × budget/quantum) time and O(cores × budget/quantum)
// bytes for the reconstruction table. With the adaptive default quantum the
// table stays ~16 MB even at 1024 cores.
//
// The result is floored at the greedy heuristic's: DP returns whichever of
// (table optimum, greedy) scores better, so DP ≥ greedy always holds and
// quantization can never make the "smarter" solver the worse one.
type DP struct {
	// QuantumW is the power quantum in watts. 0 selects the adaptive
	// default BudgetW / max(2048, 16·cores), which keeps the worst-case
	// quantization loss (cores × quantum) under ~7% of the budget at any
	// scale and under 0.5% for ≤16 cores.
	QuantumW float64
}

// Name implements Solver.
func (*DP) Name() string { return "dp" }

// defaultQuantum returns the adaptive quantum for an instance.
func (d *DP) defaultQuantum(in Instance) float64 {
	denom := 2048
	if 16*in.NumCores() > denom {
		denom = 16 * in.NumCores()
	}
	return in.BudgetW / float64(denom)
}

// Solve implements Solver.
func (d *DP) Solve(in Instance) (modes.Vector, Stats) {
	return d.SolveBounded(in, nil)
}

// dpScratch is a Session's reusable DP table memory: flat weight and choice
// tables plus the two rolling value rows. Reuse is purely an allocation
// saving — every cell the solve reads is rewritten for the new instance
// (resizeFloats zeroes the base-case row; choice cells are written
// unconditionally), so results match fresh tables bit-for-bit.
type dpScratch struct {
	weight []int     // [core*modes + mode] rounded-up weights in quanta
	dp     []float64 // rolling value row, w = 0..W
	ndp    []float64
	choice []uint8 // [core*(W+1) + w] reconstruction table
}

// SolveBounded implements Bounded. The checkpoint is consulted once per
// core row of the table (each row is (budget/quantum+1) × modes cells); an
// aborted solve discards the partial table and returns the greedy answer
// with GapBound 1 — the same anytime fallback the degenerate cases use.
func (d *DP) SolveBounded(in Instance, cp *Checkpoint) (modes.Vector, Stats) {
	return d.solveWith(in, cp, nil)
}

// solveWith is SolveBounded with optional session scratch; sc == nil
// allocates fresh tables (the cold path).
func (d *DP) solveWith(in Instance, cp *Checkpoint, sc *dpScratch) (modes.Vector, Stats) {
	start := time.Now()
	st := Stats{Solver: d.Name()}
	n, m := in.NumCores(), in.NumModes()
	if n == 0 {
		st.Exact = true
		st.Elapsed = time.Since(start)
		return modes.Vector{}, st
	}
	q := d.QuantumW
	if q <= 0 {
		q = d.defaultQuantum(in)
	}
	if q <= 0 || m > 256 {
		// Degenerate budget (≤ 0) or a plan too wide for the uint8
		// reconstruction table: fall back to greedy.
		v, nodes, aborted := greedySolve(in, cp)
		st.Nodes = nodes
		st.GapBound = 1
		st.Aborted = aborted
		st.Elapsed = time.Since(start)
		return v, st
	}
	W := int(in.BudgetW / q)

	if sc == nil {
		sc = &dpScratch{}
	}
	// Rounded-up weights in quanta; entries beyond W can never fit.
	sc.weight = resizeInts(sc.weight, n*m)
	weight := sc.weight
	for c := 0; c < n; c++ {
		row := weight[c*m : (c+1)*m]
		for mo := 0; mo < m; mo++ {
			w := int(math.Ceil(in.Power[c][mo] / q))
			if w < 0 {
				w = 0
			}
			row[mo] = w
		}
	}

	// dp[w] = best throughput over cores 0..c with rounded power ≤ w quanta.
	// The base case must be all-zeros (no cores, no instructions) —
	// resizeFloats guarantees it.
	negInf := math.Inf(-1)
	sc.dp = resizeFloats(sc.dp, W+1)
	sc.ndp = resizeFloats(sc.ndp, W+1)
	sc.choice = resizeBytes(sc.choice, n*(W+1))
	dp, ndp, choice := sc.dp, sc.ndp, sc.choice
	for c := 0; c < n; c++ {
		if cp.Visit(int64(W+1) * int64(m)) {
			// Deadline hit mid-table: the partial table is useless, so fall
			// back to the anytime greedy answer (run unbounded — it is the
			// cheap kernel the caller's own fallback ladder would use).
			v, nodes, _ := greedySolve(in, nil)
			st.Nodes = int64(c)*int64(W+1)*int64(m) + nodes
			st.GapBound = 1
			st.Aborted = true
			st.Elapsed = time.Since(start)
			return v, st
		}
		wrow := weight[c*m : (c+1)*m]
		crow := choice[c*(W+1) : (c+1)*(W+1)]
		for w := 0; w <= W; w++ {
			best, bm := negInf, -1
			for mo := 0; mo < m; mo++ {
				wc := wrow[mo]
				if wc > w {
					continue
				}
				prev := dp[w-wc]
				if math.IsInf(prev, -1) {
					continue
				}
				// Strict > keeps the lowest mode index (fastest level) on
				// value ties, making reconstruction deterministic.
				if cand := prev + in.Instr[c][mo]; cand > best {
					best, bm = cand, mo
				}
			}
			ndp[w] = best
			// Write unconditionally — reused cells may hold a stale choice.
			ch := uint8(0)
			if bm >= 0 {
				ch = uint8(bm)
			}
			crow[w] = ch
		}
		dp, ndp = ndp, dp
	}
	sc.dp, sc.ndp = dp, ndp
	st.Nodes = int64(n) * int64(W+1) * int64(m)

	// Gap certificate from the fractional relaxation.
	f := buildFrontier(in)
	ub := f.bound(in, 0, 0, 0)
	st.UpperBoundInstr = ub

	gv, _, _ := greedySolve(in, nil)
	gp := in.VectorPower(gv)
	gt := in.VectorInstr(gv)

	bestW, bestV := -1, negInf
	for w := 0; w <= W; w++ {
		if dp[w] > bestV { // strict > → smallest capacity (lowest power) wins ties
			bestV, bestW = dp[w], w
		}
	}
	var v modes.Vector
	if bestW < 0 {
		// Not even the all-deepest vector fits the quantized budget.
		v = in.deepestVector()
	} else {
		v = make(modes.Vector, n)
		w := bestW
		for c := n - 1; c >= 0; c-- {
			mo := int(choice[c*(W+1)+w])
			v[c] = modes.Mode(mo)
			w -= weight[c*m+mo]
		}
	}

	// Floor at greedy (both scored canonically): take greedy when the DP
	// fallback is infeasible and greedy is not, or when greedy simply wins.
	vp, vt := in.VectorPower(v), in.VectorInstr(v)
	if vp > in.BudgetW {
		if gp <= in.BudgetW {
			v, vt = gv, gt
		}
	} else if gp <= in.BudgetW && better(gt, gp, vt, vp) {
		v, vt = gv, gt
	}

	if ub > 0 {
		gap := (ub - vt) / ub
		if gap < 0 {
			gap = 0
		}
		st.GapBound = gap
	}
	st.Elapsed = time.Since(start)
	return v, st
}
