package solver

import (
	"math"
	"sort"
	"time"

	"gpm/internal/modes"
)

// BB is an exact branch-and-bound solver. It branches on cores in index
// order (mode 0 first, so leaves are reached in lexicographic order), seeds
// its incumbent with the greedy heuristic, and prunes with two tests:
//
//   - feasibility: prefix power plus the suffix's minimum power already
//     exceeds the budget;
//   - bound: the fractional relaxation — each undecided core may take any
//     convex combination of its efficient (power, instr) points — cannot
//     beat the incumbent. The relaxation is solved in closed form by
//     water-filling the remaining budget over the per-core convex-hull
//     segments in decreasing ΔBIPS/ΔW order.
//
// Leaves are scored with canonical core-order sums, so an accepted vector's
// (throughput, power) is bit-identical to the exhaustive kernel's score of
// the same vector.
type BB struct {
	// NodeLimit caps branch nodes; 0 means unlimited. When exceeded, BB
	// returns its incumbent with Exact=false (an anytime cutoff for
	// thousand-core instances).
	NodeLimit int64
	// LexTies makes BB reproduce the exhaustive kernel bit-for-bit: pruning
	// keeps subtrees that merely *tie* the incumbent's throughput, so among
	// equal-(throughput, power) optima the lexicographically smallest
	// vector survives, exactly as lexicographic enumeration with strict
	// improvement would pick. The default prunes ties, which preserves the
	// optimal value but may return a different representative on exact
	// ties; symmetric instances (replicated cores) then branch far less.
	LexTies bool
}

// Name implements Solver.
func (*BB) Name() string { return "bb" }

// frontier is the precomputed relaxation machinery for one instance.
type frontier struct {
	// baseP/baseI are each core's minimum-power efficient point.
	baseP, baseI []float64
	// sufP/sufI[c] sum baseP/baseI over cores c..n-1 (sufP[n] == 0).
	sufP, sufI []float64
	// segs are all cores' hull segments, sorted by decreasing ΔI/ΔP.
	segs []segment
}

type segment struct {
	core   int
	dP, dI float64
	ratio  float64
}

// buildFrontier computes per-core efficient frontiers (upper-left convex
// hulls of the (power, instr) mode points) and the suffix aggregates the
// bound needs.
func buildFrontier(in Instance) *frontier {
	n, m := in.NumCores(), in.NumModes()
	f := &frontier{
		baseP: make([]float64, n),
		baseI: make([]float64, n),
		sufP:  make([]float64, n+1),
		sufI:  make([]float64, n+1),
	}
	type pt struct {
		p, i float64
	}
	for c := 0; c < n; c++ {
		pts := make([]pt, 0, m)
		for mo := 0; mo < m; mo++ {
			pts = append(pts, pt{in.Power[c][mo], in.Instr[c][mo]})
		}
		sort.Slice(pts, func(a, b int) bool {
			if pts[a].p != pts[b].p {
				return pts[a].p < pts[b].p
			}
			return pts[a].i > pts[b].i
		})
		// Drop dominated points (≥ power for ≤ instr), then keep the concave
		// hull: slopes must strictly decrease left to right.
		hull := make([]pt, 0, m)
		for _, q := range pts {
			if len(hull) > 0 && q.i <= hull[len(hull)-1].i {
				continue // dominated (incl. equal-power duplicates)
			}
			for len(hull) >= 2 {
				a, b := hull[len(hull)-2], hull[len(hull)-1]
				// Pop b if the a→q slope is at least the a→b slope.
				if (q.i-a.i)*(b.p-a.p) >= (b.i-a.i)*(q.p-a.p) {
					hull = hull[:len(hull)-1]
				} else {
					break
				}
			}
			hull = append(hull, q)
		}
		f.baseP[c] = hull[0].p
		f.baseI[c] = hull[0].i
		for k := 1; k < len(hull); k++ {
			dP := hull[k].p - hull[k-1].p
			dI := hull[k].i - hull[k-1].i
			f.segs = append(f.segs, segment{core: c, dP: dP, dI: dI, ratio: dI / dP})
		}
	}
	for c := n - 1; c >= 0; c-- {
		f.sufP[c] = f.sufP[c+1] + f.baseP[c]
		f.sufI[c] = f.sufI[c+1] + f.baseI[c]
	}
	sort.SliceStable(f.segs, func(a, b int) bool {
		if f.segs[a].ratio != f.segs[b].ratio {
			return f.segs[a].ratio > f.segs[b].ratio
		}
		return f.segs[a].core < f.segs[b].core
	})
	return f
}

// bound returns a throughput upper bound for completions of a prefix that
// has fixed cores 0..c-1 at (usedP, usedI), or -Inf when no completion can
// fit the budget. The result is inflated by a tiny relative slack so float
// associativity differences can never prune a genuinely optimal leaf.
func (f *frontier) bound(in Instance, c int, usedP, usedI float64) float64 {
	slack := in.BudgetW - usedP - f.sufP[c]
	if slack < -in.budgetEps() {
		return math.Inf(-1)
	}
	if slack < 0 {
		slack = 0
	}
	ub := usedI + f.sufI[c]
	for _, s := range f.segs {
		if s.core < c {
			continue
		}
		if s.dP <= slack {
			ub += s.dI
			slack -= s.dP
		} else {
			ub += s.dI * slack / s.dP
			break
		}
	}
	return ub + 1e-9*(1+math.Abs(ub))
}

// Solve implements Solver.
func (b *BB) Solve(in Instance) (modes.Vector, Stats) {
	return b.SolveBounded(in, nil)
}

// SolveBounded implements Bounded. Branch nodes are charged to the
// checkpoint in cpBatch batches; an exhausted checkpoint stops the DFS at
// its incumbent, exactly like an exceeded NodeLimit.
func (b *BB) SolveBounded(in Instance, cp *Checkpoint) (modes.Vector, Stats) {
	start := time.Now()
	st := Stats{Solver: b.Name(), Exact: true}
	n := in.NumCores()
	if n == 0 {
		st.Elapsed = time.Since(start)
		return modes.Vector{}, st
	}
	f := buildFrontier(in)
	st.UpperBoundInstr = f.bound(in, 0, 0, 0)

	// Greedy incumbent seed. In LexTies mode the seed only tightens the
	// pruning floor — the incumbent vector must be discovered by the lex
	// DFS itself, or a greedy optimum could shadow a lex-smaller tie.
	gv, _ := greedySolve(in, cp)
	gp := in.VectorPower(gv)
	gt := in.VectorInstr(gv)
	seedFeasible := gp <= in.BudgetW

	s := &bbState{in: in, f: f, limit: b.NodeLimit, lexTies: b.LexTies, cp: cp}
	s.bestT, s.bestP = -1, 0
	if seedFeasible {
		s.floor = gt
		if !b.LexTies {
			s.have = true
			s.best = gv.Clone()
			s.bestT, s.bestP = gt, gp
		}
	} else {
		s.floor = math.Inf(-1)
	}
	s.v = make(modes.Vector, n)
	s.rec(0, 0, 0)

	st.Nodes, st.Pruned = s.nodes, s.pruned
	st.Exact = !s.aborted
	st.Aborted = cp.Aborted()
	st.Elapsed = time.Since(start)
	if !s.have {
		if seedFeasible {
			return gv, st // only possible under an aggressive NodeLimit
		}
		return in.deepestVector(), st
	}
	return s.best, st
}

type bbState struct {
	in      Instance
	f       *frontier
	limit   int64
	lexTies bool
	cp      *Checkpoint

	v            modes.Vector
	best         modes.Vector
	bestT, bestP float64
	floor        float64 // pruning floor: max of seed and incumbent throughput
	have         bool
	nodes        int64
	pruned       int64
	aborted      bool
	cpDebt       int64
}

func (s *bbState) rec(c int, usedP, usedI float64) {
	if s.aborted {
		return
	}
	s.nodes++
	if s.limit > 0 && s.nodes > s.limit {
		s.aborted = true
		return
	}
	if s.cp != nil {
		s.cpDebt++
		if s.cpDebt >= cpBatch {
			debt := s.cpDebt
			s.cpDebt = 0
			if s.cp.Visit(debt) {
				s.aborted = true
				return
			}
		}
	}
	in := s.in
	if c == in.NumCores() {
		p := in.VectorPower(s.v)
		if p > in.BudgetW {
			return
		}
		t := in.VectorInstr(s.v)
		if !s.have || better(t, p, s.bestT, s.bestP) {
			s.have = true
			if s.best == nil {
				s.best = make(modes.Vector, len(s.v))
			}
			copy(s.best, s.v)
			s.bestT, s.bestP = t, p
			if t > s.floor {
				s.floor = t
			}
		}
		return
	}
	ub := s.f.bound(in, c, usedP, usedI)
	if math.IsInf(ub, -1) {
		s.pruned++
		return
	}
	// LexTies keeps throughput ties alive (strict <); the default prunes
	// them (≤) once an incumbent vector exists.
	if s.lexTies || !s.have {
		if ub < s.floor {
			s.pruned++
			return
		}
	} else if ub <= s.floor {
		s.pruned++
		return
	}
	for mo := 0; mo < in.NumModes(); mo++ {
		s.v[c] = modes.Mode(mo)
		s.rec(c+1, usedP+in.Power[c][mo], usedI+in.Instr[c][mo])
	}
	s.v[c] = 0
}
