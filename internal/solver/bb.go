package solver

import (
	"math"
	"slices"
	"sort"
	"time"

	"gpm/internal/modes"
)

// BB is an exact branch-and-bound solver. It branches on cores in index
// order (mode 0 first, so leaves are reached in lexicographic order), seeds
// its incumbent with the greedy heuristic, and prunes with two tests:
//
//   - feasibility: prefix power plus the suffix's minimum power already
//     exceeds the budget;
//   - bound: the fractional relaxation — each undecided core may take any
//     convex combination of its efficient (power, instr) points — cannot
//     beat the incumbent. The relaxation is solved in closed form by
//     water-filling the remaining budget over the per-core convex-hull
//     segments in decreasing ΔBIPS/ΔW order.
//
// Leaves are scored with canonical core-order sums, so an accepted vector's
// (throughput, power) is bit-identical to the exhaustive kernel's score of
// the same vector.
type BB struct {
	// NodeLimit caps branch nodes; 0 means unlimited. When exceeded, BB
	// returns its incumbent with Exact=false (an anytime cutoff for
	// thousand-core instances).
	NodeLimit int64
	// LexTies makes BB reproduce the exhaustive kernel bit-for-bit: pruning
	// keeps subtrees that merely *tie* the incumbent's throughput, so among
	// equal-(throughput, power) optima the lexicographically smallest
	// vector survives, exactly as lexicographic enumeration with strict
	// improvement would pick. The default prunes ties, which preserves the
	// optimal value but may return a different representative on exact
	// ties; symmetric instances (replicated cores) then branch far less.
	LexTies bool
}

// Name implements Solver.
func (*BB) Name() string { return "bb" }

// frontier is the precomputed relaxation machinery for one instance. Its
// slices double as reusable scratch: a Session rebuilds the same frontier
// value every interval without allocating.
type frontier struct {
	// baseP/baseI are each core's minimum-power efficient point.
	baseP, baseI []float64
	// sufP/sufI[c] sum baseP/baseI over cores c..n-1 (sufP[n] == 0).
	sufP, sufI []float64
	// segs are all cores' hull segments, sorted by decreasing ΔI/ΔP.
	segs []segment
	// pts/hull are per-core sort scratch for build.
	pts, hull []hullPt
}

type segment struct {
	core   int
	dP, dI float64
	ratio  float64
	// seq is the pre-sort emission index; the fast sort uses it as the final
	// tiebreak so its order equals the cold path's stable sort exactly.
	seq int32
}

type hullPt struct{ p, i float64 }

// buildFrontier computes per-core efficient frontiers (upper-left convex
// hulls of the (power, instr) mode points) and the suffix aggregates the
// bound needs.
func buildFrontier(in Instance) *frontier {
	f := &frontier{}
	f.build(in, false)
	return f
}

// build fills f in place, reusing its buffers. fast selects the
// allocation-free sorts of the session path: insertion sort for the per-core
// mode points and slices.SortFunc (with the seq tiebreak) for the global
// segment order. Both produce exactly the cold path's order on finite
// instances: point ties are value-identical duplicates, and the segment
// comparator extended by seq is a total order whose restriction to
// (ratio, core) matches sort.SliceStable's stable tie handling. Non-finite
// entries (NaN keys) are only handled by the cold sorts, so sessions gate
// the fast path on finiteInstance.
func (f *frontier) build(in Instance, fast bool) {
	n, m := in.NumCores(), in.NumModes()
	f.baseP = resizeFloats(f.baseP, n)
	f.baseI = resizeFloats(f.baseI, n)
	f.sufP = resizeFloats(f.sufP, n+1)
	f.sufI = resizeFloats(f.sufI, n+1)
	f.segs = f.segs[:0]
	for c := 0; c < n; c++ {
		pts := f.pts[:0]
		for mo := 0; mo < m; mo++ {
			pts = append(pts, hullPt{in.Power[c][mo], in.Instr[c][mo]})
		}
		if fast {
			// Insertion sort by (p asc, i desc): m is small and the keys are
			// finite, so this matches sort.Slice's order (ties are
			// value-identical points).
			for a := 1; a < len(pts); a++ {
				q := pts[a]
				b := a - 1
				for b >= 0 && (pts[b].p > q.p || (pts[b].p == q.p && pts[b].i < q.i)) {
					pts[b+1] = pts[b]
					b--
				}
				pts[b+1] = q
			}
		} else {
			sort.Slice(pts, func(a, b int) bool {
				if pts[a].p != pts[b].p {
					return pts[a].p < pts[b].p
				}
				return pts[a].i > pts[b].i
			})
		}
		f.pts = pts
		// Drop dominated points (≥ power for ≤ instr), then keep the concave
		// hull: slopes must strictly decrease left to right.
		hull := f.hull[:0]
		for _, q := range pts {
			if len(hull) > 0 && q.i <= hull[len(hull)-1].i {
				continue // dominated (incl. equal-power duplicates)
			}
			for len(hull) >= 2 {
				a, b := hull[len(hull)-2], hull[len(hull)-1]
				// Pop b if the a→q slope is at least the a→b slope.
				if (q.i-a.i)*(b.p-a.p) >= (b.i-a.i)*(q.p-a.p) {
					hull = hull[:len(hull)-1]
				} else {
					break
				}
			}
			hull = append(hull, q)
		}
		f.hull = hull
		f.baseP[c] = hull[0].p
		f.baseI[c] = hull[0].i
		for k := 1; k < len(hull); k++ {
			dP := hull[k].p - hull[k-1].p
			dI := hull[k].i - hull[k-1].i
			f.segs = append(f.segs, segment{
				core: c, dP: dP, dI: dI, ratio: dI / dP, seq: int32(len(f.segs)),
			})
		}
	}
	for c := n - 1; c >= 0; c-- {
		f.sufP[c] = f.sufP[c+1] + f.baseP[c]
		f.sufI[c] = f.sufI[c+1] + f.baseI[c]
	}
	if fast {
		slices.SortFunc(f.segs, func(a, b segment) int {
			if a.ratio != b.ratio {
				if a.ratio > b.ratio {
					return -1
				}
				return 1
			}
			if a.core != b.core {
				if a.core < b.core {
					return -1
				}
				return 1
			}
			return int(a.seq - b.seq)
		})
	} else {
		sort.SliceStable(f.segs, func(a, b int) bool {
			if f.segs[a].ratio != f.segs[b].ratio {
				return f.segs[a].ratio > f.segs[b].ratio
			}
			return f.segs[a].core < f.segs[b].core
		})
	}
}

// bound returns a throughput upper bound for completions of a prefix that
// has fixed cores 0..c-1 at (usedP, usedI), or -Inf when no completion can
// fit the budget. The result is inflated by a tiny relative slack so float
// associativity differences can never prune a genuinely optimal leaf.
func (f *frontier) bound(in Instance, c int, usedP, usedI float64) float64 {
	slack := in.BudgetW - usedP - f.sufP[c]
	if slack < -in.budgetEps() {
		return math.Inf(-1)
	}
	if slack < 0 {
		slack = 0
	}
	ub := usedI + f.sufI[c]
	for _, s := range f.segs {
		if s.core < c {
			continue
		}
		if s.dP <= slack {
			ub += s.dI
			slack -= s.dP
		} else {
			ub += s.dI * slack / s.dP
			break
		}
	}
	return ub + 1e-9*(1+math.Abs(ub))
}

// Solve implements Solver.
func (b *BB) Solve(in Instance) (modes.Vector, Stats) {
	return b.SolveBounded(in, nil)
}

// SolveBounded implements Bounded. Branch nodes are charged to the
// checkpoint in cpBatch batches; an exhausted checkpoint stops the DFS at
// its incumbent, exactly like an exceeded NodeLimit.
func (b *BB) SolveBounded(in Instance, cp *Checkpoint) (modes.Vector, Stats) {
	start := time.Now()
	if in.NumCores() == 0 {
		return modes.Vector{}, Stats{Solver: b.Name(), Exact: true, Elapsed: time.Since(start)}
	}
	f := buildFrontier(in)
	// Greedy incumbent seed. In LexTies mode the seed only tightens the
	// pruning floor — the incumbent vector must be discovered by the lex
	// DFS itself, or a greedy optimum could shadow a lex-smaller tie.
	gv, _, _ := greedySolve(in, cp)
	return b.solveFrom(in, cp, f, gv, math.Inf(-1), nil, start)
}

// bbScratch is a Session's reusable BB machinery: the frontier (with its
// sort scratch) and the DFS state, so warm solves allocate nothing in
// steady state.
type bbScratch struct {
	frontier frontier
	state    bbState
}

// solveFrom runs the branch-and-bound DFS over a prebuilt frontier with a
// given greedy seed and an optional extra pruning floor (the session's warm
// hint, re-scored on this instance). The floor only tightens pruning — it
// never seeds the incumbent vector — so for any floor ≤ the instance
// optimum the returned vector is bit-identical to a cold solve in both tie
// modes:
//
//   - the final incumbent is the first-visited leaf maximizing
//     (throughput, −power) among feasible leaves, and every subtree holding
//     such a leaf has a relaxation bound strictly above the optimum (bound
//     adds positive relative slack), so no floor ≤ the optimum prunes it
//     under either the `< floor` (LexTies / no incumbent yet) or `≤ floor`
//     (incumbent held) test;
//   - visit order is fixed by the DFS and leaves score with the same
//     canonical sums, so the incumbent replacement chain ends identically.
//
// sc, when non-nil, supplies reusable DFS state (vector and incumbent
// buffers); the returned vector then aliases it.
func (b *BB) solveFrom(in Instance, cp *Checkpoint, f *frontier, gv modes.Vector, warmFloor float64, sc *bbScratch, start time.Time) (modes.Vector, Stats) {
	st := Stats{Solver: b.Name(), Exact: true}
	st.UpperBoundInstr = f.bound(in, 0, 0, 0)
	gp := in.VectorPower(gv)
	gt := in.VectorInstr(gv)
	seedFeasible := gp <= in.BudgetW

	var s *bbState
	if sc != nil {
		s = &sc.state
	} else {
		s = &bbState{}
	}
	v, best := s.v, s.best
	*s = bbState{in: in, f: f, limit: b.NodeLimit, lexTies: b.LexTies, cp: cp, v: v, best: best}
	s.bestT, s.bestP = -1, 0
	if seedFeasible {
		s.floor = gt
		if !b.LexTies {
			s.have = true
			s.best = append(s.best[:0], gv...)
			s.bestT, s.bestP = gt, gp
		}
	} else {
		s.floor = math.Inf(-1)
	}
	if warmFloor > s.floor {
		s.floor = warmFloor
	}
	n := in.NumCores()
	if cap(s.v) < n {
		s.v = make(modes.Vector, n)
	}
	s.v = s.v[:n]
	s.rec(0, 0, 0)

	st.Nodes, st.Pruned = s.nodes, s.pruned
	st.Exact = !s.aborted
	// Report only this solve's own checkpoint trips. Reading the shared
	// checkpoint's latched flag here would let a concurrent sibling (another
	// cluster goroutine under Hier, another exhaustive shard) that tripped the
	// budget mark THIS completed exact solve as aborted — inconsistent stats
	// (Exact && Aborted) and a lost memo entry.
	st.Aborted = s.cpHit
	st.Elapsed = time.Since(start)
	if !s.have {
		if seedFeasible {
			return gv, st // only possible under an aggressive NodeLimit
		}
		return in.deepestVector(), st
	}
	return s.best, st
}

type bbState struct {
	in      Instance
	f       *frontier
	limit   int64
	lexTies bool
	cp      *Checkpoint

	v            modes.Vector
	best         modes.Vector
	bestT, bestP float64
	floor        float64 // pruning floor: max of seed, warm hint and incumbent
	have         bool
	nodes        int64
	pruned       int64
	aborted      bool
	// cpHit records that THIS solve's checkpoint charge tripped the budget —
	// as opposed to `aborted`, which also covers the solver's own NodeLimit
	// and a pre-latched checkpoint observed by a later Visit.
	cpHit  bool
	cpDebt int64
}

func (s *bbState) rec(c int, usedP, usedI float64) {
	if s.aborted {
		return
	}
	s.nodes++
	if s.limit > 0 && s.nodes > s.limit {
		s.aborted = true
		return
	}
	if s.cp != nil {
		s.cpDebt++
		if s.cpDebt >= cpBatch {
			debt := s.cpDebt
			s.cpDebt = 0
			if s.cp.Visit(debt) {
				s.aborted = true
				s.cpHit = true
				return
			}
		}
	}
	in := s.in
	if c == in.NumCores() {
		p := in.VectorPower(s.v)
		if p > in.BudgetW {
			return
		}
		t := in.VectorInstr(s.v)
		if !s.have || better(t, p, s.bestT, s.bestP) {
			s.have = true
			if len(s.best) != len(s.v) {
				s.best = make(modes.Vector, len(s.v))
			}
			copy(s.best, s.v)
			s.bestT, s.bestP = t, p
			if t > s.floor {
				s.floor = t
			}
		}
		return
	}
	ub := s.f.bound(in, c, usedP, usedI)
	if math.IsInf(ub, -1) {
		s.pruned++
		return
	}
	// LexTies keeps throughput ties alive (strict <); the default prunes
	// them (≤) once an incumbent vector exists.
	if s.lexTies || !s.have {
		if ub < s.floor {
			s.pruned++
			return
		}
	} else if ub <= s.floor {
		s.pruned++
		return
	}
	for mo := 0; mo < in.NumModes(); mo++ {
		s.v[c] = modes.Mode(mo)
		s.rec(c+1, usedP+in.Power[c][mo], usedI+in.Instr[c][mo])
	}
	s.v[c] = 0
}
