package solver

import (
	"runtime"
	"sync"
	"time"

	"gpm/internal/modes"
)

// maxEnumerable bounds the vector count Exhaustive will attempt; beyond it
// the solver degrades to the greedy heuristic (Exact=false) instead of
// running for hours. 2^31 vectors is already minutes of work.
const maxEnumerable = int64(1) << 31

// Exhaustive is the brute-force reference solver: it scores every
// modes^cores vector, sharded across worker goroutines by prefix. Shard w
// owns a contiguous range of assignments to the first d cores (the highest
// lexicographic digits) and enumerates the remaining cores' combinations
// beneath each prefix; merging shard winners in prefix order under the
// strict improvement rule reproduces the sequential kernel's result
// bit-for-bit, including its lexicographic tie-breaking.
type Exhaustive struct {
	// Workers bounds the shard goroutines (default GOMAXPROCS).
	Workers int
}

// Name implements Solver.
func (*Exhaustive) Name() string { return "exhaustive" }

// Solve implements Solver.
func (e *Exhaustive) Solve(in Instance) (modes.Vector, Stats) {
	return e.SolveBounded(in, nil)
}

// SolveBounded implements Bounded. All shards charge nodes to the shared
// checkpoint; an aborted solve merges whatever the shards found before the
// cut (feasible, or the all-deepest floor if nothing feasible was seen).
func (e *Exhaustive) SolveBounded(in Instance, cp *Checkpoint) (modes.Vector, Stats) {
	start := time.Now()
	n, m := in.NumCores(), in.NumModes()
	st := Stats{Solver: e.Name(), Exact: true}
	if n == 0 {
		st.Elapsed = time.Since(start)
		return modes.Vector{}, st
	}

	// Refuse intractable instances: fall back to greedy rather than hang.
	total := int64(1)
	for c := 0; c < n; c++ {
		if total > maxEnumerable/int64(m) {
			v, nodes, aborted := greedySolve(in, cp)
			st.Exact = false
			st.Nodes = nodes
			st.Aborted = aborted
			st.Elapsed = time.Since(start)
			return v, st
		}
		total *= int64(m)
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Prefix depth: enough prefixes to give every worker several shards'
	// worth of balance, but never the whole problem.
	depth := 0
	numPrefix := int64(1)
	for numPrefix < int64(workers)*8 && depth < n-1 {
		numPrefix *= int64(m)
		depth++
	}
	if int64(workers) > numPrefix {
		workers = int(numPrefix)
	}
	st.Workers = workers

	type shardBest struct {
		found   bool
		t, p    float64
		v       modes.Vector
		nodes   int64
		aborted bool
	}
	results := make([]shardBest, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := numPrefix * int64(w) / int64(workers)
		hi := numPrefix * int64(w+1) / int64(workers)
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			results[w] = enumerateRange(in, depth, lo, hi, cp)
		}(w, lo, hi)
	}
	wg.Wait()

	// Merge in shard (prefix) order with the strict rule: the first shard to
	// reach the optimum (t, p) wins, i.e. the lexicographically smallest
	// optimal vector overall.
	best := in.deepestVector()
	bestT, bestP := -1.0, 0.0
	found := false
	for _, r := range results {
		st.Nodes += r.nodes
		if r.aborted {
			st.Aborted = true
			st.Exact = false
		}
		if !r.found {
			continue
		}
		if !found || better(r.t, r.p, bestT, bestP) {
			found = true
			bestT, bestP = r.t, r.p
			best = r.v
		}
	}
	st.Elapsed = time.Since(start)
	return best, st
}

// enumerateRange scores every vector whose first `depth` cores decode the
// prefix indices in [lo, hi); suffix cores run a full odometer. Vectors are
// visited in lexicographic order within the range. Nodes are charged to the
// checkpoint in cpBatch batches; an exhausted checkpoint stops the shard at
// its current best.
func enumerateRange(in Instance, depth int, lo, hi int64, cp *Checkpoint) (out struct {
	found   bool
	t, p    float64
	v       modes.Vector
	nodes   int64
	aborted bool
}) {
	n, m := in.NumCores(), in.NumModes()
	v := make(modes.Vector, n)
	best := make(modes.Vector, n)
	var cpDebt int64
	for pi := lo; pi < hi; pi++ {
		// Decode the prefix, most-significant digit first (core 0).
		rem := pi
		for c := depth - 1; c >= 0; c-- {
			v[c] = modes.Mode(rem % int64(m))
			rem /= int64(m)
		}
		for c := depth; c < n; c++ {
			v[c] = 0
		}
		for {
			out.nodes++
			if cp != nil {
				cpDebt++
				if cpDebt >= cpBatch {
					if cp.Visit(cpDebt) {
						out.aborted = true
						out.v = best
						return out
					}
					cpDebt = 0
				}
			}
			p := in.VectorPower(v)
			if p <= in.BudgetW {
				t := in.VectorInstr(v)
				if !out.found || better(t, p, out.t, out.p) {
					out.found = true
					out.t, out.p = t, p
					copy(best, v)
				}
			}
			// Suffix odometer.
			c := n - 1
			for c >= depth {
				v[c]++
				if int(v[c]) < m {
					break
				}
				v[c] = 0
				c--
			}
			if c < depth {
				break
			}
		}
	}
	out.v = best
	return out
}
