package solver

import (
	"math/rand"
	"testing"
	"time"

	"gpm/internal/modes"
)

// trackedInstance wraps an Instance with a simulated predictor handshake: the
// test plays the role of core.MatricesInto, mutating rows in place and
// stamping generations, so the session sees exactly the contract the engine
// provides (equal GenID+Gen ⇒ bit-identical matrices; equal Gens[c] ⇒ core
// c's rows bit-identical).
type trackedInstance struct {
	in  Instance
	gen uint64
}

var testGenID uint64 = 0x10000 // far from core.matricesGenID's range; test-local

func newTracked(seed int64, n int, frac float64) *trackedInstance {
	testGenID++
	ti := &trackedInstance{in: randInstance(seed, n, plan3(), frac), gen: 1}
	ti.in.GenID = testGenID
	ti.in.Gen = 1
	ti.in.Gens = make([]uint64, n)
	for c := range ti.in.Gens {
		ti.in.Gens[c] = 1
	}
	return ti
}

// touch mutates the given cores' rows in place and stamps them, exactly as
// MatricesInto would on changed telemetry.
func (ti *trackedInstance) touch(rng *rand.Rand, cores ...int) {
	if len(cores) == 0 {
		return
	}
	ti.gen++
	for _, c := range cores {
		for mo := range ti.in.Power[c] {
			ti.in.Power[c][mo] *= 1 + 0.04*(rng.Float64()-0.5)
			ti.in.Instr[c][mo] *= 1 + 0.04*(rng.Float64()-0.5)
		}
		ti.in.Gens[c] = ti.gen
	}
	ti.in.Gen = ti.gen
}

// kill collapses a core the way death/parking does — zero throughput in every
// mode — and stamps it. The all-equal Instr row voids the margin certificate,
// so deltas over dead cores must demote to the fallback.
func (ti *trackedInstance) kill(c int) {
	ti.gen++
	for mo := range ti.in.Instr[c] {
		ti.in.Instr[c][mo] = 0
		ti.in.Power[c][mo] = 0.1
	}
	ti.in.Gens[c] = ti.gen
	ti.in.Gen = ti.gen
}

// cold solves the instance from scratch with an identically configured
// solver, with the handshake stripped so no session state can leak in.
func coldSolve(s Solver, in Instance) modes.Vector {
	in.Gens, in.Gen, in.GenID = nil, 0, 0
	v, _ := s.Solve(in)
	return v
}

// TestDeltaVsColdProperty is the tentpole's correctness pin: over seeded
// drift sequences spanning sparse dirt (the certified-delta regime), dense
// dirt (beyond maxDeltaDirty), budget steps, and core death, a delta-enabled
// session must return the bit-identical vector of a cold solve on every
// interval — in both BB tie modes. 12 seeds × 2 tie modes = 24 sequences.
func TestDeltaVsColdProperty(t *testing.T) {
	const seeds = 12
	const steps = 16
	var totalDelta, totalCertified, totalFallback int64
	for _, lex := range []bool{false, true} {
		for seed := int64(0); seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(9000*seed + 31))
			n := 8 + int(seed%5)
			// Even seeds run ample budgets (the argmax regime, where deltas
			// certify); odd seeds run tight ones (the fallback regime).
			frac := 0.55 + 0.35*rng.Float64()
			if seed%2 == 0 {
				frac = 1.1 + 0.3*rng.Float64()
			}
			ti := newTracked(seed+500, n, frac)
			ses := NewSession(&BB{LexTies: lex})
			cold := &BB{LexTies: lex}
			var hint Hint
			for step := 0; step < steps; step++ {
				// Drift class rotates per seed; every class still mixes in
				// occasional clean repeats (the memo-hit case).
				switch seed % 4 {
				case 0: // sparse dirt: K ≤ maxDeltaDirty
					if step > 0 {
						ti.touch(rng, rng.Intn(n))
						if rng.Intn(2) == 0 {
							ti.touch(rng, rng.Intn(n), rng.Intn(n))
						}
					}
				case 1: // dense dirt: K > maxDeltaDirty, delta must decline
					if step > 0 && step%3 != 0 {
						cores := rng.Perm(n)[:n/2+1]
						ti.touch(rng, cores...)
					}
				case 2: // budget steps, matrices mostly held
					if step%2 == 1 {
						ti.in.BudgetW *= 0.85 + 0.3*rng.Float64()
					} else if step > 0 {
						ti.touch(rng, rng.Intn(n))
					}
				case 3: // core death and revival amid sparse dirt
					if step%5 == 2 {
						ti.kill(rng.Intn(n))
					} else if step > 0 {
						ti.touch(rng, rng.Intn(n))
					}
				}
				want := coldSolve(cold, ti.in)
				got, st := ses.Solve(ti.in, hint)
				if !got.Equal(want) {
					t.Fatalf("lex=%v seed %d step %d: session %v != cold %v (stats %+v)",
						lex, seed, step, got, want, ses.Stats())
				}
				if st.Aborted {
					t.Fatalf("lex=%v seed %d step %d: unbudgeted solve aborted", lex, seed, step)
				}
				hint = Hint{Vector: got.Clone(), Instr: ti.in.VectorInstr(got)}
			}
			ss := ses.Stats()
			totalDelta += ss.DeltaSolves
			totalCertified += ss.DeltaCertified
			totalFallback += ss.DeltaFallbacks
			ses.Close()
		}
	}
	// The property is vacuous if the drift never actually drove the delta
	// path; require both outcomes to have occurred across the ensemble.
	if totalCertified == 0 {
		t.Fatalf("no certified delta across 24 sequences (delta=%d fallback=%d): test is vacuous",
			totalDelta, totalFallback)
	}
	if totalFallback == 0 {
		t.Fatalf("no delta fallback across 24 sequences (delta=%d certified=%d): test is vacuous",
			totalDelta, totalCertified)
	}
}

// TestDeltaCertifiedPath pins the happy path end to end: ample budget makes
// the per-core argmax the unique optimum, so a single-core change is patched,
// certified, counted, returned with zero search nodes, and the advanced memo
// entry answers the following identical solve as a generation-check hit.
func TestDeltaCertifiedPath(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ti := newTracked(11, 16, 1.25) // all-Turbo feasible: argmax everywhere
	ses := NewSession(&BB{})
	defer ses.Close()

	v0, st0 := ses.Solve(ti.in, Hint{})
	if !st0.Exact {
		t.Fatal("full solve not exact")
	}
	hint := Hint{Vector: v0.Clone(), Instr: ti.in.VectorInstr(v0)}

	ti.touch(rng, 5)
	want := coldSolve(&BB{}, ti.in)
	got, st := ses.Solve(ti.in, hint)
	if !got.Equal(want) {
		t.Fatalf("certified delta %v != cold %v", got, want)
	}
	ss := ses.Stats()
	if ss.DeltaSolves != 1 || ss.DeltaCertified != 1 || ss.DeltaFallbacks != 0 {
		t.Fatalf("counters after certified delta: %+v", ss)
	}
	if ss.DirtyCores != 1 {
		t.Fatalf("DirtyCores = %d, want 1", ss.DirtyCores)
	}
	if st.Nodes != 0 {
		t.Fatalf("certified delta reported %d search nodes, want 0", st.Nodes)
	}
	if !st.Exact {
		t.Fatal("certified delta must carry the memoized solve's exactness")
	}
	if !ses.ResultStable() {
		t.Fatal("certified delta must leave the session stable")
	}

	// The entry advanced in place: the identical instance is now a memo hit.
	before := ses.Stats().MemoHits
	got2, _ := ses.Solve(ti.in, hint)
	if !got2.Equal(want) {
		t.Fatalf("post-delta memo solve %v != %v", got2, want)
	}
	if ses.Stats().MemoHits != before+1 {
		t.Fatalf("advanced entry missed the memo: hits %d -> %d", before, ses.Stats().MemoHits)
	}
}

// TestDeltaFallbackPath pins the demotion: under a tight budget the patched
// vector cannot sit at the argmax water level, the certificate is void, the
// attempt is counted as a fallback, and the full solve still returns the
// cold answer.
func TestDeltaFallbackPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ti := newTracked(12, 14, 0.55)
	ses := NewSession(&BB{})
	defer ses.Close()

	v0, _ := ses.Solve(ti.in, Hint{})
	hint := Hint{Vector: v0.Clone(), Instr: ti.in.VectorInstr(v0)}

	ti.touch(rng, 3)
	want := coldSolve(&BB{}, ti.in)
	got, _ := ses.Solve(ti.in, hint)
	if !got.Equal(want) {
		t.Fatalf("fallback solve %v != cold %v", got, want)
	}
	ss := ses.Stats()
	if ss.DeltaSolves != 1 || ss.DeltaFallbacks != 1 || ss.DeltaCertified != 0 {
		t.Fatalf("counters after fallback: %+v", ss)
	}
}

// TestDeltaGating pins every condition that must bypass the delta path:
// bounded sessions (deadline or node budget), untracked instances, budget
// moves, and an explicit Invalidate.
func TestDeltaGating(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	drive := func(t *testing.T, ses *Session, ti *trackedInstance) SessionStats {
		t.Helper()
		v0, _ := ses.Solve(ti.in, Hint{})
		hint := Hint{Vector: v0.Clone(), Instr: ti.in.VectorInstr(v0)}
		ti.touch(rng, 1)
		want := coldSolve(&BB{}, ti.in)
		got, _ := ses.Solve(ti.in, hint)
		if !got.Equal(want) {
			t.Fatalf("gated solve %v != cold %v", got, want)
		}
		return ses.Stats()
	}

	t.Run("session deadline", func(t *testing.T) {
		ses := NewSession(&Deadline{Inner: &BB{}, Wall: time.Hour})
		defer ses.Close()
		if ss := drive(t, ses, newTracked(21, 12, 1.25)); ss.DeltaSolves != 0 {
			t.Fatalf("deadline session attempted delta: %+v", ss)
		}
	})
	t.Run("session node budget", func(t *testing.T) {
		ses := NewSession(&Deadline{Inner: &BB{}, Nodes: 1 << 40})
		defer ses.Close()
		if ss := drive(t, ses, newTracked(22, 12, 1.25)); ss.DeltaSolves != 0 {
			t.Fatalf("node-budget session attempted delta: %+v", ss)
		}
	})
	t.Run("bb node limit", func(t *testing.T) {
		ses := NewSession(&BB{NodeLimit: 1 << 40})
		defer ses.Close()
		if ss := drive(t, ses, newTracked(23, 12, 1.25)); ss.DeltaSolves != 0 {
			t.Fatalf("NodeLimit session attempted delta: %+v", ss)
		}
	})
	t.Run("untracked instance", func(t *testing.T) {
		ses := NewSession(&BB{})
		defer ses.Close()
		ti := newTracked(24, 12, 1.25)
		ti.in.Gens, ti.in.Gen, ti.in.GenID = nil, 0, 0
		v0, _ := ses.Solve(ti.in, Hint{})
		for mo := range ti.in.Power[1] {
			ti.in.Power[1][mo] *= 1.01
		}
		want := coldSolve(&BB{}, ti.in)
		got, _ := ses.Solve(ti.in, Hint{Vector: v0.Clone()})
		if !got.Equal(want) {
			t.Fatalf("untracked solve %v != cold %v", got, want)
		}
		if ss := ses.Stats(); ss.DeltaSolves != 0 {
			t.Fatalf("untracked instance attempted delta: %+v", ss)
		}
	})
	t.Run("budget moved", func(t *testing.T) {
		ses := NewSession(&BB{})
		defer ses.Close()
		ti := newTracked(25, 12, 1.25)
		v0, _ := ses.Solve(ti.in, Hint{})
		ti.touch(rng, 2)
		ti.in.BudgetW *= 0.8
		want := coldSolve(&BB{}, ti.in)
		got, _ := ses.Solve(ti.in, Hint{Vector: v0.Clone()})
		if !got.Equal(want) {
			t.Fatalf("budget-move solve %v != cold %v", got, want)
		}
		if ss := ses.Stats(); ss.DeltaCertified != 0 {
			t.Fatalf("delta certified across a budget move: %+v", ss)
		}
	})
	t.Run("invalidate", func(t *testing.T) {
		ses := NewSession(&BB{})
		defer ses.Close()
		ti := newTracked(26, 12, 1.25)
		v0, _ := ses.Solve(ti.in, Hint{})
		if !ses.ResultStable() {
			t.Fatal("completed solve should be stable")
		}
		ses.Invalidate()
		if ses.ResultStable() {
			t.Fatal("Invalidate left the session stable")
		}
		ti.touch(rng, 4)
		want := coldSolve(&BB{}, ti.in)
		got, _ := ses.Solve(ti.in, Hint{Vector: v0.Clone()})
		if !got.Equal(want) {
			t.Fatalf("post-invalidate solve %v != cold %v", got, want)
		}
		if ss := ses.Stats(); ss.DeltaSolves != 0 || ss.MemoHits != 0 {
			t.Fatalf("Invalidate did not drop the memo/delta state: %+v", ss)
		}
	})
}

// TestSessionMemoDeadlineRace is the satellite regression for the own-abort
// accounting fix: when a wall deadline fires between memoGet and solve
// completion — including inside Hier's concurrent per-cluster goroutines,
// which this test races under -race — the partial incumbent must never be
// memoized or reported exact. Whenever a solve does complete (or hit the
// memo), its vector must equal the cold optimum.
func TestSessionMemoDeadlineRace(t *testing.T) {
	for _, c := range []struct {
		name string
		mk   func() Solver
		cold Solver
		n    int
	}{
		{"bb", func() Solver { return &Deadline{Inner: &BB{}, Wall: 30 * time.Microsecond} }, &BB{}, 48},
		{"hier", func() Solver { return &Deadline{Inner: &Hier{ClusterSize: 4}, Wall: 30 * time.Microsecond} }, &Hier{ClusterSize: 4}, 48},
	} {
		t.Run(c.name, func(t *testing.T) {
			ins := []Instance{
				randInstance(61, c.n, plan3(), 0.6),
				randInstance(62, c.n, plan3(), 0.8),
			}
			wants := make([]modes.Vector, len(ins))
			for i := range ins {
				wants[i] = coldSolve(c.cold, ins[i]).Clone()
			}
			ses := NewSession(c.mk())
			defer ses.Close()
			for iter := 0; iter < 60; iter++ {
				i := iter % len(ins)
				prevHits := ses.Stats().MemoHits
				v, st := ses.Solve(ins[i], Hint{})
				fromMemo := ses.Stats().MemoHits > prevHits
				if st.Aborted {
					if fromMemo {
						t.Fatalf("iter %d: memo returned an aborted result", iter)
					}
					if st.Exact {
						t.Fatalf("iter %d: aborted solve claimed exactness", iter)
					}
					continue
				}
				// Completed (or memoized) solves must be the cold optimum; a
				// poisoned memo entry — the pre-fix bug, where a checkpoint
				// trip inside greedy/heap seeding went unreported and the
				// partial vector was cached — fails here on the next hit.
				if !v.Equal(wants[i]) {
					t.Fatalf("iter %d (memo=%v): completed solve %v != cold %v", iter, fromMemo, v, wants[i])
				}
			}
		})
	}

	// Node budgets abort deterministically: the same bounded solve twice must
	// return identical vectors, and neither may populate the memo.
	t.Run("node budget determinism", func(t *testing.T) {
		in := randInstance(63, 32, plan3(), 0.7)
		ses := NewSession(&Deadline{Inner: &BB{}, Nodes: 64})
		defer ses.Close()
		v1, st1 := ses.Solve(in, Hint{})
		first := v1.Clone()
		v2, st2 := ses.Solve(in, Hint{})
		if !st1.Aborted || !st2.Aborted {
			t.Fatalf("64-node budget did not abort a 32-core solve (%v, %v)", st1.Aborted, st2.Aborted)
		}
		if !v2.Equal(first) {
			t.Fatalf("node-budget aborts not deterministic: %v != %v", v2, first)
		}
		if ss := ses.Stats(); ss.MemoHits != 0 {
			t.Fatalf("aborted solves hit the memo: %+v", ss)
		}
	})
}
