package solver

import (
	"math"
	"math/rand"
	"testing"

	"gpm/internal/modes"
)

func plan3() modes.Plan { return modes.Default(1.300, 0.010) }

// randInstance builds a deterministic pseudo-random instance: per-core Turbo
// (power, instr) draws scaled through the plan's laws with multiplicative
// noise, so matrices are realistic but not perfectly monotone — solvers must
// not assume monotonicity.
func randInstance(seed int64, n int, plan modes.Plan, budgetFrac float64) Instance {
	rng := rand.New(rand.NewSource(seed))
	m := plan.NumModes()
	in := Instance{Plan: plan, Power: make([][]float64, n), Instr: make([][]float64, n)}
	for c := 0; c < n; c++ {
		p0 := 10 + 20*rng.Float64()
		i0 := 1e4 + 2e5*rng.Float64()
		in.Power[c] = make([]float64, m)
		in.Instr[c] = make([]float64, m)
		for mo := 0; mo < m; mo++ {
			in.Power[c][mo] = p0 * plan.PowerScale(modes.Mode(mo)) * (0.97 + 0.06*rng.Float64())
			in.Instr[c][mo] = i0 * plan.FreqScale(modes.Mode(mo)) * (0.97 + 0.06*rng.Float64())
		}
	}
	var turbo float64
	for c := 0; c < n; c++ {
		turbo += in.Power[c][0]
	}
	in.BudgetW = budgetFrac * turbo
	return in
}

// replicatedInstance repeats one core's matrices n times — the worst case
// for tie-breaking, since every permutation of an assignment scores equally.
func replicatedInstance(n int, plan modes.Plan, budgetFrac float64) Instance {
	base := randInstance(42, 1, plan, 1)
	in := Instance{Plan: plan, Power: make([][]float64, n), Instr: make([][]float64, n)}
	var turbo float64
	for c := 0; c < n; c++ {
		in.Power[c] = base.Power[0]
		in.Instr[c] = base.Instr[0]
		turbo += base.Power[0][0]
	}
	in.BudgetW = budgetFrac * turbo
	return in
}

// referenceSolve is an independent sequential re-implementation of the
// exhaustive kernel (lexicographic odometer + strict improvement), kept
// deliberately simple to cross-check the sharded solver.
func referenceSolve(in Instance) modes.Vector {
	n, m := in.NumCores(), in.NumModes()
	best := in.deepestVector()
	bestT, bestP := -1.0, 0.0
	v := make(modes.Vector, n)
	for {
		p := in.VectorPower(v)
		if p <= in.BudgetW {
			t := in.VectorInstr(v)
			if t > bestT || (t == bestT && p < bestP) {
				bestT, bestP = t, p
				copy(best, v)
			}
		}
		c := n - 1
		for c >= 0 {
			v[c]++
			if int(v[c]) < m {
				break
			}
			v[c] = 0
			c--
		}
		if c < 0 {
			return best
		}
	}
}

func TestExhaustiveShardingMatchesSequentialReference(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		for _, frac := range []float64{0.55, 0.8, 1.0} {
			in := randInstance(int64(n)*100+int64(frac*100), n, plan3(), frac)
			want := referenceSolve(in)
			for _, workers := range []int{1, 3, 8} {
				ex := &Exhaustive{Workers: workers}
				got, st := ex.Solve(in)
				if !got.Equal(want) {
					t.Fatalf("n=%d frac=%.2f workers=%d: sharded %v != reference %v", n, frac, workers, got, want)
				}
				if !st.Exact {
					t.Fatalf("exhaustive not exact")
				}
				wantNodes := int64(math.Pow(float64(in.NumModes()), float64(n)))
				if st.Nodes != wantNodes {
					t.Fatalf("n=%d workers=%d: visited %d vectors, want %d", n, workers, st.Nodes, wantNodes)
				}
			}
		}
	}
}

func TestExhaustiveIntractableFallsBackToGreedy(t *testing.T) {
	in := randInstance(7, 64, plan3(), 0.8)
	ex := &Exhaustive{}
	v, st := ex.Solve(in)
	if st.Exact {
		t.Fatal("64-core exhaustive should not claim exactness")
	}
	gv, _, _ := greedySolve(in, nil)
	if !v.Equal(gv) {
		t.Fatal("intractable fallback should be the greedy vector")
	}
}

func TestBBLexTiesBitIdenticalToExhaustive(t *testing.T) {
	plans := []modes.Plan{plan3(), modes.Linear(5, 0.70, 1.300, 0.010)}
	for pi, plan := range plans {
		for seed := int64(0); seed < 12; seed++ {
			for _, frac := range []float64{0.5, 0.65, 0.8, 0.95} {
				in := randInstance(seed*7+int64(pi), 7, plan, frac)
				want := referenceSolve(in)
				bb := &BB{LexTies: true}
				got, st := bb.Solve(in)
				if !got.Equal(want) {
					t.Fatalf("plan=%d seed=%d frac=%.2f: bb %v != exhaustive %v", pi, seed, frac, got, want)
				}
				if !st.Exact {
					t.Fatal("bb not exact")
				}
			}
		}
	}
}

func TestBBSymmetricTiesStayLexicographic(t *testing.T) {
	// Replicated cores make every permutation tie; LexTies must still pick
	// exactly the exhaustive kernel's representative.
	for _, frac := range []float64{0.6, 0.75, 0.9} {
		in := replicatedInstance(6, plan3(), frac)
		want := referenceSolve(in)
		got, _ := (&BB{LexTies: true}).Solve(in)
		if !got.Equal(want) {
			t.Fatalf("frac=%.2f: bb %v != exhaustive %v on symmetric instance", frac, got, want)
		}
		// Default mode must still match the optimal value.
		def, _ := (&BB{}).Solve(in)
		if it, wt := in.VectorInstr(def), in.VectorInstr(want); math.Abs(it-wt) > 1e-9*wt {
			t.Fatalf("frac=%.2f: default bb instr %g != optimum %g", frac, it, wt)
		}
	}
}

func TestBBNodeLimitReturnsFeasibleIncumbent(t *testing.T) {
	in := randInstance(3, 24, plan3(), 0.8)
	bb := &BB{NodeLimit: 10}
	v, st := bb.Solve(in)
	if st.Exact {
		t.Fatal("node-limited bb must not claim exactness")
	}
	if p := in.VectorPower(v); p > in.BudgetW {
		t.Fatalf("node-limited bb returned infeasible vector: %g > %g", p, in.BudgetW)
	}
	gv, _, _ := greedySolve(in, nil)
	if in.VectorInstr(v) < in.VectorInstr(gv) {
		t.Fatal("node-limited bb fell below its greedy seed")
	}
}

func TestDPQualityAndQuantumControl(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := randInstance(seed, 8, plan3(), 0.75)
		opt := referenceSolve(in)
		optT := in.VectorInstr(opt)
		dp := &DP{}
		v, st := dp.Solve(in)
		if p := in.VectorPower(v); p > in.BudgetW {
			t.Fatalf("seed %d: dp infeasible", seed)
		}
		if got := in.VectorInstr(v); got < 0.99*optT {
			t.Fatalf("seed %d: dp quality %.4f below 99%%", seed, got/optT)
		}
		// A coarser explicit quantum still yields a feasible vector and a
		// larger (but still valid) reported gap.
		coarse := &DP{QuantumW: in.BudgetW / 64}
		cv, cst := coarse.Solve(in)
		if p := in.VectorPower(cv); p > in.BudgetW {
			t.Fatalf("seed %d: coarse dp infeasible", seed)
		}
		if cst.GapBound < st.GapBound-1e-12 {
			t.Fatalf("seed %d: coarse quantum reported smaller gap (%g < %g)", seed, cst.GapBound, st.GapBound)
		}
	}
}

func TestHierFeasibleDeterministicAndNearOptimal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := randInstance(seed+50, 12, plan3(), 0.8)
		opt := referenceSolve(in) // 3^12 ≈ 531k, fine
		optT := in.VectorInstr(opt)
		h := &Hier{ClusterSize: 4}
		v1, _ := h.Solve(in)
		v2, _ := h.Solve(in)
		if !v1.Equal(v2) {
			t.Fatalf("seed %d: stateless hier not deterministic", seed)
		}
		if p := in.VectorPower(v1); p > in.BudgetW+in.budgetEps() {
			t.Fatalf("seed %d: hier infeasible: %g > %g", seed, p, in.BudgetW)
		}
		if got := in.VectorInstr(v1); got < 0.95*optT {
			t.Fatalf("seed %d: hier quality %.4f below 95%%", seed, got/optT)
		}
	}
}

func TestHierStatefulRebalancing(t *testing.T) {
	// Alpha share smoothing lives in the session (a bare Hier is stateless).
	h := &Hier{ClusterSize: 4, Alpha: 0.5}
	ses := NewSession(h)
	defer ses.Close()
	in := randInstance(9, 16, plan3(), 0.8)
	var hint Hint
	for i := 0; i < 3; i++ {
		v, _ := ses.Solve(in, hint)
		if p := in.VectorPower(v); p > in.BudgetW+in.budgetEps() {
			t.Fatalf("call %d: stateful hier infeasible", i)
		}
		hint = Hint{Vector: v.Clone(), Instr: in.VectorInstr(v)}
	}
	// Steady state: repeated identical instances converge to a fixed point.
	v1, _ := ses.Solve(in, hint)
	v1 = v1.Clone()
	v2, _ := ses.Solve(in, hint)
	if !v1.Equal(v2) {
		t.Fatal("stateful hier did not converge on a constant instance")
	}
	// And a bare Hier with Alpha set stays deterministic call to call.
	b1, _ := h.Solve(in)
	b2, _ := h.Solve(in)
	if !b1.Equal(b2) {
		t.Fatal("bare hier with Alpha not stateless")
	}
}

func TestInfeasibleBudgetReturnsAllDeepest(t *testing.T) {
	in := randInstance(1, 5, plan3(), 0.8)
	in.BudgetW = 0.1 // below even the all-deepest floor
	want := in.deepestVector()
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := s.Solve(in)
		if !v.Equal(want) {
			t.Fatalf("%s: infeasible instance returned %v, want all-deepest", name, v)
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, Options{QuantumW: 0.5, ClusterSize: 4, Workers: 2, NodeLimit: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := New("nope", Options{}); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

// TestBB64CoresUnder10ms is the acceptance gate for the exact solver at
// scale: a 64-core, 3-mode instance must be decided in well under 10 ms.
// testing.Benchmark gives a measured ns/op rather than a one-shot timing.
func TestBB64CoresUnder10ms(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short")
	}
	in := randInstance(64, 64, plan3(), 0.8)
	bb := &BB{}
	v, st := bb.Solve(in)
	if !st.Exact {
		t.Fatal("bb inexact at 64 cores")
	}
	if p := in.VectorPower(v); p > in.BudgetW {
		t.Fatal("bb infeasible at 64 cores")
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bb.Solve(in)
		}
	})
	if perOp := res.NsPerOp(); perOp > 10_000_000 {
		t.Fatalf("64-core bb decision took %d ns/op, want < 10ms", perOp)
	}
}
