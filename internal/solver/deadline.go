package solver

import (
	"sync"
	"sync/atomic"
	"time"

	"gpm/internal/modes"
)

// clockStride is the number of visited nodes between wall-clock reads in a
// timed Checkpoint. Reading the clock per node would dominate the hot loops;
// a stride of 256 bounds the overshoot past the deadline to the time of 256
// node evaluations (sub-microsecond for every solver) while keeping the
// steady-state cost to one atomic load per node batch.
const clockStride = 256

// cpBatch is how many nodes the enumerative hot loops accumulate locally
// before charging them to the shared Checkpoint, so the per-node cost of
// cancellation is a local integer increment rather than an atomic add.
const cpBatch = 64

// Checkpoint is the cooperative cancellation token threaded through the
// solvers' hot loops. A solve observing an exhausted checkpoint stops where
// it is and returns its best incumbent so far (always a feasible vector, or
// the all-deepest floor when nothing feasible was seen). Checkpoints are
// safe for concurrent use: the prefix-sharded exhaustive solver and Hier's
// per-cluster goroutines all charge nodes to the same token.
//
// A nil *Checkpoint is valid everywhere and means "never abort", so the
// unbounded paths stay free of conditionals beyond a nil check.
type Checkpoint struct {
	nodeLimit int64
	deadline  time.Time
	timed     bool

	nodes     atomic.Int64
	nextClock atomic.Int64
	aborted   atomic.Bool
}

// NewCheckpoint builds a checkpoint with a wall-clock budget (0 = untimed)
// and a node budget (0 = unlimited). The wall deadline starts now.
func NewCheckpoint(wall time.Duration, nodeLimit int64) *Checkpoint {
	cp := &Checkpoint{}
	cp.reset(wall, nodeLimit)
	return cp
}

// reset re-arms a (possibly pooled) checkpoint for a fresh solve.
func (cp *Checkpoint) reset(wall time.Duration, nodeLimit int64) {
	cp.nodeLimit = nodeLimit
	cp.timed = wall > 0
	if cp.timed {
		cp.deadline = time.Now().Add(wall)
	}
	cp.nodes.Store(0)
	cp.nextClock.Store(clockStride)
	cp.aborted.Store(false)
}

// Visit charges n evaluated nodes and reports whether the solve must stop.
// Safe on a nil receiver (never aborts).
func (cp *Checkpoint) Visit(n int64) bool {
	if cp == nil {
		return false
	}
	if cp.aborted.Load() {
		return true
	}
	total := cp.nodes.Add(n)
	if cp.nodeLimit > 0 && total > cp.nodeLimit {
		cp.aborted.Store(true)
		return true
	}
	if cp.timed && total >= cp.nextClock.Load() {
		cp.nextClock.Store(total + clockStride)
		if !time.Now().Before(cp.deadline) {
			cp.aborted.Store(true)
			return true
		}
	}
	return false
}

// Abort cancels the solve externally (e.g. a supervisor abandoning a
// decision). Safe on a nil receiver (no-op).
func (cp *Checkpoint) Abort() {
	if cp != nil {
		cp.aborted.Store(true)
	}
}

// Aborted reports whether the checkpoint has fired. Safe on nil (false).
func (cp *Checkpoint) Aborted() bool { return cp != nil && cp.aborted.Load() }

// Nodes returns the nodes charged so far. Safe on nil (0).
func (cp *Checkpoint) Nodes() int64 {
	if cp == nil {
		return 0
	}
	return cp.nodes.Load()
}

// Bounded is the optional solver facet for cooperative cancellation. All
// solvers in this package implement it; SolveBounded with a nil checkpoint
// is identical to Solve.
type Bounded interface {
	Solver
	SolveBounded(in Instance, cp *Checkpoint) (modes.Vector, Stats)
}

// Compile-time proof that every registry solver is Bounded.
var (
	_ Bounded = (*Exhaustive)(nil)
	_ Bounded = (*DP)(nil)
	_ Bounded = (*BB)(nil)
	_ Bounded = (*Hier)(nil)
	_ Bounded = Greedy{}
)

// SolveBounded runs s under cp when s supports cooperative cancellation and
// falls back to a plain (uncancellable) Solve otherwise.
func SolveBounded(s Solver, in Instance, cp *Checkpoint) (modes.Vector, Stats) {
	if b, ok := s.(Bounded); ok {
		return b.SolveBounded(in, cp)
	}
	return s.Solve(in)
}

// Deadline wraps a solver with per-Solve wall-clock and node budgets, so a
// decision can be abandoned mid-solve: when either budget is exhausted the
// inner solver stops at its next checkpoint and returns its incumbent with
// Stats.Aborted set (and Exact cleared). A zero Wall and zero Nodes make the
// wrapper transparent — bit-identical to the inner solver.
//
// Checkpoints are pooled, so the wrapper adds no steady-state allocations to
// the decision path. The wrapper is safe for concurrent Solve calls iff the
// inner solver is.
type Deadline struct {
	// Inner is the wrapped solver.
	Inner Solver
	// Wall is the wall-clock budget per Solve (0 = untimed).
	Wall time.Duration
	// Nodes is the node budget per Solve (0 = unlimited). Node budgets are
	// deterministic: the same instance aborts at the same point every run.
	Nodes int64

	pool sync.Pool
}

// WithDeadline wraps s with wall-clock and node budgets.
func WithDeadline(s Solver, wall time.Duration, nodes int64) *Deadline {
	return &Deadline{Inner: s, Wall: wall, Nodes: nodes}
}

// Name implements Solver. The wrapper is transparent: it reports the inner
// solver's name so policy labels and Stats.Solver stay stable.
func (d *Deadline) Name() string { return d.Inner.Name() }

// Solve implements Solver.
func (d *Deadline) Solve(in Instance) (modes.Vector, Stats) {
	if d.Wall <= 0 && d.Nodes <= 0 {
		return d.Inner.Solve(in)
	}
	cp, _ := d.pool.Get().(*Checkpoint)
	if cp == nil {
		cp = &Checkpoint{}
	}
	cp.reset(d.Wall, d.Nodes)
	v, st := SolveBounded(d.Inner, in, cp)
	if cp.Aborted() {
		st.Aborted = true
		st.Exact = false
	}
	d.pool.Put(cp)
	return v, st
}
