package solver

import (
	"sync"
	"time"

	"gpm/internal/modes"
)

// Hier is the two-level manager that makes thousand-core chips tractable:
// the chip budget is partitioned across fixed clusters of ClusterSize cores,
// each cluster is solved independently (and concurrently) by the Inner
// solver within its share, and the aggregate slack the clusters leave unused
// — mode power is quantized, so shares are never spent exactly — is
// re-offered to each cluster in turn for RebalancePasses rounds.
//
// Budget split rule: each cluster's share is its demand under the chip-wide
// greedy allocation (the power the marginal-utility pass would spend inside
// the cluster), plus an even split of any remaining headroom. When Alpha is
// non-zero the shares are additionally smoothed across Solve calls —
// share = Alpha·previous + (1−Alpha)·demand — so a cluster whose workload
// ramps keeps part of its grant between explore intervals instead of being
// re-zeroed by one quiet sample (inter-interval rebalancing). The previous
// grants live in the Session driving the solver, so bare Solve calls (no
// session) are stateless: Alpha then behaves as 0. The decision cost is
// O(cores²·modes) for the demand pass plus numClusters independent
// ClusterSize-core solves.
type Hier struct {
	// ClusterSize is the number of cores per cluster (default 8).
	ClusterSize int
	// Inner solves each cluster within its share (default exact BB).
	Inner Solver
	// RebalancePasses is the number of slack-redistribution rounds after
	// the initial per-share solve (default 2).
	RebalancePasses int
	// Alpha in [0,1) smooths shares across calls when driven through a
	// Session; without one it is ignored (stateless solve).
	Alpha float64
}

// Name implements Solver.
func (*Hier) Name() string { return "hier" }

func (h *Hier) clusterSize() int {
	if h.ClusterSize <= 0 {
		return 8
	}
	return h.ClusterSize
}

func (h *Hier) inner() Solver {
	if h.Inner == nil {
		return &BB{}
	}
	return h.Inner
}

// hierState is a Session's cross-interval Hier memory: the Alpha-smoothed
// share grants, the previously returned vector (sliced into per-cluster warm
// hints), one child Session per cluster (scratch + warm floors for the inner
// solver), the heap-greedy scratch for the demand pass, and the output
// buffers. It replaces the mutex-guarded shares that used to live inside
// Hier itself, so the solver value is now immutable during Solve.
type hierState struct {
	shares []float64 // previous grants, when Alpha > 0
	prev   modes.Vector
	inner  []*Session
	gs     greedyScratch
	out    modes.Vector
	cur    []float64
	used   []float64
	nodes  []int64
	// sharesStable reports that the last solve left the Alpha-smoothed share
	// state bit-identical to its value at entry (trivially true when Alpha is
	// 0 or a single cluster covers the chip). Together with a completed solve
	// it certifies that re-solving a bit-identical instance would reproduce
	// the same vector — the Session's ResultStable signal.
	sharesStable bool
}

// ensureInner sizes the per-cluster child sessions, closing any extras when
// the cluster count shrinks.
func (hs *hierState) ensureInner(h *Hier, nc int) {
	for len(hs.inner) > nc {
		hs.inner[len(hs.inner)-1].Close()
		hs.inner = hs.inner[:len(hs.inner)-1]
	}
	for len(hs.inner) < nc {
		hs.inner = append(hs.inner, NewSession(h.inner()))
	}
}

// Solve implements Solver.
func (h *Hier) Solve(in Instance) (modes.Vector, Stats) {
	return h.SolveBounded(in, nil)
}

// SolveBounded implements Bounded. The checkpoint is shared by the demand
// pass, every concurrent cluster solve (when Inner is Bounded), and the
// rebalance rounds; an exhausted checkpoint returns the best chip-feasible
// vector assembled so far, falling back to the greedy demand vector.
func (h *Hier) SolveBounded(in Instance, cp *Checkpoint) (modes.Vector, Stats) {
	return h.solveWith(in, cp, nil, Hint{})
}

// solveWith is SolveBounded plus the session path: hs carries cross-interval
// state and reusable buffers, hint the previously actuated chip vector. With
// hs == nil the solve is stateless and allocates fresh buffers.
//
// Known divergence on an exotic config: when Inner is a *Deadline wrapper,
// the stateless path calls its Solve (arming the wrapper's own budgets),
// while child sessions unwrap it and thread the parent checkpoint instead —
// wrap Hier itself in WithDeadline to bound the whole decision uniformly.
func (h *Hier) solveWith(in Instance, cp *Checkpoint, hs *hierState, hint Hint) (modes.Vector, Stats) {
	start := time.Now()
	st := Stats{Solver: h.Name()}
	if hs != nil {
		// Paths that never touch hs.shares (Alpha == 0, single cluster, early
		// aborts) leave the cross-interval state trivially stable; the
		// Alpha > 0 share update below overwrites this with the real verdict.
		hs.sharesStable = true
	}
	n := in.NumCores()
	if n == 0 {
		st.Exact = true
		st.Elapsed = time.Since(start)
		return modes.Vector{}, st
	}
	k := h.clusterSize()
	inner := h.inner()
	if k >= n {
		// One cluster: delegate whole. The child session gives the inner
		// solver scratch reuse and the chip-level warm hint.
		var v modes.Vector
		var ist Stats
		if hs != nil {
			hs.ensureInner(h, 1)
			v, ist = hs.inner[0].solveBounded(in, hint, cp)
		} else {
			v, ist = SolveBounded(inner, in, cp)
		}
		ist.Solver = st.Solver
		ist.Elapsed = time.Since(start)
		return v, ist
	}

	nc := (n + k - 1) / k
	lo := func(i int) int { return i * k }
	hi := func(i int) int {
		h := (i + 1) * k
		if h > n {
			h = n
		}
		return h
	}
	sub := func(i int, shareW float64) Instance {
		s := Instance{
			Plan:    in.Plan,
			BudgetW: shareW,
			Power:   in.Power[lo(i):hi(i)],
			Instr:   in.Instr[lo(i):hi(i)],
		}
		if m := in.NumModes(); len(in.FlatPower) == n*m {
			s.FlatPower = in.FlatPower[lo(i)*m : hi(i)*m]
			s.FlatInstr = in.FlatInstr[lo(i)*m : hi(i)*m]
		}
		return s
	}

	// Global level: greedy demand shares plus an even headroom split.
	var gv modes.Vector
	var gnodes int64
	var gaborted bool
	if hs != nil && finiteInstance(in) {
		gv, gnodes, gaborted = heapGreedy(in, cp, &hs.gs)
	} else {
		gv, gnodes, gaborted = greedySolve(in, cp)
	}
	st.Nodes += gnodes
	if gaborted {
		// No time for the two-level decomposition: the (possibly partial)
		// greedy vector is feasible whenever anything is. Gate on the demand
		// pass's own checkpoint trip, not the shared latched flag, which a
		// concurrent sibling may have set without this pass being short.
		st.Aborted = true
		st.Elapsed = time.Since(start)
		return gv, st
	}
	var shares []float64
	if hs != nil {
		hs.cur = resizeFloats(hs.cur, nc) // zeroed: shares accumulate with +=
		shares = hs.cur
	} else {
		shares = make([]float64, nc)
	}
	var demand float64
	for i := 0; i < nc; i++ {
		for c := lo(i); c < hi(i); c++ {
			shares[i] += in.Power[c][gv[c]]
		}
		demand += shares[i]
	}
	if headroom := in.BudgetW - demand; headroom > 0 {
		for i := range shares {
			shares[i] += headroom / float64(nc)
		}
	}

	// Inter-interval smoothing: blend with the previous grants, then scale
	// back under the budget if the blend overshoots it.
	if h.Alpha > 0 && hs != nil && len(hs.shares) == len(shares) {
		var sum float64
		for i := range shares {
			shares[i] = h.Alpha*hs.shares[i] + (1-h.Alpha)*shares[i]
			sum += shares[i]
		}
		if sum > in.BudgetW && sum > 0 {
			scale := in.BudgetW / sum
			for i := range shares {
				shares[i] *= scale
			}
		}
	}

	// Local level: independent per-cluster solves, concurrently. With a
	// session, each cluster has its own child session (sessions are not
	// concurrency-safe, so they must not be shared across the goroutines)
	// warmed by the matching slice of the previous chip vector.
	var out modes.Vector
	var used []float64
	var nodes []int64
	if hs != nil {
		hs.out = resizeVector(hs.out, n)
		hs.used = resizeFloats(hs.used, nc)
		hs.nodes = resizeInt64s(hs.nodes, nc)
		out, used, nodes = hs.out, hs.used, hs.nodes
	} else {
		out = make(modes.Vector, n)
		used = make([]float64, nc)
		nodes = make([]int64, nc)
	}
	solveCluster := func(i int, s Instance) (modes.Vector, Stats) {
		if hs != nil {
			ch := Hint{}
			if len(hs.prev) == n {
				ch = Hint{Vector: hs.prev[lo(i):hi(i)]}
			}
			return hs.inner[i].solveBounded(s, ch, cp)
		}
		return SolveBounded(inner, s, cp)
	}
	if hs != nil {
		hs.ensureInner(h, nc)
	}
	var wg sync.WaitGroup
	for i := 0; i < nc; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sub(i, shares[i])
			v, ist := solveCluster(i, s)
			copy(out[lo(i):hi(i)], v)
			used[i] = s.VectorPower(v)
			nodes[i] = ist.Nodes
		}(i)
	}
	wg.Wait()
	var spent float64
	for i := 0; i < nc; i++ {
		st.Nodes += nodes[i]
		spent += used[i]
	}

	// Slack redistribution: clusters never spend their exact share, so the
	// aggregate remainder is re-offered to each cluster in turn.
	passes := h.RebalancePasses
	if passes == 0 {
		passes = 2
	}
	eps := in.budgetEps()
	for pass := 0; pass < passes && !cp.Aborted(); pass++ {
		improved := false
		for i := 0; i < nc; i++ {
			if cp.Aborted() {
				break
			}
			slack := in.BudgetW - spent
			if slack <= eps {
				break
			}
			s := sub(i, used[i]+slack)
			v, ist := solveCluster(i, s)
			st.Nodes += ist.Nodes
			p := s.VectorPower(v)
			if p != used[i] {
				improved = true
			}
			copy(out[lo(i):hi(i)], v)
			spent += p - used[i]
			used[i] = p
		}
		if !improved {
			break
		}
	}

	if h.Alpha > 0 && hs != nil {
		hs.sharesStable = floatsBitEqual(hs.shares, used)
		hs.shares = append(hs.shares[:0], used...)
	}

	// The per-cluster canonical sums can differ from the chip-level sum by
	// float dust; if that (or an infeasible cluster floor) pushed the chip
	// over budget, fall back to the greedy vector, which is feasible
	// whenever anything is.
	if in.VectorPower(out) > in.BudgetW {
		out = gv
	}
	if hs != nil {
		hs.prev = append(hs.prev[:0], out...)
	}
	st.Aborted = cp.Aborted()
	st.Elapsed = time.Since(start)
	return out, st
}
