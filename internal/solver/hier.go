package solver

import (
	"sync"
	"time"

	"gpm/internal/modes"
)

// Hier is the two-level manager that makes thousand-core chips tractable:
// the chip budget is partitioned across fixed clusters of ClusterSize cores,
// each cluster is solved independently (and concurrently) by the Inner
// solver within its share, and the aggregate slack the clusters leave unused
// — mode power is quantized, so shares are never spent exactly — is
// re-offered to each cluster in turn for RebalancePasses rounds.
//
// Budget split rule: each cluster's share is its demand under the chip-wide
// greedy allocation (the power the marginal-utility pass would spend inside
// the cluster), plus an even split of any remaining headroom. When Alpha is
// non-zero the shares are additionally smoothed across Solve calls —
// share = Alpha·previous + (1−Alpha)·demand — so a cluster whose workload
// ramps keeps part of its grant between explore intervals instead of being
// re-zeroed by one quiet sample (inter-interval rebalancing). The decision
// cost is O(cores²·modes) for the demand pass plus numClusters independent
// ClusterSize-core solves.
type Hier struct {
	// ClusterSize is the number of cores per cluster (default 8).
	ClusterSize int
	// Inner solves each cluster within its share (default exact BB).
	Inner Solver
	// RebalancePasses is the number of slack-redistribution rounds after
	// the initial per-share solve (default 2).
	RebalancePasses int
	// Alpha in [0,1) smooths shares across calls; 0 (default) is stateless.
	Alpha float64

	mu     sync.Mutex
	shares []float64 // previous grants, when Alpha > 0
}

// Name implements Solver.
func (*Hier) Name() string { return "hier" }

func (h *Hier) clusterSize() int {
	if h.ClusterSize <= 0 {
		return 8
	}
	return h.ClusterSize
}

func (h *Hier) inner() Solver {
	if h.Inner == nil {
		return &BB{}
	}
	return h.Inner
}

// Solve implements Solver.
func (h *Hier) Solve(in Instance) (modes.Vector, Stats) {
	return h.SolveBounded(in, nil)
}

// SolveBounded implements Bounded. The checkpoint is shared by the demand
// pass, every concurrent cluster solve (when Inner is Bounded), and the
// rebalance rounds; an exhausted checkpoint returns the best chip-feasible
// vector assembled so far, falling back to the greedy demand vector.
func (h *Hier) SolveBounded(in Instance, cp *Checkpoint) (modes.Vector, Stats) {
	start := time.Now()
	st := Stats{Solver: h.Name()}
	n := in.NumCores()
	if n == 0 {
		st.Exact = true
		st.Elapsed = time.Since(start)
		return modes.Vector{}, st
	}
	k := h.clusterSize()
	inner := h.inner()
	if k >= n {
		v, ist := SolveBounded(inner, in, cp)
		ist.Solver = st.Solver
		ist.Elapsed = time.Since(start)
		return v, ist
	}

	type cluster struct{ lo, hi int }
	var clusters []cluster
	for lo := 0; lo < n; lo += k {
		hi := lo + k
		if hi > n {
			hi = n
		}
		clusters = append(clusters, cluster{lo, hi})
	}

	sub := func(i int, shareW float64) Instance {
		cl := clusters[i]
		return Instance{
			Plan:    in.Plan,
			BudgetW: shareW,
			Power:   in.Power[cl.lo:cl.hi],
			Instr:   in.Instr[cl.lo:cl.hi],
		}
	}

	// Global level: greedy demand shares plus an even headroom split.
	gv, gnodes := greedySolve(in, cp)
	st.Nodes += gnodes
	if cp.Aborted() {
		// No time for the two-level decomposition: the (possibly partial)
		// greedy vector is feasible whenever anything is.
		st.Aborted = true
		st.Elapsed = time.Since(start)
		return gv, st
	}
	shares := make([]float64, len(clusters))
	var demand float64
	for i, cl := range clusters {
		for c := cl.lo; c < cl.hi; c++ {
			shares[i] += in.Power[c][gv[c]]
		}
		demand += shares[i]
	}
	if headroom := in.BudgetW - demand; headroom > 0 {
		for i := range shares {
			shares[i] += headroom / float64(len(shares))
		}
	}

	// Inter-interval smoothing: blend with the previous grants, then scale
	// back under the budget if the blend overshoots it.
	if h.Alpha > 0 {
		h.mu.Lock()
		if len(h.shares) == len(shares) {
			var sum float64
			for i := range shares {
				shares[i] = h.Alpha*h.shares[i] + (1-h.Alpha)*shares[i]
				sum += shares[i]
			}
			if sum > in.BudgetW && sum > 0 {
				scale := in.BudgetW / sum
				for i := range shares {
					shares[i] *= scale
				}
			}
		}
		h.mu.Unlock()
	}

	// Local level: independent per-cluster solves, concurrently.
	out := make(modes.Vector, n)
	used := make([]float64, len(clusters))
	nodes := make([]int64, len(clusters))
	var wg sync.WaitGroup
	for i := range clusters {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sub(i, shares[i])
			v, ist := SolveBounded(inner, s, cp)
			copy(out[clusters[i].lo:clusters[i].hi], v)
			used[i] = s.VectorPower(v)
			nodes[i] = ist.Nodes
		}(i)
	}
	wg.Wait()
	var spent float64
	for i := range clusters {
		st.Nodes += nodes[i]
		spent += used[i]
	}

	// Slack redistribution: clusters never spend their exact share, so the
	// aggregate remainder is re-offered to each cluster in turn.
	passes := h.RebalancePasses
	if passes == 0 {
		passes = 2
	}
	eps := in.budgetEps()
	for pass := 0; pass < passes && !cp.Aborted(); pass++ {
		improved := false
		for i := range clusters {
			if cp.Aborted() {
				break
			}
			slack := in.BudgetW - spent
			if slack <= eps {
				break
			}
			s := sub(i, used[i]+slack)
			v, ist := SolveBounded(inner, s, cp)
			st.Nodes += ist.Nodes
			p := s.VectorPower(v)
			if p != used[i] {
				improved = true
			}
			copy(out[clusters[i].lo:clusters[i].hi], v)
			spent += p - used[i]
			used[i] = p
		}
		if !improved {
			break
		}
	}

	if h.Alpha > 0 {
		h.mu.Lock()
		h.shares = append(h.shares[:0], used...)
		h.mu.Unlock()
	}

	// The per-cluster canonical sums can differ from the chip-level sum by
	// float dust; if that (or an infeasible cluster floor) pushed the chip
	// over budget, fall back to the greedy vector, which is feasible
	// whenever anything is.
	if in.VectorPower(out) > in.BudgetW {
		out = gv
	}
	st.Aborted = cp.Aborted()
	st.Elapsed = time.Since(start)
	return out, st
}
