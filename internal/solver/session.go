package solver

import (
	"math"
	"time"

	"gpm/internal/modes"
)

// Hint carries the previous interval's decision into a warm-started solve:
// the mode vector that was actually actuated, and (optionally, for
// observability) the objective it scored when it was chosen. Sessions
// re-validate the hint against the *current* instance — the vector is only
// used when it is shape-compatible and feasible under the current matrices
// and budget — so a stale or truncated hint degrades to a cold solve, never
// to a wrong answer.
type Hint struct {
	// Vector is the previously actuated mode vector (may be nil: cold).
	Vector modes.Vector
	// Instr is the objective the vector scored when actuated, under the
	// matrices of its own interval. Informational only: the session
	// re-scores the vector on the current instance before using it.
	Instr float64
}

// SessionStats are a Session's cumulative warm-start counters.
type SessionStats struct {
	// Solves counts Solve calls.
	Solves int64
	// MemoHits counts solves answered entirely from the instance memo
	// (telemetry bit-identical to a recently solved interval).
	MemoHits int64
	// WarmFloored counts solves that applied a feasible warm hint as an
	// extra branch-and-bound pruning floor.
	WarmFloored int64
	// HintReturns counts aborted solves whose returned vector was the
	// (strictly better) warm hint rather than the solver's own incumbent.
	HintReturns int64
	// DirtyCores accumulates the size of the generation-handshake dirty set
	// over solves that reached the delta path's dirty scan.
	DirtyCores int64
	// DeltaSolves counts solves that attempted the incremental re-solve
	// (K dirty cores patched against the residual budget); DeltaCertified
	// counts the attempts whose patched vector passed the uniqueness
	// certificate and was returned as the proven optimum, DeltaFallbacks the
	// attempts that demoted the patch to a warm hint and ran the full solve.
	DeltaSolves    int64
	DeltaCertified int64
	DeltaFallbacks int64
	// Nodes and Pruned accumulate the underlying solver's search-node and
	// pruned-subtree counts across solves (memo hits contribute zero), so
	// Nodes here vs a cold baseline is the "nodes saved" measure and
	// Pruned/Nodes the incumbent-prune rate.
	Nodes  int64
	Pruned int64
}

// Session owns the cross-interval state that makes consecutive decisions
// cheap: reusable sort/scratch buffers for every solver, a small memo of
// recently solved instances, Hier's cluster shares and per-cluster inner
// sessions, and the warm-start plumbing that turns the previous decision
// into a BB pruning floor.
//
// Warm-starting is a pure accelerator: for any hint, Solve returns the
// bit-identical vector a cold Solve of the same solver would return on the
// same instance (pinned by TestWarmVsColdBitIdentical). The one exception is
// deliberate and matches the anytime contract: when a deadline/node budget
// aborts the solve mid-search, the session returns the hint vector instead
// of the solver's incumbent iff the hint is feasible on the current instance
// and strictly better — an aborted cold solve has no bit-identity to
// preserve, only a "best feasible incumbent" obligation, which the hint
// satisfies.
//
// The returned vector aliases session-owned buffers and is valid until the
// next Solve call; callers that retain it must copy (core.Manager.sanitize
// already does).
//
// A Session is single-goroutine, like the engine loop that owns it. The
// underlying Solver itself stays stateless and safe for concurrent use by
// other callers.
type Session struct {
	solver     Solver
	base       Solver // solver with any Deadline wrappers unwrapped
	wall       time.Duration
	nodeBudget int64
	cp         *Checkpoint

	// memo is a 2-entry ring of recently solved instances (two entries so
	// Hier's rebalance passes, which alternate share and share+slack budgets
	// per cluster, both hit). Entries hold session-owned copies of the
	// matrices: callers reuse their matrix backing arrays in place between
	// intervals, so stored references would always compare equal.
	memoOK   bool
	memo     [2]memoEntry
	memoNext int

	// deltaOK enables the incremental re-solve path: exact unbounded BB only
	// (no NodeLimit, no session deadline), since the uniqueness certificate
	// proves what a *completed* exact solve would return.
	deltaOK bool
	// deltaVec/deltaDirty are the delta path's reusable patch buffers.
	deltaVec   modes.Vector
	deltaDirty []int
	// lastStable reports that re-solving the last instance (bit-identical
	// matrices, budget and hint) would return the bit-identical vector and
	// leave the session's result-affecting state unchanged: a memo hit or
	// certified delta trivially, a completed solve otherwise — except a
	// share-smoothing Hier, which additionally needs its share fixpoint
	// (hierState.sharesStable).
	lastStable bool

	gs   greedyScratch
	bb   bbScratch
	dp   dpScratch
	hier *hierState

	stats  SessionStats
	closed bool
}

type memoEntry struct {
	ok           bool
	n, m         int
	budget       float64
	power, instr []float64 // row-major n×m copies
	vec          modes.Vector
	stats        Stats

	// Generation handshake snapshot (Instance.GenID != 0 at memoPut time):
	// genID/gen identify the matrix backing and its generation, gens the
	// per-core stamps. A tracked hit is then an O(1) generation compare
	// instead of the O(n·m) flat compare, and a generation mismatch yields
	// the dirty-core set in O(n).
	genID, gen uint64
	gens       []uint64

	// Incremental certificate state (deltaOK sessions): per-core Instr
	// argmax, its margin over the runner-up (+Inf for single-mode plans),
	// the row's max |Instr| (for the float-drift guard), and the count of
	// cores where vec disagrees with amax. certOK marks the state consistent
	// with vec/power/instr — an uncertified patch attempt leaves the arrays
	// half-updated and clears it.
	certOK   bool
	amax     modes.Vector
	margin   []float64
	rowMax   []float64
	mismatch int
}

// NewSession builds a stateful solving session over s. Deadline wrappers are
// unwrapped and their wall/node budgets applied per Solve (tightest layer
// wins), exactly like Deadline.Solve. The memo is enabled for stateless
// solvers only: BB, DP, Exhaustive, Greedy, and Hier with Alpha == 0 — a
// share-smoothing Hier must re-solve so its share state keeps evolving.
func NewSession(s Solver) *Session {
	ses := &Session{solver: s}
	base := s
	for {
		d, ok := base.(*Deadline)
		if !ok {
			break
		}
		if d.Wall > 0 && (ses.wall == 0 || d.Wall < ses.wall) {
			ses.wall = d.Wall
		}
		if d.Nodes > 0 && (ses.nodeBudget == 0 || d.Nodes < ses.nodeBudget) {
			ses.nodeBudget = d.Nodes
		}
		base = d.Inner
	}
	ses.base = base
	switch b := base.(type) {
	case *Hier:
		ses.hier = &hierState{}
		ses.memoOK = b.Alpha == 0
	case *BB:
		ses.memoOK = true
		ses.deltaOK = b.NodeLimit == 0 && ses.wall == 0 && ses.nodeBudget == 0
	case *DP, *Exhaustive, Greedy:
		ses.memoOK = true
	}
	return ses
}

// Stats returns the session's cumulative counters.
func (s *Session) Stats() SessionStats { return s.stats }

// Invalidate drops the session's instance memo — and with it the delta
// re-solve state — forcing the next solve down the full path. The engine
// loop calls it on decision discontinuities (budget steps, core death,
// emergency throttles, supervisor degradation): cached entries stay *sound*
// across those events (they only ever answer bit-identical instances), but
// dropping them keeps the delta path from patching across a regime change
// the caller has declared meaningless to bridge.
func (s *Session) Invalidate() {
	for i := range s.memo {
		s.memo[i].ok = false
		s.memo[i].certOK = false
	}
	s.lastStable = false
}

// ResultStable reports that immediately re-solving the last Solve's instance
// (bit-identical matrices, budget and hint) would return the bit-identical
// vector and leave the session's result-affecting state unchanged. Callers
// with their own change detection (the fleet arbiter) use it to skip solves
// entirely at a fixpoint. False before the first Solve and after Invalidate.
func (s *Session) ResultStable() bool { return s.lastStable }

// Close releases the session's buffers and any per-cluster child sessions.
// The session must not be used after Close. Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.hier != nil {
		for _, c := range s.hier.inner {
			c.Close()
		}
		s.hier = nil
	}
	for i := range s.memo {
		s.memo[i] = memoEntry{}
	}
	s.gs = greedyScratch{}
	s.bb = bbScratch{}
	s.dp = dpScratch{}
}

// Solve runs one warm-started solve. Semantics match the wrapped solver's
// Solve (including Deadline budgets when the session wraps one), with the
// hint applied as described on Session.
func (s *Session) Solve(in Instance, h Hint) (modes.Vector, Stats) {
	if s.closed {
		panic("solver: Session used after Close")
	}
	var cp *Checkpoint
	if s.wall > 0 || s.nodeBudget > 0 {
		if s.cp == nil {
			s.cp = &Checkpoint{}
		}
		s.cp.reset(s.wall, s.nodeBudget)
		cp = s.cp
	}
	v, st := s.solveBounded(in, h, cp)
	if cp.Aborted() {
		st.Aborted = true
		st.Exact = false
	}
	return v, st
}

// solveBounded is Solve with an externally owned checkpoint; Hier's
// per-cluster child sessions are driven through it so cluster solves charge
// nodes to their parent's budget.
func (s *Session) solveBounded(in Instance, h Hint, cp *Checkpoint) (modes.Vector, Stats) {
	s.stats.Solves++
	s.lastStable = false
	if s.memoOK {
		if v, st, ok := s.memoGet(in); ok {
			s.stats.MemoHits++
			s.lastStable = true
			return v, st
		}
		// Incremental re-solve: with a tracked instance whose generation
		// moved, patch the memoized optimum on the dirty cores and certify.
		// Only without an external checkpoint — the certificate proves what a
		// *completed* solve returns, so anytime budgets must bypass it.
		if s.deltaOK && cp == nil {
			if v, st, ok := s.tryDelta(in, &h); ok {
				s.lastStable = true
				return v, st
			}
		}
	}
	warm := usableHint(in, h)
	var v modes.Vector
	var st Stats
	switch b := s.base.(type) {
	case *BB:
		v, st = s.solveBB(b, in, h, warm, cp)
	case *DP:
		v, st = b.solveWith(in, cp, &s.dp)
	case *Hier:
		v, st = b.solveWith(in, cp, s.hier, h)
	case Greedy:
		v, st = s.solveGreedy(b, in, cp)
	default:
		v, st = SolveBounded(s.base, in, cp)
	}
	// An aborted solve's incumbent can be weaker than the hint (the DFS was
	// cut before revisiting it); the hint is a feasible vector the previous
	// interval actually ran, so it always qualifies as the anytime answer.
	// Strictly-better only: a completed solve is never overridden.
	if st.Aborted && warm {
		if hp := in.VectorPower(h.Vector); hp <= in.BudgetW {
			ht := in.VectorInstr(h.Vector)
			rp := in.VectorPower(v)
			if rp > in.BudgetW || better(ht, hp, in.VectorInstr(v), rp) {
				v = h.Vector
				s.stats.HintReturns++
			}
		}
	}
	s.stats.Nodes += st.Nodes
	s.stats.Pruned += st.Pruned
	if s.memoOK && !st.Aborted {
		s.memoPut(in, v, st)
	}
	s.lastStable = !st.Aborted
	if hs := s.hier; hs != nil && !hs.sharesStable {
		s.lastStable = false
	}
	return v, st
}

// solveBB is the warm BB path: scratch-built frontier, heap greedy seed, and
// the hint as an extra pruning floor. Non-finite instances take the cold
// path — the fast sorts and the heap kernel assume totally ordered keys.
func (s *Session) solveBB(b *BB, in Instance, h Hint, warm bool, cp *Checkpoint) (modes.Vector, Stats) {
	start := time.Now()
	if in.NumCores() == 0 || !finiteInstance(in) {
		return b.SolveBounded(in, cp)
	}
	s.bb.frontier.build(in, true)
	gv, _, _ := heapGreedy(in, cp, &s.gs)
	warmFloor := math.Inf(-1)
	if warm {
		if hp := in.VectorPower(h.Vector); hp <= in.BudgetW {
			warmFloor = in.VectorInstr(h.Vector)
			s.stats.WarmFloored++
		}
	}
	return b.solveFrom(in, cp, &s.bb.frontier, gv, warmFloor, &s.bb, start)
}

// solveGreedy swaps the O(n²·m) scan for the O(n·m·log n) heap kernel.
func (s *Session) solveGreedy(g Greedy, in Instance, cp *Checkpoint) (modes.Vector, Stats) {
	if !finiteInstance(in) {
		return g.SolveBounded(in, cp)
	}
	start := time.Now()
	v, nodes, aborted := heapGreedy(in, cp, &s.gs)
	st := Stats{Solver: g.Name(), Nodes: nodes, Elapsed: time.Since(start)}
	st.Aborted = aborted
	return v, st
}

// usableHint reports that the hint vector is shape-compatible with the
// instance (right width, every mode in range). Feasibility is checked
// separately at each use site, against the current matrices.
func usableHint(in Instance, h Hint) bool {
	n := in.NumCores()
	if n == 0 || len(h.Vector) != n {
		return false
	}
	m := in.NumModes()
	for _, mo := range h.Vector {
		if mo < 0 || int(mo) >= m {
			return false
		}
	}
	return true
}

// finiteInstance reports that the budget and every matrix entry are finite.
// The warm paths require it: NaNs have no defined order under the fast
// sorts and the candidate heap, so non-finite instances fall back to the
// cold kernels (which the memo also never caches: NaN compares unequal).
func finiteInstance(in Instance) bool {
	if !finite(in.BudgetW) {
		return false
	}
	for c := range in.Power {
		for _, p := range in.Power[c] {
			if !finite(p) {
				return false
			}
		}
		for _, q := range in.Instr[c] {
			if !finite(q) {
				return false
			}
		}
	}
	return true
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// tracked reports that the instance carries a usable generation handshake.
func tracked(in Instance, n int) bool {
	return in.GenID != 0 && len(in.Gens) == n
}

// memoGet returns the cached result of a bitwise-identical instance. Stats
// are returned with Nodes/Pruned zeroed — a hit does no search — so the
// "nodes saved" accounting stays honest. Tracked instances (generation
// handshake present, same backing as the entry) are answered by an O(1)
// generation compare; everything else falls back to the flat compare.
func (s *Session) memoGet(in Instance) (modes.Vector, Stats, bool) {
	n, m := in.NumCores(), in.NumModes()
	isTracked := tracked(in, n)
	for i := range s.memo {
		e := &s.memo[i]
		if !e.ok || e.n != n || e.m != m || e.budget != in.BudgetW {
			continue
		}
		if isTracked && e.genID == in.GenID {
			// Same backing: equal generation ⇔ bit-identical matrices (the
			// handshake contract — MatricesInto bumps the generation on any
			// row change and nothing else mutates the backing).
			if e.gen != in.Gen {
				continue
			}
		} else if !matricesEqual(in, e.power, e.instr, m) {
			continue
		}
		st := e.stats
		st.Nodes, st.Pruned = 0, 0
		st.Elapsed = 0
		return e.vec, st, true
	}
	return nil, Stats{}, false
}

// memoPut stores a completed (non-aborted) solve. Aborted results are never
// cached: node-budget aborts must stay deterministic per solve, and a
// deadline abort is not a function of the instance at all.
func (s *Session) memoPut(in Instance, v modes.Vector, st Stats) {
	n, m := in.NumCores(), in.NumModes()
	e := &s.memo[s.memoNext]
	s.memoNext = (s.memoNext + 1) % len(s.memo)
	e.ok = true
	e.n, e.m, e.budget = n, m, in.BudgetW
	e.power = copyMatrix(e.power[:0], in.Power, in.FlatPower, n*m)
	e.instr = copyMatrix(e.instr[:0], in.Instr, in.FlatInstr, n*m)
	e.vec = append(e.vec[:0], v...)
	e.stats = st
	e.genID, e.gen = 0, 0
	e.certOK = false
	if tracked(in, n) {
		e.genID, e.gen = in.GenID, in.Gen
		e.gens = append(e.gens[:0], in.Gens...)
		if s.deltaOK && st.Exact {
			s.buildCert(e)
		}
	}
}

// buildCert computes the entry's per-core argmax/margin state from its
// row-major matrix copies: the λ=0 water level of the uniqueness certificate
// (see tryDelta). O(n·m), paid once per full solve.
func (s *Session) buildCert(e *memoEntry) {
	n, m := e.n, e.m
	e.amax = resizeVector(e.amax, n)
	e.margin = resizeFloats(e.margin, n)
	e.rowMax = resizeFloats(e.rowMax, n)
	e.mismatch = 0
	for c := 0; c < n; c++ {
		row := e.instr[c*m : (c+1)*m]
		certRow(row, c, e)
		if e.vec[c] != e.amax[c] {
			e.mismatch++
		}
	}
	e.certOK = true
}

// certRow fills core c's certificate state from its Instr row: the strict
// argmax (first index attaining the max), the margin over the runner-up
// (+Inf for single-mode plans, 0 on an exact tie — which voids the
// certificate via the margin guard), and the row's max |Instr| for the
// float-drift guard.
func certRow(row []float64, c int, e *memoEntry) {
	best, second := row[0], math.Inf(-1)
	bm := 0
	abs := math.Abs(row[0])
	for j := 1; j < len(row); j++ {
		x := row[j]
		if a := math.Abs(x); a > abs {
			abs = a
		}
		if x > best {
			second = best
			best, bm = x, j
		} else if x > second {
			second = x
		}
	}
	e.amax[c] = modes.Mode(bm)
	if len(row) == 1 {
		e.margin[c] = math.Inf(1)
	} else {
		e.margin[c] = best - second
	}
	e.rowMax[c] = abs
}

// maxDeltaDirty bounds the dirty-core count the incremental path will patch;
// beyond it a full warm solve is cheaper than certifying. deltaComboCap
// bounds the residual-budget enumeration (modes^dirty).
const (
	maxDeltaDirty = 4
	deltaComboCap = 4096
)

// tryDelta is the incremental re-solve: when a tracked instance differs from
// a memoized optimum on K ≤ maxDeltaDirty cores at the same budget, re-solve
// just the dirty cores against the residual budget (clean cores keep their
// previous modes) and certify the patched vector as the full instance's
// unique optimum:
//
//	For every core c let amax[c] = argmax_j Instr[c][j] with strict margin
//	margin[c] > 0. If patch[c] == amax[c] for all c and the patch is
//	feasible (canonical VectorPower ≤ BudgetW), then for any other vector y
//	(feasible or not) T(y) ≤ T(patch) − min margin in real arithmetic; when
//	min margin also exceeds the accumulated float-summation drift bound
//	(guard below), T_float(y) < T_float(patch) strictly, so the patch is the
//	UNIQUE throughput optimum and every exact solver — either tie mode —
//	returns exactly it.
//
// A certified patch is returned as the proven cold answer and the memo entry
// is advanced in place (vec, dirty rows, generations) — steady-state cost
// O(n + K·m) with zero allocations. An uncertified patch demotes to a warm
// hint for the full solve (a pruning-floor-only hint can never change the
// result), and the half-updated certificate state is dropped.
func (s *Session) tryDelta(in Instance, h *Hint) (modes.Vector, Stats, bool) {
	n, m := in.NumCores(), in.NumModes()
	if !tracked(in, n) || n == 0 {
		return nil, Stats{}, false
	}
	// Most recent tracked entry for this backing at this exact budget.
	var e *memoEntry
	for i := range s.memo {
		c := &s.memo[i]
		if c.ok && c.certOK && c.genID == in.GenID && c.n == n && c.m == m &&
			c.budget == in.BudgetW && c.stats.Exact && (e == nil || c.gen > e.gen) {
			e = c
		}
	}
	if e == nil {
		return nil, Stats{}, false
	}
	dirty := s.deltaDirty[:0]
	total := 0
	for c := 0; c < n; c++ {
		if e.gens[c] != in.Gens[c] {
			total++
			if total <= maxDeltaDirty {
				dirty = append(dirty, c)
			}
		}
	}
	s.deltaDirty = dirty
	s.stats.DirtyCores += int64(total)
	if total == 0 || total > maxDeltaDirty {
		return nil, Stats{}, false
	}
	combos := 1
	for range dirty {
		combos *= m
		if combos > deltaComboCap {
			return nil, Stats{}, false
		}
	}
	s.stats.DeltaSolves++

	// Patch = previous optimum with the dirty cores re-solved against the
	// residual budget, enumerated in lexicographic order under the kernel's
	// strict improvement rule (per-subset sums; the certificate re-scores the
	// final vector canonically, so this ordering only shapes the fallback
	// hint, never a certified result).
	s.deltaVec = resizeVector(s.deltaVec, n)
	patch := s.deltaVec
	copy(patch, e.vec)
	// residual = budget − Σ clean cores' power at their kept modes.
	residual := in.BudgetW
	for c := 0; c < n; c++ {
		residual -= in.Power[c][patch[c]]
	}
	for _, c := range dirty {
		residual += in.Power[c][patch[c]]
	}
	bestT, bestP := math.Inf(-1), math.Inf(1)
	found := false
	for ci := 0; ci < combos; ci++ {
		var p, t float64
		rem := ci
		for k := len(dirty) - 1; k >= 0; k-- {
			mo := rem % m
			rem /= m
			c := dirty[k]
			p += in.Power[c][mo]
			t += in.Instr[c][mo]
		}
		if p > residual {
			continue
		}
		if !found || better(t, p, bestT, bestP) {
			found = true
			bestT, bestP = t, p
			rem = ci
			for k := len(dirty) - 1; k >= 0; k-- {
				patch[dirty[k]] = modes.Mode(rem % m)
				rem /= m
			}
		}
	}

	// Advance the certificate state over the dirty rows (margins, argmax,
	// row maxima, mismatch count) — O(K·m).
	for _, c := range dirty {
		if e.vec[c] != e.amax[c] {
			e.mismatch--
		}
		certRow(in.Instr[c], c, e)
		if found && patch[c] == e.amax[c] {
			// patched to the water level: no mismatch
		} else {
			e.mismatch++
		}
	}

	certified := found && e.mismatch == 0
	var pp float64
	if certified || found {
		pp = in.VectorPower(patch)
	}
	if certified && pp > in.BudgetW {
		certified = false
	}
	if certified {
		// Margin guard: min strict margin must exceed the worst-case float
		// summation drift between any two canonical-order sums, so the
		// real-arithmetic strict ordering survives rounding. n·ε·Σ|rowMax|
		// bounds the drift; 1e-9 is ~6 decimal orders more conservative.
		minMargin, absSum := math.Inf(1), 0.0
		for c := 0; c < n; c++ {
			if e.margin[c] < minMargin {
				minMargin = e.margin[c]
			}
			absSum += e.rowMax[c]
		}
		if !(minMargin > 1e-9*(1+absSum)) {
			certified = false
		}
	}

	if certified {
		// Commit: the entry now memoizes the patched instance at its new
		// generation. Copy the dirty rows; everything else is unchanged.
		for _, c := range dirty {
			copy(e.power[c*m:(c+1)*m], in.Power[c])
			copy(e.instr[c*m:(c+1)*m], in.Instr[c])
			e.gens[c] = in.Gens[c]
		}
		e.gen = in.Gen
		copy(e.vec, patch)
		s.stats.DeltaCertified++
		st := e.stats
		st.Nodes, st.Pruned = 0, 0
		st.Elapsed = 0
		return e.vec, st, true
	}

	// Fallback: certificate void. The entry's certificate arrays no longer
	// match its rows — drop them; the following full solve re-memoizes.
	e.certOK = false
	s.stats.DeltaFallbacks++
	if found && pp <= in.BudgetW {
		// The feasible patch is a (often excellent) warm hint; use it when it
		// beats the caller's hint. Hints only tighten the pruning floor, so
		// this cannot change the full solve's result.
		pt := in.VectorInstr(patch)
		use := true
		if usableHint(in, *h) {
			if hp := in.VectorPower(h.Vector); hp <= in.BudgetW {
				use = better(pt, pp, in.VectorInstr(h.Vector), hp)
			}
		}
		if use {
			h.Vector = patch
			h.Instr = pt
		}
	}
	return nil, Stats{}, false
}

// matricesEqual compares the instance's matrices against a stored row-major
// copy, using the caller-provided contiguous aliases when present.
func matricesEqual(in Instance, power, instr []float64, m int) bool {
	if fp, fi := in.FlatPower, in.FlatInstr; len(fp) == len(power) && len(fi) == len(instr) && len(fp) > 0 {
		for i, p := range fp {
			if power[i] != p {
				return false
			}
		}
		for i, q := range fi {
			if instr[i] != q {
				return false
			}
		}
		return true
	}
	for c := range in.Power {
		base := c * m
		for j, p := range in.Power[c] {
			if power[base+j] != p {
				return false
			}
		}
		for j, q := range in.Instr[c] {
			if instr[base+j] != q {
				return false
			}
		}
	}
	return true
}

func copyMatrix(dst []float64, rows [][]float64, flat []float64, nm int) []float64 {
	if len(flat) == nm {
		return append(dst, flat...)
	}
	for _, row := range rows {
		dst = append(dst, row...)
	}
	return dst
}

// greedyScratch is the heap kernel's reusable state.
type greedyScratch struct {
	v     modes.Vector
	heap  []gcand
	stash []gcand
}

// gcand is one core's pending single-step upgrade.
type gcand struct {
	ratio float64
	dp    float64
	core  int32
}

// candLess orders the candidate heap: higher ratio first, lower core on
// ties — exactly the candidate greedySolve's first-maximum scan selects.
func candLess(a, b gcand) bool {
	if a.ratio != b.ratio {
		return a.ratio > b.ratio
	}
	return a.core < b.core
}

func (g *greedyScratch) push(c gcand) {
	g.heap = append(g.heap, c)
	i := len(g.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candLess(g.heap[i], g.heap[p]) {
			break
		}
		g.heap[i], g.heap[p] = g.heap[p], g.heap[i]
		i = p
	}
}

func (g *greedyScratch) pop() gcand {
	h := g.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	g.heap = h
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		c := l
		if r := l + 1; r < len(h) && candLess(h[r], h[l]) {
			c = r
		}
		if !candLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

// heapGreedy computes greedySolve's exact upgrade sequence in O(n·m·log n)
// instead of O(n²·m): one pending upgrade per core lives in a max-heap keyed
// (ratio desc, core asc) — the same candidate the scan's strict first-maximum
// rule selects each pass. Infeasible pops are stashed and reconsidered only
// when an applied upgrade *lowers* chip power (with non-negative deltas,
// infeasibility is monotone, so a stashed candidate can never fit again).
// Callers must pre-check finiteInstance: a NaN ratio has no heap order.
// The returned vector aliases g.v. Like greedySolve, the aborted result
// reports this solve's own checkpoint trips, not the shared latched flag.
func heapGreedy(in Instance, cp *Checkpoint, g *greedyScratch) (_ modes.Vector, nodes int64, aborted bool) {
	n := in.NumCores()
	if cap(g.v) < n {
		g.v = make(modes.Vector, n)
	}
	g.v = g.v[:n]
	v := g.v
	deep := modes.Mode(in.NumModes() - 1)
	for c := range v {
		v[c] = deep
	}
	power := in.VectorPower(v)
	if power > in.BudgetW {
		return v, nodes, false // even the floor exceeds the budget
	}
	g.heap = g.heap[:0]
	g.stash = g.stash[:0]
	for c := 0; c < n; c++ {
		if v[c] == 0 {
			continue
		}
		dp, ratio := upgradeDelta(in, c, v[c])
		nodes++
		g.push(gcand{ratio: ratio, dp: dp, core: int32(c)})
	}
	if cp.Visit(nodes) {
		return v, nodes, true
	}
	for {
		var examined int64
		sel := gcand{core: -1}
		for len(g.heap) > 0 {
			if !(g.heap[0].ratio > -1.0) {
				break // below the scan's selection floor: nothing qualifies
			}
			top := g.pop()
			examined++
			if power+top.dp > in.BudgetW {
				g.stash = append(g.stash, top)
				continue
			}
			sel = top
			break
		}
		nodes += examined
		if cp.Visit(examined) {
			return v, nodes, true
		}
		if sel.core < 0 {
			return v, nodes, false
		}
		c := int(sel.core)
		v[c]--
		power += sel.dp
		if sel.dp < 0 {
			// Chip power went down: stashed upgrades may fit again.
			for _, st := range g.stash {
				g.push(st)
			}
			g.stash = g.stash[:0]
		}
		if v[c] > 0 {
			dp, ratio := upgradeDelta(in, c, v[c])
			nodes++
			g.push(gcand{ratio: ratio, dp: dp, core: int32(c)})
		}
	}
}

// resizeFloats returns a zeroed slice of length n, reusing s's backing when
// it is large enough.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeBytes(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeVector(s modes.Vector, n int) modes.Vector {
	if cap(s) < n {
		return make(modes.Vector, n)
	}
	return s[:n]
}

// floatsBitEqual reports element-wise bit equality (NaN-hostile: any NaN
// compares unequal, which is the conservative answer for stability checks).
func floatsBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
