package solver

import (
	"math"
	"time"

	"gpm/internal/modes"
)

// Hint carries the previous interval's decision into a warm-started solve:
// the mode vector that was actually actuated, and (optionally, for
// observability) the objective it scored when it was chosen. Sessions
// re-validate the hint against the *current* instance — the vector is only
// used when it is shape-compatible and feasible under the current matrices
// and budget — so a stale or truncated hint degrades to a cold solve, never
// to a wrong answer.
type Hint struct {
	// Vector is the previously actuated mode vector (may be nil: cold).
	Vector modes.Vector
	// Instr is the objective the vector scored when actuated, under the
	// matrices of its own interval. Informational only: the session
	// re-scores the vector on the current instance before using it.
	Instr float64
}

// SessionStats are a Session's cumulative warm-start counters.
type SessionStats struct {
	// Solves counts Solve calls.
	Solves int64
	// MemoHits counts solves answered entirely from the instance memo
	// (telemetry bit-identical to a recently solved interval).
	MemoHits int64
	// WarmFloored counts solves that applied a feasible warm hint as an
	// extra branch-and-bound pruning floor.
	WarmFloored int64
	// HintReturns counts aborted solves whose returned vector was the
	// (strictly better) warm hint rather than the solver's own incumbent.
	HintReturns int64
	// Nodes and Pruned accumulate the underlying solver's search-node and
	// pruned-subtree counts across solves (memo hits contribute zero), so
	// Nodes here vs a cold baseline is the "nodes saved" measure and
	// Pruned/Nodes the incumbent-prune rate.
	Nodes  int64
	Pruned int64
}

// Session owns the cross-interval state that makes consecutive decisions
// cheap: reusable sort/scratch buffers for every solver, a small memo of
// recently solved instances, Hier's cluster shares and per-cluster inner
// sessions, and the warm-start plumbing that turns the previous decision
// into a BB pruning floor.
//
// Warm-starting is a pure accelerator: for any hint, Solve returns the
// bit-identical vector a cold Solve of the same solver would return on the
// same instance (pinned by TestWarmVsColdBitIdentical). The one exception is
// deliberate and matches the anytime contract: when a deadline/node budget
// aborts the solve mid-search, the session returns the hint vector instead
// of the solver's incumbent iff the hint is feasible on the current instance
// and strictly better — an aborted cold solve has no bit-identity to
// preserve, only a "best feasible incumbent" obligation, which the hint
// satisfies.
//
// The returned vector aliases session-owned buffers and is valid until the
// next Solve call; callers that retain it must copy (core.Manager.sanitize
// already does).
//
// A Session is single-goroutine, like the engine loop that owns it. The
// underlying Solver itself stays stateless and safe for concurrent use by
// other callers.
type Session struct {
	solver     Solver
	base       Solver // solver with any Deadline wrappers unwrapped
	wall       time.Duration
	nodeBudget int64
	cp         *Checkpoint

	// memo is a 2-entry ring of recently solved instances (two entries so
	// Hier's rebalance passes, which alternate share and share+slack budgets
	// per cluster, both hit). Entries hold session-owned copies of the
	// matrices: callers reuse their matrix backing arrays in place between
	// intervals, so stored references would always compare equal.
	memoOK   bool
	memo     [2]memoEntry
	memoNext int

	gs   greedyScratch
	bb   bbScratch
	dp   dpScratch
	hier *hierState

	stats  SessionStats
	closed bool
}

type memoEntry struct {
	ok           bool
	n, m         int
	budget       float64
	power, instr []float64 // row-major n×m copies
	vec          modes.Vector
	stats        Stats
}

// NewSession builds a stateful solving session over s. Deadline wrappers are
// unwrapped and their wall/node budgets applied per Solve (tightest layer
// wins), exactly like Deadline.Solve. The memo is enabled for stateless
// solvers only: BB, DP, Exhaustive, Greedy, and Hier with Alpha == 0 — a
// share-smoothing Hier must re-solve so its share state keeps evolving.
func NewSession(s Solver) *Session {
	ses := &Session{solver: s}
	base := s
	for {
		d, ok := base.(*Deadline)
		if !ok {
			break
		}
		if d.Wall > 0 && (ses.wall == 0 || d.Wall < ses.wall) {
			ses.wall = d.Wall
		}
		if d.Nodes > 0 && (ses.nodeBudget == 0 || d.Nodes < ses.nodeBudget) {
			ses.nodeBudget = d.Nodes
		}
		base = d.Inner
	}
	ses.base = base
	switch b := base.(type) {
	case *Hier:
		ses.hier = &hierState{}
		ses.memoOK = b.Alpha == 0
	case *BB, *DP, *Exhaustive, Greedy:
		ses.memoOK = true
	}
	return ses
}

// Stats returns the session's cumulative counters.
func (s *Session) Stats() SessionStats { return s.stats }

// Close releases the session's buffers and any per-cluster child sessions.
// The session must not be used after Close. Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.hier != nil {
		for _, c := range s.hier.inner {
			c.Close()
		}
		s.hier = nil
	}
	for i := range s.memo {
		s.memo[i] = memoEntry{}
	}
	s.gs = greedyScratch{}
	s.bb = bbScratch{}
	s.dp = dpScratch{}
}

// Solve runs one warm-started solve. Semantics match the wrapped solver's
// Solve (including Deadline budgets when the session wraps one), with the
// hint applied as described on Session.
func (s *Session) Solve(in Instance, h Hint) (modes.Vector, Stats) {
	if s.closed {
		panic("solver: Session used after Close")
	}
	var cp *Checkpoint
	if s.wall > 0 || s.nodeBudget > 0 {
		if s.cp == nil {
			s.cp = &Checkpoint{}
		}
		s.cp.reset(s.wall, s.nodeBudget)
		cp = s.cp
	}
	v, st := s.solveBounded(in, h, cp)
	if cp.Aborted() {
		st.Aborted = true
		st.Exact = false
	}
	return v, st
}

// solveBounded is Solve with an externally owned checkpoint; Hier's
// per-cluster child sessions are driven through it so cluster solves charge
// nodes to their parent's budget.
func (s *Session) solveBounded(in Instance, h Hint, cp *Checkpoint) (modes.Vector, Stats) {
	s.stats.Solves++
	if s.memoOK {
		if v, st, ok := s.memoGet(in); ok {
			s.stats.MemoHits++
			return v, st
		}
	}
	warm := usableHint(in, h)
	var v modes.Vector
	var st Stats
	switch b := s.base.(type) {
	case *BB:
		v, st = s.solveBB(b, in, h, warm, cp)
	case *DP:
		v, st = b.solveWith(in, cp, &s.dp)
	case *Hier:
		v, st = b.solveWith(in, cp, s.hier, h)
	case Greedy:
		v, st = s.solveGreedy(b, in, cp)
	default:
		v, st = SolveBounded(s.base, in, cp)
	}
	// An aborted solve's incumbent can be weaker than the hint (the DFS was
	// cut before revisiting it); the hint is a feasible vector the previous
	// interval actually ran, so it always qualifies as the anytime answer.
	// Strictly-better only: a completed solve is never overridden.
	if st.Aborted && warm {
		if hp := in.VectorPower(h.Vector); hp <= in.BudgetW {
			ht := in.VectorInstr(h.Vector)
			rp := in.VectorPower(v)
			if rp > in.BudgetW || better(ht, hp, in.VectorInstr(v), rp) {
				v = h.Vector
				s.stats.HintReturns++
			}
		}
	}
	s.stats.Nodes += st.Nodes
	s.stats.Pruned += st.Pruned
	if s.memoOK && !st.Aborted {
		s.memoPut(in, v, st)
	}
	return v, st
}

// solveBB is the warm BB path: scratch-built frontier, heap greedy seed, and
// the hint as an extra pruning floor. Non-finite instances take the cold
// path — the fast sorts and the heap kernel assume totally ordered keys.
func (s *Session) solveBB(b *BB, in Instance, h Hint, warm bool, cp *Checkpoint) (modes.Vector, Stats) {
	start := time.Now()
	if in.NumCores() == 0 || !finiteInstance(in) {
		return b.SolveBounded(in, cp)
	}
	s.bb.frontier.build(in, true)
	gv, _ := heapGreedy(in, cp, &s.gs)
	warmFloor := math.Inf(-1)
	if warm {
		if hp := in.VectorPower(h.Vector); hp <= in.BudgetW {
			warmFloor = in.VectorInstr(h.Vector)
			s.stats.WarmFloored++
		}
	}
	return b.solveFrom(in, cp, &s.bb.frontier, gv, warmFloor, &s.bb, start)
}

// solveGreedy swaps the O(n²·m) scan for the O(n·m·log n) heap kernel.
func (s *Session) solveGreedy(g Greedy, in Instance, cp *Checkpoint) (modes.Vector, Stats) {
	if !finiteInstance(in) {
		return g.SolveBounded(in, cp)
	}
	start := time.Now()
	v, nodes := heapGreedy(in, cp, &s.gs)
	st := Stats{Solver: g.Name(), Nodes: nodes, Elapsed: time.Since(start)}
	st.Aborted = cp.Aborted()
	return v, st
}

// usableHint reports that the hint vector is shape-compatible with the
// instance (right width, every mode in range). Feasibility is checked
// separately at each use site, against the current matrices.
func usableHint(in Instance, h Hint) bool {
	n := in.NumCores()
	if n == 0 || len(h.Vector) != n {
		return false
	}
	m := in.NumModes()
	for _, mo := range h.Vector {
		if mo < 0 || int(mo) >= m {
			return false
		}
	}
	return true
}

// finiteInstance reports that the budget and every matrix entry are finite.
// The warm paths require it: NaNs have no defined order under the fast
// sorts and the candidate heap, so non-finite instances fall back to the
// cold kernels (which the memo also never caches: NaN compares unequal).
func finiteInstance(in Instance) bool {
	if !finite(in.BudgetW) {
		return false
	}
	for c := range in.Power {
		for _, p := range in.Power[c] {
			if !finite(p) {
				return false
			}
		}
		for _, q := range in.Instr[c] {
			if !finite(q) {
				return false
			}
		}
	}
	return true
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// memoGet returns the cached result of a bitwise-identical instance. Stats
// are returned with Nodes/Pruned zeroed — a hit does no search — so the
// "nodes saved" accounting stays honest.
func (s *Session) memoGet(in Instance) (modes.Vector, Stats, bool) {
	n, m := in.NumCores(), in.NumModes()
	for i := range s.memo {
		e := &s.memo[i]
		if !e.ok || e.n != n || e.m != m || e.budget != in.BudgetW {
			continue
		}
		if !matricesEqual(in, e.power, e.instr, m) {
			continue
		}
		st := e.stats
		st.Nodes, st.Pruned = 0, 0
		st.Elapsed = 0
		return e.vec, st, true
	}
	return nil, Stats{}, false
}

// memoPut stores a completed (non-aborted) solve. Aborted results are never
// cached: node-budget aborts must stay deterministic per solve, and a
// deadline abort is not a function of the instance at all.
func (s *Session) memoPut(in Instance, v modes.Vector, st Stats) {
	n, m := in.NumCores(), in.NumModes()
	e := &s.memo[s.memoNext]
	s.memoNext = (s.memoNext + 1) % len(s.memo)
	e.ok = true
	e.n, e.m, e.budget = n, m, in.BudgetW
	e.power = copyMatrix(e.power[:0], in.Power, in.FlatPower, n*m)
	e.instr = copyMatrix(e.instr[:0], in.Instr, in.FlatInstr, n*m)
	e.vec = append(e.vec[:0], v...)
	e.stats = st
}

// matricesEqual compares the instance's matrices against a stored row-major
// copy, using the caller-provided contiguous aliases when present.
func matricesEqual(in Instance, power, instr []float64, m int) bool {
	if fp, fi := in.FlatPower, in.FlatInstr; len(fp) == len(power) && len(fi) == len(instr) && len(fp) > 0 {
		for i, p := range fp {
			if power[i] != p {
				return false
			}
		}
		for i, q := range fi {
			if instr[i] != q {
				return false
			}
		}
		return true
	}
	for c := range in.Power {
		base := c * m
		for j, p := range in.Power[c] {
			if power[base+j] != p {
				return false
			}
		}
		for j, q := range in.Instr[c] {
			if instr[base+j] != q {
				return false
			}
		}
	}
	return true
}

func copyMatrix(dst []float64, rows [][]float64, flat []float64, nm int) []float64 {
	if len(flat) == nm {
		return append(dst, flat...)
	}
	for _, row := range rows {
		dst = append(dst, row...)
	}
	return dst
}

// greedyScratch is the heap kernel's reusable state.
type greedyScratch struct {
	v     modes.Vector
	heap  []gcand
	stash []gcand
}

// gcand is one core's pending single-step upgrade.
type gcand struct {
	ratio float64
	dp    float64
	core  int32
}

// candLess orders the candidate heap: higher ratio first, lower core on
// ties — exactly the candidate greedySolve's first-maximum scan selects.
func candLess(a, b gcand) bool {
	if a.ratio != b.ratio {
		return a.ratio > b.ratio
	}
	return a.core < b.core
}

func (g *greedyScratch) push(c gcand) {
	g.heap = append(g.heap, c)
	i := len(g.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candLess(g.heap[i], g.heap[p]) {
			break
		}
		g.heap[i], g.heap[p] = g.heap[p], g.heap[i]
		i = p
	}
}

func (g *greedyScratch) pop() gcand {
	h := g.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	g.heap = h
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		c := l
		if r := l + 1; r < len(h) && candLess(h[r], h[l]) {
			c = r
		}
		if !candLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

// heapGreedy computes greedySolve's exact upgrade sequence in O(n·m·log n)
// instead of O(n²·m): one pending upgrade per core lives in a max-heap keyed
// (ratio desc, core asc) — the same candidate the scan's strict first-maximum
// rule selects each pass. Infeasible pops are stashed and reconsidered only
// when an applied upgrade *lowers* chip power (with non-negative deltas,
// infeasibility is monotone, so a stashed candidate can never fit again).
// Callers must pre-check finiteInstance: a NaN ratio has no heap order.
// The returned vector aliases g.v.
func heapGreedy(in Instance, cp *Checkpoint, g *greedyScratch) (modes.Vector, int64) {
	n := in.NumCores()
	if cap(g.v) < n {
		g.v = make(modes.Vector, n)
	}
	g.v = g.v[:n]
	v := g.v
	deep := modes.Mode(in.NumModes() - 1)
	for c := range v {
		v[c] = deep
	}
	power := in.VectorPower(v)
	var nodes int64
	if power > in.BudgetW {
		return v, nodes // even the floor exceeds the budget
	}
	g.heap = g.heap[:0]
	g.stash = g.stash[:0]
	for c := 0; c < n; c++ {
		if v[c] == 0 {
			continue
		}
		dp, ratio := upgradeDelta(in, c, v[c])
		nodes++
		g.push(gcand{ratio: ratio, dp: dp, core: int32(c)})
	}
	if cp.Visit(nodes) {
		return v, nodes
	}
	for {
		var examined int64
		sel := gcand{core: -1}
		for len(g.heap) > 0 {
			if !(g.heap[0].ratio > -1.0) {
				break // below the scan's selection floor: nothing qualifies
			}
			top := g.pop()
			examined++
			if power+top.dp > in.BudgetW {
				g.stash = append(g.stash, top)
				continue
			}
			sel = top
			break
		}
		nodes += examined
		if cp.Visit(examined) {
			return v, nodes
		}
		if sel.core < 0 {
			return v, nodes
		}
		c := int(sel.core)
		v[c]--
		power += sel.dp
		if sel.dp < 0 {
			// Chip power went down: stashed upgrades may fit again.
			for _, st := range g.stash {
				g.push(st)
			}
			g.stash = g.stash[:0]
		}
		if v[c] > 0 {
			dp, ratio := upgradeDelta(in, c, v[c])
			nodes++
			g.push(gcand{ratio: ratio, dp: dp, core: int32(c)})
		}
	}
}

// resizeFloats returns a zeroed slice of length n, reusing s's backing when
// it is large enough.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeBytes(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeVector(s modes.Vector, n int) modes.Vector {
	if cap(s) < n {
		return make(modes.Vector, n)
	}
	return s[:n]
}
