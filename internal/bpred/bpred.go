// Package bpred implements the Table 1 branch predictor: a tournament of a
// 16K-entry bimodal table and a 16K-entry gshare table arbitrated by a
// 16K-entry selector, all of 2-bit saturating counters.
package bpred

// counter is a 2-bit saturating counter; values 2 and 3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Predictor is a tournament branch predictor. The zero value is not usable;
// construct with New.
type Predictor struct {
	bimodal  []counter
	gshare   []counter
	selector []counter // >= 2 selects gshare

	history     uint64
	historyMask uint64

	bMask, gMask, sMask uint64

	// Stats
	lookups     uint64
	mispredicts uint64
}

// New builds a predictor with the given table sizes (entries; must be powers
// of two) and gshare history length in bits.
func New(bimodalEntries, gshareEntries, selectorEntries, historyBits int) *Predictor {
	pow2 := func(n int) int {
		if n <= 0 || n&(n-1) != 0 {
			panic("bpred: table sizes must be positive powers of two")
		}
		return n
	}
	p := &Predictor{
		bimodal:  make([]counter, pow2(bimodalEntries)),
		gshare:   make([]counter, pow2(gshareEntries)),
		selector: make([]counter, pow2(selectorEntries)),
	}
	p.bMask = uint64(bimodalEntries - 1)
	p.gMask = uint64(gshareEntries - 1)
	p.sMask = uint64(selectorEntries - 1)
	if historyBits <= 0 || historyBits > 63 {
		panic("bpred: history bits must be in 1..63")
	}
	p.historyMask = (1 << uint(historyBits)) - 1
	// Weakly-taken initial state matches common hardware reset behaviour and
	// avoids a cold-start bias toward not-taken on loop branches.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.selector {
		p.selector[i] = 1 // weakly prefer bimodal
	}
	return p
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	idx := pc >> 2
	b := p.bimodal[idx&p.bMask].taken()
	g := p.gshare[(idx^p.history)&p.gMask].taken()
	if p.selector[idx&p.sMask].taken() {
		return g
	}
	return b
}

// Update trains the predictor with the actual outcome and returns whether
// the prediction (made with the pre-update state) was wrong.
func (p *Predictor) Update(pc uint64, taken bool) (mispredicted bool) {
	idx := pc >> 2
	bIdx := idx & p.bMask
	gIdx := (idx ^ p.history) & p.gMask
	sIdx := idx & p.sMask

	b := p.bimodal[bIdx].taken()
	g := p.gshare[gIdx].taken()
	pred := b
	if p.selector[sIdx].taken() {
		pred = g
	}
	mispredicted = pred != taken

	// Selector trains toward whichever component was right (only when they
	// disagree).
	if b != g {
		p.selector[sIdx] = p.selector[sIdx].update(g == taken)
	}
	p.bimodal[bIdx] = p.bimodal[bIdx].update(taken)
	p.gshare[gIdx] = p.gshare[gIdx].update(taken)
	p.history = ((p.history << 1) | boolBit(taken)) & p.historyMask

	p.lookups++
	if mispredicted {
		p.mispredicts++
	}
	return mispredicted
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Stats reports lifetime lookup and misprediction counts.
func (p *Predictor) Stats() (lookups, mispredicts uint64) {
	return p.lookups, p.mispredicts
}

// MispredictRate returns mispredicts/lookups, or 0 before any lookup.
func (p *Predictor) MispredictRate() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.mispredicts) / float64(p.lookups)
}

// ResetStats clears the counters but keeps learned state (used after warmup).
func (p *Predictor) ResetStats() { p.lookups, p.mispredicts = 0, 0 }
