package bpred

import (
	"math/rand"
	"testing"
)

func newSmall() *Predictor { return New(1024, 1024, 1024, 10) }

func TestAlwaysTakenLearned(t *testing.T) {
	p := newSmall()
	pc := uint64(0x400)
	mis := 0
	for i := 0; i < 1000; i++ {
		if p.Update(pc, true) {
			mis++
		}
	}
	if mis > 2 {
		t.Errorf("always-taken branch mispredicted %d times", mis)
	}
}

func TestLoopExitCost(t *testing.T) {
	p := newSmall()
	pc := uint64(0x800)
	// Loop with trip count 8: 7 taken, 1 not-taken, repeated. A bimodal
	// predictor should mispredict roughly once per trip (the exit).
	mis := 0
	const trips = 200
	for l := 0; l < trips; l++ {
		for i := 0; i < 7; i++ {
			if p.Update(pc, true) {
				mis++
			}
		}
		if p.Update(pc, false) {
			mis++
		}
	}
	rate := float64(mis) / float64(trips*8)
	// gshare's 10-bit history captures the period-8 pattern, so a fixed trip
	// count is learned essentially perfectly.
	if rate > 0.10 {
		t.Errorf("fixed-trip loop mispredict rate %.2f too high", rate)
	}
}

func TestVariableTripLoopExitsCost(t *testing.T) {
	p := newSmall()
	rng := rand.New(rand.NewSource(3))
	pc := uint64(0x840)
	mis, branches := 0, 0
	for l := 0; l < 400; l++ {
		trip := 4 + rng.Intn(9) // 4..12, unlearnable exit position
		for i := 0; i < trip-1; i++ {
			if p.Update(pc, true) {
				mis++
			}
			branches++
		}
		if p.Update(pc, false) {
			mis++
		}
		branches++
	}
	rate := float64(mis) / float64(branches)
	if rate < 0.05 {
		t.Errorf("variable-trip loop mispredict rate %.2f implausibly low", rate)
	}
	if rate > 0.40 {
		t.Errorf("variable-trip loop mispredict rate %.2f too high", rate)
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	p := newSmall()
	pc := uint64(0xc00)
	// Strictly alternating T/N/T/N: bimodal is ~50%, gshare with global
	// history should learn it nearly perfectly; the selector must migrate.
	taken := false
	mis := 0
	for i := 0; i < 4000; i++ {
		if p.Update(pc, taken) {
			if i > 1000 {
				mis++
			}
		}
		taken = !taken
	}
	if rate := float64(mis) / 3000; rate > 0.05 {
		t.Errorf("alternating pattern mispredicted at %.2f after warmup", rate)
	}
}

func TestRandomBranchNearHalf(t *testing.T) {
	p := newSmall()
	rng := rand.New(rand.NewSource(7))
	pc := uint64(0x1000)
	mis := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.Update(pc, rng.Intn(2) == 0) {
			mis++
		}
	}
	rate := float64(mis) / n
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random branch mispredict rate %.2f, want ≈0.5", rate)
	}
}

func TestStatsAndReset(t *testing.T) {
	p := newSmall()
	for i := 0; i < 10; i++ {
		p.Update(0x4, true)
	}
	lookups, _ := p.Stats()
	if lookups != 10 {
		t.Errorf("lookups %d, want 10", lookups)
	}
	if p.MispredictRate() < 0 || p.MispredictRate() > 1 {
		t.Error("mispredict rate out of range")
	}
	p.ResetStats()
	if l, m := p.Stats(); l != 0 || m != 0 {
		t.Error("ResetStats did not clear")
	}
	// Learned state must survive: the branch is still predicted taken.
	if !p.Predict(0x4) {
		t.Error("ResetStats destroyed learned state")
	}
}

func TestPredictConsistentWithUpdate(t *testing.T) {
	p := newSmall()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		pc := uint64(rng.Intn(64)) * 4
		taken := rng.Intn(3) > 0
		pred := p.Predict(pc)
		mis := p.Update(pc, taken)
		if mis != (pred != taken) {
			t.Fatalf("Update's misprediction flag disagrees with Predict at i=%d", i)
		}
	}
}

func TestNewPanicsOnBadSizes(t *testing.T) {
	for _, fn := range []func(){
		func() { New(1000, 1024, 1024, 10) }, // non-power-of-two
		func() { New(0, 1024, 1024, 10) },
		func() { New(1024, 1024, 1024, 0) },
		func() { New(1024, 1024, 1024, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}
