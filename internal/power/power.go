// Package power is the PowerTimer substitute: an activity-based, per-unit
// power model for a POWER4/5-class core, with DVFS voltage/frequency scaling.
//
// Each microarchitectural unit has an unconstrained (full-activity) dynamic
// power and a clock-gating floor; per-interval unit activities measured by
// the core simulator interpolate between them. Dynamic power scales as V²f
// and leakage as V² (a compromise between linear-V and exponential
// subthreshold models; the manager's design-time scale law accounts for it,
// see internal/core). With the paper's linear V–f plan, total power scaling
// is within a fraction of a percent of the cubic relation of §5.5.
package power

import (
	"fmt"

	"gpm/internal/modes"
)

// Activity holds per-unit activity factors in [0,1] measured over an
// interval, plus the committed instruction count for BIPS accounting.
type Activity struct {
	Fetch   float64 // fetch pipe + L1I utilization
	Decode  float64 // decode/dispatch slots used
	Issue   float64 // issue-queue occupancy/selection
	FXU     float64
	FPU     float64
	LSU     float64 // includes L1D
	BRU     float64
	RegFile float64
	L2      float64 // this core's share of L2 activity

	// Committed is the number of instructions retired in the interval.
	Committed uint64
	// Cycles is the interval length in core cycles.
	Cycles uint64
}

// IPC returns committed instructions per cycle for the interval.
func (a Activity) IPC() float64 {
	if a.Cycles == 0 {
		return 0
	}
	return float64(a.Committed) / float64(a.Cycles)
}

// clamp01 bounds an activity factor.
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Unit describes one power source in the model.
type Unit struct {
	Name string
	// MaxDynamic is the unit's dynamic power in watts at nominal V/f and
	// activity 1.0.
	MaxDynamic float64
	// GateFloor is the fraction of MaxDynamic consumed at activity 0
	// (imperfect clock gating). 1.0 means ungateable (clock tree).
	GateFloor float64
}

// Model is a per-core power model.
type Model struct {
	Units []Unit
	// LeakageW is per-core leakage at nominal Vdd.
	LeakageW float64
}

// Default returns the model used throughout the reproduction. Absolute watts
// are calibrated to a POWER4-class core (tens of watts per core); only
// relative behaviour matters to the policy study.
func Default() Model {
	return Model{
		Units: []Unit{
			{Name: "clock", MaxDynamic: 6.0, GateFloor: 1.0},
			{Name: "fetch", MaxDynamic: 4.5, GateFloor: 0.30},
			{Name: "decode", MaxDynamic: 3.0, GateFloor: 0.25},
			{Name: "issue", MaxDynamic: 5.0, GateFloor: 0.30},
			{Name: "fxu", MaxDynamic: 4.0, GateFloor: 0.20},
			{Name: "fpu", MaxDynamic: 5.0, GateFloor: 0.15},
			{Name: "lsu", MaxDynamic: 5.5, GateFloor: 0.25},
			{Name: "bru", MaxDynamic: 2.0, GateFloor: 0.25},
			{Name: "regfile", MaxDynamic: 3.0, GateFloor: 0.30},
			{Name: "l2share", MaxDynamic: 4.0, GateFloor: 0.20},
		},
		LeakageW: 3.5,
	}
}

// Validate reports model inconsistencies.
func (m Model) Validate() error {
	if len(m.Units) == 0 {
		return fmt.Errorf("power: model has no units")
	}
	for _, u := range m.Units {
		if u.MaxDynamic < 0 || u.GateFloor < 0 || u.GateFloor > 1 {
			return fmt.Errorf("power: unit %s has invalid parameters", u.Name)
		}
	}
	if m.LeakageW < 0 {
		return fmt.Errorf("power: negative leakage")
	}
	return nil
}

// unitActivity maps the model's unit names onto Activity fields.
func unitActivity(name string, a Activity) float64 {
	switch name {
	case "clock":
		return 1
	case "fetch":
		return a.Fetch
	case "decode":
		return a.Decode
	case "issue":
		return a.Issue
	case "fxu":
		return a.FXU
	case "fpu":
		return a.FPU
	case "lsu":
		return a.LSU
	case "bru":
		return a.BRU
	case "regfile":
		return a.RegFile
	case "l2share":
		return a.L2
	default:
		return 0
	}
}

// CorePower returns the core's power in watts for the given activities under
// mode m of plan p.
func (m Model) CorePower(a Activity, p modes.Plan, md modes.Mode) float64 {
	dyn := 0.0
	for _, u := range m.Units {
		act := clamp01(unitActivity(u.Name, a))
		dyn += u.MaxDynamic * (u.GateFloor + (1-u.GateFloor)*act)
	}
	v := p.VScale(md)
	f := p.FreqScale(md)
	// Leakage drops superlinearly with supply voltage (DIBL); V³ keeps the
	// total on the paper's cubic law under linear V–f scaling.
	return dyn*v*v*f + m.LeakageW*v*v*v
}

// MaxCorePower returns the all-units-busy power at Turbo: the per-core
// contribution to the chip's maximum power envelope.
func (m Model) MaxCorePower() float64 {
	var dyn float64
	for _, u := range m.Units {
		dyn += u.MaxDynamic
	}
	return dyn + m.LeakageW
}

// DynamicFraction returns the share of MaxCorePower that is dynamic; the
// design-time scale law in internal/core uses it to fold leakage into mode
// predictions.
func (m Model) DynamicFraction() float64 {
	var dyn float64
	for _, u := range m.Units {
		dyn += u.MaxDynamic
	}
	return dyn / (dyn + m.LeakageW)
}

// ScaleLaw returns the model's exact total-power scale for mode md relative
// to Turbo assuming activity is mode-invariant: the "hardwired at design
// time" relation the global manager may use instead of the pure cubic.
//
// scale = wDyn·V²f + wLeak·V³, with weights from the activity-independent
// decomposition at Turbo. Because activities shift slightly across modes the
// true ratio still differs by a few tenths of a percent — the §5.5
// estimation-error regime.
func (m Model) ScaleLaw(p modes.Plan, md modes.Mode) float64 {
	w := m.DynamicFraction()
	v := p.VScale(md)
	f := p.FreqScale(md)
	return w*v*v*f + (1-w)*v*v*v
}
