package power

import (
	"math"
	"testing"
	"testing/quick"

	"gpm/internal/modes"
)

func plan() modes.Plan { return modes.Default(1.300, 0.010) }

func busy() Activity {
	return Activity{Fetch: 1, Decode: 1, Issue: 1, FXU: 1, FPU: 1, LSU: 1, BRU: 1, RegFile: 1, L2: 1, Committed: 100000, Cycles: 50000}
}

func idle() Activity { return Activity{Cycles: 50000} }

func TestModelValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Model{}
	if err := bad.Validate(); err == nil {
		t.Error("empty model validated")
	}
	bad = Default()
	bad.Units[0].GateFloor = 2
	if err := bad.Validate(); err == nil {
		t.Error("gate floor > 1 validated")
	}
	bad = Default()
	bad.LeakageW = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative leakage validated")
	}
}

func TestFullActivityEqualsMaxPower(t *testing.T) {
	m := Default()
	got := m.CorePower(busy(), plan(), modes.Turbo)
	if math.Abs(got-m.MaxCorePower()) > 1e-9 {
		t.Errorf("busy Turbo power %v != MaxCorePower %v", got, m.MaxCorePower())
	}
}

func TestIdleFloorPositiveAndBelowBusy(t *testing.T) {
	m := Default()
	lo := m.CorePower(idle(), plan(), modes.Turbo)
	hi := m.CorePower(busy(), plan(), modes.Turbo)
	if lo <= 0 {
		t.Error("idle power should be positive (clock tree + leakage + gate floors)")
	}
	if lo >= hi {
		t.Errorf("idle %v not below busy %v", lo, hi)
	}
	// Clock gating should still remove a substantial share.
	if lo > 0.7*hi {
		t.Errorf("idle power %v too close to busy %v", lo, hi)
	}
}

func TestCubicScalingAcrossModes(t *testing.T) {
	m := Default()
	p := plan()
	for _, md := range []modes.Mode{modes.Eff1, modes.Eff2} {
		got := m.CorePower(busy(), p, md) / m.CorePower(busy(), p, modes.Turbo)
		want := p.PowerScale(md) // V³ leakage keeps the total on the cubic law
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s busy scale %v, want %v", p.Name(md), got, want)
		}
	}
}

func TestScaleLawMatchesModel(t *testing.T) {
	m := Default()
	p := plan()
	for md := 0; md < p.NumModes(); md++ {
		mode := modes.Mode(md)
		got := m.CorePower(busy(), p, mode) / m.CorePower(busy(), p, modes.Turbo)
		law := m.ScaleLaw(p, mode)
		if math.Abs(got-law) > 1e-9 {
			t.Errorf("mode %d: busy ratio %v vs design-time law %v", md, got, law)
		}
	}
}

func TestActivityClamped(t *testing.T) {
	m := Default()
	over := busy()
	over.FXU = 3.0
	under := busy()
	under.FXU = -1.0
	hi := m.CorePower(over, plan(), modes.Turbo)
	if hi > m.MaxCorePower()+1e-9 {
		t.Error("activity > 1 not clamped")
	}
	lo := m.CorePower(under, plan(), modes.Turbo)
	if lo >= hi {
		t.Error("negative activity not clamped below full")
	}
}

// Property: power is monotone in every activity factor and always within
// [idle floor, max power].
func TestPowerMonotoneProperty(t *testing.T) {
	m := Default()
	p := plan()
	f := func(a, b [9]uint8, modeRaw uint8) bool {
		mk := func(v [9]uint8) Activity {
			s := func(i int) float64 { return float64(v[i]%101) / 100 }
			return Activity{Fetch: s(0), Decode: s(1), Issue: s(2), FXU: s(3), FPU: s(4), LSU: s(5), BRU: s(6), RegFile: s(7), L2: s(8), Cycles: 1000}
		}
		md := modes.Mode(int(modeRaw) % p.NumModes())
		x, y := mk(a), mk(b)
		// Build an element-wise max.
		hi := Activity{
			Fetch: math.Max(x.Fetch, y.Fetch), Decode: math.Max(x.Decode, y.Decode),
			Issue: math.Max(x.Issue, y.Issue), FXU: math.Max(x.FXU, y.FXU),
			FPU: math.Max(x.FPU, y.FPU), LSU: math.Max(x.LSU, y.LSU),
			BRU: math.Max(x.BRU, y.BRU), RegFile: math.Max(x.RegFile, y.RegFile),
			L2: math.Max(x.L2, y.L2), Cycles: 1000,
		}
		px, ph := m.CorePower(x, p, md), m.CorePower(hi, p, md)
		if px > ph+1e-12 {
			return false
		}
		floor := m.CorePower(Activity{Cycles: 1000}, p, md)
		max := m.CorePower(busy(), p, md)
		return px >= floor-1e-12 && px <= max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIPCHelper(t *testing.T) {
	a := Activity{Committed: 5000, Cycles: 10000}
	if a.IPC() != 0.5 {
		t.Errorf("IPC %v, want 0.5", a.IPC())
	}
	if (Activity{}).IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}

func TestDynamicFraction(t *testing.T) {
	m := Default()
	w := m.DynamicFraction()
	if w <= 0.8 || w >= 1 {
		t.Errorf("dynamic fraction %v outside plausible (0.8,1)", w)
	}
}
