package fleet

import (
	"testing"
	"time"

	"gpm/internal/workload"
)

// benchChips builds router-visible chip state without engines: routing and
// its score math never touch the loop.
func benchChips(n int) []*chip {
	chips := make([]*chip, n)
	for i := range chips {
		chips[i] = &chip{
			id:               i,
			envelopeW:        87,
			turboInstrPerSec: 2.9e9,
			grantW:           60,
			estEff:           3.3e7,
			cores:            make([]coreQueue, 4),
		}
	}
	return chips
}

// BenchmarkFleetRoute measures one placement decision + enqueue per op on a
// 16-chip fleet under the power-aware policy (the most arithmetic-heavy).
func BenchmarkFleetRoute(b *testing.B) {
	f := &Fleet{
		cfg:    Config{Policy: "power-aware", QueueCap: 1 << 30},
		chips:  benchChips(16),
		router: &router{policy: "power-aware", queueCap: 1 << 30},
	}
	reqs := make([]*request, b.N)
	for i := range reqs {
		reqs[i] = &request{cohort: i % 2, arriveSec: float64(i) * 1e-6, cost: 2e5}
	}
	f.arrivals = reqs
	b.ResetTimer()
	f.route(0, float64(b.N)*1e-6+1)
	if f.next != b.N {
		b.Fatalf("routed %d of %d", f.next, b.N)
	}
}

// BenchmarkFleetEpoch measures one arbiter rebalance — telemetry fold,
// hierarchical solve over chips × levels, grant smoothing — on a real
// 8-chip fleet.
func BenchmarkFleetEpoch(b *testing.B) {
	lib := testLib(b)
	cfg := testConfig()
	cfg.Chips = 8
	f, err := New(lib, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer f.closeChips()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.arbiter.rebalance(f, time.Duration(i)*f.cfg.Epoch)
	}
}

// BenchmarkFleetEpochSteady measures the steady-state epoch: telemetry is
// frozen (no chip stepping between rebalances), so after the settle epochs
// every iteration takes the 0-dirty skip path — telemetry fold, generation
// bookkeeping, grant smoothing, but no solve. `make bench-check` gates this
// row's ns/op; the issue's ceiling is 6.5 µs.
func BenchmarkFleetEpochSteady(b *testing.B) {
	lib := testLib(b)
	cfg := testConfig()
	cfg.Chips = 8
	f, err := New(lib, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer f.closeChips()
	settled := false
	for i := 0; i < 8; i++ {
		if f.arbiter.rebalance(f, 0).SolveSkipped {
			settled = true
			break
		}
	}
	if !settled {
		b.Fatal("arbiter never settled into the skip path")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := f.arbiter.rebalance(f, 0); !st.SolveSkipped {
			b.Fatalf("iteration %d re-solved: %+v", i, st)
		}
	}
}

// BenchmarkFleetEndToEnd measures a whole small scenario per op: build,
// serve, arbitrate, finalize.
func BenchmarkFleetEndToEnd(b *testing.B) {
	lib := testLib(b)
	cfg := Config{
		Chips:   4,
		Combo:   workload.FourWay[0],
		Horizon: 5 * time.Millisecond,
		Seed:    7,
		Cohorts: []Cohort{
			{Name: "interactive", Clients: 8, RatePerClient: 1000, CostInstr: 2e5, SLO: 2 * time.Millisecond},
			{Name: "batch", Clients: 4, Process: "gamma", RatePerClient: 400, CostInstr: 1e6, SLO: 10 * time.Millisecond},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(lib, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
