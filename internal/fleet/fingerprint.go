package fleet

import (
	"hash/fnv"
	"math"

	"gpm/internal/obs"
)

// serveHash folds every request's routing and completion outcome — in
// canonical arrival order — into one FNV-64a digest. Any drift in arrival
// generation, placement, admission or completion interpolation moves it.
func serveHash(reqs []*request) uint64 {
	h := fnv.New64a()
	var b [8]byte
	wu := func(u uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	wf := func(f float64) { wu(math.Float64bits(f)) }
	for _, rq := range reqs {
		wu(uint64(rq.cohort)<<40 | uint64(rq.client)<<20 | uint64(uint32(rq.seq)))
		wf(rq.arriveSec)
		wu(uint64(int64(rq.chip))<<32 | uint64(uint32(rq.core)))
		switch {
		case rq.shed:
			wu(1)
		case rq.done:
			wu(2)
			wf(rq.completeSec)
		default:
			wu(3)
			wf(rq.remaining)
		}
	}
	return h.Sum64()
}

// Fingerprint hashes a fleet result bit-exactly: the serving digest, the
// arbiter's epoch log, and every chip's engine fingerprint. This is the
// golden the fleet serving path is pinned by, alongside the cmpsim/trace
// goldens.
func Fingerprint(r *Result) uint64 {
	h := fnv.New64a()
	var b [8]byte
	wu := func(u uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	wf := func(f float64) { wu(math.Float64bits(f)) }
	wu(r.ServeHash)
	wu(uint64(r.Arrived))
	wu(uint64(r.Completed))
	wu(uint64(r.Shed))
	wu(uint64(r.Unfinished))
	for _, e := range r.EpochLog {
		wf(float64(e.Start))
		wf(e.FacilityCapW)
		for i := range e.GrantW {
			wf(e.GrantW[i])
			wf(e.BacklogInstr[i])
			wf(e.DemandInstr[i])
		}
	}
	for _, cs := range r.Cohorts {
		wu(uint64(cs.AttainedSLO))
		wf(cs.ServedInstr)
	}
	for _, cr := range r.ChipResults {
		wu(obs.ResultFingerprint(cr))
	}
	return h.Sum64()
}
