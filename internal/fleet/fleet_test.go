package fleet

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"gpm/internal/config"
	"gpm/internal/modes"
	"gpm/internal/power"
	"gpm/internal/trace"
	"gpm/internal/workload"
)

// Characterizing the combo's benchmarks dominates test wall-clock, so all
// fleet tests share one library (profiles characterize lazily and cache
// inside it).
var (
	libOnce sync.Once
	sharedL *trace.Library
)

func testLib(t testing.TB) *trace.Library {
	t.Helper()
	libOnce.Do(func() {
		cfg := config.Default(4)
		plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
		sharedL = trace.NewLibrary(cfg, power.Default(), plan)
	})
	return sharedL
}

// testConfig is the canonical small scenario: 4 chips, a latency-sensitive
// poisson cohort and a heavier gamma batch cohort, 10 ms horizon.
func testConfig() Config {
	return Config{
		Chips:   4,
		Combo:   workload.FourWay[0], // ammp, mcf, crafty, art
		Horizon: 10 * time.Millisecond,
		Seed:    7,
		Workers: 1,
		Cohorts: []Cohort{
			{
				Name: "interactive", Clients: 8, Process: "poisson",
				RatePerClient: 1000, CostInstr: 2e5, SLO: 2 * time.Millisecond,
				DiurnalAmp: 0.3, DiurnalPeriod: 10 * time.Millisecond,
			},
			{
				Name: "batch", Clients: 4, Process: "gamma", Shape: 2,
				RatePerClient: 400, CostInstr: 1e6, SLO: 10 * time.Millisecond,
				DiurnalPhase: 0.5,
			},
		},
	}
}

func TestFleetSmoke(t *testing.T) {
	lib := testLib(t)
	res, err := Run(lib, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 {
		t.Fatal("no arrivals generated")
	}
	if res.Completed == 0 {
		t.Fatal("no request completed")
	}
	if got := res.Completed + res.Shed + res.Unfinished; got != res.Arrived {
		t.Errorf("request conservation: %d completed + %d shed + %d unfinished != %d arrived",
			res.Completed, res.Shed, res.Unfinished, res.Arrived)
	}
	if len(res.ChipResults) != 4 {
		t.Fatalf("want 4 chip results, got %d", len(res.ChipResults))
	}
	for i, cr := range res.ChipResults {
		if cr.Elapsed != res.Horizon {
			t.Errorf("chip %d elapsed %v, want %v", i, cr.Elapsed, res.Horizon)
		}
		if cr.TotalInstr <= 0 {
			t.Errorf("chip %d committed nothing", i)
		}
	}
	for _, cs := range res.Cohorts {
		if cs.Attainment < 0 || cs.Attainment > 1 {
			t.Errorf("cohort %s attainment %v outside [0,1]", cs.Name, cs.Attainment)
		}
		if cs.Completed > 0 && (math.IsNaN(cs.Latency.P99) || cs.Latency.P99 <= 0) {
			t.Errorf("cohort %s p99 %v invalid with %d completions", cs.Name, cs.Latency.P99, cs.Completed)
		}
	}
	if res.JainFairness <= 0 || res.JainFairness > 1 {
		t.Errorf("Jain fairness %v outside (0,1]", res.JainFairness)
	}
	// The arbiter must respect the facility cap at every epoch.
	for _, e := range res.EpochLog {
		var sum float64
		for _, g := range e.GrantW {
			sum += g
		}
		if sum > e.FacilityCapW*(1+1e-9) {
			t.Errorf("epoch %v: grants %v W exceed facility cap %v W", e.Start, sum, e.FacilityCapW)
		}
	}
	if want := int(res.Horizon/res.Epoch) + boolToInt(res.Horizon%res.Epoch != 0); len(res.EpochLog) != want {
		t.Errorf("epoch log has %d entries, want %d", len(res.EpochLog), want)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestFleetDeterministicAcrossWorkers pins the shared-clock contract: the
// whole scenario — serving digest, epoch log, every chip's engine series —
// is bit-identical for any worker count (same shape as the experiment
// package's TestSweepDeterministicAcrossWorkers).
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	lib := testLib(t)
	ref, err := Run(lib, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	refFP := Fingerprint(ref)
	for _, workers := range []int{2, 8} {
		cfg := testConfig()
		cfg.Workers = workers
		res, err := Run(lib, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if fp := Fingerprint(res); fp != refFP {
			t.Errorf("workers=%d: fingerprint %#x != serial %#x", workers, fp, refFP)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("workers=%d: result differs from serial run", workers)
		}
	}
}

// TestFleetCapCutCascade pins the brownout path: a facility cap cut mid-run
// must flow through the arbiter into strictly lower per-chip grants, into
// the engines' budget series, and into deeper mode vectors.
func TestFleetCapCutCascade(t *testing.T) {
	lib := testLib(t)
	cfg := testConfig()
	cut := 5 * time.Millisecond
	full := 4 * 87.0 // ≈ Σ envelopes; exact value irrelevant, only the drop is
	cfg.FacilityCapW = func(now time.Duration) float64 {
		if now < cut {
			return full
		}
		return 0.4 * full
	}
	res, err := Run(lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var before, after float64
	var nb, na int
	for _, e := range res.EpochLog {
		var sum float64
		for _, g := range e.GrantW {
			sum += g
		}
		if e.Start < cut {
			before += sum
			nb++
		} else {
			after += sum
			na++
			if sum > 0.4*full*(1+1e-9) {
				t.Errorf("epoch %v: grants %v W exceed the cut cap %v W", e.Start, sum, 0.4*full)
			}
		}
	}
	if nb == 0 || na == 0 {
		t.Fatalf("cap cut at %v not straddled by epochs (%d before, %d after)", cut, nb, na)
	}
	if after/float64(na) >= before/float64(nb) {
		t.Errorf("mean grants did not drop across the cut: before %v W, after %v W",
			before/float64(nb), after/float64(na))
	}
	// The cut must reach the engines: per-chip budget series drop too.
	for i, cr := range res.ChipResults {
		deltasBefore := int(cut / cr.DeltaSim)
		var b0, b1 float64
		for d, b := range cr.BudgetW {
			if d < deltasBefore {
				b0 += b
			} else {
				b1 += b
			}
		}
		b0 /= float64(deltasBefore)
		b1 /= float64(len(cr.BudgetW) - deltasBefore)
		if b1 >= b0 {
			t.Errorf("chip %d: engine budget did not drop across the cut (%.1f W → %.1f W)", i, b0, b1)
		}
		// Deeper modes must appear after the cut.
		intervalsBefore := deltasBefore / 10
		deeper := false
		for vi, v := range cr.Modes {
			if vi < intervalsBefore {
				continue
			}
			for _, m := range v {
				if m > 0 {
					deeper = true
				}
			}
		}
		if !deeper {
			t.Errorf("chip %d: no non-Turbo modes after a 60%% cap cut", i)
		}
	}
}

// TestFleetShedsWhenSaturated pins admission control: with a tiny queue cap
// and a heavy offered load, some arrivals must be shed, and shed requests
// count against SLO attainment.
func TestFleetShedsWhenSaturated(t *testing.T) {
	lib := testLib(t)
	cfg := testConfig()
	cfg.QueueCap = 2
	cfg.Cohorts[0].RatePerClient = 4000
	res, err := Run(lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("no arrivals shed despite QueueCap=2 under overload")
	}
	inter := res.Cohorts[0]
	if inter.Attainment >= 1 {
		t.Errorf("interactive attainment %v should reflect shed misses", inter.Attainment)
	}
}

// TestFleetPoliciesDiffer sanity-checks that the placement policy actually
// changes routing (identical outcomes would mean the policy knob is dead).
func TestFleetPoliciesDiffer(t *testing.T) {
	lib := testLib(t)
	fps := map[string]uint64{}
	for _, pol := range []string{"rr", "least-loaded", "power-aware"} {
		cfg := testConfig()
		cfg.Policy = pol
		res, err := Run(lib, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		fps[pol] = res.ServeHash
	}
	if fps["rr"] == fps["least-loaded"] && fps["least-loaded"] == fps["power-aware"] {
		t.Error("all three placement policies produced identical serving digests")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	lib := testLib(t)
	bad := []func(*Config){
		func(c *Config) { c.Chips = 0 },
		func(c *Config) { c.Cohorts = nil },
		func(c *Config) { c.Horizon = -time.Millisecond },
		func(c *Config) { c.Epoch = 750 * time.Microsecond }, // not a multiple of explore
		func(c *Config) { c.Policy = "random" },
		func(c *Config) { c.QueueCap = -1 },
		func(c *Config) { c.Levels = []float64{0.5, 0.9} }, // not decreasing
		func(c *Config) { c.GrantSmoothing = 1.5 },
		func(c *Config) { c.Cohorts[0].RatePerClient = -1 },
		func(c *Config) { c.Cohorts[0].Process = "pareto" },
		func(c *Config) { c.Cohorts[0].SLO = 0; c.Cohorts[0].Name = "x" },
		func(c *Config) { c.Cohorts[0].DiurnalAmp = 1.0 },
	}
	for i, mut := range bad {
		cfg := testConfig()
		mut(&cfg)
		if _, err := New(lib, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
