package fleet

import (
	"os"
	"testing"
	"time"
)

// goldenConfig is the pinned serving scenario: fixed seed, 4 chips, 2
// cohorts, a mid-run facility cap cut. Alongside the cmpsim/trace goldens it
// pins the whole serving path — arrival draws, placement, admission,
// completion interpolation, arbiter grants, per-chip engine series — bit for
// bit.
func goldenConfig() Config {
	cfg := testConfig()
	cfg.FacilityCapW = func(now time.Duration) float64 {
		if now < 5*time.Millisecond {
			return 350
		}
		return 200
	}
	return cfg
}

// goldenWant is the pinned fingerprint. Re-capture after an intentional
// serving-path change with:
//
//	GOLDEN_CAPTURE=1 go test -run TestGoldenFleet ./internal/fleet
const goldenWant = 0x609263523a252422

func TestGoldenFleet(t *testing.T) {
	lib := testLib(t)
	res, err := Run(lib, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := Fingerprint(res)
	if os.Getenv("GOLDEN_CAPTURE") != "" {
		t.Logf("const goldenWant = %#x", got)
		return
	}
	if got != goldenWant {
		t.Errorf("fleet golden fingerprint %#x, want %#x — the serving path moved; "+
			"verify the change is intentional and re-capture with GOLDEN_CAPTURE=1", got, goldenWant)
	}
}
