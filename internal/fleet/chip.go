package fleet

import (
	"time"

	"gpm/internal/cmpsim"
	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/modes"
	"gpm/internal/solver"
	"gpm/internal/trace"
)

// coreQueue is one core's FIFO of routed requests.
type coreQueue struct {
	q            []*request
	backlogInstr float64
}

// chip is one managed CMP in the fleet: an engine loop over the cmpsim
// substrate plus the serving state layered on top of it. The engine's
// committed-instruction rows are the service capacity: a request assigned to
// core k consumes CostInstr of core k's committed instructions, in FIFO
// order, and completes at the interpolated instant within the 50 µs delta
// where its cost is exhausted. Instructions committed while a core's queue
// is empty (or its head has not arrived yet) are idle capacity and are not
// banked — a burst after a quiet period still has to be served at the
// chip's current rate.
type chip struct {
	id   int
	loop *engine.Loop

	// grantW is the arbiter's current budget; the engine's budget function
	// reads it at every explore boundary. Written serially between windows,
	// read by the chip's own worker during them.
	grantW float64

	// envelopeW and turboInstrPerSec are the all-Turbo bootstrap telemetry:
	// the envelope anchors the arbiter's grant levels, the rate seeds its
	// efficiency estimate and normalizes router backlog scores.
	envelopeW        float64
	turboInstrPerSec float64

	cores        []coreQueue
	queued       int     // routed-but-incomplete requests on this chip
	backlogInstr float64 // Σ remaining cost across cores

	// estEff is the EWMA instructions-per-joule estimate the arbiter uses
	// to translate a candidate grant into expected committed instructions.
	estEff float64
	// routedInstrEpoch accumulates routed request cost within the current
	// epoch — the arbiter's arrival predictor for the next one.
	routedInstrEpoch float64
	// lastTotalInstr/lastEnergyJ checkpoint the engine accounting at the
	// previous epoch boundary.
	lastTotalInstr, lastEnergyJ float64

	drained  int // CoreInstr rows already folded into the serving state
	deltasPW int
}

func newChip(lib *trace.Library, cfg Config, id int) (*chip, error) {
	simCfg := lib.Config()
	c := &chip{
		id:       id,
		deltasPW: simCfg.DeltaPerExplore(),
	}

	// Bootstrap telemetry from fresh players: the all-Turbo power envelope
	// and instruction rate over one explore interval. Fresh players peek
	// without advancing, so this does not perturb the engine's own players.
	players, err := lib.Players(cfg.Combo)
	if err != nil {
		return nil, err
	}
	exploreSec := simCfg.Sim.Explore.Seconds()
	for _, pl := range players {
		e, in := pl.Peek(modes.Turbo, exploreSec)
		c.envelopeW += e / exploreSec
		c.turboInstrPerSec += in / exploreSec
	}
	if c.envelopeW > 0 {
		c.estEff = c.turboInstrPerSec / c.envelopeW
	}
	c.grantW = c.envelopeW // pre-arbiter placeholder; epoch 0 overwrites it

	c.loop, err = cmpsim.NewLoop(lib, cfg.Combo, cmpsim.Options{
		Budget:  func(time.Duration) float64 { return c.grantW },
		Solver:  &solver.BB{},
		Horizon: cfg.Horizon,
		Predictor: core.Predictor{
			Plan:           lib.Plan(),
			PowerScale:     powerScale(lib),
			ExploreSeconds: exploreSec,
		},
	})
	if err != nil {
		return nil, err
	}
	c.cores = make([]coreQueue, cfg.Combo.Cores())
	return c, nil
}

// powerScale returns the design-time mode→power scale law, mirroring
// experiment.Env.Predictor.
func powerScale(lib *trace.Library) func(m modes.Mode) float64 {
	model, plan := lib.Model(), lib.Plan()
	return func(m modes.Mode) float64 { return model.ScaleLaw(plan, m) }
}

// advance steps the chip's engine one window (DeltasPerExplore deltas). A
// chip whose engine is done — §5.1 first completion or horizon — stays put:
// its queues stop draining and requests pile into SLO misses, which is
// exactly what a saturated or retired chip looks like to the router.
func (c *chip) advance() error {
	for i := 0; i < c.deltasPW; i++ {
		done, err := c.loop.StepDelta()
		if err != nil {
			return err
		}
		if done {
			break
		}
	}
	return nil
}

// drain folds the engine's new committed-instruction rows into the serving
// state: per delta, per core, requests consume instructions FIFO and
// complete at interpolated instants. Called serially in chip order, so the
// request log is filled in canonical (chip, delta, core) order.
func (c *chip) drain(f *Fleet) {
	rows := c.loop.Result().CoreInstr
	for r := c.drained; r < len(rows); r++ {
		t0 := float64(r) * f.deltaSec
		for k := range rows[r] {
			c.serveDelta(k, t0, f.deltaSec, rows[r][k])
		}
	}
	c.drained = len(rows)
}

// serveDelta advances core k's FIFO across one delta [t0, t0+dt) in which
// the core committed instr instructions (a uniform rate within the delta).
func (c *chip) serveDelta(k int, t0, dt, instr float64) {
	cq := &c.cores[k]
	if len(cq.q) == 0 || instr <= 0 {
		return
	}
	rate := instr / dt
	end := t0 + dt
	cursor := t0
	for len(cq.q) > 0 {
		rq := cq.q[0]
		if rq.arriveSec > cursor {
			cursor = rq.arriveSec // idle until the head arrives; capacity is not banked
		}
		if cursor >= end {
			break
		}
		avail := (end - cursor) * rate
		if avail < rq.remaining {
			rq.remaining -= avail
			cq.backlogInstr -= avail
			c.backlogInstr -= avail
			break
		}
		cursor += rq.remaining / rate
		cq.backlogInstr -= rq.remaining
		c.backlogInstr -= rq.remaining
		rq.remaining = 0
		rq.done = true
		rq.completeSec = cursor
		c.queued--
		cq.q = cq.q[1:]
	}
}

// enqueue routes one request onto core k.
func (c *chip) enqueue(k int, rq *request) {
	rq.chip, rq.core = c.id, k
	rq.remaining = rq.cost
	cq := &c.cores[k]
	cq.q = append(cq.q, rq)
	cq.backlogInstr += rq.cost
	c.backlogInstr += rq.cost
	c.queued++
	c.routedInstrEpoch += rq.cost
}

// leastLoadedCore picks the core with the smallest backlog, lowest index on
// ties.
func (c *chip) leastLoadedCore() int {
	best := 0
	for k := 1; k < len(c.cores); k++ {
		if c.cores[k].backlogInstr < c.cores[best].backlogInstr {
			best = k
		}
	}
	return best
}
