package fleet

// router places arrivals onto chips under admission control. Placement is
// decided serially in canonical arrival order against live backlog state —
// each assignment updates the backlog the next one sees — so the placement
// sequence is deterministic and independent of worker count.
type router struct {
	policy   string
	queueCap int
	rr       int // next round-robin candidate
}

func newRouter(cfg Config) *router {
	return &router{policy: cfg.Policy, queueCap: cfg.QueueCap}
}

func (r *router) full(c *chip) bool { return c.queued >= r.queueCap }

// pick selects the target chip for one request, or -1 to shed. Policies:
//
//   - rr: next chip in rotation, skipping full ones — oblivious spreading;
//   - least-loaded: smallest backlog (remaining queued instructions),
//     lowest id on ties — classic join-shortest-queue at chip granularity;
//   - power-aware: highest grant-per-backlog score
//     grantW / (1 + backlogInstr/turboInstrPerSec) — steer work toward
//     chips the arbiter is currently powering, so placement and the
//     facility budget pull in the same direction.
func (r *router) pick(chips []*chip) int {
	switch r.policy {
	case "rr":
		n := len(chips)
		for k := 0; k < n; k++ {
			i := (r.rr + k) % n
			if !r.full(chips[i]) {
				r.rr = (i + 1) % n
				return i
			}
		}
		return -1
	case "power-aware":
		best, bestScore := -1, 0.0
		for i, c := range chips {
			if r.full(c) {
				continue
			}
			backlogSec := 0.0
			if c.turboInstrPerSec > 0 {
				backlogSec = c.backlogInstr / c.turboInstrPerSec
			}
			score := c.grantW / (1 + backlogSec)
			if best < 0 || score > bestScore {
				best, bestScore = i, score
			}
		}
		return best
	default: // least-loaded
		best := -1
		for i, c := range chips {
			if r.full(c) {
				continue
			}
			if best < 0 || c.backlogInstr < chips[best].backlogInstr {
				best = i
			}
		}
		return best
	}
}

// route admits every arrival in [t0, t1) seconds: pick a chip (shed when all
// are full), then the chip's least-loaded core.
func (f *Fleet) route(t0, t1 float64) {
	for f.next < len(f.arrivals) && f.arrivals[f.next].arriveSec < t1 {
		rq := f.arrivals[f.next]
		f.next++
		i := f.router.pick(f.chips)
		if i < 0 {
			rq.shed = true
			rq.chip, rq.core = -1, -1
			continue
		}
		c := f.chips[i]
		c.enqueue(c.leastLoadedCore(), rq)
	}
}
