package fleet

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach mirrors the experiment package's bounded fan-out primitive (which
// cannot be imported here without a cycle: experiment drives fleet sweeps).
// fn(i) runs for every i in [0, n) on at most `workers` goroutines, jobs
// claimed through an atomic cursor; the caller's result placement — indexed
// writes into per-chip state — is deterministic regardless of worker count,
// and errors join in index order.
func forEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var cursor atomic.Int64
	work := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	}
	if workers <= 1 {
		work()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers - 1)
		for k := 0; k < workers-1; k++ {
			go func() {
				defer wg.Done()
				work()
			}()
		}
		work()
		wg.Wait()
	}
	return errors.Join(errs...)
}

// poolWorkers resolves a worker bound (0 = GOMAXPROCS).
func poolWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}
