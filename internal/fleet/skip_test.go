package fleet

import (
	"reflect"
	"testing"
	"time"

	"gpm/internal/modes"
)

// TestFleetArbiterSteadyStateSkip pins the fleet leg of the change-detection
// handshake: with frozen chip telemetry (no stepping between rebalances, so
// every chip's (estEff, demand) pair is bit-identical epoch to epoch) the
// arbiter must converge to skipping the epoch solve outright — SolveSkipped
// with zero dirty chips and an unmoved grant vector — and any single
// discontinuity (a cap move, one chip's demand changing) must force a real
// solve before skipping resumes.
func TestFleetArbiterSteadyStateSkip(t *testing.T) {
	lib := testLib(t)
	cfg := testConfig()
	capNow := 0.0
	cfg.FacilityCapW = func(time.Duration) float64 { return capNow }
	f, err := New(lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.closeChips()
	var env float64
	for _, c := range f.chips {
		env += c.envelopeW
	}
	capNow = 0.9 * env

	// Epoch 0: everything is dirty (fresh matrices) and must solve.
	st := f.arbiter.rebalance(f, 0)
	if st.SolveSkipped {
		t.Fatal("epoch 0 skipped the bootstrap solve")
	}
	if st.DirtyChips != len(f.chips) {
		t.Fatalf("epoch 0 DirtyChips = %d, want %d (fresh matrices)", st.DirtyChips, len(f.chips))
	}

	// With telemetry frozen, dirt must drop to zero immediately and the skip
	// must engage within a few epochs (the Hier session needs one repeat solve
	// to attest its share state stable).
	settled := -1
	var vec modes.Vector
	for e := 1; e <= 6; e++ {
		vec = append(vec[:0], f.arbiter.lastVec...)
		st = f.arbiter.rebalance(f, 0)
		if st.DirtyChips != 0 {
			t.Fatalf("epoch %d: DirtyChips = %d with frozen telemetry", e, st.DirtyChips)
		}
		if st.SolveSkipped {
			settled = e
			break
		}
	}
	if settled < 0 {
		t.Fatal("steady state never skipped the epoch solve")
	}
	if !reflect.DeepEqual(f.arbiter.lastVec, vec) {
		t.Fatalf("skip moved the grant vector: %v -> %v", vec, f.arbiter.lastVec)
	}

	// The skip persists, the grant vector stays put, and the cap invariant
	// (Σ grants ≤ cap — smoothing and rescale still run on skip epochs) holds.
	for e := 0; e < 3; e++ {
		st = f.arbiter.rebalance(f, 0)
		if !st.SolveSkipped || st.DirtyChips != 0 {
			t.Fatalf("settled epoch %d: SolveSkipped=%v DirtyChips=%d", e, st.SolveSkipped, st.DirtyChips)
		}
		if !reflect.DeepEqual(f.arbiter.lastVec, vec) {
			t.Fatalf("settled epoch %d moved the grant vector", e)
		}
		var sum float64
		for _, g := range st.GrantW {
			sum += g
		}
		if sum > st.FacilityCapW*(1+1e-12) {
			t.Fatalf("settled epoch %d: Σ grants %v exceeds cap %v", e, sum, st.FacilityCapW)
		}
	}

	// A cap move alone — telemetry still frozen, zero dirty chips — must
	// force a fresh solve.
	capNow = 0.5 * env
	st = f.arbiter.rebalance(f, 0)
	if st.SolveSkipped {
		t.Fatal("cap cut was answered by the skip path")
	}
	if st.DirtyChips != 0 {
		t.Fatalf("cap cut dirtied %d chips; the cap alone should have forced the solve", st.DirtyChips)
	}
	resumed := false
	for e := 0; e < 6; e++ {
		if f.arbiter.rebalance(f, 0).SolveSkipped {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Fatal("skipping never resumed after the cap settled")
	}

	// One chip's demand changing dirties exactly that chip and re-solves.
	f.chips[1].backlogInstr = 5e8
	st = f.arbiter.rebalance(f, 0)
	if st.SolveSkipped {
		t.Fatal("dirty chip was answered by the skip path")
	}
	if st.DirtyChips != 1 {
		t.Fatalf("DirtyChips = %d after one chip's demand moved, want 1", st.DirtyChips)
	}
}
