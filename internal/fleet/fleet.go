// Package fleet is the datacenter tier: a deterministic discrete-event
// serving layer over N managed chips, each running the internal/engine
// control loop on the trace-based cmpsim substrate. Seeded open-loop clients
// emit requests (Poisson/Gamma/Weibull inter-arrivals, per-cohort SLO
// classes, diurnal modulation); a router places them onto chips under
// admission control; a facility-level arbiter redistributes the total
// facility power cap across chips every epoch with the solver/hier
// machinery, so per-chip budgets track offered load and a facility cap cut
// cascades: cap → arbiter grants → per-chip engine budgets → mode vectors.
//
// Time advances on one shared event clock in windows of one explore interval
// (500 µs). Each window runs four strictly ordered phases:
//
//  1. epoch boundary (every Epoch): fold per-chip telemetry, rebalance the
//     facility cap into per-chip grants (serial);
//  2. route the window's arrivals in canonical (time, cohort, client, seq)
//     order against start-of-window queue state (serial);
//  3. advance every chip engine one window — DeltasPerExplore StepDelta
//     calls — on the bounded worker pool (parallel; chips are independent
//     within a window, so any worker count is bit-identical);
//  4. drain completions chip-by-chip, core-by-core, delta-by-delta in index
//     order, interpolating completion instants inside each 50 µs delta from
//     the committed-instruction row (serial).
//
// The serial phases are the only cross-chip coupling, so the whole run is a
// pure function of (Config, Library) — pinned by the fleet golden
// fingerprint and TestFleetDeterministicAcrossWorkers.
package fleet

import (
	"fmt"
	"time"

	"gpm/internal/engine"
	"gpm/internal/metrics"
	"gpm/internal/trace"
	"gpm/internal/workload"
)

// Cohort is one client population sharing an arrival process, a request
// shape and an SLO latency class.
type Cohort struct {
	// Name labels the cohort in reports.
	Name string
	// Clients is the number of independent open-loop clients. Each gets its
	// own PRNG substream, so adding a client never perturbs the others.
	Clients int
	// Process selects the inter-arrival distribution: "poisson" (default),
	// "gamma" or "weibull". All are parameterized to a mean inter-arrival of
	// 1/RatePerClient; Shape controls burstiness for gamma/weibull.
	Process string
	// Shape is the gamma/weibull shape parameter (default 2; ignored for
	// poisson). Shape < 1 is burstier than Poisson, > 1 smoother.
	Shape float64
	// RatePerClient is the mean request rate per client in requests/second.
	RatePerClient float64
	// CostInstr is the committed instructions one request consumes on its
	// assigned core.
	CostInstr float64
	// SLO is the latency target: a request "attains" the SLO when it
	// completes within SLO of its arrival. Shed and unfinished requests
	// count as misses.
	SLO time.Duration
	// DiurnalAmp in [0, 1) modulates the arrival rate sinusoidally:
	// rate(t) = RatePerClient · (1 + DiurnalAmp·sin(2π(t/Period + Phase))).
	// 0 disables modulation.
	DiurnalAmp float64
	// DiurnalPeriod is the modulation period (default: the horizon).
	DiurnalPeriod time.Duration
	// DiurnalPhase in [0, 1) offsets the cohort's phase, so cohorts can
	// peak at different times.
	DiurnalPhase float64
}

// Config describes one fleet scenario.
type Config struct {
	// Chips is the fleet size; every chip runs Combo under its own engine.
	Chips int
	// Combo is the per-chip benchmark assignment (the background work whose
	// committed instructions serve requests).
	Combo workload.Combo
	// Cohorts is the client mix; at least one is required.
	Cohorts []Cohort
	// Horizon is the simulated duration (default 20 ms).
	Horizon time.Duration
	// Epoch is the arbiter rebalance period; must be a multiple of the
	// explore interval (default 4 explore intervals = 2 ms).
	Epoch time.Duration
	// FacilityCapW returns the facility power cap at time t. Nil defaults
	// to CapFrac × Σ chip envelopes. Time-varying caps model brownouts: the
	// arbiter re-reads the cap every epoch, so a mid-run cut cascades into
	// the per-chip grants within one epoch.
	FacilityCapW func(t time.Duration) float64
	// CapFrac scales the default constant cap (default 1.0); ignored when
	// FacilityCapW is set.
	CapFrac float64
	// Policy is the placement policy: "least-loaded" (default), "rr" or
	// "power-aware".
	Policy string
	// QueueCap bounds queued-but-incomplete requests per chip; arrivals that
	// find every chip full are shed (default 64).
	QueueCap int
	// Levels are the grant fractions of a chip's envelope the arbiter may
	// assign, highest first (default 1.0 … 0.25). The arbiter solves a
	// budgeted allocation with chips as "cores" and levels as "modes".
	Levels []float64
	// GrantSmoothing in [0, 1) is the per-chip EWMA on arbiter grants:
	// grant = β·previous + (1−β)·solved (default 0.3). It damps epoch-to-
	// epoch grant oscillation on bursty demand.
	GrantSmoothing float64
	// HierAlpha in [0, 1) is solver/hier's share smoothing across epochs
	// (default 0.3); active when Chips > ClusterSize.
	HierAlpha float64
	// ClusterSize groups chips for the hierarchical arbiter solve
	// (default 4).
	ClusterSize int
	// Seed drives every arrival draw through split substreams.
	Seed int64
	// Workers bounds the shared worker pool stepping chip engines
	// (0 = GOMAXPROCS). Results are bit-identical for every value.
	Workers int
}

// withDefaults fills zero fields and validates.
func (cfg Config) withDefaults(window time.Duration) (Config, error) {
	if cfg.Chips < 1 {
		return cfg, fmt.Errorf("fleet: Chips must be >= 1, got %d", cfg.Chips)
	}
	if len(cfg.Cohorts) == 0 {
		return cfg, fmt.Errorf("fleet: at least one cohort required")
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 20 * time.Millisecond
	}
	if cfg.Horizon <= 0 {
		return cfg, fmt.Errorf("fleet: Horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 4 * window
	}
	if cfg.Epoch < window || cfg.Epoch%window != 0 {
		return cfg, fmt.Errorf("fleet: Epoch %v must be a positive multiple of the explore interval %v", cfg.Epoch, window)
	}
	if cfg.CapFrac == 0 {
		cfg.CapFrac = 1.0
	}
	if cfg.CapFrac < 0 {
		return cfg, fmt.Errorf("fleet: CapFrac must be positive, got %v", cfg.CapFrac)
	}
	if cfg.Policy == "" {
		cfg.Policy = "least-loaded"
	}
	switch cfg.Policy {
	case "rr", "least-loaded", "power-aware":
	default:
		return cfg, fmt.Errorf("fleet: unknown placement policy %q (want rr, least-loaded or power-aware)", cfg.Policy)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 64
	}
	if cfg.QueueCap < 1 {
		return cfg, fmt.Errorf("fleet: QueueCap must be >= 1, got %d", cfg.QueueCap)
	}
	if cfg.Levels == nil {
		cfg.Levels = []float64{1.00, 0.85, 0.70, 0.55, 0.40, 0.25}
	}
	prev := 2.0
	for _, l := range cfg.Levels {
		if l <= 0 || l > 1 || l >= prev {
			return cfg, fmt.Errorf("fleet: Levels must be strictly decreasing fractions in (0, 1], got %v", cfg.Levels)
		}
		prev = l
	}
	if cfg.GrantSmoothing == 0 {
		cfg.GrantSmoothing = 0.3
	}
	if cfg.GrantSmoothing < 0 || cfg.GrantSmoothing >= 1 {
		return cfg, fmt.Errorf("fleet: GrantSmoothing must be in [0, 1), got %v", cfg.GrantSmoothing)
	}
	if cfg.HierAlpha == 0 {
		cfg.HierAlpha = 0.3
	}
	if cfg.HierAlpha < 0 || cfg.HierAlpha >= 1 {
		return cfg, fmt.Errorf("fleet: HierAlpha must be in [0, 1), got %v", cfg.HierAlpha)
	}
	if cfg.ClusterSize == 0 {
		cfg.ClusterSize = 4
	}
	if cfg.ClusterSize < 1 {
		return cfg, fmt.Errorf("fleet: ClusterSize must be >= 1, got %d", cfg.ClusterSize)
	}
	for i := range cfg.Cohorts {
		co := &cfg.Cohorts[i]
		if co.Name == "" {
			co.Name = fmt.Sprintf("cohort%d", i)
		}
		if co.Clients < 1 {
			return cfg, fmt.Errorf("fleet: cohort %s: Clients must be >= 1", co.Name)
		}
		if co.Process == "" {
			co.Process = "poisson"
		}
		switch co.Process {
		case "poisson", "gamma", "weibull":
		default:
			return cfg, fmt.Errorf("fleet: cohort %s: unknown process %q (want poisson, gamma or weibull)", co.Name, co.Process)
		}
		if co.Shape == 0 {
			co.Shape = 2
		}
		if co.Shape <= 0 {
			return cfg, fmt.Errorf("fleet: cohort %s: Shape must be positive", co.Name)
		}
		if co.RatePerClient <= 0 {
			return cfg, fmt.Errorf("fleet: cohort %s: RatePerClient must be positive", co.Name)
		}
		if co.CostInstr <= 0 {
			return cfg, fmt.Errorf("fleet: cohort %s: CostInstr must be positive", co.Name)
		}
		if co.SLO <= 0 {
			return cfg, fmt.Errorf("fleet: cohort %s: SLO must be positive", co.Name)
		}
		if co.DiurnalAmp < 0 || co.DiurnalAmp >= 1 {
			return cfg, fmt.Errorf("fleet: cohort %s: DiurnalAmp must be in [0, 1)", co.Name)
		}
		if co.DiurnalPeriod == 0 {
			co.DiurnalPeriod = cfg.Horizon
		}
		if co.DiurnalPhase < 0 || co.DiurnalPhase >= 1 {
			return cfg, fmt.Errorf("fleet: cohort %s: DiurnalPhase must be in [0, 1)", co.Name)
		}
	}
	return cfg, nil
}

// request is one unit of work flowing through the fleet.
type request struct {
	cohort, client, seq int
	arriveSec           float64
	cost                float64

	// Routing outcome.
	shed       bool
	chip, core int

	// Service state.
	remaining   float64
	done        bool
	completeSec float64
}

// Fleet is one scenario instance; New builds it, Run drives it to the
// horizon. A Fleet is single-use.
type Fleet struct {
	cfg Config
	lib *trace.Library

	window    time.Duration
	windowSec float64
	deltaSec  float64
	deltasPW  int // deltas per window
	windowsPE int // windows per epoch

	chips    []*chip
	router   *router
	arbiter  *arbiter
	arrivals []*request
	next     int // cursor into arrivals

	epochLog []EpochStats
	ran      bool
}

// New builds the fleet: chip engines (bootstrap-probed, first decision
// pending), the pre-generated arrival schedule, the router and the arbiter.
func New(lib *trace.Library, cfg Config) (*Fleet, error) {
	simCfg := lib.Config()
	window := simCfg.Sim.Explore
	cfg, err := cfg.withDefaults(window)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:       cfg,
		lib:       lib,
		window:    window,
		windowSec: window.Seconds(),
		deltaSec:  simCfg.Sim.DeltaSim.Seconds(),
		deltasPW:  simCfg.DeltaPerExplore(),
		windowsPE: int(cfg.Epoch / window),
	}
	for i := 0; i < cfg.Chips; i++ {
		c, err := newChip(lib, cfg, i)
		if err != nil {
			f.closeChips()
			return nil, err
		}
		f.chips = append(f.chips, c)
	}
	f.arrivals, err = generateArrivals(cfg)
	if err != nil {
		f.closeChips()
		return nil, err
	}
	f.router = newRouter(cfg)
	f.arbiter = newArbiter(lib, cfg, f.chips)
	return f, nil
}

func (f *Fleet) closeChips() {
	for _, c := range f.chips {
		c.loop.Close()
	}
	if f.arbiter != nil {
		f.arbiter.close()
	}
}

// capW resolves the facility cap at time t.
func (f *Fleet) capW(t time.Duration) float64 {
	if f.cfg.FacilityCapW != nil {
		return f.cfg.FacilityCapW(t)
	}
	var env float64
	for _, c := range f.chips {
		env += c.envelopeW
	}
	return f.cfg.CapFrac * env
}

// Run drives the fleet to the horizon and returns the scenario result.
func (f *Fleet) Run() (*Result, error) {
	if f.ran {
		return nil, fmt.Errorf("fleet: Fleet is single-use; build a new one per run")
	}
	f.ran = true
	defer f.closeChips()

	nw := int((f.cfg.Horizon + f.window - 1) / f.window)
	for w := 0; w < nw; w++ {
		start := time.Duration(w) * f.window
		if w%f.windowsPE == 0 {
			f.epochLog = append(f.epochLog, f.arbiter.rebalance(f, start))
		}
		f.route(float64(w)*f.windowSec, float64(w+1)*f.windowSec)
		err := forEach(f.workers(), len(f.chips), func(i int) error {
			return f.chips[i].advance()
		})
		if err != nil {
			return nil, err
		}
		for _, c := range f.chips {
			c.drain(f)
		}
	}
	return f.finalize()
}

func (f *Fleet) workers() int {
	return poolWorkers(f.cfg.Workers)
}

// CohortStats is the per-cohort serving outcome.
type CohortStats struct {
	Name string
	// Arrived counts generated requests; Completed those served to
	// completion; Shed those rejected by admission control; Unfinished
	// those still queued or in service at the horizon.
	Arrived, Completed, Shed, Unfinished int
	// AttainedSLO counts completions within the cohort's SLO; Attainment is
	// AttainedSLO/Arrived (shed and unfinished requests count as misses).
	AttainedSLO int
	Attainment  float64
	// Latency summarizes completed requests' latencies in seconds.
	Latency     metrics.LatencyPercentiles
	MeanLatency float64
	// ServedInstr is the instruction volume of completed requests.
	ServedInstr float64
}

// EpochStats is one arbiter epoch: the cap it saw and the grants it issued.
type EpochStats struct {
	Start time.Duration
	// FacilityCapW is the cap read at the epoch boundary; GrantW the
	// resulting per-chip budgets (Σ GrantW ≤ FacilityCapW).
	FacilityCapW float64
	GrantW       []float64
	// BacklogInstr and DemandInstr snapshot the queues the arbiter saw.
	BacklogInstr []float64
	DemandInstr  []float64
	// DirtyChips counts chips whose efficiency estimate or demand changed
	// since the previous epoch (the generation handshake's dirty set);
	// SolveSkipped reports the arbiter reused the previous grant vector
	// outright because nothing changed and the session attested stability.
	// Neither field is folded into Fingerprint (both are solve-cost
	// telemetry, not allocation outcomes).
	DirtyChips   int
	SolveSkipped bool
}

// Result is one fleet scenario outcome.
type Result struct {
	Chips   int
	Policy  string
	Horizon time.Duration
	Epoch   time.Duration

	Cohorts  []CohortStats
	EpochLog []EpochStats

	// Totals across cohorts.
	Arrived, Completed, Shed, Unfinished int
	// ThroughputRPS is completed requests per simulated second.
	ThroughputRPS float64
	// JainFairness is Jain's index over per-cohort SLO attainment.
	JainFairness float64
	// ServedInstr sums completed requests' instruction volume; TotalInstr
	// and EnergyJ aggregate the chips' committed work and energy.
	ServedInstr float64
	TotalInstr  float64
	EnergyJ     float64
	// AvgFacilityPowerW is fleet energy over the horizon.
	AvgFacilityPowerW float64

	// ChipResults are the per-chip engine results (mode vectors, power
	// series, budgets) in chip order.
	ChipResults []*engine.Result

	// ServeHash folds every request's routing and completion fields into
	// one digest; Fingerprint combines it with the chip results, so any
	// drift in the serving path moves the golden.
	ServeHash uint64
}

// finalize seals chip engines and folds the request log into per-cohort
// statistics.
func (f *Fleet) finalize() (*Result, error) {
	r := &Result{
		Chips:    f.cfg.Chips,
		Policy:   f.cfg.Policy,
		Horizon:  f.cfg.Horizon,
		Epoch:    f.cfg.Epoch,
		EpochLog: f.epochLog,
	}
	for _, c := range f.chips {
		cr := c.loop.Finish()
		r.ChipResults = append(r.ChipResults, cr)
		r.TotalInstr += cr.TotalInstr
		r.EnergyJ += cr.EnergyJ
	}
	r.AvgFacilityPowerW = r.EnergyJ / f.cfg.Horizon.Seconds()

	lat := make([][]float64, len(f.cfg.Cohorts))
	r.Cohorts = make([]CohortStats, len(f.cfg.Cohorts))
	for i, co := range f.cfg.Cohorts {
		r.Cohorts[i].Name = co.Name
	}
	for _, rq := range f.arrivals {
		cs := &r.Cohorts[rq.cohort]
		cs.Arrived++
		switch {
		case rq.shed:
			cs.Shed++
		case rq.done:
			cs.Completed++
			l := rq.completeSec - rq.arriveSec
			lat[rq.cohort] = append(lat[rq.cohort], l)
			if l <= f.cfg.Cohorts[rq.cohort].SLO.Seconds() {
				cs.AttainedSLO++
			}
			cs.ServedInstr += rq.cost
		default:
			cs.Unfinished++
		}
	}
	attain := make([]float64, len(r.Cohorts))
	for i := range r.Cohorts {
		cs := &r.Cohorts[i]
		if cs.Arrived > 0 {
			cs.Attainment = float64(cs.AttainedSLO) / float64(cs.Arrived)
		}
		cs.Latency = metrics.SummarizeLatency(lat[i])
		cs.MeanLatency = metrics.ArithmeticMean(lat[i])
		attain[i] = cs.Attainment
		r.Arrived += cs.Arrived
		r.Completed += cs.Completed
		r.Shed += cs.Shed
		r.Unfinished += cs.Unfinished
		r.ServedInstr += cs.ServedInstr
	}
	r.ThroughputRPS = float64(r.Completed) / f.cfg.Horizon.Seconds()
	r.JainFairness = metrics.JainFairness(attain)
	r.ServeHash = serveHash(f.arrivals)
	return r, nil
}

// Run is the one-call convenience: build and drive a scenario.
func Run(lib *trace.Library, cfg Config) (*Result, error) {
	f, err := New(lib, cfg)
	if err != nil {
		return nil, err
	}
	return f.Run()
}
