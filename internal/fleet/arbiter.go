package fleet

import (
	"sync/atomic"
	"time"

	"gpm/internal/modes"
	"gpm/internal/solver"
	"gpm/internal/trace"
)

// arbiterGenID hands out change-tracking identities for arbiter instance
// matrices (one per arbiter lifetime; 0 means untracked). Each arbiter owns
// its session, so uniqueness only has to hold per session — the atomic makes
// it hold globally anyway.
var arbiterGenID atomic.Uint64

// arbiter redistributes the facility power cap across chips once per epoch.
// The rebalance is a budgeted mode-allocation instance with chips as "cores"
// and grant levels as "modes": Power[i][j] is level j's wattage for chip i
// (a fraction of its envelope), Instr[i][j] the committed instructions the
// grant is expected to buy — min(demand, estEff·W·epoch), so a chip with no
// backlog bids nothing and the solver's lower-power tie-break parks it at
// the deepest level. The instance is solved by solver.Hier — clusters of
// ClusterSize chips, exact BB inside each, slack rebalanced between them,
// and EWMA share smoothing (HierAlpha) carrying grants across epochs — the
// same machinery that scales the on-chip decision to 1000 cores, one level
// up. The Hier runs inside a solver.Session: the share state lives there,
// each epoch's solve is warm-started from the previous epoch's grant vector,
// and the instance matrices reuse one flat backing, so the steady-state
// epoch decision is allocation-free. A per-chip grant EWMA (GrantSmoothing)
// then damps epoch-to-epoch oscillation, and grants rescale to the cap
// whenever smoothing overshoots it, so Σ grants ≤ cap holds at every epoch —
// including the epoch right after a mid-run cap cut, which is how a facility
// brownout cascades into per-chip budgets and, through each engine's next
// decision, mode vectors.
type arbiter struct {
	levels   []float64
	plan     modes.Plan // len(Levels) == len(levels); solvers only read the mode count
	sess     *solver.Session
	beta     float64
	epochSec float64

	// Reused epoch-solve state: the instance matrices (rows sliced from the
	// flat backings) and the previous epoch's solution as the warm hint.
	power, instr         [][]float64
	powerFlat, instrFlat []float64
	lastVec              modes.Vector
	lastInstr            float64

	// Generation handshake, mirrored from core.MatricesInto: chip i's matrix
	// rows are pure functions of (estEff, demand) under fixed levels and
	// envelope, so rebalance refills and stamps only the chips whose inputs
	// changed. The session gen-checks its memo against gens/gen, and when no
	// chip is dirty, the cap is bit-equal, and the session attests stability,
	// the epoch solve is skipped outright and lastVec reused.
	gens       []uint64
	gen        uint64
	genID      uint64
	lastEff    []float64
	lastDemand []float64
	lastCapW   float64
	haveCap    bool
}

func newArbiter(lib *trace.Library, cfg Config, chips []*chip) *arbiter {
	a := &arbiter{
		levels:   cfg.Levels,
		beta:     cfg.GrantSmoothing,
		epochSec: cfg.Epoch.Seconds(),
		sess: solver.NewSession(&solver.Hier{
			ClusterSize: cfg.ClusterSize,
			Inner:       &solver.BB{},
			Alpha:       cfg.HierAlpha,
		}),
	}
	// The solver reads only the plan's mode count; voltage scales are
	// cosmetic here but keep the plan valid.
	simPlan := lib.Plan()
	a.plan = modes.Plan{NominalVdd: simPlan.NominalVdd, TransitionRateVPerUs: simPlan.TransitionRateVPerUs}
	for j, frac := range cfg.Levels {
		a.plan.Levels = append(a.plan.Levels, modes.Level{
			Name:   levelName(j),
			VScale: frac,
			FScale: frac,
		})
	}
	return a
}

// close releases the arbiter's solver session. Idempotent.
func (a *arbiter) close() {
	if a.sess != nil {
		a.sess.Close()
		a.sess = nil
	}
}

func levelName(j int) string {
	if j == 0 {
		return "Full"
	}
	return "G" + string(rune('0'+j))
}

// ensureMatrices sizes the reused instance matrices for n chips × m levels,
// reporting whether they (and the change-tracking state) were rebuilt — a
// rebuild marks every chip dirty for the coming fill.
func (a *arbiter) ensureMatrices(n, m int) bool {
	if len(a.power) == n && len(a.powerFlat) == n*m {
		return false
	}
	a.powerFlat = make([]float64, n*m)
	a.instrFlat = make([]float64, n*m)
	a.power = make([][]float64, n)
	a.instr = make([][]float64, n)
	for i := 0; i < n; i++ {
		a.power[i] = a.powerFlat[i*m : (i+1)*m : (i+1)*m]
		a.instr[i] = a.instrFlat[i*m : (i+1)*m : (i+1)*m]
	}
	a.genID = arbiterGenID.Add(1)
	a.gen = 0
	a.gens = make([]uint64, n)
	a.lastEff = make([]float64, n)
	a.lastDemand = make([]float64, n)
	return true
}

// rebalance folds each chip's telemetry since the last epoch, solves the
// facility allocation at time now, and publishes the new grants. Called
// serially at window boundaries, strictly before the window's routing and
// chip stepping.
func (a *arbiter) rebalance(f *Fleet, now time.Duration) EpochStats {
	n := len(f.chips)
	st := EpochStats{
		Start:        now,
		FacilityCapW: f.capW(now),
		GrantW:       make([]float64, n),
		BacklogInstr: make([]float64, n),
		DemandInstr:  make([]float64, n),
	}

	fresh := a.ensureMatrices(n, len(a.levels))
	power, instr := a.power, a.instr
	newGen := a.gen + 1
	dirty := 0
	for i, c := range f.chips {
		// Efficiency telemetry: committed instructions per joule over the
		// last epoch, EWMA-blended so one noisy epoch cannot whipsaw the
		// capacity model. Epoch 0 runs on the all-Turbo bootstrap estimate.
		res := c.loop.Result()
		if dE := res.EnergyJ - c.lastEnergyJ; dE > 0 {
			obs := (res.TotalInstr - c.lastTotalInstr) / dE
			c.estEff = 0.5*c.estEff + 0.5*obs
		}
		c.lastTotalInstr, c.lastEnergyJ = res.TotalInstr, res.EnergyJ

		// Demand: what is already queued plus what the last epoch routed
		// here (the open-loop arrival predictor for the next one).
		demand := c.backlogInstr + c.routedInstrEpoch
		c.routedInstrEpoch = 0
		st.BacklogInstr[i] = c.backlogInstr
		st.DemandInstr[i] = demand

		// Chip i's rows depend only on (estEff, demand): skip the fill and
		// the generation stamp when both are bit-identical to last epoch.
		if !fresh && c.estEff == a.lastEff[i] && demand == a.lastDemand[i] {
			continue
		}
		a.gens[i] = newGen
		a.lastEff[i] = c.estEff
		a.lastDemand[i] = demand
		dirty++
		for j, frac := range a.levels {
			w := frac * c.envelopeW
			power[i][j] = w
			cap := c.estEff * w * a.epochSec
			if cap > demand {
				cap = demand
			}
			instr[i][j] = cap
		}
	}
	if dirty > 0 {
		a.gen = newGen
	}
	st.DirtyChips = dirty

	// Steady-state shortcut: nothing changed (no dirty chip, bit-equal cap)
	// and the session attests that re-running the previous solve would
	// reproduce its vector without moving internal state — so skip it and
	// reuse the grant vector. Grant smoothing and cap rescaling still run.
	if dirty == 0 && a.haveCap && st.FacilityCapW == a.lastCapW &&
		len(a.lastVec) == n && a.sess.ResultStable() {
		st.SolveSkipped = true
	} else {
		inst := solver.Instance{
			Plan:      a.plan,
			BudgetW:   st.FacilityCapW,
			Power:     power,
			Instr:     instr,
			FlatPower: a.powerFlat,
			FlatInstr: a.instrFlat,
			Gens:      a.gens,
			Gen:       a.gen,
			GenID:     a.genID,
		}
		v, _ := a.sess.Solve(inst, solver.Hint{Vector: a.lastVec, Instr: a.lastInstr})
		a.lastVec = append(a.lastVec[:0], v...) // v aliases session scratch
		a.lastInstr = inst.VectorInstr(a.lastVec)
	}
	a.lastCapW = st.FacilityCapW
	a.haveCap = true

	var sum float64
	for i := range f.chips {
		g := power[i][a.lastVec[i]]
		if a.beta > 0 {
			g = a.beta*f.chips[i].grantW + (1-a.beta)*g
		}
		st.GrantW[i] = g
		sum += g
	}
	// Smoothing can hold grants above a freshly cut cap for one blend step;
	// the cap is a hard facility limit, so rescale.
	if sum > st.FacilityCapW && sum > 0 {
		scale := st.FacilityCapW / sum
		for i := range st.GrantW {
			st.GrantW[i] *= scale
		}
	}
	for i, c := range f.chips {
		c.grantW = st.GrantW[i]
	}
	return st
}
