package fleet

import (
	"math"
	"testing"
	"time"

	"gpm/internal/workload"
)

// sampleStats draws n variates and returns (mean, variance).
func sampleStats(n int, draw func() float64) (float64, float64) {
	var sum float64
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = draw()
		sum += xs[i]
	}
	mean := sum / float64(n)
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return mean, v / float64(n)
}

// checkMoments asserts sample mean/variance within relative tolerance of the
// analytic values — the distribution property contract of the arrival
// generators.
func checkMoments(t *testing.T, name string, gotMean, gotVar, wantMean, wantVar, tol float64) {
	t.Helper()
	if math.Abs(gotMean-wantMean) > tol*wantMean {
		t.Errorf("%s: sample mean %v, want %v ± %.0f%%", name, gotMean, wantMean, 100*tol)
	}
	if math.Abs(gotVar-wantVar) > 3*tol*wantVar {
		t.Errorf("%s: sample variance %v, want %v ± %.0f%%", name, gotVar, wantVar, 300*tol)
	}
}

func TestExpDrawMoments(t *testing.T) {
	s := workload.NewStream(11)
	mean, vr := sampleStats(100_000, func() float64 { return expDraw(s) })
	checkMoments(t, "exp(1)", mean, vr, 1, 1, 0.02)
}

func TestGammaDrawMoments(t *testing.T) {
	// Marsaglia–Tsang path (shape >= 1) and the boost path (shape < 1):
	// Gamma(k, 1) has mean k and variance k.
	for _, k := range []float64{0.7, 1.0, 2.5} {
		s := workload.NewStream(13)
		mean, vr := sampleStats(100_000, func() float64 { return gammaDraw(s, k) })
		checkMoments(t, "gamma", mean, vr, k, k, 0.02)
	}
}

func TestWeibullDrawMoments(t *testing.T) {
	// Weibull(k, 1): mean Γ(1+1/k), variance Γ(1+2/k) − Γ(1+1/k)².
	for _, k := range []float64{0.8, 1.5, 3.0} {
		s := workload.NewStream(17)
		g1 := math.Gamma(1 + 1/k)
		g2 := math.Gamma(1 + 2/k)
		mean, vr := sampleStats(100_000, func() float64 { return weibullDraw(s, k) })
		checkMoments(t, "weibull", mean, vr, g1, g2-g1*g1, 0.03)
	}
}

// TestInterarrivalMeanRate pins the user-facing parameterization: whatever
// the process and shape, the mean gap is 1/RatePerClient.
func TestInterarrivalMeanRate(t *testing.T) {
	cases := []Cohort{
		{Process: "poisson", RatePerClient: 2000, Shape: 2},
		{Process: "gamma", RatePerClient: 500, Shape: 0.8},
		{Process: "gamma", RatePerClient: 500, Shape: 3},
		{Process: "weibull", RatePerClient: 1500, Shape: 1.7},
	}
	for _, co := range cases {
		co := co
		s := workload.NewStream(23)
		mean, _ := sampleStats(100_000, func() float64 { return co.interarrival(s) })
		want := 1 / co.RatePerClient
		if math.Abs(mean-want) > 0.02*want {
			t.Errorf("%s(shape=%v): mean gap %v, want %v ± 2%%", co.Process, co.Shape, mean, want)
		}
	}
}

// TestDiurnalModulation pins the rate-factor shape and that modulated
// arrival streams actually concentrate around the sinusoid's peak.
func TestDiurnalModulation(t *testing.T) {
	co := Cohort{DiurnalAmp: 0.5, DiurnalPeriod: 10 * time.Millisecond, DiurnalPhase: 0}
	if got := co.diurnal(0.0025); math.Abs(got-1.5) > 1e-9 { // quarter period = peak
		t.Errorf("peak factor %v, want 1.5", got)
	}
	if got := co.diurnal(0.0075); math.Abs(got-0.5) > 1e-9 { // trough
		t.Errorf("trough factor %v, want 0.5", got)
	}
	co2 := Cohort{}
	if got := co2.diurnal(123); got != 1 {
		t.Errorf("amp=0 must be flat, got %v", got)
	}

	cfg := Config{
		Chips: 1, Combo: workload.FourWay[0], Horizon: 10 * time.Millisecond, Seed: 5,
		Cohorts: []Cohort{{
			Name: "d", Clients: 32, RatePerClient: 2000, CostInstr: 1e5,
			SLO: time.Millisecond, DiurnalAmp: 0.8,
			DiurnalPeriod: 10 * time.Millisecond,
		}},
	}
	cfg, err := cfg.withDefaults(500 * time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := generateArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstHalf := 0
	for _, rq := range reqs {
		if rq.arriveSec < 0.005 {
			firstHalf++
		}
	}
	// amp=0.8 puts the peak in the first half-period; the split should be
	// decisively lopsided (≈75/25 in expectation).
	if frac := float64(firstHalf) / float64(len(reqs)); frac < 0.6 {
		t.Errorf("diurnal peak half has only %.0f%% of arrivals, want > 60%%", 100*frac)
	}
}

// TestGenerateArrivalsCanonicalOrder pins the schedule's determinism and
// ordering contract.
func TestGenerateArrivalsCanonicalOrder(t *testing.T) {
	cfg := testConfig()
	cfg, err := cfg.withDefaults(500 * time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	a, err := generateArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generateArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedule lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("arrival %d differs between identical generations", i)
		}
		if i > 0 && a[i-1].arriveSec > a[i].arriveSec {
			t.Fatalf("arrival %d out of order", i)
		}
		if a[i].arriveSec >= cfg.Horizon.Seconds() {
			t.Fatalf("arrival %d beyond horizon", i)
		}
	}
}
