package fleet

import (
	"math"
	"sort"

	"gpm/internal/workload"
)

// Arrival generation is open-loop: every client draws its inter-arrival
// sequence from its own PRNG substream, independent of service state, so the
// offered load is a pure function of (Seed, Cohorts, Horizon). The split
// tree is canonical — root → one stream per cohort → one stream per client —
// so adding a cohort or client never perturbs the arrivals of the others.
//
// All three distributions are parameterized to a mean inter-arrival of
// 1/RatePerClient and built exclusively on Stream.Float64, leaving the
// generator's math/rand bit-compatibility contract untouched:
//
//   - poisson: exponential gaps, Δ = −ln(1−U)/λ (the memoryless baseline);
//   - gamma:   shape k gaps via Marsaglia–Tsang (k ≥ 1) with the Ahrens-
//     Dieter boost for k < 1; k > 1 is smoother than Poisson, k < 1 burstier;
//   - weibull: Δ = s·(−ln(1−U))^{1/k} with s chosen so the mean is 1/λ.
//
// Diurnal modulation scales each gap by the instantaneous rate factor
// 1 + amp·sin(2π(t/period + phase)) — an inhomogeneous process whose local
// intensity tracks the sinusoid while keeping per-draw determinism.

// expDraw returns an Exp(1) variate from the stream.
func expDraw(s *workload.Stream) float64 {
	return -math.Log(1 - s.Float64())
}

// normDraw returns a standard normal variate via the Marsaglia polar method.
func normDraw(s *workload.Stream) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// gammaDraw returns a Gamma(shape, 1) variate (unit scale) via
// Marsaglia–Tsang squeeze, with the U^{1/k} boost for shape < 1.
func gammaDraw(s *workload.Stream, shape float64) float64 {
	if shape < 1 {
		// Gamma(k) = Gamma(k+1) · U^{1/k}.
		return gammaDraw(s, shape+1) * math.Pow(s.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := normDraw(s)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weibullDraw returns a Weibull(shape, 1) variate (unit scale) by inversion.
func weibullDraw(s *workload.Stream, shape float64) float64 {
	return math.Pow(expDraw(s), 1/shape)
}

// interarrival returns one gap in seconds with mean 1/rate for the cohort's
// process, before diurnal scaling.
func (co *Cohort) interarrival(s *workload.Stream) float64 {
	mean := 1 / co.RatePerClient
	switch co.Process {
	case "gamma":
		// Gamma(k, θ) has mean kθ; θ = mean/k keeps the rate fixed while
		// Shape trades burstiness.
		return gammaDraw(s, co.Shape) * mean / co.Shape
	case "weibull":
		// Weibull(k, s) has mean s·Γ(1+1/k).
		return weibullDraw(s, co.Shape) * mean / math.Gamma(1+1/co.Shape)
	default: // poisson
		return expDraw(s) * mean
	}
}

// diurnal returns the rate multiplier at time t (seconds).
func (co *Cohort) diurnal(t float64) float64 {
	if co.DiurnalAmp == 0 {
		return 1
	}
	period := co.DiurnalPeriod.Seconds()
	return 1 + co.DiurnalAmp*math.Sin(2*math.Pi*(t/period+co.DiurnalPhase))
}

// generateArrivals materializes the full offered load for the horizon in
// canonical (time, cohort, client, seq) order.
func generateArrivals(cfg Config) ([]*request, error) {
	horizonSec := cfg.Horizon.Seconds()
	root := workload.NewStream(cfg.Seed)
	var out []*request
	for ci := range cfg.Cohorts {
		co := &cfg.Cohorts[ci]
		cohortStream := root.Split()
		for cl := 0; cl < co.Clients; cl++ {
			s := cohortStream.Split()
			t, seq := 0.0, 0
			for {
				gap := co.interarrival(s) / co.diurnal(t)
				if gap < 1e-12 {
					gap = 1e-12 // −ln(1−U) can be exactly 0; keep time advancing
				}
				t += gap
				if t >= horizonSec {
					break
				}
				out = append(out, &request{
					cohort:    ci,
					client:    cl,
					seq:       seq,
					arriveSec: t,
					cost:      co.CostInstr,
				})
				seq++
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.arriveSec != b.arriveSec {
			return a.arriveSec < b.arriveSec
		}
		if a.cohort != b.cohort {
			return a.cohort < b.cohort
		}
		if a.client != b.client {
			return a.client < b.client
		}
		return a.seq < b.seq
	})
	return out, nil
}
