package modes

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func defaultPlan() Plan { return Default(1.300, 0.010) }

func TestDefaultPlanMatchesSection4(t *testing.T) {
	p := defaultPlan()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumModes() != 3 {
		t.Fatalf("want 3 modes")
	}
	// §5.1: Turbo 1.300 V, Eff1 1.235 V, Eff2 1.105 V.
	for m, want := range map[Mode]float64{Turbo: 1.300, Eff1: 1.235, Eff2: 1.105} {
		if got := p.Voltage(m); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s voltage %v, want %v", p.Name(m), got, want)
		}
	}
	// Cubic power scales: 1, 0.857, 0.614.
	if got := p.PowerScale(Eff1); math.Abs(got-0.857375) > 1e-9 {
		t.Errorf("Eff1 power scale %v, want 0.95³", got)
	}
	if got := p.PowerScale(Eff2); math.Abs(got-0.614125) > 1e-9 {
		t.Errorf("Eff2 power scale %v, want 0.85³", got)
	}
}

func TestTransitionTimesMatchTable5(t *testing.T) {
	p := defaultPlan()
	cases := []struct {
		a, b Mode
		want time.Duration
	}{
		{Turbo, Eff1, 6500 * time.Nanosecond},
		{Eff1, Eff2, 13 * time.Microsecond},
		{Turbo, Eff2, 19500 * time.Nanosecond},
	}
	for _, c := range cases {
		got := p.TransitionTime(c.a, c.b)
		if d := got - c.want; d > 10*time.Nanosecond || d < -10*time.Nanosecond {
			t.Errorf("transition %s->%s = %v, want %v", p.Name(c.a), p.Name(c.b), got, c.want)
		}
		// Symmetry: ramping up costs the same as ramping down.
		if rev := p.TransitionTime(c.b, c.a); rev != got {
			t.Errorf("transition asymmetric: %v vs %v", got, rev)
		}
	}
	if p.TransitionTime(Eff1, Eff1) != 0 {
		t.Error("same-mode transition should be free")
	}
	if p.MaxTransition() != p.TransitionTime(Turbo, Eff2) {
		t.Error("MaxTransition should be the Turbo<->Eff2 swing")
	}
}

func TestLinearPlans(t *testing.T) {
	for _, k := range []int{2, 3, 5, 7} {
		p := Linear(k, 0.85, 1.3, 0.010)
		if err := p.Validate(); err != nil {
			t.Fatalf("Linear(%d): %v", k, err)
		}
		if p.NumModes() != k {
			t.Fatalf("Linear(%d) has %d modes", k, p.NumModes())
		}
		if p.FreqScale(0) != 1 || math.Abs(p.FreqScale(Mode(k-1))-0.85) > 1e-9 {
			t.Errorf("Linear(%d) endpoints wrong: %v..%v", k, p.FreqScale(0), p.FreqScale(Mode(k-1)))
		}
		// Strictly decreasing frequency.
		for m := 1; m < k; m++ {
			if p.FreqScale(Mode(m)) >= p.FreqScale(Mode(m-1)) {
				t.Errorf("Linear(%d): level %d not slower than %d", k, m, m-1)
			}
		}
	}
}

func TestLinearPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { Linear(1, 0.85, 1.3, 0.01) },
		func() { Linear(3, 0, 1.3, 0.01) },
		func() { Linear(3, 1.0, 1.3, 0.01) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{},
		{Levels: []Level{{Name: "T", VScale: 1, FScale: 1}}, NominalVdd: 0, TransitionRateVPerUs: 0.01},
		{Levels: []Level{{Name: "X", VScale: 0.9, FScale: 0.9}}, NominalVdd: 1.3, TransitionRateVPerUs: 0.01}, // level 0 not nominal
		{Levels: []Level{{Name: "T", VScale: 1, FScale: 1}, {Name: "U", VScale: 1, FScale: 1}}, NominalVdd: 1.3, TransitionRateVPerUs: 0.01},
		{Levels: []Level{{Name: "T", VScale: 1, FScale: 1}, {Name: "Z", VScale: 1.2, FScale: 0.9}}, NominalVdd: 1.3, TransitionRateVPerUs: 0.01},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated but is invalid", i)
		}
	}
}

// Property: power scale equals V²f for every mode of every linear plan, and
// the estimated savings/degradation are its complements.
func TestPowerScaleProperty(t *testing.T) {
	f := func(kRaw uint8, minRaw uint8) bool {
		k := 2 + int(kRaw%6)
		min := 0.5 + float64(minRaw%40)/100 // 0.50..0.89
		p := Linear(k, min, 1.3, 0.01)
		for m := 0; m < k; m++ {
			mode := Mode(m)
			v, fr := p.VScale(mode), p.FreqScale(mode)
			if math.Abs(p.PowerScale(mode)-v*v*fr) > 1e-12 {
				return false
			}
			if math.Abs(p.EstimatedPowerSavings(mode)-(1-v*v*fr)) > 1e-12 {
				return false
			}
			if math.Abs(p.EstimatedPerfDegradation(mode)-(1-fr)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transition time is a metric-like function of voltage distance:
// symmetric, zero on the diagonal, and the triangle route through an
// intermediate mode is never cheaper than the direct swing.
func TestTransitionTimeProperty(t *testing.T) {
	f := func(kRaw, aRaw, bRaw, cRaw uint8) bool {
		k := 3 + int(kRaw%5)
		p := Linear(k, 0.7, 1.3, 0.01)
		a := Mode(int(aRaw) % k)
		b := Mode(int(bRaw) % k)
		c := Mode(int(cRaw) % k)
		if p.TransitionTime(a, b) != p.TransitionTime(b, a) {
			return false
		}
		if p.TransitionTime(a, a) != 0 {
			return false
		}
		direct := p.TransitionTime(a, b)
		via := p.TransitionTime(a, c) + p.TransitionTime(c, b)
		// Duration quantization can shave a nanosecond per leg.
		return via >= direct-2*time.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	v := Uniform(4, Eff1)
	for _, m := range v {
		if m != Eff1 {
			t.Fatal("Uniform broken")
		}
	}
	c := v.Clone()
	c[0] = Turbo
	if v[0] != Eff1 {
		t.Error("Clone aliases the original")
	}
	if v.Equal(c) {
		t.Error("vectors should differ")
	}
	if !v.Equal(Uniform(4, Eff1)) {
		t.Error("equal vectors reported unequal")
	}
	if v.Equal(Uniform(3, Eff1)) {
		t.Error("length mismatch should be unequal")
	}
	if got := v.String(); got != "[1 1 1 1]" {
		t.Errorf("String() = %q", got)
	}
}

func TestMaxTransitionBetween(t *testing.T) {
	p := defaultPlan()
	a := Vector{Turbo, Eff1, Eff2}
	b := Vector{Eff1, Eff1, Turbo}
	got := p.MaxTransitionBetween(a, b)
	want := p.TransitionTime(Eff2, Turbo)
	if got != want {
		t.Errorf("MaxTransitionBetween = %v, want %v (the Eff2->Turbo core)", got, want)
	}
	if p.MaxTransitionBetween(a, a) != 0 {
		t.Error("no-op switch should stall nothing")
	}
}
