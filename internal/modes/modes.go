// Package modes defines the per-core power modes of §4 — Turbo, Eff1, Eff2 —
// as points on a DVFS plan with linear voltage–frequency scaling, and the
// transition-overhead model of Table 5.
//
// A Plan generalizes the paper's three modes to k levels so the mode-count
// ablation (§5.3: "the number of modes also needs to scale with increasing
// number of cores") can be run with the same machinery.
package modes

import (
	"fmt"
	"time"
)

// Mode indexes a level in a Plan. Mode 0 is always the highest-performance
// level (Turbo); higher indices save more power.
type Mode int

// The paper's three modes, valid for the default 3-level plan.
const (
	Turbo Mode = iota
	Eff1
	Eff2
)

// Level is one (voltage, frequency) operating point, expressed as scales of
// the nominal (Turbo) values.
type Level struct {
	Name   string
	VScale float64 // supply voltage as a fraction of nominal Vdd
	FScale float64 // clock frequency as a fraction of nominal f
}

// Plan is an ordered set of operating points, highest performance first.
type Plan struct {
	Levels []Level
	// NominalVdd is the Turbo supply voltage in volts.
	NominalVdd float64
	// TransitionRateVPerUs is the voltage ramp rate (§4: 10 mV/µs).
	TransitionRateVPerUs float64
}

// Default returns the paper's plan: Turbo (Vdd, f), Eff1 (0.95 Vdd, 0.95 f),
// Eff2 (0.85 Vdd, 0.85 f), at the given nominal voltage and ramp rate.
func Default(nominalVdd, rateVPerUs float64) Plan {
	return Plan{
		Levels: []Level{
			{Name: "Turbo", VScale: 1.00, FScale: 1.00},
			{Name: "Eff1", VScale: 0.95, FScale: 0.95},
			{Name: "Eff2", VScale: 0.85, FScale: 0.85},
		},
		NominalVdd:           nominalVdd,
		TransitionRateVPerUs: rateVPerUs,
	}
}

// Linear returns a k-level plan with linear V–f scaling from 1.0 down to
// minScale inclusive (k >= 2). Used by the mode-count ablation.
func Linear(k int, minScale, nominalVdd, rateVPerUs float64) Plan {
	if k < 2 {
		panic("modes: Linear needs at least 2 levels")
	}
	if minScale <= 0 || minScale >= 1 {
		panic("modes: minScale must be in (0,1)")
	}
	p := Plan{NominalVdd: nominalVdd, TransitionRateVPerUs: rateVPerUs}
	step := (1.0 - minScale) / float64(k-1)
	for i := 0; i < k; i++ {
		s := 1.0 - float64(i)*step
		name := fmt.Sprintf("L%d", i)
		switch i {
		case 0:
			name = "Turbo"
		case k - 1:
			name = fmt.Sprintf("Eff%d", k-1)
		}
		p.Levels = append(p.Levels, Level{Name: name, VScale: s, FScale: s})
	}
	return p
}

// Validate reports structural problems.
func (p Plan) Validate() error {
	if len(p.Levels) < 1 {
		return fmt.Errorf("modes: plan has no levels")
	}
	if p.NominalVdd <= 0 || p.TransitionRateVPerUs <= 0 {
		return fmt.Errorf("modes: nominal voltage and ramp rate must be positive")
	}
	prev := 2.0
	for i, l := range p.Levels {
		if l.VScale <= 0 || l.VScale > 1 || l.FScale <= 0 || l.FScale > 1 {
			return fmt.Errorf("modes: level %d (%s) scales outside (0,1]", i, l.Name)
		}
		if l.FScale >= prev {
			return fmt.Errorf("modes: level %d (%s) not strictly slower than its predecessor", i, l.Name)
		}
		prev = l.FScale
	}
	if p.Levels[0].VScale != 1 || p.Levels[0].FScale != 1 {
		return fmt.Errorf("modes: level 0 must be nominal (Turbo)")
	}
	return nil
}

// NumModes returns the number of levels.
func (p Plan) NumModes() int { return len(p.Levels) }

// Valid reports whether m indexes a level of p.
func (p Plan) Valid(m Mode) bool { return m >= 0 && int(m) < len(p.Levels) }

// Name returns the level name.
func (p Plan) Name(m Mode) string { return p.Levels[m].Name }

// Voltage returns the absolute supply voltage of mode m in volts.
func (p Plan) Voltage(m Mode) float64 { return p.NominalVdd * p.Levels[m].VScale }

// FreqScale returns the frequency of mode m as a fraction of nominal.
func (p Plan) FreqScale(m Mode) float64 { return p.Levels[m].FScale }

// VScale returns the voltage scale of mode m.
func (p Plan) VScale(m Mode) float64 { return p.Levels[m].VScale }

// PowerScale returns the dynamic-power scale of mode m relative to Turbo:
// P ∝ V²f. With the paper's linear V–f scaling this is the cubic relation of
// §5.5 (e.g. 0.95³ ≈ 0.857, 0.85³ ≈ 0.614).
func (p Plan) PowerScale(m Mode) float64 {
	l := p.Levels[m]
	return l.VScale * l.VScale * l.FScale
}

// EstimatedPowerSavings returns Table 4's analytic power saving for mode m
// (1 − V²f scale).
func (p Plan) EstimatedPowerSavings(m Mode) float64 { return 1 - p.PowerScale(m) }

// EstimatedPerfDegradation returns Table 4's analytic (upper-bound)
// performance degradation for mode m (1 − f scale).
func (p Plan) EstimatedPerfDegradation(m Mode) float64 { return 1 - p.Levels[m].FScale }

// TransitionTime returns the DVFS transition overhead between two modes
// (Table 5): |ΔV| divided by the ramp rate. Same-mode transitions are free.
func (p Plan) TransitionTime(from, to Mode) time.Duration {
	dv := p.Voltage(from) - p.Voltage(to)
	if dv < 0 {
		dv = -dv
	}
	us := dv * 1000 / (p.TransitionRateVPerUs * 1000) // volts / (V/µs) = µs
	return time.Duration(us * float64(time.Microsecond))
}

// MaxTransition returns the largest pairwise transition time in the plan.
func (p Plan) MaxTransition() time.Duration {
	return p.TransitionTime(0, Mode(len(p.Levels)-1))
}

// Vector is a per-core mode assignment.
type Vector []Mode

// Uniform returns an n-core vector with every core in mode m.
func Uniform(n int, m Mode) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = m
	}
	return v
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports element-wise equality.
func (v Vector) Equal(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the vector with plan-independent numeric modes.
func (v Vector) String() string {
	s := "["
	for i, m := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d", int(m))
	}
	return s + "]"
}

// MaxTransitionBetween returns the synchronization stall the chip pays when
// switching from vector a to vector b: the longest per-core transition
// (§5.1: "we find the longest transition cost among all cores and assume all
// cores are stalled during this period").
func (p Plan) MaxTransitionBetween(a, b Vector) time.Duration {
	var worst time.Duration
	for i := range a {
		if t := p.TransitionTime(a[i], b[i]); t > worst {
			worst = t
		}
	}
	return worst
}
