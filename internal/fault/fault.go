// Package fault is a deterministic, seed-driven fault injector for the
// sensor/sample path of the CMP simulator. The paper's global manager (§2)
// trusts each core's current sensors and performance counters; a production
// manager cannot. This package models the failure taxonomy a resilient
// manager must survive — multiplicative Gaussian sensor noise, calibration
// gain error and drift, sample dropout, stuck-at sensors, transient budget
// spikes, permanent core death, and thermal-sensor failure — as a pure
// Scenario value that cmpsim wires between the simulated hardware and the
// manager under test.
//
// Injection is reproducible: an Injector draws from a private PRNG seeded by
// Scenario.Seed in a fixed per-core order, so the same scenario on the same
// workload yields bit-identical Result series.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"gpm/internal/core"
)

// StuckFault pins one core's power sensor to a fixed reading from At
// onward (a stuck-at fault). PowerW may be NaN to model a sensor that
// reports garbage rather than a plausible value.
type StuckFault struct {
	Core   int
	At     time.Duration
	PowerW float64
}

// CoreDeath halts a core permanently at At: from then on it commits no
// instructions and draws no power, without ever signalling completion. The
// manager only observes the resulting all-zero samples.
type CoreDeath struct {
	Core int
	At   time.Duration
}

// BudgetSpike scales the nominal budget by Scale during [At, At+Duration) —
// a transient supply event (brownout when Scale < 1, surge headroom when
// Scale > 1) on top of the planned budget function.
type BudgetSpike struct {
	At       time.Duration
	Duration time.Duration
	Scale    float64
}

// SolverStall wedges the decision path: during [At, At+Duration) of
// simulated time, every explore-boundary decision hangs for Hang of
// wall-clock time — a wedged or grossly overloaded solver rather than a
// sensor fault. The hang is consumed by the engine's decision supervisor
// (whose watchdog deadline it is designed to trip); a run without a
// supervisor does not model it.
type SolverStall struct {
	At       time.Duration
	Duration time.Duration
	// Hang is the injected wall-clock hang per decision.
	Hang time.Duration
}

// Scenario is a declarative fault-injection plan. The zero value injects
// nothing; cmpsim treats a nil or disabled scenario as the exact seed path.
type Scenario struct {
	// Seed drives every random draw; runs with equal seeds are identical.
	Seed int64

	// PowerNoiseSigma is the relative standard deviation of multiplicative
	// Gaussian noise on each core's power reading (0.05 = 5% noise).
	PowerNoiseSigma float64
	// InstrNoiseSigma is the same for the committed-instruction counters.
	InstrNoiseSigma float64

	// PowerGain is a constant calibration error: every power reading is
	// scaled by (1 + PowerGain).
	PowerGain float64
	// PowerDriftPerSec grows the calibration gain linearly with simulated
	// time: the effective gain at time t is 1 + PowerGain + t·Drift.
	PowerDriftPerSec float64

	// DropProb is the per-sample probability that a core's observation is
	// lost for one interval. Dropped samples read zero, or NaN when
	// DropAsNaN is set.
	DropProb  float64
	DropAsNaN bool

	// Stuck lists stuck-at power-sensor faults.
	Stuck []StuckFault
	// Deaths lists permanent core failures.
	Deaths []CoreDeath
	// Spikes lists transient budget excursions.
	Spikes []BudgetSpike
	// Stalls lists wedged-solver windows (decision-path hangs).
	Stalls []SolverStall

	// ThermalFailAt, when positive, freezes the thermal governor's budget
	// reading at its last pre-failure value from that time onward (a dead
	// thermal sensor keeps reporting its final sample).
	ThermalFailAt time.Duration
}

// Enabled reports whether the scenario injects anything at all.
func (s Scenario) Enabled() bool {
	return s.PowerNoiseSigma != 0 || s.InstrNoiseSigma != 0 ||
		s.PowerGain != 0 || s.PowerDriftPerSec != 0 || s.DropProb != 0 ||
		len(s.Stuck) > 0 || len(s.Deaths) > 0 || len(s.Spikes) > 0 ||
		len(s.Stalls) > 0 || s.ThermalFailAt > 0
}

// Validate reports structural problems for an n-core chip.
func (s Scenario) Validate(n int) error {
	if s.PowerNoiseSigma < 0 || s.InstrNoiseSigma < 0 ||
		math.IsNaN(s.PowerNoiseSigma) || math.IsNaN(s.InstrNoiseSigma) {
		return fmt.Errorf("fault: negative or NaN noise sigma")
	}
	if !(s.DropProb >= 0 && s.DropProb <= 1) { // negated to also reject NaN
		return fmt.Errorf("fault: drop probability %g outside [0,1]", s.DropProb)
	}
	if math.IsNaN(s.PowerGain) || math.IsNaN(s.PowerDriftPerSec) {
		return fmt.Errorf("fault: NaN calibration gain or drift")
	}
	for _, f := range s.Stuck {
		if f.Core < 0 || f.Core >= n {
			return fmt.Errorf("fault: stuck-at core %d outside chip of %d cores", f.Core, n)
		}
	}
	for _, d := range s.Deaths {
		if d.Core < 0 || d.Core >= n {
			return fmt.Errorf("fault: death of core %d outside chip of %d cores", d.Core, n)
		}
	}
	for _, sp := range s.Spikes {
		// A NaN or infinite scale would poison the budget series (and every
		// downstream metric) rather than model a supply event.
		if !(sp.Scale >= 0) || math.IsInf(sp.Scale, 0) {
			return fmt.Errorf("fault: budget spike scale %g is not a finite non-negative number", sp.Scale)
		}
		if sp.Duration <= 0 {
			return fmt.Errorf("fault: budget spike at %v has non-positive duration", sp.At)
		}
	}
	for _, st := range s.Stalls {
		if st.Duration <= 0 {
			return fmt.Errorf("fault: solver stall at %v has non-positive duration", st.At)
		}
		if st.Hang <= 0 {
			return fmt.Errorf("fault: solver stall at %v has non-positive hang", st.At)
		}
	}
	return nil
}

// Injector applies a Scenario to the observation path. It is stateful (PRNG
// stream) and must be used by a single simulation run.
type Injector struct {
	sc  Scenario
	rng *rand.Rand
	n   int
}

// NewInjector builds an injector for an n-core chip.
func NewInjector(sc Scenario, n int) (*Injector, error) {
	if err := sc.Validate(n); err != nil {
		return nil, err
	}
	return &Injector{sc: sc, rng: rand.New(rand.NewSource(sc.Seed)), n: n}, nil
}

// Scenario returns the plan the injector was built from.
func (in *Injector) Scenario() Scenario { return in.sc }

// ObserveSamples perturbs the true per-core samples into what the manager's
// sensors report at time now. The input is not modified. Draw order is
// fixed (core-major, power noise then instruction noise then dropout) so
// equal seeds replay identically.
func (in *Injector) ObserveSamples(now time.Duration, truth []core.Sample) []core.Sample {
	out := make([]core.Sample, len(truth))
	copy(out, truth)
	gain := 1 + in.sc.PowerGain + in.sc.PowerDriftPerSec*now.Seconds()
	for c := range out {
		// Draw unconditionally per enabled fault class so the stream does
		// not depend on data values.
		var pNoise, iNoise float64
		if in.sc.PowerNoiseSigma > 0 {
			pNoise = in.sc.PowerNoiseSigma * in.rng.NormFloat64()
		}
		if in.sc.InstrNoiseSigma > 0 {
			iNoise = in.sc.InstrNoiseSigma * in.rng.NormFloat64()
		}
		drop := false
		if in.sc.DropProb > 0 {
			drop = in.rng.Float64() < in.sc.DropProb
		}
		if out[c].Done {
			continue // a completed core's parked sensors are not modelled
		}
		out[c].PowerW *= gain * (1 + pNoise)
		out[c].Instr *= 1 + iNoise
		if out[c].Instr < 0 {
			out[c].Instr = 0
		}
		for _, f := range in.sc.Stuck {
			if f.Core == c && now >= f.At {
				out[c].PowerW = f.PowerW
			}
		}
		if drop {
			if in.sc.DropAsNaN {
				out[c].PowerW = math.NaN()
				out[c].Instr = math.NaN()
			} else {
				out[c].PowerW = 0
				out[c].Instr = 0
			}
		}
	}
	return out
}

// Budget applies any active budget spike to the nominal budget at time now.
func (in *Injector) Budget(now time.Duration, w float64) float64 {
	for _, sp := range in.sc.Spikes {
		if now >= sp.At && now < sp.At+sp.Duration {
			w *= sp.Scale
		}
	}
	return w
}

// CoreDead reports whether core c has permanently failed by time now.
func (in *Injector) CoreDead(c int, now time.Duration) bool {
	for _, d := range in.sc.Deaths {
		if d.Core == c && now >= d.At {
			return true
		}
	}
	return false
}

// ThermalFailed reports whether the thermal sensor is dead at time now.
func (in *Injector) ThermalFailed(now time.Duration) bool {
	return in.sc.ThermalFailAt > 0 && now >= in.sc.ThermalFailAt
}

// DecisionHang returns the wall-clock hang injected into the decision path
// at simulated time now — zero outside every stall window, the largest
// active Hang inside one.
func (in *Injector) DecisionHang(now time.Duration) time.Duration {
	var hang time.Duration
	for _, st := range in.sc.Stalls {
		if now >= st.At && now < st.At+st.Duration && st.Hang > hang {
			hang = st.Hang
		}
	}
	return hang
}

// ParseScenario decodes the CLI fault specification: comma-separated
// key=value fields, keys repeatable where noted.
//
//	seed=42             PRNG seed
//	noise=0.05          power-sensor noise sigma
//	inoise=0.02         instruction-counter noise sigma
//	gain=0.1            calibration gain error
//	drift=5             calibration drift per simulated second
//	drop=0.01           sample dropout probability
//	dropnan             dropped samples read NaN instead of zero
//	stuck=C:P:AT        stuck-at: core C reads P watts from AT (repeatable;
//	                    P may be "nan")
//	death=C:AT          core C dies at AT (repeatable)
//	spike=AT:DUR:SCALE  budget ×SCALE during [AT, AT+DUR) (repeatable)
//	stall=AT:DUR:HANG   decisions hang for HANG wall-clock during
//	                    [AT, AT+DUR) of simulated time (repeatable; needs
//	                    the decision supervisor to have any effect)
//	thermalfail=AT      thermal readings freeze at AT
//
// Durations use Go syntax (500us, 2ms). Example:
//
//	-fault "seed=7,noise=0.05,stuck=1:0.5:2ms,death=3:8ms"
func ParseScenario(spec string) (Scenario, error) {
	var sc Scenario
	if strings.TrimSpace(spec) == "" {
		return sc, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, _ := strings.Cut(field, "=")
		var err error
		switch key {
		case "seed":
			sc.Seed, err = strconv.ParseInt(val, 10, 64)
		case "noise":
			sc.PowerNoiseSigma, err = parseFloat(val)
		case "inoise":
			sc.InstrNoiseSigma, err = parseFloat(val)
		case "gain":
			sc.PowerGain, err = parseFloat(val)
		case "drift":
			sc.PowerDriftPerSec, err = parseFloat(val)
		case "drop":
			sc.DropProb, err = parseFloat(val)
		case "dropnan":
			sc.DropAsNaN = true
		case "stuck":
			var f StuckFault
			f, err = parseStuck(val)
			sc.Stuck = append(sc.Stuck, f)
		case "death":
			var d CoreDeath
			d, err = parseDeath(val)
			sc.Deaths = append(sc.Deaths, d)
		case "spike":
			var sp BudgetSpike
			sp, err = parseSpike(val)
			sc.Spikes = append(sc.Spikes, sp)
		case "stall":
			var st SolverStall
			st, err = parseStall(val)
			sc.Stalls = append(sc.Stalls, st)
		case "thermalfail":
			sc.ThermalFailAt, err = time.ParseDuration(val)
		default:
			return sc, fmt.Errorf("fault: unknown field %q", key)
		}
		if err != nil {
			return sc, fmt.Errorf("fault: field %q: %w", field, err)
		}
	}
	return sc, nil
}

func parseFloat(s string) (float64, error) {
	if strings.EqualFold(s, "nan") {
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseStuck(s string) (StuckFault, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return StuckFault{}, fmt.Errorf("want CORE:POWER:AT")
	}
	core, err := strconv.Atoi(parts[0])
	if err != nil {
		return StuckFault{}, err
	}
	p, err := parseFloat(parts[1])
	if err != nil {
		return StuckFault{}, err
	}
	at, err := time.ParseDuration(parts[2])
	if err != nil {
		return StuckFault{}, err
	}
	return StuckFault{Core: core, PowerW: p, At: at}, nil
}

func parseDeath(s string) (CoreDeath, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return CoreDeath{}, fmt.Errorf("want CORE:AT")
	}
	core, err := strconv.Atoi(parts[0])
	if err != nil {
		return CoreDeath{}, err
	}
	at, err := time.ParseDuration(parts[1])
	if err != nil {
		return CoreDeath{}, err
	}
	return CoreDeath{Core: core, At: at}, nil
}

func parseSpike(s string) (BudgetSpike, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return BudgetSpike{}, fmt.Errorf("want AT:DUR:SCALE")
	}
	at, err := time.ParseDuration(parts[0])
	if err != nil {
		return BudgetSpike{}, err
	}
	dur, err := time.ParseDuration(parts[1])
	if err != nil {
		return BudgetSpike{}, err
	}
	scale, err := parseFloat(parts[2])
	if err != nil {
		return BudgetSpike{}, err
	}
	return BudgetSpike{At: at, Duration: dur, Scale: scale}, nil
}

func parseStall(s string) (SolverStall, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return SolverStall{}, fmt.Errorf("want AT:DUR:HANG")
	}
	at, err := time.ParseDuration(parts[0])
	if err != nil {
		return SolverStall{}, err
	}
	dur, err := time.ParseDuration(parts[1])
	if err != nil {
		return SolverStall{}, err
	}
	hang, err := time.ParseDuration(parts[2])
	if err != nil {
		return SolverStall{}, err
	}
	return SolverStall{At: at, Duration: dur, Hang: hang}, nil
}
