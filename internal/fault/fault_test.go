package fault

import (
	"math"
	"testing"
	"time"

	"gpm/internal/core"
)

func truth(n int) []core.Sample {
	out := make([]core.Sample, n)
	for i := range out {
		out[i] = core.Sample{PowerW: 10 + float64(i), Instr: 1e6}
	}
	return out
}

func TestZeroScenarioInjectsNothing(t *testing.T) {
	var sc Scenario
	if sc.Enabled() {
		t.Fatal("zero scenario reports enabled")
	}
	in, err := NewInjector(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := truth(4)
	obs := in.ObserveSamples(time.Millisecond, tr)
	for c := range tr {
		if obs[c] != tr[c] {
			t.Errorf("core %d: observation %+v differs from truth %+v", c, obs[c], tr[c])
		}
	}
	if b := in.Budget(0, 55); b != 55 {
		t.Errorf("budget perturbed to %g", b)
	}
	if in.CoreDead(0, time.Hour) || in.ThermalFailed(time.Hour) {
		t.Error("zero scenario kills cores or thermal sensors")
	}
}

func TestDeterministicReplay(t *testing.T) {
	sc := Scenario{Seed: 99, PowerNoiseSigma: 0.1, InstrNoiseSigma: 0.05, DropProb: 0.2}
	a, _ := NewInjector(sc, 4)
	b, _ := NewInjector(sc, 4)
	for i := 0; i < 50; i++ {
		now := time.Duration(i) * 500 * time.Microsecond
		oa := a.ObserveSamples(now, truth(4))
		ob := b.ObserveSamples(now, truth(4))
		for c := range oa {
			if oa[c] != ob[c] {
				t.Fatalf("interval %d core %d: %+v vs %+v", i, c, oa[c], ob[c])
			}
		}
	}
	// A different seed must diverge.
	sc.Seed = 100
	d, _ := NewInjector(sc, 4)
	same := true
	for i := 0; i < 10 && same; i++ {
		oa := a.ObserveSamples(0, truth(4))
		od := d.ObserveSamples(0, truth(4))
		for c := range oa {
			if oa[c] != od[c] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestStuckDeathSpikeThermal(t *testing.T) {
	sc := Scenario{
		Stuck:         []StuckFault{{Core: 1, PowerW: 0.5, At: 2 * time.Millisecond}},
		Deaths:        []CoreDeath{{Core: 2, At: 5 * time.Millisecond}},
		Spikes:        []BudgetSpike{{At: time.Millisecond, Duration: time.Millisecond, Scale: 0.5}},
		ThermalFailAt: 3 * time.Millisecond,
	}
	in, err := NewInjector(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.ObserveSamples(time.Millisecond, truth(4))[1].PowerW; got != 11 {
		t.Errorf("stuck-at fired early: %g", got)
	}
	if got := in.ObserveSamples(2*time.Millisecond, truth(4))[1].PowerW; got != 0.5 {
		t.Errorf("stuck-at reading %g, want 0.5", got)
	}
	if in.CoreDead(2, 4*time.Millisecond) {
		t.Error("core 2 died early")
	}
	if !in.CoreDead(2, 5*time.Millisecond) {
		t.Error("core 2 alive after death time")
	}
	if got := in.Budget(1500*time.Microsecond, 100); got != 50 {
		t.Errorf("spiked budget %g, want 50", got)
	}
	if got := in.Budget(2*time.Millisecond, 100); got != 100 {
		t.Errorf("budget after spike %g, want 100", got)
	}
	if in.ThermalFailed(2 * time.Millisecond) {
		t.Error("thermal failed early")
	}
	if !in.ThermalFailed(3 * time.Millisecond) {
		t.Error("thermal alive after failure time")
	}
}

func TestGainAndDrift(t *testing.T) {
	sc := Scenario{PowerGain: 0.1, PowerDriftPerSec: 100}
	in, _ := NewInjector(sc, 1)
	// At t=1ms: gain = 1 + 0.1 + 0.001*100 = 1.2.
	got := in.ObserveSamples(time.Millisecond, []core.Sample{{PowerW: 10, Instr: 1}})[0].PowerW
	if math.Abs(got-12) > 1e-12 {
		t.Errorf("drifted reading %g, want 12", got)
	}
}

func TestDropNaN(t *testing.T) {
	sc := Scenario{Seed: 1, DropProb: 1, DropAsNaN: true}
	in, _ := NewInjector(sc, 2)
	obs := in.ObserveSamples(0, truth(2))
	for c := range obs {
		if !math.IsNaN(obs[c].PowerW) || !math.IsNaN(obs[c].Instr) {
			t.Errorf("core %d: dropped sample %+v not NaN", c, obs[c])
		}
	}
}

func TestDoneCoresPassThrough(t *testing.T) {
	sc := Scenario{Seed: 1, PowerNoiseSigma: 0.5, DropProb: 1}
	in, _ := NewInjector(sc, 1)
	s := []core.Sample{{PowerW: 3, Instr: 0, Done: true}}
	if got := in.ObserveSamples(0, s)[0]; got != s[0] {
		t.Errorf("done core perturbed: %+v", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Scenario{
		{Stuck: []StuckFault{{Core: 4}}},
		{Deaths: []CoreDeath{{Core: -1}}},
		{DropProb: 1.5},
		{PowerNoiseSigma: -1},
		{Spikes: []BudgetSpike{{At: 0, Duration: 0, Scale: 1}}},
	}
	for i, sc := range bad {
		if _, err := NewInjector(sc, 4); err == nil {
			t.Errorf("scenario %d accepted: %+v", i, sc)
		}
	}
}

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("seed=7,noise=0.05,inoise=0.01,gain=0.02,drift=3,drop=0.1,dropnan,stuck=1:0.5:2ms,stuck=2:nan:1ms,death=3:8ms,spike=4ms:1ms:0.6,thermalfail=6ms")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 7 || sc.PowerNoiseSigma != 0.05 || sc.InstrNoiseSigma != 0.01 ||
		sc.PowerGain != 0.02 || sc.PowerDriftPerSec != 3 || sc.DropProb != 0.1 || !sc.DropAsNaN {
		t.Errorf("scalar fields wrong: %+v", sc)
	}
	if len(sc.Stuck) != 2 || sc.Stuck[0] != (StuckFault{Core: 1, PowerW: 0.5, At: 2 * time.Millisecond}) {
		t.Errorf("stuck faults wrong: %+v", sc.Stuck)
	}
	if !math.IsNaN(sc.Stuck[1].PowerW) {
		t.Errorf("stuck nan not parsed: %+v", sc.Stuck[1])
	}
	if len(sc.Deaths) != 1 || sc.Deaths[0] != (CoreDeath{Core: 3, At: 8 * time.Millisecond}) {
		t.Errorf("deaths wrong: %+v", sc.Deaths)
	}
	if len(sc.Spikes) != 1 || sc.Spikes[0] != (BudgetSpike{At: 4 * time.Millisecond, Duration: time.Millisecond, Scale: 0.6}) {
		t.Errorf("spikes wrong: %+v", sc.Spikes)
	}
	if sc.ThermalFailAt != 6*time.Millisecond {
		t.Errorf("thermalfail wrong: %v", sc.ThermalFailAt)
	}
	if _, err := ParseScenario("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseScenario("stuck=1:2"); err == nil {
		t.Error("malformed stuck accepted")
	}
	if empty, err := ParseScenario("  "); err != nil || empty.Enabled() {
		t.Errorf("blank spec: %+v err %v", empty, err)
	}
}
