package fault

import (
	"math"
	"testing"
	"time"

	"gpm/internal/core"
)

func truth(n int) []core.Sample {
	out := make([]core.Sample, n)
	for i := range out {
		out[i] = core.Sample{PowerW: 10 + float64(i), Instr: 1e6}
	}
	return out
}

func TestZeroScenarioInjectsNothing(t *testing.T) {
	var sc Scenario
	if sc.Enabled() {
		t.Fatal("zero scenario reports enabled")
	}
	in, err := NewInjector(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := truth(4)
	obs := in.ObserveSamples(time.Millisecond, tr)
	for c := range tr {
		if obs[c] != tr[c] {
			t.Errorf("core %d: observation %+v differs from truth %+v", c, obs[c], tr[c])
		}
	}
	if b := in.Budget(0, 55); b != 55 {
		t.Errorf("budget perturbed to %g", b)
	}
	if in.CoreDead(0, time.Hour) || in.ThermalFailed(time.Hour) {
		t.Error("zero scenario kills cores or thermal sensors")
	}
}

func TestDeterministicReplay(t *testing.T) {
	sc := Scenario{Seed: 99, PowerNoiseSigma: 0.1, InstrNoiseSigma: 0.05, DropProb: 0.2}
	a, _ := NewInjector(sc, 4)
	b, _ := NewInjector(sc, 4)
	for i := 0; i < 50; i++ {
		now := time.Duration(i) * 500 * time.Microsecond
		oa := a.ObserveSamples(now, truth(4))
		ob := b.ObserveSamples(now, truth(4))
		for c := range oa {
			if oa[c] != ob[c] {
				t.Fatalf("interval %d core %d: %+v vs %+v", i, c, oa[c], ob[c])
			}
		}
	}
	// A different seed must diverge.
	sc.Seed = 100
	d, _ := NewInjector(sc, 4)
	same := true
	for i := 0; i < 10 && same; i++ {
		oa := a.ObserveSamples(0, truth(4))
		od := d.ObserveSamples(0, truth(4))
		for c := range oa {
			if oa[c] != od[c] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestStuckDeathSpikeThermal(t *testing.T) {
	sc := Scenario{
		Stuck:         []StuckFault{{Core: 1, PowerW: 0.5, At: 2 * time.Millisecond}},
		Deaths:        []CoreDeath{{Core: 2, At: 5 * time.Millisecond}},
		Spikes:        []BudgetSpike{{At: time.Millisecond, Duration: time.Millisecond, Scale: 0.5}},
		ThermalFailAt: 3 * time.Millisecond,
	}
	in, err := NewInjector(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.ObserveSamples(time.Millisecond, truth(4))[1].PowerW; got != 11 {
		t.Errorf("stuck-at fired early: %g", got)
	}
	if got := in.ObserveSamples(2*time.Millisecond, truth(4))[1].PowerW; got != 0.5 {
		t.Errorf("stuck-at reading %g, want 0.5", got)
	}
	if in.CoreDead(2, 4*time.Millisecond) {
		t.Error("core 2 died early")
	}
	if !in.CoreDead(2, 5*time.Millisecond) {
		t.Error("core 2 alive after death time")
	}
	if got := in.Budget(1500*time.Microsecond, 100); got != 50 {
		t.Errorf("spiked budget %g, want 50", got)
	}
	if got := in.Budget(2*time.Millisecond, 100); got != 100 {
		t.Errorf("budget after spike %g, want 100", got)
	}
	if in.ThermalFailed(2 * time.Millisecond) {
		t.Error("thermal failed early")
	}
	if !in.ThermalFailed(3 * time.Millisecond) {
		t.Error("thermal alive after failure time")
	}
}

func TestGainAndDrift(t *testing.T) {
	sc := Scenario{PowerGain: 0.1, PowerDriftPerSec: 100}
	in, _ := NewInjector(sc, 1)
	// At t=1ms: gain = 1 + 0.1 + 0.001*100 = 1.2.
	got := in.ObserveSamples(time.Millisecond, []core.Sample{{PowerW: 10, Instr: 1}})[0].PowerW
	if math.Abs(got-12) > 1e-12 {
		t.Errorf("drifted reading %g, want 12", got)
	}
}

func TestDropNaN(t *testing.T) {
	sc := Scenario{Seed: 1, DropProb: 1, DropAsNaN: true}
	in, _ := NewInjector(sc, 2)
	obs := in.ObserveSamples(0, truth(2))
	for c := range obs {
		if !math.IsNaN(obs[c].PowerW) || !math.IsNaN(obs[c].Instr) {
			t.Errorf("core %d: dropped sample %+v not NaN", c, obs[c])
		}
	}
}

func TestDoneCoresPassThrough(t *testing.T) {
	sc := Scenario{Seed: 1, PowerNoiseSigma: 0.5, DropProb: 1}
	in, _ := NewInjector(sc, 1)
	s := []core.Sample{{PowerW: 3, Instr: 0, Done: true}}
	if got := in.ObserveSamples(0, s)[0]; got != s[0] {
		t.Errorf("done core perturbed: %+v", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Scenario{
		{Stuck: []StuckFault{{Core: 4}}},
		{Deaths: []CoreDeath{{Core: -1}}},
		{DropProb: 1.5},
		{PowerNoiseSigma: -1},
		{Spikes: []BudgetSpike{{At: 0, Duration: 0, Scale: 1}}},
	}
	for i, sc := range bad {
		if _, err := NewInjector(sc, 4); err == nil {
			t.Errorf("scenario %d accepted: %+v", i, sc)
		}
	}
}

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("seed=7,noise=0.05,inoise=0.01,gain=0.02,drift=3,drop=0.1,dropnan,stuck=1:0.5:2ms,stuck=2:nan:1ms,death=3:8ms,spike=4ms:1ms:0.6,thermalfail=6ms")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 7 || sc.PowerNoiseSigma != 0.05 || sc.InstrNoiseSigma != 0.01 ||
		sc.PowerGain != 0.02 || sc.PowerDriftPerSec != 3 || sc.DropProb != 0.1 || !sc.DropAsNaN {
		t.Errorf("scalar fields wrong: %+v", sc)
	}
	if len(sc.Stuck) != 2 || sc.Stuck[0] != (StuckFault{Core: 1, PowerW: 0.5, At: 2 * time.Millisecond}) {
		t.Errorf("stuck faults wrong: %+v", sc.Stuck)
	}
	if !math.IsNaN(sc.Stuck[1].PowerW) {
		t.Errorf("stuck nan not parsed: %+v", sc.Stuck[1])
	}
	if len(sc.Deaths) != 1 || sc.Deaths[0] != (CoreDeath{Core: 3, At: 8 * time.Millisecond}) {
		t.Errorf("deaths wrong: %+v", sc.Deaths)
	}
	if len(sc.Spikes) != 1 || sc.Spikes[0] != (BudgetSpike{At: 4 * time.Millisecond, Duration: time.Millisecond, Scale: 0.6}) {
		t.Errorf("spikes wrong: %+v", sc.Spikes)
	}
	if sc.ThermalFailAt != 6*time.Millisecond {
		t.Errorf("thermalfail wrong: %v", sc.ThermalFailAt)
	}
	if _, err := ParseScenario("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseScenario("stuck=1:2"); err == nil {
		t.Error("malformed stuck accepted")
	}
	if empty, err := ParseScenario("  "); err != nil || empty.Enabled() {
		t.Errorf("blank spec: %+v err %v", empty, err)
	}
}

// TestSolverStallParseValidateHang covers the stall=AT:DUR:HANG injector:
// spec parsing, Validate gating, window activity via DecisionHang, and
// Enabled() visibility.
func TestSolverStallParseValidateHang(t *testing.T) {
	sc, err := ParseScenario("stall=4ms:1ms:500us")
	if err != nil {
		t.Fatal(err)
	}
	want := SolverStall{At: 4 * time.Millisecond, Duration: time.Millisecond, Hang: 500 * time.Microsecond}
	if len(sc.Stalls) != 1 || sc.Stalls[0] != want {
		t.Fatalf("stalls wrong: %+v", sc.Stalls)
	}
	if !sc.Enabled() {
		t.Fatal("stall-only scenario reports disabled")
	}
	if err := sc.Validate(4); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"stall=4ms:1ms", "stall=4ms:1ms:1ms:1ms", "stall=x:1ms:1ms"} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	for _, bad := range []Scenario{
		{Stalls: []SolverStall{{At: 0, Duration: 0, Hang: time.Millisecond}}},
		{Stalls: []SolverStall{{At: 0, Duration: time.Millisecond, Hang: 0}}},
	} {
		if err := bad.Validate(4); err == nil {
			t.Errorf("invalid stall %+v accepted", bad.Stalls[0])
		}
	}

	inj, err := NewInjector(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h := inj.DecisionHang(3 * time.Millisecond); h != 0 {
		t.Fatalf("hang before window: %v", h)
	}
	if h := inj.DecisionHang(4 * time.Millisecond); h != 500*time.Microsecond {
		t.Fatalf("hang at window start: %v", h)
	}
	if h := inj.DecisionHang(5 * time.Millisecond); h != 0 {
		t.Fatalf("hang at window end (exclusive): %v", h)
	}

	// Overlapping windows: the largest active hang wins.
	multi := Scenario{Stalls: []SolverStall{
		{At: 0, Duration: 2 * time.Millisecond, Hang: time.Millisecond},
		{At: time.Millisecond, Duration: 2 * time.Millisecond, Hang: 3 * time.Millisecond},
	}}
	inj2, err := NewInjector(multi, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h := inj2.DecisionHang(1500 * time.Microsecond); h != 3*time.Millisecond {
		t.Fatalf("overlapping windows: %v", h)
	}
}

// TestScenarioValidateRejectsNonFinite pins the NaN/Inf hardening of the
// scalar fault knobs: a corrupted scenario must fail loudly, not poison the
// budget or sample series.
func TestScenarioValidateRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	cases := []Scenario{
		{PowerNoiseSigma: nan},
		{InstrNoiseSigma: nan},
		{PowerGain: nan},
		{PowerDriftPerSec: nan},
		{DropProb: nan},
		{Spikes: []BudgetSpike{{At: 0, Duration: time.Millisecond, Scale: nan}}},
		{Spikes: []BudgetSpike{{At: 0, Duration: time.Millisecond, Scale: math.Inf(1)}}},
		{Spikes: []BudgetSpike{{At: 0, Duration: time.Millisecond, Scale: -1}}},
	}
	for i, sc := range cases {
		if err := sc.Validate(4); err == nil {
			t.Errorf("case %d: non-finite scenario accepted: %+v", i, sc)
		}
	}
}
