package config

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default(4)
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// Table 1 core parameters.
	if c.Core.DispatchWidth != 5 {
		t.Errorf("dispatch rate %d, want 5 per Table 1", c.Core.DispatchWidth)
	}
	if c.Core.InstructionQueue != 256 {
		t.Errorf("instruction queue %d, want 256", c.Core.InstructionQueue)
	}
	if c.Core.MemRS != 18 || c.Core.FixRS != 20 || c.Core.FPRS != 5 {
		t.Errorf("reservation stations (%d,%d,%d), want (18,20,5)", c.Core.MemRS, c.Core.FixRS, c.Core.FPRS)
	}
	if c.Core.NumLSU != 2 || c.Core.NumFXU != 2 || c.Core.NumFPU != 2 || c.Core.NumBRU != 1 {
		t.Error("functional units do not match Table 1 (2 LSU, 2 FXU, 2 FPU, 1 BRU)")
	}
	if c.Core.GPR != 80 || c.Core.FPR != 72 {
		t.Errorf("physical registers (%d,%d), want (80,72)", c.Core.GPR, c.Core.FPR)
	}
	if c.Core.BimodalEntries != 16384 || c.Core.GshareEntries != 16384 || c.Core.SelectorEntries != 16384 {
		t.Error("branch predictor tables are not 16K entries each")
	}
	// Table 1 memory hierarchy.
	if c.Mem.L1D.SizeBytes != 32*1024 || c.Mem.L1D.Assoc != 2 || c.Mem.L1D.BlockSize != 128 || c.Mem.L1D.LatencyCycles != 1 {
		t.Error("L1D does not match Table 1 (32KB, 2-way, 128B, 1 cycle)")
	}
	if c.Mem.L1I.SizeBytes != 64*1024 || c.Mem.L1I.Assoc != 2 {
		t.Error("L1I does not match Table 1 (64KB, 2-way)")
	}
	if c.Mem.L2.SizeBytes != 2*1024*1024 || c.Mem.L2.Assoc != 4 || c.Mem.L2.LatencyCycles != 9 {
		t.Error("L2 does not match Table 1 (2MB, 4-way, 9 cycles)")
	}
	if c.Mem.MemoryLatencyCycles != 77 {
		t.Errorf("memory latency %d, want 77", c.Mem.MemoryLatencyCycles)
	}
	// §5.1 electrical plan and §3.1 time constants.
	if c.Chip.NominalVdd != 1.300 {
		t.Errorf("nominal Vdd %v, want 1.300", c.Chip.NominalVdd)
	}
	if c.Chip.TransitionRateVPerUs != 0.010 {
		t.Errorf("ramp rate %v, want 10 mV/µs", c.Chip.TransitionRateVPerUs)
	}
	if c.Sim.DeltaSim != 50*time.Microsecond || c.Sim.Explore != 500*time.Microsecond {
		t.Error("delta-sim/explore do not match §3.1 (50µs / 500µs)")
	}
}

func TestDerivedQuantities(t *testing.T) {
	c := Default(2)
	if got := c.DeltaPerExplore(); got != 10 {
		t.Errorf("DeltaPerExplore = %d, want 10", got)
	}
	if got := c.CyclesPerDelta(); got != 50000 {
		t.Errorf("CyclesPerDelta = %d, want 50000 at 1 GHz", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		substr string
	}{
		{"zero cores", func(c *Config) { c.Chip.NumCores = 0 }, "NumCores"},
		{"no dispatch", func(c *Config) { c.Core.DispatchWidth = 0 }, "DispatchWidth"},
		{"no lsu", func(c *Config) { c.Core.NumLSU = 0 }, "LSU"},
		{"bad voltage", func(c *Config) { c.Chip.NominalVdd = 0 }, "voltage"},
		{"bad rate", func(c *Config) { c.Chip.TransitionRateVPerUs = -1 }, "transition rate"},
		{"explore not multiple", func(c *Config) { c.Sim.Explore = 75 * time.Microsecond }, "multiple"},
		{"short horizon", func(c *Config) { c.Sim.Horizon = time.Microsecond }, "horizon"},
		{"odd cache sets", func(c *Config) { c.Mem.L1D.SizeBytes = 3000 }, "L1D"},
		{"non-pow2 block", func(c *Config) { c.Mem.L2.BlockSize = 96 }, "L2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default(4)
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken config")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
}

func TestValidateAggregatesMultipleErrors(t *testing.T) {
	c := Default(4)
	c.Chip.NumCores = 0
	c.Chip.NominalVdd = 0
	err := c.Validate()
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "NumCores") || !strings.Contains(err.Error(), "voltage") {
		t.Errorf("joined error %q missing one of the two failures", err)
	}
}
