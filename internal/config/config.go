// Package config holds the design parameters of the simulated processor and
// chip multiprocessor, mirroring Table 1 of the paper ("Design parameters for
// processor model"), plus the simulation time constants of §3.1/§5.1.
//
// All simulators and models in this repository are parameterized by these
// structures so that a single Config value fully determines an experiment.
package config

import (
	"errors"
	"fmt"
	"time"
)

// Core describes one POWER4/5-class out-of-order core (Table 1).
type Core struct {
	// DispatchWidth is the maximum instructions dispatched per cycle.
	DispatchWidth int
	// FetchWidth is the maximum instructions fetched per cycle.
	FetchWidth int
	// RetireWidth is the maximum instructions retired per cycle.
	RetireWidth int
	// InstructionQueue is the size of the unified instruction (issue) queue.
	InstructionQueue int
	// ReorderBuffer bounds the number of in-flight instructions.
	ReorderBuffer int

	// Reservation-station entries per cluster (Table 1: Mem 2x18, FIX 2x20,
	// FP 2x5).
	MemRS int // per LSU
	FixRS int // per FXU
	FPRS  int // per FPU

	// Functional-unit counts (Table 1: 2 LSU, 2 FXU, 2 FPU, 1 BRU).
	NumLSU int
	NumFXU int
	NumFPU int
	NumBRU int

	// Physical registers (Table 1: 80 GPR, 72 FPR).
	GPR int
	FPR int

	// Branch predictor tables (entries): 16K bimodal, 16K gshare, 16K selector.
	BimodalEntries  int
	GshareEntries   int
	SelectorEntries int
	GshareHistory   int // global-history bits used by gshare

	// MSHRs bounds outstanding L1D misses (memory-level parallelism).
	MSHRs int

	// Execution latencies in cycles at nominal frequency.
	FXULatency        int
	FPULatency        int
	BRULatency        int
	MispredictPenalty int
}

// CacheLevel describes one cache.
type CacheLevel struct {
	SizeBytes int
	Assoc     int
	BlockSize int
	// LatencyCycles is the access latency in cycles at nominal (Turbo)
	// frequency. When the core frequency is scaled by DVFS, latencies that
	// belong to asynchronous domains (L2, memory) are rescaled in cycles; see
	// MemoryHierarchy.ScaledLatency.
	LatencyCycles int
}

// MemoryHierarchy mirrors the "Memory Hierarchy" block of Table 1.
type MemoryHierarchy struct {
	L1D CacheLevel
	L1I CacheLevel
	L2  CacheLevel // unified, shared across cores
	// MemoryLatencyCycles is main-memory latency in cycles at nominal
	// frequency (Table 1: 77 cycles).
	MemoryLatencyCycles int
	// L2Banks is the number of independently accessible L2 banks (used only
	// by the full-CMP simulator to model bank conflicts).
	L2Banks int
	// L2BusCyclesPerAccess models shared-bus occupancy per L2 access in the
	// full-CMP simulator.
	L2BusCyclesPerAccess int
}

// Chip describes the CMP organization and electrical plan.
type Chip struct {
	NumCores int
	// NominalVdd is the Turbo supply voltage in volts (§5.1: 1.300 V).
	NominalVdd float64
	// NominalFreqHz is the Turbo clock (≈1 GHz per §4's "100K cycles ≈
	// 100 µs" identity).
	NominalFreqHz float64
	// TransitionRateVPerUs is the DVFS voltage ramp rate (§4: 10 mV/µs).
	TransitionRateVPerUs float64
}

// Sim holds the time constants of the trace-based CMP analysis tool.
type Sim struct {
	// DeltaSim is the statistics-update granularity (§3.1: 50 µs).
	DeltaSim time.Duration
	// Explore is the global-manager decision interval (§3.1: 500 µs).
	Explore time.Duration
	// Horizon is the total simulated wall-clock time when no benchmark
	// completes earlier (Fig 3 timelines span 60 ms).
	Horizon time.Duration
	// SampleInstructions is how many instructions the core simulator measures
	// per (benchmark, phase, mode) sample when characterizing workloads.
	// Instruction-based (not cycle-based) windows guarantee that every mode
	// is characterized over the same program region, so inter-mode ratios are
	// free of sampling noise.
	SampleInstructions int
	// WarmupInstructions are executed before measurement in each sample to
	// warm caches and predictors.
	WarmupInstructions int
	// Seed drives every stochastic choice in workload generation.
	Seed int64
}

// Config aggregates everything an experiment needs.
type Config struct {
	Core Core
	Mem  MemoryHierarchy
	Chip Chip
	Sim  Sim
}

// Default returns the paper's configuration: Table 1 core and memory
// hierarchy, §5.1 electrical plan, §3.1 time constants, for n cores.
func Default(n int) Config {
	return Config{
		Core: Core{
			DispatchWidth:     5,
			FetchWidth:        8,
			RetireWidth:       5,
			InstructionQueue:  256,
			ReorderBuffer:     256,
			MemRS:             18,
			FixRS:             20,
			FPRS:              5,
			NumLSU:            2,
			NumFXU:            2,
			NumFPU:            2,
			NumBRU:            1,
			GPR:               80,
			FPR:               72,
			BimodalEntries:    16384,
			GshareEntries:     16384,
			SelectorEntries:   16384,
			GshareHistory:     14,
			MSHRs:             8,
			FXULatency:        1,
			FPULatency:        4,
			BRULatency:        1,
			MispredictPenalty: 12,
		},
		Mem: MemoryHierarchy{
			L1D:                  CacheLevel{SizeBytes: 32 * 1024, Assoc: 2, BlockSize: 128, LatencyCycles: 1},
			L1I:                  CacheLevel{SizeBytes: 64 * 1024, Assoc: 2, BlockSize: 128, LatencyCycles: 1},
			L2:                   CacheLevel{SizeBytes: 2 * 1024 * 1024, Assoc: 4, BlockSize: 128, LatencyCycles: 9},
			MemoryLatencyCycles:  77,
			L2Banks:              4,
			L2BusCyclesPerAccess: 1,
		},
		Chip: Chip{
			NumCores:             n,
			NominalVdd:           1.300,
			NominalFreqHz:        1e9,
			TransitionRateVPerUs: 0.010,
		},
		Sim: Sim{
			DeltaSim:           50 * time.Microsecond,
			Explore:            500 * time.Microsecond,
			Horizon:            60 * time.Millisecond,
			SampleInstructions: 100000,
			WarmupInstructions: 150000,
			Seed:               20061209, // MICRO-39 dates; any fixed seed works
		},
	}
}

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	var errs []error
	if c.Chip.NumCores < 1 {
		errs = append(errs, fmt.Errorf("config: NumCores = %d, want >= 1", c.Chip.NumCores))
	}
	if c.Core.DispatchWidth < 1 {
		errs = append(errs, errors.New("config: DispatchWidth must be >= 1"))
	}
	if c.Core.NumLSU < 1 || c.Core.NumFXU < 1 || c.Core.NumBRU < 1 {
		errs = append(errs, errors.New("config: need at least one LSU, FXU and BRU"))
	}
	if c.Core.MSHRs < 1 {
		errs = append(errs, errors.New("config: need at least one MSHR"))
	}
	if c.Chip.NominalVdd <= 0 || c.Chip.NominalFreqHz <= 0 {
		errs = append(errs, errors.New("config: nominal voltage and frequency must be positive"))
	}
	if c.Chip.TransitionRateVPerUs <= 0 {
		errs = append(errs, errors.New("config: transition rate must be positive"))
	}
	if c.Sim.DeltaSim <= 0 || c.Sim.Explore <= 0 {
		errs = append(errs, errors.New("config: delta-sim and explore intervals must be positive"))
	}
	if c.Sim.Explore%c.Sim.DeltaSim != 0 {
		errs = append(errs, fmt.Errorf("config: explore (%v) must be a multiple of delta-sim (%v)", c.Sim.Explore, c.Sim.DeltaSim))
	}
	if c.Sim.Horizon < c.Sim.Explore {
		errs = append(errs, errors.New("config: horizon shorter than one explore interval"))
	}
	for _, lv := range []struct {
		name string
		c    CacheLevel
	}{{"L1D", c.Mem.L1D}, {"L1I", c.Mem.L1I}, {"L2", c.Mem.L2}} {
		if err := lv.c.validate(lv.name); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (l CacheLevel) validate(name string) error {
	if l.SizeBytes <= 0 || l.Assoc <= 0 || l.BlockSize <= 0 {
		return fmt.Errorf("config: %s: size, associativity and block size must be positive", name)
	}
	if l.SizeBytes%(l.Assoc*l.BlockSize) != 0 {
		return fmt.Errorf("config: %s: size %d not divisible by assoc*block %d", name, l.SizeBytes, l.Assoc*l.BlockSize)
	}
	n := l.SizeBytes / (l.Assoc * l.BlockSize)
	if n&(n-1) != 0 {
		return fmt.Errorf("config: %s: number of sets %d is not a power of two", name, n)
	}
	if l.BlockSize&(l.BlockSize-1) != 0 {
		return fmt.Errorf("config: %s: block size %d is not a power of two", name, l.BlockSize)
	}
	return nil
}

// DeltaPerExplore returns how many delta-sim intervals fit in one explore
// interval (10 with the paper's constants).
func (c Config) DeltaPerExplore() int {
	return int(c.Sim.Explore / c.Sim.DeltaSim)
}

// CyclesPerDelta returns the number of nominal-frequency cycles in one
// delta-sim interval (50 000 with the paper's constants).
func (c Config) CyclesPerDelta() int {
	return int(c.Sim.DeltaSim.Seconds() * c.Chip.NominalFreqHz)
}
