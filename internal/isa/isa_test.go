package isa

import "testing"

func TestOpString(t *testing.T) {
	want := map[Op]string{
		OpFX: "fx", OpFP: "fp", OpLoad: "load", OpStore: "store", OpBranch: "branch",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
	if got := Op(99).String(); got != "op(99)" {
		t.Errorf("unknown op renders %q", got)
	}
}

func TestOpPredicates(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if !op.Valid() {
			t.Errorf("%v should be valid", op)
		}
	}
	if Op(NumOps).Valid() {
		t.Error("out-of-range op reported valid")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() {
		t.Error("loads and stores are memory ops")
	}
	for _, op := range []Op{OpFX, OpFP, OpBranch} {
		if op.IsMem() {
			t.Errorf("%v should not be a memory op", op)
		}
	}
}

func TestRegClasses(t *testing.T) {
	if Reg(0).IsFP() || Reg(31).IsFP() {
		t.Error("registers 0-31 are integer")
	}
	if !Reg(32).IsFP() || !Reg(63).IsFP() {
		t.Error("registers 32-63 are floating point")
	}
}

func TestInstructionHasDest(t *testing.T) {
	in := Instruction{Dest: NoReg}
	if in.HasDest() {
		t.Error("NoReg dest should report no destination")
	}
	in.Dest = 5
	if !in.HasDest() {
		t.Error("real dest should report a destination")
	}
}
