// Package isa defines the minimal abstract instruction set consumed by the
// core simulator. Workload generators emit streams of Instruction values;
// the out-of-order pipeline in internal/uarch executes them.
//
// The ISA is deliberately small: what matters to the power-management study
// is the mix of integer, floating-point, memory and branch operations, the
// dependence structure between them, and the memory addresses they touch —
// not the semantics of individual opcodes.
package isa

import "fmt"

// Op is an instruction class, chosen to map one-to-one onto the functional
// units of the Table 1 core.
type Op uint8

const (
	// OpFX is a fixed-point ALU operation (FXU).
	OpFX Op = iota
	// OpFP is a floating-point operation (FPU).
	OpFP
	// OpLoad reads memory through an LSU.
	OpLoad
	// OpStore writes memory through an LSU.
	OpStore
	// OpBranch is a conditional branch (BRU).
	OpBranch
	numOps
)

// NumOps is the number of distinct instruction classes.
const NumOps = int(numOps)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpFX:
		return "fx"
	case OpFP:
		return "fp"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Valid reports whether o is a defined instruction class.
func (o Op) Valid() bool { return o < numOps }

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// Reg identifies an architectural register. The generator uses a flat space;
// registers < 32 are integer (GPR), >= 32 are floating point (FPR).
type Reg uint8

// NumArchRegs is the size of the flat architectural register space.
const NumArchRegs = 64

// IsFP reports whether r names a floating-point architectural register.
func (r Reg) IsFP() bool { return r >= 32 }

// NoReg marks an unused register operand.
const NoReg Reg = 255

// Instruction is one dynamic instruction.
type Instruction struct {
	// Seq is the dynamic sequence number (program order).
	Seq uint64
	// PC is the instruction address (used by the branch predictor and L1I).
	PC uint64
	Op Op
	// Dest is the destination register (NoReg for stores and branches).
	Dest Reg
	// Src1 and Src2 are source registers (NoReg when absent).
	Src1, Src2 Reg
	// Addr is the effective address for loads/stores.
	Addr uint64
	// Taken is the branch outcome for OpBranch.
	Taken bool
	// Target is the branch target when Taken.
	Target uint64
}

// HasDest reports whether the instruction writes a register.
func (in Instruction) HasDest() bool { return in.Dest != NoReg }

// Stream supplies dynamic instructions in program order.
//
// Next returns the next instruction. ok is false when the stream is
// exhausted (synthetic streams are effectively infinite; the simulator stops
// after a cycle budget).
type Stream interface {
	Next() (in Instruction, ok bool)
}
