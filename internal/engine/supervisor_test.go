package engine

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/solver"
)

// supRecord is the slice of a DecisionTrace the supervisor tests assert on.
// DecisionTrace buffers are reused across intervals, so the observer copies
// what it needs.
type supRecord struct {
	Interval   int
	BudgetW    float64
	Rung       int
	Rejected   bool
	Repaired   bool
	PredPowerW float64
	TimedOut   bool
	Final      modes.Vector
}

type supObserver struct{ recs []supRecord }

func (o *supObserver) Decision(t *DecisionTrace) {
	o.recs = append(o.recs, supRecord{
		Interval:   t.Interval,
		BudgetW:    t.BudgetW,
		Rung:       t.SupRung,
		Rejected:   t.SupRejected,
		Repaired:   t.SupRepaired,
		PredPowerW: t.SupPredPowerW,
		TimedOut:   t.SupTimedOut,
		Final:      t.Final.Clone(),
	})
}

func (o *supObserver) RunEnd(r *Result) {}

func supervised(opt Options, cfg SupervisorConfig) Options {
	opt.Supervisor = &cfg
	return opt
}

// TestSupervisorHappyPathIdenticalResult pins the transparency contract: on a
// clean run whose rung-0 decisions always pass the conformance gate, a
// supervised run is bit-identical to the unsupervised one — same mode
// vectors, same power series, same totals — and every decision lands on
// rung 0 with no rejects, repairs, or timeouts.
func TestSupervisorHappyPathIdenticalResult(t *testing.T) {
	plan := testPlan(t)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	mk := func() (*fakeSub, Options) {
		sub := newFakeSub(plan, []float64{20, 18, 16, 14}, []float64{4e9, 3e9, 2e9, 1e9}, 500e-6)
		opt := baseOptions(t, plan, 4, 0.75*68)
		opt.Horizon = 10 * time.Millisecond
		return sub, opt
	}
	sub, opt := mk()
	plain := runFake(t, sub, opt)

	sub2, opt2 := mk()
	res := runFake(t, sub2, supervised(opt2, SupervisorConfig{Predictor: pred}))

	if len(res.Modes) != len(plain.Modes) {
		t.Fatalf("supervised run made %d decisions, unsupervised %d", len(res.Modes), len(plain.Modes))
	}
	for i := range plain.Modes {
		if !res.Modes[i].Equal(plain.Modes[i]) {
			t.Fatalf("interval %d: supervised %v != unsupervised %v", i, res.Modes[i], plain.Modes[i])
		}
	}
	for i := range plain.ChipPowerW {
		if res.ChipPowerW[i] != plain.ChipPowerW[i] {
			t.Fatalf("delta %d: chip power %v != %v", i, res.ChipPowerW[i], plain.ChipPowerW[i])
		}
	}
	if res.TotalInstr != plain.TotalInstr || res.EnergyJ != plain.EnergyJ {
		t.Fatalf("totals diverge: instr %v/%v energy %v/%v",
			res.TotalInstr, plain.TotalInstr, res.EnergyJ, plain.EnergyJ)
	}
	if res.Obs.SupervisorRungs[0] != res.Obs.Decisions ||
		res.Obs.ConformanceRejects != 0 || res.Obs.ConformanceRepairs != 0 ||
		res.Obs.DeadlineTimeouts != 0 || res.Obs.DegradedDecisions != 0 {
		t.Fatalf("clean run degraded: %+v", res.Obs)
	}
}

// pacerStage gives every interval a wall-clock floor. Sim time is decoupled
// from wall time, so without it a post-fault drain (bounded in wall time)
// could span an unbounded number of sim intervals and make the recovery
// bound untestable.
type pacerStage struct{ d time.Duration }

func (p pacerStage) Name() string         { return "pacer" }
func (p pacerStage) Apply(st *Step) error { time.Sleep(p.d); return nil }

// TestSupervisorStallAcceptance64 is the headline acceptance scenario: a
// 64-core maxbips-bb run with a 100 µs decision deadline and an injected
// solver stall (each in-window decision hangs 400 µs, 4× the deadline). The
// run must never miss an actuation interval — the watchdog abandons the
// wedged solve and the ladder answers from a lower rung — and must be back
// on rung 0 well before the end of the run once the fault clears.
func TestSupervisorStallAcceptance64(t *testing.T) {
	const (
		n        = 64
		explore  = 500 * time.Microsecond
		deadline = 100 * time.Microsecond
		hang     = 400 * time.Microsecond
		// Stall window: decisions at sim 2.0–3.5 ms (intervals 4..7).
		stallAt  = 2 * time.Millisecond
		stallDur = 2 * time.Millisecond
		horizon  = 60 * time.Millisecond // 120 intervals; clear at interval 8
		clearIv  = 8
		recoverK = 60 // paced: 60 intervals × 50 µs ≫ the 450 µs worst-case drain
	)
	plan := testPlan(t)
	sub := benchSub(t, n)
	pred := core.Predictor{Plan: plan, ExploreSeconds: explore.Seconds()}
	inj, err := fault.NewInjector(fault.Scenario{
		Stalls: []fault.SolverStall{{At: stallAt, Duration: stallDur, Hang: hang}},
	}, n)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := solver.New("bb", solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the front-end wiring: the solver carries a cooperative wall
	// deadline at half the watchdog's, so a healthy rung-0 decision always
	// returns in time even at 64 cores.
	pol := core.SolverPolicy{Solver: solver.WithDeadline(bb, deadline/2, 0), Label: "maxbips-bb"}
	obs := &supObserver{}
	budget := func(time.Duration) float64 { return 0.70 * 21 * n }
	opt := Options{
		Plan:             plan,
		Budget:           budget,
		Decider:          NewDecider(plan, pol, pred, n, nil),
		DeltaSim:         explore / 10,
		DeltasPerExplore: 10,
		Horizon:          horizon,
		Injector:         inj,
		Observer:         obs,
		Stages:           append(DefaultChain(budget, "", inj, nil), pacerStage{50 * time.Microsecond}),
	}
	res := runFake(t, sub, supervised(opt, SupervisorConfig{
		Deadline:  deadline,
		Predictor: pred,
	}))

	wantIv := int(horizon / explore)
	if res.Obs.Decisions != wantIv || len(obs.recs) != wantIv {
		t.Fatalf("actuated %d of %d intervals — the supervisor missed decisions", res.Obs.Decisions, wantIv)
	}
	if res.Obs.DeadlineTimeouts == 0 {
		t.Fatal("stall window produced no deadline timeouts")
	}
	sawDegraded := false
	for _, r := range obs.recs[4:clearIv] {
		if r.Rung > 0 {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("no degraded decision inside the stall window")
	}
	for _, r := range obs.recs[clearIv+recoverK:] {
		if r.Rung != 0 {
			t.Fatalf("interval %d still on rung %d, %d intervals after fault clear",
				r.Interval, r.Rung, r.Interval-clearIv)
		}
		if r.TimedOut {
			t.Fatalf("interval %d timed out after fault clear", r.Interval)
		}
	}
	if res.Obs.SupervisorRungs[0] == 0 {
		t.Fatal("run never reached rung 0")
	}
}

// isDeepest reports v is the uniform emergency floor.
func isDeepest(plan modes.Plan, v modes.Vector) bool {
	floor := modes.Mode(plan.NumModes() - 1)
	for _, m := range v {
		if m != floor {
			return false
		}
	}
	return true
}

// TestSupervisorConformanceProperty is the property test behind the chaos
// harness's conformance invariant: across seeded random fault schedules (in
// deterministic sync mode), the supervisor never actuates a vector whose
// predicted power exceeds budget × (1+tol) — except the uniform deepest
// floor, which is the least the chip can draw and is actuated regardless.
func TestSupervisorConformanceProperty(t *testing.T) {
	plan := testPlan(t)
	const n = 8
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	tol := 0.02
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc := fault.Scenario{Seed: seed + 1}
		if rng.Intn(2) == 0 {
			sc.PowerNoiseSigma = 0.3 * rng.Float64()
		}
		if rng.Intn(2) == 0 {
			sc.DropProb = 0.3 * rng.Float64()
		}
		sc.Spikes = []fault.BudgetSpike{{
			At:       time.Duration(rng.Intn(4)) * time.Millisecond,
			Duration: time.Duration(1+rng.Intn(3)) * time.Millisecond,
			Scale:    []float64{0, 0.05, 0.5, 1.5}[rng.Intn(4)],
		}}
		if rng.Intn(3) == 0 {
			sc.Stuck = []fault.StuckFault{{Core: rng.Intn(n), At: time.Duration(rng.Intn(5)) * time.Millisecond, PowerW: math.NaN()}}
		}
		inj, err := fault.NewInjector(sc, n)
		if err != nil {
			t.Fatal(err)
		}
		sub := benchSub(t, n)
		budget := (0.5 + 0.4*rng.Float64()) * 21 * n
		obs := &supObserver{}
		opt := Options{
			Plan:             plan,
			Budget:           func(time.Duration) float64 { return budget },
			Decider:          NewDecider(plan, core.MaxBIPS{}, pred, n, nil),
			DeltaSim:         50 * time.Microsecond,
			DeltasPerExplore: 10,
			Horizon:          10 * time.Millisecond,
			Injector:         inj,
			Observer:         obs,
		}
		res := runFake(t, sub, supervised(opt, SupervisorConfig{ToleranceFrac: tol, Predictor: pred}))
		if res.Obs.Decisions == 0 {
			t.Fatalf("seed %d: no decisions", seed)
		}
		for _, r := range obs.recs {
			limit := r.BudgetW*(1+tol) + 1e-9*(1+math.Abs(r.BudgetW))
			if r.PredPowerW > limit && !isDeepest(plan, r.Final) {
				t.Fatalf("seed %d interval %d: actuated rung-%d vector predicted at %.4f W over budget %.4f W (limit %.4f)",
					seed, r.Interval, r.Rung, r.PredPowerW, r.BudgetW, limit)
			}
			if math.IsNaN(r.PredPowerW) || math.IsInf(r.PredPowerW, 0) {
				t.Fatalf("seed %d interval %d: non-finite predicted power", seed, r.Interval)
			}
		}
	}
}

// TestSupervisorSyncDeterministic pins that the sync supervisor (Deadline 0)
// is bit-identical across reruns even under faults — the property the chaos
// harness's determinism invariant relies on.
func TestSupervisorSyncDeterministic(t *testing.T) {
	plan := testPlan(t)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	run := func() (*Result, []supRecord) {
		inj, err := fault.NewInjector(fault.Scenario{Seed: 5, PowerNoiseSigma: 0.2, DropProb: 0.1,
			Spikes: []fault.BudgetSpike{{At: time.Millisecond, Duration: 2 * time.Millisecond, Scale: 0.05}}}, 4)
		if err != nil {
			t.Fatal(err)
		}
		obs := &supObserver{}
		opt := baseOptions(t, plan, 4, 0.6*68)
		opt.Horizon = 8 * time.Millisecond
		opt.Injector = inj
		opt.Observer = obs
		res := runFake(t, newFakeSub(plan, []float64{20, 18, 16, 14}, []float64{4e9, 3e9, 2e9, 1e9}, 500e-6),
			supervised(opt, SupervisorConfig{Predictor: pred}))
		return res, obs.recs
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1.TotalInstr != r2.TotalInstr || r1.EnergyJ != r2.EnergyJ || r1.Obs.SupervisorRungs != r2.Obs.SupervisorRungs {
		t.Fatalf("sync supervisor rerun diverged: %+v vs %+v", r1.Obs, r2.Obs)
	}
	for i := range t1 {
		if !t1[i].Final.Equal(t2[i].Final) || t1[i].Rung != t2[i].Rung || t1[i].PredPowerW != t2[i].PredPowerW {
			t.Fatalf("interval %d diverged across reruns: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

// TestOptionsValidate is the table-driven typed-error check for engine.Options.
func TestOptionsValidate(t *testing.T) {
	plan := testPlan(t)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	good := func() Options { return baseOptions(t, plan, 4, 60) }
	cases := []struct {
		name  string
		mut   func(*Options)
		field string
	}{
		{"nil decider", func(o *Options) { o.Decider = nil }, "Decider"},
		{"nil budget", func(o *Options) { o.Budget = nil }, "Budget"},
		{"zero delta", func(o *Options) { o.DeltaSim = 0 }, "DeltaSim"},
		{"negative delta", func(o *Options) { o.DeltaSim = -time.Microsecond }, "DeltaSim"},
		{"zero deltas per explore", func(o *Options) { o.DeltasPerExplore = 0 }, "DeltasPerExplore"},
		{"negative horizon", func(o *Options) { o.Horizon = -time.Millisecond }, "Horizon"},
		{"negative explore", func(o *Options) { o.Explore = -time.Millisecond }, "Explore"},
		{"negative supervisor deadline", func(o *Options) {
			o.Supervisor = &SupervisorConfig{Deadline: -1, Predictor: pred}
		}, "Supervisor.Deadline"},
		{"negative node budget", func(o *Options) {
			o.Supervisor = &SupervisorConfig{NodeBudget: -1, Predictor: pred}
		}, "Supervisor.NodeBudget"},
		{"NaN tolerance", func(o *Options) {
			o.Supervisor = &SupervisorConfig{ToleranceFrac: math.NaN(), Predictor: pred}
		}, "Supervisor.ToleranceFrac"},
		{"missing supervisor predictor", func(o *Options) {
			o.Supervisor = &SupervisorConfig{}
		}, "Supervisor.Predictor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := good()
			tc.mut(&opt)
			sub := newFakeSub(plan, []float64{20, 18, 16, 14}, []float64{4e9, 3e9, 2e9, 1e9}, 500e-6)
			_, err := Run(sub, opt)
			if err == nil {
				t.Fatal("accepted")
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %T (%v) is not *OptionError", err, err)
			}
			if oe.Field != tc.field {
				t.Fatalf("rejected field %q, want %q", oe.Field, tc.field)
			}
		})
	}
}

// TestSupervisorHappyPathZeroMarginalAllocs pins the supervisor's steady-state
// cost on the rung-0 happy path: per extra explore interval it must allocate
// exactly what the unsupervised engine allocates — zero marginal allocations
// of its own (the matrices and sample buffers are built once and reused).
func TestSupervisorHappyPathZeroMarginalAllocs(t *testing.T) {
	plan := testPlan(t)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	run := func(sup bool, horizon time.Duration) float64 {
		return testing.AllocsPerRun(10, func() {
			opt := Options{
				Plan:             plan,
				Budget:           func(time.Duration) float64 { return 63 },
				Decider:          NewDecider(plan, core.MaxBIPS{}, pred, 4, nil),
				DeltaSim:         50 * time.Microsecond,
				DeltasPerExplore: 10,
				Horizon:          horizon,
			}
			if sup {
				opt.Supervisor = &SupervisorConfig{Predictor: pred}
			}
			if _, err := Run(benchSub(t, 4), opt); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Marginal allocations per 10 extra intervals, supervised minus
	// unsupervised: the supervisor's fixed setup cost (its buffers, the
	// watchdog-free sync path has no goroutine) cancels in the difference of
	// differences, leaving only its per-interval allocation — pinned at 0.
	supGrowth := run(true, 10*time.Millisecond) - run(true, 5*time.Millisecond)
	plainGrowth := run(false, 10*time.Millisecond) - run(false, 5*time.Millisecond)
	if marginal := supGrowth - plainGrowth; marginal != 0 {
		t.Fatalf("supervisor allocates %.1f per 10 intervals on the happy path, want 0 (sup %v, plain %v)",
			marginal, supGrowth, plainGrowth)
	}
}
