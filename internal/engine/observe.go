package engine

import (
	"time"

	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/solver"
)

// StageTrace is the observed effect of one middleware stage on one decision:
// the budget left in force after the stage ran, whether the stage overrode
// anything upstream (lowered/raised the budget or replaced the observed
// samples), and how long its Apply took. Latencies are wall-clock and
// therefore excluded from deterministic trace fingerprints.
type StageTrace struct {
	Name     string
	BudgetW  float64
	Override bool
	DurNs    int64
}

// DecisionTrace is the full observable state of one explore-boundary
// decision: what the manager was shown, what every middleware stage did to
// it, and what came out. The engine reuses the trace value and the slices it
// references between intervals — an Observer must copy anything it retains
// past the Decision call (the internal/obs writers serialize immediately).
type DecisionTrace struct {
	// Interval is the explore-interval index, starting at 0.
	Interval int
	// Now is the simulated time of the decision.
	Now time.Duration
	// BudgetW is the final budget handed to the decider, after every stage.
	BudgetW float64
	// ChipPowerW is the independent chip-level (VRM) measurement the guarded
	// manager cross-checks against.
	ChipPowerW float64
	// TrueSamples are the substrate's honest observations; Samples are what
	// the manager actually saw (identical unless a fault stage intervened).
	TrueSamples []core.Sample
	Samples     []core.Sample
	// Stages records the middleware chain's per-stage budget refinement.
	Stages []StageTrace
	// Candidate is the policy's raw pre-sanitize vector when it differs from
	// Final, nil otherwise (also nil while the guard's emergency throttle
	// bypasses the policy entirely).
	Candidate modes.Vector
	// Final is the mode vector adopted for the coming interval.
	Final modes.Vector
	// GuardEmergency reports that the resilient manager's hard-cap throttle
	// made this decision instead of the policy.
	GuardEmergency bool
	// Stall is the synchronized DVFS transition stall charged for the switch.
	Stall time.Duration
	// DecideNs is the wall-clock latency of the decider's StepDecision.
	DecideNs int64
	// Supervised reports the decision ran under the decision supervisor
	// (Options.Supervisor); the Sup* fields below are meaningful only then.
	Supervised bool
	// SupRung is the degradation-ladder rung that produced Final: 0 the
	// configured decider, 1 the shared greedy kernel, 2 the last-known-good
	// vector refitted to the budget, 3 the uniform deepest-mode throttle.
	SupRung int
	// SupRejected reports the conformance gate rejected the rung-0 vector;
	// SupRepaired reports Final was produced by greedy demotion repair.
	SupRejected bool
	SupRepaired bool
	// SupPredPowerW is the supervisor's own predicted chip power for Final
	// (the value the conformance gate compared against the budget).
	SupPredPowerW float64
	// SupTimedOut reports the watchdog abandoned the configured decider
	// mid-solve this interval (wall-clock dependent, so excluded from
	// deterministic trace fingerprints).
	SupTimedOut bool
}

// Observer receives one DecisionTrace per explore interval and the completed
// Result when the run ends. A nil Observer in Options is the zero-overhead
// path: the engine never constructs a DecisionTrace and never reads the
// clock. Implementations live in internal/obs (JSONL writer, in-memory
// collector).
type Observer interface {
	// Decision is called once per explore-boundary decision, after the
	// middleware chain and the decider have run but before the interval is
	// simulated. The trace and its slices are only valid during the call.
	Decision(t *DecisionTrace)
	// RunEnd is called once with the finished Result before Run returns.
	RunEnd(r *Result)
}

// StageOverride counts how many decisions one middleware stage overrode —
// changed the budget set upstream or replaced the observed samples.
type StageOverride struct {
	Stage string
	Count int
}

// ObsCounters are the engine's always-on lightweight gauges: they cost a few
// integer updates per decision whether or not an Observer is attached, and
// are snapshot into Result for rendering (gpmsim run, internal/report).
type ObsCounters struct {
	// Decisions counts explore-boundary decisions taken.
	Decisions int
	// StageOverrides counts overrides per middleware stage, in chain order.
	// The first stage (the budget source) seeds the budget rather than
	// overriding one and is never counted.
	StageOverrides []StageOverride
	// GuardOverrides counts decisions the resilient manager's emergency
	// throttle made in place of the policy.
	GuardOverrides int
	// SolverNodes accumulates allocation-solver search nodes across
	// decisions, when the policy is solver-backed and counting is wired
	// (core.SolverPolicy.NodeCount).
	SolverNodes int64
	// WarmHints counts decisions handed the previous actuated vector as a
	// warm-start hint (the loop withholds it across discontinuities: first
	// decision, budget jumps, core death/completion, emergency throttle,
	// supervisor degradation).
	WarmHints int
	// SolverMemoHits/SolverWarmSolves/SolverHintReturns/SolverPruned
	// snapshot the solver session's cumulative counters at Finish, when the
	// policy owns one (solver.SessionStats): memo-answered solves,
	// hint-floored BB solves, aborted solves answered by the hint, and
	// pruned subtrees (SolverPruned/SolverNodes is the incumbent-prune
	// rate; SolverNodes vs a cold run of the same scenario is the
	// nodes-saved measure).
	SolverMemoHits    int64
	SolverWarmSolves  int64
	SolverHintReturns int64
	SolverPruned      int64
	// DirtyCores/DeltaSolves/DeltaCertified/DeltaFallbacks snapshot the
	// session's delta-path counters at Finish: cores the generation handshake
	// flagged changed across delta-eligible intervals, incremental re-solve
	// attempts, attempts whose patched vector was certified optimal and
	// returned without a full solve, and attempts demoted to a warm solve.
	DirtyCores     int64
	DeltaSolves    int64
	DeltaCertified int64
	DeltaFallbacks int64
	// Invalidate* count the session invalidations the loop issued per
	// discontinuity class: budget steps beyond the warm-hint tolerance, core
	// death/completion changing the live set, emergency throttles, and
	// supervisor degradation (rung > 0, watchdog timeout, or wedge).
	InvalidateBudgetStep int
	InvalidateCoreDeath  int
	InvalidateEmergency  int
	InvalidateDegraded   int
	// TraceRecords counts DecisionTraces emitted to the attached Observer
	// (zero when tracing is off).
	TraceRecords int
	// SupervisorRungs counts decisions actuated per degradation-ladder rung
	// (all zero without a supervisor; a healthy run lands on rung 0).
	SupervisorRungs [4]int
	// ConformanceRejects counts decisions whose rung-0 vector failed the
	// budget-conformance gate; ConformanceRepairs counts the subset fixed in
	// place by greedy demotion.
	ConformanceRejects int
	ConformanceRepairs int
	// DeadlineTimeouts counts decisions the supervisor's watchdog abandoned
	// mid-solve; WedgedDecisions counts decisions that skipped the configured
	// decider entirely because an abandoned solve was still running.
	DeadlineTimeouts int
	WedgedDecisions  int
	// DegradedDecisions counts decisions actuated from a rung above 0;
	// LongestDegraded is the longest consecutive run of them in explore
	// intervals — the supervisor's recovery-latency bound for the run.
	DegradedDecisions int
	LongestDegraded   int
}

// emergencyReporter is the optional Decider facet the engine polls for the
// GuardOverrides counter (satisfied by core.ResilientManager).
type emergencyReporter interface{ InEmergency() bool }

// candidateReporter is the optional Decider facet exposing the policy's raw
// pre-sanitize vector (satisfied by both managers).
type candidateReporter interface{ LastCandidate() modes.Vector }

// nodeReporter is the optional Policy facet exposing cumulative solver node
// counts (satisfied by core.SolverPolicy when NodeCount is wired).
type nodeReporter interface{ SolveNodes() (int64, bool) }

// sessionOwner is the optional Policy facet for warm-start solver sessions
// (satisfied by *core.SolverPolicy): the loop creates the session when it
// adopts the policy and tears it down on Close.
type sessionOwner interface {
	EnsureSession()
	CloseSession()
}

// sessionReporter is the optional Policy facet exposing the session's
// cumulative warm-start counters for Result.Obs.
type sessionReporter interface{ SessionStats() (solver.SessionStats, bool) }

// sessionInvalidator is the optional Policy facet the loop uses to drop the
// session's memo, delta certificate, and stability flag at workload
// discontinuities (satisfied by *core.SolverPolicy).
type sessionInvalidator interface{ InvalidateSession() }

// policyHolder lets the engine reach the decider's policy for nodeReporter.
type policyHolder interface{ Policy() core.Policy }

// supervisionReporter is the Decider facet the engine polls for supervisor
// accounting (satisfied by the internal decision supervisor).
type supervisionReporter interface{ LastSupervision() Supervision }

// currentSetter is the optional Decider facet the supervisor uses to
// re-anchor the inner manager when it actuates a vector the manager did not
// choose (satisfied by both core managers).
type currentSetter interface{ SetCurrent(v modes.Vector) }

// sameSamples reports whether two sample slices are the same backing array —
// the cheap "did a stage replace the observation?" test.
func sameSamples(a, b []core.Sample) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}
