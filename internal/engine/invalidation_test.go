package engine

import (
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/solver"
)

// driftSub is a fakeSub whose core 0 speeds up slightly every explore
// interval: consecutive decisions see one dirty core against bit-identical
// budgets and matrices elsewhere — exactly the steady-state regime the
// incremental re-solve targets.
type driftSub struct {
	*fakeSub
	steps int
}

func (s *driftSub) DeltaStep(v modes.Vector, execSec float64, live []bool, energyJ, instr []float64) {
	s.fakeSub.DeltaStep(v, execSec, live, energyJ, instr)
	s.steps++
	if s.steps%10 == 0 { // once per explore interval (10 delta steps each)
		s.rate[0] *= 1.0015
	}
}

// invalObserver wraps a session-owning solver policy and verifies, decision
// by decision, that the decision immediately following an InvalidateSession
// call is answered by a full solve — never by the memo or the delta patch.
// That is the contract the engine's discontinuity invalidations exist to
// enforce, and aggregate counters cannot see it (the intervals around a
// discontinuity legitimately use the fast paths).
type invalObserver struct {
	*core.SolverPolicy
	invalidated    bool
	coldAfterInval int
	badAfterInval  int
}

func (p *invalObserver) InvalidateSession() {
	p.invalidated = true
	p.SolverPolicy.InvalidateSession()
}

func (p *invalObserver) Decide(ctx core.Context) modes.Vector {
	before, _ := p.SessionStats()
	v := p.SolverPolicy.Decide(ctx)
	after, _ := p.SessionStats()
	if p.invalidated {
		if after.MemoHits > before.MemoHits || after.DeltaSolves > before.DeltaSolves {
			p.badAfterInval++
		} else {
			p.coldAfterInval++
		}
		p.invalidated = false
	}
	return v
}

func deltaOptions(t *testing.T, plan modes.Plan, pol core.Policy, n int, budget func(time.Duration) float64) Options {
	t.Helper()
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	return Options{
		Plan:             plan,
		Budget:           budget,
		Decider:          NewDecider(plan, pol, pred, n, nil),
		DeltaSim:         50 * time.Microsecond,
		DeltasPerExplore: 10,
		Horizon:          4 * time.Millisecond, // 8 decisions
	}
}

// TestEngineDeltaSteadyState is the tentpole's end-to-end positive control:
// with a session-owning BB policy over a one-dirty-core substrate at an
// ample, flat budget, the predictor handshake must reach the session and the
// dirty intervals must be answered by certified delta solves — visible in
// the Result's Obs counters.
func TestEngineDeltaSteadyState(t *testing.T) {
	plan := testPlan(t)
	sub := &driftSub{fakeSub: newFakeSub(plan, []float64{20, 18, 15, 17}, []float64{900, 1000, 700, 850}, 500e-6)}
	pol := core.NewSolverPolicy(&solver.BB{})
	res, err := Run(sub, deltaOptions(t, plan, pol, 4, func(time.Duration) float64 { return 1e12 }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.DirtyCores == 0 {
		t.Fatalf("handshake never reported dirt to the session: %+v", res.Obs)
	}
	if res.Obs.DeltaSolves == 0 {
		t.Fatalf("no delta solve attempted on one-dirty-core steady state: %+v", res.Obs)
	}
	if res.Obs.DeltaCertified == 0 {
		t.Fatalf("no delta certified at an unconstrained budget (argmax regime): %+v", res.Obs)
	}
	if res.Obs.InvalidateBudgetStep != 0 || res.Obs.InvalidateCoreDeath != 0 ||
		res.Obs.InvalidateEmergency != 0 || res.Obs.InvalidateDegraded != 0 {
		t.Fatalf("clean run recorded invalidations: %+v", res.Obs)
	}
}

// TestEngineBudgetStepInvalidatesSession pins the >25% budget-step
// discontinuity: the session is invalidated exactly once (the step), the
// reason is counted, and the run still completes with warm decisions on both
// flat segments.
func TestEngineBudgetStepInvalidatesSession(t *testing.T) {
	plan := testPlan(t)
	sub := &driftSub{fakeSub: newFakeSub(plan, []float64{20, 18, 15, 17}, []float64{900, 1000, 700, 850}, 500e-6)}
	pol := &invalObserver{SolverPolicy: core.NewSolverPolicy(&solver.BB{})}
	res, err := Run(sub, deltaOptions(t, plan, pol, 4, func(now time.Duration) float64 {
		if now >= 2*time.Millisecond {
			return 30 // −50% ≫ the 25% continuity threshold
		}
		return 60
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.InvalidateBudgetStep != 1 {
		t.Fatalf("InvalidateBudgetStep = %d, want 1 (one brownout): %+v", res.Obs.InvalidateBudgetStep, res.Obs)
	}
	if res.Obs.WarmHints == 0 {
		t.Fatal("no warm decisions on the flat segments")
	}
	if pol.badAfterInval != 0 || pol.coldAfterInval != 1 {
		t.Fatalf("post-invalidation decisions: %d fast-path (want 0), %d cold (want 1)",
			pol.badAfterInval, pol.coldAfterInval)
	}
}

// TestEngineCoreDeathInvalidatesSession pins the population discontinuity.
// A death zeroes one core's sample — precisely the one-dirty-core shape the
// delta path would patch if allowed — so the death decision itself must be a
// full cold solve, while the steady intervals around it stay on the fast
// paths (proving the scenario actually exercises them).
func TestEngineCoreDeathInvalidatesSession(t *testing.T) {
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 18, 15, 17}, []float64{900, 1000, 700, 850}, 500e-6)
	inj, err := fault.NewInjector(fault.Scenario{
		Deaths: []fault.CoreDeath{{Core: 2, At: 1200 * time.Microsecond}},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pol := &invalObserver{SolverPolicy: core.NewSolverPolicy(&solver.BB{})}
	opt := deltaOptions(t, plan, pol, 4, func(time.Duration) float64 { return 1e12 })
	opt.Injector = inj
	res, err := Run(sub, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.InvalidateCoreDeath != 1 {
		t.Fatalf("InvalidateCoreDeath = %d, want 1: %+v", res.Obs.InvalidateCoreDeath, res.Obs)
	}
	if pol.badAfterInval != 0 || pol.coldAfterInval != 1 {
		t.Fatalf("death decision: %d fast-path (want 0), %d cold (want 1): %+v",
			pol.badAfterInval, pol.coldAfterInval, res.Obs)
	}
	if res.Obs.SolverMemoHits == 0 {
		t.Fatalf("steady state never memo-answered — the scenario is not isolating the death: %+v", res.Obs)
	}
}

// TestEngineEmergencyInvalidatesSession pins the guard discontinuity: under
// an unmeetable budget (OvershootK=1 engages the throttle on the very first
// decision) the guard actuates the deepest floor — a vector the solver never
// chose — so every interval is an emergency interval, each one must
// invalidate the session, and neither the memo nor the delta path may ever
// answer a decision.
func TestEngineEmergencyInvalidatesSession(t *testing.T) {
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 18, 15, 17}, []float64{900, 1000, 700, 850}, 500e-6)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	pol := core.NewSolverPolicy(&solver.BB{})
	opt := deltaOptions(t, plan, pol, 4, func(time.Duration) float64 { return 1 })
	opt.Decider = NewDecider(plan, pol, pred, 4, &core.GuardConfig{OvershootK: 1})
	res, err := Run(sub, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.GuardOverrides != res.Obs.Decisions {
		t.Fatalf("GuardOverrides = %d of %d decisions, want all (unmeetable budget): %+v",
			res.Obs.GuardOverrides, res.Obs.Decisions, res.Obs)
	}
	if res.Obs.InvalidateEmergency != res.Obs.GuardOverrides {
		t.Fatalf("InvalidateEmergency = %d != GuardOverrides = %d",
			res.Obs.InvalidateEmergency, res.Obs.GuardOverrides)
	}
	if res.Obs.DeltaSolves != 0 || res.Obs.SolverMemoHits != 0 {
		t.Fatalf("memo/delta answered a decision during emergency throttling: %+v", res.Obs)
	}
}

// TestEngineDegradedInvalidatesSession pins the supervisor discontinuity: a
// stall window forces deadline timeouts and degraded-rung answers, and each
// such decision must invalidate the session before the next interval could
// warm-start or delta-patch on top of a vector the solver never produced.
func TestEngineDegradedInvalidatesSession(t *testing.T) {
	const (
		n        = 8
		explore  = 500 * time.Microsecond
		deadline = 100 * time.Microsecond
	)
	plan := testPlan(t)
	sub := newFakeSub(plan,
		[]float64{20, 18, 15, 17, 21, 19, 16, 14},
		[]float64{900, 1000, 700, 850, 950, 880, 760, 990}, explore.Seconds())
	pred := core.Predictor{Plan: plan, ExploreSeconds: explore.Seconds()}
	inj, err := fault.NewInjector(fault.Scenario{
		Stalls: []fault.SolverStall{{At: time.Millisecond, Duration: 1500 * time.Microsecond, Hang: 4 * deadline}},
	}, n)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := solver.New("bb", solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pol := &invalObserver{SolverPolicy: core.NewSolverPolicy(solver.WithDeadline(bb, deadline/2, 0))}
	budget := func(time.Duration) float64 { return 100 }
	opt := Options{
		Plan:             plan,
		Budget:           budget,
		Decider:          NewDecider(plan, pol, pred, n, nil),
		DeltaSim:         explore / 10,
		DeltasPerExplore: 10,
		Horizon:          5 * time.Millisecond,
		Injector:         inj,
		Stages:           append(DefaultChain(budget, "", inj, nil), pacerStage{50 * time.Microsecond}),
	}
	res, err := Run(sub, supervised(opt, SupervisorConfig{Deadline: deadline, Predictor: pred}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.DeadlineTimeouts == 0 {
		t.Fatal("stall window produced no deadline timeouts")
	}
	if res.Obs.InvalidateDegraded == 0 {
		t.Fatalf("degraded decisions did not invalidate the session: %+v", res.Obs)
	}
	if pol.badAfterInval != 0 {
		t.Fatalf("%d post-degradation decisions were memo/delta-answered", pol.badAfterInval)
	}
}
