package engine

import (
	"fmt"
	"math"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/thermal"
)

// Step is the mutable state one explore-boundary decision flows through: the
// middleware chain transforms it in order, then the Decider consumes it. It
// mirrors cmpsim's historical inline semantics — budget source → fault spike
// → thermal clamp → fault-injected observation → (guarded) decision — as
// explicit, composable stages.
type Step struct {
	// Now is the simulated time of the decision.
	Now time.Duration
	// BudgetW is the chip power budget, refined stage by stage.
	BudgetW float64
	// TrueSamples are the substrate's honest interval-average observations.
	// Stages must not mutate them.
	TrueSamples []core.Sample
	// Samples is what the manager will observe — initially TrueSamples,
	// possibly replaced by a fault-injection stage.
	Samples []core.Sample
	// ChipPowerW is the independent chip-level (VRM) measurement: the sum of
	// the true per-core powers.
	ChipPowerW float64
}

// Stage is one link of the decision middleware chain.
type Stage interface {
	// Name identifies the stage in errors and docs.
	Name() string
	// Apply transforms the step state. An error aborts the run.
	Apply(st *Step) error
}

// BudgetSource seeds the budget from the run's planned budget function and
// rejects NaN/negative outputs (a silent bad budget would poison every
// downstream decision).
type BudgetSource struct {
	Fn func(t time.Duration) float64
	// ErrPrefix names the front end in validation errors ("cmpsim",
	// "fullsim"); empty selects "engine".
	ErrPrefix string
}

func (b BudgetSource) Name() string { return "budget" }

func (b BudgetSource) Apply(st *Step) error {
	w := b.Fn(st.Now)
	if math.IsNaN(w) || w < 0 {
		prefix := b.ErrPrefix
		if prefix == "" {
			prefix = "engine"
		}
		return fmt.Errorf("%s: budget function returned %v at t=%v; budgets must be non-negative", prefix, w, st.Now)
	}
	st.BudgetW = w
	return nil
}

// FaultBudget applies the injector's transient budget spikes (brownouts,
// surge headroom) to the planned budget.
type FaultBudget struct{ Inj *fault.Injector }

func (f FaultBudget) Name() string { return "fault-budget" }

func (f FaultBudget) Apply(st *Step) error {
	st.BudgetW = f.Inj.Budget(st.Now, st.BudgetW)
	return nil
}

// ThermalClamp caps the budget at the thermal governor's allowance:
// min(budget, thermal budget). A dead thermal sensor (Inj.ThermalFailed)
// repeats its last good reading; that last-good value is seeded from the
// governor's initial reading at construction, so a sensor dead from birth
// clamps to the cold-chip allowance instead of never clamping at all (the
// historical +Inf initialization).
type ThermalClamp struct {
	Gov *thermal.Governor
	Inj *fault.Injector // may be nil: sensor never fails
	// last is the last good reading, pre-seeded by NewThermalClamp.
	last float64
}

// NewThermalClamp builds the clamp stage with the last-good reading seeded
// from the governor's current (initial) state.
func NewThermalClamp(gov *thermal.Governor, inj *fault.Injector) *ThermalClamp {
	return &ThermalClamp{Gov: gov, Inj: inj, last: gov.BudgetW()}
}

func (t *ThermalClamp) Name() string { return "thermal-clamp" }

func (t *ThermalClamp) Apply(st *Step) error {
	tb := t.Gov.BudgetW()
	if t.Inj != nil && t.Inj.ThermalFailed(st.Now) {
		tb = t.last // a dead sensor repeats its final sample
	} else {
		t.last = tb
	}
	if tb < st.BudgetW {
		st.BudgetW = tb
	}
	return nil
}

// FaultObserve perturbs the true samples into what the manager's sensors
// report: noise, drift, dropout, stuck-at faults.
type FaultObserve struct{ Inj *fault.Injector }

func (f FaultObserve) Name() string { return "fault-observe" }

func (f FaultObserve) Apply(st *Step) error {
	st.Samples = f.Inj.ObserveSamples(st.Now, st.TrueSamples)
	return nil
}

// DefaultChain assembles the canonical stage order — budget source →
// fault-injected budget → thermal clamp → fault-injected observation — from
// whichever components are configured. The guard (core.ResilientManager via
// GuardedDecider) is the chain's terminal consumer rather than a Stage: it
// owns the decision itself.
func DefaultChain(budget func(time.Duration) float64, errPrefix string, inj *fault.Injector, gov *thermal.Governor) []Stage {
	chain := []Stage{BudgetSource{Fn: budget, ErrPrefix: errPrefix}}
	if inj != nil {
		chain = append(chain, FaultBudget{Inj: inj})
	}
	if gov != nil {
		chain = append(chain, NewThermalClamp(gov, inj))
	}
	if inj != nil {
		chain = append(chain, FaultObserve{Inj: inj})
	}
	return chain
}
