// Package engine is the substrate-agnostic global power manager control loop
// — the paper's §2/§5.5 sense → predict → decide → actuate cycle, extracted
// so the trace-based CMP analysis tool (internal/cmpsim) and the cycle-level
// full-CMP simulator (internal/fullsim) run the *same* loop instead of two
// divergent copies.
//
// The engine owns everything substrate-independent: explore/delta-sim
// cadence, the decision middleware chain (budget source → fault-injected
// budget → thermal clamp → fault-injected observation), the §5.1
// synchronized-stall charging with worst-case-endpoint stall power, the
// per-interval sample averaging (including truncated final intervals), the
// thermal integration, and all accounting (energy, overshoot integrals,
// guard interventions) in one Result. A Substrate supplies the simulated
// hardware: bootstrap probe, per-delta advancement split into stall and
// execution, completion reporting, and mode-power estimates for the stall
// endpoints. A Decider supplies the manager — plain or resilient — through
// core.Decision, so no `if guarded` forks survive in the loop.
package engine

import (
	"math"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/metrics"
	"gpm/internal/modes"
	"gpm/internal/thermal"
	"gpm/internal/workload"
)

// Substrate is the simulated hardware under global power management.
// Implementations are single-run and stateful: the engine advances them
// monotonically in delta-sim steps.
type Substrate interface {
	// NumCores returns the chip width.
	NumCores() int
	// Bootstrap probes each core's behaviour over one explore interval with
	// every core at Turbo and returns the per-core samples the local
	// monitors would report before the first decision. Whether the probe
	// consumes simulated time is substrate-defined (the trace players peek
	// without moving; the cycle-level chip runs a real probe interval).
	Bootstrap() []core.Sample
	// ModePowerW estimates core c's average power in mode m at the core's
	// current program position — the §5.1 worst-case transition endpoints
	// are charged at max(ModePowerW(old), ModePowerW(new)).
	ModePowerW(c int, m modes.Mode) float64
	// DeltaStep advances the live cores by execSec seconds of execution in
	// vector v — the remainder of the delta interval is synchronized stall,
	// which the engine charges separately — and fills energyJ/instr with
	// each core's execution-window energy and committed instructions.
	// Cores with live[c]==false must not advance and report zero.
	DeltaStep(v modes.Vector, execSec float64, live []bool, energyJ, instr []float64)
	// Finished reports that core c's program has completed (§5.1 stops the
	// run at the first completion).
	Finished(c int) bool
	// Lookahead returns the oracle probe (§5.6), or nil if the substrate
	// cannot see the future (the cycle-level chip cannot).
	Lookahead() func(c int, m modes.Mode) (powerW, instr float64)
	// MemBound returns the per-core memory-boundedness ranking, or nil.
	MemBound() []float64
}

// Decider is one global power manager: plain (*core.Manager) or guarded
// (*core.ResilientManager), both satisfy it via core.Decision.
type Decider interface {
	// StepDecision performs one explore-boundary decision and returns the
	// next mode vector.
	StepDecision(d core.Decision) modes.Vector
	// Current returns the mode vector currently in force.
	Current() modes.Vector
	// GuardStats reports the guard's intervention counters and whether the
	// decider is guarded at all.
	GuardStats() (core.ResilientStats, bool)
}

// Compile-time proof that both managers satisfy Decider.
var (
	_ Decider = (*core.Manager)(nil)
	_ Decider = (*core.ResilientManager)(nil)
)

// NewDecider builds the manager for n cores: guarded when guard is non-nil,
// plain otherwise.
func NewDecider(plan modes.Plan, policy core.Policy, pred core.Predictor, n int, guard *core.GuardConfig) Decider {
	return NewDeciderWith(plan, policy, pred, n, guard)
}

// NewDeciderWith is NewDecider over any core.MatrixPredictor — the seam the
// front ends use to arm the history-table phase predictor
// (cmpsim.Options.History / fullsim.ManagedOptions.History).
func NewDeciderWith(plan modes.Plan, policy core.Policy, pred core.MatrixPredictor, n int, guard *core.GuardConfig) Decider {
	if guard != nil {
		return core.NewResilientManagerWith(plan, policy, pred, n, *guard)
	}
	return core.NewManagerWith(plan, policy, pred, n)
}

// Options configures one engine run. Plan, Budget, Decider, DeltaSim,
// DeltasPerExplore and Horizon are required.
type Options struct {
	// Plan is the DVFS mode plan (transition times, frequency scales).
	Plan modes.Plan
	// Budget returns the planned chip power budget in watts at time t.
	Budget func(t time.Duration) float64
	// Decider is the global manager making explore-boundary decisions.
	Decider Decider
	// DeltaSim is the statistics interval; DeltasPerExplore of them form one
	// explore (decision) interval.
	DeltaSim         time.Duration
	DeltasPerExplore int
	// Horizon bounds the simulated time.
	Horizon time.Duration
	// Thermal, when non-nil, closes the temperature loop.
	Thermal *thermal.Governor
	// Injector, when non-nil, perturbs the observation path.
	Injector *fault.Injector
	// Stages overrides the decision middleware chain; nil selects
	// DefaultChain(Budget, ErrPrefix, Injector, Thermal).
	Stages []Stage
	// Observer, when non-nil, receives one structured DecisionTrace per
	// explore interval and the Result at the end of the run (see
	// internal/obs for JSONL and in-memory implementations). Nil is the
	// zero-overhead path: no trace is constructed and no clock is read.
	Observer Observer
	// ErrPrefix names the front end in engine errors; empty = "engine".
	ErrPrefix string
	// Combo and PolicyName annotate the Result.
	Combo      workload.Combo
	PolicyName string
	// Explore is the explore interval for accounting (recovery latency);
	// zero derives DeltaSim × DeltasPerExplore.
	Explore time.Duration
	// Supervisor, when non-nil, wraps the Decider in the decision
	// supervisor: deadline-bounded solving, the graceful-degradation ladder,
	// and the budget-conformance gate (see SupervisorConfig). Nil — the
	// default — is the exact pre-supervisor decision path, bit for bit.
	Supervisor *SupervisorConfig
}

// Loop is one in-flight engine run, carved out of the monolithic Run so a
// caller can interleave many runs on a shared event clock — the datacenter
// fleet tier (internal/fleet) steps one Loop per chip, updating each chip's
// budget between steps. New builds the loop (bootstrap probe included),
// StepDelta advances exactly one delta-sim interval (running the explore-
// boundary decision first when one is due), and Finish seals the accounting
// and returns the Result. Run composes the three; both paths execute the
// identical operation sequence, bit for bit (pinned by the cmpsim goldens).
//
// A Loop is single-goroutine: callers that step several loops concurrently
// must keep each loop on one worker at a time.
type Loop struct {
	sub     Substrate
	opt     Options
	n       int
	deltaSC float64
	explore time.Duration
	inj     *fault.Injector
	stages  []Stage
	decider Decider
	sup     *supervisor // non-nil when the decision supervisor is armed
	res     *Result

	// Decider facets, resolved once so the loop pays only a nil check.
	emerg  emergencyReporter
	cand   candidateReporter
	supRep supervisionReporter
	obs    Observer

	dt          DecisionTrace // reused across intervals when observed
	stageTraces []StageTrace

	current      modes.Vector
	samples      []core.Sample
	chipMeasured float64 // the independent chip-level (VRM) power sensor
	lookahead    func(c int, m modes.Mode) (powerW, instr float64)
	memBound     []float64

	live          []bool
	execE, execI  []float64
	intervalPower []float64
	intervalInstr []float64
	stallPower    []float64

	now         time.Duration
	done        bool
	degradedRun int // current consecutive rung>0 episode, for LongestDegraded

	// Warm-start plumbing: the loop owns the policy's solver session (when
	// the policy supports one) and decides per interval whether the previous
	// actuated vector is a valid hint. warmed is false on the first decision
	// and after any discontinuity the previous interval (emergency throttle,
	// supervisor degradation); budget jumps and core death/completion are
	// re-checked at decision time against prevBudget/prevDeadDone.
	sessOwner    sessionOwner
	sessInval    sessionInvalidator
	warmed       bool
	prevBudget   float64
	prevDeadDone int

	// Intra-interval cursor: d deltas of the current explore interval have
	// run (0 = a decision is due), simmed of them were actually simulated.
	d         int
	simmed    int
	budget    float64
	stallLeft float64

	closed   bool
	finished bool
}

// New validates the options and builds a steppable loop: the substrate is
// bootstrap-probed and the first decision is pending. Callers must Close the
// loop (Finish does) — Run defers it.
func New(sub Substrate, opt Options) (*Loop, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := sub.NumCores()
	explore := opt.Explore
	if explore == 0 {
		explore = opt.DeltaSim * time.Duration(opt.DeltasPerExplore)
	}
	inj := opt.Injector
	stages := opt.Stages
	if stages == nil {
		stages = DefaultChain(opt.Budget, opt.ErrPrefix, inj, opt.Thermal)
	}

	l := &Loop{
		sub:     sub,
		opt:     opt,
		n:       n,
		deltaSC: opt.DeltaSim.Seconds(),
		explore: explore,
		inj:     inj,
		stages:  stages,
	}

	// The decision supervisor, when armed, sits between the loop and the
	// configured decider; everything downstream (facets included) talks to
	// whichever decider is outermost.
	l.decider = opt.Decider
	if opt.Supervisor != nil {
		l.sup = newSupervisor(*opt.Supervisor, opt.Decider, inj, n)
		l.decider = l.sup
	}

	res := &Result{
		Combo:          opt.Combo,
		Policy:         opt.PolicyName,
		DeltaSim:       opt.DeltaSim,
		FirstCompleted: -1,
		PerCoreInstr:   make([]float64, n),
	}
	res.Obs.StageOverrides = make([]StageOverride, len(stages))
	for i, s := range stages {
		res.Obs.StageOverrides[i].Stage = s.Name()
	}
	// Pre-size the delta-resolution series so steady-state intervals append
	// without reallocating (capped so pathological horizons don't reserve
	// unbounded memory up front).
	est := int(opt.Horizon / opt.DeltaSim)
	if est > 4096 {
		est = 4096
	}
	res.ChipPowerW = make([]float64, 0, est)
	res.BudgetW = make([]float64, 0, est)
	res.CorePowerW = make([][]float64, 0, est)
	res.CoreInstr = make([][]float64, 0, est)
	res.Modes = make([]modes.Vector, 0, est/opt.DeltasPerExplore+1)
	l.res = res

	l.emerg, _ = l.decider.(emergencyReporter)
	l.cand, _ = l.decider.(candidateReporter)
	l.supRep, _ = l.decider.(supervisionReporter)
	l.obs = opt.Observer

	// Adopt the policy's solver session: one loop owns one policy, so the
	// session's cross-interval state (scratch buffers, warm floors, Hier
	// shares) is created here and torn down in Close.
	if ph, ok := l.decider.(policyHolder); ok {
		if so, ok := ph.Policy().(sessionOwner); ok {
			so.EnsureSession()
			l.sessOwner = so
		}
		l.sessInval, _ = ph.Policy().(sessionInvalidator)
	}
	// When the decider itself mediates invalidation — the watchdog supervisor
	// defers it while an abandoned decision still runs the policy's session on
	// the worker goroutine — route through it instead of the bare policy.
	if l.sessInval != nil {
		if si, ok := l.decider.(sessionInvalidator); ok {
			l.sessInval = si
		}
	}

	// Bootstrap sample: the local monitors report each core's behaviour at
	// Turbo before the first decision; cores dead at t=0 report nothing.
	l.current = modes.Uniform(n, modes.Turbo)
	l.samples = sub.Bootstrap()
	for c := range l.samples {
		if inj != nil && inj.CoreDead(c, 0) {
			l.samples[c] = core.Sample{}
		}
		l.chipMeasured += l.samples[c].PowerW
	}

	l.lookahead = sub.Lookahead()
	l.memBound = sub.MemBound()
	l.live = make([]bool, n)
	l.execE = make([]float64, n)
	l.execI = make([]float64, n)
	l.intervalPower = make([]float64, n)
	l.intervalInstr = make([]float64, n)
	l.stallPower = make([]float64, n)
	if l.obs != nil {
		l.stageTraces = make([]StageTrace, 0, len(stages))
	}
	return l, nil
}

// Now returns the loop's simulated time.
func (l *Loop) Now() time.Duration { return l.now }

// Done reports that the loop has reached its horizon or a first program
// completion (§5.1) and will make no further progress.
func (l *Loop) Done() bool { return l.done || l.now >= l.opt.Horizon }

// Result exposes the in-progress accounting: series grow as the loop steps.
// Callers may read it between steps (the fleet tier drains per-delta
// committed-instruction rows this way) but must not mutate it; Finish seals
// and returns the same pointer.
func (l *Loop) Result() *Result { return l.res }

// decide runs the decision middleware chain and one explore-boundary
// decision, arming the interval's stall accounting.
func (l *Loop) decide() error {
	res, obs, n := l.res, l.obs, l.n
	st := Step{Now: l.now, TrueSamples: l.samples, Samples: l.samples, ChipPowerW: l.chipMeasured}
	if obs != nil {
		l.stageTraces = l.stageTraces[:0]
	}
	for i, stage := range l.stages {
		prevB := st.BudgetW
		prevSamples := st.Samples
		var t0 time.Time
		if obs != nil {
			t0 = time.Now()
		}
		if err := stage.Apply(&st); err != nil {
			return err
		}
		// The first stage seeds the budget; later stages that move it,
		// or that swap the observation, overrode something upstream.
		override := i > 0 && (st.BudgetW != prevB || !sameSamples(prevSamples, st.Samples))
		if override {
			res.Obs.StageOverrides[i].Count++
		}
		if obs != nil {
			l.stageTraces = append(l.stageTraces, StageTrace{
				Name:     res.Obs.StageOverrides[i].Stage,
				BudgetW:  st.BudgetW,
				Override: override,
				DurNs:    time.Since(t0).Nanoseconds(),
			})
		}
	}
	l.budget = st.BudgetW
	// Warm-start hint: hand the previous actuated vector to the decider
	// only while the decision context is continuous. A budget step of more
	// than 25% (a spike or brownout) or any change in the dead/finished
	// core population invalidates it — the previous vector is then a poor
	// (or shape-stale) seed, and a discontinuity is exactly when a fresh
	// cold solve is cheapest to afford.
	deadDone := 0
	for c := 0; c < n; c++ {
		if l.sub.Finished(c) || (l.inj != nil && l.inj.CoreDead(c, l.now)) {
			deadDone++
		}
	}
	warm := l.warmed
	if deadDone != l.prevDeadDone {
		warm = false
		// The live-core population changed shape: the session's memoized
		// optimum and delta certificate describe a chip that no longer
		// exists. Drop them before the decision so the delta fast path
		// cannot patch against stale structure.
		if l.sessInval != nil {
			l.sessInval.InvalidateSession()
			res.Obs.InvalidateCoreDeath++
		}
	}
	if l.prevBudget != 0 && math.Abs(l.budget-l.prevBudget) > 0.25*math.Abs(l.prevBudget) {
		warm = false
		if l.sessInval != nil {
			l.sessInval.InvalidateSession()
			res.Obs.InvalidateBudgetStep++
		}
	}
	l.prevDeadDone = deadDone
	l.prevBudget = l.budget
	var hint modes.Vector
	if warm {
		hint = l.current
		res.Obs.WarmHints++
	}
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	next := l.decider.StepDecision(core.Decision{
		BudgetW:    l.budget,
		ChipPowerW: st.ChipPowerW,
		Samples:    st.Samples,
		Lookahead:  l.lookahead,
		MemBound:   l.memBound,
		Now:        l.now,
		Hint:       hint,
	})
	inEmergency := l.emerg != nil && l.emerg.InEmergency()
	if inEmergency {
		res.Obs.GuardOverrides++
	}
	var sup Supervision
	if l.supRep != nil {
		sup = l.supRep.LastSupervision()
		res.Obs.SupervisorRungs[sup.Rung]++
		if sup.Rejected {
			res.Obs.ConformanceRejects++
		}
		if sup.Repaired {
			res.Obs.ConformanceRepairs++
		}
		if sup.TimedOut {
			res.Obs.DeadlineTimeouts++
		}
		if sup.Wedged {
			res.Obs.WedgedDecisions++
		}
		if sup.Rung > 0 {
			res.Obs.DegradedDecisions++
			l.degradedRun++
			if l.degradedRun > res.Obs.LongestDegraded {
				res.Obs.LongestDegraded = l.degradedRun
			}
		} else {
			l.degradedRun = 0
		}
	}
	// The vector adopted below is a valid warm seed for the next decision
	// unless it did not come from the policy's own solve: the guard's
	// emergency throttle and every supervisor intervention (degraded rung,
	// abandoned or wedged solve) actuate vectors the solver never chose.
	l.warmed = true
	if inEmergency {
		l.warmed = false
		// The guard actuated a vector the solver never chose; the session's
		// memo now disagrees with the chip state, so the next decision must
		// not answer from it (or patch a delta on top of it).
		if l.sessInval != nil {
			l.sessInval.InvalidateSession()
			res.Obs.InvalidateEmergency++
		}
	}
	if l.supRep != nil && (sup.Rung > 0 || sup.TimedOut || sup.Wedged) {
		l.warmed = false
		if l.sessInval != nil {
			l.sessInval.InvalidateSession()
			res.Obs.InvalidateDegraded++
		}
	}
	stall := l.opt.Plan.MaxTransitionBetween(l.current, next)
	// Per-core stall power: the worst-case endpoint of the transition
	// (§5.1: execution halts, CPU power is still consumed). Skipped
	// cores are zeroed explicitly: the buffer is reused across
	// intervals, and finished/dead states are monotone, so a stale
	// entry could otherwise never be read — but zero makes that local.
	for c := 0; c < n; c++ {
		if l.sub.Finished(c) || (l.inj != nil && l.inj.CoreDead(c, l.now)) {
			l.stallPower[c] = 0
			continue
		}
		pOld := l.sub.ModePowerW(c, l.current[c])
		pNew := l.sub.ModePowerW(c, next[c])
		if pOld > pNew {
			l.stallPower[c] = pOld
		} else {
			l.stallPower[c] = pNew
		}
	}
	if obs != nil {
		l.dt = DecisionTrace{
			Interval:       res.Obs.Decisions,
			Now:            l.now,
			BudgetW:        l.budget,
			ChipPowerW:     st.ChipPowerW,
			TrueSamples:    st.TrueSamples,
			Samples:        st.Samples,
			Stages:         l.stageTraces,
			Final:          next,
			GuardEmergency: inEmergency,
			Stall:          stall,
			DecideNs:       time.Since(t0).Nanoseconds(),
		}
		if l.supRep != nil {
			l.dt.Supervised = true
			l.dt.SupRung = sup.Rung
			l.dt.SupRejected = sup.Rejected
			l.dt.SupRepaired = sup.Repaired
			l.dt.SupPredPowerW = sup.PredPowerW
			l.dt.SupTimedOut = sup.TimedOut
		}
		if l.cand != nil {
			if raw := l.cand.LastCandidate(); raw != nil && !raw.Equal(next) {
				l.dt.Candidate = raw
			}
		}
		obs.Decision(&l.dt)
		res.Obs.TraceRecords++
	}
	res.Obs.Decisions++
	l.current = next
	res.Modes = append(res.Modes, l.current.Clone())
	res.TransitionStall += stall

	l.stallLeft = stall.Seconds()
	for c := 0; c < n; c++ {
		l.intervalPower[c] = 0
		l.intervalInstr[c] = 0
	}
	l.simmed = 0 // deltas actually simulated; < DeltasPerExplore when truncated
	return nil
}

// delta advances the substrate by one delta-sim interval in the current
// vector, charging any remaining synchronized stall first.
func (l *Loop) delta() {
	res, n, deltaSec := l.res, l.n, l.deltaSC
	l.simmed++
	rowP := make([]float64, n)
	rowI := make([]float64, n)
	var chip float64
	stl := l.stallLeft
	if stl > deltaSec {
		stl = deltaSec
	}
	l.stallLeft -= stl
	exec := deltaSec - stl
	for c := 0; c < n; c++ {
		l.live[c] = !l.sub.Finished(c) && (l.inj == nil || !l.inj.CoreDead(c, l.now))
		l.execE[c], l.execI[c] = 0, 0
	}
	if exec > 0 {
		l.sub.DeltaStep(l.current, exec, l.live, l.execE, l.execI)
	}
	for c := 0; c < n; c++ {
		var e, in float64
		if l.live[c] {
			e = l.stallPower[c] * stl
			if exec > 0 {
				e += l.execE[c]
				in = l.execI[c]
			}
		}
		rowP[c] = e / deltaSec
		rowI[c] = in
		chip += rowP[c]
		l.intervalPower[c] += rowP[c]
		l.intervalInstr[c] += in
		res.PerCoreInstr[c] += in
		res.TotalInstr += in
		res.EnergyJ += e
	}
	if l.opt.Thermal != nil {
		l.opt.Thermal.State().Step(rowP, l.opt.DeltaSim)
		res.MaxTempC = append(res.MaxTempC, l.opt.Thermal.State().MaxTemp())
	}
	res.CorePowerW = append(res.CorePowerW, rowP)
	res.CoreInstr = append(res.CoreInstr, rowI)
	res.ChipPowerW = append(res.ChipPowerW, chip)
	res.BudgetW = append(res.BudgetW, l.budget)
	if chip > l.budget*(1+1e-9) {
		res.OvershootIntervals++
	}
	l.now += l.opt.DeltaSim
	// §5.1 termination: stop when the first benchmark completes.
	for c := 0; c < n; c++ {
		if l.sub.Finished(c) {
			res.FirstCompleted = c
			l.done = true
		}
	}
}

// foldSamples averages the finished explore interval into the samples the
// next decision observes. A truncated interval (horizon hit or first-
// completion exit) must average over the deltas actually simulated, not the
// nominal count.
func (l *Loop) foldSamples() {
	den := float64(l.simmed)
	if den == 0 {
		den = 1
	}
	l.chipMeasured = 0
	for c := 0; c < l.n; c++ {
		l.samples[c] = core.Sample{
			PowerW: l.intervalPower[c] / den,
			Instr:  l.intervalInstr[c],
			Done:   l.sub.Finished(c),
		}
		l.chipMeasured += l.samples[c].PowerW
	}
}

// StepDelta advances the loop by exactly one delta-sim interval, running the
// explore-boundary decision first when one is due. It returns true when the
// loop has reached the horizon or the first program completion; further
// calls are no-ops that keep returning true.
func (l *Loop) StepDelta() (bool, error) {
	if l.Done() {
		return true, nil
	}
	if l.d == 0 {
		if err := l.decide(); err != nil {
			return false, err
		}
	}
	l.delta()
	l.d++
	if l.d >= l.opt.DeltasPerExplore || l.Done() {
		l.foldSamples()
		l.d = 0
	}
	return l.Done(), nil
}

// Close releases the loop's supervisor watchdog, if armed. Idempotent; the
// loop must not be stepped after. Finish calls it.
func (l *Loop) Close() {
	if l.closed {
		return
	}
	l.closed = true
	if l.sup != nil {
		l.sup.stop()
	}
	if l.sessOwner != nil {
		l.sessOwner.CloseSession()
	}
}

// Finish seals the run accounting — elapsed time, final samples, overshoot
// integrals, guard statistics, solver node counts — closes the loop, and
// returns the Result. Idempotent.
func (l *Loop) Finish() *Result {
	if l.finished {
		return l.res
	}
	l.finished = true
	res := l.res
	res.Elapsed = l.now
	res.FinalSamples = append([]core.Sample(nil), l.samples...)
	res.OvershootEnergyWs = metrics.OvershootEnergyWs(res.ChipPowerW, res.BudgetW, l.deltaSC)
	res.WorstOvershootWs = metrics.WorstSustainedOvershootWs(res.ChipPowerW, res.BudgetW, l.deltaSC)
	if st, guarded := l.decider.GuardStats(); guarded {
		res.EmergencyEntries = st.EmergencyEntries
		res.EmergencyIntervals = st.EmergencyIntervals
		res.RecoveryLatency = time.Duration(st.LongestEmergency) * l.explore
		res.DeadCores = st.DeadCores
		res.SanitizedSamples = st.SanitizedSamples + st.ClampedSamples
		res.RescaledIntervals = st.RescaledIntervals
	}
	if ph, ok := l.decider.(policyHolder); ok {
		if nr, ok := ph.Policy().(nodeReporter); ok {
			if nodes, counted := nr.SolveNodes(); counted {
				res.Obs.SolverNodes = nodes
			}
		}
		if sr, ok := ph.Policy().(sessionReporter); ok {
			if ss, on := sr.SessionStats(); on {
				res.Obs.SolverMemoHits = ss.MemoHits
				res.Obs.SolverWarmSolves = ss.WarmFloored
				res.Obs.SolverHintReturns = ss.HintReturns
				res.Obs.SolverPruned = ss.Pruned
				res.Obs.DirtyCores = ss.DirtyCores
				res.Obs.DeltaSolves = ss.DeltaSolves
				res.Obs.DeltaCertified = ss.DeltaCertified
				res.Obs.DeltaFallbacks = ss.DeltaFallbacks
			}
		}
	}
	if l.obs != nil {
		l.obs.RunEnd(res)
	}
	l.Close()
	return res
}

// Run executes the global-manager control loop on the substrate until the
// horizon or the first program completion (§5.1).
func Run(sub Substrate, opt Options) (*Result, error) {
	l, err := New(sub, opt)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	for {
		done, err := l.StepDelta()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return l.Finish(), nil
}
