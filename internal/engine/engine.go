// Package engine is the substrate-agnostic global power manager control loop
// — the paper's §2/§5.5 sense → predict → decide → actuate cycle, extracted
// so the trace-based CMP analysis tool (internal/cmpsim) and the cycle-level
// full-CMP simulator (internal/fullsim) run the *same* loop instead of two
// divergent copies.
//
// The engine owns everything substrate-independent: explore/delta-sim
// cadence, the decision middleware chain (budget source → fault-injected
// budget → thermal clamp → fault-injected observation), the §5.1
// synchronized-stall charging with worst-case-endpoint stall power, the
// per-interval sample averaging (including truncated final intervals), the
// thermal integration, and all accounting (energy, overshoot integrals,
// guard interventions) in one Result. A Substrate supplies the simulated
// hardware: bootstrap probe, per-delta advancement split into stall and
// execution, completion reporting, and mode-power estimates for the stall
// endpoints. A Decider supplies the manager — plain or resilient — through
// core.Decision, so no `if guarded` forks survive in the loop.
package engine

import (
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/metrics"
	"gpm/internal/modes"
	"gpm/internal/thermal"
	"gpm/internal/workload"
)

// Substrate is the simulated hardware under global power management.
// Implementations are single-run and stateful: the engine advances them
// monotonically in delta-sim steps.
type Substrate interface {
	// NumCores returns the chip width.
	NumCores() int
	// Bootstrap probes each core's behaviour over one explore interval with
	// every core at Turbo and returns the per-core samples the local
	// monitors would report before the first decision. Whether the probe
	// consumes simulated time is substrate-defined (the trace players peek
	// without moving; the cycle-level chip runs a real probe interval).
	Bootstrap() []core.Sample
	// ModePowerW estimates core c's average power in mode m at the core's
	// current program position — the §5.1 worst-case transition endpoints
	// are charged at max(ModePowerW(old), ModePowerW(new)).
	ModePowerW(c int, m modes.Mode) float64
	// DeltaStep advances the live cores by execSec seconds of execution in
	// vector v — the remainder of the delta interval is synchronized stall,
	// which the engine charges separately — and fills energyJ/instr with
	// each core's execution-window energy and committed instructions.
	// Cores with live[c]==false must not advance and report zero.
	DeltaStep(v modes.Vector, execSec float64, live []bool, energyJ, instr []float64)
	// Finished reports that core c's program has completed (§5.1 stops the
	// run at the first completion).
	Finished(c int) bool
	// Lookahead returns the oracle probe (§5.6), or nil if the substrate
	// cannot see the future (the cycle-level chip cannot).
	Lookahead() func(c int, m modes.Mode) (powerW, instr float64)
	// MemBound returns the per-core memory-boundedness ranking, or nil.
	MemBound() []float64
}

// Decider is one global power manager: plain (*core.Manager) or guarded
// (*core.ResilientManager), both satisfy it via core.Decision.
type Decider interface {
	// StepDecision performs one explore-boundary decision and returns the
	// next mode vector.
	StepDecision(d core.Decision) modes.Vector
	// Current returns the mode vector currently in force.
	Current() modes.Vector
	// GuardStats reports the guard's intervention counters and whether the
	// decider is guarded at all.
	GuardStats() (core.ResilientStats, bool)
}

// Compile-time proof that both managers satisfy Decider.
var (
	_ Decider = (*core.Manager)(nil)
	_ Decider = (*core.ResilientManager)(nil)
)

// NewDecider builds the manager for n cores: guarded when guard is non-nil,
// plain otherwise.
func NewDecider(plan modes.Plan, policy core.Policy, pred core.Predictor, n int, guard *core.GuardConfig) Decider {
	if guard != nil {
		return core.NewResilientManager(plan, policy, pred, n, *guard)
	}
	return core.NewManager(plan, policy, pred, n)
}

// Options configures one engine run. Plan, Budget, Decider, DeltaSim,
// DeltasPerExplore and Horizon are required.
type Options struct {
	// Plan is the DVFS mode plan (transition times, frequency scales).
	Plan modes.Plan
	// Budget returns the planned chip power budget in watts at time t.
	Budget func(t time.Duration) float64
	// Decider is the global manager making explore-boundary decisions.
	Decider Decider
	// DeltaSim is the statistics interval; DeltasPerExplore of them form one
	// explore (decision) interval.
	DeltaSim         time.Duration
	DeltasPerExplore int
	// Horizon bounds the simulated time.
	Horizon time.Duration
	// Thermal, when non-nil, closes the temperature loop.
	Thermal *thermal.Governor
	// Injector, when non-nil, perturbs the observation path.
	Injector *fault.Injector
	// Stages overrides the decision middleware chain; nil selects
	// DefaultChain(Budget, ErrPrefix, Injector, Thermal).
	Stages []Stage
	// Observer, when non-nil, receives one structured DecisionTrace per
	// explore interval and the Result at the end of the run (see
	// internal/obs for JSONL and in-memory implementations). Nil is the
	// zero-overhead path: no trace is constructed and no clock is read.
	Observer Observer
	// ErrPrefix names the front end in engine errors; empty = "engine".
	ErrPrefix string
	// Combo and PolicyName annotate the Result.
	Combo      workload.Combo
	PolicyName string
	// Explore is the explore interval for accounting (recovery latency);
	// zero derives DeltaSim × DeltasPerExplore.
	Explore time.Duration
	// Supervisor, when non-nil, wraps the Decider in the decision
	// supervisor: deadline-bounded solving, the graceful-degradation ladder,
	// and the budget-conformance gate (see SupervisorConfig). Nil — the
	// default — is the exact pre-supervisor decision path, bit for bit.
	Supervisor *SupervisorConfig
}

// Run executes the global-manager control loop on the substrate until the
// horizon or the first program completion (§5.1).
func Run(sub Substrate, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := sub.NumCores()
	deltaSec := opt.DeltaSim.Seconds()
	explore := opt.Explore
	if explore == 0 {
		explore = opt.DeltaSim * time.Duration(opt.DeltasPerExplore)
	}
	inj := opt.Injector
	stages := opt.Stages
	if stages == nil {
		stages = DefaultChain(opt.Budget, opt.ErrPrefix, inj, opt.Thermal)
	}

	// The decision supervisor, when armed, sits between the loop and the
	// configured decider; everything downstream (facets included) talks to
	// whichever decider is outermost.
	decider := opt.Decider
	if opt.Supervisor != nil {
		sup := newSupervisor(*opt.Supervisor, opt.Decider, inj, n)
		defer sup.stop()
		decider = sup
	}

	res := &Result{
		Combo:          opt.Combo,
		Policy:         opt.PolicyName,
		DeltaSim:       opt.DeltaSim,
		FirstCompleted: -1,
		PerCoreInstr:   make([]float64, n),
	}
	res.Obs.StageOverrides = make([]StageOverride, len(stages))
	for i, s := range stages {
		res.Obs.StageOverrides[i].Stage = s.Name()
	}
	// Pre-size the delta-resolution series so steady-state intervals append
	// without reallocating (capped so pathological horizons don't reserve
	// unbounded memory up front).
	est := int(opt.Horizon / opt.DeltaSim)
	if est > 4096 {
		est = 4096
	}
	res.ChipPowerW = make([]float64, 0, est)
	res.BudgetW = make([]float64, 0, est)
	res.CorePowerW = make([][]float64, 0, est)
	res.CoreInstr = make([][]float64, 0, est)
	res.Modes = make([]modes.Vector, 0, est/opt.DeltasPerExplore+1)

	// Optional decider facets, resolved once so the loop pays only a nil
	// check per decision.
	emerg, _ := decider.(emergencyReporter)
	cand, _ := decider.(candidateReporter)
	supRep, _ := decider.(supervisionReporter)
	obs := opt.Observer
	var dt DecisionTrace // reused across intervals when observed

	// Bootstrap sample: the local monitors report each core's behaviour at
	// Turbo before the first decision; cores dead at t=0 report nothing.
	current := modes.Uniform(n, modes.Turbo)
	samples := sub.Bootstrap()
	chipMeasured := 0.0 // the independent chip-level (VRM) power sensor
	for c := range samples {
		if inj != nil && inj.CoreDead(c, 0) {
			samples[c] = core.Sample{}
		}
		chipMeasured += samples[c].PowerW
	}

	lookahead := sub.Lookahead()
	memBound := sub.MemBound()
	live := make([]bool, n)
	execE := make([]float64, n)
	execI := make([]float64, n)
	intervalPower := make([]float64, n)
	intervalInstr := make([]float64, n)
	stallPower := make([]float64, n)
	var stageTraces []StageTrace
	if obs != nil {
		stageTraces = make([]StageTrace, 0, len(stages))
	}

	now := time.Duration(0)
	done := false
	degradedRun := 0 // current consecutive rung>0 episode, for LongestDegraded
	for now < opt.Horizon && !done {
		st := Step{Now: now, TrueSamples: samples, Samples: samples, ChipPowerW: chipMeasured}
		if obs != nil {
			stageTraces = stageTraces[:0]
		}
		for i, stage := range stages {
			prevB := st.BudgetW
			prevSamples := st.Samples
			var t0 time.Time
			if obs != nil {
				t0 = time.Now()
			}
			if err := stage.Apply(&st); err != nil {
				return nil, err
			}
			// The first stage seeds the budget; later stages that move it,
			// or that swap the observation, overrode something upstream.
			override := i > 0 && (st.BudgetW != prevB || !sameSamples(prevSamples, st.Samples))
			if override {
				res.Obs.StageOverrides[i].Count++
			}
			if obs != nil {
				stageTraces = append(stageTraces, StageTrace{
					Name:     res.Obs.StageOverrides[i].Stage,
					BudgetW:  st.BudgetW,
					Override: override,
					DurNs:    time.Since(t0).Nanoseconds(),
				})
			}
		}
		budget := st.BudgetW
		var t0 time.Time
		if obs != nil {
			t0 = time.Now()
		}
		next := decider.StepDecision(core.Decision{
			BudgetW:    budget,
			ChipPowerW: st.ChipPowerW,
			Samples:    st.Samples,
			Lookahead:  lookahead,
			MemBound:   memBound,
			Now:        now,
		})
		inEmergency := emerg != nil && emerg.InEmergency()
		if inEmergency {
			res.Obs.GuardOverrides++
		}
		var sup Supervision
		if supRep != nil {
			sup = supRep.LastSupervision()
			res.Obs.SupervisorRungs[sup.Rung]++
			if sup.Rejected {
				res.Obs.ConformanceRejects++
			}
			if sup.Repaired {
				res.Obs.ConformanceRepairs++
			}
			if sup.TimedOut {
				res.Obs.DeadlineTimeouts++
			}
			if sup.Wedged {
				res.Obs.WedgedDecisions++
			}
			if sup.Rung > 0 {
				res.Obs.DegradedDecisions++
				degradedRun++
				if degradedRun > res.Obs.LongestDegraded {
					res.Obs.LongestDegraded = degradedRun
				}
			} else {
				degradedRun = 0
			}
		}
		stall := opt.Plan.MaxTransitionBetween(current, next)
		// Per-core stall power: the worst-case endpoint of the transition
		// (§5.1: execution halts, CPU power is still consumed). Skipped
		// cores are zeroed explicitly: the buffer is reused across
		// intervals, and finished/dead states are monotone, so a stale
		// entry could otherwise never be read — but zero makes that local.
		for c := 0; c < n; c++ {
			if sub.Finished(c) || (inj != nil && inj.CoreDead(c, now)) {
				stallPower[c] = 0
				continue
			}
			pOld := sub.ModePowerW(c, current[c])
			pNew := sub.ModePowerW(c, next[c])
			if pOld > pNew {
				stallPower[c] = pOld
			} else {
				stallPower[c] = pNew
			}
		}
		if obs != nil {
			dt = DecisionTrace{
				Interval:       res.Obs.Decisions,
				Now:            now,
				BudgetW:        budget,
				ChipPowerW:     st.ChipPowerW,
				TrueSamples:    st.TrueSamples,
				Samples:        st.Samples,
				Stages:         stageTraces,
				Final:          next,
				GuardEmergency: inEmergency,
				Stall:          stall,
				DecideNs:       time.Since(t0).Nanoseconds(),
			}
			if supRep != nil {
				dt.Supervised = true
				dt.SupRung = sup.Rung
				dt.SupRejected = sup.Rejected
				dt.SupRepaired = sup.Repaired
				dt.SupPredPowerW = sup.PredPowerW
				dt.SupTimedOut = sup.TimedOut
			}
			if cand != nil {
				if raw := cand.LastCandidate(); raw != nil && !raw.Equal(next) {
					dt.Candidate = raw
				}
			}
			obs.Decision(&dt)
			res.Obs.TraceRecords++
		}
		res.Obs.Decisions++
		current = next
		res.Modes = append(res.Modes, current.Clone())
		res.TransitionStall += stall

		stallLeft := stall.Seconds()
		for c := 0; c < n; c++ {
			intervalPower[c] = 0
			intervalInstr[c] = 0
		}
		simmed := 0 // deltas actually simulated; < DeltasPerExplore when truncated
		for d := 0; d < opt.DeltasPerExplore && now < opt.Horizon; d++ {
			simmed++
			rowP := make([]float64, n)
			rowI := make([]float64, n)
			var chip float64
			stl := stallLeft
			if stl > deltaSec {
				stl = deltaSec
			}
			stallLeft -= stl
			exec := deltaSec - stl
			for c := 0; c < n; c++ {
				live[c] = !sub.Finished(c) && (inj == nil || !inj.CoreDead(c, now))
				execE[c], execI[c] = 0, 0
			}
			if exec > 0 {
				sub.DeltaStep(current, exec, live, execE, execI)
			}
			for c := 0; c < n; c++ {
				var e, in float64
				if live[c] {
					e = stallPower[c] * stl
					if exec > 0 {
						e += execE[c]
						in = execI[c]
					}
				}
				rowP[c] = e / deltaSec
				rowI[c] = in
				chip += rowP[c]
				intervalPower[c] += rowP[c]
				intervalInstr[c] += in
				res.PerCoreInstr[c] += in
				res.TotalInstr += in
				res.EnergyJ += e
			}
			if opt.Thermal != nil {
				opt.Thermal.State().Step(rowP, opt.DeltaSim)
				res.MaxTempC = append(res.MaxTempC, opt.Thermal.State().MaxTemp())
			}
			res.CorePowerW = append(res.CorePowerW, rowP)
			res.CoreInstr = append(res.CoreInstr, rowI)
			res.ChipPowerW = append(res.ChipPowerW, chip)
			res.BudgetW = append(res.BudgetW, budget)
			if chip > budget*(1+1e-9) {
				res.OvershootIntervals++
			}
			now += opt.DeltaSim
			// §5.1 termination: stop when the first benchmark completes.
			for c := 0; c < n; c++ {
				if sub.Finished(c) {
					res.FirstCompleted = c
					done = true
				}
			}
			if done {
				break
			}
		}
		// Samples for the next decision: averages over the explore interval.
		// A truncated interval (horizon hit or first-completion exit) must
		// average over the deltas actually simulated, not the nominal count.
		den := float64(simmed)
		if den == 0 {
			den = 1
		}
		chipMeasured = 0
		for c := 0; c < n; c++ {
			samples[c] = core.Sample{
				PowerW: intervalPower[c] / den,
				Instr:  intervalInstr[c],
				Done:   sub.Finished(c),
			}
			chipMeasured += samples[c].PowerW
		}
	}
	res.Elapsed = now
	res.FinalSamples = append([]core.Sample(nil), samples...)
	res.OvershootEnergyWs = metrics.OvershootEnergyWs(res.ChipPowerW, res.BudgetW, deltaSec)
	res.WorstOvershootWs = metrics.WorstSustainedOvershootWs(res.ChipPowerW, res.BudgetW, deltaSec)
	if st, guarded := decider.GuardStats(); guarded {
		res.EmergencyEntries = st.EmergencyEntries
		res.EmergencyIntervals = st.EmergencyIntervals
		res.RecoveryLatency = time.Duration(st.LongestEmergency) * explore
		res.DeadCores = st.DeadCores
		res.SanitizedSamples = st.SanitizedSamples + st.ClampedSamples
		res.RescaledIntervals = st.RescaledIntervals
	}
	if ph, ok := decider.(policyHolder); ok {
		if nr, ok := ph.Policy().(nodeReporter); ok {
			if nodes, counted := nr.SolveNodes(); counted {
				res.Obs.SolverNodes = nodes
			}
		}
	}
	if obs != nil {
		obs.RunEnd(res)
	}
	return res, nil
}
