package engine

import (
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/solver"
	"gpm/internal/thermal"
)

// benchSub builds an n-core synthetic substrate with mildly heterogeneous
// cores so the manager has real allocation decisions to make.
func benchSub(b testing.TB, n int) *fakeSub {
	b.Helper()
	plan := testPlan(b)
	baseP := make([]float64, n)
	rate := make([]float64, n)
	for c := 0; c < n; c++ {
		baseP[c] = 18 + float64(c%4)
		rate[c] = float64(1+c%4) * 1e9
	}
	return newFakeSub(plan, baseP, rate, 500e-6)
}

// benchLoop runs the engine over `horizon` once per iteration and reports
// per-decision cost. The substrate is rebuilt each iteration (it is stateful),
// but its construction is trivial next to the decision loop itself.
func benchLoop(b *testing.B, n int, policy core.Policy, guard *core.GuardConfig, faulted bool, thermally bool) {
	plan := testPlan(b)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	horizon := 50 * time.Millisecond
	decisions := int(horizon / (500 * time.Microsecond))
	budget := 0.75 * 21 * float64(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := Options{
			Plan:             plan,
			Budget:           func(time.Duration) float64 { return budget },
			Decider:          NewDecider(plan, policy, pred, n, guard),
			DeltaSim:         50 * time.Microsecond,
			DeltasPerExplore: 10,
			Horizon:          horizon,
		}
		if faulted {
			inj, err := fault.NewInjector(fault.Scenario{Seed: 7, PowerNoiseSigma: 0.05, DropProb: 0.01}, n)
			if err != nil {
				b.Fatal(err)
			}
			opt.Injector = inj
		}
		if thermally {
			st, err := thermal.NewState(thermal.Params{RthCPerW: 0.8, CthJPerC: 0.01, AmbientC: 45, LimitC: 100}, n)
			if err != nil {
				b.Fatal(err)
			}
			opt.Thermal = thermal.NewGovernor(st, 500*time.Microsecond)
		}
		if _, err := Run(benchSub(b, n), opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*decisions), "ns/decision")
}

// BenchmarkEngine measures the substrate-agnostic control loop: 100 explore
// decisions (1000 delta intervals) per op on the synthetic substrate, across
// manager and middleware configurations.
func BenchmarkEngine(b *testing.B) {
	b.Run("plain-maxbips-4", func(b *testing.B) {
		benchLoop(b, 4, core.MaxBIPS{}, nil, false, false)
	})
	b.Run("guarded-maxbips-4", func(b *testing.B) {
		g := core.DefaultGuard()
		benchLoop(b, 4, core.MaxBIPS{}, &g, false, false)
	})
	b.Run("fullchain-maxbips-4", func(b *testing.B) {
		g := core.DefaultGuard()
		benchLoop(b, 4, core.MaxBIPS{}, &g, true, true)
	})
	b.Run("plain-greedy-16", func(b *testing.B) {
		benchLoop(b, 16, core.GreedyMaxBIPS{}, nil, false, false)
	})
	// The cold/warm BB pair prices the solver session: cold solves every
	// interval from scratch; warm rides the loop-owned session (memo on the
	// noiseless substrate's repeating telemetry, hint-floored solves
	// otherwise). Same solver, same instances — the gap is the session.
	b.Run("cold-bb-16", func(b *testing.B) {
		benchLoop(b, 16, core.SolverPolicy{Solver: &solver.BB{}}, nil, false, false)
	})
	b.Run("warm-bb-16", func(b *testing.B) {
		benchLoop(b, 16, core.NewSolverPolicy(&solver.BB{}), nil, false, false)
	})
}

// --- Satellite: observability overhead ---------------------------------------

// nopObserver is the worst reasonable Observer for overhead measurement: it
// forces the engine to build every DecisionTrace and read the clock, but does
// no I/O of its own (a JSONL writer's serialization cost is measured in
// internal/obs, not here).
type nopObserver struct{ decisions int }

func (o *nopObserver) Decision(t *DecisionTrace) { o.decisions++ }
func (o *nopObserver) RunEnd(r *Result)          {}

func benchObserved(b *testing.B, obs Observer) {
	plan := testPlan(b)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	horizon := 50 * time.Millisecond
	decisions := int(horizon / (500 * time.Microsecond))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := Options{
			Plan:             plan,
			Budget:           func(time.Duration) float64 { return 63 },
			Decider:          NewDecider(plan, core.MaxBIPS{}, pred, 4, nil),
			DeltaSim:         50 * time.Microsecond,
			DeltasPerExplore: 10,
			Horizon:          horizon,
			Observer:         obs,
		}
		if _, err := Run(benchSub(b, 4), opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*decisions), "ns/decision")
}

// BenchmarkEngineBare is the observer-nil baseline for the overhead
// regression pair; compare against BenchmarkEngineObserved.
func BenchmarkEngineBare(b *testing.B) { benchObserved(b, nil) }

// BenchmarkEngineObserved measures the tracing-on cost of the same run:
// DecisionTrace construction, per-stage clock reads, and the observer call.
func BenchmarkEngineObserved(b *testing.B) { benchObserved(b, &nopObserver{}) }

// TestObserverNilPathZeroAllocs pins the zero-overhead-when-off contract:
// with Observer nil, the observability layer adds zero allocations per
// explore interval — measured as the marginal allocations of the whole run
// versus the same run observed by a no-op Observer, after normalizing for
// the trace buffers the observed run legitimately builds. Direct per-run
// comparison: the nil-observer run must allocate strictly less than the
// observed one, and repeating the nil run must not drift.
func TestObserverNilPathZeroAllocs(t *testing.T) {
	plan := testPlan(t)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	run := func(obs Observer) float64 {
		return testing.AllocsPerRun(5, func() {
			opt := Options{
				Plan:             plan,
				Budget:           func(time.Duration) float64 { return 63 },
				Decider:          NewDecider(plan, core.MaxBIPS{}, pred, 4, nil),
				DeltaSim:         50 * time.Microsecond,
				DeltasPerExplore: 10,
				Horizon:          5 * time.Millisecond,
				Observer:         obs,
			}
			if _, err := Run(benchSub(t, 4), opt); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Two independent measurements of the nil path must agree exactly: the
	// counter work (stage overrides, decision counts) is integer updates on
	// preallocated storage, so the nil path is deterministic in allocations.
	nil1, nil2 := run(nil), run(nil)
	if nil1 != nil2 {
		t.Errorf("observer-nil path allocations drift between runs: %v vs %v", nil1, nil2)
	}
	// Doubling the horizon doubles the per-interval work; the observability
	// layer's contribution on the nil path must stay zero, i.e. the growth
	// must be explained entirely by the engine's own per-delta series. The
	// observed run pays extra per interval — that delta is the layer's real
	// per-interval cost, and it must vanish when the observer is nil.
	observed := run(&nopObserver{})
	if observed <= nil1 {
		t.Fatalf("observed run allocated %v, nil run %v — instrumentation missing?", observed, nil1)
	}
	perIntervalNil := nilPathMarginalAllocs(t, plan, pred)
	if perIntervalNil != 0 {
		t.Errorf("observer-nil path adds %v allocs/interval, want 0", perIntervalNil)
	}
}

// nilPathMarginalAllocs measures the marginal allocations per *extra explore
// interval* on the observer-nil path beyond the engine's own per-delta series
// appends (rows, modes, samples): it runs two horizons whose interval counts
// differ by a known amount with series capacity pre-exhausted identically,
// and subtracts the engine's accounted per-interval allocations (2 rows + 1
// cloned vector per interval = 3, plus amortized append growth measured on
// the identical un-observed baseline at HEAD).
func nilPathMarginalAllocs(t *testing.T, plan modes.Plan, pred core.Predictor) float64 {
	t.Helper()
	// The observability layer allocates only in the `obs != nil` branches
	// and in Result.Obs.StageOverrides setup (one slice per run, not per
	// interval). Per-interval allocation neutrality is therefore: the
	// per-interval allocation count with Observer nil equals the engine's
	// inherent per-interval count (rowP, rowI per delta; vector clone and
	// sample handling per interval), which predates the layer. We pin it by
	// comparing against a run with the counters' only per-interval work —
	// integer increments — compiled in, which IS the nil path. Hence: 0 by
	// construction unless a future change adds allocation to the always-on
	// counter updates; detect that by checking the nil path's per-interval
	// allocation growth is identical for two run lengths.
	run := func(horizon time.Duration) float64 {
		return testing.AllocsPerRun(10, func() {
			opt := Options{
				Plan:             plan,
				Budget:           func(time.Duration) float64 { return 63 },
				Decider:          NewDecider(plan, core.MaxBIPS{}, pred, 4, nil),
				DeltaSim:         50 * time.Microsecond,
				DeltasPerExplore: 10,
				Horizon:          horizon,
			}
			if _, err := Run(benchSub(t, 4), opt); err != nil {
				t.Fatal(err)
			}
		})
	}
	// 10 vs 20 intervals: the engine's inherent per-interval allocations are
	// linear in interval count, so the second difference is the layer's
	// nonlinearity — any always-on counter allocation shows up here.
	a := run(5 * time.Millisecond)  // 10 intervals
	b := run(10 * time.Millisecond) // 20 intervals
	c := run(15 * time.Millisecond) // 30 intervals
	return (c - b) - (b - a)
}
