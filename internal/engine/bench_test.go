package engine

import (
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/thermal"
)

// benchSub builds an n-core synthetic substrate with mildly heterogeneous
// cores so the manager has real allocation decisions to make.
func benchSub(b *testing.B, n int) *fakeSub {
	b.Helper()
	plan := testPlan(b)
	baseP := make([]float64, n)
	rate := make([]float64, n)
	for c := 0; c < n; c++ {
		baseP[c] = 18 + float64(c%4)
		rate[c] = float64(1+c%4) * 1e9
	}
	return newFakeSub(plan, baseP, rate, 500e-6)
}

// benchLoop runs the engine over `horizon` once per iteration and reports
// per-decision cost. The substrate is rebuilt each iteration (it is stateful),
// but its construction is trivial next to the decision loop itself.
func benchLoop(b *testing.B, n int, policy core.Policy, guard *core.GuardConfig, faulted bool, thermally bool) {
	plan := testPlan(b)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	horizon := 50 * time.Millisecond
	decisions := int(horizon / (500 * time.Microsecond))
	budget := 0.75 * 21 * float64(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := Options{
			Plan:             plan,
			Budget:           func(time.Duration) float64 { return budget },
			Decider:          NewDecider(plan, policy, pred, n, guard),
			DeltaSim:         50 * time.Microsecond,
			DeltasPerExplore: 10,
			Horizon:          horizon,
		}
		if faulted {
			inj, err := fault.NewInjector(fault.Scenario{Seed: 7, PowerNoiseSigma: 0.05, DropProb: 0.01}, n)
			if err != nil {
				b.Fatal(err)
			}
			opt.Injector = inj
		}
		if thermally {
			st, err := thermal.NewState(thermal.Params{RthCPerW: 0.8, CthJPerC: 0.01, AmbientC: 45, LimitC: 100}, n)
			if err != nil {
				b.Fatal(err)
			}
			opt.Thermal = thermal.NewGovernor(st, 500*time.Microsecond)
		}
		if _, err := Run(benchSub(b, n), opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*decisions), "ns/decision")
}

// BenchmarkEngine measures the substrate-agnostic control loop: 100 explore
// decisions (1000 delta intervals) per op on the synthetic substrate, across
// manager and middleware configurations.
func BenchmarkEngine(b *testing.B) {
	b.Run("plain-maxbips-4", func(b *testing.B) {
		benchLoop(b, 4, core.MaxBIPS{}, nil, false, false)
	})
	b.Run("guarded-maxbips-4", func(b *testing.B) {
		g := core.DefaultGuard()
		benchLoop(b, 4, core.MaxBIPS{}, &g, false, false)
	})
	b.Run("fullchain-maxbips-4", func(b *testing.B) {
		g := core.DefaultGuard()
		benchLoop(b, 4, core.MaxBIPS{}, &g, true, true)
	})
	b.Run("plain-greedy-16", func(b *testing.B) {
		benchLoop(b, 16, core.GreedyMaxBIPS{}, nil, false, false)
	})
}
