package engine

import (
	"math"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/solver"
)

// SupervisorConfig arms the engine's decision supervisor: a safety state
// machine wrapped around the configured decider that (a) bounds how long a
// decision may take and (b) guarantees every actuated mode vector conforms
// to the budget under the supervisor's own power predictions.
//
// Degradation ladder, tried top to bottom each interval until a rung yields
// a conformant vector:
//
//	rung 0  the configured decider (policy/solver), under the deadline;
//	rung 1  the shared greedy kernel on the supervisor's own matrices;
//	rung 2  the last-known-good vector, refitted to the current budget by
//	        greedy demotion;
//	rung 3  the uniform deepest-mode emergency throttle.
//
// Every rung's vector passes the budget-conformance gate — predicted power
// ≤ budget × (1+ToleranceFrac) — with greedy repair by demotion when it
// fails, covering fault-corrupted budgets and stale telemetry. The
// supervisor predicts power from its own finite-filtered copy of the
// observations, so NaN-poisoned telemetry degrades the decision instead of
// disabling the gate.
type SupervisorConfig struct {
	// Deadline, when positive, is the wall-clock budget per decision: the
	// configured decider runs on a watchdog goroutine and is abandoned
	// mid-solve (falling to rung 1) when the deadline passes. Wall-clock
	// deadlines are inherently nondeterministic; use NodeBudget (and leave
	// Deadline zero) when bit-identical reruns matter.
	Deadline time.Duration
	// NodeBudget is the deterministic per-decision solver node budget the
	// front ends arm on the solver via solver.WithDeadline when wiring the
	// supervisor. The supervisor itself does not enforce it — it is recorded
	// here so one option struct carries the whole decision-bounding story.
	NodeBudget int64
	// ToleranceFrac is the conformance-gate tolerance (default 0.02,
	// matching the guard's default OvershootFrac).
	ToleranceFrac float64
	// Predictor builds the supervisor's own §5.5 matrices from its
	// finite-filtered last-good samples. Front ends fill it with the same
	// predictor the decider uses; required.
	Predictor core.Predictor
}

// Validate reports configuration errors as *OptionError.
func (c SupervisorConfig) Validate() error {
	switch {
	case c.Deadline < 0:
		return &OptionError{Component: "engine", Field: "Supervisor.Deadline", Value: c.Deadline, Reason: "must be non-negative"}
	case c.NodeBudget < 0:
		return &OptionError{Component: "engine", Field: "Supervisor.NodeBudget", Value: c.NodeBudget, Reason: "must be non-negative"}
	case math.IsNaN(c.ToleranceFrac) || math.IsInf(c.ToleranceFrac, 0) || c.ToleranceFrac < 0:
		return &OptionError{Component: "engine", Field: "Supervisor.ToleranceFrac", Value: c.ToleranceFrac, Reason: "must be a finite non-negative fraction"}
	case c.Predictor.Plan.NumModes() == 0:
		return &OptionError{Component: "engine", Field: "Supervisor.Predictor", Value: nil, Reason: "required (front ends fill it with the decider's predictor)"}
	}
	return nil
}

func (c SupervisorConfig) tolerance() float64 {
	if c.ToleranceFrac == 0 {
		return 0.02
	}
	return c.ToleranceFrac
}

// Supervision is the supervisor's account of one decision, polled by the
// engine per interval for counters and DecisionTrace fields.
type Supervision struct {
	// Rung is the degradation-ladder rung that produced the actuated vector.
	Rung int
	// Rejected reports the conformance gate rejected the rung-0 vector;
	// Repaired reports the actuated vector came from greedy demotion repair.
	Rejected bool
	Repaired bool
	// PredPowerW is the supervisor-predicted chip power of the actuated
	// vector (what the gate compared against the budget).
	PredPowerW float64
	// TimedOut reports the watchdog abandoned the configured decider
	// mid-solve; Wedged reports the decider was skipped entirely because a
	// previously abandoned solve was still running.
	TimedOut bool
	Wedged   bool
}

// supervisor implements Decider by wrapping the configured decider with the
// degradation ladder and conformance gate of SupervisorConfig. It is
// constructed by Run (never by callers) and used from the engine loop
// goroutine only; in watchdog mode a single persistent worker goroutine runs
// the inner decider so an abandoned decision can keep draining off-loop.
type supervisor struct {
	cfg     SupervisorConfig
	tol     float64
	inner   Decider
	inj     *fault.Injector
	plan    modes.Plan
	n       int
	deepest modes.Vector

	current  modes.Vector  // the vector actually in force (actuated)
	obs      []core.Sample // finite-filtered last-good observations
	mx       core.Matrices // supervisor-owned §5.5 matrices, rebuilt per decision
	lastGood modes.Vector  // most recent gate-passing actuation
	haveGood bool

	last Supervision

	// Watchdog machinery, nil/unused when cfg.Deadline == 0. The channels
	// are buffered so neither side ever blocks the other permanently: the
	// worker parks a late result in resC and moves on.
	reqC        chan core.Decision
	resC        chan modes.Vector
	timer       *time.Timer
	workSamples []core.Sample // worker-owned copy; written only while idle
	busy        bool          // an abandoned decision is still running

	// sessInval is the inner policy's solver-session invalidator, when it has
	// one. The session is single-goroutine state that the worker uses during
	// decisions, so engine-requested invalidations arriving while an
	// abandoned decision still owns it are deferred (pendingInval) and
	// applied at the next point the worker is provably idle.
	sessInval    sessionInvalidator
	pendingInval bool
}

var _ Decider = (*supervisor)(nil)

func newSupervisor(cfg SupervisorConfig, inner Decider, inj *fault.Injector, n int) *supervisor {
	s := &supervisor{
		cfg:      cfg,
		tol:      cfg.tolerance(),
		inner:    inner,
		inj:      inj,
		plan:     cfg.Predictor.Plan,
		n:        n,
		current:  modes.Uniform(n, modes.Turbo),
		obs:      make([]core.Sample, n),
		lastGood: make(modes.Vector, n),
	}
	s.deepest = modes.Uniform(n, modes.Mode(s.plan.NumModes()-1))
	if ph, ok := inner.(policyHolder); ok {
		s.sessInval, _ = ph.Policy().(sessionInvalidator)
	}
	if cfg.Deadline > 0 {
		s.reqC = make(chan core.Decision, 1)
		s.resC = make(chan modes.Vector, 1)
		s.workSamples = make([]core.Sample, n)
		s.timer = time.NewTimer(time.Hour)
		if !s.timer.Stop() {
			<-s.timer.C
		}
		go s.worker()
	}
	return s
}

// worker runs abandoned-able decisions off the engine loop. The injected
// decision hang (fault.SolverStall) models the wedged solver itself, so it
// sleeps here — on the worker, where the watchdog can abandon it.
func (s *supervisor) worker() {
	for d := range s.reqC {
		if s.inj != nil {
			if hang := s.inj.DecisionHang(d.Now); hang > 0 {
				time.Sleep(hang)
			}
		}
		s.resC <- s.inner.StepDecision(d)
	}
}

// StepDecision implements Decider: one trip down the degradation ladder.
func (s *supervisor) StepDecision(d core.Decision) modes.Vector {
	s.last = Supervision{}
	s.observe(d.Samples)
	s.cfg.Predictor.MatricesInto(&s.mx, s.current, s.obs)
	budget := d.BudgetW

	// Rung 0: the configured decider, under the deadline.
	var v modes.Vector
	if s.tryDecider(d, &v) {
		pred := s.predPower(v)
		if s.conforms(pred, budget) {
			return s.actuate(v, 0, pred, true)
		}
		s.last.Rejected = true
		if p, ok := s.repair(v, budget); ok {
			s.last.Repaired = true
			s.syncInner(v)
			return s.actuate(v, 0, p, true)
		}
	}

	// Rung 1: the shared greedy kernel on the supervisor's own matrices —
	// conformant by construction whenever the budget admits anything.
	gin := solver.Instance{Plan: s.plan, BudgetW: budget, Power: s.mx.Power, Instr: s.mx.Instr}
	gv, _ := solver.Greedy{}.Solve(gin)
	if pred := s.predPower(gv); s.conforms(pred, budget) {
		s.syncInner(gv)
		return s.actuate(gv, 1, pred, true)
	}

	// Rung 2: the last-known-good vector, refitted to the current budget by
	// greedy demotion (the "rescale" for budgets that moved under us).
	if s.haveGood {
		lk := s.lastGood.Clone()
		if p, ok := s.repair(lk, budget); ok {
			s.syncInner(lk)
			return s.actuate(lk, 2, p, true)
		}
	}

	// Rung 3: uniform deepest-mode emergency throttle — the floor vector is
	// the least power the chip can draw, conformant or not.
	dv := s.deepest.Clone()
	pred := s.predPower(dv)
	s.syncInner(dv)
	return s.actuate(dv, 3, pred, s.conforms(pred, budget))
}

// tryDecider runs the configured decider, synchronously (deterministic;
// wall-boundedness comes from the solver-side cooperative deadline) or under
// the watchdog. It reports whether a rung-0 vector is available.
func (s *supervisor) tryDecider(d core.Decision, out *modes.Vector) bool {
	if s.reqC == nil {
		*out = s.inner.StepDecision(d)
		return true
	}
	if s.busy {
		select {
		case <-s.resC:
			// A previously abandoned decision finally finished. Its vector
			// answers a stale interval — discard it and re-anchor the inner
			// manager to what was actually actuated meanwhile.
			s.busy = false
			s.syncInner(s.current)
			s.applyPendingInval()
		default:
			s.last.Wedged = true
			return false
		}
	}
	// The engine reuses its sample buffer every interval; the worker may
	// outlive this one, so hand it a supervisor-owned copy. The abandoned
	// path may also race the substrate, so the async decider never sees the
	// lookahead oracle.
	copy(s.workSamples, d.Samples)
	d.Samples = s.workSamples
	d.Lookahead = nil
	s.reqC <- d
	s.timer.Reset(s.cfg.Deadline)
	select {
	case v := <-s.resC:
		if !s.timer.Stop() {
			select {
			case <-s.timer.C:
			default:
			}
		}
		*out = v
		return true
	case <-s.timer.C:
		s.busy = true
		s.last.TimedOut = true
		return false
	}
}

// observe folds the interval's samples into the supervisor's trusted view:
// finite, non-negative readings replace the stored ones; garbage (NaN/Inf/
// negative) leaves the last good value in place, so the gate keeps working
// on plausible magnitudes while the telemetry lies.
func (s *supervisor) observe(samples []core.Sample) {
	for c := range samples {
		sm := samples[c]
		s.obs[c].Done = sm.Done
		if finite(sm.PowerW) && sm.PowerW >= 0 && finite(sm.Instr) && sm.Instr >= 0 {
			s.obs[c].PowerW = sm.PowerW
			s.obs[c].Instr = sm.Instr
		}
	}
}

// predPower scores v with the canonical core-order sum over the
// supervisor's matrices.
func (s *supervisor) predPower(v modes.Vector) float64 {
	var p float64
	for c, m := range v {
		p += s.mx.Power[c][m]
	}
	return p
}

// conforms is the budget-conformance gate: predicted power within
// budget × (1+tol), with the same relative epsilon the solvers use.
func (s *supervisor) conforms(pred, budget float64) bool {
	return pred <= budget*(1+s.tol)+1e-9*(1+math.Abs(budget))
}

// repair demotes v in place — one mode step at a time, always the demotion
// losing the least predicted throughput per watt saved (ties to the lowest
// core) — until it conforms. It reports the final predicted power and
// whether repair succeeded; on failure v is left at the demotion frontier
// (no further power-saving step exists).
func (s *supervisor) repair(v modes.Vector, budget float64) (float64, bool) {
	nm := s.plan.NumModes()
	pred := s.predPower(v)
	for iter := 0; iter < s.n*(nm-1); iter++ {
		if s.conforms(pred, budget) {
			return pred, true
		}
		bestC := -1
		var bestRatio float64
		for c := 0; c < s.n; c++ {
			m := v[c]
			if int(m) >= nm-1 {
				continue
			}
			dP := s.mx.Power[c][m] - s.mx.Power[c][m+1] // watts saved
			if !(dP > 0) {                              // rejects NaN rows too
				continue
			}
			ratio := (s.mx.Instr[c][m] - s.mx.Instr[c][m+1]) / dP // throughput lost per watt
			if math.IsNaN(ratio) {
				continue
			}
			if bestC < 0 || ratio < bestRatio {
				bestC, bestRatio = c, ratio
			}
		}
		if bestC < 0 {
			return pred, false
		}
		v[bestC]++
		pred = s.predPower(v) // canonical re-sum: no incremental drift
	}
	return pred, s.conforms(pred, budget)
}

// syncInner re-anchors the inner manager's notion of the current vector to
// what the supervisor actuated, so next interval's predictions normalize
// against the modes that actually ran. Skipped while an abandoned decision
// still owns the inner manager.
func (s *supervisor) syncInner(v modes.Vector) {
	if s.busy {
		return
	}
	if cs, ok := s.inner.(currentSetter); ok {
		cs.SetCurrent(v)
	}
}

// actuate records the ladder outcome and adopts v as the vector in force.
func (s *supervisor) actuate(v modes.Vector, rung int, pred float64, good bool) modes.Vector {
	copy(s.current, v)
	if good {
		copy(s.lastGood, v)
		s.haveGood = true
	}
	s.last.Rung = rung
	s.last.PredPowerW = pred
	return v
}

// Current implements Decider: the vector the supervisor actually actuated.
func (s *supervisor) Current() modes.Vector { return s.current.Clone() }

// GuardStats implements Decider, draining any abandoned decision first so
// the inner manager is quiescent when read.
func (s *supervisor) GuardStats() (core.ResilientStats, bool) {
	s.drain()
	return s.inner.GuardStats()
}

// LastSupervision implements supervisionReporter.
func (s *supervisor) LastSupervision() Supervision { return s.last }

// InEmergency implements emergencyReporter, delegating to the inner decider
// when it is safe to touch (not owned by an abandoned decision).
func (s *supervisor) InEmergency() bool {
	if s.busy {
		return false
	}
	if er, ok := s.inner.(emergencyReporter); ok {
		return er.InEmergency()
	}
	return false
}

// LastCandidate implements candidateReporter under the same ownership rule.
func (s *supervisor) LastCandidate() modes.Vector {
	if s.busy {
		return nil
	}
	if cr, ok := s.inner.(candidateReporter); ok {
		return cr.LastCandidate()
	}
	return nil
}

// InvalidateSession implements sessionInvalidator under the ownership rule:
// idle, it forwards to the inner policy's session immediately; with an
// abandoned decision still running the inner manager — and with it the
// policy's single-goroutine solver session — the invalidation is deferred
// and applied at the next point the worker is provably idle (the next
// dispatch, or drain). Either way it lands before the session's next use.
func (s *supervisor) InvalidateSession() {
	if s.sessInval == nil {
		return
	}
	if s.busy {
		s.pendingInval = true
		return
	}
	s.sessInval.InvalidateSession()
}

// applyPendingInval flushes a deferred session invalidation. Callers must
// have just established that the worker is idle (busy == false after a resC
// receive, which also orders the worker's session writes before ours).
func (s *supervisor) applyPendingInval() {
	if s.pendingInval && !s.busy && s.sessInval != nil {
		s.pendingInval = false
		s.sessInval.InvalidateSession()
	}
}

// Policy implements policyHolder (end-of-run solver-node accounting).
func (s *supervisor) Policy() core.Policy {
	if ph, ok := s.inner.(policyHolder); ok {
		return ph.Policy()
	}
	return nil
}

// drain blocks until an abandoned decision finishes, discards its stale
// result, and re-anchors the inner manager. The wait is bounded by the
// inner decider's own runtime (plus any injected hang).
func (s *supervisor) drain() {
	if s.busy {
		<-s.resC
		s.busy = false
		s.syncInner(s.current)
		s.applyPendingInval()
	}
}

// stop shuts down the watchdog worker; the supervisor must not be stepped
// after. Run defers it.
func (s *supervisor) stop() {
	if s.reqC == nil {
		return
	}
	s.drain()
	close(s.reqC)
	s.reqC = nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
