package engine

import (
	"time"

	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/workload"
)

// Result captures a full managed run at delta-sim resolution. Both front ends
// — the trace-based CMP analysis tool (internal/cmpsim) and the cycle-level
// full-CMP simulator (internal/fullsim) — return this one type, so every
// downstream consumer (experiments, metrics, the CLI) reads either substrate
// identically.
type Result struct {
	Combo  workload.Combo
	Policy string

	// DeltaSim is the interval length of the series below.
	DeltaSim time.Duration
	// ChipPowerW[i] is average chip power over delta interval i.
	ChipPowerW []float64
	// CorePowerW[i][c] and CoreInstr[i][c] are per-core series.
	CorePowerW [][]float64
	CoreInstr  [][]float64
	// BudgetW[i] is the budget in force during interval i.
	BudgetW []float64
	// Modes[k] is the vector in force during explore interval k.
	Modes []modes.Vector

	// Elapsed is the simulated wall time (horizon, or first completion).
	Elapsed time.Duration
	// FirstCompleted is the core whose benchmark finished first, or -1.
	FirstCompleted int
	// TotalInstr is aggregate committed instructions; PerCoreInstr splits it.
	TotalInstr   float64
	PerCoreInstr []float64
	// EnergyJ is total chip energy over the run.
	EnergyJ float64
	// TransitionStall is the cumulative synchronized stall time.
	TransitionStall time.Duration
	// OvershootIntervals counts delta intervals whose average chip power
	// exceeded the in-force budget (short excursions corrected at the next
	// explore boundary, §5.5).
	OvershootIntervals int
	// MaxTempC[i] is the hottest core's temperature during delta interval i
	// (only populated when a thermal governor is wired in).
	MaxTempC []float64

	// Robustness accounting (§ "Fault model & resilience" in DESIGN.md).
	//
	// OvershootEnergyWs integrates every budget violation over the run, in
	// watt·seconds; WorstOvershootWs is the largest violation accumulated
	// by a single contiguous run of over-budget intervals — the sustained
	// excursion the package's margins must absorb.
	OvershootEnergyWs float64
	WorstOvershootWs  float64
	// EmergencyEntries counts engagements of the hard-cap throttle and
	// EmergencyIntervals the explore intervals spent throttled (guarded
	// runs only).
	EmergencyEntries   int
	EmergencyIntervals int
	// RecoveryLatency is the longest single emergency episode: the time
	// from throttle engagement until normal policy operation resumed.
	RecoveryLatency time.Duration
	// DeadCores lists cores the guarded manager declared dead and parked.
	DeadCores []int
	// SanitizedSamples counts per-core sensor readings the guarded manager
	// rejected or clamped; RescaledIntervals counts decisions where the
	// per-core sensors were rescaled to the chip-level measurement.
	SanitizedSamples  int
	RescaledIntervals int
	// FinalSamples are the interval-average per-core samples of the last
	// (possibly truncated) explore interval — what the manager would have
	// based its next decision on had the run continued.
	FinalSamples []core.Sample

	// Obs are the engine's always-on observability counters (decisions,
	// per-stage overrides, guard throttles, solver nodes, trace records).
	// They are gauges about the run, not part of the simulated physics, and
	// are excluded from golden Result fingerprints.
	Obs ObsCounters
}

// AvgChipPowerW returns the run's average chip power.
func (r *Result) AvgChipPowerW() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.EnergyJ / r.Elapsed.Seconds()
}

// MaxChipPowerW returns the maximum delta-interval chip power.
func (r *Result) MaxChipPowerW() float64 {
	var m float64
	for _, p := range r.ChipPowerW {
		if p > m {
			m = p
		}
	}
	return m
}

// EnvelopePowerW returns the worst-case chip power envelope: the sum of each
// core's maximum observed delta-interval power. Budgets are expressed as
// fractions of this envelope — the power a designer must provision for
// without global management (the "worst-case designs" §8 says dynamic
// management avoids). It exceeds MaxChipPowerW because per-core peaks rarely
// align, mirroring the paper's widening average-vs-peak gap (§1).
func (r *Result) EnvelopePowerW() float64 {
	if len(r.CorePowerW) == 0 {
		return 0
	}
	n := len(r.CorePowerW[0])
	var sum float64
	for c := 0; c < n; c++ {
		var m float64
		for i := range r.CorePowerW {
			if p := r.CorePowerW[i][c]; p > m {
				m = p
			}
		}
		sum += m
	}
	return sum
}

// ExploreChipPowerW folds the delta-resolution chip power series into
// per-explore-interval averages (deltasPerExplore samples per interval; a
// truncated final interval averages over the deltas that actually ran).
func (r *Result) ExploreChipPowerW(deltasPerExplore int) []float64 {
	if deltasPerExplore <= 0 || len(r.ChipPowerW) == 0 {
		return nil
	}
	out := make([]float64, 0, (len(r.ChipPowerW)+deltasPerExplore-1)/deltasPerExplore)
	for i := 0; i < len(r.ChipPowerW); i += deltasPerExplore {
		end := i + deltasPerExplore
		if end > len(r.ChipPowerW) {
			end = len(r.ChipPowerW)
		}
		var sum float64
		for _, p := range r.ChipPowerW[i:end] {
			sum += p
		}
		out = append(out, sum/float64(end-i))
	}
	return out
}
