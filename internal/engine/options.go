package engine

import "fmt"

// OptionError is the typed validation error for user-facing options across
// the front ends: engine.Options, cmpsim.Options, fullsim.Options. It names
// the component, the offending field and value, and why it was rejected, so
// misconfiguration fails loudly at Run time instead of silently misbehaving
// (a NaN budget poisoning every metric, a negative worker count quietly
// serializing a sweep).
type OptionError struct {
	// Component is the front end that rejected the option ("engine",
	// "cmpsim", "fullsim", ...).
	Component string
	// Field is the option field, dotted for nested options.
	Field string
	// Value is the rejected value.
	Value any
	// Reason says what a valid value looks like.
	Reason string
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("%s: option %s = %v: %s", e.Component, e.Field, e.Value, e.Reason)
}

// validate checks Options before Run touches the substrate. All failures
// are *OptionError with Component set to ErrPrefix (or "engine").
func (opt *Options) validate() error {
	comp := opt.ErrPrefix
	if comp == "" {
		comp = "engine"
	}
	fail := func(field string, value any, reason string) error {
		return &OptionError{Component: comp, Field: field, Value: value, Reason: reason}
	}
	if opt.Decider == nil {
		return fail("Decider", nil, "required")
	}
	if opt.Budget == nil {
		return fail("Budget", nil, "required")
	}
	if opt.DeltaSim <= 0 {
		return fail("DeltaSim", opt.DeltaSim, "must be positive")
	}
	if opt.DeltasPerExplore <= 0 {
		return fail("DeltasPerExplore", opt.DeltasPerExplore, "must be positive")
	}
	if opt.Horizon < 0 {
		return fail("Horizon", opt.Horizon, "must be non-negative")
	}
	if opt.Explore < 0 {
		return fail("Explore", opt.Explore, "must be non-negative")
	}
	if opt.Supervisor != nil {
		if err := opt.Supervisor.Validate(); err != nil {
			if oe, ok := err.(*OptionError); ok {
				oe.Component = comp
			}
			return err
		}
	}
	return nil
}
