package engine

import (
	"math"
	"strings"
	"testing"
	"time"

	"gpm/internal/config"
	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/thermal"
)

// fakeSub is a deterministic synthetic substrate: core c draws baseP[c]
// scaled by the mode's V²f power law and commits rate[c] instructions per
// second of execution, frequency-scaled — i.e. its physics match the §5.5
// predictor exactly. It exists so engine tests and benchmarks exercise the
// control loop without trace characterization or cycle-level simulation
// underneath.
type fakeSub struct {
	plan       modes.Plan
	baseP      []float64
	rate       []float64
	exploreSec float64
	// doneAfter[c], when positive, completes core c once it has executed
	// that many seconds.
	doneAfter []float64
	execSec   []float64
}

func newFakeSub(plan modes.Plan, baseP, rate []float64, exploreSec float64) *fakeSub {
	return &fakeSub{
		plan:       plan,
		baseP:      baseP,
		rate:       rate,
		exploreSec: exploreSec,
		doneAfter:  make([]float64, len(baseP)),
		execSec:    make([]float64, len(baseP)),
	}
}

func (s *fakeSub) NumCores() int { return len(s.baseP) }

func (s *fakeSub) Bootstrap() []core.Sample {
	out := make([]core.Sample, len(s.baseP))
	for c := range out {
		out[c] = core.Sample{PowerW: s.baseP[c], Instr: s.rate[c] * s.exploreSec}
	}
	return out
}

func (s *fakeSub) ModePowerW(c int, m modes.Mode) float64 {
	return s.baseP[c] * s.plan.PowerScale(m)
}

func (s *fakeSub) DeltaStep(v modes.Vector, execSec float64, live []bool, energyJ, instr []float64) {
	for c := range live {
		if !live[c] {
			continue
		}
		energyJ[c] = s.baseP[c] * s.plan.PowerScale(v[c]) * execSec
		instr[c] = s.rate[c] * s.plan.FreqScale(v[c]) * execSec
		s.execSec[c] += execSec
	}
}

func (s *fakeSub) Finished(c int) bool {
	return s.doneAfter[c] > 0 && s.execSec[c] >= s.doneAfter[c]
}

func (s *fakeSub) Lookahead() func(c int, m modes.Mode) (float64, float64) {
	return func(c int, m modes.Mode) (float64, float64) {
		return s.baseP[c] * s.plan.PowerScale(m), s.rate[c] * s.plan.FreqScale(m) * s.exploreSec
	}
}

func (s *fakeSub) MemBound() []float64 { return nil }

func testPlan(t testing.TB) modes.Plan {
	t.Helper()
	cfg := config.Default(4)
	return modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
}

func runFake(t testing.TB, sub *fakeSub, opt Options) *Result {
	t.Helper()
	res, err := Run(sub, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseOptions(t testing.TB, plan modes.Plan, n int, budgetW float64) Options {
	t.Helper()
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	return Options{
		Plan:             plan,
		Budget:           func(time.Duration) float64 { return budgetW },
		Decider:          NewDecider(plan, core.MaxBIPS{}, pred, n, nil),
		DeltaSim:         50 * time.Microsecond,
		DeltasPerExplore: 10,
		Horizon:          2 * time.Millisecond,
	}
}

// --- Satellite: thermal clamp with a sensor dead from birth ------------------

func deadSensorGovernor(t *testing.T) *thermal.Governor {
	t.Helper()
	st, err := thermal.NewState(thermal.Params{RthCPerW: 2.5, CthJPerC: 8e-4, AmbientC: 45, LimitC: 85}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return thermal.NewGovernor(st, 500*time.Microsecond)
}

// TestThermalClampDeadFromBirth is the regression test for the historical
// lastThermalB = +Inf initialization: a thermal sensor that fails before the
// first decision must clamp at the governor's initial (cold-chip) reading,
// not report an infinite allowance and never clamp at all.
func TestThermalClampDeadFromBirth(t *testing.T) {
	gov := deadSensorGovernor(t)
	initial := gov.BudgetW()
	if math.IsInf(initial, 1) || initial <= 0 {
		t.Fatalf("governor initial reading %v not a usable seed", initial)
	}
	inj, err := fault.NewInjector(fault.Scenario{ThermalFailAt: time.Nanosecond}, 4)
	if err != nil {
		t.Fatal(err)
	}
	clamp := NewThermalClamp(gov, inj)
	// Heat the chip far past the limit AFTER construction: a live sensor
	// would now clamp much harder, a dead one repeats the seeded reading,
	// and the old +Inf bug would not clamp at all.
	gov.State().Step([]float64{400, 400, 400, 400}, 50*time.Millisecond)
	st := &Step{Now: time.Millisecond, BudgetW: 1e12}
	if err := clamp.Apply(st); err != nil {
		t.Fatal(err)
	}
	if st.BudgetW != initial {
		t.Errorf("dead-from-birth sensor clamped to %v, want seeded initial reading %v", st.BudgetW, initial)
	}
}

// TestThermalClampTracksLiveSensor checks the no-fault path still follows the
// live governor reading as the chip heats.
func TestThermalClampTracksLiveSensor(t *testing.T) {
	gov := deadSensorGovernor(t)
	clamp := NewThermalClamp(gov, nil)
	st := &Step{BudgetW: 1e12}
	if err := clamp.Apply(st); err != nil {
		t.Fatal(err)
	}
	cold := st.BudgetW
	gov.State().Step([]float64{120, 120, 120, 120}, 20*time.Millisecond)
	st2 := &Step{Now: 20 * time.Millisecond, BudgetW: 1e12}
	if err := clamp.Apply(st2); err != nil {
		t.Fatal(err)
	}
	if st2.BudgetW >= cold {
		t.Errorf("hot-chip clamp %v not below cold-chip clamp %v", st2.BudgetW, cold)
	}
}

// --- Middleware chain --------------------------------------------------------

func TestDefaultChainOrder(t *testing.T) {
	gov := deadSensorGovernor(t)
	inj, err := fault.NewInjector(fault.Scenario{PowerNoiseSigma: 0.05}, 4)
	if err != nil {
		t.Fatal(err)
	}
	budget := func(time.Duration) float64 { return 80 }
	names := func(chain []Stage) string {
		var parts []string
		for _, s := range chain {
			parts = append(parts, s.Name())
		}
		return strings.Join(parts, ",")
	}
	if got := names(DefaultChain(budget, "", inj, gov)); got != "budget,fault-budget,thermal-clamp,fault-observe" {
		t.Errorf("full chain order %q", got)
	}
	if got := names(DefaultChain(budget, "", nil, nil)); got != "budget" {
		t.Errorf("bare chain %q", got)
	}
	if got := names(DefaultChain(budget, "", nil, gov)); got != "budget,thermal-clamp" {
		t.Errorf("thermal-only chain %q", got)
	}
}

func TestBudgetSourceValidation(t *testing.T) {
	for _, bad := range []float64{math.NaN(), -1} {
		src := BudgetSource{Fn: func(time.Duration) float64 { return bad }, ErrPrefix: "fullsim"}
		err := src.Apply(&Step{Now: time.Millisecond})
		if err == nil {
			t.Fatalf("budget %v accepted", bad)
		}
		if !strings.Contains(err.Error(), "fullsim:") || !strings.Contains(err.Error(), "budget") {
			t.Errorf("error %q missing prefix or cause", err)
		}
	}
	src := BudgetSource{Fn: func(time.Duration) float64 { return 55 }}
	st := &Step{}
	if err := src.Apply(st); err != nil || st.BudgetW != 55 {
		t.Errorf("good budget rejected: %v (budget %v)", err, st.BudgetW)
	}
}

// --- Satellite: Result edge cases -------------------------------------------

func TestResultEdgeCases(t *testing.T) {
	empty := &Result{}
	if v := empty.MaxChipPowerW(); v != 0 {
		t.Errorf("empty MaxChipPowerW = %v", v)
	}
	if v := empty.EnvelopePowerW(); v != 0 {
		t.Errorf("empty EnvelopePowerW = %v", v)
	}
	if v := empty.AvgChipPowerW(); v != 0 {
		t.Errorf("empty AvgChipPowerW = %v", v)
	}
	if s := empty.ExploreChipPowerW(10); s != nil {
		t.Errorf("empty ExploreChipPowerW = %v", s)
	}

	single := &Result{
		ChipPowerW: []float64{1, 3, 2},
		CorePowerW: [][]float64{{1}, {3}, {2}},
	}
	if v := single.MaxChipPowerW(); v != 3 {
		t.Errorf("single-core MaxChipPowerW = %v, want 3", v)
	}
	// With one core the envelope IS the peak: the sum over cores of per-core
	// maxima degenerates to the chip maximum.
	if v := single.EnvelopePowerW(); v != 3 {
		t.Errorf("single-core EnvelopePowerW = %v, want 3", v)
	}
	if s := single.ExploreChipPowerW(0); s != nil {
		t.Errorf("non-positive deltasPerExplore accepted: %v", s)
	}

	trunc := &Result{ChipPowerW: []float64{1, 2, 3, 4, 5}}
	got := trunc.ExploreChipPowerW(2)
	want := []float64{1.5, 3.5, 5}
	if len(got) != len(want) {
		t.Fatalf("folded series %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("folded[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// --- Satellite: truncated-interval averaging through the engine path ---------

func TestTruncatedIntervalAveragingEnginePath(t *testing.T) {
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 20, 20, 20}, []float64{4e9, 4e9, 4e9, 4e9}, 500e-6)
	opt := baseOptions(t, plan, 4, 1e12) // unconstrained: vector stays Turbo
	// One full explore interval (10 deltas) plus 4 deltas of a truncated one.
	opt.Horizon = 500*time.Microsecond + 4*50*time.Microsecond
	res := runFake(t, sub, opt)
	if len(res.ChipPowerW) != 14 {
		t.Fatalf("simulated %d deltas, want 14", len(res.ChipPowerW))
	}
	if res.Elapsed != opt.Horizon {
		t.Errorf("elapsed %v, want %v", res.Elapsed, opt.Horizon)
	}
	// Power is constant at Turbo, so a correct truncated average equals the
	// per-delta power; dividing by the nominal 10 deltas would report 0.4×.
	for c, s := range res.FinalSamples {
		if math.Abs(s.PowerW-20) > 1e-9 {
			t.Errorf("core %d final sample %v W, want 20 W (truncated average over 4 deltas)", c, s.PowerW)
		}
	}
}

// TestEngineFirstCompletionStops checks the §5.1 termination rule through the
// engine: the run ends at the first finished core, mid-interval, and the
// truncated interval is still averaged correctly.
func TestEngineFirstCompletionStops(t *testing.T) {
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 25, 20, 20}, []float64{4e9, 4e9, 4e9, 4e9}, 500e-6)
	sub.doneAfter[2] = 720e-6 // completes inside the second explore interval
	opt := baseOptions(t, plan, 4, 1e12)
	res := runFake(t, sub, opt)
	if res.FirstCompleted != 2 {
		t.Errorf("FirstCompleted = %d, want 2", res.FirstCompleted)
	}
	if res.Elapsed >= opt.Horizon {
		t.Errorf("run did not stop early (elapsed %v)", res.Elapsed)
	}
	if res.FinalSamples[2].Done != true {
		t.Error("completed core not marked Done in final samples")
	}
}

// TestEngineMatchesBudget sanity-checks the managed loop end to end on the
// synthetic substrate: a 70% budget forces non-Turbo modes and the average
// power lands at or under the budget.
func TestEngineMatchesBudget(t *testing.T) {
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 20, 20, 20}, []float64{4e9, 3e9, 2e9, 1e9}, 500e-6)
	budget := 0.7 * 80
	opt := baseOptions(t, plan, 4, budget)
	opt.Horizon = 5 * time.Millisecond
	res := runFake(t, sub, opt)
	if res.AvgChipPowerW() > budget*1.02 {
		t.Errorf("avg power %v exceeds budget %v", res.AvgChipPowerW(), budget)
	}
	sawNonTurbo := false
	for _, v := range res.Modes {
		for _, m := range v {
			if m != modes.Turbo {
				sawNonTurbo = true
			}
		}
	}
	if !sawNonTurbo {
		t.Error("manager never left Turbo under a 70% budget")
	}
}
