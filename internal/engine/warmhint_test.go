package engine

import (
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/solver"
)

// hintRecorder is a capturing policy: it decides like the wrapped policy but
// records the warm hint each decision context carried.
type hintRecorder struct {
	inner core.Policy
	hints []modes.Vector
	outs  []modes.Vector
}

func (h *hintRecorder) Name() string { return "hint-recorder" }

func (h *hintRecorder) Decide(c core.Context) modes.Vector {
	if c.Hint == nil {
		h.hints = append(h.hints, nil)
	} else {
		h.hints = append(h.hints, c.Hint.Clone())
	}
	v := h.inner.Decide(c)
	h.outs = append(h.outs, v.Clone())
	return v
}

func recorderOptions(t *testing.T, plan modes.Plan, rec *hintRecorder, n int, budget func(time.Duration) float64) Options {
	t.Helper()
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	return Options{
		Plan:             plan,
		Budget:           budget,
		Decider:          NewDecider(plan, rec, pred, n, nil),
		DeltaSim:         50 * time.Microsecond,
		DeltasPerExplore: 10,
		Horizon:          3 * time.Millisecond, // 6 decisions
	}
}

// TestWarmHintSteadyState pins the engine's hint threading: the first
// decision is cold (no previous vector), and every later decision in an
// undisturbed run receives exactly the vector the policy returned — and the
// engine actuated — the interval before.
func TestWarmHintSteadyState(t *testing.T) {
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 18, 15, 17}, []float64{900, 1000, 700, 850}, 500e-6)
	rec := &hintRecorder{inner: core.MaxBIPS{}}
	res := runFake(t, sub, recorderOptions(t, plan, rec, 4, func(time.Duration) float64 { return 55 }))

	if len(rec.hints) < 3 {
		t.Fatalf("only %d decisions recorded", len(rec.hints))
	}
	if rec.hints[0] != nil {
		t.Fatalf("first decision got hint %v, want nil", rec.hints[0])
	}
	for i := 1; i < len(rec.hints); i++ {
		if !rec.hints[i].Equal(rec.outs[i-1]) {
			t.Fatalf("decision %d hint %v != previous actuated %v", i, rec.hints[i], rec.outs[i-1])
		}
	}
	if want := len(rec.hints) - 1; res.Obs.WarmHints != want {
		t.Fatalf("Obs.WarmHints = %d, want %d", res.Obs.WarmHints, want)
	}
}

// TestWarmHintBudgetJumpInvalidates pins the >25% budget-step rule: the
// decision right after a brownout is cold, the one after that (budget flat
// again) is warm.
func TestWarmHintBudgetJumpInvalidates(t *testing.T) {
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 18, 15, 17}, []float64{900, 1000, 700, 850}, 500e-6)
	rec := &hintRecorder{inner: core.MaxBIPS{}}
	// Decisions land at 0, 500µs, 1ms, 1.5ms, 2ms, 2.5ms. The cap halves
	// (−50% ≫ 25%) from 1.2ms on → the 1.5ms decision must be cold.
	res := runFake(t, sub, recorderOptions(t, plan, rec, 4, func(now time.Duration) float64 {
		if now >= 1200*time.Microsecond {
			return 30
		}
		return 60
	}))

	if len(rec.hints) < 5 {
		t.Fatalf("only %d decisions recorded", len(rec.hints))
	}
	if rec.hints[1] == nil || rec.hints[2] == nil {
		t.Fatal("pre-brownout decisions were cold")
	}
	if rec.hints[3] != nil {
		t.Fatalf("decision after the budget step got hint %v, want nil", rec.hints[3])
	}
	if rec.hints[4] == nil {
		t.Fatal("decision after the budget settled was still cold")
	}
	if res.Obs.WarmHints >= len(rec.hints)-1 {
		t.Fatalf("Obs.WarmHints = %d did not drop for the cold decision", res.Obs.WarmHints)
	}
}

// TestWarmHintCoreDeathInvalidates pins the population-change rule: when a
// core dies, the next decision is cold, then warmth resumes. (A *finished*
// core cannot be tested this way — §5.1 ends the run at first completion —
// but both feed the same dead/done census in the invalidation check.)
func TestWarmHintCoreDeathInvalidates(t *testing.T) {
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 18, 15, 17}, []float64{900, 1000, 700, 850}, 500e-6)
	inj, err := fault.NewInjector(fault.Scenario{
		Deaths: []fault.CoreDeath{{Core: 2, At: 1200 * time.Microsecond}},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := &hintRecorder{inner: core.MaxBIPS{}}
	opt := recorderOptions(t, plan, rec, 4, func(time.Duration) float64 { return 55 })
	opt.Injector = inj
	runFake(t, sub, opt)

	if len(rec.hints) < 5 {
		t.Fatalf("only %d decisions recorded", len(rec.hints))
	}
	var coldAt []int
	for i := 1; i < len(rec.hints); i++ {
		if rec.hints[i] == nil {
			coldAt = append(coldAt, i)
		}
	}
	if len(coldAt) != 1 {
		t.Fatalf("cold decisions after the first at %v, want exactly one (the death transition)", coldAt)
	}
	if i := coldAt[0]; i+1 < len(rec.hints) && rec.hints[i+1] == nil {
		t.Fatal("warmth did not resume after the death transition")
	}
}

// TestEngineSessionCounters pins the Finish-time snapshot of the solver
// session's counters into Obs for a session-owning SolverPolicy, and that
// the session is actually being fed hints (warm-floored or memo-answered
// solves appear).
func TestEngineSessionCounters(t *testing.T) {
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 18, 15, 17}, []float64{900, 1000, 700, 850}, 500e-6)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	pol := core.NewSolverPolicy(&solver.BB{})
	opt := Options{
		Plan:             plan,
		Budget:           func(time.Duration) float64 { return 55 },
		Decider:          NewDecider(plan, pol, pred, 4, nil),
		DeltaSim:         50 * time.Microsecond,
		DeltasPerExplore: 10,
		Horizon:          3 * time.Millisecond,
	}
	res := runFake(t, sub, opt)
	if res.Obs.WarmHints == 0 {
		t.Fatal("no warm hints issued")
	}
	// The fake substrate is noiseless, so after the first interval the
	// matrices repeat bit-identically and the memo answers; either counter
	// proves session solves happened with state carried across intervals.
	if res.Obs.SolverMemoHits == 0 && res.Obs.SolverWarmSolves == 0 {
		t.Fatalf("session counters empty: %+v", res.Obs)
	}
	// The engine closed the session at Finish; the policy must report cold.
	if _, on := pol.SessionStats(); on {
		t.Fatal("session still open after Finish")
	}
}
