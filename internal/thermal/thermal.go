// Package thermal models per-core die temperature with a lumped RC network
// and derives dynamic chip power budgets from a temperature limit.
//
// The paper motivates global power management with "power and thermal
// implications" (§1) and evaluates a budget drop caused by a cooling failure
// (Fig 6). This package closes that loop: a Governor watches per-core
// temperatures evolve under the simulated power draw and translates a
// junction-temperature limit into the chip-level budget the global manager
// enforces.
//
// Each core is a first-order RC node:
//
//	C · dT/dt = P − (T − Tamb)/R
//
// so temperature relaxes toward Tamb + P·R with time constant R·C.
package thermal

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Params describes the per-core thermal network and limits.
type Params struct {
	// RthCPerW is the junction-to-ambient thermal resistance (°C/W).
	RthCPerW float64
	// CthJPerC is the lumped thermal capacitance (J/°C). R·C is the
	// thermal time constant.
	CthJPerC float64
	// AmbientC is the ambient (heatsink) temperature in °C.
	AmbientC float64
	// LimitC is the maximum allowed junction temperature in °C.
	LimitC float64
}

// DefaultParams returns plausible server-class values: ≈0.6 °C/W to a 45 °C
// ambient with a ≈25 ms time constant, limited at 85 °C.
func DefaultParams() Params {
	return Params{
		RthCPerW: 0.60,
		CthJPerC: 0.040,
		AmbientC: 45,
		LimitC:   85,
	}
}

// Validate reports parameter problems.
func (p Params) Validate() error {
	var errs []error
	if p.RthCPerW <= 0 || p.CthJPerC <= 0 {
		errs = append(errs, errors.New("thermal: R and C must be positive"))
	}
	if p.LimitC <= p.AmbientC {
		errs = append(errs, fmt.Errorf("thermal: limit %.1f°C must exceed ambient %.1f°C", p.LimitC, p.AmbientC))
	}
	return errors.Join(errs...)
}

// TimeConstant returns R·C.
func (p Params) TimeConstant() time.Duration {
	return time.Duration(p.RthCPerW * p.CthJPerC * float64(time.Second))
}

// SteadyStateC returns the equilibrium temperature at constant power.
func (p Params) SteadyStateC(powerW float64) float64 {
	return p.AmbientC + powerW*p.RthCPerW
}

// MaxSteadyPowerW returns the largest per-core power sustainable at the
// temperature limit.
func (p Params) MaxSteadyPowerW() float64 {
	return (p.LimitC - p.AmbientC) / p.RthCPerW
}

// State tracks the per-core temperatures.
type State struct {
	p     Params
	temps []float64
}

// NewState starts n cores at ambient temperature.
func NewState(p Params, n int) (*State, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("thermal: %d cores", n)
	}
	s := &State{p: p, temps: make([]float64, n)}
	for i := range s.temps {
		s.temps[i] = p.AmbientC
	}
	return s, nil
}

// Temps returns a copy of the current per-core temperatures.
func (s *State) Temps() []float64 {
	out := make([]float64, len(s.temps))
	copy(out, s.temps)
	return out
}

// MaxTemp returns the hottest core's temperature.
func (s *State) MaxTemp() float64 {
	m := math.Inf(-1)
	for _, t := range s.temps {
		if t > m {
			m = t
		}
	}
	return m
}

// Step integrates the network over dt with the given per-core powers using
// the exact solution of the linear node (stable for any dt).
func (s *State) Step(powersW []float64, dt time.Duration) {
	if len(powersW) != len(s.temps) {
		panic(fmt.Sprintf("thermal: %d powers for %d cores", len(powersW), len(s.temps)))
	}
	tau := s.p.RthCPerW * s.p.CthJPerC
	alpha := 1 - math.Exp(-dt.Seconds()/tau)
	for i := range s.temps {
		target := s.p.SteadyStateC(powersW[i])
		s.temps[i] += (target - s.temps[i]) * alpha
	}
}

// Governor converts the thermal state into a chip power budget: the total
// power that, held for one control horizon, would bring each core exactly to
// the temperature limit (never below a small idle floor per core).
type Governor struct {
	state   *State
	horizon time.Duration
	// FloorWPerCore guards against a zero budget when a core is already at
	// or above the limit (DVFS cannot cut power to zero).
	FloorWPerCore float64
	// MarginC is the control setpoint margin below the trip limit,
	// absorbing the sample-and-hold lag of explore-interval control and
	// interval-to-interval power jitter.
	MarginC float64
}

// NewGovernor wraps a thermal state with a control horizon (typically the
// explore interval).
func NewGovernor(state *State, horizon time.Duration) *Governor {
	return &Governor{state: state, horizon: horizon, FloorWPerCore: 2, MarginC: 2.5}
}

// State exposes the underlying temperatures.
func (g *Governor) State() *State { return g.state }

// BudgetW returns the chip power budget implied by the temperature limit.
// Per core, the allowance is the power P satisfying T + (Tamb + P·R − T)·α =
// Tlimit over one horizon, where α = 1 − e^(−h/τ). The chip budget is n ×
// the **hottest** core's allowance: a chip-total budget cannot direct a
// throughput-maximizing policy to slow any particular core, so only the
// conservative uniform bound guarantees the hottest core's power share
// shrinks with its headroom.
func (g *Governor) BudgetW() float64 {
	p := g.state.p
	tau := p.RthCPerW * p.CthJPerC
	alpha := 1 - math.Exp(-g.horizon.Seconds()/tau)
	setpoint := p.LimitC - g.MarginC
	minAllowed := math.Inf(1)
	for _, t := range g.state.temps {
		// Solve t + (ambient + P·R − t)·α = setpoint for P.
		allowed := ((setpoint-t)/alpha + t - p.AmbientC) / p.RthCPerW
		if allowed < g.FloorWPerCore {
			allowed = g.FloorWPerCore
		}
		if allowed < minAllowed {
			minAllowed = allowed
		}
	}
	return minAllowed * float64(len(g.state.temps))
}
