package thermal

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.RthCPerW = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero R validated")
	}
	bad = DefaultParams()
	bad.LimitC = bad.AmbientC
	if err := bad.Validate(); err == nil {
		t.Error("limit <= ambient validated")
	}
}

func TestSteadyState(t *testing.T) {
	p := DefaultParams()
	if got := p.SteadyStateC(0); got != p.AmbientC {
		t.Errorf("zero-power steady state %v, want ambient", got)
	}
	if got := p.SteadyStateC(50); math.Abs(got-(45+30)) > 1e-9 {
		t.Errorf("50 W steady state %v, want 75", got)
	}
	// MaxSteadyPowerW inverts SteadyStateC at the limit.
	if got := p.SteadyStateC(p.MaxSteadyPowerW()); math.Abs(got-p.LimitC) > 1e-9 {
		t.Errorf("max steady power does not reach the limit: %v", got)
	}
}

func TestStateConvergesToSteadyState(t *testing.T) {
	p := DefaultParams()
	s, err := NewState(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Hold 40 W / 20 W for many time constants.
	for i := 0; i < 10000; i++ {
		s.Step([]float64{40, 20}, time.Millisecond)
	}
	temps := s.Temps()
	if math.Abs(temps[0]-p.SteadyStateC(40)) > 0.1 {
		t.Errorf("core 0 temp %v, want ≈%v", temps[0], p.SteadyStateC(40))
	}
	if math.Abs(temps[1]-p.SteadyStateC(20)) > 0.1 {
		t.Errorf("core 1 temp %v, want ≈%v", temps[1], p.SteadyStateC(20))
	}
	if s.MaxTemp() != temps[0] {
		t.Error("MaxTemp should be the hotter core")
	}
}

func TestStepExactSolutionStableForLargeDt(t *testing.T) {
	p := DefaultParams()
	s, _ := NewState(p, 1)
	// One giant step lands exactly on the steady state (no overshoot, no
	// instability — the exact exponential update, not forward Euler).
	s.Step([]float64{30}, time.Hour)
	if got := s.Temps()[0]; math.Abs(got-p.SteadyStateC(30)) > 1e-6 {
		t.Errorf("large step temp %v, want %v", got, p.SteadyStateC(30))
	}
}

// Property: temperature stays within [ambient, steady-state(maxP)] for any
// bounded power sequence, and is monotone in applied power.
func TestTemperatureBoundsProperty(t *testing.T) {
	p := DefaultParams()
	f := func(powers []uint8) bool {
		s, _ := NewState(p, 1)
		maxP := 0.0
		for _, raw := range powers {
			pw := float64(raw % 60)
			if pw > maxP {
				maxP = pw
			}
			s.Step([]float64{pw}, 5*time.Millisecond)
			temp := s.Temps()[0]
			if temp < p.AmbientC-1e-9 || temp > p.SteadyStateC(maxP)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGovernorBudgetShrinksWhenHot(t *testing.T) {
	p := DefaultParams()
	s, _ := NewState(p, 4)
	g := NewGovernor(s, 500*time.Microsecond)
	cold := g.BudgetW()
	// Heat all cores near the limit.
	for i := 0; i < 20000; i++ {
		s.Step([]float64{60, 60, 60, 60}, time.Millisecond)
	}
	hot := g.BudgetW()
	if hot >= cold {
		t.Errorf("hot budget %v not below cold budget %v", hot, cold)
	}
	if hot < 4*g.FloorWPerCore-1e-9 {
		t.Errorf("budget %v fell below the per-core floor", hot)
	}
}

func TestGovernorHoldsLimit(t *testing.T) {
	p := DefaultParams()
	s, _ := NewState(p, 1)
	g := NewGovernor(s, 500*time.Microsecond)
	// Closed loop: each step draws exactly the governed budget.
	for i := 0; i < 200000; i++ {
		s.Step([]float64{g.BudgetW()}, 500*time.Microsecond)
	}
	if temp := s.MaxTemp(); temp > p.LimitC+0.5 {
		t.Errorf("closed-loop temperature %v exceeds limit %v", temp, p.LimitC)
	}
}

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState(DefaultParams(), 0); err == nil {
		t.Error("zero cores accepted")
	}
	bad := DefaultParams()
	bad.CthJPerC = -1
	if _, err := NewState(bad, 2); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestStepPanicsOnMismatch(t *testing.T) {
	s, _ := NewState(DefaultParams(), 2)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	s.Step([]float64{1}, time.Millisecond)
}
