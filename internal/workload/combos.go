package workload

import "fmt"

// Combo is one benchmark-to-core assignment from Table 2 (or §6's 8-way
// merges). Core i runs Benchmarks[i].
type Combo struct {
	// ID is a short stable identifier used by the CLI and reports.
	ID string
	// Benchmarks lists benchmark names, one per core.
	Benchmarks []string
	// Aggregate is the paper's qualitative characterization.
	Aggregate string
}

// Cores returns the CMP width the combo targets.
func (c Combo) Cores() int { return len(c.Benchmarks) }

// Specs resolves the benchmark names.
func (c Combo) Specs() ([]Spec, error) {
	out := make([]Spec, len(c.Benchmarks))
	for i, n := range c.Benchmarks {
		s, err := Lookup(n)
		if err != nil {
			return nil, fmt.Errorf("combo %s: %w", c.ID, err)
		}
		out[i] = s
	}
	return out, nil
}

// Table 2 benchmark combinations, plus the two 8-way merges of §6.1 and the
// single-core reference point of Fig 11.
var (
	// TwoWay holds the 2-way CMP rows of Table 2 (Fig 8 order).
	TwoWay = []Combo{
		{ID: "2w-ammp-art", Benchmarks: []string{"ammp", "art"}, Aggregate: "Low CPU utilization, high memory utilization"},
		{ID: "2w-gcc-mesa", Benchmarks: []string{"gcc", "mesa"}, Aggregate: "High CPU utilization, low memory utilization"},
		{ID: "2w-crafty-facerec", Benchmarks: []string{"crafty", "facerec"}, Aggregate: "Very high CPU utilization, very low memory utilization"},
		{ID: "2w-art-mcf", Benchmarks: []string{"art", "mcf"}, Aggregate: "Very low CPU utilization, very high memory utilization"},
	}

	// FourWay holds the 4-way CMP rows of Table 2 (Fig 9 order).
	FourWay = []Combo{
		{ID: "4w-ammp-mcf-crafty-art", Benchmarks: []string{"ammp", "mcf", "crafty", "art"}, Aggregate: "Low CPU utilization, high memory utilization"},
		{ID: "4w-facerec-gcc-mesa-vortex", Benchmarks: []string{"facerec", "gcc", "mesa", "vortex"}, Aggregate: "High CPU utilization, low memory utilization"},
		{ID: "4w-sixtrack-gap-perlbmk-wupwise", Benchmarks: []string{"sixtrack", "gap", "perlbmk", "wupwise"}, Aggregate: "Very high CPU utilization, very low memory utilization"},
		{ID: "4w-mcf-mcf-art-art", Benchmarks: []string{"mcf", "mcf", "art", "art"}, Aggregate: "Very low CPU utilization, very high memory utilization"},
	}

	// EightWay merges pairs of 4-way combos as in Fig 10.
	EightWay = []Combo{
		{ID: "8w-mixed", Benchmarks: []string{"ammp", "mcf", "crafty", "art", "facerec", "gcc", "mesa", "vortex"}, Aggregate: "Mixed CPU/memory utilization"},
		{ID: "8w-corners", Benchmarks: []string{"sixtrack", "gap", "perlbmk", "wupwise", "mcf", "mcf", "art", "art"}, Aggregate: "CPU-bound and memory-bound corners"},
	}

	// Fig3Alternate is the (ammp, crafty, art, sixtrack) combination of
	// Fig 3(c)/(d): the 4-way baseline with mcf swapped for sixtrack.
	Fig3Alternate = Combo{ID: "4w-ammp-crafty-art-sixtrack", Benchmarks: []string{"ammp", "crafty", "art", "sixtrack"}, Aggregate: "Memory-bound benchmark replaced with CPU-bound"}
)

// Combos returns all Table 2 combinations for the given core count
// (1, 2, 4 or 8). For n == 1 it returns one single-benchmark combo per
// benchmark in the paper's 4-way baseline, matching Fig 11's single-core
// reference.
func Combos(n int) ([]Combo, error) {
	switch n {
	case 1:
		base := []string{"ammp", "mcf", "crafty", "art"}
		out := make([]Combo, len(base))
		for i, b := range base {
			out[i] = Combo{ID: "1w-" + b, Benchmarks: []string{b}, Aggregate: "single core"}
		}
		return out, nil
	case 2:
		return TwoWay, nil
	case 4:
		return FourWay, nil
	case 8:
		return EightWay, nil
	default:
		return nil, fmt.Errorf("workload: no Table 2 combos for %d cores", n)
	}
}

// FindCombo looks a combo up by ID across all widths.
func FindCombo(id string) (Combo, error) {
	all := [][]Combo{TwoWay, FourWay, EightWay, {Fig3Alternate}}
	for _, group := range all {
		for _, c := range group {
			if c.ID == id {
				return c, nil
			}
		}
	}
	return Combo{}, fmt.Errorf("workload: unknown combo %q", id)
}
