package workload

import (
	"math/rand"
	"testing"
)

// TestRNGMatchesMathRand locks the bit-compatibility contract: the inlined
// generator must agree with rand.New(rand.NewSource(seed)) draw-for-draw for
// every method the stream generator uses. The cmpsim golden fingerprints pin
// the generated instruction streams, so any divergence here is a
// reproduction-breaking change, not a tuning detail.
func TestRNGMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, -1, 7, 89482311, 20061209, 1<<62 + 12345, -20061209}
	for _, seed := range seeds {
		ref := rand.New(rand.NewSource(seed))
		got := newRNG(seed)
		for i := 0; i < 20000; i++ {
			switch i % 7 {
			case 0, 1:
				if g, w := got.Float64(), ref.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, g, w)
				}
			case 2:
				if g, w := got.Int63(), ref.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 = %v, want %v", seed, i, g, w)
				}
			case 3:
				// Power-of-two bound: the mask fast path.
				if g, w := got.Intn(16), ref.Intn(16); g != w {
					t.Fatalf("seed %d draw %d: Intn(16) = %v, want %v", seed, i, g, w)
				}
			case 4:
				// Non-power-of-two bound: the rejection path.
				if g, w := got.Intn(25), ref.Intn(25); g != w {
					t.Fatalf("seed %d draw %d: Intn(25) = %v, want %v", seed, i, g, w)
				}
			case 5:
				if g, w := got.Intn(3), ref.Intn(3); g != w {
					t.Fatalf("seed %d draw %d: Intn(3) = %v, want %v", seed, i, g, w)
				}
			case 6:
				// A bound above int32 range exercises int63n.
				n := 1<<31 + 7
				if g, w := got.Intn(n), ref.Intn(n); g != w {
					t.Fatalf("seed %d draw %d: Intn(2^31+7) = %v, want %v", seed, i, g, w)
				}
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	newRNG(1).Intn(0)
}

func BenchmarkRNGFloat64(b *testing.B) {
	b.Run("mathrand", func(b *testing.B) {
		r := rand.New(rand.NewSource(1))
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += r.Float64()
		}
		_ = sink
	})
	b.Run("inlined", func(b *testing.B) {
		r := newRNG(1)
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += r.Float64()
		}
		_ = sink
	})
}
