package workload

import "testing"

func drawN(s *Stream, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Float64()
	}
	return out
}

// TestStreamDeterministic pins that equal seeds reproduce both the root
// stream and the whole split tree bit-for-bit.
func TestStreamDeterministic(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	ac, bc := a.Split(), b.Split()
	for i := 0; i < 1000; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("root draw %d: %v != %v", i, av, bv)
		}
		if av, bv := ac.Float64(), bc.Float64(); av != bv {
			t.Fatalf("child draw %d: %v != %v", i, av, bv)
		}
	}
}

// TestStreamSplitIndependence pins the substream contract the fleet tier
// relies on: (a) no two streams in a split tree share a draw-sequence
// prefix, and (b) splitting a child off does not perturb the parent's own
// sequence, so adding a client to a scenario leaves the others' arrival
// processes bit-identical.
func TestStreamSplitIndependence(t *testing.T) {
	const nStreams, nDraws = 16, 64

	root := NewStream(7)
	streams := []*Stream{root}
	for i := 1; i < nStreams; i++ {
		streams = append(streams, root.Split())
	}
	seqs := make([][]float64, nStreams)
	for i, s := range streams {
		seqs[i] = drawN(s, nDraws)
	}
	for i := 0; i < nStreams; i++ {
		for j := i + 1; j < nStreams; j++ {
			same := 0
			for k := 0; k < nDraws; k++ {
				if seqs[i][k] == seqs[j][k] {
					same++
				}
			}
			if same == nDraws {
				t.Fatalf("streams %d and %d emit identical %d-draw prefixes", i, j, nDraws)
			}
			if same > nDraws/4 {
				t.Errorf("streams %d and %d agree on %d/%d draws; want near 0", i, j, same, nDraws)
			}
		}
	}

	// Splitting must not consume parent draws: a parent that splits k extra
	// children still emits the same sequence.
	p1, p2 := NewStream(99), NewStream(99)
	p2.Split()
	if a, b := drawN(p1, nDraws), drawN(p2, nDraws); !equalF64(a, b) {
		t.Fatal("Split perturbed the parent's draw sequence")
	}
	// ...but each split index yields a distinct child.
	q := NewStream(99)
	c1, c2 := q.Split(), q.Split()
	if a, b := drawN(c1, nDraws), drawN(c2, nDraws); equalF64(a, b) {
		t.Fatal("successive Split calls returned identical streams")
	}
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
