package workload

import (
	"gpm/internal/isa"
)

// Generator synthesizes a deterministic dynamic instruction stream for one
// benchmark phase. It implements isa.Stream.
//
// The stream is loop-structured: instructions execute in bodies of 8–32
// instructions terminated by a backward branch that iterates ~LoopTrip times
// before falling through to a new body elsewhere in the code footprint. Data
// references split between a hot region (cache-friendly) and a cold region
// (strided walk sized to defeat the hierarchy) according to the phase's
// ColdFrac.
// Distinct address spaces keep cache tags distinct across regions: code,
// hot (reused) data, and cold (streamed/chased) data. Simulators that warm
// caches before sampling pre-touch [HotBase, HotBase+HotSetBytes) and
// [ColdBase, ColdBase+ColdSetBytes) to establish steady-state residency.
const (
	CodeBase uint64 = 0x1000_0000
	HotBase  uint64 = 0x4000_0000
	ColdBase uint64 = 0x8000_0000
)

type Generator struct {
	spec  Spec
	phase Phase
	rng   *rng

	// resolved phase parameters
	cum     [isa.NumOps]float64 // cumulative mix distribution
	depDist float64
	cold    float64

	seq uint64

	// loop state
	loopStart uint64
	bodyLen   int
	bodyPos   int
	trip      int
	tripGoal  int

	// register dependence state: ring of recent destination registers
	recentInt [16]isa.Reg
	recentFP  [16]isa.Reg
	nInt, nFP int

	// memory state
	hotPtr   uint64
	coldPtr  uint64
	hotBase  uint64
	coldBase uint64
	codeBase uint64
}

// NewGenerator builds the stream for spec's phase (index into spec.Phases)
// with the given seed. The same (spec, phase, seed) triple always yields an
// identical stream.
func NewGenerator(spec Spec, phase int, seed int64) *Generator {
	if phase < 0 || phase >= len(spec.Phases) {
		phase = 0
	}
	p := spec.Phases[phase]
	g := &Generator{
		spec:  spec,
		phase: p,
		rng:   newRNG(seed ^ int64(phase)*0x7f4a7c159e3779b9),
	}
	mix := spec.scaledMix(p)
	total := mix.sum()
	g.cum[isa.OpFX] = mix.FX / total
	g.cum[isa.OpFP] = g.cum[isa.OpFX] + mix.FPOp/total
	g.cum[isa.OpLoad] = g.cum[isa.OpFP] + mix.Load/total
	g.cum[isa.OpStore] = g.cum[isa.OpLoad] + mix.Store/total
	g.cum[isa.OpBranch] = 1.0
	g.depDist = spec.scaledDepDist(p)
	g.cold = p.ColdFrac

	g.codeBase = CodeBase
	g.loopStart = CodeBase
	g.hotBase = HotBase
	g.coldBase = ColdBase
	g.hotPtr = g.hotBase
	g.coldPtr = g.coldBase
	// Seed the dependence rings so early instructions have sources.
	for i := range g.recentInt {
		g.recentInt[i] = isa.Reg(i % 32)
		g.recentFP[i] = isa.Reg(32 + i%32)
	}
	g.nInt, g.nFP = len(g.recentInt), len(g.recentFP)
	g.newBody()
	return g
}

// PhaseName returns the generator's phase name (for diagnostics).
func (g *Generator) PhaseName() string { return g.phase.Name }

// Relocate shifts the generator's code/hot/cold address spaces by offset.
// Multi-core simulations give each core a disjoint offset so co-runners
// contend for shared-cache capacity instead of aliasing onto the same lines.
// Must be called before the first Next.
func (g *Generator) Relocate(offset uint64) {
	if g.seq != 0 {
		panic("workload: Relocate after generation started")
	}
	g.codeBase += offset
	g.loopStart += offset
	g.hotBase += offset
	g.coldBase += offset
	g.hotPtr += offset
	g.coldPtr += offset
}

// Bases returns the generator's current code, hot and cold base addresses
// (after any relocation), for cache warmup.
func (g *Generator) Bases() (code, hot, cold uint64) {
	return g.codeBase, g.hotBase, g.coldBase
}

// SpecOf returns the benchmark spec this generator was built from.
func (g *Generator) SpecOf() Spec { return g.spec }

func (g *Generator) newBody() {
	g.bodyLen = 8 + g.rng.Intn(25)
	g.bodyPos = 0
	g.trip = 0
	// Trip counts vary ±50% around the spec mean.
	t := g.spec.LoopTrip
	g.tripGoal = t/2 + g.rng.Intn(t+1)
	if g.tripGoal < 2 {
		g.tripGoal = 2
	}
	// Place the body at a random aligned spot within the code footprint.
	span := uint64(g.spec.CodeFootprint)
	g.loopStart = g.codeBase + (uint64(g.rng.Int63())%(span/64))*64
}

// pickOp samples an instruction class from the phase mix. The final slot of
// each body is always a branch, and branches never appear mid-body (keeps
// loop structure clean); the mid-body mix is renormalized accordingly.
func (g *Generator) pickOp() isa.Op {
	if g.bodyPos == g.bodyLen-1 {
		return isa.OpBranch
	}
	// Sample from the non-branch portion.
	r := g.rng.Float64() * g.cum[isa.OpStore]
	switch {
	case r < g.cum[isa.OpFX]:
		return isa.OpFX
	case r < g.cum[isa.OpFP]:
		return isa.OpFP
	case r < g.cum[isa.OpLoad]:
		return isa.OpLoad
	default:
		return isa.OpStore
	}
}

// Architectural registers 28–31 (int) and 60–63 (fp) are reserved as
// loop-invariant values: the generator never writes them, so reads are always
// ready and expose ILP.
const (
	intInvariantBase = 28
	fpInvariantBase  = 60
	numInvariants    = 4
)

// pickSrc selects a source register: with probability InvariantFrac a
// loop-invariant register, otherwise a recent destination at an
// approximately geometric dependence distance with the phase's mean.
func (g *Generator) pickSrc(fp bool) isa.Reg {
	if g.rng.Float64() < g.spec.InvariantFrac {
		if fp {
			return isa.Reg(fpInvariantBase + g.rng.Intn(numInvariants))
		}
		return isa.Reg(intInvariantBase + g.rng.Intn(numInvariants))
	}
	// Geometric distance with mean depDist, clamped to the ring.
	d := 1
	p := 1.0 / g.depDist
	for d < 15 && g.rng.Float64() > p {
		d++
	}
	if fp {
		return g.recentFP[(g.nFP-d+len(g.recentFP)*4)%len(g.recentFP)]
	}
	return g.recentInt[(g.nInt-d+len(g.recentInt)*4)%len(g.recentInt)]
}

func (g *Generator) pushDest(r isa.Reg) {
	if r.IsFP() {
		g.recentFP[g.nFP%len(g.recentFP)] = r
		g.nFP++
	} else {
		g.recentInt[g.nInt%len(g.recentInt)] = r
		g.nInt++
	}
}

func (g *Generator) dataAddr() uint64 {
	if g.rng.Float64() < g.cold {
		// Cold region: strided walk; stride >= block size ⇒ every access is
		// a new block until the region wraps.
		g.coldPtr += uint64(g.spec.ColdStride)
		if g.coldPtr >= g.coldBase+uint64(g.spec.ColdSetBytes) {
			g.coldPtr = g.coldBase + uint64(g.rng.Intn(256))*8
		}
		return g.coldPtr
	}
	// Hot region: small strides with occasional jumps, stays resident.
	g.hotPtr += 8
	if g.rng.Intn(16) == 0 {
		g.hotPtr = g.hotBase + uint64(g.rng.Intn(g.spec.HotSetBytes/8))*8
	}
	if g.hotPtr >= g.hotBase+uint64(g.spec.HotSetBytes) {
		g.hotPtr = g.hotBase
	}
	return g.hotPtr
}

// Next implements isa.Stream. Synthetic streams never exhaust.
func (g *Generator) Next() (isa.Instruction, bool) {
	op := g.pickOp()
	in := isa.Instruction{
		Seq:  g.seq,
		PC:   g.loopStart + uint64(g.bodyPos)*4,
		Op:   op,
		Dest: isa.NoReg,
		Src1: isa.NoReg,
		Src2: isa.NoReg,
	}
	switch op {
	case isa.OpFX:
		in.Dest = isa.Reg(g.rng.Intn(intInvariantBase))
		in.Src1 = g.pickSrc(false)
		if g.rng.Float64() < 0.7 {
			in.Src2 = g.pickSrc(false)
		}
		g.pushDest(in.Dest)
	case isa.OpFP:
		in.Dest = isa.Reg(32 + g.rng.Intn(fpInvariantBase-32))
		in.Src1 = g.pickSrc(true)
		if g.rng.Float64() < 0.8 {
			in.Src2 = g.pickSrc(true)
		}
		g.pushDest(in.Dest)
	case isa.OpLoad:
		fp := g.rng.Float64() < g.fpShare()
		if fp {
			in.Dest = isa.Reg(32 + g.rng.Intn(fpInvariantBase-32))
		} else {
			in.Dest = isa.Reg(g.rng.Intn(intInvariantBase))
		}
		in.Src1 = g.pickSrc(false) // address register
		in.Addr = g.dataAddr()
		g.pushDest(in.Dest)
	case isa.OpStore:
		in.Src1 = g.pickSrc(false) // address register
		fp := g.rng.Float64() < g.fpShare()
		in.Src2 = g.pickSrc(fp) // data register
		in.Addr = g.dataAddr()
	case isa.OpBranch:
		in.Src1 = g.pickSrc(false)
		g.trip++
		if g.rng.Float64() < g.spec.BranchNoise {
			// Data-dependent branch: unpredictable outcome.
			in.Taken = g.rng.Intn(2) == 0
		} else {
			in.Taken = g.trip < g.tripGoal
		}
		in.Target = g.loopStart
	}

	g.seq++
	g.bodyPos++
	if g.bodyPos >= g.bodyLen {
		if op == isa.OpBranch && in.Taken {
			g.bodyPos = 0 // loop back: same body PCs again
		} else {
			g.newBody()
		}
	}
	return in, true
}

// fpShare returns the fraction of data traffic tied to FP values; used to
// type load destinations and store sources.
func (g *Generator) fpShare() float64 {
	total := g.cum[isa.OpStore] // non-branch mass
	if total == 0 {
		return 0
	}
	fp := g.cum[isa.OpFP] - g.cum[isa.OpFX]
	fx := g.cum[isa.OpFX]
	if fp+fx == 0 {
		return 0
	}
	return fp / (fp + fx)
}

var _ isa.Stream = (*Generator)(nil)
