// Package workload models the 12 SPEC CPU2000 benchmarks the paper studies
// (§3.2, Table 2) as synthetic, deterministic instruction-stream generators.
//
// We do not have the SPEC binaries or the authors' Turandot traces, so each
// benchmark is described by the microarchitecture-visible properties that
// drive the paper's results:
//
//   - instruction mix (FXU/FPU/load/store/branch fractions),
//   - dependence distance (available ILP),
//   - branch behaviour (loop trip counts, data-dependent randomness),
//   - memory behaviour (hot working set that caches capture vs a cold
//     region that misses to memory), and
//   - a repeating phase schedule ("loop-oriented execution semantics", §2)
//     that modulates those properties over time.
//
// The constants below are calibrated qualitatively against the CPU/memory
// intensity labels of Table 2 (e.g. art and mcf "very high memory
// utilization"; sixtrack, crafty "very high CPU utilization") and the corner
// behaviours of Fig 2 (sixtrack degrades ≈ linearly with frequency; mcf is
// nearly frequency-insensitive).
package workload

import (
	"fmt"
	"sort"
)

// Suite tags a benchmark as SPECint or SPECfp.
type Suite uint8

const (
	// INT marks a SPEC CPU2000 integer benchmark.
	INT Suite = iota
	// FP marks a SPEC CPU2000 floating-point benchmark.
	FP
)

// String implements fmt.Stringer.
func (s Suite) String() string {
	if s == INT {
		return "INT"
	}
	return "FP"
}

// Mix is an instruction-class distribution. Fields are fractions that the
// generator normalizes; they need not sum exactly to 1.
type Mix struct {
	FX, FPOp, Load, Store, Branch float64
}

func (m Mix) sum() float64 { return m.FX + m.FPOp + m.Load + m.Store + m.Branch }

// Phase is one region of execution with distinct behaviour. A benchmark's
// phase schedule repeats cyclically, mimicking loop-oriented phase recurrence.
type Phase struct {
	// Name identifies the phase in traces and reports.
	Name string
	// Weight is the fraction of execution time spent in this phase per
	// schedule period.
	Weight float64
	// ColdFrac is the fraction of memory operations that touch the cold
	// (cache-hostile) region during this phase. This is the main memory-
	// boundedness knob.
	ColdFrac float64
	// MixScale multiplies the benchmark's base mix per class; zero fields
	// mean "unchanged" (scale 1).
	MixScale Mix
	// DepDistScale scales the benchmark's dependence distance (>1 = more
	// ILP) during the phase. Zero means unchanged.
	DepDistScale float64
}

// Spec describes one synthetic benchmark.
type Spec struct {
	Name  string
	Suite Suite

	// BaseMix is the steady-state instruction mix.
	BaseMix Mix
	// DepDist is the mean register dependence distance in instructions.
	// Larger values expose more ILP to the out-of-order core.
	DepDist float64
	// InvariantFrac is the probability that a source operand reads a
	// loop-invariant value (always ready) instead of a recently produced one.
	// Higher values expose more ILP; pointer-chasing codes sit low.
	InvariantFrac float64
	// LoopTrip is the mean loop trip count; branches close loops, so large
	// trip counts mean highly predictable branches.
	LoopTrip int
	// BranchNoise is the probability that a branch outcome is data-dependent
	// random rather than loop-structured (drives mispredictions).
	BranchNoise float64
	// CodeFootprint is the static code size in bytes (drives L1I behaviour).
	CodeFootprint int

	// HotSetBytes is the size of the frequently reused data region.
	HotSetBytes int
	// ColdSetBytes is the size of the streamed / pointer-chased region that
	// defeats the cache hierarchy.
	ColdSetBytes int
	// ColdStride is the access stride within the cold region; a stride at
	// least as large as the block size makes every cold access a miss.
	ColdStride int

	// Phases is the repeating phase schedule. Must be non-empty with
	// positive weights.
	Phases []Phase
	// PhasePeriodUs is the duration of one full pass over the schedule, in
	// microseconds of Turbo-frequency execution.
	PhasePeriodUs int

	// TotalInstructions is the nominal dynamic length of the benchmark; the
	// trace composer uses it to mark completion (§5.1: simulation terminates
	// when the first benchmark completes).
	TotalInstructions uint64
}

// Validate reports structural problems in the spec.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec has empty name")
	}
	if s.BaseMix.sum() <= 0 {
		return fmt.Errorf("workload %s: base mix sums to zero", s.Name)
	}
	if s.DepDist < 1 {
		return fmt.Errorf("workload %s: DepDist %v < 1", s.Name, s.DepDist)
	}
	if s.InvariantFrac < 0 || s.InvariantFrac > 1 {
		return fmt.Errorf("workload %s: InvariantFrac %v outside [0,1]", s.Name, s.InvariantFrac)
	}
	if s.LoopTrip < 2 {
		return fmt.Errorf("workload %s: LoopTrip %d < 2", s.Name, s.LoopTrip)
	}
	if s.HotSetBytes <= 0 || s.ColdSetBytes <= 0 || s.ColdStride <= 0 {
		return fmt.Errorf("workload %s: memory regions must be positive", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", s.Name)
	}
	var w float64
	for i, p := range s.Phases {
		if p.Weight <= 0 {
			return fmt.Errorf("workload %s: phase %d (%s) has non-positive weight", s.Name, i, p.Name)
		}
		if p.ColdFrac < 0 || p.ColdFrac > 1 {
			return fmt.Errorf("workload %s: phase %d (%s) ColdFrac %v outside [0,1]", s.Name, i, p.Name, p.ColdFrac)
		}
		w += p.Weight
	}
	if s.PhasePeriodUs <= 0 {
		return fmt.Errorf("workload %s: PhasePeriodUs must be positive", s.Name)
	}
	if s.TotalInstructions == 0 {
		return fmt.Errorf("workload %s: TotalInstructions must be positive", s.Name)
	}
	_ = w
	return nil
}

// scaled applies a phase's mix scaling to the base mix.
func (s Spec) scaledMix(p Phase) Mix {
	sc := func(base, scale float64) float64 {
		if scale == 0 {
			return base
		}
		return base * scale
	}
	return Mix{
		FX:     sc(s.BaseMix.FX, p.MixScale.FX),
		FPOp:   sc(s.BaseMix.FPOp, p.MixScale.FPOp),
		Load:   sc(s.BaseMix.Load, p.MixScale.Load),
		Store:  sc(s.BaseMix.Store, p.MixScale.Store),
		Branch: sc(s.BaseMix.Branch, p.MixScale.Branch),
	}
}

func (s Spec) scaledDepDist(p Phase) float64 {
	if p.DepDistScale == 0 {
		return s.DepDist
	}
	d := s.DepDist * p.DepDistScale
	if d < 1 {
		d = 1
	}
	return d
}

// registry holds the 12 benchmark models keyed by name.
var registry = map[string]Spec{}

func register(s Spec) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate benchmark " + s.Name)
	}
	registry[s.Name] = s
}

// Lookup returns the benchmark spec by SPEC name (e.g. "mcf").
func Lookup(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return s, nil
}

// MustLookup is Lookup that panics on unknown names; intended for static
// experiment tables.
func MustLookup(name string) Spec {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all registered benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Common building blocks for the specs below.
const (
	kib = 1024
	mib = 1024 * kib
)

func init() {
	// Very memory-bound corner (Table 2: "very low CPU utilization, very
	// high memory utilization"). mcf is the paper's Fig 2 lower-bound corner:
	// performance barely moves with frequency.
	register(Spec{
		Name: "mcf", Suite: INT,
		BaseMix:       Mix{FX: 0.32, Load: 0.36, Store: 0.10, Branch: 0.22},
		DepDist:       3.5,
		InvariantFrac: 0.35,
		LoopTrip:      12,
		BranchNoise:   0.10,
		CodeFootprint: 24 * kib,
		HotSetBytes:   16 * kib,
		ColdSetBytes:  24 * mib,
		ColdStride:    136, // > block size and co-prime-ish: pointer chasing
		Phases: []Phase{
			{Name: "chase", Weight: 0.6, ColdFrac: 0.16},
			{Name: "update", Weight: 0.25, ColdFrac: 0.11, MixScale: Mix{FX: 1.2, Load: 0.9, Store: 1.3, Branch: 1, FPOp: 1}},
			{Name: "scan", Weight: 0.15, ColdFrac: 0.07, DepDistScale: 1.4},
		},
		PhasePeriodUs:     2000,
		TotalInstructions: 330_000_000,
	})

	register(Spec{
		Name: "art", Suite: FP,
		BaseMix:       Mix{FX: 0.18, FPOp: 0.26, Load: 0.36, Store: 0.08, Branch: 0.12},
		DepDist:       3.4,
		InvariantFrac: 0.35,
		LoopTrip:      64,
		BranchNoise:   0.02,
		CodeFootprint: 16 * kib,
		HotSetBytes:   24 * kib,
		ColdSetBytes:  16 * mib,
		ColdStride:    128, // streaming over neural-net weights
		Phases: []Phase{
			{Name: "match", Weight: 0.55, ColdFrac: 0.26},
			{Name: "train", Weight: 0.45, ColdFrac: 0.20, MixScale: Mix{FPOp: 1.25, FX: 1, Load: 0.95, Store: 1.2, Branch: 1}},
		},
		PhasePeriodUs:     1500,
		TotalInstructions: 360_000_000,
	})

	// Moderately memory-bound (ammp pairs with art/mcf in the "low CPU, high
	// memory" combos, but with more phase variability).
	register(Spec{
		Name: "ammp", Suite: FP,
		BaseMix:       Mix{FX: 0.16, FPOp: 0.34, Load: 0.30, Store: 0.09, Branch: 0.11},
		DepDist:       3.5,
		InvariantFrac: 0.32,
		LoopTrip:      24,
		BranchNoise:   0.04,
		CodeFootprint: 32 * kib,
		HotSetBytes:   28 * kib,
		ColdSetBytes:  8 * mib,
		ColdStride:    192,
		Phases: []Phase{
			{Name: "neighbor", Weight: 0.4, ColdFrac: 0.24},
			{Name: "force", Weight: 0.35, ColdFrac: 0.06, MixScale: Mix{FPOp: 1.4, Load: 0.8, FX: 1, Store: 1, Branch: 1}, DepDistScale: 1.5},
			{Name: "update", Weight: 0.25, ColdFrac: 0.15},
		},
		PhasePeriodUs:     2500,
		TotalInstructions: 390_000_000,
	})

	// CPU-bound corner (Fig 2 upper bound: degradation tracks frequency).
	register(Spec{
		Name: "sixtrack", Suite: FP,
		BaseMix:       Mix{FX: 0.18, FPOp: 0.44, Load: 0.22, Store: 0.06, Branch: 0.10},
		DepDist:       5.0,
		InvariantFrac: 0.5,
		LoopTrip:      200,
		BranchNoise:   0.005,
		CodeFootprint: 20 * kib,
		HotSetBytes:   20 * kib,
		ColdSetBytes:  192 * kib, // fits L2: occasional L1 misses only
		ColdStride:    64,
		Phases: []Phase{
			{Name: "track", Weight: 0.8, ColdFrac: 0.05, DepDistScale: 1.2},
			{Name: "io", Weight: 0.2, ColdFrac: 0.12, MixScale: Mix{FX: 1.3, FPOp: 0.7, Load: 1.1, Store: 1.2, Branch: 1}},
		},
		PhasePeriodUs:     3000,
		TotalInstructions: 540_000_000,
	})

	register(Spec{
		Name: "crafty", Suite: INT,
		BaseMix:       Mix{FX: 0.48, Load: 0.27, Store: 0.07, Branch: 0.18},
		DepDist:       4.0,
		InvariantFrac: 0.42,
		LoopTrip:      8,
		BranchNoise:   0.07,
		CodeFootprint: 96 * kib,
		HotSetBytes:   30 * kib,
		ColdSetBytes:  256 * kib, // mostly L2-resident
		ColdStride:    72,
		Phases: []Phase{
			{Name: "search", Weight: 0.65, ColdFrac: 0.08, DepDistScale: 1.1},
			{Name: "eval", Weight: 0.35, ColdFrac: 0.15, MixScale: Mix{FX: 1.15, Load: 1.1, Store: 1, Branch: 0.9, FPOp: 1}},
		},
		PhasePeriodUs:     1800,
		TotalInstructions: 510_000_000,
	})

	register(Spec{
		Name: "facerec", Suite: FP,
		BaseMix:       Mix{FX: 0.20, FPOp: 0.38, Load: 0.26, Store: 0.06, Branch: 0.10},
		DepDist:       4.5,
		InvariantFrac: 0.46,
		LoopTrip:      128,
		BranchNoise:   0.01,
		CodeFootprint: 24 * kib,
		HotSetBytes:   26 * kib,
		ColdSetBytes:  256 * kib,
		ColdStride:    64,
		Phases: []Phase{
			{Name: "graph", Weight: 0.7, ColdFrac: 0.07, DepDistScale: 1.15},
			{Name: "gabor", Weight: 0.3, ColdFrac: 0.18, MixScale: Mix{FPOp: 1.2, FX: 1, Load: 1.05, Store: 1, Branch: 1}},
		},
		PhasePeriodUs:     2200,
		TotalInstructions: 528_000_000,
	})

	register(Spec{
		Name: "gap", Suite: INT,
		BaseMix:       Mix{FX: 0.46, Load: 0.28, Store: 0.09, Branch: 0.17},
		DepDist:       3.8,
		InvariantFrac: 0.42,
		LoopTrip:      32,
		BranchNoise:   0.03,
		CodeFootprint: 64 * kib,
		HotSetBytes:   28 * kib,
		ColdSetBytes:  384 * kib,
		ColdStride:    80,
		Phases: []Phase{
			{Name: "arith", Weight: 0.6, ColdFrac: 0.06, DepDistScale: 1.1},
			{Name: "collect", Weight: 0.4, ColdFrac: 0.20, MixScale: Mix{Load: 1.2, Store: 1.3, FX: 0.9, Branch: 1, FPOp: 1}},
		},
		PhasePeriodUs:     2600,
		TotalInstructions: 516_000_000,
	})

	register(Spec{
		Name: "perlbmk", Suite: INT,
		BaseMix:       Mix{FX: 0.42, Load: 0.30, Store: 0.10, Branch: 0.18},
		DepDist:       3.6,
		InvariantFrac: 0.4,
		LoopTrip:      10,
		BranchNoise:   0.05,
		CodeFootprint: 128 * kib,
		HotSetBytes:   30 * kib,
		ColdSetBytes:  256 * kib,
		ColdStride:    88,
		Phases: []Phase{
			{Name: "interp", Weight: 0.7, ColdFrac: 0.09},
			{Name: "regex", Weight: 0.3, ColdFrac: 0.05, MixScale: Mix{FX: 1.2, Branch: 1.2, Load: 0.9, Store: 1, FPOp: 1}, DepDistScale: 0.9},
		},
		PhasePeriodUs:     1600,
		TotalInstructions: 504_000_000,
	})

	register(Spec{
		Name: "wupwise", Suite: FP,
		BaseMix:       Mix{FX: 0.16, FPOp: 0.46, Load: 0.24, Store: 0.06, Branch: 0.08},
		DepDist:       5.5,
		InvariantFrac: 0.5,
		LoopTrip:      256,
		BranchNoise:   0.003,
		CodeFootprint: 16 * kib,
		HotSetBytes:   24 * kib,
		ColdSetBytes:  256 * kib,
		ColdStride:    64,
		Phases: []Phase{
			{Name: "zgemm", Weight: 0.75, ColdFrac: 0.06, DepDistScale: 1.25},
			{Name: "gamma", Weight: 0.25, ColdFrac: 0.14},
		},
		PhasePeriodUs:     2800,
		TotalInstructions: 552_000_000,
	})

	// High CPU / low memory group (facerec|gcc|mesa|vortex in Table 2).
	register(Spec{
		Name: "gcc", Suite: INT,
		BaseMix:       Mix{FX: 0.44, Load: 0.28, Store: 0.10, Branch: 0.18},
		DepDist:       3.2,
		InvariantFrac: 0.36,
		LoopTrip:      6,
		BranchNoise:   0.08,
		CodeFootprint: 192 * kib,
		HotSetBytes:   30 * kib,
		ColdSetBytes:  512 * kib,
		ColdStride:    96,
		Phases: []Phase{
			{Name: "parse", Weight: 0.35, ColdFrac: 0.12, MixScale: Mix{Branch: 1.2, FX: 1, Load: 1, Store: 1, FPOp: 1}},
			{Name: "rtl", Weight: 0.40, ColdFrac: 0.22, MixScale: Mix{Load: 1.15, Store: 1.2, FX: 1, Branch: 0.95, FPOp: 1}},
			{Name: "regalloc", Weight: 0.25, ColdFrac: 0.08, DepDistScale: 1.1},
		},
		PhasePeriodUs:     2100,
		TotalInstructions: 468_000_000,
	})

	register(Spec{
		Name: "mesa", Suite: FP,
		BaseMix:       Mix{FX: 0.26, FPOp: 0.30, Load: 0.26, Store: 0.08, Branch: 0.10},
		DepDist:       4.2,
		InvariantFrac: 0.44,
		LoopTrip:      48,
		BranchNoise:   0.02,
		CodeFootprint: 48 * kib,
		HotSetBytes:   28 * kib,
		ColdSetBytes:  320 * kib,
		ColdStride:    64,
		Phases: []Phase{
			{Name: "transform", Weight: 0.5, ColdFrac: 0.09, DepDistScale: 1.15},
			{Name: "raster", Weight: 0.5, ColdFrac: 0.18, MixScale: Mix{Load: 1.15, Store: 1.25, FPOp: 0.9, FX: 1, Branch: 1}},
		},
		PhasePeriodUs:     1900,
		TotalInstructions: 492_000_000,
	})

	register(Spec{
		Name: "vortex", Suite: INT,
		BaseMix:       Mix{FX: 0.40, Load: 0.31, Store: 0.12, Branch: 0.17},
		DepDist:       3.4,
		InvariantFrac: 0.36,
		LoopTrip:      14,
		BranchNoise:   0.04,
		CodeFootprint: 160 * kib,
		HotSetBytes:   30 * kib,
		ColdSetBytes:  768 * kib,
		ColdStride:    104,
		Phases: []Phase{
			{Name: "lookup", Weight: 0.55, ColdFrac: 0.20},
			{Name: "insert", Weight: 0.45, ColdFrac: 0.12, MixScale: Mix{Store: 1.4, Load: 1.05, FX: 1, Branch: 1, FPOp: 1}},
		},
		PhasePeriodUs:     2300,
		TotalInstructions: 480_000_000,
	})
}
