// Stream is the exported, splittable face of the workload PRNG. The fleet
// tier generates one open-loop arrival process per client; giving every
// client its own generator seeded "seed+i" would be fragile (the underlying
// lagged-Fibonacci generator reduces seeds mod 2^31-1, so nearby seeds give
// correlated warmup) and sharing one generator would couple clients' draws
// through evaluation order. Split instead derives child streams through a
// 64-bit splitmix finalizer over (parent key, split index): child keys are
// well-spread over the full 64-bit space regardless of how clustered the
// user-facing seeds are, and a key-dependent warmup burn decorrelates the
// children even in the astronomically unlikely event of a seed collision
// after the mod-2^31-1 reduction.
//
// Splitting consumes no draws from the parent: a stream's value sequence
// depends only on its key, never on how many children were split off, so
// adding a client to a scenario cannot perturb the others (pinned by
// TestStreamSplitIndependence).

package workload

// Stream is a deterministic PRNG with derivable independent substreams.
// It is not safe for concurrent use; split one stream per goroutine.
type Stream struct {
	r      *rng
	key    uint64
	splits uint64
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA'14):
// a bijective avalanche mix used here to spread (key, index) pairs over the
// full 64-bit space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func streamFromKey(key uint64) *Stream {
	s := &Stream{key: key, r: newRNG(int64(key & rngMask))}
	// Key-dependent warmup: the lagged-Fibonacci state only distinguishes
	// seeds mod 2^31-1, so two keys that collide after reduction would
	// otherwise emit identical sequences. Burning a key-derived number of
	// draws (bounded, cheap) offsets such streams from each other.
	for burn := (key >> 33) & 1023; burn > 0; burn-- {
		s.r.uint64()
	}
	return s
}

// NewStream returns the root stream for a scenario seed. Equal seeds give
// bit-identical streams and split trees.
func NewStream(seed int64) *Stream {
	return streamFromKey(splitmix64(uint64(seed)))
}

// Split derives the next independent child stream. The child's sequence is a
// pure function of (parent key, split index); the parent's own draw state is
// untouched, and draws taken from the parent do not influence its children.
func (s *Stream) Split() *Stream {
	s.splits++
	return streamFromKey(splitmix64(s.key ^ s.splits*0x9e3779b97f4a7c15))
}

// Float64 returns a uniform draw in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Int63 returns a uniform draw in [0, 2^63).
func (s *Stream) Int63() int64 { return s.r.Int63() }

// Intn returns a uniform draw in [0, n) for n > 0.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }
