package workload

import (
	"math"
	"testing"

	"gpm/internal/isa"
)

func TestRegistryHasAllTwelveBenchmarks(t *testing.T) {
	want := []string{"ammp", "art", "crafty", "facerec", "gap", "gcc", "mcf", "mesa", "perlbmk", "sixtrack", "vortex", "wupwise"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d benchmarks, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %s, want %s", i, names[i], n)
		}
	}
	for _, n := range want {
		s, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("doom3"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic")
		}
	}()
	MustLookup("doom3")
}

func TestMemoryBoundednessLabels(t *testing.T) {
	// Table 2: art/mcf very high memory utilization; sixtrack/crafty very
	// low. Encode as cold working sets beyond vs within the 2 MB L2.
	const l2 = 2 * 1024 * 1024
	for _, n := range []string{"mcf", "art", "ammp"} {
		if MustLookup(n).ColdSetBytes <= l2 {
			t.Errorf("%s cold set %d should exceed the L2", n, MustLookup(n).ColdSetBytes)
		}
	}
	for _, n := range []string{"sixtrack", "crafty", "facerec", "gap", "perlbmk", "wupwise", "gcc", "mesa", "vortex"} {
		if MustLookup(n).ColdSetBytes > l2 {
			t.Errorf("%s cold set %d should fit the L2", n, MustLookup(n).ColdSetBytes)
		}
	}
}

func TestSpecValidateCatchesErrors(t *testing.T) {
	good := MustLookup("mcf")
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.BaseMix = Mix{} },
		func(s *Spec) { s.DepDist = 0.5 },
		func(s *Spec) { s.InvariantFrac = 1.5 },
		func(s *Spec) { s.LoopTrip = 1 },
		func(s *Spec) { s.HotSetBytes = 0 },
		func(s *Spec) { s.Phases = nil },
		func(s *Spec) { s.Phases = []Phase{{Name: "x", Weight: 0}} },
		func(s *Spec) { s.Phases = []Phase{{Name: "x", Weight: 1, ColdFrac: 2}} },
		func(s *Spec) { s.PhasePeriodUs = 0 },
		func(s *Spec) { s.TotalInstructions = 0 },
	}
	for i, mutate := range cases {
		s := good
		s.Phases = append([]Phase(nil), good.Phases...)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: broken spec validated", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec := MustLookup("gcc")
	a := NewGenerator(spec, 1, 99)
	b := NewGenerator(spec, 1, 99)
	for i := 0; i < 10000; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, x, y)
		}
	}
	c := NewGenerator(spec, 1, 100)
	same := 0
	for i := 0; i < 1000; i++ {
		x, _ := a.Next()
		y, _ := c.Next()
		if x.Op == y.Op && x.Addr == y.Addr {
			same++
		}
	}
	if same > 900 {
		t.Error("different seeds produce near-identical streams")
	}
}

func TestGeneratorMixMatchesSpec(t *testing.T) {
	for _, name := range []string{"mcf", "sixtrack", "crafty"} {
		spec := MustLookup(name)
		g := NewGenerator(spec, 0, 1)
		counts := map[isa.Op]int{}
		const n = 200000
		for i := 0; i < n; i++ {
			in, _ := g.Next()
			counts[in.Op]++
		}
		mix := spec.scaledMix(spec.Phases[0])
		total := mix.sum()
		// Branch frequency is structural (one per body) — check it is in a
		// plausible band rather than exact.
		brFrac := float64(counts[isa.OpBranch]) / n
		if brFrac < 0.02 || brFrac > 0.25 {
			t.Errorf("%s: branch fraction %.3f outside band", name, brFrac)
		}
		// Non-branch classes should track the requested proportions.
		nonBranch := float64(n - counts[isa.OpBranch])
		for _, c := range []struct {
			op   isa.Op
			frac float64
		}{
			{isa.OpFX, mix.FX},
			{isa.OpFP, mix.FPOp},
			{isa.OpLoad, mix.Load},
			{isa.OpStore, mix.Store},
		} {
			want := c.frac / (total - mix.Branch)
			got := float64(counts[c.op]) / nonBranch
			if math.Abs(got-want) > 0.03 {
				t.Errorf("%s: %v fraction %.3f, want ≈%.3f", name, c.op, got, want)
			}
		}
	}
}

func TestGeneratorNeverWritesInvariantRegisters(t *testing.T) {
	g := NewGenerator(MustLookup("crafty"), 0, 5)
	for i := 0; i < 100000; i++ {
		in, _ := g.Next()
		if !in.HasDest() {
			continue
		}
		d := int(in.Dest)
		if (d >= intInvariantBase && d < intInvariantBase+numInvariants) ||
			(d >= fpInvariantBase && d < fpInvariantBase+numInvariants) {
			t.Fatalf("instruction %d writes invariant register %d", i, d)
		}
	}
}

func TestGeneratorAddressRegions(t *testing.T) {
	spec := MustLookup("art")
	g := NewGenerator(spec, 0, 3)
	for i := 0; i < 100000; i++ {
		in, _ := g.Next()
		if in.PC < CodeBase || in.PC >= CodeBase+uint64(spec.CodeFootprint)+64 {
			t.Fatalf("PC %x outside code region", in.PC)
		}
		if !in.Op.IsMem() {
			continue
		}
		inHot := in.Addr >= HotBase && in.Addr < HotBase+uint64(spec.HotSetBytes)
		inCold := in.Addr >= ColdBase && in.Addr < ColdBase+uint64(spec.ColdSetBytes)+uint64(spec.ColdStride)
		if !inHot && !inCold {
			t.Fatalf("data address %x outside hot and cold regions", in.Addr)
		}
	}
}

func TestGeneratorColdFraction(t *testing.T) {
	spec := MustLookup("mcf")
	g := NewGenerator(spec, 0, 11)
	var mem, cold int
	for i := 0; i < 300000; i++ {
		in, _ := g.Next()
		if !in.Op.IsMem() {
			continue
		}
		mem++
		if in.Addr >= ColdBase {
			cold++
		}
	}
	want := spec.Phases[0].ColdFrac
	got := float64(cold) / float64(mem)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("cold fraction %.3f, want ≈%.2f (spec)", got, want)
	}
}

func TestRelocate(t *testing.T) {
	spec := MustLookup("gcc")
	g := NewGenerator(spec, 0, 1)
	const off = uint64(1) << 40
	g.Relocate(off)
	code, hot, cold := g.Bases()
	if code != CodeBase+off || hot != HotBase+off || cold != ColdBase+off {
		t.Error("Relocate did not shift all bases")
	}
	for i := 0; i < 10000; i++ {
		in, _ := g.Next()
		if in.PC < off {
			t.Fatal("PC not relocated")
		}
		if in.Op.IsMem() && in.Addr < off {
			t.Fatal("data address not relocated")
		}
	}
}

func TestRelocatePanicsAfterStart(t *testing.T) {
	g := NewGenerator(MustLookup("gcc"), 0, 1)
	g.Next()
	defer func() {
		if recover() == nil {
			t.Error("Relocate after Next should panic")
		}
	}()
	g.Relocate(64)
}

func TestCombosCoverTable2(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		combos, err := Combos(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range combos {
			if c.Cores() != n {
				t.Errorf("%s has %d cores, want %d", c.ID, c.Cores(), n)
			}
			specs, err := c.Specs()
			if err != nil {
				t.Fatal(err)
			}
			if len(specs) != n {
				t.Errorf("%s resolved %d specs", c.ID, len(specs))
			}
		}
	}
	if _, err := Combos(3); err == nil {
		t.Error("width 3 should have no Table 2 combos")
	}
	one, err := Combos(1)
	if err != nil || len(one) != 4 {
		t.Errorf("width 1 should yield the four baseline benchmarks: %v %v", one, err)
	}
}

func TestFindCombo(t *testing.T) {
	c, err := FindCombo("4w-ammp-mcf-crafty-art")
	if err != nil || c.Cores() != 4 {
		t.Fatalf("FindCombo baseline: %v %v", c, err)
	}
	if _, err := FindCombo("nope"); err == nil {
		t.Error("unknown combo accepted")
	}
	if _, err := FindCombo(Fig3Alternate.ID); err != nil {
		t.Errorf("Fig3 alternate combo should resolve: %v", err)
	}
}

func TestBadComboSpecs(t *testing.T) {
	c := Combo{ID: "bad", Benchmarks: []string{"mcf", "nope"}}
	if _, err := c.Specs(); err == nil {
		t.Error("combo with unknown benchmark resolved")
	}
}
