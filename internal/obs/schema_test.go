package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestSchema1TraceStillDecodes pins backward compatibility: a literal
// schema-1 JSONL stream (recorded before the supervisor fields existed) must
// still parse — readers reject only schemas NEWER than theirs.
func TestSchema1TraceStillDecodes(t *testing.T) {
	old := strings.Join([]string{
		`{"kind":"manifest","manifest":{"schema":1,"tool":"gpmsim","substrate":"cmpsim","policy":"MaxBIPS","cores":2,"delta_sim_ns":50000,"deltas_per_explore":10,"explore_ns":500000,"horizon_ns":3000000}}`,
		`{"kind":"decision","decision":{"i":0,"now_ns":500000,"budget_w":45,"chip_w":40,"power_w":[20,20],"instr":[1000,900],"vector":[0,1],"stall_ns":0}}`,
		`{"kind":"decision","decision":{"i":1,"now_ns":1000000,"budget_w":45,"chip_w":39,"power_w":[19.5,19.5],"instr":[1000,900],"vector":[1,1],"stall_ns":0}}`,
		`{"kind":"footer","footer":{"records":2,"fingerprint":"0x0","trace_fingerprint":"0x0","elapsed_ns":1000000,"total_instr":3800,"energy_j":0.04,"decisions":2}}`,
	}, "\n") + "\n"
	tr, err := ReadTrace(strings.NewReader(old))
	if err != nil {
		t.Fatalf("schema-1 trace rejected by schema-%d reader: %v", SchemaVersion, err)
	}
	if len(tr.Records) != 2 || tr.Manifest.Schema != 1 {
		t.Fatalf("parsed %d records, schema %d", len(tr.Records), tr.Manifest.Schema)
	}
	for _, r := range tr.Records {
		if r.Sup || r.SupRung != 0 || r.SupRejected || r.SupRepaired {
			t.Fatalf("schema-1 record decoded with supervisor fields set: %+v", r)
		}
	}
}

// TestSupervisedRecordRoundTrip pins the schema-2 codec: supervisor fields
// survive WriteTrace → ReadTrace → WriteTrace byte-identically.
func TestSupervisedRecordRoundTrip(t *testing.T) {
	tr := &Trace{
		Manifest: testManifest(),
		Records: []Record{{
			Interval: 0, NowNs: 500_000, BudgetW: 45, ChipPowerW: 40,
			PowerW: []float64{20, 20}, Instr: []float64{1000, 900}, Vector: []int{0, 1},
			Sup: true, SupRung: 2, SupRejected: true, SupRepaired: true,
			SupPredPowerW: 44.5, SupTimedOut: true,
		}},
	}
	var b1 bytes.Buffer
	if err := WriteTrace(&b1, tr); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTrace(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r := parsed.Records[0]
	if !r.Sup || r.SupRung != 2 || !r.SupRejected || !r.SupRepaired ||
		r.SupPredPowerW != 44.5 || !r.SupTimedOut {
		t.Fatalf("supervisor fields lost in round trip: %+v", r)
	}
	var b2 bytes.Buffer
	if err := WriteTrace(&b2, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("supervised trace re-encode is not byte-identical")
	}
}

// TestSupervisorFingerprintConditional pins the golden-compatibility rule:
// unsupervised records hash exactly as they did pre-schema-2 (the zero-valued
// supervisor fields contribute nothing), supervised records fold the rung and
// gate outcome into the hash, and the wall-clock-dependent SupTimedOut flag
// never affects it.
func TestSupervisorFingerprintConditional(t *testing.T) {
	base := Record{
		Interval: 0, NowNs: 500_000, BudgetW: 45, ChipPowerW: 40,
		PowerW: []float64{20, 20}, Instr: []float64{1000, 900}, Vector: []int{0, 1},
	}
	hash := func(r Record) uint64 {
		return TraceFingerprint(&Trace{Records: []Record{r}})
	}

	plain := hash(base)
	zeroSup := base // Sup=false but rung/pred fields incidentally zero anyway
	zeroSup.SupPredPowerW = 0
	if hash(zeroSup) != plain {
		t.Fatal("unsupervised record hash changed by zero supervisor fields")
	}

	sup := base
	sup.Sup = true
	sup.SupRung = 1
	sup.SupPredPowerW = 44
	supHash := hash(sup)
	if supHash == plain {
		t.Fatal("supervised record hashes identically to unsupervised")
	}
	bumped := sup
	bumped.SupRung = 2
	if hash(bumped) == supHash {
		t.Fatal("SupRung change did not change the trace fingerprint")
	}
	timed := sup
	timed.SupTimedOut = true
	if hash(timed) != supHash {
		t.Fatal("SupTimedOut (wall-clock-dependent) leaked into the trace fingerprint")
	}
}
