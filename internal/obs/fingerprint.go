package obs

import (
	"hash"
	"hash/fnv"
	"math"

	"gpm/internal/engine"
)

// fpWriter hashes float64s bit-exactly into an FNV-64a stream — the one
// hashing primitive behind both the Result and trace fingerprints, so the
// golden tests and the trace footers can never drift apart.
type fpWriter struct{ h hash.Hash64 }

func newFPWriter() fpWriter { return fpWriter{h: fnv.New64a()} }

func (w fpWriter) f(f float64) {
	var b [8]byte
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	w.h.Write(b[:])
}

func (w fpWriter) sum() uint64 { return w.h.Sum64() }

// ResultFingerprint hashes every numeric series and counter of a Result
// bit-exactly, including the robustness accounting and the final samples, so
// any drift in the simulation loop — decision order, stall accounting,
// truncation handling, guard state machine — changes the hash. This is the
// golden fingerprint pinned by internal/cmpsim/golden_test.go and stamped
// into every trace footer. Observability counters (Result.Obs) are gauges
// about the run, not simulated physics, and are excluded.
func ResultFingerprint(r *engine.Result) uint64 {
	w := newFPWriter()
	for i := range r.ChipPowerW {
		w.f(r.ChipPowerW[i])
		w.f(r.BudgetW[i])
		for c := range r.CorePowerW[i] {
			w.f(r.CorePowerW[i][c])
			w.f(r.CoreInstr[i][c])
		}
	}
	for _, v := range r.Modes {
		for _, m := range v {
			w.f(float64(m))
		}
	}
	for _, tc := range r.MaxTempC {
		w.f(tc)
	}
	for c := range r.PerCoreInstr {
		w.f(r.PerCoreInstr[c])
		w.f(r.FinalSamples[c].PowerW)
		w.f(r.FinalSamples[c].Instr)
		if r.FinalSamples[c].Done {
			w.f(1)
		} else {
			w.f(0)
		}
	}
	w.f(r.TotalInstr)
	w.f(r.EnergyJ)
	w.f(float64(r.Elapsed))
	w.f(float64(r.TransitionStall))
	w.f(float64(r.FirstCompleted))
	w.f(float64(r.OvershootIntervals))
	w.f(r.OvershootEnergyWs)
	w.f(r.WorstOvershootWs)
	w.f(float64(r.EmergencyEntries))
	w.f(float64(r.EmergencyIntervals))
	w.f(float64(r.RecoveryLatency))
	w.f(float64(r.SanitizedSamples))
	w.f(float64(r.RescaledIntervals))
	for _, c := range r.DeadCores {
		w.f(float64(c))
	}
	return w.sum()
}

// traceHasher incrementally fingerprints the deterministic fields of a
// record stream. Wall-clock latencies (stage DurNs, DecideNs) are excluded:
// two runs of the same configuration must produce the same trace
// fingerprint on any machine.
type traceHasher struct{ w fpWriter }

func newTraceHasher() traceHasher { return traceHasher{w: newFPWriter()} }

func (t traceHasher) add(r *Record) {
	w := t.w
	w.f(float64(r.Interval))
	w.f(float64(r.NowNs))
	w.f(r.BudgetW)
	w.f(r.ChipPowerW)
	for c := range r.PowerW {
		w.f(r.PowerW[c])
		w.f(r.Instr[c])
	}
	w.f(float64(len(r.TruePowerW)))
	for c := range r.TruePowerW {
		w.f(r.TruePowerW[c])
		w.f(r.TrueInstr[c])
	}
	for _, s := range r.Stages {
		w.h.Write([]byte(s.Name))
		w.f(s.BudgetW)
		if s.Override {
			w.f(1)
		} else {
			w.f(0)
		}
	}
	for _, m := range r.Vector {
		w.f(float64(m))
	}
	w.f(float64(len(r.Candidate)))
	for _, m := range r.Candidate {
		w.f(float64(m))
	}
	if r.Guard {
		w.f(1)
	} else {
		w.f(0)
	}
	w.f(float64(r.StallNs))
	// The supervisor block is hashed only when the record is supervised, so
	// pre-schema-2 traces and unsupervised runs keep their exact historical
	// fingerprints. SupTimedOut is wall-clock dependent and excluded — a
	// deadline race must not change the trace fingerprint.
	if r.Sup {
		w.f(1)
		w.f(float64(r.SupRung))
		if r.SupRejected {
			w.f(1)
		} else {
			w.f(0)
		}
		if r.SupRepaired {
			w.f(1)
		} else {
			w.f(0)
		}
		w.f(r.SupPredPowerW)
	}
}

func (t traceHasher) sum() uint64 { return t.w.sum() }

// TraceFingerprint hashes the deterministic fields of every decision record
// in a parsed trace — identical to the trace_fingerprint the Writer stamps
// into the footer while streaming.
func TraceFingerprint(t *Trace) uint64 {
	h := newTraceHasher()
	for i := range t.Records {
		h.add(&t.Records[i])
	}
	return h.sum()
}
