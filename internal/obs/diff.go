package obs

import "fmt"

// Divergence names the first structural difference between two traces: the
// explore interval, the core (or -1 for chip-level fields), the field, and
// both values. It is the answer to "where exactly did cmpsim and fullsim —
// or two solver backends, or pre- and post-refactor — stop agreeing?".
type Divergence struct {
	// Interval is the explore-interval index of the first difference.
	Interval int
	// Core is the diverging core, or -1 for a chip-level field.
	Core int
	// Field names the diverging record field ("budget_w", "mode", ...).
	Field string
	// A and B render the two values.
	A, B string
}

func (d *Divergence) String() string {
	if d.Core >= 0 {
		return fmt.Sprintf("first divergence at interval %d, core %d, field %s: %s vs %s", d.Interval, d.Core, d.Field, d.A, d.B)
	}
	return fmt.Sprintf("first divergence at interval %d, field %s: %s vs %s", d.Interval, d.Field, d.A, d.B)
}

// Diff structurally compares the deterministic decision fields of two traces
// and returns the first divergence, or nil when the traces agree on every
// record. Wall-clock latencies are ignored; field order within a record is
// chip-level inputs (time, budget, chip power) before per-core observations
// before the decision itself (mode vector, guard), so the reported field is
// the earliest *cause* in the decision pipeline, not a downstream symptom.
func Diff(a, b *Trace) *Divergence {
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	f64 := func(x float64) string { return fmt.Sprintf("%g", x) }
	for i := 0; i < n; i++ {
		ra, rb := &a.Records[i], &b.Records[i]
		iv := ra.Interval
		if ra.NowNs != rb.NowNs {
			return &Divergence{Interval: iv, Core: -1, Field: "now_ns", A: fmt.Sprint(ra.NowNs), B: fmt.Sprint(rb.NowNs)}
		}
		if ra.BudgetW != rb.BudgetW {
			return &Divergence{Interval: iv, Core: -1, Field: "budget_w", A: f64(ra.BudgetW), B: f64(rb.BudgetW)}
		}
		if ra.ChipPowerW != rb.ChipPowerW {
			return &Divergence{Interval: iv, Core: -1, Field: "chip_w", A: f64(ra.ChipPowerW), B: f64(rb.ChipPowerW)}
		}
		if len(ra.PowerW) != len(rb.PowerW) {
			return &Divergence{Interval: iv, Core: -1, Field: "cores", A: fmt.Sprint(len(ra.PowerW)), B: fmt.Sprint(len(rb.PowerW))}
		}
		for c := range ra.PowerW {
			if ra.PowerW[c] != rb.PowerW[c] {
				return &Divergence{Interval: iv, Core: c, Field: "power_w", A: f64(ra.PowerW[c]), B: f64(rb.PowerW[c])}
			}
			if ra.Instr[c] != rb.Instr[c] {
				return &Divergence{Interval: iv, Core: c, Field: "instr", A: f64(ra.Instr[c]), B: f64(rb.Instr[c])}
			}
		}
		if ra.Guard != rb.Guard {
			return &Divergence{Interval: iv, Core: -1, Field: "guard", A: fmt.Sprint(ra.Guard), B: fmt.Sprint(rb.Guard)}
		}
		if len(ra.Vector) != len(rb.Vector) {
			return &Divergence{Interval: iv, Core: -1, Field: "vector_len", A: fmt.Sprint(len(ra.Vector)), B: fmt.Sprint(len(rb.Vector))}
		}
		for c := range ra.Vector {
			if ra.Vector[c] != rb.Vector[c] {
				return &Divergence{Interval: iv, Core: c, Field: "mode", A: fmt.Sprint(ra.Vector[c]), B: fmt.Sprint(rb.Vector[c])}
			}
		}
		if ra.StallNs != rb.StallNs {
			return &Divergence{Interval: iv, Core: -1, Field: "stall_ns", A: fmt.Sprint(ra.StallNs), B: fmt.Sprint(rb.StallNs)}
		}
	}
	if len(a.Records) != len(b.Records) {
		return &Divergence{Interval: n, Core: -1, Field: "records", A: fmt.Sprint(len(a.Records)), B: fmt.Sprint(len(b.Records))}
	}
	return nil
}
