package obs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/modes"
)

// FuzzRecordRoundTrip fuzzes the JSONL envelope codec with two contracts:
//
//  1. Corrupt input never panics — it returns a *DecodeError (typed, with a
//     line number).
//  2. The encoding is canonical: once an accepted input has been re-encoded,
//     decoding and encoding again is byte-identical (encode ∘ decode is the
//     identity on the codec's own output).
//
// Seeds live in testdata/fuzz/FuzzRecordRoundTrip; run `make fuzz` (or
// `go test -fuzz=FuzzRecordRoundTrip ./internal/obs`) to explore further.
func FuzzRecordRoundTrip(f *testing.F) {
	// One seed per kind, plus structurally hostile inputs.
	col := NewCollector(testManifest())
	col.Decision(&engine.DecisionTrace{
		Interval:   3,
		Now:        1500 * time.Microsecond,
		BudgetW:    62.5,
		ChipPowerW: 64.25,
		TrueSamples: []core.Sample{
			{PowerW: 16, Instr: 8e6}, {PowerW: 15.5, Instr: 7e6},
		},
		Samples: []core.Sample{
			{PowerW: 16.2, Instr: 8.1e6}, {PowerW: 15.1, Instr: 6.9e6},
		},
		Stages: []engine.StageTrace{
			{Name: "budget", BudgetW: 70, DurNs: 40},
			{Name: "fault-observe", BudgetW: 70, Override: true, DurNs: 120},
		},
		Candidate:      modes.Vector{0, 1},
		Final:          modes.Vector{0, 2},
		GuardEmergency: false,
		Stall:          10 * time.Microsecond,
		DecideNs:       900,
	})
	var seedBuf bytes.Buffer
	if err := WriteTrace(&seedBuf, col.Trace()); err != nil {
		f.Fatal(err)
	}
	for _, line := range bytes.Split(seedBuf.Bytes(), []byte("\n")) {
		if len(line) > 0 {
			f.Add(append([]byte(nil), line...))
		}
	}
	f.Add([]byte(`{"kind":"footer","footer":{"records":2,"fingerprint":"00","trace_fingerprint":"00","elapsed_ns":1,"total_instr":2,"energy_j":3,"decisions":2}}`))
	f.Add([]byte(`{"kind":"decision"}`))
	f.Add([]byte(`{"kind":"telemetry","decision":{}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"kind":"decision","decision":{"i":-1,"power_w":[1e999],"vector":[9999999999]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ParseLine(data, 1)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		b1, err := MarshalLine(l)
		if err != nil {
			t.Fatalf("accepted line does not re-encode: %v", err)
		}
		l2, err := ParseLine(bytes.TrimSuffix(b1, []byte("\n")), 1)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, b1)
		}
		b2, err := MarshalLine(l2)
		if err != nil {
			t.Fatalf("canonical re-encode failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encoding not canonical:\n%s\n%s", b1, b2)
		}
	})
}
